//! Property-based tests of the DRAM bank hammer model: conservation laws
//! the whole security analysis rests on.

use mint_rh::dram::{Bank, BankConfig, RowId};
use proptest::prelude::*;

fn total_hammers(bank: &Bank, rows: u32) -> u64 {
    (0..rows).map(|r| u64::from(bank.hammers(RowId(r)))).sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Without refreshes, total hammers equal activations × neighbours
    /// reached, minus what self-restores erase — never more than
    /// 2 × blast × ACTs.
    #[test]
    fn hammer_conservation_upper_bound(
        acts in proptest::collection::vec(1u32..62, 1..300),
        blast in 1u32..3,
    ) {
        let rows = 64;
        let mut bank = Bank::new(BankConfig { rows, blast_radius: blast, trh: None });
        for &a in &acts {
            bank.demand_activate(RowId(a));
        }
        let total = total_hammers(&bank, rows);
        prop_assert!(total <= acts.len() as u64 * u64::from(2 * blast));
    }

    /// Hammering distinct, well-separated rows conserves exactly
    /// (no self-restore interference).
    #[test]
    fn hammer_conservation_exact_when_separated(n_rows in 1u32..10) {
        let rows = 64;
        let mut bank = Bank::new(BankConfig { rows, blast_radius: 1, trh: None });
        for i in 0..n_rows {
            bank.demand_activate(RowId(4 + i * 5)); // stride 5 > 2×blast+1
        }
        prop_assert_eq!(total_hammers(&bank, rows), u64::from(n_rows) * 2);
    }

    /// A full auto-refresh sweep restores a pristine bank no matter what
    /// preceded it.
    #[test]
    fn full_sweep_clears_everything(
        acts in proptest::collection::vec(1u32..62, 0..200),
    ) {
        let rows = 64;
        let mut bank = Bank::new(BankConfig { rows, blast_radius: 1, trh: None });
        for &a in &acts {
            bank.demand_activate(RowId(a));
        }
        bank.auto_refresh_step(rows);
        prop_assert_eq!(total_hammers(&bank, rows), 0);
    }

    /// Mitigating an aggressor always zeroes its direct victims,
    /// regardless of prior state.
    #[test]
    fn mitigation_zeroes_direct_victims(
        acts in proptest::collection::vec(1u32..62, 0..200),
        aggressor in 2u32..61,
    ) {
        let rows = 64;
        let mut bank = Bank::new(BankConfig { rows, blast_radius: 1, trh: None });
        for &a in &acts {
            bank.demand_activate(RowId(a));
        }
        bank.mitigate_aggressor(RowId(aggressor));
        // The two victim refreshes happen in order (low then high): the
        // high victim's refresh can re-hammer... only rows at distance 2,
        // never the victims themselves.
        prop_assert_eq!(bank.hammers(RowId(aggressor - 1)), 0);
        prop_assert_eq!(bank.hammers(RowId(aggressor + 1)), 0);
    }

    /// Failure records appear exactly when a TRH is configured and some
    /// row reaches it; max_hammers_ever is an upper bound for every row.
    #[test]
    fn failure_detection_consistent(
        reps in 1u32..120,
        trh in 5u32..200,
    ) {
        let rows = 64;
        let mut bank = Bank::new(BankConfig { rows, blast_radius: 1, trh: Some(trh) });
        for _ in 0..reps {
            bank.demand_activate(RowId(30));
        }
        let expect_failure = reps >= trh;
        prop_assert_eq!(!bank.failures().is_empty(), expect_failure);
        for r in 0..rows {
            prop_assert!(bank.hammers(RowId(r)) <= bank.max_hammers_ever());
        }
        if expect_failure {
            // Both victims crossed at exactly the threshold.
            prop_assert!(bank.failures().iter().all(|f| f.hammers == trh));
        }
    }

    /// Reset always restores the pristine state.
    #[test]
    fn reset_is_pristine(
        acts in proptest::collection::vec(1u32..62, 0..100),
    ) {
        let rows = 64;
        let mut bank = Bank::new(BankConfig { rows, blast_radius: 1, trh: Some(3) });
        for &a in &acts {
            bank.demand_activate(RowId(a));
        }
        bank.reset();
        prop_assert_eq!(total_hammers(&bank, rows), 0);
        prop_assert!(bank.failures().is_empty());
        prop_assert_eq!(bank.max_hammers_ever(), 0);
        prop_assert_eq!(bank.stats().demand_acts, 0);
    }
}
