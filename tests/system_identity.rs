//! The DIMM scale-out's backward-compatibility contract, pinned.
//!
//! PR "Scale out to a full DIMM" moved [`Sim`] onto a system-level
//! admission loop over a [`System`](mint_memsys::System) of N channels ×
//! R ranks. Two things must hold forever after:
//!
//! 1. **1×1 byte identity** — on the default single-channel,
//!    single-rank Table VI topology, the System path reproduces the
//!    legacy single-`Channel` path *byte for byte*: durations, the full
//!    [`SimResult`], per-core finish times and request counts, and the
//!    energy split to the last bit of the f64s. The constants below were
//!    captured from the pre-refactor scheduler (commit 57b251f) and must
//!    never drift.
//! 2. **Worker-count invariance at scale** — a multi-channel run is
//!    bit-identical whether the per-channel pipelines are constructed
//!    and the grid cells fanned out on 1 worker or N.

// The energy goldens are 17-significant-digit round-trip captures: the
// extra digits are what make `to_bits` equality meaningful.
#![allow(clippy::excessive_precision)]

use mint_memsys::{
    workload_by_name, MitigationScheme, RunReport, SchedulePolicy, Sim, SystemConfig,
};

/// One legacy golden: everything a [`RunReport`] exposes, flattened to
/// exact integers and exact f64 bit patterns.
struct Golden {
    name: &'static str,
    scheme: MitigationScheme,
    policy: SchedulePolicy,
    workload: &'static str,
    requests_per_core: u32,
    seed: u64,
    duration_ps: u64,
    /// (requests, row_hits, demand_acts, mitigative_acts, rfm_commands,
    /// drfm_commands, reads, writes, refs)
    result: (u64, u64, u64, u64, u64, u64, u64, u64, u64),
    /// Per-core (finish_ps, requests).
    cores: [(u64, u64); 4],
    /// (act_j, non_act_j) — compared bit-exactly via `to_bits`.
    energy: (f64, f64),
}

/// Captured from the pre-System scheduler; see the module docs.
const GOLDENS: [Golden; 3] = [
    Golden {
        name: "mint-frfcfs-mcf",
        scheme: MitigationScheme::Mint,
        policy: SchedulePolicy::FrFcfs { starvation_cap: 4 },
        workload: "mcf",
        requests_per_core: 5_000,
        seed: 7,
        duration_ps: 121_524_937,
        result: (20_000, 4_927, 15_073, 434, 0, 0, 14_503, 5_497, 1_024),
        cores: [
            (120_880_136, 5_000),
            (121_524_937, 5_000),
            (120_328_041, 5_000),
            (120_129_079, 5_000),
        ],
        energy: (3.41154000000000020e-5, 4.34865339263119935e-5),
    },
    Golden {
        name: "baseline-fcfs-lbm",
        scheme: MitigationScheme::Baseline,
        policy: SchedulePolicy::Fcfs,
        workload: "lbm",
        requests_per_core: 3_000,
        seed: 42,
        duration_ps: 79_440_200,
        result: (12_000, 9_472, 2_528, 0, 0, 0, 6_561, 5_439, 672),
        cores: [
            (76_183_500, 3_000),
            (77_733_230, 3_000),
            (79_440_200, 3_000),
            (78_608_200, 3_000),
        ],
        energy: (5.56160000000000025e-6, 2.74071299999999993e-5),
    },
    Golden {
        name: "rfm16-frfcfs-mcf",
        scheme: MitigationScheme::MintRfm { rfm_th: 16 },
        policy: SchedulePolicy::FrFcfs { starvation_cap: 4 },
        workload: "mcf",
        requests_per_core: 4_000,
        seed: 99,
        duration_ps: 107_394_689,
        result: (16_000, 3_890, 12_110, 1_480, 270, 0, 11_478, 4_522, 896),
        cores: [
            (104_312_115, 4_000),
            (107_394_689, 4_000),
            (107_328_345, 4_000),
            (106_013_493, 4_000),
        ],
        energy: (2.98980000000000007e-5, 3.65313837530639938e-5),
    },
];

fn run(g: &Golden, cfg: SystemConfig) -> RunReport {
    let spec = workload_by_name(g.workload).expect("workload in the suite");
    Sim::new(cfg)
        .scheme(g.scheme)
        .policy(g.policy)
        .workload(&[spec; 4], g.requests_per_core)
        .seed(g.seed)
        .run()
}

#[test]
fn one_by_one_system_reproduces_the_legacy_channel_byte_for_byte() {
    let cfg = SystemConfig::table6();
    assert_eq!((cfg.channels, cfg.ranks), (1, 1), "Table VI is a 1x1 DIMM");
    for g in &GOLDENS {
        let r = run(g, cfg);
        assert_eq!(r.perf.duration_ps, g.duration_ps, "{}: duration", g.name);
        let s = &r.perf.result;
        assert_eq!(
            (
                s.requests,
                s.row_hits,
                s.demand_acts,
                s.mitigative_acts,
                s.rfm_commands,
                s.drfm_commands,
                s.reads,
                s.writes,
                s.refs,
            ),
            g.result,
            "{}: SimResult",
            g.name
        );
        for (i, (core, want)) in r.cores.iter().zip(&g.cores).enumerate() {
            assert_eq!(
                (core.finish_ps, core.requests),
                *want,
                "{}: core {i}",
                g.name
            );
        }
        assert_eq!(
            (r.energy.act_j.to_bits(), r.energy.non_act_j.to_bits()),
            (g.energy.0.to_bits(), g.energy.1.to_bits()),
            "{}: energy must match to the last f64 bit",
            g.name
        );
    }
}

#[test]
fn multi_channel_runs_are_bit_identical_at_jobs_1_and_4() {
    let cfg = SystemConfig {
        channels: 4,
        ranks: 2,
        ..SystemConfig::table6()
    };
    let reports: Vec<RunReport> = [1, 4]
        .iter()
        .map(|&jobs| {
            mint_exp::set_jobs(jobs);
            let r = run(&GOLDENS[0], cfg);
            mint_exp::set_jobs(0);
            r
        })
        .collect();
    let (one, four) = (&reports[0], &reports[1]);
    assert_eq!(one.perf.duration_ps, four.perf.duration_ps);
    assert_eq!(one.perf.result, four.perf.result);
    for (a, b) in one.cores.iter().zip(&four.cores) {
        assert_eq!((a.finish_ps, a.requests), (b.finish_ps, b.requests));
    }
    assert_eq!(one.energy.act_j.to_bits(), four.energy.act_j.to_bits());
    assert_eq!(
        one.energy.non_act_j.to_bits(),
        four.energy.non_act_j.to_bits()
    );
    // And scaling out actually engaged every channel: the run serviced
    // the full request budget.
    assert_eq!(one.perf.result.requests, 20_000);
}
