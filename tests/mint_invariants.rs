//! Property-based tests of the MINT-specific invariants from §V-B and the
//! DMQ contract from §VI-C.

use mint_rh::core::{Dmq, InDramTracker, Mint, MintConfig, MitigationDecision};
use mint_rh::dram::RowId;
use mint_rh::rng::Xoshiro256StarStar;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// SAR is latched exactly when CAN reaches SAN, holds the row activated
    /// at that sequence number, and is never overwritten within the window.
    #[test]
    fn sar_latches_exactly_at_san(
        seed in 0u64..10_000,
        rows in proptest::collection::vec(1u32..100_000, 73),
    ) {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        let cfg = MintConfig::ddr5_default().without_transitive();
        let mut mint = Mint::new(cfg, &mut rng);
        let san = mint.san();
        prop_assert!((1..=73).contains(&san));
        for (i, &row) in rows.iter().enumerate() {
            mint.on_activation(RowId(row), &mut rng);
            let can = i as u32 + 1;
            prop_assert_eq!(mint.can(), can);
            if can < san {
                prop_assert_eq!(mint.sar(), None);
            } else {
                // Latched at the SAN position and immutable afterwards.
                prop_assert_eq!(mint.sar(), Some(RowId(rows[(san - 1) as usize])));
            }
        }
        let d = mint.on_refresh(&mut rng);
        prop_assert_eq!(d, MitigationDecision::Aggressor(RowId(rows[(san - 1) as usize])));
    }

    /// Over many windows, every slot position is selected with frequency
    /// ~1/span — the uniformity property InDRAM-PARA lacks.
    #[test]
    fn selection_position_is_uniform(seed in 0u64..500) {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        let cfg = MintConfig::ddr5_default().without_transitive();
        let mut mint = Mint::new(cfg, &mut rng);
        let mut counts = [0u32; 73];
        let windows = 7300;
        for _ in 0..windows {
            counts[(mint.san() - 1) as usize] += 1;
            mint.on_refresh(&mut rng);
        }
        // Each slot expects 100 hits; allow a generous band (binomial).
        for (i, &c) in counts.iter().enumerate() {
            prop_assert!(
                (40..200).contains(&c),
                "slot {i} selected {c} times in {windows} windows"
            );
        }
    }

    /// DMQ FIFO order: decisions drain in the order the windows completed.
    #[test]
    fn dmq_preserves_window_order(
        seed in 0u64..10_000,
        n_windows in 2usize..5,
    ) {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        let cfg = MintConfig::ddr5_default().without_transitive();
        let mut dmq = Dmq::new(Mint::new(cfg, &mut rng), 73);
        // Window w hammers row 1000+w exclusively → guaranteed selection.
        for w in 0..n_windows {
            for _ in 0..73 {
                let _ = dmq.on_activation(RowId(1000 + w as u32), &mut rng);
            }
        }
        // Drain: queued windows first (all but the live one), in order.
        for w in 0..n_windows - 1 {
            let d = dmq.on_refresh(&mut rng);
            prop_assert_eq!(
                d,
                MitigationDecision::Aggressor(RowId(1000 + w as u32)),
                "window {} out of order", w
            );
        }
        let last = dmq.on_refresh(&mut rng);
        prop_assert!(last.mitigates(RowId(1000 + (n_windows - 1) as u32)));
    }

    /// A row occupying every slot of a window is always mitigated within
    /// the window + DMQ bound, regardless of interleaving with refreshes.
    #[test]
    fn full_occupancy_guarantees_mitigation(
        seed in 0u64..10_000,
        refs_between in 0u32..3,
    ) {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        let cfg = MintConfig::ddr5_default().without_transitive();
        let mut dmq = Dmq::new(Mint::new(cfg, &mut rng), 73);
        let row = RowId(31_337);
        let mut mitigated = false;
        // Up to 5 windows of full occupancy with sporadic refreshes: the
        // row must be mitigated within the DMQ bound.
        'outer: for _ in 0..5 {
            for _ in 0..73 {
                if let Some(d) = dmq.on_activation(row, &mut rng) {
                    if d.mitigates(row) {
                        mitigated = true;
                        break 'outer;
                    }
                }
            }
            for _ in 0..=refs_between {
                if dmq.on_refresh(&mut rng).mitigates(row) {
                    mitigated = true;
                    break 'outer;
                }
            }
        }
        prop_assert!(mitigated, "full-occupancy row escaped mitigation");
    }
}
