//! End-to-end contract of the tracker-generic memory system:
//!
//! * every `MitigationScheme` of the zoo runs a fixed workload grid with
//!   byte-identical results at `--jobs 1 / 3 / 8` (the `mint-exp` fan-out
//!   never leaks worker count into results);
//! * the Baseline dominates every mitigated scheme in row-buffer hit rate
//!   (mitigation commands can only close rows, never open them);
//! * the REF/RFM/DRFM row-buffer fixes and the per-decision mitigation
//!   cost are pinned end to end.

use mint_rh::exp::prop::{forall, usize_in};
use mint_rh::memsys::workload::Request;
use mint_rh::memsys::{
    workload_by_name, AddressDecoder, AddressMapping, MemoryController, MitigationScheme,
    NormalizedPerf, ScenarioGrid, Sim, SystemConfig, WorkloadSpec,
};

/// Small enough for a quick grid, large enough to cross many tREFI
/// boundaries per bank.
const REQUESTS: u32 = 6_000;

fn workloads() -> Vec<[WorkloadSpec; 4]> {
    let pick = |n: &str| workload_by_name(n).unwrap();
    vec![[pick("lbm"); 4], [pick("mcf"); 4]]
}

fn run_cell(
    cfg: &SystemConfig,
    scheme: MitigationScheme,
    specs: &[WorkloadSpec],
    requests: u32,
    seed: u64,
) -> NormalizedPerf {
    Sim::new(*cfg)
        .scheme(scheme)
        .workload(specs, requests)
        .seed(seed)
        .run()
        .perf
}

fn zoo_grid() -> Vec<Vec<NormalizedPerf>> {
    ScenarioGrid::new(SystemConfig::table6())
        .schemes(&MitigationScheme::zoo())
        .workloads(&workloads())
        .requests_per_core(REQUESTS)
        .seeds(&[71, 72])
        .run()
}

fn assert_grids_identical(a: &[Vec<NormalizedPerf>], b: &[Vec<NormalizedPerf>], what: &str) {
    assert_eq!(a.len(), b.len());
    for (ra, rb) in a.iter().zip(b) {
        assert_eq!(ra.len(), rb.len());
        for (ca, cb) in ra.iter().zip(rb) {
            assert_eq!(ca.duration_ps, cb.duration_ps, "{what}: duration differs");
            assert_eq!(ca.result, cb.result, "{what}: SimResult differs");
            assert_eq!(
                ca.normalized.to_bits(),
                cb.normalized.to_bits(),
                "{what}: normalized differs bitwise"
            );
        }
    }
}

#[test]
fn zoo_grid_is_bit_identical_across_worker_counts() {
    // The zoo here is ≥ 8 distinct schemes by construction (acceptance
    // criterion); pin it so the list can only grow.
    assert!(MitigationScheme::zoo().len() >= 8);
    mint_rh::exp::set_jobs(1);
    let one = zoo_grid();
    mint_rh::exp::set_jobs(3);
    let three = zoo_grid();
    mint_rh::exp::set_jobs(8);
    let eight = zoo_grid();
    mint_rh::exp::set_jobs(0); // restore default resolution
    assert_grids_identical(&one, &three, "jobs 1 vs 3");
    assert_grids_identical(&one, &eight, "jobs 1 vs 8");
}

#[test]
fn baseline_dominates_every_scheme_in_row_hit_rate() {
    // Property: mitigation commands only ever *close* row buffers (REF, RFM
    // and DRFM all precharge), so no scheme can systematically beat the
    // Baseline's row-hit rate on identical per-core request streams.
    //
    // In-DRAM schemes steal no bank time, so their service timeline is
    // bit-identical to the Baseline's and their hit rate must match it
    // *exactly*. Time-stealing schemes (RFM/DRFM issuers) shift the
    // core-interleaving, which can jitter individual hits either way — but
    // only within noise (closures dominate), so they get a tight tolerance
    // while still catching the old leave-the-row-open bug (which inflated
    // hit rates by whole percents).
    const JITTER: f64 = 0.002;
    let cfg = SystemConfig::table6();
    for w in workloads() {
        let base = run_cell(&cfg, MitigationScheme::Baseline, &w, REQUESTS, 123);
        let base_rate = base.result.row_hit_rate();
        for scheme in MitigationScheme::zoo() {
            let perf = run_cell(&cfg, scheme, &w, REQUESTS, 123);
            let rate = perf.result.row_hit_rate();
            let steals_bank_time = matches!(
                scheme,
                MitigationScheme::MintRfm { .. }
                    | MitigationScheme::McPara { .. }
                    | MitigationScheme::Graphene
            );
            if steals_bank_time {
                assert!(
                    rate <= base_rate + JITTER,
                    "{}: hit rate {rate} exceeds baseline {base_rate}",
                    scheme.label()
                );
            } else {
                assert!(
                    (rate - base_rate).abs() < 1e-12,
                    "{}: in-DRAM scheme hit rate {rate} != baseline {base_rate}",
                    scheme.label()
                );
            }
            assert_eq!(
                perf.result.requests,
                base.result.requests,
                "identical traffic under {}",
                scheme.label()
            );
        }
    }
}

#[test]
fn every_tracker_backed_scheme_mitigates_on_a_hammering_stream() {
    // Drive each scheme with a bank-hammering request stream long enough to
    // cross many REF windows: every tracker-backed scheme must produce
    // mitigation traffic, and its cost accounting must respect the
    // per-decision victim count (≤ 2 victim ACTs per REF/RFM/DRFM
    // opportunity at blast radius 1).
    let cfg = SystemConfig::table6();
    for scheme in MitigationScheme::zoo() {
        if matches!(
            scheme,
            MitigationScheme::Baseline | MitigationScheme::Graphene
        ) {
            // Graphene's threshold (350) needs a hotter stream than this
            // alternating sweep; it is covered by its own unit tests.
            continue;
        }
        let decoder = AddressDecoder::new(&cfg, AddressMapping::default());
        let mut m = MemoryController::new(cfg, scheme, 42);
        let mut t = cfg.t_rfc_ps;
        for i in 0..3000u32 {
            t = m.service(
                Request {
                    addr: decoder.encode_bank_row(0, 1000 + (i % 2), 0),
                    is_read: true,
                    think_time_ps: 0,
                },
                t,
            );
        }
        let r = m.result();
        assert!(
            r.mitigative_acts > 0,
            "{} produced no mitigations",
            scheme.label()
        );
        let opportunities = t / cfg.t_refi_ps + r.rfm_commands + r.drfm_commands + 1;
        assert!(
            r.mitigative_acts <= 2 * opportunities,
            "{}: {} mitigative ACTs over {} opportunities breaks the \
             victim_act_count bound",
            scheme.label(),
            r.mitigative_acts,
            opportunities
        );
    }
}

#[test]
fn refs_match_energy_model_semantics() {
    // SimResult::refs counts one event per (REF command, bank) for every
    // REF whose window started by the end of the run — the quantity the
    // energy model multiplies by its per-REF-per-bank energy.
    let cfg = SystemConfig::table6();
    let w = workloads();
    let perf = run_cell(&cfg, MitigationScheme::Baseline, &w[0], 2_000, 5);
    let expected = (perf.duration_ps / cfg.t_refi_ps + 1) * u64::from(cfg.banks);
    assert_eq!(perf.result.refs, expected);
    assert!(perf.result.refs >= u64::from(cfg.banks), "t=0 REF counted");
}

#[test]
fn grid_property_random_zoo_prefixes_match_direct_runs() {
    // Property-test flavour: any prefix of the zoo run through the grid
    // yields, cell for cell, the same results as a direct `run_cell`.
    let zoo = MitigationScheme::zoo();
    let cfg = SystemConfig::table6();
    let w = workloads();
    forall(6, 0x200, |_case, rng| {
        let k = usize_in(rng, 1, zoo.len() + 1);
        let schemes: Vec<MitigationScheme> = zoo.iter().copied().take(k).collect();
        let grid = ScenarioGrid::new(cfg)
            .schemes(&schemes)
            .workloads(&w[..1])
            .requests_per_core(1_500)
            .seeds(&[31])
            .run();
        let direct = run_cell(&cfg, schemes[k - 1], &w[0], 1_500, 31);
        assert_eq!(grid[0][k - 1].duration_ps, direct.duration_ps);
        assert_eq!(grid[0][k - 1].result, direct.result);
    });
}
