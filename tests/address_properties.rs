//! Property tests for the physical-address decoder and the channel
//! scheduler:
//!
//! * encode→decode round-trips are bijective over random addresses and
//!   random coordinates for **every** named mapping (and for shrunken
//!   organisations, so field widths of 0 bits are exercised too);
//! * the three named mappings genuinely differ (consecutive lines land in
//!   different coordinates);
//! * FR-FCFS strictly beats FCFS on row-hit rate for high-locality
//!   workloads across random seeds.

use mint_rh::exp::prop::{forall, u64_in, usize_in};
use mint_rh::memsys::{
    workload_by_name, AddressDecoder, AddressMapping, DecodedAddr, DramOrg, SchedulePolicy, Sim,
    SystemConfig,
};
use mint_rh::rng::Rng64;

fn orgs() -> Vec<DramOrg> {
    vec![
        // The evaluated Table VI organisation.
        *AddressDecoder::new(&SystemConfig::table6(), AddressMapping::default()).org(),
        // A shrunken org exercising small widths.
        DramOrg {
            channels: 1,
            ranks: 2,
            bank_groups: 4,
            banks_per_group: 2,
            rows: 1024,
            columns: 32,
        },
        // Degenerate 1-wide fields everywhere but rows/columns.
        DramOrg {
            channels: 1,
            ranks: 1,
            bank_groups: 1,
            banks_per_group: 1,
            rows: 64,
            columns: 8,
        },
    ]
}

#[test]
fn decode_then_encode_is_identity_on_line_addresses() {
    // For every mapping and organisation: any in-range line-aligned
    // address survives decode→encode bit-exactly.
    for org in orgs() {
        for mapping in AddressMapping::all() {
            let d = AddressDecoder::with_org(org, mapping);
            let span = 1u64 << d.addr_bits();
            forall(64, 0xADD2E55 ^ span, |case, rng| {
                let addr = u64_in(rng, 0, span) & !63;
                let round = d.encode(d.decode(addr));
                assert_eq!(
                    round,
                    addr,
                    "case {case}: {} lost bits of {addr:#x}",
                    mapping.label()
                );
            });
        }
    }
}

#[test]
fn encode_then_decode_is_identity_on_coordinates() {
    for org in orgs() {
        for mapping in AddressMapping::all() {
            let d = AddressDecoder::with_org(org, mapping);
            forall(64, 0xC0DEC ^ u64::from(org.rows), |case, rng| {
                let a = DecodedAddr {
                    channel: usize_in(rng, 0, org.channels as usize) as u32,
                    rank: usize_in(rng, 0, org.ranks as usize) as u32,
                    bank_group: usize_in(rng, 0, org.bank_groups as usize) as u32,
                    bank: usize_in(rng, 0, org.banks_per_group as usize) as u32,
                    row: usize_in(rng, 0, org.rows as usize) as u32,
                    column: usize_in(rng, 0, org.columns as usize) as u32,
                };
                assert_eq!(
                    d.decode(d.encode(a)),
                    a,
                    "case {case}: {} mangled {a:?}",
                    mapping.label()
                );
            });
        }
    }
}

#[test]
fn encode_is_injective_across_random_coordinate_pairs() {
    // Bijectivity needs injectivity too: distinct coordinates map to
    // distinct addresses (round-tripping both directions over random
    // pairs pins it without enumerating the 35-bit space).
    let d = AddressDecoder::new(&SystemConfig::table6(), AddressMapping::RoCoRaBaCh);
    forall(128, 0x1217EC7, |case, rng| {
        let span = 1u64 << d.addr_bits();
        let x = u64_in(rng, 0, span) & !63;
        let y = u64_in(rng, 0, span) & !63;
        if x != y {
            assert_ne!(
                d.decode(x),
                d.decode(y),
                "case {case}: distinct addresses decoded identically"
            );
        }
    });
}

#[test]
fn named_mappings_disagree_on_consecutive_lines() {
    // The whole point of having ≥3 mappings: they place the same access
    // stream differently. Walk a few rows' worth of consecutive cache
    // lines (the first 128 stay within one row's columns, where the
    // row-interleaved and sequential mappings legitimately agree) and
    // check each pair diverges somewhere.
    let cfg = SystemConfig::table6();
    let all = AddressMapping::all();
    assert!(all.len() >= 3, "need at least three named mappings");
    for (i, &a) in all.iter().enumerate() {
        for &b in &all[i + 1..] {
            let da = AddressDecoder::new(&cfg, a);
            let db = AddressDecoder::new(&cfg, b);
            let diverges = (0..1024u64).any(|k| da.decode(k * 64) != db.decode(k * 64));
            assert!(
                diverges,
                "{} and {} agree on 1024 consecutive lines",
                a.label(),
                b.label()
            );
        }
    }
}

#[test]
fn frfcfs_strictly_beats_fcfs_on_high_locality_row_hit_rate() {
    // Satellite acceptance: on a locality-heavy workload the row-hit-first
    // scheduler must harvest strictly more row hits than arrival-order
    // service — across seeds, not just one lucky one.
    let cfg = SystemConfig::table6();
    let lbm = workload_by_name("lbm").expect("lbm in the suite");
    let specs = [lbm; 4];
    forall(3, 0xF2FCF5, |case, rng| {
        let seed = rng.next_u64();
        let run = |policy| {
            Sim::new(cfg)
                .policy(policy)
                .workload(&specs, 8_000)
                .seed(seed)
                .run()
                .perf
        };
        let fcfs = run(SchedulePolicy::Fcfs);
        let frfcfs = run(SchedulePolicy::frfcfs());
        assert!(
            frfcfs.result.row_hit_rate() > fcfs.result.row_hit_rate(),
            "case {case}: FR-FCFS {} ≤ FCFS {}",
            frfcfs.result.row_hit_rate(),
            fcfs.result.row_hit_rate()
        );
        assert_eq!(
            frfcfs.result.requests, fcfs.result.requests,
            "identical traffic under both policies"
        );
    });
}
