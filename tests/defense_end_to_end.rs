//! End-to-end defence validation: MINT+DMQ against the complete attack
//! suite under both refresh policies, checked at the analytical MinTRH-D.

use mint_rh::attacks::{
    AccessPattern, AdaptiveAttack, Blacksmith, BlacksmithConfig, DoubleSided, HalfDouble,
    ManySided, Pattern1, Pattern2, Pattern3, PostponementDecoy, SingleSided,
};
use mint_rh::core::{Dmq, Mint, MintConfig};
use mint_rh::dram::{RefreshPolicy, RowId};
use mint_rh::rng::Xoshiro256StarStar;
use mint_rh::sim::{Engine, SimConfig};

fn full_suite() -> Vec<(&'static str, Box<dyn AccessPattern>)> {
    vec![
        ("single-sided", Box::new(SingleSided::new(RowId(10_000)))),
        ("double-sided", Box::new(DoubleSided::new(RowId(10_000)))),
        ("pattern-1", Box::new(Pattern1::new(RowId(10_000)))),
        ("pattern-2", Box::new(Pattern2::new(RowId(10_000), 73, 73))),
        (
            "pattern-2-multi",
            Box::new(Pattern2::new(RowId(10_000), 146, 73)),
        ),
        (
            "pattern-3",
            Box::new(Pattern3::new(RowId(10_000), 24, 3, 73)),
        ),
        ("many-sided", Box::new(ManySided::new(RowId(10_000), 40))),
        (
            "blacksmith",
            Box::new(Blacksmith::new(BlacksmithConfig::default())),
        ),
        ("half-double", Box::new(HalfDouble::new(RowId(10_000)))),
        (
            "ada",
            Box::new(AdaptiveAttack::paper_default(RowId(10_000), 1400)),
        ),
        (
            "postponement-decoy",
            Box::new(PostponementDecoy::new(RowId(10_000), RowId(60_000), 73, 5)),
        ),
    ]
}

/// One tREFW of each attack against MINT+DMQ under maximum postponement.
/// No single tREFW run should exceed the MinTRH-D band by a wide margin —
/// the analytical 1482 is a 10,000-year statement; a single window staying
/// under ~3000 hammers is a (loose but meaningful) sanity bound.
#[test]
fn mint_dmq_bounds_every_attack_under_postponement() {
    for (name, mut attack) in full_suite() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(0xD0D0);
        let mut tracker = Dmq::new(Mint::new(MintConfig::ddr5_default(), &mut rng), 73);
        let cfg = SimConfig::small().with_policy(RefreshPolicy::ddr5_max_postpone());
        let report = Engine::new(cfg).run(&mut tracker, attack.as_mut(), &mut rng);
        assert!(
            report.max_hammers < 3000,
            "{name}: {} unmitigated hammers exceeds the sanity bound",
            report.max_hammers
        );
    }
}

/// Same suite under timely refresh with bare MINT.
#[test]
fn bare_mint_bounds_every_attack_with_timely_refresh() {
    for (name, mut attack) in full_suite() {
        if name == "postponement-decoy" {
            continue; // that attack requires postponement to mean anything
        }
        let mut rng = Xoshiro256StarStar::seed_from_u64(0xBEEF);
        let mut tracker = Mint::new(MintConfig::ddr5_default(), &mut rng);
        let report = Engine::new(SimConfig::small()).run(&mut tracker, attack.as_mut(), &mut rng);
        assert!(
            report.max_hammers < 3000,
            "{name}: {} unmitigated hammers exceeds the sanity bound",
            report.max_hammers
        );
    }
}

/// The mitigations MINT performs are frugal: at most one per REF plus the
/// RFM-free baseline — i.e. the engine never applies more mitigations than
/// refresh opportunities.
#[test]
fn mitigation_budget_never_exceeds_refresh_opportunities() {
    let mut rng = Xoshiro256StarStar::seed_from_u64(0xF00D);
    let mut tracker = Mint::new(MintConfig::ddr5_default(), &mut rng);
    let mut attack = Pattern2::new(RowId(10_000), 73, 73);
    let report = Engine::new(SimConfig::small()).run(&mut tracker, &mut attack, &mut rng);
    assert!(
        report.mitigations + report.empty_mitigations <= report.refs,
        "mitigations {} + skipped {} exceed REFs {}",
        report.mitigations,
        report.empty_mitigations,
        report.refs
    );
}

/// Multi-window stability: three consecutive tREFW of the worst-case
/// pattern do not accumulate damage across windows (auto-refresh sweeps).
#[test]
fn no_cross_window_accumulation() {
    let mut rng = Xoshiro256StarStar::seed_from_u64(0xACE);
    let mut tracker = Mint::new(MintConfig::ddr5_default(), &mut rng);
    let mut attack = Pattern2::new(RowId(10_000), 73, 73);
    let cfg = SimConfig::small().with_windows(3);
    let report = Engine::new(cfg).run(&mut tracker, &mut attack, &mut rng);
    assert!(
        report.max_hammers < 3500,
        "3-window max {} should stay near the 1-window bound",
        report.max_hammers
    );
}
