//! The checked-in sample trace (`examples/traces/sample100.trace`)
//! replays deterministically through `TraceSource` and the command-level
//! channel — the end-to-end contract of the trace frontend.

use mint_rh::memsys::{
    read_trace_file, MitigationScheme, NormalizedPerf, SchedulePolicy, Sim, SystemConfig,
    TraceSource,
};

const SAMPLE: &str = "examples/traces/sample100.trace";

fn replay(scheme: MitigationScheme, policy: SchedulePolicy, seed: u64) -> NormalizedPerf {
    let entries = read_trace_file(SAMPLE).expect("sample trace parses");
    Sim::ddr5()
        .scheme(scheme)
        .policy(policy)
        .trace(&entries)
        .seed(seed)
        .run()
        .perf
}

#[test]
fn sample_trace_has_one_hundred_requests() {
    let entries = read_trace_file(SAMPLE).expect("sample trace parses");
    assert_eq!(entries.len(), 100, "the checked-in sample is 100 requests");
    // And it splits across the 4 Table VI cores without losing any.
    let cfg = SystemConfig::table6();
    let sources = TraceSource::split(&entries, cfg.cores, cfg.core_cycle_ps());
    let dealt: usize = sources.iter().map(TraceSource::remaining).sum();
    assert_eq!(dealt, 100);
}

#[test]
fn sample_trace_replays_bit_identically() {
    for policy in [SchedulePolicy::Fcfs, SchedulePolicy::frfcfs()] {
        let a = replay(MitigationScheme::Mint, policy, 42);
        let b = replay(MitigationScheme::Mint, policy, 42);
        assert_eq!(a.duration_ps, b.duration_ps, "{}", policy.label());
        assert_eq!(a.result, b.result, "{}", policy.label());
        assert_eq!(a.result.requests, 100, "every entry serviced");
    }
}

#[test]
fn sample_trace_sees_mint_ride_refresh_time() {
    // MINT mitigates inside the REF's tRFC: the trace finishes at the
    // exact same picosecond as the unprotected Baseline, under either
    // scheduler, while still producing mitigation work on the hammer tail.
    for policy in [SchedulePolicy::Fcfs, SchedulePolicy::frfcfs()] {
        let base = replay(MitigationScheme::Baseline, policy, 42);
        let mint = replay(MitigationScheme::Mint, policy, 42);
        assert_eq!(base.duration_ps, mint.duration_ps, "{}", policy.label());
    }
}

#[test]
fn sample_trace_streaming_phase_produces_row_hits() {
    // Phase 1 of the sample walks 40 consecutive cache lines: under the
    // row-interleaved default mapping most of those are row-buffer hits.
    let perf = replay(MitigationScheme::Baseline, SchedulePolicy::frfcfs(), 42);
    assert!(
        perf.result.row_hits >= 30,
        "streaming phase should hit the row buffer, got {}",
        perf.result.row_hits
    );
    assert!(perf.result.writes > 0, "the sample mixes reads and writes");
}
