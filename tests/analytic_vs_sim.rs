//! Cross-validation: the Sariou–Wolman analytical model against the
//! Monte-Carlo simulator, at thresholds low enough to measure empirically.

use mint_rh::analysis::SwModel;
use mint_rh::attacks::Pattern1;
use mint_rh::core::{Mint, MintConfig};
use mint_rh::dram::RowId;
use mint_rh::sim::{estimate_failure_prob, SimConfig};

/// Analytic failure probability for pattern-1 at threshold `t`, against the
/// full-MINT span of 74 (the simulator runs real MINT with the transitive
/// slot enabled).
fn analytic_p(t: u32) -> f64 {
    SwModel {
        p_mitigation: 1.0 / 74.0,
        threshold_events: t,
        events_per_refw: 8192,
        refi_per_event: 1.0,
        row_multiplier: 1.0,
    }
    .failure_prob_refw()
}

fn empirical_p(trh: u32, trials: u32, seed: u64) -> f64 {
    let cfg = SimConfig {
        bank_rows: 4096,
        ..SimConfig::small()
    }
    .with_trh(trh);
    let (fails, total) = estimate_failure_prob(
        cfg,
        trials,
        seed,
        &|r| Box::new(Mint::new(MintConfig::ddr5_default(), r)),
        &|| Box::new(Pattern1::new(RowId(2000))),
    );
    f64::from(fails) / f64::from(total)
}

#[test]
fn pattern1_failure_rate_matches_model_at_t600() {
    let t = 600;
    let analytic = analytic_p(t);
    let trials = 2_000;
    let empirical = empirical_p(t, trials, 0xAB);
    // Binomial 3-sigma band around the analytic prediction.
    let sigma = (analytic * (1.0 - analytic) / f64::from(trials)).sqrt();
    assert!(
        (empirical - analytic).abs() < 4.0 * sigma + 0.01,
        "empirical {empirical} vs analytic {analytic} (sigma {sigma})"
    );
}

#[test]
fn pattern1_failure_rate_matches_model_at_t450() {
    let t = 450;
    let analytic = analytic_p(t);
    let trials = 1_000;
    let empirical = empirical_p(t, trials, 0xCD);
    let sigma = (analytic * (1.0 - analytic) / f64::from(trials)).sqrt();
    assert!(
        (empirical - analytic).abs() < 4.0 * sigma + 0.02,
        "empirical {empirical} vs analytic {analytic} (sigma {sigma})"
    );
}

#[test]
fn failure_rate_decreases_with_threshold() {
    let lo = empirical_p(400, 400, 0xEF);
    let hi = empirical_p(800, 400, 0xEF);
    assert!(lo > hi, "T=400 rate {lo} must exceed T=800 rate {hi}");
}
