//! Checkpoint/restore bit-identity, pinned.
//!
//! A run split at request `k` with [`Session::run_until`], serialized to
//! bytes, deserialized (as a fresh process would) and continued with
//! [`Session::resume`] must reproduce the straight [`Session::run`]
//! *byte for byte*: duration, the full `SimResult`, per-core outcomes,
//! the captured event stream, and the energy split to the last f64 bit —
//! the same discipline as `tests/system_identity.rs`.
//!
//! The split points sweep the interesting phase boundaries: `k = 0`
//! (before the first service decision), tiny prefixes (mid-tFAW window,
//! pending requests in flight), the middle of the run (mid-tREFI, REF
//! and mitigation state live), and the penultimate request. Schemes
//! cover the stateless baseline, MINT's REF-riding sampler, RFM's RAA
//! counters, MC-PARA's per-ACT RNG, and two zoo trackers with tables
//! (Graphene) and FIFOs (PrIDE); topologies cover the Table VI 1×1 DIMM
//! and a 2-channel × 2-rank scale-out.

use mint_memsys::{
    parse_trace, workload_by_name, Checkpoint, MitigationScheme, RunReport, Session, SessionRun,
    Sim, SystemConfig,
};

const SCHEMES: [MitigationScheme; 6] = [
    MitigationScheme::Baseline,
    MitigationScheme::Mint,
    MitigationScheme::MintRfm { rfm_th: 16 },
    MitigationScheme::McPara { p: 1.0 / 64.0 },
    MitigationScheme::Graphene,
    MitigationScheme::Pride,
];

const REQUESTS_PER_CORE: u32 = 700;

fn topology(channels: u32, ranks: u32) -> SystemConfig {
    SystemConfig {
        channels,
        ranks,
        ..SystemConfig::table6()
    }
}

fn session(scheme: MitigationScheme, cfg: SystemConfig) -> Session<'static> {
    let mcf = workload_by_name("mcf").expect("workload in the suite");
    Sim::new(cfg)
        .scheme(scheme)
        .workload(&[mcf; 4], REQUESTS_PER_CORE)
        .seed(23)
        .capture_events()
        .build()
}

/// Every field of the report, to the last bit (f64s via `to_bits`).
fn assert_bits_equal(got: &RunReport, want: &RunReport, what: &str) {
    assert_eq!(
        got.perf.duration_ps, want.perf.duration_ps,
        "{what}: duration"
    );
    assert_eq!(got.perf.result, want.perf.result, "{what}: SimResult");
    assert_eq!(
        got.perf.normalized.to_bits(),
        want.perf.normalized.to_bits(),
        "{what}: normalized"
    );
    assert_eq!(got.cores.len(), want.cores.len(), "{what}: core count");
    for (i, (a, b)) in got.cores.iter().zip(&want.cores).enumerate() {
        assert_eq!(
            (a.finish_ps, a.requests),
            (b.finish_ps, b.requests),
            "{what}: core {i}"
        );
    }
    assert_eq!(
        (got.energy.act_j.to_bits(), got.energy.non_act_j.to_bits()),
        (want.energy.act_j.to_bits(), want.energy.non_act_j.to_bits()),
        "{what}: energy must match to the last f64 bit"
    );
    assert_eq!(got.events, want.events, "{what}: event stream");
}

/// Splits the run at `k`, round-trips the checkpoint through its on-disk
/// byte format, resumes, and compares against the straight run.
fn split_matches(scheme: MitigationScheme, cfg: SystemConfig, k: u64, straight: &RunReport) {
    let what = format!(
        "{scheme:?} {}ch x {}rk split at {k}",
        cfg.channels, cfg.ranks
    );
    match session(scheme, cfg).run_until(k).expect("pausable run") {
        SessionRun::Paused(ckpt) => {
            let revived = Checkpoint::from_bytes(&ckpt.to_bytes()).expect("byte round-trip");
            assert_eq!(revived, ckpt, "{what}: byte round-trip is lossless");
            let resumed = session(scheme, cfg).resume(&revived).expect("resume");
            assert_bits_equal(&resumed, straight, &what);
        }
        SessionRun::Finished(_) => panic!("{what}: paused before the run could finish"),
    }
}

/// The telemetry-enabled counterpart of [`session`]: same traffic, same
/// seed, observability on (and therefore telemetry words in the
/// checkpoint stream).
fn telemetry_session(scheme: MitigationScheme, cfg: SystemConfig) -> Session<'static> {
    let mcf = workload_by_name("mcf").expect("workload in the suite");
    Sim::new(cfg)
        .scheme(scheme)
        .workload(&[mcf; 4], REQUESTS_PER_CORE)
        .seed(23)
        .capture_events()
        .telemetry()
        .build()
}

#[test]
fn telemetry_counters_survive_checkpoint_splits_bit_exactly() {
    // A split-and-resumed telemetry run must reproduce the straight
    // run's whole TelemetryReport — every counter, histogram bucket and
    // time-series point — alongside the usual perf bit-identity. The
    // telemetry words ride the same MINTCKPT byte stream, so the
    // round-trip through `to_bytes` covers their framing too.
    let total = u64::from(REQUESTS_PER_CORE) * 4;
    for &cfg in &[topology(1, 1), topology(2, 2)] {
        for scheme in [
            MitigationScheme::Mint,
            MitigationScheme::MintRfm { rfm_th: 16 },
        ] {
            let straight = telemetry_session(scheme, cfg).run();
            let want = straight.telemetry.as_ref().expect("telemetry enabled");
            assert!(
                want.counter("session", "serviced").unwrap_or(0) == total,
                "straight run must account every serviced request"
            );
            for k in [1, total / 2, total - 1] {
                let what = format!(
                    "{scheme:?} {}ch x {}rk telemetry split at {k}",
                    cfg.channels, cfg.ranks
                );
                let SessionRun::Paused(ckpt) = telemetry_session(scheme, cfg)
                    .run_until(k)
                    .expect("pausable run")
                else {
                    panic!("{what}: finished early");
                };
                let revived = Checkpoint::from_bytes(&ckpt.to_bytes()).expect("byte round-trip");
                let resumed = telemetry_session(scheme, cfg)
                    .resume(&revived)
                    .expect("resume");
                assert_bits_equal(&resumed, &straight, &what);
                assert_eq!(
                    resumed.telemetry.as_ref(),
                    Some(want),
                    "{what}: TelemetryReport"
                );
            }
        }
    }
}

#[test]
fn resume_is_bit_identical_on_the_table6_dimm() {
    let cfg = topology(1, 1);
    let total = u64::from(REQUESTS_PER_CORE) * 4;
    for scheme in SCHEMES {
        let straight = session(scheme, cfg).run();
        for k in [0, 1, 3, total / 2, total - 1] {
            split_matches(scheme, cfg, k, &straight);
        }
    }
}

#[test]
fn resume_is_bit_identical_on_a_two_by_two_dimm() {
    let cfg = topology(2, 2);
    let total = u64::from(REQUESTS_PER_CORE) * 4;
    for scheme in SCHEMES {
        let straight = session(scheme, cfg).run();
        for k in [0, 1, 3, total / 2, total - 1] {
            split_matches(scheme, cfg, k, &straight);
        }
    }
}

#[test]
fn random_double_splits_resume_bit_identically() {
    // Two chained pause points (run_until + resume_until + resume) land
    // on arbitrary service counts — mid-tREFI, mid-tFAW, mid-mitigation,
    // wherever the draw falls — and must still pin the straight run.
    let total = u64::from(REQUESTS_PER_CORE) * 4;
    for &cfg in &[topology(1, 1), topology(2, 2)] {
        let straight = session(MitigationScheme::Mint, cfg).run();
        mint_exp::prop::forall(6, 0x5EED, |case, rng| {
            let k1 = mint_exp::prop::u64_in(rng, 1, total - 1);
            let k2 = mint_exp::prop::u64_in(rng, k1 + 1, total);
            let what = format!(
                "case {case}: {}ch x {}rk double split at {k1}/{k2}",
                cfg.channels, cfg.ranks
            );
            let SessionRun::Paused(first) = session(MitigationScheme::Mint, cfg)
                .run_until(k1)
                .expect("pausable run")
            else {
                panic!("{what}: first split finished early");
            };
            let SessionRun::Paused(second) = session(MitigationScheme::Mint, cfg)
                .resume_until(&first, k2)
                .expect("resumable run")
            else {
                panic!("{what}: second split finished early");
            };
            let resumed = session(MitigationScheme::Mint, cfg)
                .resume(&second)
                .expect("resume");
            assert_bits_equal(&resumed, &straight, &what);
        });
    }
}

#[test]
fn stopping_past_the_end_finishes_identically() {
    let cfg = topology(1, 1);
    let total = u64::from(REQUESTS_PER_CORE) * 4;
    let straight = session(MitigationScheme::Mint, cfg).run();
    match session(MitigationScheme::Mint, cfg)
        .run_until(total + 10)
        .expect("pausable run")
    {
        SessionRun::Finished(report) => assert_bits_equal(&report, &straight, "past-the-end stop"),
        SessionRun::Paused(_) => panic!("a stop point past the end must finish"),
    }
}

#[test]
fn trace_frontends_checkpoint_too() {
    let text: String = (0..600)
        .map(|i| {
            format!(
                "{} {} 0x{:x}\n",
                i % 5,
                if i % 3 == 0 { 'W' } else { 'R' },
                i * 64
            )
        })
        .collect();
    let entries = parse_trace(&text).unwrap();
    let build = || {
        Sim::ddr5()
            .scheme(MitigationScheme::Mint)
            .trace(&entries)
            .seed(3)
            .capture_events()
            .build()
    };
    let straight = build().run();
    for k in [0, 7, 300, 599] {
        match build().run_until(k).expect("pausable run") {
            SessionRun::Paused(ckpt) => {
                let revived = Checkpoint::from_bytes(&ckpt.to_bytes()).expect("byte round-trip");
                let resumed = build().resume(&revived).expect("resume");
                assert_bits_equal(&resumed, &straight, &format!("trace split at {k}"));
            }
            SessionRun::Finished(_) => panic!("trace split at {k} finished early"),
        }
    }
}

#[test]
fn structurally_incompatible_checkpoints_are_refused() {
    let SessionRun::Paused(ckpt) = session(MitigationScheme::Mint, topology(1, 1))
        .run_until(10)
        .expect("pausable run")
    else {
        panic!("split at 10 must pause");
    };
    // Wrong topology: the 2x2 session has a different channel count.
    let err = session(MitigationScheme::Mint, topology(2, 2))
        .resume(&ckpt)
        .expect_err("wrong topology must be refused");
    assert!(err.contains("channels"), "got: {err}");
    // Truncated bytes: the framing must catch it before any restore.
    let mut bytes = ckpt.to_bytes();
    bytes.truncate(bytes.len() - 3);
    assert!(Checkpoint::from_bytes(&bytes).is_err());
}
