//! Builder-vs-legacy bit identity: the `Sim` redesign must be a pure
//! refactor of the run surface — for a sample of zoo cells and the
//! checked-in `sample100.trace`, a `Sim`-built run produces results
//! byte-identical to the pre-redesign free functions (kept as deprecated
//! shims exactly so this pin can hold them against the builder), and the
//! declarative `ScenarioSpec`/`ScenarioGrid` layer deserializes into the
//! same runs.

#![allow(deprecated)]

use mint_rh::memsys::{
    parse_any, read_trace_file, run_sources_observed, run_trace, run_workload, run_workload_grid,
    run_workload_grid_with, run_workload_with, workload_by_name, AddressDecoder, AddressMapping,
    CoreStream, MitigationScheme, RequestSource, Scenario, ScenarioGrid, ScenarioSpec,
    SchedulePolicy, Sim, SystemConfig, WorkloadSpec,
};
use mint_rh::rng::derive_seed;

const SAMPLE: &str = "examples/traces/sample100.trace";

/// A spread of zoo cells: every backend family (none, in-DRAM, RFM,
/// MC-sampling, MC-tracker) on a memory-bound and a low-locality
/// workload.
fn sample_cells() -> Vec<(MitigationScheme, WorkloadSpec, u64)> {
    let lbm = workload_by_name("lbm").unwrap();
    let mcf = workload_by_name("mcf").unwrap();
    vec![
        (MitigationScheme::Baseline, lbm, 11),
        (MitigationScheme::Mint, lbm, 11),
        (MitigationScheme::MintRfm { rfm_th: 16 }, mcf, 12),
        (MitigationScheme::McPara { p: 1.0 / 40.0 }, mcf, 13),
        (MitigationScheme::Graphene, mcf, 14),
        (MitigationScheme::Prct, lbm, 15),
    ]
}

#[test]
fn builder_matches_legacy_run_workload_bitwise() {
    let cfg = SystemConfig::table6();
    for (scheme, w, seed) in sample_cells() {
        let legacy = run_workload(&cfg, scheme, &[w; 4], 4_000, seed);
        let report = Sim::new(cfg)
            .scheme(scheme)
            .workload(&[w; 4], 4_000)
            .seed(seed)
            .run();
        assert_eq!(
            report.perf.duration_ps,
            legacy.duration_ps,
            "{}: duration differs",
            scheme.label()
        );
        assert_eq!(
            report.perf.result,
            legacy.result,
            "{}: SimResult differs",
            scheme.label()
        );
        assert_eq!(
            report.perf.normalized.to_bits(),
            legacy.normalized.to_bits(),
            "{}: normalized differs bitwise",
            scheme.label()
        );
    }
}

#[test]
fn builder_matches_legacy_run_workload_with_nondefaults() {
    let cfg = SystemConfig::table6();
    let mcf = workload_by_name("mcf").unwrap();
    for policy in [
        SchedulePolicy::Fcfs,
        SchedulePolicy::FrFcfs { starvation_cap: 2 },
    ] {
        for mapping in AddressMapping::all() {
            let legacy = run_workload_with(
                &cfg,
                MitigationScheme::Mint,
                policy,
                mapping,
                &[mcf; 4],
                2_000,
                21,
            );
            let built = Sim::new(cfg)
                .scheme(MitigationScheme::Mint)
                .policy(policy)
                .mapping(mapping)
                .workload(&[mcf; 4], 2_000)
                .seed(21)
                .run();
            assert_eq!(built.perf.duration_ps, legacy.duration_ps);
            assert_eq!(built.perf.result, legacy.result);
        }
    }
}

#[test]
fn builder_matches_legacy_run_trace_on_sample100() {
    let cfg = SystemConfig::table6();
    let entries = read_trace_file(SAMPLE).expect("sample trace parses");
    for scheme in [MitigationScheme::Baseline, MitigationScheme::Mint] {
        for policy in [SchedulePolicy::Fcfs, SchedulePolicy::frfcfs()] {
            let legacy = run_trace(
                &cfg,
                scheme,
                policy,
                AddressMapping::default(),
                &entries,
                42,
            );
            let built = Sim::new(cfg)
                .scheme(scheme)
                .policy(policy)
                .trace(&entries)
                .seed(42)
                .run();
            assert_eq!(built.perf.duration_ps, legacy.duration_ps);
            assert_eq!(built.perf.result, legacy.result);
            assert_eq!(built.perf.result.requests, 100);
        }
    }
}

#[test]
fn builder_matches_legacy_run_sources_observed() {
    // Arbitrary-source frontend: same per-core streams, same budget, via
    // both surfaces — per-core outcomes included.
    let cfg = SystemConfig::table6();
    let mk_sources = |seed: u64| -> Vec<Box<dyn RequestSource>> {
        let decoder = AddressDecoder::new(&cfg, AddressMapping::default());
        let lbm = workload_by_name("lbm").unwrap();
        let mcf = workload_by_name("mcf").unwrap();
        [lbm, mcf, lbm, mcf]
            .iter()
            .enumerate()
            .map(|(i, w)| {
                Box::new(CoreStream::new(
                    *w,
                    decoder,
                    w.think_time_ps(&cfg),
                    derive_seed(seed, i as u64),
                )) as Box<dyn RequestSource>
            })
            .collect()
    };
    let legacy = run_sources_observed(
        &cfg,
        MitigationScheme::Mint,
        SchedulePolicy::default(),
        AddressMapping::default(),
        mk_sources(5),
        Some(3_000),
        5,
        None,
    );
    let built = Sim::new(cfg)
        .scheme(MitigationScheme::Mint)
        .sources(mk_sources(5))
        .per_core_budget(Some(3_000))
        .seed(5)
        .run();
    assert_eq!(built.perf, legacy.perf);
    assert_eq!(built.cores, legacy.cores);
}

#[test]
fn grid_matches_legacy_run_workload_grid_bitwise() {
    let cfg = SystemConfig::table6();
    let lbm = workload_by_name("lbm").unwrap();
    let mcf = workload_by_name("mcf").unwrap();
    let schemes = [
        MitigationScheme::Baseline,
        MitigationScheme::Mint,
        MitigationScheme::MintRfm { rfm_th: 16 },
    ];
    let workloads = [[lbm; 4], [mcf; 4]];
    let legacy = run_workload_grid(&cfg, &schemes, &workloads, 2_000, &[44, 45]);
    let grid = ScenarioGrid::new(cfg)
        .schemes(&schemes)
        .workloads(&workloads)
        .requests_per_core(2_000)
        .seeds(&[44, 45])
        .run();
    assert_eq!(legacy.len(), grid.len());
    for (lr, gr) in legacy.iter().zip(&grid) {
        for (l, g) in lr.iter().zip(gr) {
            assert_eq!(l.duration_ps, g.duration_ps);
            assert_eq!(l.result, g.result);
            assert_eq!(l.normalized.to_bits(), g.normalized.to_bits());
        }
    }

    // The `_with` shim too, off the default policy/mapping.
    let legacy = run_workload_grid_with(
        &cfg,
        &schemes,
        SchedulePolicy::Fcfs,
        AddressMapping::RoCoRaBaCh,
        &workloads[..1],
        1_000,
        &[46],
    );
    let grid = ScenarioGrid::new(cfg)
        .schemes(&schemes)
        .policy(SchedulePolicy::Fcfs)
        .mapping(AddressMapping::RoCoRaBaCh)
        .workloads(&workloads[..1])
        .requests_per_core(1_000)
        .seeds(&[46])
        .run();
    assert_eq!(legacy, grid);
}

#[test]
fn scenario_spec_deserializes_into_the_same_run() {
    // A declarative cell is the same run as the builder chain it
    // describes — including a trace frontend on the checked-in sample.
    let spec = ScenarioSpec::parse(
        "scheme = MINT+RFM16\nworkload = mcf\nrequests = 2000\nseed = 31\npolicy = fcfs\n",
    )
    .unwrap();
    let from_spec = spec.run().unwrap();
    let mcf = workload_by_name("mcf").unwrap();
    let direct = Sim::ddr5()
        .scheme(MitigationScheme::MintRfm { rfm_th: 16 })
        .policy(SchedulePolicy::Fcfs)
        .workload(&[mcf; 4], 2_000)
        .seed(31)
        .run();
    assert_eq!(from_spec, direct);

    let trace_spec =
        ScenarioSpec::parse(&format!("scheme = MINT\ntrace = {SAMPLE}\nseed = 42\n")).unwrap();
    let from_spec = trace_spec.run().unwrap();
    let entries = read_trace_file(SAMPLE).unwrap();
    let direct = Sim::ddr5()
        .scheme(MitigationScheme::Mint)
        .trace(&entries)
        .seed(42)
        .run();
    assert_eq!(from_spec, direct);
}

#[test]
fn checked_in_scenario_file_runs_as_a_grid() {
    let text = std::fs::read_to_string("examples/scenarios/zoo_small.scn").unwrap();
    let Scenario::Grid(grid) = parse_any(&text).unwrap() else {
        panic!("zoo_small.scn must parse as a grid");
    };
    assert_eq!(grid.schemes.len(), 3);
    assert_eq!(grid.workload_labels, vec!["lbm", "mcf"]);
    let rows = grid.run();
    assert_eq!(rows.len(), 2);
    assert!((rows[0][0].normalized - 1.0).abs() < 1e-12, "baseline row");
    // MINT rides REF time: identical timeline to Baseline on every row.
    for row in &rows {
        assert_eq!(row[0].duration_ps, row[1].duration_ps);
    }

    let cell = std::fs::read_to_string("examples/scenarios/trace_mint.scn").unwrap();
    let Scenario::Cell(spec) = parse_any(&cell).unwrap() else {
        panic!("trace_mint.scn must parse as a single cell");
    };
    let report = spec.run().unwrap();
    assert_eq!(report.perf.result.requests, 100);
}
