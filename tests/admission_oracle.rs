//! Differential oracle for the Session's heap-based admission loop.
//!
//! The [`Session`](mint_memsys::Session) run loop keeps two admission
//! implementations: the incremental default (a `BTreeSet` of
//! `(issue_ps, core)` arrival keys over the [`System`] readiness cache)
//! and the original sorted-vec scan, retained verbatim as the reference
//! (`set_reference_admission_default`). This suite runs **identical
//! random multi-core, multi-channel scenarios under both loops** —
//! across core counts, channel counts, queue depths, schemes, policies
//! and per-core workload mixes — with the event log captured, and
//! asserts the full [`RunReport`]s are equal. Event equality is the
//! stepwise evidence: every admitted request lands in its channel's
//! bounded queue in arrival order, so a single transposed admission
//! reorders the executed ACT/PRE/CAS stream (and shifts its
//! picosecond timestamps) long before it would show up in aggregate
//! counters. Any divergence prints the deterministic case index that
//! replays it exactly (see `mint_exp::prop`).
//!
//! [`System`]: mint_memsys::System
//! [`RunReport`]: mint_memsys::RunReport

use mint_exp::prop::{forall, u32_in, u64_in, usize_in};
use mint_memsys::{
    saturation_spec, set_reference_admission_default, spec_rate_workloads, MitigationScheme,
    RunReport, SchedulePolicy, Sim, SystemConfig, WorkloadSpec,
};

/// One captured run of the scenario under the selected admission loop.
/// Restores the optimized default before returning.
fn run(
    cfg: SystemConfig,
    scheme: MitigationScheme,
    policy: SchedulePolicy,
    specs: &[WorkloadSpec],
    requests_per_core: u32,
    seed: u64,
    reference: bool,
) -> RunReport {
    set_reference_admission_default(reference);
    let report = Sim::new(cfg)
        .scheme(scheme)
        .policy(policy)
        .workload(specs, requests_per_core)
        .seed(seed)
        .capture_events()
        .run();
    set_reference_admission_default(false);
    report
}

#[test]
fn heap_admission_matches_sorted_vec_reference_stepwise() {
    let schemes = [
        MitigationScheme::Baseline,
        MitigationScheme::Mint,
        MitigationScheme::MintRfm { rfm_th: 16 },
        MitigationScheme::McPara { p: 1.0 / 40.0 },
    ];
    let policies = [SchedulePolicy::Fcfs, SchedulePolicy::frfcfs()];
    // The saturate stream joins the SPEC pool so some cores run with
    // zero think time — arrival ties and full queues are exactly where
    // the two admission loops could disagree.
    let mut pool = spec_rate_workloads();
    pool.push(saturation_spec());
    forall(24, 0xAD3155, |case, rng| {
        let cores = u32_in(rng, 1, 9);
        let channels = 1u32 << usize_in(rng, 0, 3);
        let cfg = SystemConfig {
            cores,
            channels,
            // Shallow queues force admission stalls; deep ones keep
            // every arrival admissible immediately. Stress both.
            queue_depth: u32_in(rng, 1, 33),
            ..SystemConfig::table6()
        };
        let scheme = schemes[usize_in(rng, 0, schemes.len())];
        let policy = policies[usize_in(rng, 0, policies.len())];
        let specs: Vec<WorkloadSpec> = (0..cores)
            .map(|_| pool[usize_in(rng, 0, pool.len())])
            .collect();
        let requests_per_core = u32_in(rng, 50, 400);
        let seed = u64_in(rng, 0, u64::MAX);
        let optimized = run(cfg, scheme, policy, &specs, requests_per_core, seed, false);
        let reference = run(cfg, scheme, policy, &specs, requests_per_core, seed, true);
        assert!(
            !optimized.events.is_empty(),
            "case {case}: event capture must be on for stepwise evidence"
        );
        assert_eq!(
            optimized,
            reference,
            "case {case}: heap admission diverged from the sorted-vec reference \
             (cores {cores}, channels {channels}, depth {}, {} on {})",
            cfg.queue_depth,
            scheme.label(),
            policy.label(),
        );
    });
}
