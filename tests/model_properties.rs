//! Property-based tests of the analytical core: the Sariou–Wolman model's
//! structural properties and the MinTRH solver's correctness.

use mint_rh::analysis::{MinTrhSolver, SwModel, TargetMttf};
use proptest::prelude::*;

fn model(p: f64, t: u32, k: u32) -> SwModel {
    SwModel {
        p_mitigation: p,
        threshold_events: t,
        events_per_refw: k,
        refi_per_event: 1.0,
        row_multiplier: 1.0,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Failure probability is a probability.
    #[test]
    fn probability_in_unit_interval(
        p in 0.001f64..1.0,
        t in 1u32..500,
        k in 1u32..2000,
    ) {
        let v = model(p, t, k).failure_prob_refw();
        prop_assert!((0.0..=1.0).contains(&v), "{v}");
    }

    /// Raising the threshold can only reduce the failure probability.
    #[test]
    fn monotone_in_threshold(
        p in 0.01f64..0.5,
        t in 2u32..300,
        k in 1u32..1500,
    ) {
        let lo = model(p, t, k).failure_prob_refw();
        let hi = model(p, t + 1, k).failure_prob_refw();
        prop_assert!(hi <= lo + 1e-15, "T {t}: {hi} > {lo}");
    }

    /// A higher mitigation probability can only help the defender.
    #[test]
    fn monotone_in_mitigation_probability(
        p in 0.01f64..0.45,
        t in 2u32..200,
        k in 10u32..1000,
    ) {
        let weak = model(p, t, k).failure_prob_refw();
        let strong = model((p * 1.5).min(0.99), t, k).failure_prob_refw();
        prop_assert!(strong <= weak + 1e-15, "{strong} > {weak}");
    }

    /// More events in the window can only increase failure probability.
    #[test]
    fn monotone_in_events(
        p in 0.01f64..0.5,
        t in 2u32..100,
        k in 10u32..500,
    ) {
        let few = model(p, t, k).failure_prob_refw();
        let many = model(p, t, k + 50).failure_prob_refw();
        prop_assert!(many + 1e-15 >= few, "{many} < {few}");
    }

    /// The row multiplier is exactly linear (until clamped).
    #[test]
    fn row_multiplier_linear(
        p in 0.05f64..0.5,
        t in 30u32..100,
        mult in 2u32..100,
    ) {
        let base = model(p, t, 8192);
        let single = base.failure_prob_refw();
        prop_assume!(single * f64::from(mult) < 0.5);
        let multi = SwModel { row_multiplier: f64::from(mult), ..base }
            .failure_prob_refw();
        prop_assert!((multi - single * f64::from(mult)).abs() < 1e-12 * f64::from(mult));
    }

    /// The binary search returns the same boundary as a linear scan.
    #[test]
    fn solver_matches_linear_scan(
        p in 0.05f64..0.5,
        k in 50u32..300,
    ) {
        let solver = MinTrhSolver::new(TargetMttf { years_per_bank: 1e-4 }, 0.032);
        let budget = solver.prob_budget();
        let f = |t: u32| model(p, t, k).failure_prob_refw();
        let fast = solver.min_threshold(1, k, &f);
        let slow = (1..=k).find(|&t| f(t) <= budget).unwrap_or(k);
        prop_assert_eq!(fast, slow);
    }

    /// The recurrence agrees with brute-force enumeration on any small
    /// instance (exhaustive over mitigation outcomes).
    #[test]
    fn matches_brute_force(
        p in 0.05f64..0.95,
        t in 1u32..5,
        k in 1u32..12,
    ) {
        prop_assume!(t <= k);
        let mut exact = 0.0;
        for mask in 0u32..(1 << k) {
            let mut run = 0;
            let mut failed = false;
            for i in 0..k {
                if mask >> i & 1 == 0 {
                    run += 1;
                    if run >= t {
                        failed = true;
                    }
                } else {
                    run = 0;
                }
            }
            if failed {
                let mut prob = 1.0;
                for i in 0..k {
                    prob *= if mask >> i & 1 == 1 { p } else { 1.0 - p };
                }
                exact += prob;
            }
        }
        let m = SwModel {
            p_mitigation: p,
            threshold_events: t,
            events_per_refw: k,
            refi_per_event: 0.0, // isolate the recurrence from the auto term
            row_multiplier: 1.0,
        };
        prop_assert!((m.failure_prob_refw() - exact).abs() < 1e-9);
    }
}
