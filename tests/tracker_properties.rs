//! Property-based tests: invariants every tracker must uphold under
//! arbitrary access patterns.

use mint_rh::core::{Dmq, InDramTracker, Mint, MintConfig, MintRfm, MitigationDecision};
use mint_rh::dram::RowId;
use mint_rh::rng::{Rng64, Xoshiro256StarStar};
use mint_rh::trackers::{
    InDramPara, InDramParaNoOverwrite, Mithril, MithrilConfig, Parfm, Prct, Pride, ProTrr,
    ProTrrConfig, SimpleTrr,
};
use proptest::prelude::*;
use std::collections::HashSet;

/// Builds every tracker in the repository (seeded where stochastic).
fn all_trackers(rng: &mut dyn Rng64) -> Vec<Box<dyn InDramTracker>> {
    vec![
        Box::new(Mint::new(MintConfig::ddr5_default(), rng)),
        Box::new(Mint::new(MintConfig::ddr5_default().without_transitive(), rng)),
        Box::new(Dmq::new(Mint::new(MintConfig::ddr5_default(), rng), 73)),
        Box::new(MintRfm::new(32, rng)),
        Box::new(InDramPara::new(1.0 / 73.0)),
        Box::new(InDramParaNoOverwrite::new(1.0 / 73.0)),
        Box::new(Parfm::new(73)),
        Box::new(Prct::new(65_536)),
        Box::new(Mithril::new(MithrilConfig { entries: 64 })),
        Box::new(ProTrr::new(ProTrrConfig {
            entries: 64,
            blast_radius: 1,
        })),
        Box::new(SimpleTrr::new(16)),
        Box::new(Pride::new(1.0 / 73.0, 4)),
    ]
}

/// Decisions must reference rows related to what was actually activated:
/// an `Aggressor`/`Transitive` decision names an activated row (or, for
/// trackers that observe mitigative refreshes, a refreshed row);
/// a `VictimRefresh` names a neighbour of an activated row.
fn check_decision(
    decision: &MitigationDecision,
    activated: &HashSet<u32>,
    refreshed: &HashSet<u32>,
) {
    match decision {
        MitigationDecision::None => {}
        MitigationDecision::Aggressor(r) | MitigationDecision::Transitive { around: r, .. } => {
            assert!(
                activated.contains(&r.0) || refreshed.contains(&r.0),
                "decision names {r}, never observed"
            );
        }
        MitigationDecision::VictimRefresh(v) => {
            let near = (v.0.saturating_sub(1)..=v.0 + 1)
                .any(|x| activated.contains(&x) || refreshed.contains(&x));
            assert!(near, "victim {v} is not near any observed row");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Drive random activation streams with interleaved refreshes through
    /// every tracker; no panics, and decisions only name observed rows.
    #[test]
    fn decisions_reference_observed_rows(
        seed in 0u64..1_000,
        rows in proptest::collection::vec(2u32..50_000, 1..400),
        refresh_every in 1usize..100,
    ) {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        for tracker in all_trackers(&mut rng).iter_mut() {
            let mut activated = HashSet::new();
            let mut refreshed = HashSet::new();
            for (i, &row) in rows.iter().enumerate() {
                activated.insert(row);
                if let Some(d) = tracker.on_activation(RowId(row), &mut rng) {
                    check_decision(&d, &activated, &refreshed);
                    apply_refreshes(&d, &mut refreshed, tracker.as_mut());
                }
                if i % refresh_every == refresh_every - 1 {
                    let d = tracker.on_refresh(&mut rng);
                    check_decision(&d, &activated, &refreshed);
                    apply_refreshes(&d, &mut refreshed, tracker.as_mut());
                }
            }
        }
    }

    /// Same seed, same stream → identical decisions (full determinism).
    #[test]
    fn trackers_are_deterministic(
        seed in 0u64..1_000,
        rows in proptest::collection::vec(2u32..10_000, 1..200),
    ) {
        let run = |seed: u64, rows: &[u32]| -> Vec<String> {
            let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
            let mut out = Vec::new();
            for tracker in all_trackers(&mut rng).iter_mut() {
                for &row in rows {
                    let _ = tracker.on_activation(RowId(row), &mut rng);
                }
                out.push(format!("{:?}", tracker.on_refresh(&mut rng)));
            }
            out
        };
        prop_assert_eq!(run(seed, &rows), run(seed, &rows));
    }

    /// `reset` restores a pristine tracker: after reset, an empty window
    /// yields no decision for every REF-synchronised design.
    #[test]
    fn reset_clears_pending_state(
        seed in 0u64..1_000,
        rows in proptest::collection::vec(2u32..10_000, 1..100),
    ) {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        for tracker in all_trackers(&mut rng).iter_mut() {
            for &row in &rows {
                let _ = tracker.on_activation(RowId(row), &mut rng);
            }
            tracker.reset(&mut rng);
            let d = tracker.on_refresh(&mut rng);
            prop_assert!(
                d.is_none(),
                "{} returned {:?} after reset + empty window",
                tracker.name(),
                d
            );
        }
    }

    /// Storage accounting is stable and positive.
    #[test]
    fn storage_metadata_is_stable(seed in 0u64..100) {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        for tracker in all_trackers(&mut rng).iter_mut() {
            let bits0 = tracker.storage_bits();
            let entries0 = tracker.entries();
            prop_assert!(bits0 > 0);
            prop_assert!(entries0 > 0);
            for i in 0..100u32 {
                let _ = tracker.on_activation(RowId(10 + i), &mut rng);
            }
            prop_assert_eq!(bits0, tracker.storage_bits(), "{}", tracker.name());
            prop_assert_eq!(entries0, tracker.entries(), "{}", tracker.name());
        }
    }
}

/// Feeds the mitigative refreshes implied by `decision` back to the tracker
/// (as the simulation engine would) and records them.
fn apply_refreshes(
    decision: &MitigationDecision,
    refreshed: &mut HashSet<u32>,
    tracker: &mut dyn InDramTracker,
) {
    let mut refresh = |row: u32| {
        refreshed.insert(row);
        tracker.on_mitigative_refresh(RowId(row));
    };
    match decision {
        MitigationDecision::None => {}
        MitigationDecision::Aggressor(r) => {
            refresh(r.0 - 1);
            refresh(r.0 + 1);
        }
        MitigationDecision::Transitive { around, distance } => {
            let reach = 1 + distance;
            if around.0 > reach {
                refresh(around.0 - reach);
            }
            refresh(around.0 + reach);
        }
        MitigationDecision::VictimRefresh(v) => refresh(v.0),
    }
}
