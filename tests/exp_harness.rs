//! Determinism contract of the `mint-exp` harness, end to end:
//!
//! * N-thread and 1-thread runs of the same `Experiment` + master seed
//!   produce identical aggregates (bitwise, including floats);
//! * `derive_seed` fan-out gives distinct per-trial streams (regression);
//! * a Fig 10-style sweep through `par_map` renders byte-identical output
//!   at `available_parallelism` and at 1 thread.

use mint_rh::analysis::patterns;
use mint_rh::analysis::{MinTrhSolver, TargetMttf};
use mint_rh::attacks::Pattern1;
use mint_rh::core::{Mint, MintConfig};
use mint_rh::dram::RowId;
use mint_rh::exp::prop::{forall, u64_in, usize_in};
use mint_rh::exp::{par_map_jobs, Experiment, Harness, MeanVar, MinMax, Tally, TrialCount};
use mint_rh::rng::{derive_seed, Rng64, Xoshiro256StarStar};
use mint_rh::sim::{MonteCarlo, SimConfig, SimReport};

/// An experiment whose outcome mixes the trial index and a
/// index-dependent number of RNG draws, so scheduling bugs (stream
/// sharing, reordered merges) cannot cancel out.
struct Mixer;

impl Experiment for Mixer {
    type Outcome = f64;

    fn trial(&self, trial_idx: u64, rng: &mut dyn Rng64) -> f64 {
        let mut acc = trial_idx as f64 * 1e-6;
        for _ in 0..=(trial_idx % 7) {
            acc += rng.gen_f64();
        }
        acc
    }
}

type Aggs = (TrialCount, Tally<f64>, MeanVar<f64>, MinMax<f64>);

fn make_aggs() -> Aggs {
    (
        TrialCount::new(),
        Tally::new(|x: &f64| *x > 2.0),
        MeanVar::new(|x: &f64| *x),
        MinMax::new(|x: &f64| *x),
    )
}

fn assert_bitwise_equal(a: &Aggs, b: &Aggs) {
    assert_eq!(a.0.trials, b.0.trials);
    assert_eq!((a.1.hits, a.1.total), (b.1.hits, b.1.total));
    assert_eq!(a.2.count, b.2.count);
    assert_eq!(a.2.mean.to_bits(), b.2.mean.to_bits(), "mean differs");
    assert_eq!(
        a.2.sample_variance().to_bits(),
        b.2.sample_variance().to_bits(),
        "variance differs"
    );
    assert_eq!(a.3.min.to_bits(), b.3.min.to_bits());
    assert_eq!(a.3.max.to_bits(), b.3.max.to_bits());
}

/// Property: for random trial counts, seeds and worker counts, the
/// N-thread aggregates equal the 1-thread aggregates bit for bit.
#[test]
fn n_thread_equals_one_thread_for_any_shape() {
    forall(24, 0xE4A1, |case, rng| {
        let trials = u64_in(rng, 1, 400);
        let seed = rng.next_u64();
        let jobs = usize_in(rng, 2, 9);
        let seq = Harness::new(trials, seed).jobs(1).run(&Mixer, make_aggs);
        let par = Harness::new(trials, seed).jobs(jobs).run(&Mixer, make_aggs);
        assert_eq!(seq.0.trials, trials, "case {case}");
        assert_bitwise_equal(&seq, &par);
    });
}

/// The same contract holds for a real Monte-Carlo simulation experiment
/// (fresh tracker + pattern per trial) at `available_parallelism`.
#[test]
fn sim_monte_carlo_parallel_is_bit_identical() {
    let cfg = SimConfig {
        bank_rows: 4096,
        ..SimConfig::small()
    }
    .with_trh(500);
    let experiment = MonteCarlo {
        config: cfg,
        make_tracker: &|r| Box::new(Mint::new(MintConfig::ddr5_default(), r)),
        make_pattern: &|| Box::new(Pattern1::new(RowId(2000))),
    };
    let aggs = || {
        (
            Tally::new(SimReport::failed),
            MeanVar::new(|r: &SimReport| f64::from(r.max_hammers)),
            MinMax::new(|r: &SimReport| r.demand_acts as f64),
        )
    };
    let n = std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get);
    let seq = Harness::new(200, 0xF00D).jobs(1).run(&experiment, aggs);
    let par = Harness::new(200, 0xF00D).jobs(n).run(&experiment, aggs);
    assert_eq!((seq.0.hits, seq.0.total), (par.0.hits, par.0.total));
    assert_eq!(seq.1.mean.to_bits(), par.1.mean.to_bits());
    assert_eq!(seq.2.min.to_bits(), par.2.min.to_bits());
    assert!(seq.0.hits > 0, "threshold chosen so some trials fail");
    assert!(seq.0.hits < 200, "and some survive");
}

/// Regression: `derive_seed` fan-out yields pairwise-distinct streams —
/// distinct seeds AND distinct first draws for every trial index a large
/// experiment would use.
#[test]
fn derive_seed_fanout_gives_distinct_streams() {
    use std::collections::HashSet;
    let master = 0xDECAF;
    let mut seeds = HashSet::new();
    let mut first_draws = HashSet::new();
    for trial in 0..8192u64 {
        let seed = derive_seed(master, trial);
        assert!(seeds.insert(seed), "duplicate seed at trial {trial}");
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        assert!(
            first_draws.insert(rng.next_u64()),
            "duplicate first draw at trial {trial}"
        );
    }
    // And different masters give different fans.
    assert_ne!(derive_seed(1, 0), derive_seed(2, 0));
}

/// Acceptance check: a Fig 10-style pattern sweep fanned out at
/// `available_parallelism` produces byte-identical output to the same
/// sweep forced to 1 thread.
#[test]
fn fig10_style_sweep_is_byte_identical_across_job_counts() {
    let solver = MinTrhSolver::new(TargetMttf::paper_default(), 0.032);
    let ks: Vec<u32> = (1..=73).collect();
    let render = |jobs: usize| -> String {
        par_map_jobs(Some(jobs), &ks, |_, &k| {
            format!("{k}\t{}\n", patterns::pattern2_min_trh(&solver, k, 73, 73))
        })
        .concat()
    };
    let n = std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get);
    let seq = render(1);
    let par = render(n);
    assert_eq!(seq.as_bytes(), par.as_bytes());
    assert_eq!(seq.lines().count(), 73);
}
