//! End-to-end integration test: every headline number of the paper,
//! computed through the public API of the facade crate, must land in its
//! documented band (EXPERIMENTS.md records the exact measured values).

use mint_rh::analysis::ada::AdaConfig;
use mint_rh::analysis::{comparison, feint, mithril_bound, patterns, postponement, rfm, ttf};
use mint_rh::analysis::{MinTrhSolver, TargetMttf};

fn solver() -> MinTrhSolver {
    MinTrhSolver::new(TargetMttf::paper_default(), 0.032)
}

#[test]
fn headline_mint_min_trh_2800() {
    // §V-E: MINT tolerates MinTRH 2800 (MinTRH-D 1400).
    let t = patterns::pattern2_min_trh(&solver(), 73, 73, 74);
    assert!((2740..2870).contains(&t), "{t}");
}

#[test]
fn headline_pattern1_2461() {
    let t = patterns::pattern2_min_trh(&solver(), 1, 73, 73);
    assert!((2400..2530).contains(&t), "{t}");
}

#[test]
fn headline_prct_623() {
    let d = feint::prct_min_trh_d();
    assert!((600..650).contains(&d), "{d}");
}

#[test]
fn headline_mithril_677_entries_for_1400() {
    let d = mithril_bound::min_trh_d(677);
    assert!((1350..1450).contains(&d), "{d}");
}

#[test]
fn headline_dmq_1482() {
    let d = AdaConfig::mint_default().ada_min_trh_d(&solver());
    assert!((1420..1540).contains(&d), "{d}");
}

#[test]
fn headline_rfm_scaling_689_and_356() {
    let rows = rfm::table5(&solver());
    assert!(
        (620..740).contains(&rows[2].min_trh_d),
        "{}",
        rows[2].min_trh_d
    );
    assert!(
        (310..390).contains(&rows[3].min_trh_d),
        "{}",
        rows[3].min_trh_d
    );
}

#[test]
fn headline_deterministic_478k() {
    assert_eq!(
        postponement::deterministic_attack_acts(73, 8192, 5),
        478_296
    );
}

#[test]
fn headline_mint_within_2x_of_prct_with_postponement() {
    // Abstract + §VI-D: "within 2x of an idealized tracker".
    let rows = postponement::table4(&solver());
    let mint = rows.iter().find(|r| r.design == "MINT").unwrap();
    let prct = rows.iter().find(|r| r.design == "PRCT").unwrap();
    let ratio = f64::from(mint.with_dmq_adaptive) / f64::from(prct.with_dmq);
    assert!(ratio < 2.05, "ratio {ratio} (paper: 1.9x)");
}

#[test]
fn headline_table3_consistency() {
    // Table III: MINT (1 entry) matches a 677-entry Mithril and beats both
    // probabilistic baselines.
    let rows = comparison::table3(&solver());
    let get = |n: &str| rows.iter().find(|r| r.design == n).unwrap().min_trh_d;
    assert!(get("MINT") <= get("Mithril") + 80);
    assert!(get("MINT") < get("InDRAM-PARA"));
    assert!(get("MINT") < get("PARFM"));
}

#[test]
fn headline_table7_scaling() {
    let rows = ttf::table7(0.032);
    // 10K-year row within bands of (1.48K, 689, 356).
    let r = &rows[1];
    assert!((1420..1540).contains(&r.mint));
    assert!((620..740).contains(&r.rfm32));
    assert!((310..390).contains(&r.rfm16));
}
