//! Differential oracle for the scheduler's incremental planner.
//!
//! The channel keeps two planning implementations: the incremental
//! default (cached earliest-starts with dirty-bit invalidation, plan
//! adoption on push, seed-hinted arbitration) and the original scratch
//! planner, retained verbatim as the reference
//! (`Channel::set_reference_planner`). This suite drives **two channels
//! through identical random push/service interleavings** — one per
//! planner — across policies, schemes, mappings and queue depths, and
//! asserts they agree at every observable step: the admission lookahead
//! (`next_start_ps`), every [`Completion`] field, and the final
//! [`SimResult`]. Any divergence prints the deterministic case index
//! that replays it exactly (see `mint_exp::prop`).

use mint_exp::prop::{forall, u64_in, usize_in};
use mint_memsys::{
    AddressMapping, Channel, MitigationScheme, Request, SchedulePolicy, SystemConfig,
};
use mint_rng::Rng64;

/// A random LLC-miss request: cache-line aligned address in a 16 GiB
/// window, mixed reads/writes, no think time (arrival is explicit).
fn random_request(rng: &mut impl Rng64) -> Request {
    Request {
        addr: u64_in(rng, 0, 1 << 34) & !63,
        is_read: rng.gen_bool(0.7),
        think_time_ps: 0,
    }
}

#[test]
fn incremental_planner_matches_scratch_reference_stepwise() {
    let policies = [SchedulePolicy::Fcfs, SchedulePolicy::frfcfs()];
    let schemes = [
        MitigationScheme::Baseline,
        MitigationScheme::Mint,
        MitigationScheme::MintRfm { rfm_th: 16 },
        MitigationScheme::McPara { p: 1.0 / 40.0 },
    ];
    let mappings = [
        AddressMapping::RoBaRaCoCh,
        AddressMapping::RoCoRaBaCh,
        AddressMapping::ChRaBaRoCo,
    ];
    let depths = [2u32, 4, 8, 32];

    forall(48, 0x04AC1E, |case, rng| {
        let policy = policies[usize_in(rng, 0, policies.len())];
        let scheme = schemes[usize_in(rng, 0, schemes.len())];
        let mapping = mappings[usize_in(rng, 0, mappings.len())];
        let cfg = SystemConfig {
            queue_depth: depths[usize_in(rng, 0, depths.len())],
            ..SystemConfig::table6()
        };
        let seed = u64_in(rng, 0, u64::MAX - 1);
        let mut inc = Channel::new(cfg, scheme, policy, mapping, seed);
        let mut refc = Channel::new(cfg, scheme, policy, mapping, seed);
        refc.set_reference_planner(true);

        let ctx = format!(
            "case {case}: {} {} {mapping:?} depth {}",
            scheme.label(),
            policy.label(),
            cfg.queue_depth
        );
        let mut arrival = 0u64;
        let mut serviced = 0u32;
        for step in 0..600 {
            // Bias toward pushing (bursty arrivals keep the queue deep,
            // which is where arbitration actually has choices), service
            // when full — and occasionally when non-empty, so the clock
            // interleaves with arrivals in both directions.
            let push = inc.has_room() && (inc.pending() == 0 || rng.gen_bool(0.7));
            if push {
                // Arrivals move forward in bursts: often simultaneous,
                // sometimes jumping past the current backlog.
                arrival += u64_in(rng, 0, 4_000);
                let req = random_request(rng);
                inc.push(req, serviced % 4, arrival);
                refc.push(req, serviced % 4, arrival);
            } else {
                let a = inc.service_next();
                let b = refc.service_next();
                assert_eq!(a, b, "{ctx}, step {step}: completions diverge");
                serviced += 1;
            }
            assert_eq!(
                inc.next_start_ps(),
                refc.next_start_ps(),
                "{ctx}, step {step}: admission lookahead diverges"
            );
        }
        while inc.pending() > 0 {
            assert_eq!(
                inc.service_next(),
                refc.service_next(),
                "{ctx}: drain completions diverge"
            );
        }
        assert!(
            refc.service_next().is_none(),
            "{ctx}: queue lengths diverge"
        );
        let end = arrival + 1;
        inc.finish(end);
        refc.finish(end);
        assert_eq!(inc.result(), refc.result(), "{ctx}: final stats diverge");
        assert!(
            inc.plans_computed() <= refc.plans_computed(),
            "{ctx}: the incremental planner must never plan more often \
             ({} vs {})",
            inc.plans_computed(),
            refc.plans_computed()
        );
    });
}
