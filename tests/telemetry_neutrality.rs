//! Telemetry neutrality, pinned.
//!
//! Turning the observability subsystem on must not perturb a run by a
//! single bit: the scheduler/engine/tracker hooks only *read* simulator
//! state, never advance it (the one tempting shortcut — calling the
//! window planner from a hook — would mutate checkpointed state, which
//! is exactly what this suite exists to catch). A telemetry-on run and
//! its telemetry-off twin must therefore agree on duration, the full
//! `SimResult`, per-core outcomes, energy to the last f64 bit, and the
//! captured event stream — across the whole mitigation zoo on both the
//! Table VI 1×1 DIMM and a 2-channel × 2-rank scale-out.

use mint_memsys::{workload_by_name, MitigationScheme, RunReport, Sim, SystemConfig};

const REQUESTS_PER_CORE: u32 = 400;

fn topology(channels: u32, ranks: u32) -> SystemConfig {
    SystemConfig {
        channels,
        ranks,
        ..SystemConfig::table6()
    }
}

fn run(scheme: MitigationScheme, cfg: SystemConfig, telemetry: bool) -> RunReport {
    let mcf = workload_by_name("mcf").expect("workload in the suite");
    let mut sim = Sim::new(cfg)
        .scheme(scheme)
        .workload(&[mcf; 4], REQUESTS_PER_CORE)
        .seed(11)
        .capture_events();
    if telemetry {
        sim = sim.telemetry();
    }
    sim.build().run()
}

/// Every perf-bearing field of the report, to the last bit.
fn assert_bits_equal(got: &RunReport, want: &RunReport, what: &str) {
    assert_eq!(
        got.perf.duration_ps, want.perf.duration_ps,
        "{what}: duration"
    );
    assert_eq!(got.perf.result, want.perf.result, "{what}: SimResult");
    assert_eq!(got.cores.len(), want.cores.len(), "{what}: core count");
    for (i, (a, b)) in got.cores.iter().zip(&want.cores).enumerate() {
        assert_eq!(
            (a.finish_ps, a.requests),
            (b.finish_ps, b.requests),
            "{what}: core {i}"
        );
    }
    assert_eq!(
        (got.energy.act_j.to_bits(), got.energy.non_act_j.to_bits()),
        (want.energy.act_j.to_bits(), want.energy.non_act_j.to_bits()),
        "{what}: energy must match to the last f64 bit"
    );
    assert_eq!(got.events, want.events, "{what}: event stream");
}

fn neutral_on(cfg: SystemConfig) {
    let total = u64::from(REQUESTS_PER_CORE) * 4;
    for scheme in MitigationScheme::zoo() {
        let what = format!("{scheme:?} {}ch x {}rk", cfg.channels, cfg.ranks);
        let off = run(scheme, cfg, false);
        let on = run(scheme, cfg, true);
        assert_bits_equal(&on, &off, &what);
        assert!(off.telemetry.is_none(), "{what}: off runs carry no report");
        let t = on.telemetry.as_ref().expect("telemetry enabled");
        // The report is not just present but populated: every request
        // accounted, every channel's scheduler heard from.
        assert_eq!(t.counter("session", "serviced"), Some(total), "{what}");
        let decisions: u64 = (0..cfg.channels)
            .map(|ch| {
                t.counter(&format!("ch{ch}/sched"), "decisions")
                    .unwrap_or(0)
            })
            .sum();
        assert_eq!(decisions, total, "{what}: scheduler decisions");
    }
}

#[test]
fn telemetry_is_bit_neutral_on_the_table6_dimm() {
    neutral_on(topology(1, 1));
}

#[test]
fn telemetry_is_bit_neutral_on_a_two_by_two_dimm() {
    neutral_on(topology(2, 2));
}
