//! Cross-validation: the ground-truth oracle riding the command-level
//! DDR5 channel against the slot-indexed `mint-sim` engine, on identical
//! pattern streams.
//!
//! The two pipelines model the same physics at different granularities —
//! the sim engine walks abstract `(tREFI, slot)` space, the channel
//! schedules real commands under real timings with the oracle replaying
//! the executed stream. For deterministic trackers the attained hammer
//! counts must agree: exactly when no tracker is in the loop, and within
//! a REF opportunity of slack for PRCT (the channel processes REF
//! boundaries lazily, so the final window's mitigation may not fire).

use mint_rh::attacks::{AccessPattern, Pattern1, Pattern2, PatternSpec};
use mint_rh::core::{InDramTracker, MitigationDecision};
use mint_rh::dram::RowId;
use mint_rh::memsys::{AddressMapping, MitigationScheme, SchedulePolicy, SystemConfig};
use mint_rh::redteam::{run_attack, RedteamConfig};
use mint_rh::rng::{Rng64, Xoshiro256StarStar};
use mint_rh::sim::{Engine, SimConfig};
use mint_rh::trackers::Prct;

/// tREFI windows per cell: an eighth of a tREFW keeps the debug-mode
/// channel replay in seconds while still crossing the first auto-refresh
/// sweep of the attacked rows.
const REFIS: u64 = 1024;

/// A tracker that never mitigates — the sim-engine twin of
/// `MitigationScheme::Baseline`.
struct NoMitigation;

impl InDramTracker for NoMitigation {
    fn on_activation(&mut self, _row: RowId, _rng: &mut dyn Rng64) -> Option<MitigationDecision> {
        None
    }
    fn on_refresh(&mut self, _rng: &mut dyn Rng64) -> MitigationDecision {
        MitigationDecision::None
    }
    fn name(&self) -> &'static str {
        "none"
    }
    fn entries(&self) -> usize {
        0
    }
    fn storage_bits(&self) -> u64 {
        0
    }
    fn reset(&mut self, _rng: &mut dyn Rng64) {}
}

/// Feeds an inner pattern's slots only for the first `refis` tREFI (the
/// sim engine always runs whole tREFW windows; the channel run is
/// shorter).
struct Truncated {
    inner: Box<dyn AccessPattern>,
    refis: u64,
}

impl AccessPattern for Truncated {
    fn next_act(&mut self, refi: u64, slot: u32) -> Option<RowId> {
        if refi >= self.refis {
            return None;
        }
        self.inner.next_act(refi, slot)
    }
    fn name(&self) -> &'static str {
        "truncated"
    }
    fn target_victims(&self) -> Vec<RowId> {
        self.inner.target_victims()
    }
    fn reset(&mut self) {
        self.inner.reset();
    }
}

fn redteam_config() -> RedteamConfig {
    RedteamConfig {
        cfg: SystemConfig::table6(),
        mapping: AddressMapping::default(),
        policy: SchedulePolicy::default(),
        target_bank: 5,
        base_row: RowId(4000),
        attack_refis: REFIS,
        corun_refis: 64,
        trh_grid: vec![1400],
        benign_workload: "mcf",
        benign_requests_per_core: 1_000,
        seed: 9,
    }
}

fn cross_validation_patterns() -> Vec<PatternSpec> {
    vec![
        PatternSpec::new("pattern-1", || Box::new(Pattern1::new(RowId(4000)))),
        PatternSpec::new("pattern-2", || Box::new(Pattern2::new(RowId(4000), 16, 73))),
    ]
}

/// Runs `spec`'s pattern through the slot-indexed sim engine for
/// [`REFIS`] tREFI at the device-true auto-refresh pacing (full-size
/// bank, canonical 8192-tREFI retention window) and reports the attained
/// maximum.
fn engine_max_hammers(tracker: &mut dyn InDramTracker, spec: &PatternSpec) -> u32 {
    let mut pattern = Truncated {
        inner: spec.build(),
        refis: REFIS,
    };
    let mut rng = Xoshiro256StarStar::seed_from_u64(17);
    Engine::new(SimConfig::ddr5_default())
        .run(tracker, &mut pattern, &mut rng)
        .max_hammers
}

#[test]
fn oracle_matches_engine_exactly_without_mitigation() {
    // No tracker in the loop: the attained count is pure arithmetic
    // (ACTs per tREFI minus the rolling sweep reset), so the channel
    // oracle and the slot engine must agree *exactly*.
    let rc = redteam_config();
    for spec in cross_validation_patterns() {
        let (summary, _) = run_attack(&rc, MitigationScheme::Baseline, &spec, 3);
        let engine = engine_max_hammers(&mut NoMitigation, &spec);
        assert_eq!(
            summary.max_hammers,
            engine,
            "{}: oracle {} vs engine {engine}",
            spec.name(),
            summary.max_hammers
        );
        assert!(summary.max_hammers > 0);
        // The hottest row must be one of the pattern's declared targets.
        assert!(
            spec.build()
                .target_victims()
                .contains(&RowId(summary.hottest_row)),
            "{}: hottest row {} is not a pattern victim",
            spec.name(),
            summary.hottest_row
        );
    }
}

#[test]
fn oracle_matches_engine_for_prct_within_one_ref_opportunity() {
    // PRCT is deterministic (no RNG), so both pipelines drive identical
    // tracker state from identical ACT streams; the only slack is the
    // lazily-processed final REF boundary (one mitigation of two victim
    // refreshes at blast radius 1).
    let rc = redteam_config();
    for spec in cross_validation_patterns() {
        let (summary, _) = run_attack(&rc, MitigationScheme::Prct, &spec, 3);
        let mut prct = Prct::new(SimConfig::ddr5_default().bank_rows);
        let engine = engine_max_hammers(&mut prct, &spec);
        let diff = summary.max_hammers.abs_diff(engine);
        assert!(
            diff <= 2,
            "{}: oracle {} vs engine {engine} diverge by {diff}",
            spec.name(),
            summary.max_hammers
        );
    }
}
