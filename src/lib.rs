//! # mint-rh — a reproduction of MINT (MICRO 2024)
//!
//! This is the facade crate for a full Rust reproduction of
//! *"MINT: Securely Mitigating Rowhammer with a Minimalist In-DRAM Tracker"*
//! (Qureshi, Qazi, Jaleel — MICRO 2024, arXiv:2407.16038).
//!
//! It re-exports the workspace crates under stable module names:
//!
//! * [`rng`] — deterministic PRNG substrate (models the in-DRAM TRNG).
//! * [`dram`] — DDR5 parameters, bank/row hammer model, refresh engine.
//! * [`core`] — **the paper's contribution**: the [`core::Mint`] tracker,
//!   the [`core::Dmq`] delayed-mitigation queue and RFM co-design.
//! * [`trackers`] — baseline trackers (InDRAM-PARA, PARFM, PRCT, Mithril,
//!   ProTRR, TRR, PrIDE).
//! * [`attacks`] — Rowhammer attack pattern generators.
//! * [`analysis`] — the analytical security models (Sariou–Wolman, MTTF,
//!   MinTRH, Markov-chain adaptive attacks).
//! * [`sim`] — the Monte-Carlo attack simulator.
//! * [`memsys`] — the performance/energy substrate (Gem5 substitute),
//!   run through one surface: the [`memsys::Sim`] builder and the
//!   declarative [`memsys::ScenarioSpec`]/[`memsys::ScenarioGrid`] layer.
//! * [`redteam`] — the adversarial frontend + ground-truth escape oracle
//!   closing the attacks↔memsys gap (scheme × pattern escape grids,
//!   performance under attack).
//! * [`exp`] — the parallel experiment harness every layer above fans its
//!   trials, sweep points and workload grids through (deterministic:
//!   N-thread runs are bit-identical to 1-thread runs).
//! * [`serve`] — the resident scenario service: a streaming JSON-lines
//!   job queue (`run_scenario --serve`) over the [`memsys`] checkpoint/
//!   restore layer, with worker-count-invariant output ordering.
//!
//! # Quickstart
//!
//! ```
//! use mint_rh::core::{InDramTracker, Mint, MintConfig};
//! use mint_rh::dram::RowId;
//! use mint_rh::rng::Xoshiro256StarStar;
//!
//! let mut rng = Xoshiro256StarStar::seed_from_u64(7);
//! // The plain §V-B design (no transitive slot) for a deterministic demo.
//! let config = MintConfig::ddr5_default().without_transitive();
//! let mut mint = Mint::new(config, &mut rng);
//!
//! // One tREFI worth of a classic single-sided attack: MINT is guaranteed
//! // to select the aggressor because it occupies every activation slot.
//! for _ in 0..73 {
//!     mint.on_activation(RowId(1000), &mut rng);
//! }
//! let decision = mint.on_refresh(&mut rng);
//! assert!(decision.mitigates(RowId(1000)));
//! ```
//!
//! See `DESIGN.md` for the complete system inventory and `EXPERIMENTS.md`
//! for the paper-vs-measured record of every table and figure.

pub use mint_analysis as analysis;
pub use mint_attacks as attacks;
pub use mint_core as core;
pub use mint_dram as dram;
pub use mint_exp as exp;
pub use mint_memsys as memsys;
pub use mint_redteam as redteam;
pub use mint_rng as rng;
pub use mint_serve as serve;
pub use mint_sim as sim;
pub use mint_trackers as trackers;
