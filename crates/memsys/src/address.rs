//! Physical-address decoding: configurable channel/rank/bank-group/bank/
//! row/column bit slicing.
//!
//! Every request enters the channel as a byte address; the decoder slices
//! it into DRAM coordinates according to a named [`AddressMapping`]. The
//! mapping decides which locality a software access stream turns into —
//! row-buffer hits ([`RoBaRaCoCh`](AddressMapping::RoBaRaCoCh) keeps
//! consecutive lines in one row) or bank-level parallelism
//! ([`RoCoRaBaCh`](AddressMapping::RoCoRaBaCh) stripes consecutive lines
//! across banks) — which is exactly the knob command-level simulators like
//! Ramulator and DRAMsim3 expose, and which materially shifts mitigation
//! overheads.
//!
//! All field widths are powers of two, so encode→decode is a bijection on
//! `addr_bits()`-wide addresses (pinned by property tests in
//! `tests/address_properties.rs`). Addresses beyond the organisation's
//! capacity are **rejected, not wrapped**: DRAMsim3-class integrations
//! have historically lost rank/channel bits by silently truncating
//! out-of-range addresses, so [`AddressDecoder::decode`] panics (and
//! [`AddressDecoder::try_decode`] errors) instead of aliasing two
//! physical addresses onto one bank.

use crate::config::SystemConfig;

/// The DRAM coordinates of one cache-line address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodedAddr {
    /// Channel index.
    pub channel: u32,
    /// Rank index.
    pub rank: u32,
    /// Bank group within the rank.
    pub bank_group: u32,
    /// Bank within the bank group.
    pub bank: u32,
    /// Row within the bank.
    pub row: u32,
    /// Cache-line column within the row.
    pub column: u32,
}

impl DecodedAddr {
    /// The flat bank index within one rank
    /// (`bank_group × banks_per_group + bank`).
    #[must_use]
    pub fn flat_bank(&self, banks_per_group: u32) -> u32 {
        self.bank_group * banks_per_group + self.bank
    }

    /// The channel-local bank index across all ranks of the channel
    /// (`rank × banks_per_rank + flat_bank`) — what the controller's
    /// per-bank state and the `bank` field of every
    /// [`MemEvent`](crate::MemEvent) are indexed by.
    #[must_use]
    pub fn channel_bank(&self, org: &DramOrg) -> u32 {
        self.rank * org.banks_per_rank() + self.flat_bank(org.banks_per_group)
    }

    /// The system-global bank index
    /// (`channel × ranks × banks_per_rank + channel_bank`) — what
    /// topology-wide consumers such as the red-team oracle address banks
    /// by.
    #[must_use]
    pub fn system_bank(&self, org: &DramOrg) -> u32 {
        self.channel * org.ranks * org.banks_per_rank() + self.channel_bank(org)
    }
}

/// The address fields a mapping orders (channel/rank widths follow the
/// configured topology — zero-width in the Table VI 1×1 system — and the
/// slicer handles any power-of-two width).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Field {
    Channel,
    Rank,
    BankGroup,
    Bank,
    Row,
    Column,
}

/// Named physical-address mappings (Ramulator-style MSB→LSB field order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AddressMapping {
    /// Row-interleaved (MSB `Ro|Bg|Ba|Ra|Co|Ch` LSB): consecutive cache
    /// lines walk the column bits of one row, so streaming accesses become
    /// row-buffer hits. The default.
    #[default]
    RoBaRaCoCh,
    /// Bank-interleaved (MSB `Ro|Co|Ra|Bg|Ba|Ch` LSB): consecutive cache
    /// lines stripe across banks, trading row hits for bank-level
    /// parallelism.
    RoCoRaBaCh,
    /// Sequential / row-major (MSB `Ch|Ra|Bg|Ba|Ro|Co` LSB): each bank
    /// owns one contiguous slab of the address space.
    ChRaBaRoCo,
}

impl AddressMapping {
    /// Every named mapping (for sweeps and property tests).
    #[must_use]
    pub fn all() -> Vec<AddressMapping> {
        vec![
            AddressMapping::RoBaRaCoCh,
            AddressMapping::RoCoRaBaCh,
            AddressMapping::ChRaBaRoCo,
        ]
    }

    /// Short label for reports.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            AddressMapping::RoBaRaCoCh => "RoBaRaCoCh",
            AddressMapping::RoCoRaBaCh => "RoCoRaBaCh",
            AddressMapping::ChRaBaRoCo => "ChRaBaRoCo",
        }
    }

    /// Parses a mapping from its [`label`](AddressMapping::label) form,
    /// case-insensitively — the inverse of `label`, used by the
    /// declarative [`ScenarioSpec`](crate::ScenarioSpec) text format.
    /// Returns `None` for unknown mappings.
    #[must_use]
    pub fn parse(s: &str) -> Option<AddressMapping> {
        AddressMapping::all()
            .into_iter()
            .find(|m| m.label().eq_ignore_ascii_case(s.trim()))
    }

    /// The field order, most-significant first.
    fn order(self) -> [Field; 6] {
        match self {
            AddressMapping::RoBaRaCoCh => [
                Field::Row,
                Field::BankGroup,
                Field::Bank,
                Field::Rank,
                Field::Column,
                Field::Channel,
            ],
            AddressMapping::RoCoRaBaCh => [
                Field::Row,
                Field::Column,
                Field::Rank,
                Field::BankGroup,
                Field::Bank,
                Field::Channel,
            ],
            AddressMapping::ChRaBaRoCo => [
                Field::Channel,
                Field::Rank,
                Field::BankGroup,
                Field::Bank,
                Field::Row,
                Field::Column,
            ],
        }
    }
}

/// The DRAM organisation the decoder slices addresses for. All counts must
/// be powers of two (bit slicing), which the constructor asserts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramOrg {
    /// Channels (1 in the evaluated system).
    pub channels: u32,
    /// Ranks per channel (1).
    pub ranks: u32,
    /// Bank groups per rank.
    pub bank_groups: u32,
    /// Banks per bank group.
    pub banks_per_group: u32,
    /// Rows per bank.
    pub rows: u32,
    /// Cache-line columns per row.
    pub columns: u32,
}

impl DramOrg {
    /// The organisation implied by a [`SystemConfig`]: `cfg.channels`
    /// channels of `cfg.ranks` ranks each (Table VI configures 1×1).
    ///
    /// # Panics
    ///
    /// Panics if any field count is not a power of two.
    #[must_use]
    pub fn from_system(cfg: &SystemConfig) -> Self {
        let org = Self {
            channels: cfg.channels,
            ranks: cfg.ranks,
            bank_groups: cfg.bank_groups,
            banks_per_group: cfg.banks_per_group(),
            rows: cfg.rows_per_bank,
            columns: cfg.columns_per_row,
        };
        org.assert_pow2();
        org
    }

    /// Banks per rank (`bank_groups × banks_per_group`).
    #[must_use]
    pub fn banks_per_rank(&self) -> u32 {
        self.bank_groups * self.banks_per_group
    }

    /// Banks in the whole organisation
    /// (`channels × ranks × banks_per_rank`).
    #[must_use]
    pub fn total_banks(&self) -> u32 {
        self.channels * self.ranks * self.banks_per_rank()
    }

    fn assert_pow2(&self) {
        for (name, n) in [
            ("channels", self.channels),
            ("ranks", self.ranks),
            ("bank_groups", self.bank_groups),
            ("banks_per_group", self.banks_per_group),
            ("rows", self.rows),
            ("columns", self.columns),
        ] {
            assert!(
                n.is_power_of_two(),
                "{name} = {n} must be a power of two for bit slicing"
            );
        }
    }

    fn width(&self, f: Field) -> u32 {
        let count = match f {
            Field::Channel => self.channels,
            Field::Rank => self.ranks,
            Field::BankGroup => self.bank_groups,
            Field::Bank => self.banks_per_group,
            Field::Row => self.rows,
            Field::Column => self.columns,
        };
        count.trailing_zeros()
    }

    /// Total cache lines addressable by this organisation.
    #[must_use]
    pub fn lines(&self) -> u64 {
        u64::from(self.channels)
            * u64::from(self.ranks)
            * u64::from(self.bank_groups)
            * u64::from(self.banks_per_group)
            * u64::from(self.rows)
            * u64::from(self.columns)
    }
}

/// Bits of the cache-line offset within an address (64-byte lines).
pub const LINE_OFFSET_BITS: u32 = 6;

/// An address whose high bits exceed the organisation's capacity — the
/// silent-wrap failure mode DRAMsim3-style integrations are known for
/// (rank/channel bits truncated, two physical addresses aliased onto one
/// bank). The decoder refuses such addresses instead of wrapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddressOutOfRange {
    /// The offending byte address.
    pub addr: u64,
    /// Significant bits the organisation can address.
    pub addr_bits: u32,
}

impl std::fmt::Display for AddressOutOfRange {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "address {:#x} out of range: the organisation spans {} address \
             bits (refusing to wrap — see DramOrg)",
            self.addr, self.addr_bits
        )
    }
}

impl std::error::Error for AddressOutOfRange {}

/// A bidirectional physical-address ↔ DRAM-coordinate translator for one
/// organisation and one named mapping.
///
/// # Examples
///
/// ```
/// use mint_memsys::{AddressDecoder, AddressMapping, SystemConfig};
/// let d = AddressDecoder::new(&SystemConfig::table6(), AddressMapping::RoBaRaCoCh);
/// let a = d.decode(0x4000_0040);
/// assert_eq!(d.encode(a), 0x4000_0040);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddressDecoder {
    org: DramOrg,
    mapping: AddressMapping,
}

impl AddressDecoder {
    /// Builds a decoder for the organisation implied by `cfg`.
    #[must_use]
    pub fn new(cfg: &SystemConfig, mapping: AddressMapping) -> Self {
        Self {
            org: DramOrg::from_system(cfg),
            mapping,
        }
    }

    /// Builds a decoder for an explicit organisation.
    ///
    /// # Panics
    ///
    /// Panics if any organisation field count is not a power of two.
    #[must_use]
    pub fn with_org(org: DramOrg, mapping: AddressMapping) -> Self {
        org.assert_pow2();
        Self { org, mapping }
    }

    /// The organisation this decoder slices for.
    #[must_use]
    pub fn org(&self) -> &DramOrg {
        &self.org
    }

    /// The mapping in force.
    #[must_use]
    pub fn mapping(&self) -> AddressMapping {
        self.mapping
    }

    /// Significant byte-address bits (line offset + all field widths).
    /// Addresses at or beyond `2^addr_bits()` are rejected by
    /// [`decode`](Self::decode) / [`try_decode`](Self::try_decode).
    #[must_use]
    pub fn addr_bits(&self) -> u32 {
        LINE_OFFSET_BITS
            + self
                .mapping
                .order()
                .iter()
                .map(|&f| self.org.width(f))
                .sum::<u32>()
    }

    /// Slices a byte address into DRAM coordinates. The intra-line offset
    /// is ignored; bits above [`addr_bits`](Self::addr_bits) are **not**
    /// — an address beyond the organisation's capacity panics rather than
    /// silently wrapping onto the wrong channel/rank/bank (use
    /// [`try_decode`](Self::try_decode) for a recoverable error).
    ///
    /// # Panics
    ///
    /// Panics if `addr >= 2^addr_bits()`.
    #[must_use]
    pub fn decode(&self, addr: u64) -> DecodedAddr {
        match self.try_decode(addr) {
            Ok(a) => a,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`decode`](Self::decode): `Err` when the address lies
    /// beyond the organisation's `2^addr_bits()` capacity, instead of
    /// wrapping it onto an aliased bank.
    ///
    /// # Errors
    ///
    /// Returns [`AddressOutOfRange`] if `addr >= 2^addr_bits()`.
    pub fn try_decode(&self, addr: u64) -> Result<DecodedAddr, AddressOutOfRange> {
        let addr_bits = self.addr_bits();
        if addr_bits < u64::BITS && (addr >> addr_bits) != 0 {
            return Err(AddressOutOfRange { addr, addr_bits });
        }
        let mut line = addr >> LINE_OFFSET_BITS;
        let mut out = DecodedAddr {
            channel: 0,
            rank: 0,
            bank_group: 0,
            bank: 0,
            row: 0,
            column: 0,
        };
        // Fields are laid out MSB-first, so consume from the LSB in
        // reverse order.
        for &f in self.mapping.order().iter().rev() {
            let w = self.org.width(f);
            let v = (line & ((1u64 << w) - 1)) as u32;
            line >>= w;
            match f {
                Field::Channel => out.channel = v,
                Field::Rank => out.rank = v,
                Field::BankGroup => out.bank_group = v,
                Field::Bank => out.bank = v,
                Field::Row => out.row = v,
                Field::Column => out.column = v,
            }
        }
        Ok(out)
    }

    /// Packs DRAM coordinates back into the byte address of the line's
    /// first byte — the exact inverse of [`decode`](Self::decode) on
    /// line-aligned, in-range addresses.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is out of range for the organisation.
    #[must_use]
    pub fn encode(&self, a: DecodedAddr) -> u64 {
        let mut line = 0u64;
        for &f in self.mapping.order().iter() {
            let w = self.org.width(f);
            let (v, limit) = match f {
                Field::Channel => (a.channel, self.org.channels),
                Field::Rank => (a.rank, self.org.ranks),
                Field::BankGroup => (a.bank_group, self.org.bank_groups),
                Field::Bank => (a.bank, self.org.banks_per_group),
                Field::Row => (a.row, self.org.rows),
                Field::Column => (a.column, self.org.columns),
            };
            assert!(v < limit, "{f:?} = {v} out of range (< {limit})");
            line = (line << w) | u64::from(v);
        }
        line << LINE_OFFSET_BITS
    }

    /// Convenience: the address of `(system_bank, row, column)`, where
    /// `system_bank` is a system-global bank index spanning the whole
    /// topology (channel-major, then rank, then in-rank flat bank — the
    /// inverse of [`DecodedAddr::system_bank`]). In the 1-channel ×
    /// 1-rank organisation this is exactly the in-rank flat bank index.
    /// What the synthetic workload generator and unit tests build
    /// requests from.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is out of range.
    #[must_use]
    pub fn encode_bank_row(&self, system_bank: u32, row: u32, column: u32) -> u64 {
        let bpg = self.org.banks_per_group;
        let bpr = self.org.banks_per_rank();
        let (rank_major, flat) = (system_bank / bpr, system_bank % bpr);
        let (channel, rank) = (rank_major / self.org.ranks, rank_major % self.org.ranks);
        self.encode(DecodedAddr {
            channel,
            rank,
            bank_group: flat / bpg,
            bank: flat % bpg,
            row,
            column,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decoder(mapping: AddressMapping) -> AddressDecoder {
        AddressDecoder::new(&SystemConfig::table6(), mapping)
    }

    #[test]
    fn addr_bits_cover_the_org() {
        // 1 ch (0 b) × 1 rank (0 b) × 8 groups (3 b) × 4 banks (2 b)
        // × 128K rows (17 b) × 128 cols (7 b) + 6 offset bits = 35 bits
        // = 32 GB of lines — the evaluated 32 Gb×8 channel.
        for m in AddressMapping::all() {
            assert_eq!(decoder(m).addr_bits(), 35, "{}", m.label());
        }
    }

    #[test]
    fn round_trip_simple() {
        for m in AddressMapping::all() {
            let d = decoder(m);
            let a = DecodedAddr {
                channel: 0,
                rank: 0,
                bank_group: 5,
                bank: 3,
                row: 77_777,
                column: 101,
            };
            assert_eq!(d.decode(d.encode(a)), a, "{}", m.label());
        }
    }

    #[test]
    fn row_interleaved_keeps_consecutive_lines_in_one_row() {
        let d = decoder(AddressMapping::RoBaRaCoCh);
        let a = d.decode(0x1234_0000);
        let b = d.decode(0x1234_0000 + 64);
        assert_eq!(a.row, b.row);
        assert_eq!(a.flat_bank(4), b.flat_bank(4));
        assert_eq!(b.column, a.column + 1);
    }

    #[test]
    fn bank_interleaved_stripes_consecutive_lines_across_banks() {
        let d = decoder(AddressMapping::RoCoRaBaCh);
        let a = d.decode(0x1234_0000);
        let b = d.decode(0x1234_0000 + 64);
        assert_eq!(a.row, b.row);
        assert_ne!(
            a.flat_bank(4),
            b.flat_bank(4),
            "consecutive lines must land in different banks"
        );
    }

    #[test]
    fn sequential_mapping_walks_columns_then_rows() {
        let d = decoder(AddressMapping::ChRaBaRoCo);
        let a = d.decode(0);
        assert_eq!((a.row, a.column), (0, 0));
        let last_col = d.decode(64 * 127);
        assert_eq!((last_col.row, last_col.column), (0, 127));
        let next_row = d.decode(64 * 128);
        assert_eq!((next_row.row, next_row.column), (1, 0));
        assert_eq!(next_row.flat_bank(4), a.flat_bank(4));
    }

    /// A 2-channel × 4-rank organisation, small enough that exhaustive
    /// bank sweeps stay fast.
    fn multi_org() -> DramOrg {
        DramOrg {
            channels: 2,
            ranks: 4,
            bank_groups: 8,
            banks_per_group: 4,
            rows: 1024,
            columns: 128,
        }
    }

    #[test]
    fn offset_is_ignored_but_high_bits_are_rejected() {
        let d = decoder(AddressMapping::RoBaRaCoCh);
        let base = 0x3_ABCD_1234_u64 & !(64 - 1);
        assert_eq!(d.decode(base), d.decode(base + 63));
        // Beyond 2^addr_bits the decoder must refuse, not wrap: wrapping
        // silently aliases two physical addresses onto one bank (the
        // DRAMsim3 out-of-range-rank-bits pitfall).
        let above = base + (1u64 << d.addr_bits());
        let err = d.try_decode(above).unwrap_err();
        assert_eq!(err.addr, above);
        assert_eq!(err.addr_bits, d.addr_bits());
        assert!(err.to_string().contains("out of range"));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn decode_panics_beyond_capacity() {
        let d = decoder(AddressMapping::RoBaRaCoCh);
        let _ = d.decode(1u64 << d.addr_bits());
    }

    #[test]
    fn out_of_range_rank_and_channel_bits_rejected_not_wrapped() {
        // For every mapping of the multi-rank org: the first address past
        // capacity is exactly the one a wrap would alias back to address
        // 0 / channel 0 / rank 0 — which is how rank bits get silently
        // lost. It must be rejected instead.
        for m in AddressMapping::all() {
            let d = AddressDecoder::with_org(multi_org(), m);
            assert!(d.try_decode((1u64 << d.addr_bits()) - 64).is_ok());
            let err = d.try_decode(1u64 << d.addr_bits()).unwrap_err();
            assert_eq!(err.addr_bits, d.addr_bits(), "{}", m.label());
        }
    }

    #[test]
    fn multi_channel_rank_round_trip_every_mapping() {
        // Encode↔decode bijection over every channel × rank corner of the
        // multi-topology org, for all three named mappings.
        for m in AddressMapping::all() {
            let d = AddressDecoder::with_org(multi_org(), m);
            for channel in 0..2 {
                for rank in 0..4 {
                    for (bank_group, bank, row, column) in
                        [(0, 0, 0, 0), (7, 3, 1023, 127), (5, 2, 513, 64)]
                    {
                        let a = DecodedAddr {
                            channel,
                            rank,
                            bank_group,
                            bank,
                            row,
                            column,
                        };
                        assert_eq!(d.decode(d.encode(a)), a, "{}", m.label());
                    }
                }
            }
        }
    }

    #[test]
    fn channel_and_system_bank_indices_are_dense_and_bijective() {
        let org = multi_org();
        let d = AddressDecoder::with_org(org, AddressMapping::RoBaRaCoCh);
        let mut seen = std::collections::HashSet::new();
        for sys_bank in 0..org.total_banks() {
            let a = d.decode(d.encode_bank_row(sys_bank, 9, 3));
            assert_eq!(a.system_bank(&org), sys_bank);
            assert_eq!(
                a.channel_bank(&org),
                sys_bank % (org.ranks * org.banks_per_rank())
            );
            assert!(seen.insert((a.channel, a.rank, a.bank_group, a.bank)));
        }
        assert_eq!(seen.len() as u32, org.total_banks());
    }

    #[test]
    fn encode_bank_row_matches_flat_bank() {
        let d = decoder(AddressMapping::RoBaRaCoCh);
        for flat in [0, 3, 4, 17, 31] {
            let a = d.decode(d.encode_bank_row(flat, 42, 7));
            assert_eq!(a.flat_bank(4), flat);
            assert_eq!(a.row, 42);
            assert_eq!(a.column, 7);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn encode_rejects_out_of_range() {
        let d = decoder(AddressMapping::RoBaRaCoCh);
        let _ = d.encode_bank_row(32, 0, 0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_org_rejected() {
        let cfg = SystemConfig {
            rows_per_bank: 100,
            ..SystemConfig::table6()
        };
        let _ = AddressDecoder::new(&cfg, AddressMapping::RoBaRaCoCh);
    }
}
