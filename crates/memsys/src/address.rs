//! Physical-address decoding: configurable channel/rank/bank-group/bank/
//! row/column bit slicing.
//!
//! Every request enters the channel as a byte address; the decoder slices
//! it into DRAM coordinates according to a named [`AddressMapping`]. The
//! mapping decides which locality a software access stream turns into —
//! row-buffer hits ([`RoBaRaCoCh`](AddressMapping::RoBaRaCoCh) keeps
//! consecutive lines in one row) or bank-level parallelism
//! ([`RoCoRaBaCh`](AddressMapping::RoCoRaBaCh) stripes consecutive lines
//! across banks) — which is exactly the knob command-level simulators like
//! Ramulator and DRAMsim3 expose, and which materially shifts mitigation
//! overheads.
//!
//! All field widths are powers of two, so encode→decode is a bijection on
//! `addr_bits()`-wide addresses (pinned by property tests in
//! `tests/address_properties.rs`).

use crate::config::SystemConfig;

/// The DRAM coordinates of one cache-line address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodedAddr {
    /// Channel index.
    pub channel: u32,
    /// Rank index.
    pub rank: u32,
    /// Bank group within the rank.
    pub bank_group: u32,
    /// Bank within the bank group.
    pub bank: u32,
    /// Row within the bank.
    pub row: u32,
    /// Cache-line column within the row.
    pub column: u32,
}

impl DecodedAddr {
    /// The flat bank index (`bank_group × banks_per_group + bank`) — what
    /// the per-bank controller state is indexed by.
    #[must_use]
    pub fn flat_bank(&self, banks_per_group: u32) -> u32 {
        self.bank_group * banks_per_group + self.bank
    }
}

/// The address fields a mapping orders (channel/rank are degenerate
/// zero-width fields in the current single-channel, single-rank org, but
/// the slicer handles any power-of-two width).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Field {
    Channel,
    Rank,
    BankGroup,
    Bank,
    Row,
    Column,
}

/// Named physical-address mappings (Ramulator-style MSB→LSB field order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AddressMapping {
    /// Row-interleaved (MSB `Ro|Bg|Ba|Ra|Co|Ch` LSB): consecutive cache
    /// lines walk the column bits of one row, so streaming accesses become
    /// row-buffer hits. The default.
    #[default]
    RoBaRaCoCh,
    /// Bank-interleaved (MSB `Ro|Co|Ra|Bg|Ba|Ch` LSB): consecutive cache
    /// lines stripe across banks, trading row hits for bank-level
    /// parallelism.
    RoCoRaBaCh,
    /// Sequential / row-major (MSB `Ch|Ra|Bg|Ba|Ro|Co` LSB): each bank
    /// owns one contiguous slab of the address space.
    ChRaBaRoCo,
}

impl AddressMapping {
    /// Every named mapping (for sweeps and property tests).
    #[must_use]
    pub fn all() -> Vec<AddressMapping> {
        vec![
            AddressMapping::RoBaRaCoCh,
            AddressMapping::RoCoRaBaCh,
            AddressMapping::ChRaBaRoCo,
        ]
    }

    /// Short label for reports.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            AddressMapping::RoBaRaCoCh => "RoBaRaCoCh",
            AddressMapping::RoCoRaBaCh => "RoCoRaBaCh",
            AddressMapping::ChRaBaRoCo => "ChRaBaRoCo",
        }
    }

    /// Parses a mapping from its [`label`](AddressMapping::label) form,
    /// case-insensitively — the inverse of `label`, used by the
    /// declarative [`ScenarioSpec`](crate::ScenarioSpec) text format.
    /// Returns `None` for unknown mappings.
    #[must_use]
    pub fn parse(s: &str) -> Option<AddressMapping> {
        AddressMapping::all()
            .into_iter()
            .find(|m| m.label().eq_ignore_ascii_case(s.trim()))
    }

    /// The field order, most-significant first.
    fn order(self) -> [Field; 6] {
        match self {
            AddressMapping::RoBaRaCoCh => [
                Field::Row,
                Field::BankGroup,
                Field::Bank,
                Field::Rank,
                Field::Column,
                Field::Channel,
            ],
            AddressMapping::RoCoRaBaCh => [
                Field::Row,
                Field::Column,
                Field::Rank,
                Field::BankGroup,
                Field::Bank,
                Field::Channel,
            ],
            AddressMapping::ChRaBaRoCo => [
                Field::Channel,
                Field::Rank,
                Field::BankGroup,
                Field::Bank,
                Field::Row,
                Field::Column,
            ],
        }
    }
}

/// The DRAM organisation the decoder slices addresses for. All counts must
/// be powers of two (bit slicing), which the constructor asserts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramOrg {
    /// Channels (1 in the evaluated system).
    pub channels: u32,
    /// Ranks per channel (1).
    pub ranks: u32,
    /// Bank groups per rank.
    pub bank_groups: u32,
    /// Banks per bank group.
    pub banks_per_group: u32,
    /// Rows per bank.
    pub rows: u32,
    /// Cache-line columns per row.
    pub columns: u32,
}

impl DramOrg {
    /// The organisation implied by a [`SystemConfig`] (single channel,
    /// single rank).
    ///
    /// # Panics
    ///
    /// Panics if any field count is not a power of two.
    #[must_use]
    pub fn from_system(cfg: &SystemConfig) -> Self {
        let org = Self {
            channels: 1,
            ranks: 1,
            bank_groups: cfg.bank_groups,
            banks_per_group: cfg.banks_per_group(),
            rows: cfg.rows_per_bank,
            columns: cfg.columns_per_row,
        };
        org.assert_pow2();
        org
    }

    fn assert_pow2(&self) {
        for (name, n) in [
            ("channels", self.channels),
            ("ranks", self.ranks),
            ("bank_groups", self.bank_groups),
            ("banks_per_group", self.banks_per_group),
            ("rows", self.rows),
            ("columns", self.columns),
        ] {
            assert!(
                n.is_power_of_two(),
                "{name} = {n} must be a power of two for bit slicing"
            );
        }
    }

    fn width(&self, f: Field) -> u32 {
        let count = match f {
            Field::Channel => self.channels,
            Field::Rank => self.ranks,
            Field::BankGroup => self.bank_groups,
            Field::Bank => self.banks_per_group,
            Field::Row => self.rows,
            Field::Column => self.columns,
        };
        count.trailing_zeros()
    }

    /// Total cache lines addressable by this organisation.
    #[must_use]
    pub fn lines(&self) -> u64 {
        u64::from(self.channels)
            * u64::from(self.ranks)
            * u64::from(self.bank_groups)
            * u64::from(self.banks_per_group)
            * u64::from(self.rows)
            * u64::from(self.columns)
    }
}

/// Bits of the cache-line offset within an address (64-byte lines).
pub const LINE_OFFSET_BITS: u32 = 6;

/// A bidirectional physical-address ↔ DRAM-coordinate translator for one
/// organisation and one named mapping.
///
/// # Examples
///
/// ```
/// use mint_memsys::{AddressDecoder, AddressMapping, SystemConfig};
/// let d = AddressDecoder::new(&SystemConfig::table6(), AddressMapping::RoBaRaCoCh);
/// let a = d.decode(0x4000_0040);
/// assert_eq!(d.encode(a), 0x4000_0040);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddressDecoder {
    org: DramOrg,
    mapping: AddressMapping,
}

impl AddressDecoder {
    /// Builds a decoder for the organisation implied by `cfg`.
    #[must_use]
    pub fn new(cfg: &SystemConfig, mapping: AddressMapping) -> Self {
        Self {
            org: DramOrg::from_system(cfg),
            mapping,
        }
    }

    /// Builds a decoder for an explicit organisation.
    ///
    /// # Panics
    ///
    /// Panics if any organisation field count is not a power of two.
    #[must_use]
    pub fn with_org(org: DramOrg, mapping: AddressMapping) -> Self {
        org.assert_pow2();
        Self { org, mapping }
    }

    /// The organisation this decoder slices for.
    #[must_use]
    pub fn org(&self) -> &DramOrg {
        &self.org
    }

    /// The mapping in force.
    #[must_use]
    pub fn mapping(&self) -> AddressMapping {
        self.mapping
    }

    /// Significant byte-address bits (line offset + all field widths).
    /// Addresses are taken modulo `2^addr_bits()`.
    #[must_use]
    pub fn addr_bits(&self) -> u32 {
        LINE_OFFSET_BITS
            + self
                .mapping
                .order()
                .iter()
                .map(|&f| self.org.width(f))
                .sum::<u32>()
    }

    /// Slices a byte address into DRAM coordinates. Bits above
    /// [`addr_bits`](Self::addr_bits) and the intra-line offset are
    /// ignored, so any `u64` (e.g. from a trace) decodes to in-range
    /// coordinates.
    #[must_use]
    pub fn decode(&self, addr: u64) -> DecodedAddr {
        let mut line = addr >> LINE_OFFSET_BITS;
        let mut out = DecodedAddr {
            channel: 0,
            rank: 0,
            bank_group: 0,
            bank: 0,
            row: 0,
            column: 0,
        };
        // Fields are laid out MSB-first, so consume from the LSB in
        // reverse order.
        for &f in self.mapping.order().iter().rev() {
            let w = self.org.width(f);
            let v = (line & ((1u64 << w) - 1)) as u32;
            line >>= w;
            match f {
                Field::Channel => out.channel = v,
                Field::Rank => out.rank = v,
                Field::BankGroup => out.bank_group = v,
                Field::Bank => out.bank = v,
                Field::Row => out.row = v,
                Field::Column => out.column = v,
            }
        }
        out
    }

    /// Packs DRAM coordinates back into the byte address of the line's
    /// first byte — the exact inverse of [`decode`](Self::decode) on
    /// line-aligned, in-range addresses.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is out of range for the organisation.
    #[must_use]
    pub fn encode(&self, a: DecodedAddr) -> u64 {
        let mut line = 0u64;
        for &f in self.mapping.order().iter() {
            let w = self.org.width(f);
            let (v, limit) = match f {
                Field::Channel => (a.channel, self.org.channels),
                Field::Rank => (a.rank, self.org.ranks),
                Field::BankGroup => (a.bank_group, self.org.bank_groups),
                Field::Bank => (a.bank, self.org.banks_per_group),
                Field::Row => (a.row, self.org.rows),
                Field::Column => (a.column, self.org.columns),
            };
            assert!(v < limit, "{f:?} = {v} out of range (< {limit})");
            line = (line << w) | u64::from(v);
        }
        line << LINE_OFFSET_BITS
    }

    /// Convenience: the address of `(flat_bank, row, column)` in the
    /// single-channel, single-rank organisation — what the synthetic
    /// workload generator and unit tests build requests from.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is out of range.
    #[must_use]
    pub fn encode_bank_row(&self, flat_bank: u32, row: u32, column: u32) -> u64 {
        let bpg = self.org.banks_per_group;
        self.encode(DecodedAddr {
            channel: 0,
            rank: 0,
            bank_group: flat_bank / bpg,
            bank: flat_bank % bpg,
            row,
            column,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decoder(mapping: AddressMapping) -> AddressDecoder {
        AddressDecoder::new(&SystemConfig::table6(), mapping)
    }

    #[test]
    fn addr_bits_cover_the_org() {
        // 1 ch (0 b) × 1 rank (0 b) × 8 groups (3 b) × 4 banks (2 b)
        // × 128K rows (17 b) × 128 cols (7 b) + 6 offset bits = 35 bits
        // = 32 GB of lines — the evaluated 32 Gb×8 channel.
        for m in AddressMapping::all() {
            assert_eq!(decoder(m).addr_bits(), 35, "{}", m.label());
        }
    }

    #[test]
    fn round_trip_simple() {
        for m in AddressMapping::all() {
            let d = decoder(m);
            let a = DecodedAddr {
                channel: 0,
                rank: 0,
                bank_group: 5,
                bank: 3,
                row: 77_777,
                column: 101,
            };
            assert_eq!(d.decode(d.encode(a)), a, "{}", m.label());
        }
    }

    #[test]
    fn row_interleaved_keeps_consecutive_lines_in_one_row() {
        let d = decoder(AddressMapping::RoBaRaCoCh);
        let a = d.decode(0x1234_0000);
        let b = d.decode(0x1234_0000 + 64);
        assert_eq!(a.row, b.row);
        assert_eq!(a.flat_bank(4), b.flat_bank(4));
        assert_eq!(b.column, a.column + 1);
    }

    #[test]
    fn bank_interleaved_stripes_consecutive_lines_across_banks() {
        let d = decoder(AddressMapping::RoCoRaBaCh);
        let a = d.decode(0x1234_0000);
        let b = d.decode(0x1234_0000 + 64);
        assert_eq!(a.row, b.row);
        assert_ne!(
            a.flat_bank(4),
            b.flat_bank(4),
            "consecutive lines must land in different banks"
        );
    }

    #[test]
    fn sequential_mapping_walks_columns_then_rows() {
        let d = decoder(AddressMapping::ChRaBaRoCo);
        let a = d.decode(0);
        assert_eq!((a.row, a.column), (0, 0));
        let last_col = d.decode(64 * 127);
        assert_eq!((last_col.row, last_col.column), (0, 127));
        let next_row = d.decode(64 * 128);
        assert_eq!((next_row.row, next_row.column), (1, 0));
        assert_eq!(next_row.flat_bank(4), a.flat_bank(4));
    }

    #[test]
    fn high_bits_and_offset_are_ignored() {
        let d = decoder(AddressMapping::RoBaRaCoCh);
        let base = 0x3_ABCD_1234_u64 & !(64 - 1);
        assert_eq!(d.decode(base), d.decode(base + 63));
        assert_eq!(d.decode(base), d.decode(base + (1u64 << d.addr_bits())));
    }

    #[test]
    fn encode_bank_row_matches_flat_bank() {
        let d = decoder(AddressMapping::RoBaRaCoCh);
        for flat in [0, 3, 4, 17, 31] {
            let a = d.decode(d.encode_bank_row(flat, 42, 7));
            assert_eq!(a.flat_bank(4), flat);
            assert_eq!(a.row, 42);
            assert_eq!(a.column, 7);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn encode_rejects_out_of_range() {
        let d = decoder(AddressMapping::RoBaRaCoCh);
        let _ = d.encode_bank_row(32, 0, 0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_org_rejected() {
        let cfg = SystemConfig {
            rows_per_bank: 100,
            ..SystemConfig::table6()
        };
        let _ = AddressDecoder::new(&cfg, AddressMapping::RoBaRaCoCh);
    }
}
