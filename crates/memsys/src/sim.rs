//! The unified run surface: the [`Sim`] builder, the [`Session`] it
//! produces, and the one [`RunReport`] every run returns.
//!
//! The paper's evaluation is a grid of *scenarios* — scheme × frontend
//! (synthetic workload, text trace, or attack source) × mapping ×
//! scheduler × seed. Before this module the run surface was one free
//! function per combination, each threading the knobs slightly
//! differently and returning a different shape. [`Sim`] replaces them
//! with a single typed builder:
//!
//! ```
//! use mint_memsys::{MitigationScheme, Sim};
//! use mint_memsys::workload::spec_rate_workloads;
//!
//! let lbm = spec_rate_workloads()
//!     .into_iter()
//!     .find(|w| w.name == "lbm")
//!     .unwrap();
//! let report = Sim::ddr5()
//!     .scheme(MitigationScheme::Mint)
//!     .workload(&[lbm; 4], 2_000)
//!     .seed(11)
//!     .run();
//! assert_eq!(report.perf.result.requests, 4 * 2_000);
//! assert_eq!(report.cores.len(), 4);
//! assert!(report.energy.total_j() > 0.0);
//! ```
//!
//! Every configuration knob has the production default (Table VI config,
//! FR-FCFS, row-interleaved mapping, seed 0), so a scenario names only
//! what it changes. [`Sim::build`] resolves the frontend into per-core
//! [`RequestSource`]s and returns a [`Session`]; [`Session::run`] drives
//! the channel to completion and returns the [`RunReport`] — aggregate
//! [`NormalizedPerf`], per-core [`CoreOutcome`]s, the energy breakdown,
//! and (when captured) the executed command events. Runs are
//! bit-deterministic for a given builder state: the per-core streams and
//! the channel derive their RNG substreams from the builder seed exactly
//! like the legacy entry points did, so `Sim`-built runs are
//! byte-identical to their pre-redesign equivalents (pinned by
//! `tests/sim_builder.rs`).

use crate::address::{AddressDecoder, AddressMapping};
use crate::config::{MitigationScheme, SystemConfig};
use crate::controller::SimResult;
use crate::energy::{EnergyModel, EnergyReport};
use crate::events::{ChannelObserver, MemEvent};
use crate::sched::SchedulePolicy;
use crate::snapshot::{Checkpoint, SnapshotReader, SnapshotWriter};
use crate::system::System;
use crate::telemetry::{collect_report, SessionTelemetry};
use crate::workload::{CoreStream, Request, RequestSource, TraceEntry, TraceSource, WorkloadSpec};
use mint_obs::TelemetryReport;
use mint_rng::derive_seed;
use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};

/// Process-wide default admission mode for subsequently started sessions
/// (see [`set_reference_admission_default`]).
static REFERENCE_ADMISSION_DEFAULT: AtomicBool = AtomicBool::new(false);

/// Makes every subsequently started [`Session`] arbitrate admission with
/// the retained sorted-vec reference loop — re-collecting and re-sorting
/// every pending arrival per decision — instead of the incrementally
/// maintained `(issue, core)` arrival set, and serve channels via the
/// retained linear readiness scan instead of the cached per-channel
/// minimum.
///
/// Like [`set_reference_planner_default`](crate::set_reference_planner_default),
/// this is a differential-testing oracle: both paths admit in the same
/// order and produce bit-identical [`RunReport`]s (`ci_smoke` and the
/// admission property test assert it). Leave it off outside of tests.
pub fn set_reference_admission_default(on: bool) {
    REFERENCE_ADMISSION_DEFAULT.store(on, Ordering::SeqCst);
}

/// Process-wide default generation mode for subsequently started sessions
/// (see [`set_reference_generation_default`]).
static REFERENCE_GENERATION_DEFAULT: AtomicBool = AtomicBool::new(false);

/// Makes every subsequently started [`Session`] pull requests from its
/// sources one at a time (the retained unbatched reference) instead of
/// prefilling a small per-core ring via [`RequestSource::refill`].
///
/// Both paths consume bit-identical streams — batching sources draw RNG
/// values in exactly the one-at-a-time order, and ready-time-dependent
/// sources refill one request per call by contract — so this knob exists
/// purely as the differential-testing oracle for that guarantee.
pub fn set_reference_generation_default(on: bool) {
    REFERENCE_GENERATION_DEFAULT.store(on, Ordering::SeqCst);
}

/// Requests a batching source prefills per [`RequestSource::refill`]
/// call (the per-core ring size of a [`Session`]).
const GEN_BATCH: usize = 16;

/// Aggregate outcome of one run: duration, controller statistics, and a
/// normalization slot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NormalizedPerf {
    /// Total simulated time (ps) — lower is faster.
    pub duration_ps: u64,
    /// Controller statistics.
    pub result: SimResult,
    /// Weighted speedup vs. a reference duration (1.0 = baseline); filled
    /// by [`normalize`](NormalizedPerf::normalize).
    pub normalized: f64,
}

impl NormalizedPerf {
    /// Normalizes against the baseline run of the same workload.
    #[must_use]
    pub fn normalize(mut self, baseline: &NormalizedPerf) -> Self {
        self.normalized = baseline.duration_ps as f64 / self.duration_ps as f64;
        self
    }
}

/// What one core did over a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreOutcome {
    /// Completion time of the core's last serviced request (0 if it never
    /// issued).
    pub finish_ps: u64,
    /// Requests the channel serviced for this core.
    pub requests: u64,
}

/// The one result shape every [`Sim`] run returns.
///
/// The legacy entry points returned three different shapes ([`NormalizedPerf`]
/// alone, `ObservedRun`, or a grid of rows); `RunReport` unifies them:
/// the aggregate perf, the per-core breakdown, the energy bill, and —
/// when [`Sim::capture_events`] is set — the executed command stream.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// The aggregate result: duration, controller statistics (command
    /// counts live in [`SimResult`]) and the normalization slot.
    pub perf: NormalizedPerf,
    /// One outcome per request source, in source order.
    pub cores: Vec<CoreOutcome>,
    /// Energy breakdown of the run ([`EnergyModel::ddr5_default`];
    /// mitigation-hardware static draw included for every scheme except
    /// `Baseline`).
    pub energy: EnergyReport,
    /// The executed device commands, in service order — empty unless
    /// [`Sim::capture_events`] was requested (the log is off by default,
    /// so perf sweeps pay nothing for it).
    pub events: Vec<MemEvent>,
    /// The per-layer metrics report — `None` unless [`Sim::telemetry`]
    /// was requested (every hook is a dead branch by default, so
    /// non-telemetry runs stay bit-identical).
    pub telemetry: Option<TelemetryReport>,
}

/// The outcome of [`Session::run_until`] / [`Session::resume_until`]:
/// either the run completed before reaching the stop point, or it paused
/// into a restorable [`Checkpoint`].
#[derive(Debug, Clone, PartialEq)]
pub enum SessionRun {
    /// Every source ran dry (or hit its budget) before the stop point;
    /// the report is identical to what [`Session::run`] would return.
    Finished(RunReport),
    /// The run paused at the stop point. Feed the checkpoint to
    /// [`Session::resume`] on an identically built session — in this
    /// process or, via [`Checkpoint::to_bytes`], a fresh one — to
    /// continue it bit-identically.
    Paused(Checkpoint),
}

/// The retained-oracle pause refusal (see [`Session::run_until`]).
const REFERENCE_PAUSE_ERR: &str = "the reference admission oracle has no pause point; \
     disable set_reference_admission_default for checkpoint/restore";

/// The frontend half of a scenario: where requests come from.
enum Frontend<'a> {
    /// Not configured yet — [`Sim::build`] rejects this.
    Unset,
    /// One synthetic [`CoreStream`] per core, each capped at a request
    /// budget.
    Workload {
        specs: Vec<WorkloadSpec>,
        requests_per_core: u32,
    },
    /// A shared text trace dealt round-robin across the cores and run dry.
    Trace { entries: Vec<TraceEntry> },
    /// Arbitrary caller-built sources (attackers, co-runs), optionally
    /// budget-capped per core via [`Sim::per_core_budget`].
    Sources(Vec<Box<dyn RequestSource + 'a>>),
}

/// Builder for one simulation scenario: system config, scheme, scheduler,
/// mapping, frontend, observer and seed — every knob with the production
/// default, chainable in any order. See the [module docs](self) for an
/// end-to-end example.
pub struct Sim<'a> {
    cfg: SystemConfig,
    scheme: MitigationScheme,
    policy: SchedulePolicy,
    mapping: AddressMapping,
    seed: u64,
    frontend: Frontend<'a>,
    source_budget: Option<u32>,
    observer: Option<&'a mut dyn ChannelObserver>,
    capture_events: bool,
    telemetry: bool,
}

impl Sim<'_> {
    /// A scenario on `cfg` with the production defaults: `Baseline`
    /// scheme, FR-FCFS scheduling, row-interleaved mapping, seed 0, no
    /// frontend yet.
    #[must_use]
    pub fn new(cfg: SystemConfig) -> Self {
        Self {
            cfg,
            scheme: MitigationScheme::Baseline,
            policy: SchedulePolicy::default(),
            mapping: AddressMapping::default(),
            seed: 0,
            frontend: Frontend::Unset,
            source_budget: None,
            observer: None,
            capture_events: false,
            telemetry: false,
        }
    }

    /// A scenario on the evaluated DDR5 system ([`SystemConfig::table6`]).
    #[must_use]
    pub fn ddr5() -> Self {
        Self::new(SystemConfig::table6())
    }
}

impl<'a> Sim<'a> {
    /// Sets the mitigation scheme under evaluation (default `Baseline`).
    #[must_use]
    pub fn scheme(mut self, scheme: MitigationScheme) -> Self {
        self.scheme = scheme;
        self
    }

    /// Sets the channel arbitration policy (default FR-FCFS).
    #[must_use]
    pub fn policy(mut self, policy: SchedulePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the physical-address mapping (default `RoBaRaCoCh`).
    #[must_use]
    pub fn mapping(mut self, mapping: AddressMapping) -> Self {
        self.mapping = mapping;
        self
    }

    /// Sets the master seed (default 0). Per-core streams and the channel
    /// derive independent substreams from it.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Frontend: one synthetic [`CoreStream`] per core (one spec per
    /// core), each running `requests_per_core` LLC misses. Core `i`
    /// streams with substream `derive_seed(seed, i)`.
    #[must_use]
    pub fn workload(mut self, specs: &[WorkloadSpec], requests_per_core: u32) -> Self {
        self.frontend = Frontend::Workload {
            specs: specs.to_vec(),
            requests_per_core,
        };
        self
    }

    /// Frontend: replay `entries` dealt round-robin across the configured
    /// cores ([`TraceSource::split`]) and run to exhaustion.
    #[must_use]
    pub fn trace(mut self, entries: &[TraceEntry]) -> Self {
        self.frontend = Frontend::Trace {
            entries: entries.to_vec(),
        };
        self
    }

    /// Frontend: arbitrary request sources, one per core, any count — the
    /// entry point for attacker/victim co-runs. Sources run dry unless
    /// [`per_core_budget`](Sim::per_core_budget) caps them.
    #[must_use]
    pub fn sources(mut self, sources: Vec<Box<dyn RequestSource + 'a>>) -> Self {
        self.frontend = Frontend::Sources(sources);
        self
    }

    /// Caps each source of a [`sources`](Sim::sources) frontend at
    /// `budget` requests (`None` = run every source dry; at least one
    /// source must be finite then). Chainable before or after
    /// [`sources`](Sim::sources); ignored by the workload/trace
    /// frontends, which own their budgets.
    #[must_use]
    pub fn per_core_budget(mut self, budget: Option<u32>) -> Self {
        self.source_budget = budget;
        self
    }

    /// Feeds every executed device command to `observer` in service
    /// order — the ground-truth tap security oracles ride.
    #[must_use]
    pub fn observer(mut self, observer: &'a mut dyn ChannelObserver) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Collects the executed command events into
    /// [`RunReport::events`] (off by default; the event log costs memory
    /// proportional to the run).
    #[must_use]
    pub fn capture_events(mut self) -> Self {
        self.capture_events = true;
        self
    }

    /// Turns on the observability subsystem: counters, histograms and
    /// sim-time sampling across every layer, collected into
    /// [`RunReport::telemetry`] (off by default). Sampling is driven by
    /// simulated picoseconds only, so telemetry never perturbs a run —
    /// the rest of the report stays byte-identical.
    #[must_use]
    pub fn telemetry(mut self) -> Self {
        self.telemetry = true;
        self
    }

    /// Resolves the frontend into per-core sources and returns the
    /// runnable [`Session`].
    ///
    /// # Panics
    ///
    /// Panics if no frontend was configured, if a workload frontend has
    /// `specs.len() != cfg.cores` or `requests_per_core == 0`, or if a
    /// sources frontend is empty.
    #[must_use]
    pub fn build(self) -> Session<'a> {
        let (sources, budget): (Vec<Box<dyn RequestSource + 'a>>, Option<u32>) = match self.frontend
        {
            Frontend::Unset => {
                panic!("no request source configured — call .workload(), .trace() or .sources()")
            }
            Frontend::Workload {
                specs,
                requests_per_core,
            } => {
                assert_eq!(
                    specs.len(),
                    self.cfg.cores as usize,
                    "one workload spec per core"
                );
                assert!(requests_per_core > 0, "need at least one request per core");
                let decoder = AddressDecoder::new(&self.cfg, self.mapping);
                let sources = specs
                    .iter()
                    .enumerate()
                    .map(|(i, spec)| {
                        Box::new(CoreStream::new(
                            *spec,
                            decoder,
                            spec.think_time_ps(&self.cfg),
                            derive_seed(self.seed, i as u64),
                        )) as Box<dyn RequestSource>
                    })
                    .collect();
                (sources, Some(requests_per_core))
            }
            Frontend::Trace { entries } => {
                let sources =
                    TraceSource::split(&entries, self.cfg.cores, self.cfg.core_cycle_ps())
                        .into_iter()
                        .map(|s| Box::new(s) as Box<dyn RequestSource>)
                        .collect();
                (sources, None)
            }
            Frontend::Sources(sources) => {
                assert!(!sources.is_empty(), "need at least one request source");
                (sources, self.source_budget)
            }
        };
        Session {
            cfg: self.cfg,
            scheme: self.scheme,
            policy: self.policy,
            mapping: self.mapping,
            seed: self.seed,
            sources,
            budget,
            observer: self.observer,
            capture_events: self.capture_events,
            telemetry: self.telemetry,
        }
    }

    /// [`build`](Sim::build) + [`Session::run`] in one call.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`build`](Sim::build).
    #[must_use]
    pub fn run(self) -> RunReport {
        self.build().run()
    }
}

/// One core's frontend state while a [`Session`] runs.
struct CoreCtx<'a> {
    source: Box<dyn RequestSource + 'a>,
    /// Next request and its issue time, once the core is ready to send it.
    pending: Option<(Request, u64)>,
    /// Prefilled upcoming requests ([`RequestSource::refill`]); drained
    /// before the source is asked again.
    ring: VecDeque<Request>,
    /// Prefill the ring instead of pulling one request per fetch (off in
    /// reference-generation mode).
    batch: bool,
    /// Routed channel of the pending request (cached at fetch so the
    /// admission loop never decodes an address twice).
    route: usize,
    /// When the core front-end can work on its next request.
    ready_at: u64,
    /// Requests still allowed (None = until the source runs dry).
    remaining: Option<u32>,
    /// Completion time of the core's last serviced request.
    finish: u64,
    /// Requests the channel serviced for this core.
    serviced: u64,
}

impl CoreCtx<'_> {
    /// Pulls the next request out of the source (respecting the budget)
    /// and stamps its issue time.
    ///
    /// The batched path drains the prefilled ring first and refills it
    /// with the core's *current* ready time when empty — sources whose
    /// request content depends on that time refill one request per call
    /// by contract, so batching never feeds them a stale clock.
    fn fetch(&mut self) {
        debug_assert!(self.pending.is_none());
        match &mut self.remaining {
            Some(0) => return,
            Some(n) => *n -= 1,
            None => {}
        }
        let req = if self.batch {
            match self.ring.pop_front() {
                Some(req) => Some(req),
                None => {
                    self.source.refill(self.ready_at, GEN_BATCH, &mut self.ring);
                    self.ring.pop_front()
                }
            }
        } else {
            self.source.next_request_at(self.ready_at)
        };
        if let Some(req) = req {
            let issue = self.ready_at + req.think_time_ps;
            self.pending = Some((req, issue));
        }
    }
}

/// One service step of the optimized run loops: serve the earliest-ready
/// channel, forward its drained events, credit the owning core (MLP
/// stall model) and fetch that core's next request. Returns the serviced
/// core's index, or `None` when every channel is empty (run over).
#[allow(clippy::too_many_arguments)]
fn service_step(
    system: &mut System,
    cores: &mut [CoreCtx],
    mlp: u64,
    mlp_shift: Option<u32>,
    observer: &mut Option<&mut dyn ChannelObserver>,
    capture_events: bool,
    events: &mut Vec<MemEvent>,
    stel: &mut Option<Box<SessionTelemetry>>,
) -> Option<usize> {
    let ch = system.earliest_ready()?;
    let c = system
        .service_channel(ch)
        .expect("earliest-ready channel is non-empty");
    if observer.is_some() || capture_events {
        for e in system.drain_events_global(ch) {
            if let Some(obs) = observer.as_deref_mut() {
                obs.on_event(&e);
            }
            if capture_events {
                events.push(e);
            }
        }
    }
    let idx = c.core as usize;
    let core = &mut cores[idx];
    // Blocking-miss core with an MLP overlap factor: the core absorbs
    // 1/MLP of the memory stall.
    let stall = match mlp_shift {
        Some(s) => (c.completion_ps - c.arrival_ps) >> s,
        None => (c.completion_ps - c.arrival_ps) / mlp,
    };
    core.ready_at = c.arrival_ps + stall;
    core.finish = core.finish.max(c.completion_ps);
    core.serviced += 1;
    core.fetch();
    if let Some(t) = stel.as_deref_mut() {
        t.note_service(c.completion_ps);
        if core.pending.is_some() {
            t.generated += 1;
        }
    }
    Some(idx)
}

/// A fully resolved scenario, ready to run: built by [`Sim::build`],
/// consumed by [`Session::run`].
pub struct Session<'a> {
    cfg: SystemConfig,
    scheme: MitigationScheme,
    policy: SchedulePolicy,
    mapping: AddressMapping,
    seed: u64,
    sources: Vec<Box<dyn RequestSource + 'a>>,
    budget: Option<u32>,
    observer: Option<&'a mut dyn ChannelObserver>,
    capture_events: bool,
    telemetry: bool,
}

impl Session<'_> {
    /// Drives every source through a fresh [`System`] until all are
    /// exhausted (or have issued their budget) and returns the unified
    /// [`RunReport`].
    ///
    /// Admission and service interleave deterministically at the system
    /// level: each pending request routes to its channel by decoded
    /// address, the earliest issuable request whose routed channel can
    /// admit it (room in the queue, issue no later than that channel's
    /// next scheduling decision — so every channel's scheduler arbitrates
    /// over all of its arrived traffic) is admitted first, and otherwise
    /// the earliest-ready channel serves (ties to the lowest channel
    /// index). With one channel this is exactly the legacy single-channel
    /// loop. Drained command events go to the observer (and the report,
    /// when captured) after every scheduling decision, in service order
    /// with system-global bank indices — bit-deterministic regardless of
    /// how a surrounding sweep is parallelised.
    #[must_use]
    pub fn run(mut self) -> RunReport {
        if !REFERENCE_ADMISSION_DEFAULT.load(Ordering::SeqCst) {
            return match self.drive(None, None) {
                Ok(SessionRun::Finished(report)) => report,
                Ok(SessionRun::Paused(_)) | Err(_) => {
                    unreachable!("a run with no stop point neither pauses nor fails")
                }
            };
        }
        let mut system = System::new(self.cfg, self.scheme, self.policy, self.mapping, self.seed);
        let single_channel = system.channel_count() == 1;
        let observe = self.observer.is_some() || self.capture_events;
        if observe {
            system.enable_event_log();
        }
        // Captured runs produce one event per executed command; reserve a
        // chunk up front so the early doublings never land in the hot loop.
        let mut events = Vec::with_capacity(if self.capture_events { 4096 } else { 0 });
        let mlp = u64::from(self.cfg.core_mlp).max(1);
        // The common MLP values are powers of two; divide by shift then
        // (the stall division runs once per serviced request).
        let mlp_shift = if mlp.is_power_of_two() {
            Some(mlp.trailing_zeros())
        } else {
            None
        };
        let batch = !REFERENCE_GENERATION_DEFAULT.load(Ordering::SeqCst);
        let mut cores: Vec<CoreCtx> = self
            .sources
            .into_iter()
            .map(|source| {
                let mut c = CoreCtx {
                    source,
                    pending: None,
                    ring: VecDeque::new(),
                    batch,
                    route: 0,
                    ready_at: 0,
                    remaining: self.budget,
                    finish: 0,
                    serviced: 0,
                };
                c.fetch();
                c
            })
            .collect();

        {
            // The retained sorted-vec admission reference (differential
            // oracle): re-collect and re-sort every pending arrival per
            // decision, route at admission time, scan every channel for
            // the next service. Kept verbatim from before the
            // incremental arrival set. Checkpointing lives only on the
            // optimized loops ([`Session::run_until`]); this oracle has
            // no pause point.
            let mut arrivals: Vec<(u64, usize)> = Vec::with_capacity(cores.len());
            loop {
                arrivals.clear();
                for (i, c) in cores.iter().enumerate() {
                    if let Some(&(_, issue)) = c.pending.as_ref() {
                        arrivals.push((issue, i));
                    }
                }
                arrivals.sort_unstable();
                // Admit the earliest issuable request whose routed channel
                // can take it — each channel's scheduler must see all of its
                // arrived traffic before committing a command. (A blocked
                // channel is never empty, so the service arm below always
                // makes progress towards unblocking it.)
                let mut admitted = None;
                for &(issue, i) in &arrivals {
                    let ch = if single_channel {
                        0
                    } else {
                        let &(req, _) = cores[i].pending.as_ref().expect("pending checked");
                        system.route(req.addr)
                    };
                    if system.admissible_uncached(ch, issue) {
                        admitted = Some((i, ch));
                        break;
                    }
                }
                if let Some((i, ch)) = admitted {
                    let (req, issue) = cores[i].pending.take().expect("pending checked");
                    system.push_to(ch, req, i as u32, issue);
                    continue;
                }
                let Some(ch) = system.earliest_ready_uncached() else {
                    break;
                };
                let c = system
                    .service_channel(ch)
                    .expect("earliest-ready channel is non-empty");
                if observe {
                    for e in system.drain_events_global(ch) {
                        if let Some(obs) = self.observer.as_deref_mut() {
                            obs.on_event(&e);
                        }
                        if self.capture_events {
                            events.push(e);
                        }
                    }
                }
                let core = &mut cores[c.core as usize];
                // Blocking-miss core with an MLP overlap factor: the core
                // absorbs 1/MLP of the memory stall.
                let stall = match mlp_shift {
                    Some(s) => (c.completion_ps - c.arrival_ps) >> s,
                    None => (c.completion_ps - c.arrival_ps) / mlp,
                };
                core.ready_at = c.arrival_ps + stall;
                core.finish = core.finish.max(c.completion_ps);
                core.serviced += 1;
                core.fetch();
            }
        }

        // The retained oracle exists only to cross-check admission order;
        // it carries no telemetry hooks, so no report is collected here.
        finish_report(self.scheme, system, &cores, events, None)
    }

    /// Runs until `stop_after` requests have been serviced system-wide,
    /// then pauses into a [`Checkpoint`] — or finishes normally if the
    /// run completes first.
    ///
    /// The pause point is deterministic: the checkpoint captures the
    /// exact dynamic state after the `stop_after`-th service decision —
    /// scheduler slab and planner caches, bank and tracker state, timing
    /// rings, RNG stream positions, per-core frontends and the events
    /// captured so far — so `run_until(k)` followed by
    /// [`Session::resume`] on an identically built session reproduces
    /// [`Session::run`] bit for bit, reports, event streams and energy
    /// included (pinned by `tests/checkpoint_identity.rs`). `k = 0`
    /// pauses before the first service decision.
    ///
    /// # Errors
    ///
    /// Returns an error if the reference admission oracle is active (its
    /// retained loop has no pause point) or if any request source does
    /// not support snapshotting ([`RequestSource::snapshot_state`]
    /// returns `None`).
    pub fn run_until(self, stop_after: u64) -> Result<SessionRun, String> {
        if REFERENCE_ADMISSION_DEFAULT.load(Ordering::SeqCst) {
            return Err(REFERENCE_PAUSE_ERR.to_string());
        }
        self.drive(None, Some(stop_after))
    }

    /// Continues a paused run from `checkpoint` to completion.
    ///
    /// The session must be built with the *same* builder state (config,
    /// scheme, policy, mapping, seed and frontend shape) as the run that
    /// produced the checkpoint — the checkpoint carries only dynamic
    /// state, and restore validates structure (channel, rank, bank and
    /// core counts, index bounds), not provenance.
    ///
    /// # Errors
    ///
    /// Returns an error on a malformed or structurally incompatible
    /// checkpoint, if a request source does not support restore, or if
    /// the reference admission oracle is active.
    pub fn resume(self, checkpoint: &Checkpoint) -> Result<RunReport, String> {
        if REFERENCE_ADMISSION_DEFAULT.load(Ordering::SeqCst) {
            return Err(REFERENCE_PAUSE_ERR.to_string());
        }
        match self.drive(Some(checkpoint), None)? {
            SessionRun::Finished(report) => Ok(report),
            SessionRun::Paused(_) => unreachable!("no stop point requested"),
        }
    }

    /// [`resume`](Session::resume) with another pause point: continues
    /// from `checkpoint` and pauses again once `stop_after` total
    /// requests — counting those serviced before the checkpoint — have
    /// been serviced.
    ///
    /// # Errors
    ///
    /// Fails under the same conditions as [`Session::resume`].
    pub fn resume_until(
        self,
        checkpoint: &Checkpoint,
        stop_after: u64,
    ) -> Result<SessionRun, String> {
        if REFERENCE_ADMISSION_DEFAULT.load(Ordering::SeqCst) {
            return Err(REFERENCE_PAUSE_ERR.to_string());
        }
        self.drive(Some(checkpoint), Some(stop_after))
    }

    /// The shared engine behind the optimized entry points: starts fresh
    /// or from a checkpoint, runs the incremental admission loop, and
    /// optionally pauses once `stop_after` requests have been serviced.
    ///
    /// The pause check sits at the loop top — right after a service
    /// decision's fetch and arrival push — where the loop invariant
    /// holds: the arrival heap/set contains `(issue, core)` exactly for
    /// the cores with a pending request. That is what lets resume
    /// rebuild the arrivals from the restored pendings instead of
    /// serializing the heap.
    fn drive(
        mut self,
        resume: Option<&Checkpoint>,
        stop_after: Option<u64>,
    ) -> Result<SessionRun, String> {
        let mut system = System::new(self.cfg, self.scheme, self.policy, self.mapping, self.seed);
        let single_channel = system.channel_count() == 1;
        let observe = self.observer.is_some() || self.capture_events;
        if observe {
            system.enable_event_log();
        }
        // Telemetry goes live before any restore so a telemetry-on
        // checkpoint finds its per-layer words expected everywhere.
        if self.telemetry {
            system.enable_telemetry();
        }
        let mut stel: Option<Box<SessionTelemetry>> = self
            .telemetry
            .then(|| Box::new(SessionTelemetry::new(self.cfg.t_refi_ps)));
        // Captured runs produce one event per executed command; reserve a
        // chunk up front so the early doublings never land in the hot loop.
        let mut events = Vec::with_capacity(if self.capture_events { 4096 } else { 0 });
        let mlp = u64::from(self.cfg.core_mlp).max(1);
        // The common MLP values are powers of two; divide by shift then
        // (the stall division runs once per serviced request).
        let mlp_shift = if mlp.is_power_of_two() {
            Some(mlp.trailing_zeros())
        } else {
            None
        };
        let batch = !REFERENCE_GENERATION_DEFAULT.load(Ordering::SeqCst);
        let mut cores: Vec<CoreCtx> = self
            .sources
            .into_iter()
            .map(|source| CoreCtx {
                source,
                pending: None,
                ring: VecDeque::new(),
                batch,
                route: 0,
                ready_at: 0,
                remaining: self.budget,
                finish: 0,
                serviced: 0,
            })
            .collect();
        if let Some(checkpoint) = resume {
            // Construction-time RNG draws are immaterial: restore
            // overwrites every stream position, pending request and
            // counter with the checkpointed state. The initial fetch is
            // skipped — the paused run already performed it.
            restore_session(checkpoint, &mut system, &mut cores, &mut events, &mut stel)?;
        } else {
            for c in &mut cores {
                c.fetch();
                if let Some(t) = stel.as_deref_mut() {
                    if c.pending.is_some() {
                        t.generated += 1;
                    }
                }
            }
        }
        let mut serviced_total: u64 = cores.iter().map(|c| c.serviced).sum();

        if single_channel {
            // Incremental single-channel admission: admissibility is
            // monotone in the issue time (a full queue or a too-late
            // arrival stays inadmissible for every later arrival), so
            // only the *minimum* pending `(issue, core)` key can ever be
            // admitted — a binary min-heap (contiguous, no tree nodes)
            // beats an ordered set here, and peek is free. The heap pops
            // exactly the key the reference's sorted scan would admit,
            // so the admit order is identical step for step.
            let mut arrivals: BinaryHeap<Reverse<(u64, usize)>> =
                BinaryHeap::with_capacity(cores.len());
            for (i, c) in cores.iter().enumerate() {
                if let Some(&(_, issue)) = c.pending.as_ref() {
                    arrivals.push(Reverse((issue, i)));
                }
            }
            loop {
                if stop_after.is_some_and(|k| serviced_total >= k) {
                    let ckpt = snapshot_session(&system, &cores, &events, &stel)?;
                    return Ok(SessionRun::Paused(ckpt));
                }
                if let Some(&Reverse((issue, i))) = arrivals.peek() {
                    if system.admissible(0, issue) {
                        arrivals.pop();
                        let (req, _) = cores[i].pending.take().expect("pending checked");
                        if let Some(t) = stel.as_deref_mut() {
                            t.admitted += 1;
                            t.ring_depth.record(cores[i].ring.len() as u64);
                        }
                        system.push_to(0, req, i as u32, issue);
                        continue;
                    }
                }
                let Some(idx) = service_step(
                    &mut system,
                    &mut cores,
                    mlp,
                    mlp_shift,
                    &mut self.observer,
                    self.capture_events,
                    &mut events,
                    &mut stel,
                ) else {
                    break;
                };
                serviced_total += 1;
                if let Some(&(_, issue)) = cores[idx].pending.as_ref() {
                    arrivals.push(Reverse((issue, idx)));
                }
            }
        } else {
            // Incremental multi-channel admission: pending arrivals live
            // in an ordered `(issue, core)` set mutated only when a core
            // fetches or is admitted — O(log cores) per admit instead of
            // a full re-sort per decision — with each pending request's
            // routed channel cached at fetch time. A blocked channel
            // must not starve another channel's admissible arrival, so
            // the scan walks the set in order; iteration order is
            // exactly the reference's sorted order, so the admitted
            // request is identical step for step.
            let mut arrivals: BTreeSet<(u64, usize)> = BTreeSet::new();
            for (i, c) in cores.iter_mut().enumerate() {
                if let Some(&(req, issue)) = c.pending.as_ref() {
                    c.route = system.route(req.addr);
                    arrivals.insert((issue, i));
                }
            }
            loop {
                if stop_after.is_some_and(|k| serviced_total >= k) {
                    let ckpt = snapshot_session(&system, &cores, &events, &stel)?;
                    return Ok(SessionRun::Paused(ckpt));
                }
                let mut admitted = None;
                for &(issue, i) in &arrivals {
                    let ch = cores[i].route;
                    if system.admissible(ch, issue) {
                        admitted = Some((issue, i, ch));
                        break;
                    }
                }
                if let Some((issue, i, ch)) = admitted {
                    arrivals.remove(&(issue, i));
                    let (req, _) = cores[i].pending.take().expect("pending checked");
                    if let Some(t) = stel.as_deref_mut() {
                        t.admitted += 1;
                        t.ring_depth.record(cores[i].ring.len() as u64);
                    }
                    system.push_to(ch, req, i as u32, issue);
                    continue;
                }
                let Some(idx) = service_step(
                    &mut system,
                    &mut cores,
                    mlp,
                    mlp_shift,
                    &mut self.observer,
                    self.capture_events,
                    &mut events,
                    &mut stel,
                ) else {
                    break;
                };
                serviced_total += 1;
                if let Some(&(req, issue)) = cores[idx].pending.as_ref() {
                    cores[idx].route = system.route(req.addr);
                    arrivals.insert((issue, idx));
                }
            }
        }

        Ok(SessionRun::Finished(finish_report(
            self.scheme,
            system,
            &cores,
            events,
            stel,
        )))
    }
}

/// Serializes the full dynamic state of a paused run — system, cores and
/// captured events — into a [`Checkpoint`]. Builder-derived state
/// (config, scheme, decoder, policy, observer) is *not* stored:
/// [`Session::resume`] must be handed an identically built session.
fn snapshot_session(
    system: &System,
    cores: &[CoreCtx],
    events: &[MemEvent],
    stel: &Option<Box<SessionTelemetry>>,
) -> Result<Checkpoint, String> {
    let mut w = SnapshotWriter::new();
    w.push(cores.len() as u64);
    // The generation mode shapes the rings (a ring prefilled under batch
    // mode would desync a non-batch resume), so the checkpoint pins it.
    w.push_bool(cores.first().is_some_and(|c| c.batch));
    system.snapshot_into(&mut w);
    for (i, c) in cores.iter().enumerate() {
        let source = c
            .source
            .snapshot_state()
            .ok_or_else(|| format!("request source {i} does not support checkpoint/restore"))?;
        w.push_words(&source);
        match c.pending.as_ref() {
            Some(&(req, issue)) => {
                w.push_bool(true);
                w.push(req.addr);
                w.push_bool(req.is_read);
                w.push(req.think_time_ps);
                w.push(issue);
            }
            None => w.push_bool(false),
        }
        w.push(c.ring.len() as u64);
        for req in &c.ring {
            w.push(req.addr);
            w.push_bool(req.is_read);
            w.push(req.think_time_ps);
        }
        w.push(c.ready_at);
        w.push_opt(c.remaining.map(u64::from));
        w.push(c.finish);
        w.push(c.serviced);
    }
    w.push(events.len() as u64);
    for e in events {
        for word in e.encode_words() {
            w.push(word);
        }
    }
    // Telemetry words ride behind the stable layout, and only when the
    // layer is enabled — a non-telemetry checkpoint is unchanged.
    if let Some(t) = stel {
        t.snapshot_into(&mut w);
    }
    Ok(w.into_checkpoint())
}

/// Rebuilds the dynamic state captured by [`snapshot_session`] into a
/// freshly constructed system and core set.
fn restore_session(
    checkpoint: &Checkpoint,
    system: &mut System,
    cores: &mut [CoreCtx],
    events: &mut Vec<MemEvent>,
    stel: &mut Option<Box<SessionTelemetry>>,
) -> Result<(), String> {
    let mut r = SnapshotReader::new(&checkpoint.words);
    let count = r.take()?;
    if count != cores.len() as u64 {
        return Err(format!(
            "session: checkpoint has {count} cores, this session has {}",
            cores.len()
        ));
    }
    let batch = r.take_bool()?;
    system.restore_from(&mut r)?;
    for c in cores.iter_mut() {
        c.batch = batch;
        c.source.restore_state(r.take_words()?)?;
        c.pending = if r.take_bool()? {
            let addr = r.take()?;
            let is_read = r.take_bool()?;
            let think_time_ps = r.take()?;
            let issue = r.take()?;
            Some((
                Request {
                    addr,
                    is_read,
                    think_time_ps,
                },
                issue,
            ))
        } else {
            None
        };
        let ring_len = r.take()?;
        c.ring.clear();
        for _ in 0..ring_len {
            let addr = r.take()?;
            let is_read = r.take_bool()?;
            let think_time_ps = r.take()?;
            c.ring.push_back(Request {
                addr,
                is_read,
                think_time_ps,
            });
        }
        c.ready_at = r.take()?;
        c.remaining = match r.take_opt()? {
            Some(n) => Some(
                u32::try_from(n)
                    .map_err(|_| format!("session: remaining budget {n} exceeds u32"))?,
            ),
            None => None,
        };
        c.finish = r.take()?;
        c.serviced = r.take()?;
    }
    let ev_len = r.take()?;
    events.clear();
    for _ in 0..ev_len {
        let words = [r.take()?, r.take()?, r.take()?, r.take()?];
        events.push(MemEvent::decode_words(words)?);
    }
    if let Some(t) = stel.as_deref_mut() {
        t.restore_from(&mut r)?;
    }
    r.finish()
}

/// Aggregates a completed run into its [`RunReport`] (shared by the
/// optimized and reference loops).
fn finish_report(
    scheme: MitigationScheme,
    mut system: System,
    cores: &[CoreCtx],
    events: Vec<MemEvent>,
    stel: Option<Box<SessionTelemetry>>,
) -> RunReport {
    let duration = cores.iter().map(|c| c.finish).max().unwrap_or(0);
    system.finish(duration);
    let result = system.result();
    let with_hw = !matches!(scheme, MitigationScheme::Baseline);
    // Collection runs after `finish` so trailing-refresh commands are in
    // the per-channel results the report summarizes.
    let telemetry = stel.map(|t| collect_report(&t, &system, duration));
    RunReport {
        perf: NormalizedPerf {
            duration_ps: duration,
            result,
            normalized: 1.0,
        },
        cores: cores
            .iter()
            .map(|c| CoreOutcome {
                finish_ps: c.finish,
                requests: c.serviced,
            })
            .collect(),
        energy: EnergyModel::ddr5_default().energy(&result, duration, with_hw),
        events,
        telemetry,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{parse_trace, spec_rate_workloads};

    fn rate4(spec: WorkloadSpec) -> Vec<WorkloadSpec> {
        vec![spec; 4]
    }

    fn run(scheme: MitigationScheme, spec: WorkloadSpec) -> NormalizedPerf {
        Sim::ddr5()
            .scheme(scheme)
            .workload(&rate4(spec), 30_000)
            .seed(11)
            .run()
            .perf
    }

    fn lbm() -> WorkloadSpec {
        spec_rate_workloads()
            .into_iter()
            .find(|w| w.name == "lbm")
            .unwrap()
    }

    #[test]
    fn mint_has_zero_slowdown() {
        let spec = lbm();
        let base = run(MitigationScheme::Baseline, spec);
        let mint = run(MitigationScheme::Mint, spec).normalize(&base);
        assert!(
            (mint.normalized - 1.0).abs() < 1e-9,
            "MINT normalized perf {}",
            mint.normalized
        );
        assert!(mint.result.mitigative_acts > 0);
    }

    #[test]
    fn rfm16_slowdown_is_small() {
        // With the per-REF RAA decrement, RFM16 only fires on banks that
        // exceed 16 ACTs per tREFI — slowdown stays within a few percent
        // even for the most memory-intensive workload (paper avg: 1.6%).
        let spec = lbm();
        let base = run(MitigationScheme::Baseline, spec);
        let rfm = run(MitigationScheme::MintRfm { rfm_th: 16 }, spec).normalize(&base);
        assert!(rfm.normalized <= 1.0);
        assert!(
            rfm.normalized > 0.90,
            "RFM16 slowdown should be a few percent, got {}",
            rfm.normalized
        );
    }

    #[test]
    fn rfm32_costs_less_than_rfm16() {
        let spec = lbm();
        let base = run(MitigationScheme::Baseline, spec);
        let rfm32 = run(MitigationScheme::MintRfm { rfm_th: 32 }, spec).normalize(&base);
        let rfm16 = run(MitigationScheme::MintRfm { rfm_th: 16 }, spec).normalize(&base);
        assert!(
            rfm32.normalized >= rfm16.normalized,
            "RFM32 {} vs RFM16 {}",
            rfm32.normalized,
            rfm16.normalized
        );
    }

    #[test]
    fn mc_para_is_worse_than_mint_rfm() {
        let spec = lbm();
        let base = run(MitigationScheme::Baseline, spec);
        let rfm16 = run(MitigationScheme::MintRfm { rfm_th: 16 }, spec).normalize(&base);
        let para = run(MitigationScheme::McPara { p: 1.0 / 64.0 }, spec).normalize(&base);
        assert!(
            para.normalized < rfm16.normalized - 0.005,
            "MC-PARA {} should clearly lose to MINT+RFM16 {}",
            para.normalized,
            rfm16.normalized
        );
    }

    #[test]
    fn compute_bound_workload_barely_notices() {
        let povray = spec_rate_workloads()
            .into_iter()
            .find(|w| w.name == "povray")
            .unwrap();
        let base = run(MitigationScheme::Baseline, povray);
        let para = run(MitigationScheme::McPara { p: 1.0 / 64.0 }, povray).normalize(&base);
        assert!(
            para.normalized > 0.97,
            "compute-bound slowdown should be tiny, got {}",
            para.normalized
        );
    }

    #[test]
    fn frfcfs_beats_fcfs_on_row_hit_rate() {
        // A high-locality workload keeps every core streaming inside one
        // row; whenever two cores collide on a bank, FCFS ping-pongs the
        // row buffer while FR-FCFS batches each stream's hits. The
        // scheduler must turn that into a strictly higher hit rate.
        let spec = lbm(); // 0.85 row-buffer locality
        let specs = rate4(spec);
        let run_policy = |policy| {
            Sim::ddr5()
                .policy(policy)
                .workload(&specs, 20_000)
                .seed(13)
                .run()
                .perf
        };
        let fcfs = run_policy(SchedulePolicy::Fcfs);
        let frfcfs = run_policy(SchedulePolicy::frfcfs());
        assert!(
            frfcfs.result.row_hit_rate() > fcfs.result.row_hit_rate(),
            "FR-FCFS {} must beat FCFS {}",
            frfcfs.result.row_hit_rate(),
            fcfs.result.row_hit_rate()
        );
    }

    #[test]
    fn determinism() {
        let spec = lbm();
        let a = run(MitigationScheme::Mint, spec);
        let b = run(MitigationScheme::Mint, spec);
        assert_eq!(a.duration_ps, b.duration_ps);
        assert_eq!(a.result, b.result);
    }

    #[test]
    fn trace_replay_is_deterministic_and_complete() {
        let text: String = (0..50)
            .map(|i| {
                format!(
                    "{} {} 0x{:x}\n",
                    i % 7,
                    if i % 3 == 0 { 'W' } else { 'R' },
                    i * 64
                )
            })
            .collect();
        let entries = parse_trace(&text).unwrap();
        let run = || {
            Sim::ddr5()
                .scheme(MitigationScheme::Mint)
                .trace(&entries)
                .seed(3)
                .run()
                .perf
        };
        let a = run();
        let b = run();
        assert_eq!(a.duration_ps, b.duration_ps);
        assert_eq!(a.result, b.result);
        assert_eq!(a.result.requests, 50, "every trace entry is serviced");
        assert_eq!(a.result.writes, 17);
    }

    #[test]
    fn report_carries_cores_energy_and_optional_events() {
        let spec = lbm();
        let plain = Sim::ddr5().workload(&rate4(spec), 500).seed(7).run();
        assert_eq!(plain.cores.len(), 4);
        assert_eq!(
            plain.cores.iter().map(|c| c.requests).sum::<u64>(),
            plain.perf.result.requests
        );
        assert!(plain.energy.total_j() > 0.0);
        assert!(plain.events.is_empty(), "event capture is off by default");

        let captured = Sim::ddr5()
            .workload(&rate4(spec), 500)
            .seed(7)
            .capture_events()
            .run();
        assert_eq!(
            captured.perf, plain.perf,
            "event capture must not perturb the run"
        );
        assert!(
            captured.events.len() as u64 >= captured.perf.result.demand_acts,
            "every demand ACT is an event"
        );
    }

    #[test]
    fn baseline_energy_excludes_mitigation_hw() {
        // Identical timelines (MINT rides REF time), but only MINT pays
        // the TRNG+DMQ static draw.
        let spec = lbm();
        let base = Sim::ddr5().workload(&rate4(spec), 2_000).seed(9).run();
        let mint = Sim::ddr5()
            .scheme(MitigationScheme::Mint)
            .workload(&rate4(spec), 2_000)
            .seed(9)
            .run();
        assert_eq!(base.perf.duration_ps, mint.perf.duration_ps);
        assert!(mint.energy.non_act_j > base.energy.non_act_j);
    }

    #[test]
    fn per_core_budget_chains_in_any_order() {
        // The builder is chainable in any order: a budget set before the
        // sources frontend must cap it all the same (a dropped budget on
        // all-infinite CoreStreams would hang the run).
        let cfg = SystemConfig::table6();
        let mk = || -> Vec<Box<dyn RequestSource>> {
            let decoder = crate::address::AddressDecoder::new(&cfg, AddressMapping::default());
            (0..2u64)
                .map(|i| {
                    Box::new(CoreStream::new(
                        lbm(),
                        decoder,
                        lbm().think_time_ps(&cfg),
                        derive_seed(3, i),
                    )) as Box<dyn RequestSource>
                })
                .collect()
        };
        let before = Sim::new(cfg)
            .per_core_budget(Some(200))
            .sources(mk())
            .seed(3)
            .run();
        let after = Sim::new(cfg)
            .sources(mk())
            .per_core_budget(Some(200))
            .seed(3)
            .run();
        assert_eq!(before, after);
        assert_eq!(before.perf.result.requests, 400);
    }

    #[test]
    #[should_panic(expected = "one workload spec per core")]
    fn wrong_core_count_rejected() {
        let _ = Sim::ddr5().workload(&[lbm()], 10).run();
    }

    #[test]
    #[should_panic(expected = "at least one request per core")]
    fn zero_requests_rejected() {
        let _ = Sim::ddr5().workload(&rate4(lbm()), 0).run();
    }

    #[test]
    #[should_panic(expected = "no request source configured")]
    fn missing_frontend_rejected() {
        let _ = Sim::ddr5().run();
    }

    #[test]
    #[should_panic(expected = "at least one request source")]
    fn empty_sources_rejected() {
        let _ = Sim::ddr5().sources(Vec::new()).run();
    }

    #[test]
    fn run_until_pauses_and_resume_matches_run() {
        // The exhaustive scheme x topology x split sweep lives in
        // tests/checkpoint_identity.rs; this pins the mechanism itself.
        let build = || Sim::ddr5().workload(&rate4(lbm()), 500).seed(7).build();
        let straight = build().run();
        let SessionRun::Paused(ckpt) = build().run_until(100).expect("pausable run") else {
            panic!("a mid-run stop point must pause");
        };
        let resumed = build().resume(&ckpt).expect("resume");
        assert_eq!(resumed, straight);
    }

    #[test]
    fn the_reference_admission_oracle_refuses_to_pause() {
        // (Concurrent tests in this binary may observe the flag while
        // it is set — they would take the reference path and produce
        // identical reports, so the brief flip is benign.)
        set_reference_admission_default(true);
        let refused = Sim::ddr5().workload(&rate4(lbm()), 10).build().run_until(5);
        set_reference_admission_default(false);
        assert!(refused.unwrap_err().contains("no pause point"));
    }
}
