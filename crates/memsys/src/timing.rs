//! Inter-bank timing constraints: tRRD_S/tRRD_L, tFAW and tCCD_S/tCCD_L.
//!
//! The per-bank state of the controller already serialises same-bank
//! commands (tRC, hit/miss latencies, REF windows); this module layers the
//! *cross-bank* DDR5 constraints on top:
//!
//! * **tRRD** — two ACTs anywhere in one rank must be at least
//!   tRRD_S apart (tRRD_L when they hit the same bank group);
//! * **tFAW** — any rolling tFAW window holds at most four ACTs per rank;
//! * **tCCD** — two CAS bursts must be at least tCCD_S apart
//!   (tCCD_L within one bank group), which is what serialises the data
//!   bus.
//!
//! ACT constraints (tRRD, tFAW) are *rank-local*: each rank has its own
//! activation power budget, so [`TimingState`] keeps one rolling ACT
//! history per rank. The CAS exclusion zone stays channel-global — all
//! ranks of a channel share one data bus.
//!
//! [`TimingState`] is fed *chronologically* by the channel scheduler
//! (which always issues the earliest-startable transaction, so command
//! times are monotone) and answers "when may the next ACT/CAS go".

use crate::config::SystemConfig;
use crate::snapshot::{SnapshotReader, SnapshotWriter};

/// The inter-bank constraint set, in picoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InterBankTiming {
    /// ACT→ACT spacing across bank groups.
    pub t_rrd_s_ps: u64,
    /// ACT→ACT spacing within one bank group.
    pub t_rrd_l_ps: u64,
    /// Rolling four-activate window.
    pub t_faw_ps: u64,
    /// CAS→CAS spacing across bank groups.
    pub t_ccd_s_ps: u64,
    /// CAS→CAS spacing within one bank group.
    pub t_ccd_l_ps: u64,
}

impl InterBankTiming {
    /// The constraint set of a [`SystemConfig`].
    #[must_use]
    pub fn from_system(cfg: &SystemConfig) -> Self {
        Self {
            t_rrd_s_ps: cfg.t_rrd_s_ps,
            t_rrd_l_ps: cfg.t_rrd_l_ps,
            t_faw_ps: cfg.t_faw_ps,
            t_ccd_s_ps: cfg.t_ccd_s_ps,
            t_ccd_l_ps: cfg.t_ccd_l_ps,
        }
    }

    /// A constraint set that never delays anything (for unit tests and
    /// for modelling pre-DDR4 devices without bank groups).
    #[must_use]
    pub fn unconstrained() -> Self {
        Self {
            t_rrd_s_ps: 0,
            t_rrd_l_ps: 0,
            t_faw_ps: 0,
            t_ccd_s_ps: 0,
            t_ccd_l_ps: 0,
        }
    }
}

/// One rank's rolling ACT history: the tFAW ring plus the last ACT for
/// tRRD spacing.
#[derive(Debug, Clone)]
struct RankActs {
    /// Issue times of the rank's most recent four ACTs (ring buffer;
    /// `head` indexes the oldest entry once `act_count >= 4`, which is
    /// also the next slot to overwrite).
    acts: [u64; 4],
    /// Next write position / oldest entry of the full ring.
    head: u8,
    /// ACTs recorded so far, saturating at 4 (the ring is full then).
    act_count: u8,
    /// Last ACT of this rank: time and bank group.
    last_act: Option<(u64, u32)>,
}

impl RankActs {
    fn fresh() -> Self {
        Self {
            acts: [0; 4],
            head: 0,
            act_count: 0,
            last_act: None,
        }
    }
}

/// Rolling command history answering earliest-issue queries.
///
/// Each rank's tFAW window is a fixed four-entry ring buffer
/// (`acts` + `head`): recording an ACT overwrites the oldest slot in
/// place, so the scheduler hot path never shifts or allocates. The CAS
/// horizon is shared across ranks (one data bus per channel).
#[derive(Debug, Clone)]
pub struct TimingState {
    t: InterBankTiming,
    /// Per-rank ACT histories (tRRD and tFAW are rank-local).
    ranks: Vec<RankActs>,
    /// Last CAS on the channel's shared data bus: time and bank group.
    last_cas: Option<(u64, u32)>,
}

impl TimingState {
    /// Fresh single-rank state (no command history) under the given
    /// constraints.
    #[must_use]
    pub fn new(t: InterBankTiming) -> Self {
        Self::with_ranks(t, 1)
    }

    /// Fresh state for a channel of `ranks` ranks.
    ///
    /// # Panics
    ///
    /// Panics if `ranks == 0`.
    #[must_use]
    pub fn with_ranks(t: InterBankTiming, ranks: u32) -> Self {
        assert!(ranks > 0, "a channel needs at least one rank");
        Self {
            t,
            ranks: (0..ranks).map(|_| RankActs::fresh()).collect(),
            last_cas: None,
        }
    }

    /// Earliest time an ACT to `bank_group` of `rank` may issue.
    #[must_use]
    pub fn earliest_act(&self, rank: u32, bank_group: u32) -> u64 {
        let r = &self.ranks[rank as usize];
        let mut earliest = 0;
        if let Some((t_last, bg)) = r.last_act {
            let rrd = if bg == bank_group {
                self.t.t_rrd_l_ps
            } else {
                self.t.t_rrd_s_ps
            };
            earliest = earliest.max(t_last + rrd);
        }
        if r.act_count >= 4 {
            // A fifth ACT must wait until the oldest of the rank's last
            // four falls out of the rolling tFAW window; the oldest entry
            // of the full ring sits exactly at `head`.
            earliest = earliest.max(r.acts[usize::from(r.head)] + self.t.t_faw_ps);
        }
        earliest
    }

    /// The earliest CAS slot at or after `desired_ps` for `bank_group`.
    ///
    /// CAS times are *not* monotone across scheduling decisions (a row
    /// hit's CAS fires immediately, while the CAS of an earlier-issued
    /// miss trails its ACT by tRP + tRCD), so the data bus is modelled as
    /// an exclusion zone of ±tCCD around the latest CAS: a desired slot
    /// clear of that zone — before or after — is granted as is; a
    /// conflicting one is pushed past it. The bus is shared by every rank
    /// of the channel, so there is no rank parameter.
    #[must_use]
    pub fn cas_slot(&self, desired_ps: u64, bank_group: u32) -> u64 {
        match self.last_cas {
            None => desired_ps,
            Some((t_last, bg)) => {
                let ccd = if bg == bank_group {
                    self.t.t_ccd_l_ps
                } else {
                    self.t.t_ccd_s_ps
                };
                if desired_ps < t_last + ccd && desired_ps + ccd > t_last {
                    t_last + ccd
                } else {
                    desired_ps
                }
            }
        }
    }

    /// A time at or after which no inter-bank constraint can delay any
    /// command, whatever its rank or bank group: past every rank's last
    /// ACT by the larger tRRD, past every rank's rolling tFAW window, and
    /// past the last CAS by the larger tCCD. The scheduler's planner uses
    /// it as a one-compare fast path for far-future starts.
    #[must_use]
    pub fn quiet_ps(&self) -> u64 {
        let mut q = 0;
        for r in &self.ranks {
            if let Some((t, _)) = r.last_act {
                q = q.max(t + self.t.t_rrd_l_ps.max(self.t.t_rrd_s_ps));
            }
            if r.act_count >= 4 {
                q = q.max(r.acts[usize::from(r.head)] + self.t.t_faw_ps);
            }
        }
        if let Some((t, _)) = self.last_cas {
            q = q.max(t + self.t.t_ccd_l_ps.max(self.t.t_ccd_s_ps));
        }
        q
    }

    /// Records an ACT issued at `at_ps` to `bank_group` of `rank`.
    ///
    /// The scheduler issues commands in chronological order; a debug
    /// assertion pins that contract (the rolling-window bookkeeping relies
    /// on it).
    pub fn record_act(&mut self, at_ps: u64, rank: u32, bank_group: u32) {
        let r = &mut self.ranks[rank as usize];
        debug_assert!(
            r.last_act.map_or(true, |(t, _)| at_ps >= t),
            "ACTs must be recorded chronologically"
        );
        r.acts[usize::from(r.head)] = at_ps;
        r.head = (r.head + 1) & 3;
        r.act_count = (r.act_count + 1).min(4);
        r.last_act = Some((at_ps, bank_group));
    }

    /// Records a CAS issued at `at_ps` to `bank_group`. Only the latest
    /// CAS is kept (see [`cas_slot`](Self::cas_slot)): recording an
    /// earlier CAS — a hit slotting in before a pending miss's CAS — does
    /// not move the bus horizon backwards.
    pub fn record_cas(&mut self, at_ps: u64, bank_group: u32) {
        if self.last_cas.map_or(true, |(t, _)| at_ps >= t) {
            self.last_cas = Some((at_ps, bank_group));
        }
    }

    /// Serialises the command history (the constraint set itself is
    /// rebuilt from config on restore).
    pub(crate) fn snapshot_into(&self, w: &mut SnapshotWriter) {
        w.push(self.ranks.len() as u64);
        for r in &self.ranks {
            for &a in &r.acts {
                w.push(a);
            }
            w.push(u64::from(r.head));
            w.push(u64::from(r.act_count));
            match r.last_act {
                Some((t, bg)) => {
                    w.push_bool(true);
                    w.push(t);
                    w.push_u32(bg);
                }
                None => {
                    w.push_bool(false);
                    w.push(0);
                    w.push_u32(0);
                }
            }
        }
        match self.last_cas {
            Some((t, bg)) => {
                w.push_bool(true);
                w.push(t);
                w.push_u32(bg);
            }
            None => {
                w.push_bool(false);
                w.push(0);
                w.push_u32(0);
            }
        }
    }

    /// Restores the history captured by [`snapshot_into`](Self::snapshot_into)
    /// into a state built for the same topology.
    pub(crate) fn restore_from(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), String> {
        let ranks = usize::try_from(r.take()?)
            .map_err(|_| "timing: rank count overflows usize".to_string())?;
        if ranks != self.ranks.len() {
            return Err(format!(
                "timing: checkpoint has {ranks} ranks, state has {}",
                self.ranks.len()
            ));
        }
        for rank in &mut self.ranks {
            for a in &mut rank.acts {
                *a = r.take()?;
            }
            let head = r.take()?;
            if head >= 4 {
                return Err(format!("timing: ring head {head} out of range"));
            }
            rank.head = head as u8;
            let act_count = r.take()?;
            if act_count > 4 {
                return Err(format!("timing: act count {act_count} out of range"));
            }
            rank.act_count = act_count as u8;
            let valid = r.take_bool()?;
            let t = r.take()?;
            let bg = r.take_u32()?;
            rank.last_act = valid.then_some((t, bg));
        }
        let valid = r.take_bool()?;
        let t = r.take()?;
        let bg = r.take_u32()?;
        self.last_cas = valid.then_some((t, bg));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timing() -> InterBankTiming {
        InterBankTiming::from_system(&SystemConfig::table6())
    }

    #[test]
    fn fresh_state_never_delays() {
        let s = TimingState::new(timing());
        assert_eq!(s.earliest_act(0, 0), 0);
        assert_eq!(s.cas_slot(0, 0), 0);
        assert_eq!(s.cas_slot(12_345, 3), 12_345);
    }

    #[test]
    fn rrd_long_within_group_short_across() {
        let t = timing();
        let mut s = TimingState::new(t);
        s.record_act(1_000_000, 0, 3);
        assert_eq!(s.earliest_act(0, 3), 1_000_000 + t.t_rrd_l_ps);
        assert_eq!(s.earliest_act(0, 4), 1_000_000 + t.t_rrd_s_ps);
    }

    #[test]
    fn faw_binds_the_fifth_act() {
        let t = timing();
        let mut s = TimingState::new(t);
        // Four ACTs packed at the RRD_S rate across different groups.
        for i in 0..4u64 {
            s.record_act(i * t.t_rrd_s_ps, 0, i as u32);
        }
        let fifth = s.earliest_act(0, 5);
        assert_eq!(fifth, t.t_faw_ps, "fifth ACT waits for the FAW window");
        assert!(fifth > 3 * t.t_rrd_s_ps + t.t_rrd_s_ps);
    }

    #[test]
    fn faw_window_rolls() {
        let t = timing();
        let mut s = TimingState::new(t);
        for i in 0..4u64 {
            s.record_act(i * t.t_rrd_s_ps, 0, i as u32);
        }
        s.record_act(t.t_faw_ps, 0, 4);
        // The window now starts at the second ACT (t = tRRD_S), so the
        // next ACT waits for exactly tRRD_S + tFAW — which also dominates
        // the tRRD_S-after-last-ACT constraint (tFAW > 4·tRRD_S). An
        // unevicted oldest ACT (stuck at t = 0) would yield only tFAW.
        assert_eq!(s.earliest_act(0, 7), t.t_rrd_s_ps + t.t_faw_ps);
    }

    #[test]
    fn act_constraints_are_rank_local() {
        let t = timing();
        let mut s = TimingState::with_ranks(t, 2);
        // Saturate rank 0's tFAW window and tRRD horizon.
        for i in 0..4u64 {
            s.record_act(i * t.t_rrd_s_ps, 0, i as u32);
        }
        assert_eq!(s.earliest_act(0, 5), t.t_faw_ps);
        // Rank 1 has its own activation budget: entirely unconstrained.
        assert_eq!(s.earliest_act(1, 5), 0);
        s.record_act(0, 1, 5);
        assert_eq!(s.earliest_act(1, 5), t.t_rrd_l_ps);
        // ...and rank 1's history never leaks back into rank 0.
        assert_eq!(s.earliest_act(0, 5), t.t_faw_ps);
    }

    #[test]
    fn cas_bus_is_shared_across_ranks() {
        let t = timing();
        let mut s = TimingState::with_ranks(t, 2);
        s.record_cas(500_000, 2);
        // Whatever rank wants the bus, the exclusion zone applies: the
        // channel has one data bus.
        assert_eq!(s.cas_slot(500_000, 2), 500_000 + t.t_ccd_l_ps);
        assert_eq!(s.cas_slot(500_000, 0), 500_000 + t.t_ccd_s_ps);
    }

    #[test]
    fn ccd_serialises_the_data_bus() {
        let t = timing();
        let mut s = TimingState::new(t);
        s.record_cas(500_000, 2);
        // A conflicting slot is pushed past the bus: tCCD_L within the
        // group, tCCD_S across.
        assert_eq!(s.cas_slot(500_000, 2), 500_000 + t.t_ccd_l_ps);
        assert_eq!(s.cas_slot(500_000, 0), 500_000 + t.t_ccd_s_ps);
        assert_eq!(s.cas_slot(499_000, 2), 500_000 + t.t_ccd_l_ps);
        // Slots clear of the exclusion zone — before or after — pass.
        assert_eq!(s.cas_slot(400_000, 2), 400_000);
        assert_eq!(s.cas_slot(900_000, 2), 900_000);
    }

    #[test]
    fn early_cas_does_not_rewind_the_bus() {
        let t = timing();
        let mut s = TimingState::new(t);
        s.record_cas(500_000, 2);
        s.record_cas(400_000, 1); // a hit slotting in before the miss's CAS
        assert_eq!(
            s.cas_slot(500_000, 2),
            500_000 + t.t_ccd_l_ps,
            "the bus horizon stays at the latest CAS"
        );
    }

    #[test]
    fn unconstrained_is_free() {
        let mut s = TimingState::new(InterBankTiming::unconstrained());
        for i in 0..10 {
            s.record_act(i, 0, 0);
            s.record_cas(i, 0);
        }
        assert_eq!(s.earliest_act(0, 0), 9);
        assert_eq!(s.cas_slot(0, 0), 0);
        assert_eq!(s.cas_slot(42, 0), 42);
    }
}
