//! The channel scheduler: a bounded transaction queue drained by a
//! pluggable [`SchedulePolicy`] under the inter-bank timing constraints.
//!
//! A [`Channel`] is the command-level pipeline of the memory system:
//!
//! ```text
//! RequestSource ──► TransQueue ──► SchedulePolicy ──► TimingState ──► banks
//!   (frontend)       (bounded)     (FCFS/FR-FCFS)     (tRRD/tFAW/tCCD)  (engine)
//! ```
//!
//! Scheduling works in *decision steps*: among all queued transactions the
//! channel computes each one's earliest possible start (bank busy time,
//! REF windows, tRRD/tFAW for the ACT of a predicted miss, tCCD for the
//! CAS), then arbitrates among the transactions achieving the global
//! minimum. Because every step issues the earliest-startable transaction,
//! command times are monotone — which keeps the rolling timing windows
//! honest and the whole pipeline bit-deterministic for any worker count.

use crate::address::{AddressDecoder, AddressMapping, DecodedAddr};
use crate::config::{MitigationScheme, SystemConfig};
use crate::controller::{past_ref_window, MemoryController, SimResult};
use crate::timing::{InterBankTiming, TimingState};
use crate::workload::Request;

/// How the channel arbitrates among simultaneously issuable transactions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulePolicy {
    /// First-come-first-served: strictly oldest-first among issuable
    /// transactions (the scalar model this pipeline replaced serviced each
    /// bank in arrival order; FCFS is its channel-level equivalent).
    Fcfs,
    /// FR-FCFS: row-hit-first, then oldest-first, with a starvation cap —
    /// once an issuable transaction has been bypassed `starvation_cap`
    /// times by younger row hits it gains absolute priority.
    FrFcfs {
        /// Bypass budget before an old transaction is force-served.
        starvation_cap: u32,
    },
}

impl SchedulePolicy {
    /// The production default: FR-FCFS with a bypass budget of 4.
    #[must_use]
    pub fn frfcfs() -> Self {
        SchedulePolicy::FrFcfs { starvation_cap: 4 }
    }

    /// Short label for reports.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            SchedulePolicy::Fcfs => "FCFS".to_owned(),
            SchedulePolicy::FrFcfs { starvation_cap } => format!("FR-FCFS(cap{starvation_cap})"),
        }
    }

    /// Parses a policy from its [`label`](SchedulePolicy::label) form,
    /// case-insensitively — `"fcfs"`, `"fr-fcfs"` / `"frfcfs"` (the
    /// production cap), or `"fr-fcfs(capN)"` for an explicit starvation
    /// cap. The inverse of `label`, used by the declarative
    /// [`ScenarioSpec`](crate::ScenarioSpec) text format. Returns `None`
    /// for unknown policies.
    #[must_use]
    pub fn parse(s: &str) -> Option<SchedulePolicy> {
        let lower = s.trim().to_ascii_lowercase();
        match lower.as_str() {
            "fcfs" => return Some(SchedulePolicy::Fcfs),
            "fr-fcfs" | "frfcfs" => return Some(SchedulePolicy::frfcfs()),
            _ => {}
        }
        let cap = lower
            .strip_prefix("fr-fcfs(cap")
            .or_else(|| lower.strip_prefix("frfcfs(cap"))?
            .strip_suffix(')')?;
        cap.parse()
            .ok()
            .map(|starvation_cap| SchedulePolicy::FrFcfs { starvation_cap })
    }
}

impl Default for SchedulePolicy {
    fn default() -> Self {
        Self::frfcfs()
    }
}

/// One in-flight transaction of the bounded queue.
#[derive(Debug, Clone, Copy)]
struct Transaction {
    id: u64,
    core: u32,
    arrival_ps: u64,
    decoded: DecodedAddr,
    is_read: bool,
    /// Times an older issuable transaction was passed over for a younger
    /// row hit (FR-FCFS starvation accounting).
    bypassed: u32,
}

/// What the channel reports back to the frontend when a transaction
/// finishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// The core (request source) that issued the transaction.
    pub core: u32,
    /// When the transaction entered the queue.
    pub arrival_ps: u64,
    /// When the bank began executing it.
    pub start_ps: u64,
    /// When its data transfer completed.
    pub completion_ps: u64,
    /// Whether it hit the open row.
    pub row_hit: bool,
}

/// A single-channel, command-level DDR5 memory pipeline: bounded
/// transaction queue → schedule policy → inter-bank timing → per-bank
/// engine (with mitigation backends).
#[derive(Debug)]
pub struct Channel {
    cfg: SystemConfig,
    policy: SchedulePolicy,
    engine: MemoryController,
    timing: TimingState,
    queue: Vec<Transaction>,
    next_id: u64,
    /// Issue time of the most recent decision (command times are
    /// monotone).
    clock_ps: u64,
    /// The decision computed by the last [`plan`](Self::plan) call, kept
    /// until the queue or device state changes (every serviced request
    /// needs the plan twice — admission lookahead, then the decision
    /// itself — and the earliest-start scan is the scheduler's hot path).
    plan_cache: Option<Plan>,
}

/// One computed scheduling decision: which transaction, when, and every
/// queued transaction's earliest start (for starvation accounting).
#[derive(Debug, Clone)]
struct Plan {
    idx: usize,
    start_ps: u64,
    starts: Vec<u64>,
}

impl Channel {
    /// Creates a channel for `scheme` with the given arbitration policy
    /// and address mapping.
    #[must_use]
    pub fn new(
        cfg: SystemConfig,
        scheme: MitigationScheme,
        policy: SchedulePolicy,
        mapping: AddressMapping,
        seed: u64,
    ) -> Self {
        Self {
            cfg,
            policy,
            engine: MemoryController::with_mapping(cfg, scheme, mapping, seed),
            timing: TimingState::new(InterBankTiming::from_system(&cfg)),
            queue: Vec::with_capacity(cfg.queue_depth as usize),
            next_id: 0,
            clock_ps: 0,
            plan_cache: None,
        }
    }

    /// The arbitration policy in force.
    #[must_use]
    pub fn policy(&self) -> SchedulePolicy {
        self.policy
    }

    /// The per-bank engine (stats, backends, decoder).
    #[must_use]
    pub fn engine(&self) -> &MemoryController {
        &self.engine
    }

    /// The decoder translating request addresses.
    #[must_use]
    pub fn decoder(&self) -> &AddressDecoder {
        self.engine.decoder()
    }

    /// The statistics accumulated so far.
    #[must_use]
    pub fn result(&self) -> SimResult {
        self.engine.result()
    }

    /// Turns on the per-bank engine's executed-command log (see
    /// [`MemoryController::enable_event_log`]); events accumulate in
    /// service order and are read back with
    /// [`drain_events`](Self::drain_events).
    pub fn enable_event_log(&mut self) {
        self.engine.enable_event_log();
    }

    /// Drains the executed-command events accumulated since the last
    /// drain (empty unless the log was enabled).
    pub fn drain_events(&mut self) -> std::vec::Drain<'_, crate::events::MemEvent> {
        self.engine.drain_events()
    }

    /// Queued (not yet serviced) transactions.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Whether the bounded queue can accept another transaction.
    #[must_use]
    pub fn has_room(&self) -> bool {
        self.queue.len() < self.cfg.queue_depth as usize
    }

    /// Enqueues a request that arrived at `arrival_ps`.
    ///
    /// # Panics
    ///
    /// Panics if the queue is full (callers gate on
    /// [`has_room`](Self::has_room)).
    pub fn push(&mut self, req: Request, core: u32, arrival_ps: u64) {
        assert!(self.has_room(), "transaction queue overflow");
        let decoded = self.engine.decoder().decode(req.addr);
        self.queue.push(Transaction {
            id: self.next_id,
            core,
            arrival_ps,
            decoded,
            is_read: req.is_read,
            bypassed: 0,
        });
        self.next_id += 1;
        self.plan_cache = None;
    }

    /// The earliest time any queued transaction could start (`None` when
    /// the queue is empty). The frontend compares this against its next
    /// arrival to decide whether to admit more traffic before the next
    /// scheduling decision.
    #[must_use]
    pub fn next_start_ps(&mut self) -> Option<u64> {
        self.plan().map(|p| p.start_ps)
    }

    /// Earliest feasible start of one queued transaction: bank busy time,
    /// REF windows, ACT spacing (predicted miss) and CAS slot, iterated to
    /// a fixpoint (the constraints are monotone, so the loop converges in
    /// a couple of rounds; the cap only guards degenerate configs).
    fn earliest_start(&self, tx: &Transaction) -> u64 {
        let bank = tx.decoded.flat_bank(self.cfg.banks_per_group());
        let bg = tx.decoded.bank_group;
        let predicted_hit = self.engine.open_row(bank) == Some(tx.decoded.row);
        let cas_offset = if predicted_hit {
            0
        } else {
            self.cfg.t_rp_ps + self.cfg.t_rcd_ps
        };
        let mut t = self
            .clock_ps
            .max(tx.arrival_ps)
            .max(self.engine.bank_ready_ps(bank));
        for _ in 0..4 {
            let prev = t;
            t = past_ref_window(&self.cfg, t);
            if !predicted_hit {
                t = t.max(self.timing.earliest_act(bg));
            }
            t = self.timing.cas_slot(t + cas_offset, bg) - cas_offset;
            if t == prev {
                break;
            }
        }
        t
    }

    /// The next scheduling decision, computed on demand and cached until
    /// the queue or device state changes (a `push` or a service).
    fn plan(&mut self) -> Option<&Plan> {
        if self.plan_cache.is_none() {
            self.plan_cache = self.compute_plan();
        }
        self.plan_cache.as_ref()
    }

    /// Computes the next scheduling decision from scratch.
    fn compute_plan(&self) -> Option<Plan> {
        let starts: Vec<u64> = self
            .queue
            .iter()
            .map(|tx| self.earliest_start(tx))
            .collect();
        let t_min = *starts.iter().min()?;
        // The issuable set: transactions achieving the earliest start.
        let age_key = |i: usize| (self.queue[i].arrival_ps, self.queue[i].id);
        let candidates: Vec<usize> = (0..self.queue.len())
            .filter(|&i| starts[i] == t_min)
            .collect();
        let oldest_of = |set: &[usize]| set.iter().copied().min_by_key(|&i| age_key(i));
        let pick = match self.policy {
            SchedulePolicy::Fcfs => oldest_of(&candidates),
            SchedulePolicy::FrFcfs { starvation_cap } => {
                let starved: Vec<usize> = candidates
                    .iter()
                    .copied()
                    .filter(|&i| self.queue[i].bypassed >= starvation_cap)
                    .collect();
                if let Some(s) = oldest_of(&starved) {
                    Some(s)
                } else {
                    let hits: Vec<usize> = candidates
                        .iter()
                        .copied()
                        .filter(|&i| {
                            let tx = &self.queue[i];
                            let bank = tx.decoded.flat_bank(self.cfg.banks_per_group());
                            self.engine.open_row(bank) == Some(tx.decoded.row)
                        })
                        .collect();
                    oldest_of(&hits).or_else(|| oldest_of(&candidates))
                }
            }
        };
        pick.map(|i| Plan {
            idx: i,
            start_ps: t_min,
            starts,
        })
    }

    /// Performs one scheduling decision: selects a transaction per the
    /// policy, executes it on its bank, records the ACT/CAS in the
    /// inter-bank timing state and returns the completion. `None` when the
    /// queue is empty.
    pub fn service_next(&mut self) -> Option<Completion> {
        self.plan()?;
        let Plan {
            idx,
            start_ps: start,
            starts,
        } = self.plan_cache.take().expect("plan just computed");
        let picked_key = (self.queue[idx].arrival_ps, self.queue[idx].id);
        // Starvation accounting: every *issuable* older transaction that
        // was passed over loses one unit of patience. (Transactions whose
        // banks are busy are waiting on the device, not on the policy.)
        for (i, tx) in self.queue.iter_mut().enumerate() {
            if i != idx && starts[i] == start && (tx.arrival_ps, tx.id) < picked_key {
                tx.bypassed += 1;
            }
        }
        let tx = self.queue.remove(idx);
        let outcome = self.engine.service_decoded(tx.decoded, tx.is_read, start);
        debug_assert!(outcome.start_ps >= start, "engine may not start early");
        // Record the commands for the rolling inter-bank windows. The CAS
        // of a miss trails the ACT by tRP + tRCD.
        let bg = tx.decoded.bank_group;
        if !outcome.row_hit {
            self.timing.record_act(outcome.start_ps, bg);
        }
        self.timing.record_cas(
            outcome.start_ps
                + if outcome.row_hit {
                    0
                } else {
                    self.cfg.t_rp_ps + self.cfg.t_rcd_ps
                },
            bg,
        );
        self.clock_ps = outcome.start_ps;
        Some(Completion {
            core: tx.core,
            arrival_ps: tx.arrival_ps,
            start_ps: outcome.start_ps,
            completion_ps: outcome.completion_ps,
            row_hit: outcome.row_hit,
        })
    }

    /// Finalises the run at `end_ps` (records elapsed REF events).
    pub fn finish(&mut self, end_ps: u64) {
        self.engine.finish(end_ps);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn channel(policy: SchedulePolicy) -> Channel {
        Channel::new(
            SystemConfig::table6(),
            MitigationScheme::Baseline,
            policy,
            AddressMapping::default(),
            5,
        )
    }

    fn req(ch: &Channel, bank: u32, row: u32, col: u32) -> Request {
        Request {
            addr: ch.decoder().encode_bank_row(bank, row, col),
            is_read: true,
            think_time_ps: 0,
        }
    }

    fn drain(ch: &mut Channel) -> Vec<Completion> {
        let mut out = Vec::new();
        while let Some(c) = ch.service_next() {
            out.push(c);
        }
        out
    }

    #[test]
    fn frfcfs_serves_row_hit_before_older_miss() {
        let cfg = SystemConfig::table6();
        let mut ch = channel(SchedulePolicy::frfcfs());
        let t0 = cfg.t_rfc_ps;
        // Open row 10 on bank 0.
        let r0 = req(&ch, 0, 10, 0);
        ch.push(r0, 0, t0);
        let first = ch.service_next().unwrap();
        // Queue an older miss (row 99) and a younger hit (row 10) arriving
        // at the same instant — queue order (id) makes the miss older.
        let miss = req(&ch, 0, 99, 0);
        let hit = req(&ch, 0, 10, 1);
        ch.push(miss, 1, first.completion_ps);
        ch.push(hit, 2, first.completion_ps);
        let served = drain(&mut ch);
        assert_eq!(served[0].core, 2, "the row hit jumps the queue");
        assert!(served[0].row_hit);
        assert_eq!(served[1].core, 1);
        assert!(!served[1].row_hit);
    }

    #[test]
    fn fcfs_serves_in_arrival_order() {
        let cfg = SystemConfig::table6();
        let mut ch = channel(SchedulePolicy::Fcfs);
        let t0 = cfg.t_rfc_ps;
        let r0 = req(&ch, 0, 10, 0);
        ch.push(r0, 0, t0);
        let first = ch.service_next().unwrap();
        let miss = req(&ch, 0, 99, 0);
        let hit = req(&ch, 0, 10, 1);
        ch.push(miss, 1, first.completion_ps);
        ch.push(hit, 2, first.completion_ps);
        let served = drain(&mut ch);
        assert_eq!(served[0].core, 1, "FCFS ignores the row buffer");
        assert!(!served[0].row_hit);
        assert!(!served[1].row_hit, "the miss closed the younger hit's row");
    }

    #[test]
    fn starvation_cap_bounds_hit_bypassing() {
        let cfg = SystemConfig::table6();
        let cap = 3u32;
        let mut ch = channel(SchedulePolicy::FrFcfs {
            starvation_cap: cap,
        });
        let t0 = cfg.t_rfc_ps;
        let r0 = req(&ch, 0, 10, 0);
        ch.push(r0, 0, t0);
        let first = ch.service_next().unwrap();
        // One old miss stuck behind a stream of row hits; everything
        // arrives at the same instant so the whole queue stays issuable
        // and only the policy decides the order.
        let t = first.completion_ps;
        let miss = req(&ch, 0, 99, 0);
        ch.push(miss, 9, t);
        let mut order = Vec::new();
        for k in 0..8u32 {
            let hit = req(&ch, 0, 10, 1 + k);
            ch.push(hit, k, t);
            let c = ch.service_next().unwrap();
            order.push(c.core);
        }
        order.extend(drain(&mut ch).iter().map(|c| c.core));
        let miss_pos = order.iter().position(|&c| c == 9).unwrap();
        assert!(
            miss_pos <= cap as usize,
            "the old miss must be force-served after {cap} bypasses, order {order:?}"
        );
    }

    #[test]
    fn inter_bank_act_spacing_is_enforced() {
        let cfg = SystemConfig::table6();
        // Same-group pair (banks 0 and 1, both group 0) pays tRRD_L…
        let mut ch = channel(SchedulePolicy::Fcfs);
        let t0 = cfg.t_rfc_ps;
        let a = req(&ch, 0, 1, 0);
        let b = req(&ch, 1, 1, 0);
        ch.push(a, 0, t0);
        ch.push(b, 1, t0);
        let served = drain(&mut ch);
        assert_eq!(served[1].start_ps - served[0].start_ps, cfg.t_rrd_l_ps);
        // …a cross-group pair (banks 0 and 4, groups 0 and 1) only tRRD_S.
        let mut ch = channel(SchedulePolicy::Fcfs);
        let a = req(&ch, 0, 1, 0);
        let c = req(&ch, 4, 1, 0);
        ch.push(a, 0, t0);
        ch.push(c, 1, t0);
        let served = drain(&mut ch);
        assert_eq!(served[1].start_ps - served[0].start_ps, cfg.t_rrd_s_ps);
    }

    #[test]
    fn scheduler_prefers_the_earlier_cross_group_act() {
        // With a same-group and a cross-group ACT both pending, the
        // cross-group one can issue tRRD_S after the first ACT while the
        // same-group one must wait tRRD_L — the earliest-startable rule
        // harvests that bank-group parallelism automatically.
        let cfg = SystemConfig::table6();
        let mut ch = channel(SchedulePolicy::Fcfs);
        let t0 = cfg.t_rfc_ps;
        let a = req(&ch, 0, 1, 0);
        let same_group = req(&ch, 1, 1, 0);
        let cross_group = req(&ch, 4, 1, 0);
        ch.push(a, 0, t0);
        ch.push(same_group, 1, t0);
        ch.push(cross_group, 2, t0);
        let served = drain(&mut ch);
        assert_eq!(
            served.iter().map(|c| c.core).collect::<Vec<_>>(),
            vec![0, 2, 1],
            "the cross-group ACT overtakes the older same-group one"
        );
        assert_eq!(served[1].start_ps - served[0].start_ps, cfg.t_rrd_s_ps);
    }

    #[test]
    fn faw_limits_act_bursts() {
        let cfg = SystemConfig::table6();
        let mut ch = channel(SchedulePolicy::Fcfs);
        let t0 = cfg.t_rfc_ps;
        // Five misses across five different bank groups.
        for bank in [0u32, 4, 8, 12, 16] {
            let r = req(&ch, bank, 1, 0);
            ch.push(r, 0, t0);
        }
        let served = drain(&mut ch);
        assert_eq!(
            served[4].start_ps - served[0].start_ps,
            cfg.t_faw_ps,
            "the fifth ACT waits for the rolling four-activate window"
        );
    }

    #[test]
    fn starts_are_monotone() {
        let cfg = SystemConfig::table6();
        let mut ch = channel(SchedulePolicy::frfcfs());
        let t0 = cfg.t_rfc_ps;
        for i in 0..20u32 {
            let r = req(&ch, i % 8, i % 3, 0);
            ch.push(r, 0, t0 + u64::from(i));
        }
        let served = drain(&mut ch);
        for w in served.windows(2) {
            assert!(w[1].start_ps >= w[0].start_ps);
        }
    }

    #[test]
    fn queue_capacity_is_bounded() {
        let cfg = SystemConfig {
            queue_depth: 2,
            ..SystemConfig::table6()
        };
        let mut ch = Channel::new(
            cfg,
            MitigationScheme::Baseline,
            SchedulePolicy::frfcfs(),
            AddressMapping::default(),
            1,
        );
        let r = req(&ch, 0, 0, 0);
        ch.push(r, 0, 0);
        assert!(ch.has_room());
        ch.push(r, 0, 0);
        assert!(!ch.has_room());
    }

    #[test]
    #[should_panic(expected = "transaction queue overflow")]
    fn overflow_panics() {
        let cfg = SystemConfig {
            queue_depth: 1,
            ..SystemConfig::table6()
        };
        let mut ch = Channel::new(
            cfg,
            MitigationScheme::Baseline,
            SchedulePolicy::frfcfs(),
            AddressMapping::default(),
            1,
        );
        let r = req(&ch, 0, 0, 0);
        ch.push(r, 0, 0);
        ch.push(r, 0, 0);
    }

    #[test]
    fn empty_queue_has_no_plan() {
        let mut ch = channel(SchedulePolicy::frfcfs());
        assert_eq!(ch.next_start_ps(), None);
        assert_eq!(ch.service_next(), None);
    }
}
