//! The channel scheduler: a bounded transaction queue drained by a
//! pluggable [`SchedulePolicy`] under the inter-bank timing constraints.
//!
//! A [`Channel`] is the command-level pipeline of the memory system:
//!
//! ```text
//! RequestSource ──► TransQueue ──► SchedulePolicy ──► TimingState ──► banks
//!   (frontend)       (bounded)     (FCFS/FR-FCFS)     (tRRD/tFAW/tCCD)  (engine)
//! ```
//!
//! Scheduling works in *decision steps*: among all queued transactions the
//! channel computes each one's earliest possible start (bank busy time,
//! REF windows, tRRD/tFAW for the ACT of a predicted miss, tCCD for the
//! CAS), then arbitrates among the transactions achieving the global
//! minimum. Because every step issues the earliest-startable transaction,
//! command times are monotone — which keeps the rolling timing windows
//! honest and the whole pipeline bit-deterministic for any worker count.

use crate::address::{AddressDecoder, AddressMapping, DecodedAddr};
use crate::config::{MitigationScheme, SystemConfig};
use crate::controller::{past_ref_window, MemoryController, SimResult};
use crate::snapshot::{SnapshotReader, SnapshotWriter};
use crate::telemetry::SchedTelemetry;
use crate::timing::{InterBankTiming, TimingState};
use crate::workload::Request;
use std::sync::atomic::{AtomicBool, Ordering};

/// Process-wide default planner mode for newly created channels (see
/// [`set_reference_planner_default`]).
static REFERENCE_PLANNER_DEFAULT: AtomicBool = AtomicBool::new(false);

/// Makes every subsequently created [`Channel`] plan with the retained
/// scratch reference implementation instead of the incremental
/// start-cache planner (see [`Channel::set_reference_planner`]).
///
/// This is the equality-contract verification knob: `ci_smoke` re-runs
/// the `BENCH_perf.json` / `BENCH_security.json` cells under both
/// planners and asserts the rendered artifacts are byte-identical, so the
/// "refactor freely, prove equality" guarantee is checked in-tree on
/// every push, not just in review. Plain benchmarking and production
/// sweeps should leave this off.
pub fn set_reference_planner_default(on: bool) {
    REFERENCE_PLANNER_DEFAULT.store(on, Ordering::SeqCst);
}

/// How the channel arbitrates among simultaneously issuable transactions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulePolicy {
    /// First-come-first-served: strictly oldest-first among issuable
    /// transactions (the scalar model this pipeline replaced serviced each
    /// bank in arrival order; FCFS is its channel-level equivalent).
    Fcfs,
    /// FR-FCFS: row-hit-first, then oldest-first, with a starvation cap —
    /// once an issuable transaction has been bypassed `starvation_cap`
    /// times by younger row hits it gains absolute priority.
    FrFcfs {
        /// Bypass budget before an old transaction is force-served.
        starvation_cap: u32,
    },
}

impl SchedulePolicy {
    /// The production default: FR-FCFS with a bypass budget of 4.
    #[must_use]
    pub fn frfcfs() -> Self {
        SchedulePolicy::FrFcfs { starvation_cap: 4 }
    }

    /// Short label for reports.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            SchedulePolicy::Fcfs => "FCFS".to_owned(),
            SchedulePolicy::FrFcfs { starvation_cap } => format!("FR-FCFS(cap{starvation_cap})"),
        }
    }

    /// Parses a policy from its [`label`](SchedulePolicy::label) form,
    /// case-insensitively — `"fcfs"`, `"fr-fcfs"` / `"frfcfs"` (the
    /// production cap), or `"fr-fcfs(capN)"` for an explicit starvation
    /// cap. The inverse of `label`, used by the declarative
    /// [`ScenarioSpec`](crate::ScenarioSpec) text format. Returns `None`
    /// for unknown policies.
    #[must_use]
    pub fn parse(s: &str) -> Option<SchedulePolicy> {
        let lower = s.trim().to_ascii_lowercase();
        match lower.as_str() {
            "fcfs" => return Some(SchedulePolicy::Fcfs),
            "fr-fcfs" | "frfcfs" => return Some(SchedulePolicy::frfcfs()),
            _ => {}
        }
        let cap = lower
            .strip_prefix("fr-fcfs(cap")
            .or_else(|| lower.strip_prefix("frfcfs(cap"))?
            .strip_suffix(')')?;
        cap.parse()
            .ok()
            .map(|starvation_cap| SchedulePolicy::FrFcfs { starvation_cap })
    }
}

impl Default for SchedulePolicy {
    fn default() -> Self {
        Self::frfcfs()
    }
}

/// One in-flight transaction of the bounded queue.
#[derive(Debug, Clone, Copy)]
struct Transaction {
    id: u64,
    core: u32,
    arrival_ps: u64,
    decoded: DecodedAddr,
    /// Channel-local bank index (`decoded.channel_bank(..)`, rank-major),
    /// resolved once at admission — the planner reads it per slot per
    /// decision.
    bank: u32,
    is_read: bool,
    /// Times an older issuable transaction was passed over for a younger
    /// row hit (FR-FCFS starvation accounting).
    bypassed: u32,
}

/// One slab slot of the transaction queue.
///
/// Slots are stable: a transaction keeps its index for its whole queue
/// residency, service frees the slot onto a free list in O(1), and FCFS
/// order lives in the age key `(arrival_ps, id)` rather than in storage
/// order. Each slot also carries the incremental planner's cache: the
/// transaction's earliest start and predicted CAS offset, plus a dirty
/// bit cleared whenever the slot's bank is serviced.
#[derive(Debug, Clone, Copy)]
struct Slot {
    occupied: bool,
    /// This slot's position in the channel's dense `active` index list
    /// (meaningful only while occupied; maintained by push/service).
    active_pos: u32,
    /// Bank inputs (ready time, open row) unchanged since `start_ps` was
    /// cached; the global clock/ACT/CAS/REF horizons are revalidated
    /// cheaply at plan time instead of being tracked eagerly.
    fresh: bool,
    /// Whether the latest planning pass left `start_ps` exact (computed
    /// or revalidated). Slots whose pure floor already exceeded the
    /// running minimum are skipped and marked inexact — they are provably
    /// not candidates, so neither arbitration nor starvation accounting
    /// may read their stale starts.
    exact: bool,
    /// Cached earliest start (exact only when `exact` is set).
    start_ps: u64,
    /// Cached CAS offset: 0 = predicted row hit, tRP + tRCD = miss.
    cas_off_ps: u64,
    /// The pure floor `max(clock, arrival, bank_ready)` — a lower bound
    /// on the true earliest start, maintained incrementally: set at
    /// admission, raised to the new clock after every service (plus a
    /// bank-ready recompute for the serviced bank's slots).
    base_ps: u64,
    tx: Transaction,
}

/// The two all-bank REF windows at/after the planning clock, hoisted out
/// of the per-transaction fixpoint so the hot loop replaces
/// [`past_ref_window`]'s division with two compares. Exact for any
/// `t >= clock`; times beyond the second window (or degenerate configs
/// with `tRFC >= tREFI`) fall back to the shared rule.
#[derive(Debug, Clone, Copy)]
struct RefWindows {
    /// Start/end of the REF window of the tREFI period containing the
    /// base time, and of the period after it.
    w0_start: u64,
    w0_end: u64,
    w1_start: u64,
    w1_end: u64,
    /// Whether the periodic fast path applies (`tRFC < tREFI`, so one
    /// push lands outside every window and the rule is idempotent).
    fast: bool,
}

impl RefWindows {
    fn at(cfg: &SystemConfig, base: u64) -> Self {
        let fast = cfg.t_rfc_ps < cfg.t_refi_ps;
        let w0_start = if fast { base - base % cfg.t_refi_ps } else { 0 };
        Self {
            w0_start,
            w0_end: w0_start + cfg.t_rfc_ps,
            w1_start: w0_start + cfg.t_refi_ps,
            w1_end: w0_start + cfg.t_refi_ps + cfg.t_rfc_ps,
            fast,
        }
    }

    /// Monotonically advances the pair until it contains `base`,
    /// stepping whole periods without dividing; long jumps (a channel
    /// idle for many tREFI) fall back to the division rebuild.
    fn advance_to(&mut self, cfg: &SystemConfig, base: u64) {
        debug_assert!(self.fast);
        let mut steps = 4u32;
        while base >= self.w1_start {
            if steps == 0 {
                *self = RefWindows::at(cfg, base);
                return;
            }
            steps -= 1;
            self.w0_start = self.w1_start;
            self.w0_end = self.w1_end;
            self.w1_start += cfg.t_refi_ps;
            self.w1_end += cfg.t_refi_ps;
        }
    }

    /// [`past_ref_window`] with the division amortised away.
    #[inline]
    fn adjust(&self, cfg: &SystemConfig, t: u64) -> u64 {
        if self.fast && t >= self.w0_start {
            if t < self.w0_end {
                return self.w0_end;
            }
            if t < self.w1_start {
                return t;
            }
            if t < self.w1_end {
                return self.w1_end;
            }
        }
        past_ref_window(cfg, t)
    }
}

/// Everything the per-slot earliest-start computation reads, borrowed
/// once per planning pass (disjoint from the slot slab, so the pass can
/// refresh slot caches while scanning).
struct PlanCtx<'a> {
    cfg: &'a SystemConfig,
    timing: &'a TimingState,
    /// Dense per-bank open rows (struct-of-arrays view of the engine).
    rows: &'a [u32],
    wins: RefWindows,
    /// No inter-bank constraint can delay a start at/after this time
    /// ([`TimingState::quiet_ps`]): one compare instead of the ACT/CAS
    /// checks for far-future starts.
    quiet_ps: u64,
}

impl PlanCtx<'_> {
    /// Whether a slot's cached start is provably still the scratch
    /// answer: bank inputs unchanged (`fresh`), the pure floor
    /// (clock/arrival/bank-ready pushed past REF) still lands exactly on
    /// it, and the global ACT/CAS horizons do not move it. A cached start
    /// *above* the pure floor was shaped by a rolling horizon that has
    /// since advanced (possibly opening an earlier slot), so it is
    /// recomputed rather than trusted.
    #[inline]
    fn reusable(&self, slot: &Slot) -> bool {
        if !slot.fresh || !self.wins.fast {
            return false;
        }
        if slot.start_ps != self.wins.adjust(self.cfg, slot.base_ps) {
            return false;
        }
        if slot.start_ps >= self.quiet_ps {
            return true;
        }
        let (rank, bg) = (slot.tx.decoded.rank, slot.tx.decoded.bank_group);
        (slot.cas_off_ps == 0 || slot.start_ps >= self.timing.earliest_act(rank, bg))
            && self.timing.cas_slot(slot.start_ps + slot.cas_off_ps, bg)
                == slot.start_ps + slot.cas_off_ps
    }

    /// Earliest feasible start of one transaction from current state:
    /// the same capped fixpoint as the scratch reference (bank busy time,
    /// REF windows, ACT spacing for a predicted miss, CAS slot), with the
    /// REF division hoisted into [`RefWindows`] and a one-compare exit
    /// for starts past every rolling horizon. Returns `(start, cas_off)`.
    #[inline]
    fn compute(&self, tx: &Transaction, base: u64) -> (u64, u64) {
        let predicted_hit = self.rows[tx.bank as usize] == tx.decoded.row;
        let cas_off = if predicted_hit {
            0
        } else {
            self.cfg.t_rp_ps + self.cfg.t_rcd_ps
        };
        let mut t = base;
        if self.wins.fast && t >= self.quiet_ps {
            // Past every ACT/CAS horizon; one REF push is already the
            // fixpoint (window ends never sit inside a window).
            return (self.wins.adjust(self.cfg, t), cas_off);
        }
        let (rank, bg) = (tx.decoded.rank, tx.decoded.bank_group);
        for _ in 0..4 {
            let prev = t;
            t = self.wins.adjust(self.cfg, t);
            if !predicted_hit {
                t = t.max(self.timing.earliest_act(rank, bg));
            }
            t = self.timing.cas_slot(t + cas_off, bg) - cas_off;
            if t == prev {
                break;
            }
        }
        (t, cas_off)
    }

    /// Leaves `slot` with an exact start for this pass: revalidates the
    /// cache or recomputes from `slot.base_ps`, and marks the slot exact.
    #[inline]
    fn refresh(&self, slot: &mut Slot) {
        if !self.reusable(slot) {
            let (s, off) = self.compute(&slot.tx, slot.base_ps);
            slot.start_ps = s;
            slot.cas_off_ps = off;
        }
        slot.fresh = true;
        slot.exact = true;
    }
}

/// What the channel reports back to the frontend when a transaction
/// finishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// The core (request source) that issued the transaction.
    pub core: u32,
    /// When the transaction entered the queue.
    pub arrival_ps: u64,
    /// When the bank began executing it.
    pub start_ps: u64,
    /// When its data transfer completed.
    pub completion_ps: u64,
    /// Whether it hit the open row.
    pub row_hit: bool,
}

/// A single-channel, command-level DDR5 memory pipeline: bounded
/// transaction queue → schedule policy → inter-bank timing → per-bank
/// engine (with mitigation backends).
#[derive(Debug)]
pub struct Channel {
    cfg: SystemConfig,
    policy: SchedulePolicy,
    engine: MemoryController,
    timing: TimingState,
    /// Stable-order transaction slab (see [`Slot`]); arbitration order is
    /// carried by age keys, never by storage position.
    slots: Vec<Slot>,
    /// Indices of vacated slots, reused before the slab grows.
    free: Vec<u32>,
    /// Dense, unordered list of the occupied slot indices: every planner
    /// scan walks exactly the live transactions, however large the slab
    /// has historically grown. Service removes by swap (order is
    /// irrelevant — arbitration is key-based).
    active: Vec<u32>,
    next_id: u64,
    /// Issue time of the most recent decision (command times are
    /// monotone).
    clock_ps: u64,
    /// The decision computed by the last [`plan`](Self::plan) call, kept
    /// until the queue or device state changes (every serviced request
    /// needs the plan twice — admission lookahead, then the decision
    /// itself — and the earliest-start scan is the scheduler's hot path).
    plan_cache: Option<Plan>,
    /// The two REF windows at/after the clock, rebuilt only when the
    /// clock crosses into the second period — so the planner's REF
    /// division runs once per tREFI of simulated time, not once per
    /// decision.
    wins: RefWindows,
    /// The active slot with the smallest floor (`base_ps`, slot index),
    /// maintained by push/service so a planning pass can seed its
    /// running minimum without rescanning every floor.
    seed_hint: Option<(u64, u32)>,
    /// Full planning passes run so far (cache hits don't count).
    plans_computed: u64,
    /// Scheduler telemetry (decision counters, queue-depth/wait
    /// histograms); only fed when
    /// [`enable_telemetry`](Self::enable_telemetry) was called.
    telemetry: Option<Box<SchedTelemetry>>,
    /// Plan with the retained scratch reference implementation instead
    /// of the incremental planner (differential-testing oracle).
    reference: bool,
    /// Rebuild the REF-window pair by division on every period crossing
    /// instead of stepping it (mirrors the engine's refresh oracle, see
    /// [`set_reference_refresh_default`](crate::controller::set_reference_refresh_default)).
    reference_refresh: bool,
}

/// One computed scheduling decision: which slot and when. The per-slot
/// earliest starts that starvation accounting needs live in the slot
/// caches, which every planning pass leaves current.
#[derive(Debug, Clone, Copy)]
struct Plan {
    slot: usize,
    start_ps: u64,
}

/// The arbitration fronts of one planning pass: the oldest achiever of
/// the running minimum overall, among predicted row hits, and among
/// starved transactions (FR-FCFS only). Rebuilt from scratch whenever
/// the running minimum drops.
#[derive(Debug, Default, Clone, Copy)]
struct Bests {
    all: Option<((u64, u64), usize)>,
    hit: Option<((u64, u64), usize)>,
    starved: Option<((u64, u64), usize)>,
}

impl Bests {
    /// Folds one achiever of the current minimum into the fronts.
    #[inline]
    fn consider(&mut self, policy: SchedulePolicy, slot: &Slot, i: usize) {
        let key = (slot.tx.arrival_ps, slot.tx.id);
        if self.all.map_or(true, |(k, _)| key < k) {
            self.all = Some((key, i));
        }
        if let SchedulePolicy::FrFcfs { starvation_cap } = policy {
            if slot.tx.bypassed >= starvation_cap {
                if self.starved.map_or(true, |(k, _)| key < k) {
                    self.starved = Some((key, i));
                }
            } else if slot.cas_off_ps == 0 && self.hit.map_or(true, |(k, _)| key < k) {
                self.hit = Some((key, i));
            }
        }
    }
}

impl Channel {
    /// Creates a channel for `scheme` with the given arbitration policy
    /// and address mapping.
    #[must_use]
    pub fn new(
        cfg: SystemConfig,
        scheme: MitigationScheme,
        policy: SchedulePolicy,
        mapping: AddressMapping,
        seed: u64,
    ) -> Self {
        Self {
            cfg,
            policy,
            engine: MemoryController::with_mapping(cfg, scheme, mapping, seed),
            timing: TimingState::with_ranks(InterBankTiming::from_system(&cfg), cfg.ranks),
            slots: Vec::with_capacity(cfg.queue_depth as usize),
            free: Vec::with_capacity(cfg.queue_depth as usize),
            active: Vec::with_capacity(cfg.queue_depth as usize),
            next_id: 0,
            clock_ps: 0,
            plan_cache: None,
            wins: RefWindows::at(&cfg, 0),
            seed_hint: None,
            plans_computed: 0,
            telemetry: None,
            reference: REFERENCE_PLANNER_DEFAULT.load(Ordering::SeqCst),
            reference_refresh: crate::controller::reference_refresh_default(),
        }
    }

    /// Switches this channel between the incremental planner (the
    /// default) and the retained scratch reference implementation. Both
    /// produce bit-identical schedules; the reference path exists as the
    /// differential-testing oracle (see [`set_reference_planner_default`]
    /// for the process-wide knob).
    pub fn set_reference_planner(&mut self, on: bool) {
        self.reference = on;
        self.plan_cache = None;
        for s in &mut self.slots {
            s.fresh = false;
        }
    }

    /// Full planning passes run so far. Admission lookaheads answered
    /// from the plan cache and pushes that provably keep the plan don't
    /// count — the plan-cache tests pin that.
    #[must_use]
    pub fn plans_computed(&self) -> u64 {
        self.plans_computed
    }

    /// The arbitration policy in force.
    #[must_use]
    pub fn policy(&self) -> SchedulePolicy {
        self.policy
    }

    /// The per-bank engine (stats, backends, decoder).
    #[must_use]
    pub fn engine(&self) -> &MemoryController {
        &self.engine
    }

    /// The decoder translating request addresses.
    #[must_use]
    pub fn decoder(&self) -> &AddressDecoder {
        self.engine.decoder()
    }

    /// The statistics accumulated so far.
    #[must_use]
    pub fn result(&self) -> SimResult {
        self.engine.result()
    }

    /// Turns on the per-bank engine's executed-command log (see
    /// [`MemoryController::enable_event_log`]); events accumulate in
    /// service order and are read back with
    /// [`drain_events`](Self::drain_events).
    pub fn enable_event_log(&mut self) {
        self.engine.enable_event_log();
    }

    /// Drains the executed-command events accumulated since the last
    /// drain (empty unless the log was enabled).
    pub fn drain_events(&mut self) -> std::vec::Drain<'_, crate::events::MemEvent> {
        self.engine.drain_events()
    }

    /// Turns on scheduler- and engine-side telemetry for this channel.
    /// Off by default — every hook site is a branch on a dead `Option`,
    /// so non-telemetry runs pay nothing and stay bit-identical.
    pub fn enable_telemetry(&mut self) {
        if self.telemetry.is_none() {
            self.telemetry = Some(Box::default());
        }
        self.engine.enable_telemetry();
    }

    /// The scheduler's telemetry state, when enabled.
    #[must_use]
    pub fn telemetry(&self) -> Option<&SchedTelemetry> {
        self.telemetry.as_deref()
    }

    /// Queued (not yet serviced) transactions.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.active.len()
    }

    /// Whether the bounded queue can accept another transaction.
    #[must_use]
    pub fn has_room(&self) -> bool {
        self.active.len() < self.cfg.queue_depth as usize
    }

    /// The REF windows for the current clock, rebuilt lazily on period
    /// crossings (`adjust` stays exact for any `t >= w0_start` via its
    /// fallback, so an aged pair is never wrong — only slower).
    #[inline]
    fn windows(&mut self) -> RefWindows {
        if self.wins.fast && self.clock_ps >= self.wins.w1_start {
            if self.reference_refresh {
                self.wins = RefWindows::at(&self.cfg, self.clock_ps);
            } else {
                self.wins.advance_to(&self.cfg, self.clock_ps);
            }
        }
        self.wins
    }

    /// Enqueues a request that arrived at `arrival_ps`.
    ///
    /// When a plan is cached, the push prices the newcomer against it.
    /// Strictly later: the newcomer can neither lower the minimum nor
    /// join (and win) the arbitration at it, so the plan survives — and
    /// the pure floor `max(clock, arrival, bank_ready)` (three reads)
    /// usually settles this without the exact fixpoint. Strictly
    /// earlier: every older transaction starts at/after the old planned
    /// start, so the newcomer is the *unique* new minimum and simply
    /// becomes the plan. Only an exact tie (which reopens arbitration)
    /// forces a replanning pass. Without a cached plan nothing is
    /// computed at all: the next pass prices every slot anyway (and may
    /// skip this one entirely by its floor).
    ///
    /// # Panics
    ///
    /// Panics if the queue is full (callers gate on
    /// [`has_room`](Self::has_room)).
    pub fn push(&mut self, req: Request, core: u32, arrival_ps: u64) {
        assert!(self.has_room(), "transaction queue overflow");
        let decoded = self.engine.decoder().decode(req.addr);
        let tx = Transaction {
            id: self.next_id,
            core,
            arrival_ps,
            decoded,
            bank: decoded.channel_bank(self.engine.decoder().org()),
            is_read: req.is_read,
            bypassed: 0,
        };
        self.next_id += 1;
        let base_ps = self
            .clock_ps
            .max(arrival_ps)
            .max(self.engine.bank_ready_ps(tx.bank));
        let mut slot = Slot {
            occupied: true,
            active_pos: self.active.len() as u32,
            fresh: false,
            exact: false,
            start_ps: 0,
            cas_off_ps: 0,
            base_ps,
            tx,
        };
        // The newcomer's start when it beats the cached plan outright
        // (adopted as the new plan once the slot index is known).
        let mut adopt: Option<u64> = None;
        if self.reference {
            // The reference planner recomputes everything at plan time
            // and always replans after a push (the original behaviour).
            self.plan_cache = None;
        } else if let Some(p) = self.plan_cache {
            if base_ps <= p.start_ps {
                let wins = self.windows();
                let (start_ps, cas_off_ps) = {
                    let ctx = PlanCtx {
                        cfg: &self.cfg,
                        timing: &self.timing,
                        rows: self.engine.bank_tables().1,
                        wins,
                        quiet_ps: self.timing.quiet_ps(),
                    };
                    ctx.compute(&tx, base_ps)
                };
                slot.fresh = true;
                slot.start_ps = start_ps;
                slot.cas_off_ps = cas_off_ps;
                if start_ps < p.start_ps {
                    // Pushes mutate no device state, so every other
                    // slot's start still sits at/after the old minimum:
                    // the newcomer wins unopposed.
                    adopt = Some(start_ps);
                } else if start_ps == p.start_ps {
                    // An equal start could still win the row-hit
                    // arbitration: replan.
                    self.plan_cache = None;
                }
            }
        }
        let idx = match self.free.pop() {
            Some(i) => {
                self.slots[i as usize] = slot;
                i
            }
            None => {
                self.slots.push(slot);
                (self.slots.len() - 1) as u32
            }
        };
        self.active.push(idx);
        if self.seed_hint.map_or(true, |(b, _)| base_ps < b) {
            self.seed_hint = Some((base_ps, idx));
        }
        if let Some(start_ps) = adopt {
            self.plan_cache = Some(Plan {
                slot: idx as usize,
                start_ps,
            });
        }
    }

    /// The earliest time any queued transaction could start (`None` when
    /// the queue is empty). The frontend compares this against its next
    /// arrival to decide whether to admit more traffic before the next
    /// scheduling decision.
    #[must_use]
    pub fn next_start_ps(&mut self) -> Option<u64> {
        self.plan().map(|p| p.start_ps)
    }

    /// Earliest feasible start of one queued transaction, recomputed from
    /// scratch — the reference planner's rule: bank busy time, REF
    /// windows, ACT spacing (predicted miss) and CAS slot, iterated to a
    /// fixpoint (the constraints are monotone, so the loop converges in a
    /// couple of rounds; the cap only guards degenerate configs). Returns
    /// `(start, cas_off)`.
    fn earliest_start_scratch(&self, tx: &Transaction) -> (u64, u64) {
        let (rank, bg) = (tx.decoded.rank, tx.decoded.bank_group);
        let predicted_hit = self.engine.open_row(tx.bank) == Some(tx.decoded.row);
        let cas_offset = if predicted_hit {
            0
        } else {
            self.cfg.t_rp_ps + self.cfg.t_rcd_ps
        };
        let mut t = self
            .clock_ps
            .max(tx.arrival_ps)
            .max(self.engine.bank_ready_ps(tx.bank));
        for _ in 0..4 {
            let prev = t;
            t = past_ref_window(&self.cfg, t);
            if !predicted_hit {
                t = t.max(self.timing.earliest_act(rank, bg));
            }
            t = self.timing.cas_slot(t + cas_offset, bg) - cas_offset;
            if t == prev {
                break;
            }
        }
        (t, cas_offset)
    }

    /// The next scheduling decision, computed on demand and cached until
    /// the queue or device state changes (a service, or a push that could
    /// alter the decision).
    fn plan(&mut self) -> Option<Plan> {
        if self.plan_cache.is_none() {
            self.plan_cache = if self.reference {
                self.compute_plan_scratch()
            } else {
                self.compute_plan()
            };
        }
        self.plan_cache
    }

    /// Computes the next scheduling decision incrementally and
    /// allocation-free. Per-slot pure floors `max(clock, arrival,
    /// bank_ready)` — lower bounds on the true earliest starts — are
    /// maintained incrementally by push/service, as is the slot with the
    /// smallest floor; the pass seeds its running minimum by refreshing
    /// that slot, then walks the queue once, skipping every slot whose
    /// floor is already strictly above the running minimum (provably not
    /// a candidate), revalidating or recomputing the rest, and folding
    /// the policy arbitration over the minimum's achievers as it goes.
    fn compute_plan(&mut self) -> Option<Plan> {
        self.plans_computed += 1;
        if self.active.is_empty() {
            return None;
        }
        let wins = self.windows();
        let ctx = PlanCtx {
            cfg: &self.cfg,
            timing: &self.timing,
            rows: self.engine.bank_tables().1,
            wins,
            quiet_ps: self.timing.quiet_ps(),
        };
        let (_, seed_idx) = self
            .seed_hint
            .map(|(b, i)| (b, i as usize))
            .expect("a non-empty active list always carries a seed hint");
        let mut t_min = {
            let slot = &mut self.slots[seed_idx];
            ctx.refresh(slot);
            slot.start_ps
        };
        // Arbitration folds into the refresh scan: the minimum's achiever
        // set is rebuilt whenever the running minimum drops, so one pass
        // both prices the queue and picks the winner. Age keys
        // `(arrival_ps, id)` are unique and scan-order independent, so
        // slab order never leaks into the decision. A starved transaction
        // outranks the hit set even when it is itself a hit, matching
        // the reference's starved-first precedence.
        let mut bests = Bests::default();
        bests.consider(self.policy, &self.slots[seed_idx], seed_idx);
        for &i in &self.active {
            if i as usize == seed_idx {
                continue;
            }
            let slot = &mut self.slots[i as usize];
            if slot.base_ps > t_min {
                // The floor alone puts this slot strictly after the
                // minimum: no exact start needed, and the stale cache must
                // not be mistaken for one.
                slot.exact = false;
                continue;
            }
            ctx.refresh(slot);
            if slot.start_ps < t_min {
                t_min = slot.start_ps;
                bests = Bests::default();
                bests.consider(self.policy, &self.slots[i as usize], i as usize);
            } else if slot.start_ps == t_min {
                bests.consider(self.policy, &self.slots[i as usize], i as usize);
            }
        }
        let pick = match self.policy {
            SchedulePolicy::Fcfs => bests.all,
            SchedulePolicy::FrFcfs { .. } => bests.starved.or(bests.hit).or(bests.all),
        };
        pick.map(|(_, slot)| Plan {
            slot,
            start_ps: t_min,
        })
    }

    /// The retained scratch reference planner: recomputes every earliest
    /// start from scratch with the original allocating algorithm (start
    /// and candidate vectors, selection-time row-buffer probes). Kept as
    /// the differential-testing oracle for [`compute_plan`](Self::compute_plan)
    /// — the `sched_oracle` prop test and `ci_smoke`'s byte-equality leg
    /// pin the two paths to identical decisions. Also refreshes the slot
    /// caches (starvation accounting reads them after any planner).
    fn compute_plan_scratch(&mut self) -> Option<Plan> {
        self.plans_computed += 1;
        let mut t_min = u64::MAX;
        for k in 0..self.active.len() {
            let i = self.active[k] as usize;
            let tx = self.slots[i].tx;
            let (s, off) = self.earliest_start_scratch(&tx);
            let slot = &mut self.slots[i];
            slot.start_ps = s;
            slot.cas_off_ps = off;
            slot.fresh = true;
            slot.exact = true;
            t_min = t_min.min(s);
        }
        if t_min == u64::MAX {
            return None;
        }
        // The issuable set: transactions achieving the earliest start.
        let candidates: Vec<usize> = self
            .active
            .iter()
            .map(|&i| i as usize)
            .filter(|&i| self.slots[i].start_ps == t_min)
            .collect();
        let age_key = |i: usize| (self.slots[i].tx.arrival_ps, self.slots[i].tx.id);
        let oldest_of = |set: &[usize]| set.iter().copied().min_by_key(|&i| age_key(i));
        let pick = match self.policy {
            SchedulePolicy::Fcfs => oldest_of(&candidates),
            SchedulePolicy::FrFcfs { starvation_cap } => {
                let starved: Vec<usize> = candidates
                    .iter()
                    .copied()
                    .filter(|&i| self.slots[i].tx.bypassed >= starvation_cap)
                    .collect();
                if let Some(s) = oldest_of(&starved) {
                    Some(s)
                } else {
                    let hits: Vec<usize> = candidates
                        .iter()
                        .copied()
                        .filter(|&i| {
                            let tx = &self.slots[i].tx;
                            self.engine.open_row(tx.bank) == Some(tx.decoded.row)
                        })
                        .collect();
                    oldest_of(&hits).or_else(|| oldest_of(&candidates))
                }
            }
        };
        pick.map(|slot| Plan {
            slot,
            start_ps: t_min,
        })
    }

    /// Performs one scheduling decision: selects a transaction per the
    /// policy, executes it on its bank, records the ACT/CAS in the
    /// inter-bank timing state and returns the completion. `None` when the
    /// queue is empty.
    pub fn service_next(&mut self) -> Option<Completion> {
        let Plan {
            slot: idx,
            start_ps: start,
        } = self.plan()?;
        self.plan_cache = None;
        let tx = self.slots[idx].tx;
        let picked_key = (tx.arrival_ps, tx.id);
        if let Some(t) = self.telemetry.as_deref_mut() {
            t.decisions += 1;
            t.queue_depth.record(self.active.len() as u64);
            t.wait_ps.record(start.saturating_sub(tx.arrival_ps));
            // Delay beyond the REF-adjusted per-bank floor: time the pick
            // lost to the shared CAS bus and the tRRD/tFAW ACT windows
            // (`adjust` is exact for any time, aged pair or not).
            let floor = self.wins.adjust(&self.cfg, self.slots[idx].base_ps);
            t.interbank_delay_ps.record(start.saturating_sub(floor));
            if let SchedulePolicy::FrFcfs { starvation_cap } = self.policy {
                if tx.bypassed >= starvation_cap {
                    t.starved_picks += 1;
                }
            }
        }
        // O(1) slab removal; FCFS order lives in the age keys, not in
        // storage order, so nothing shifts. The dense active list swaps
        // the tail index into the vacated position.
        self.slots[idx].occupied = false;
        let pos = self.slots[idx].active_pos as usize;
        self.active.swap_remove(pos);
        if let Some(&moved) = self.active.get(pos) {
            self.slots[moved as usize].active_pos = pos as u32;
        }
        self.free.push(idx as u32);
        let outcome = self.engine.service_decoded(tx.decoded, tx.is_read, start);
        debug_assert!(outcome.start_ps >= start, "engine may not start early");
        // Record the commands for the rolling inter-bank windows. The CAS
        // of a miss trails the ACT by tRP + tRCD.
        let (rank, bg) = (tx.decoded.rank, tx.decoded.bank_group);
        if !outcome.row_hit {
            self.timing.record_act(outcome.start_ps, rank, bg);
        }
        self.timing.record_cas(
            outcome.start_ps
                + if outcome.row_hit {
                    0
                } else {
                    self.cfg.t_rp_ps + self.cfg.t_rcd_ps
                },
            bg,
        );
        self.clock_ps = outcome.start_ps;
        // One pass over the survivors does all the per-service slot
        // bookkeeping:
        // * starvation accounting — every *issuable* older transaction
        //   that was passed over loses one unit of patience (transactions
        //   whose banks are busy are waiting on the device, not on the
        //   policy; the planning pass left the cached starts current, so
        //   they are the issuability test; the engine service touches
        //   none of those cached inputs);
        // * floor maintenance — every floor rises to the new clock, and
        //   the serviced bank's slots pick up its new ready time;
        // * cache invalidation for the serviced bank (the service
        //   perturbs only its own bank's ready time and open row; the
        //   global clock/ACT/CAS/REF horizons are revalidated lazily at
        //   plan time);
        // * rebuilding the seed hint over the survivors' updated floors.
        let clock = self.clock_ps;
        let bank_ready = self.engine.bank_ready_ps(tx.bank);
        self.seed_hint = None;
        let mut bypasses = 0u64;
        for &i in &self.active {
            let s = &mut self.slots[i as usize];
            if s.exact && s.start_ps == start && (s.tx.arrival_ps, s.tx.id) < picked_key {
                s.tx.bypassed += 1;
                bypasses += 1;
            }
            if s.tx.bank == tx.bank {
                s.fresh = false;
                s.base_ps = clock.max(s.tx.arrival_ps).max(bank_ready);
            } else if s.base_ps < clock {
                s.base_ps = clock;
            }
            if self.seed_hint.map_or(true, |(b, _)| s.base_ps < b) {
                self.seed_hint = Some((s.base_ps, i));
            }
        }
        if let Some(t) = self.telemetry.as_deref_mut() {
            t.bypass_increments += bypasses;
        }
        Some(Completion {
            core: tx.core,
            arrival_ps: tx.arrival_ps,
            start_ps: outcome.start_ps,
            completion_ps: outcome.completion_ps,
            row_hit: outcome.row_hit,
        })
    }

    /// Finalises the run at `end_ps` (records elapsed REF events).
    pub fn finish(&mut self, end_ps: u64) {
        self.engine.finish(end_ps);
    }

    /// Serialises the channel's dynamic state *exactly*: the engine and
    /// timing layers, then the slot slab field for field (including the
    /// planner caches, `exact` flags and the `active` list **in storage
    /// order** — the planner's skip rule and starvation accounting are
    /// scan-order sensitive, so a canonicalised restore could diverge from
    /// the straight run). The `reference`/`reference_refresh` knobs are
    /// rebuilt from process-wide defaults at construction, not serialised.
    pub(crate) fn snapshot_into(&self, w: &mut SnapshotWriter) {
        self.engine.snapshot_into(w);
        self.timing.snapshot_into(w);
        w.push(self.slots.len() as u64);
        for s in &self.slots {
            w.push_bool(s.occupied);
            w.push_u32(s.active_pos);
            w.push_bool(s.fresh);
            w.push_bool(s.exact);
            w.push(s.start_ps);
            w.push(s.cas_off_ps);
            w.push(s.base_ps);
            w.push(s.tx.id);
            w.push_u32(s.tx.core);
            w.push(s.tx.arrival_ps);
            let d = s.tx.decoded;
            for v in [d.channel, d.rank, d.bank_group, d.bank, d.row, d.column] {
                w.push_u32(v);
            }
            w.push_u32(s.tx.bank);
            w.push_bool(s.tx.is_read);
            w.push_u32(s.tx.bypassed);
        }
        w.push(self.free.len() as u64);
        for &i in &self.free {
            w.push_u32(i);
        }
        w.push(self.active.len() as u64);
        for &i in &self.active {
            w.push_u32(i);
        }
        w.push(self.next_id);
        w.push(self.clock_ps);
        match self.plan_cache {
            Some(p) => {
                w.push_bool(true);
                w.push(p.slot as u64);
                w.push(p.start_ps);
            }
            None => {
                w.push_bool(false);
                w.push(0);
                w.push(0);
            }
        }
        w.push(self.wins.w0_start);
        w.push(self.wins.w0_end);
        w.push(self.wins.w1_start);
        w.push(self.wins.w1_end);
        w.push_bool(self.wins.fast);
        match self.seed_hint {
            Some((b, i)) => {
                w.push_bool(true);
                w.push(b);
                w.push_u32(i);
            }
            None => {
                w.push_bool(false);
                w.push(0);
                w.push_u32(0);
            }
        }
        w.push(self.plans_computed);
        // Telemetry words ride behind the stable layout, and only when the
        // layer is enabled — a non-telemetry checkpoint is unchanged.
        if let Some(t) = &self.telemetry {
            t.snapshot_into(w);
        }
    }

    /// Restores the state captured by [`snapshot_into`](Self::snapshot_into)
    /// into a channel freshly built for the same config/scheme/policy.
    pub(crate) fn restore_from(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), String> {
        self.engine.restore_from(r)?;
        self.timing.restore_from(r)?;
        let slots = usize::try_from(r.take()?)
            .map_err(|_| "channel: slot count overflows usize".to_string())?;
        self.slots.clear();
        for _ in 0..slots {
            let occupied = r.take_bool()?;
            let active_pos = r.take_u32()?;
            let fresh = r.take_bool()?;
            let exact = r.take_bool()?;
            let start_ps = r.take()?;
            let cas_off_ps = r.take()?;
            let base_ps = r.take()?;
            let id = r.take()?;
            let core = r.take_u32()?;
            let arrival_ps = r.take()?;
            let decoded = DecodedAddr {
                channel: r.take_u32()?,
                rank: r.take_u32()?,
                bank_group: r.take_u32()?,
                bank: r.take_u32()?,
                row: r.take_u32()?,
                column: r.take_u32()?,
            };
            let bank = r.take_u32()?;
            let is_read = r.take_bool()?;
            let bypassed = r.take_u32()?;
            self.slots.push(Slot {
                occupied,
                active_pos,
                fresh,
                exact,
                start_ps,
                cas_off_ps,
                base_ps,
                tx: Transaction {
                    id,
                    core,
                    arrival_ps,
                    decoded,
                    bank,
                    is_read,
                    bypassed,
                },
            });
        }
        let take_index_list =
            |r: &mut SnapshotReader<'_>, out: &mut Vec<u32>, what: &str| -> Result<(), String> {
                let len = usize::try_from(r.take()?)
                    .map_err(|_| format!("channel: {what} overflows usize"))?;
                out.clear();
                for _ in 0..len {
                    let i = r.take_u32()?;
                    if i as usize >= slots {
                        return Err(format!("channel: {what} index {i} out of range"));
                    }
                    out.push(i);
                }
                Ok(())
            };
        let mut free = std::mem::take(&mut self.free);
        take_index_list(r, &mut free, "free list")?;
        self.free = free;
        let mut active = std::mem::take(&mut self.active);
        take_index_list(r, &mut active, "active list")?;
        self.active = active;
        self.next_id = r.take()?;
        self.clock_ps = r.take()?;
        let has_plan = r.take_bool()?;
        let plan_slot = usize::try_from(r.take()?)
            .map_err(|_| "channel: plan slot overflows usize".to_string())?;
        let plan_start = r.take()?;
        if has_plan && plan_slot >= slots {
            return Err(format!("channel: plan slot {plan_slot} out of range"));
        }
        self.plan_cache = has_plan.then_some(Plan {
            slot: plan_slot,
            start_ps: plan_start,
        });
        self.wins = RefWindows {
            w0_start: r.take()?,
            w0_end: r.take()?,
            w1_start: r.take()?,
            w1_end: r.take()?,
            fast: r.take_bool()?,
        };
        let has_hint = r.take_bool()?;
        let hint_base = r.take()?;
        let hint_idx = r.take_u32()?;
        if has_hint && hint_idx as usize >= slots {
            return Err(format!("channel: seed hint index {hint_idx} out of range"));
        }
        self.seed_hint = has_hint.then_some((hint_base, hint_idx));
        self.plans_computed = r.take()?;
        if let Some(t) = self.telemetry.as_deref_mut() {
            t.restore_from(r)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn channel(policy: SchedulePolicy) -> Channel {
        Channel::new(
            SystemConfig::table6(),
            MitigationScheme::Baseline,
            policy,
            AddressMapping::default(),
            5,
        )
    }

    fn req(ch: &Channel, bank: u32, row: u32, col: u32) -> Request {
        Request {
            addr: ch.decoder().encode_bank_row(bank, row, col),
            is_read: true,
            think_time_ps: 0,
        }
    }

    fn drain(ch: &mut Channel) -> Vec<Completion> {
        let mut out = Vec::new();
        while let Some(c) = ch.service_next() {
            out.push(c);
        }
        out
    }

    #[test]
    fn frfcfs_serves_row_hit_before_older_miss() {
        let cfg = SystemConfig::table6();
        let mut ch = channel(SchedulePolicy::frfcfs());
        let t0 = cfg.t_rfc_ps;
        // Open row 10 on bank 0.
        let r0 = req(&ch, 0, 10, 0);
        ch.push(r0, 0, t0);
        let first = ch.service_next().unwrap();
        // Queue an older miss (row 99) and a younger hit (row 10) arriving
        // at the same instant — queue order (id) makes the miss older.
        let miss = req(&ch, 0, 99, 0);
        let hit = req(&ch, 0, 10, 1);
        ch.push(miss, 1, first.completion_ps);
        ch.push(hit, 2, first.completion_ps);
        let served = drain(&mut ch);
        assert_eq!(served[0].core, 2, "the row hit jumps the queue");
        assert!(served[0].row_hit);
        assert_eq!(served[1].core, 1);
        assert!(!served[1].row_hit);
    }

    #[test]
    fn fcfs_serves_in_arrival_order() {
        let cfg = SystemConfig::table6();
        let mut ch = channel(SchedulePolicy::Fcfs);
        let t0 = cfg.t_rfc_ps;
        let r0 = req(&ch, 0, 10, 0);
        ch.push(r0, 0, t0);
        let first = ch.service_next().unwrap();
        let miss = req(&ch, 0, 99, 0);
        let hit = req(&ch, 0, 10, 1);
        ch.push(miss, 1, first.completion_ps);
        ch.push(hit, 2, first.completion_ps);
        let served = drain(&mut ch);
        assert_eq!(served[0].core, 1, "FCFS ignores the row buffer");
        assert!(!served[0].row_hit);
        assert!(!served[1].row_hit, "the miss closed the younger hit's row");
    }

    #[test]
    fn starvation_cap_bounds_hit_bypassing() {
        let cfg = SystemConfig::table6();
        let cap = 3u32;
        let mut ch = channel(SchedulePolicy::FrFcfs {
            starvation_cap: cap,
        });
        let t0 = cfg.t_rfc_ps;
        let r0 = req(&ch, 0, 10, 0);
        ch.push(r0, 0, t0);
        let first = ch.service_next().unwrap();
        // One old miss stuck behind a stream of row hits; everything
        // arrives at the same instant so the whole queue stays issuable
        // and only the policy decides the order.
        let t = first.completion_ps;
        let miss = req(&ch, 0, 99, 0);
        ch.push(miss, 9, t);
        let mut order = Vec::new();
        for k in 0..8u32 {
            let hit = req(&ch, 0, 10, 1 + k);
            ch.push(hit, k, t);
            let c = ch.service_next().unwrap();
            order.push(c.core);
        }
        order.extend(drain(&mut ch).iter().map(|c| c.core));
        let miss_pos = order.iter().position(|&c| c == 9).unwrap();
        assert!(
            miss_pos <= cap as usize,
            "the old miss must be force-served after {cap} bypasses, order {order:?}"
        );
    }

    #[test]
    fn inter_bank_act_spacing_is_enforced() {
        let cfg = SystemConfig::table6();
        // Same-group pair (banks 0 and 1, both group 0) pays tRRD_L…
        let mut ch = channel(SchedulePolicy::Fcfs);
        let t0 = cfg.t_rfc_ps;
        let a = req(&ch, 0, 1, 0);
        let b = req(&ch, 1, 1, 0);
        ch.push(a, 0, t0);
        ch.push(b, 1, t0);
        let served = drain(&mut ch);
        assert_eq!(served[1].start_ps - served[0].start_ps, cfg.t_rrd_l_ps);
        // …a cross-group pair (banks 0 and 4, groups 0 and 1) only tRRD_S.
        let mut ch = channel(SchedulePolicy::Fcfs);
        let a = req(&ch, 0, 1, 0);
        let c = req(&ch, 4, 1, 0);
        ch.push(a, 0, t0);
        ch.push(c, 1, t0);
        let served = drain(&mut ch);
        assert_eq!(served[1].start_ps - served[0].start_ps, cfg.t_rrd_s_ps);
    }

    #[test]
    fn scheduler_prefers_the_earlier_cross_group_act() {
        // With a same-group and a cross-group ACT both pending, the
        // cross-group one can issue tRRD_S after the first ACT while the
        // same-group one must wait tRRD_L — the earliest-startable rule
        // harvests that bank-group parallelism automatically.
        let cfg = SystemConfig::table6();
        let mut ch = channel(SchedulePolicy::Fcfs);
        let t0 = cfg.t_rfc_ps;
        let a = req(&ch, 0, 1, 0);
        let same_group = req(&ch, 1, 1, 0);
        let cross_group = req(&ch, 4, 1, 0);
        ch.push(a, 0, t0);
        ch.push(same_group, 1, t0);
        ch.push(cross_group, 2, t0);
        let served = drain(&mut ch);
        assert_eq!(
            served.iter().map(|c| c.core).collect::<Vec<_>>(),
            vec![0, 2, 1],
            "the cross-group ACT overtakes the older same-group one"
        );
        assert_eq!(served[1].start_ps - served[0].start_ps, cfg.t_rrd_s_ps);
    }

    #[test]
    fn faw_limits_act_bursts() {
        let cfg = SystemConfig::table6();
        let mut ch = channel(SchedulePolicy::Fcfs);
        let t0 = cfg.t_rfc_ps;
        // Five misses across five different bank groups.
        for bank in [0u32, 4, 8, 12, 16] {
            let r = req(&ch, bank, 1, 0);
            ch.push(r, 0, t0);
        }
        let served = drain(&mut ch);
        assert_eq!(
            served[4].start_ps - served[0].start_ps,
            cfg.t_faw_ps,
            "the fifth ACT waits for the rolling four-activate window"
        );
    }

    #[test]
    fn act_spacing_is_rank_local_but_cas_bus_is_shared() {
        // Five misses alternating between two ranks, each in its own bank
        // group: neither tRRD nor tFAW binds across ranks, so only the
        // shared CAS bus (tCCD_S between groups) paces the burst — well
        // inside what a single rank's four-activate window would allow.
        let cfg = SystemConfig {
            ranks: 2,
            ..SystemConfig::table6()
        };
        let mut ch = Channel::new(
            cfg,
            MitigationScheme::Baseline,
            SchedulePolicy::Fcfs,
            AddressMapping::default(),
            5,
        );
        let t0 = cfg.t_rfc_ps;
        for (i, bg) in [0u32, 1, 2, 3, 4].into_iter().enumerate() {
            let rank = (i as u32) % 2;
            let r = req(&ch, rank * cfg.banks + bg * cfg.banks_per_group(), 1, 0);
            ch.push(r, i as u32, t0);
        }
        let served = drain(&mut ch);
        assert_eq!(
            served[4].start_ps - served[0].start_ps,
            4 * cfg.t_ccd_s_ps,
            "cross-rank ACTs are paced only by the shared CAS bus"
        );
        assert!(4 * cfg.t_ccd_s_ps < cfg.t_faw_ps);
    }

    #[test]
    fn starts_are_monotone() {
        let cfg = SystemConfig::table6();
        let mut ch = channel(SchedulePolicy::frfcfs());
        let t0 = cfg.t_rfc_ps;
        for i in 0..20u32 {
            let r = req(&ch, i % 8, i % 3, 0);
            ch.push(r, 0, t0 + u64::from(i));
        }
        let served = drain(&mut ch);
        for w in served.windows(2) {
            assert!(w[1].start_ps >= w[0].start_ps);
        }
    }

    #[test]
    fn queue_capacity_is_bounded() {
        let cfg = SystemConfig {
            queue_depth: 2,
            ..SystemConfig::table6()
        };
        let mut ch = Channel::new(
            cfg,
            MitigationScheme::Baseline,
            SchedulePolicy::frfcfs(),
            AddressMapping::default(),
            1,
        );
        let r = req(&ch, 0, 0, 0);
        ch.push(r, 0, 0);
        assert!(ch.has_room());
        ch.push(r, 0, 0);
        assert!(!ch.has_room());
    }

    #[test]
    #[should_panic(expected = "transaction queue overflow")]
    fn overflow_panics() {
        let cfg = SystemConfig {
            queue_depth: 1,
            ..SystemConfig::table6()
        };
        let mut ch = Channel::new(
            cfg,
            MitigationScheme::Baseline,
            SchedulePolicy::frfcfs(),
            AddressMapping::default(),
            1,
        );
        let r = req(&ch, 0, 0, 0);
        ch.push(r, 0, 0);
        ch.push(r, 0, 0);
    }

    #[test]
    fn empty_queue_has_no_plan() {
        let mut ch = channel(SchedulePolicy::frfcfs());
        assert_eq!(ch.next_start_ps(), None);
        assert_eq!(ch.service_next(), None);
    }

    #[test]
    fn push_of_a_provably_later_arrival_keeps_the_plan() {
        // A newcomer whose earliest start is strictly after the planned
        // start cannot change the decision, so the plan survives the push
        // without a replanning pass — and the schedule still matches a
        // reference channel that replans after every push.
        let cfg = SystemConfig::table6();
        let mut fast = channel(SchedulePolicy::frfcfs());
        let mut slow = channel(SchedulePolicy::frfcfs());
        slow.set_reference_planner(true);
        let t0 = cfg.t_rfc_ps;
        for (i, bank) in [0u32, 4, 8].into_iter().enumerate() {
            let r = req(&fast, bank, 1, 0);
            fast.push(r, i as u32, t0);
            slow.push(r, i as u32, t0);
        }
        let planned = fast.next_start_ps();
        assert!(planned.is_some());
        let plans_before = fast.plans_computed();
        // An arrival far beyond the planned start provably cannot win.
        let late_at = t0 + 10 * cfg.t_rc_ps;
        let late = req(&fast, 12, 1, 0);
        fast.push(late, 9, late_at);
        slow.push(late, 9, late_at);
        assert_eq!(fast.next_start_ps(), planned, "the plan survives");
        assert_eq!(fast.plans_computed(), plans_before, "no replan happened");
        loop {
            let a = fast.service_next();
            let b = slow.service_next();
            assert_eq!(a, b, "kept-plan schedule must equal the scratch one");
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn reference_planner_matches_incremental_planner() {
        // Same request stream through both planners: identical
        // completions, step by step.
        let cfg = SystemConfig::table6();
        let mut fast = channel(SchedulePolicy::frfcfs());
        let mut slow = channel(SchedulePolicy::frfcfs());
        slow.set_reference_planner(true);
        let t0 = cfg.t_rfc_ps;
        for i in 0..24u32 {
            let r = req(&fast, i % 8, i % 3, i % 4);
            fast.push(r, i % 4, t0 + u64::from(i) * cfg.t_rrd_s_ps);
            slow.push(r, i % 4, t0 + u64::from(i) * cfg.t_rrd_s_ps);
            if i % 3 == 0 {
                assert_eq!(fast.service_next(), slow.service_next());
            }
        }
        loop {
            let a = fast.service_next();
            let b = slow.service_next();
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }
}
