//! System configuration (paper Table VI) plus the command-level channel
//! knobs (bank-group topology, inter-bank timings, queue depth, blast
//! radius).

use mint_dram::DdrTimings;

/// Rowhammer mitigation scheme under evaluation.
///
/// Each scheme is realised per bank by a
/// [`MitigationBackend`](crate::MitigationBackend) — see that module for
/// where each scheme's logic lives (in-DRAM riding REF, or MC-side paying
/// DRFM bank time) and how the trackers are sized. The full set mirrors the
/// paper's Table IX / §V-G comparison zoo.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MitigationScheme {
    /// No mitigation (the normalisation baseline).
    Baseline,
    /// MINT: mitigations ride inside the REF's tRFC — no extra bank time.
    Mint,
    /// MINT+RFM: an RFM command (tRFMsb = 205 ns bank block) every
    /// `rfm_th` activations per bank.
    MintRfm {
        /// RFM threshold (32 or 16 in the paper).
        rfm_th: u32,
    },
    /// Memory-controller PARA using blocking DRFM commands
    /// (tDRFMsb = 410 ns) issued per activation with probability `p`.
    McPara {
        /// Per-activation DRFM probability.
        p: f64,
    },
    /// Graphene (MICRO 2020): MC-side Misra-Gries aggressor table issuing
    /// a DRFM-priced mitigation when a row crosses its threshold.
    Graphene,
    /// Mithril (HPCA 2022): in-DRAM counter-based-summary sketch,
    /// mitigating at REF.
    Mithril,
    /// ProTRR (S&P 2022): in-DRAM Misra-Gries *victim* tracking; its REF
    /// mitigation refreshes exactly one row.
    ProTrr,
    /// A vendor-TRR-like small table (easily defeated; here for the
    /// performance/storage comparison).
    SimpleTrr,
    /// The idealized Per-Row Counter-Table (one counter per DRAM row).
    Prct,
    /// PrIDE (ISCA 2024): PARA sampling into a 4-entry in-DRAM FIFO.
    Pride,
    /// PARFM: buffer every activation of the window, mitigate one at
    /// random at REF.
    Parfm,
}

impl MitigationScheme {
    /// Short label for reports.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            MitigationScheme::Baseline => "Baseline".to_owned(),
            MitigationScheme::Mint => "MINT".to_owned(),
            MitigationScheme::MintRfm { rfm_th } => format!("MINT+RFM{rfm_th}"),
            MitigationScheme::McPara { p } => format!("MC-PARA(1/{:.0})", 1.0 / p),
            MitigationScheme::Graphene => "Graphene".to_owned(),
            MitigationScheme::Mithril => "Mithril".to_owned(),
            MitigationScheme::ProTrr => "ProTRR".to_owned(),
            MitigationScheme::SimpleTrr => "TRR".to_owned(),
            MitigationScheme::Prct => "PRCT".to_owned(),
            MitigationScheme::Pride => "PrIDE".to_owned(),
            MitigationScheme::Parfm => "PARFM".to_owned(),
        }
    }

    /// Parses a scheme from its [`label`](MitigationScheme::label) form,
    /// case-insensitively (`"baseline"`, `"mint"`, `"MINT+RFM16"`,
    /// `"mc-para(1/40)"`, …) — the inverse of `label`, used by the
    /// declarative [`ScenarioSpec`](crate::ScenarioSpec) text format.
    /// Returns `None` for unknown schemes.
    #[must_use]
    pub fn parse(s: &str) -> Option<MitigationScheme> {
        let lower = s.trim().to_ascii_lowercase();
        match lower.as_str() {
            "baseline" => return Some(MitigationScheme::Baseline),
            "mint" => return Some(MitigationScheme::Mint),
            "graphene" => return Some(MitigationScheme::Graphene),
            "mithril" => return Some(MitigationScheme::Mithril),
            "protrr" => return Some(MitigationScheme::ProTrr),
            "trr" => return Some(MitigationScheme::SimpleTrr),
            "prct" => return Some(MitigationScheme::Prct),
            "pride" => return Some(MitigationScheme::Pride),
            "parfm" => return Some(MitigationScheme::Parfm),
            _ => {}
        }
        if let Some(th) = lower.strip_prefix("mint+rfm") {
            return th
                .parse()
                .ok()
                .filter(|&rfm_th| rfm_th > 0)
                .map(|rfm_th| MitigationScheme::MintRfm { rfm_th });
        }
        // "mc-para(1/40)": the label renders the sampling rate as a
        // reciprocal, so that is what the parser accepts.
        if let Some(rest) = lower.strip_prefix("mc-para(1/") {
            let denom: f64 = rest.strip_suffix(')')?.parse().ok()?;
            if denom >= 1.0 {
                return Some(MitigationScheme::McPara { p: 1.0 / denom });
            }
        }
        None
    }

    /// The canonical evaluation zoo: baseline first (the normalisation
    /// reference for [`run_workload_grid`](crate::run_workload_grid)), then
    /// the paper's MINT configurations, then every baseline tracker.
    #[must_use]
    pub fn zoo() -> Vec<MitigationScheme> {
        vec![
            MitigationScheme::Baseline,
            MitigationScheme::Mint,
            MitigationScheme::MintRfm { rfm_th: 32 },
            MitigationScheme::MintRfm { rfm_th: 16 },
            MitigationScheme::McPara { p: 1.0 / 40.0 },
            MitigationScheme::Graphene,
            MitigationScheme::Mithril,
            MitigationScheme::ProTrr,
            MitigationScheme::SimpleTrr,
            MitigationScheme::Prct,
            MitigationScheme::Pride,
            MitigationScheme::Parfm,
        ]
    }
}

/// The evaluated system (paper Table VI) plus DDR5 command timings.
///
/// All times are picoseconds (integral, so event arithmetic is exact and
/// runs are bit-reproducible).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SystemConfig {
    /// Number of cores (4).
    pub cores: u32,
    /// Independently-clocked DDR5 channels in the system (Table VI: 1;
    /// must be a power of two for bit-sliced address mapping).
    pub channels: u32,
    /// Ranks per channel (Table VI: 1; must be a power of two). Each rank
    /// carries its own `banks` banks and its own tFAW/tRRD activation
    /// window; the CAS bus is shared per channel.
    pub ranks: u32,
    /// Core clock in GHz (3).
    pub core_ghz: u32,
    /// Effective non-memory IPC of the 8-wide core (how fast compute
    /// phases retire between LLC misses).
    pub core_ipc: u32,
    /// Memory-level parallelism: concurrent misses a core can overlap.
    pub core_mlp: u32,
    /// Banks in the channel (32).
    pub banks: u32,
    /// Bank groups the banks are divided into (DDR5: 8 groups of 4).
    /// Must divide `banks`; same-group ACT/CAS pairs pay the long
    /// tRRD_L/tCCD_L spacings, cross-group pairs the short ones.
    pub bank_groups: u32,
    /// Cache-line columns per row (128 × 64 B = 8 KB page).
    pub columns_per_row: u32,
    /// Transaction-queue capacity of the channel scheduler.
    pub queue_depth: u32,
    /// Blast radius charged per mitigation: victims refreshed on either
    /// side of an aggressor (DDR5 default 1). Sweepable like every other
    /// knob; also sizes the victim reach of ProTRR-style backends.
    pub blast_radius: u32,
    /// Row-activate latency tRCD (ps).
    pub t_rcd_ps: u64,
    /// Column access latency tCL (ps).
    pub t_cl_ps: u64,
    /// Precharge latency tRP (ps).
    pub t_rp_ps: u64,
    /// Row cycle time tRC (ps).
    pub t_rc_ps: u64,
    /// Refresh interval tREFI (ps).
    pub t_refi_ps: u64,
    /// Refresh duration tRFC (ps).
    pub t_rfc_ps: u64,
    /// RFM duration tRFMsb (ps) — half of tRFC per the paper.
    pub t_rfm_ps: u64,
    /// Directed-RFM duration tDRFMsb (ps) — equal to tRFC.
    pub t_drfm_ps: u64,
    /// Minimum spacing between ACTs to different bank groups (ps).
    pub t_rrd_s_ps: u64,
    /// Minimum spacing between ACTs within one bank group (ps).
    pub t_rrd_l_ps: u64,
    /// Four-activate window: at most 4 ACTs per channel within this (ps).
    pub t_faw_ps: u64,
    /// CAS-to-CAS spacing across bank groups (ps).
    pub t_ccd_s_ps: u64,
    /// CAS-to-CAS spacing within a bank group (ps).
    pub t_ccd_l_ps: u64,
    /// Rows per bank (for address generation).
    pub rows_per_bank: u32,
}

impl SystemConfig {
    /// Table VI: 4 cores @ 3 GHz, 32 banks, 16-16-16-48 ns timings, with
    /// the §VIII DRFM/RFM latencies (410 ns / 205 ns). The inter-bank
    /// constraints come from the canonical `mint-dram` DDR5-5200B values,
    /// so the security and performance layers cannot drift apart.
    #[must_use]
    pub fn table6() -> Self {
        let ps = |ns: f64| (ns * 1000.0).round() as u64;
        let t = DdrTimings::ddr5_5200b();
        Self {
            cores: 4,
            channels: 1,
            ranks: 1,
            core_ghz: 3,
            core_ipc: 3,
            core_mlp: 4,
            banks: 32,
            bank_groups: 8,
            columns_per_row: 128,
            queue_depth: 32,
            blast_radius: 1,
            t_rcd_ps: 16_000,
            t_cl_ps: 16_000,
            t_rp_ps: 16_000,
            t_rc_ps: 48_000,
            t_refi_ps: 3_900_000,
            t_rfc_ps: 410_000,
            t_rfm_ps: 205_000,
            t_drfm_ps: 410_000,
            t_rrd_s_ps: ps(t.t_rrd_s_ns),
            t_rrd_l_ps: ps(t.t_rrd_l_ns),
            t_faw_ps: ps(t.t_faw_ns),
            t_ccd_s_ps: ps(t.t_ccd_s_ns),
            t_ccd_l_ps: ps(t.t_ccd_l_ns),
            rows_per_bank: 128 * 1024,
        }
    }

    /// Banks per bank group (`banks / bank_groups`).
    ///
    /// # Panics
    ///
    /// Panics if `bank_groups` does not divide `banks`.
    #[must_use]
    pub fn banks_per_group(&self) -> u32 {
        assert!(
            self.bank_groups > 0 && self.banks % self.bank_groups == 0,
            "bank_groups must divide banks"
        );
        self.banks / self.bank_groups
    }

    /// Banks per channel across all of its ranks (`ranks × banks`). The
    /// controller's bank tables (and the `bank` field of every
    /// [`MemEvent`](crate::MemEvent)) are indexed by
    /// `rank × banks + flat_bank` inside one channel.
    #[must_use]
    pub fn banks_per_channel(&self) -> u32 {
        self.ranks * self.banks
    }

    /// Banks in the whole system (`channels × ranks × banks`).
    #[must_use]
    pub fn total_banks(&self) -> u32 {
        self.channels * self.ranks * self.banks
    }

    /// Picoseconds per core cycle.
    #[must_use]
    pub fn core_cycle_ps(&self) -> u64 {
        1_000 / u64::from(self.core_ghz)
    }

    /// Row-buffer hit latency (CAS only).
    #[must_use]
    pub fn hit_latency_ps(&self) -> u64 {
        self.t_cl_ps
    }

    /// Row-buffer miss latency (precharge + activate + CAS).
    #[must_use]
    pub fn miss_latency_ps(&self) -> u64 {
        self.t_rp_ps + self.t_rcd_ps + self.t_cl_ps
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        Self::table6()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table6_constants() {
        let c = SystemConfig::table6();
        assert_eq!(c.cores, 4);
        assert_eq!(c.banks, 32);
        assert_eq!((c.channels, c.ranks), (1, 1), "Table VI is 1 ch x 1 rank");
        assert_eq!(c.banks_per_channel(), 32);
        assert_eq!(c.total_banks(), 32);
        assert_eq!(c.t_rc_ps, 48_000);
        assert_eq!(c.core_cycle_ps(), 333);
        assert_eq!(c.miss_latency_ps(), 48_000);
        assert_eq!(c.hit_latency_ps(), 16_000);
    }

    #[test]
    fn table6_channel_knobs() {
        let c = SystemConfig::table6();
        assert_eq!(c.bank_groups, 8);
        assert_eq!(c.banks_per_group(), 4);
        assert_eq!(c.columns_per_row, 128);
        assert_eq!(c.queue_depth, 32);
        assert_eq!(c.blast_radius, 1);
        assert_eq!(c.t_rrd_s_ps, 3_100);
        assert_eq!(c.t_rrd_l_ps, 5_000);
        assert_eq!(c.t_faw_ps, 13_300);
        assert!(c.t_rrd_l_ps >= c.t_rrd_s_ps);
        assert!(c.t_ccd_l_ps >= c.t_ccd_s_ps);
        assert!(c.t_faw_ps > 4 * c.t_rrd_s_ps, "FAW must bind");
    }

    #[test]
    #[should_panic(expected = "bank_groups must divide banks")]
    fn bad_bank_group_split_rejected() {
        let c = SystemConfig {
            bank_groups: 5,
            ..SystemConfig::table6()
        };
        let _ = c.banks_per_group();
    }

    #[test]
    fn bank_totals_scale_with_topology() {
        let c = SystemConfig {
            channels: 2,
            ranks: 4,
            ..SystemConfig::table6()
        };
        assert_eq!(c.banks_per_channel(), 128);
        assert_eq!(c.total_banks(), 256);
    }

    #[test]
    fn rfm_is_half_drfm() {
        let c = SystemConfig::table6();
        assert_eq!(c.t_drfm_ps, c.t_rfc_ps);
        assert_eq!(c.t_rfm_ps * 2, c.t_rfc_ps);
    }

    #[test]
    fn scheme_labels() {
        assert_eq!(MitigationScheme::Baseline.label(), "Baseline");
        assert_eq!(MitigationScheme::Mint.label(), "MINT");
        assert_eq!(
            MitigationScheme::MintRfm { rfm_th: 16 }.label(),
            "MINT+RFM16"
        );
        assert!(MitigationScheme::McPara { p: 1.0 / 64.0 }
            .label()
            .contains("64"));
        assert_eq!(MitigationScheme::Graphene.label(), "Graphene");
        assert_eq!(MitigationScheme::ProTrr.label(), "ProTRR");
        assert_eq!(MitigationScheme::Prct.label(), "PRCT");
    }

    #[test]
    fn zoo_covers_at_least_eight_distinct_schemes() {
        let zoo = MitigationScheme::zoo();
        assert!(zoo.len() >= 8, "zoo has {} schemes", zoo.len());
        assert_eq!(zoo[0], MitigationScheme::Baseline, "baseline leads");
        let labels: std::collections::HashSet<String> =
            zoo.iter().map(MitigationScheme::label).collect();
        assert_eq!(labels.len(), zoo.len(), "labels must be distinct");
    }
}
