//! The DIMM layer: N independently-clocked [`Channel`] pipelines × R
//! ranks each, behind one request-routing front door.
//!
//! A [`System`] owns one command pipeline per channel of the
//! [`SystemConfig`] topology. Channels share nothing at the command
//! level — each has its own transaction queue, scheduler, inter-bank
//! timing state and per-bank engine (rank-aware: tRRD/tFAW windows are
//! tracked per rank, the CAS bus is shared per channel) — so the only
//! coupling is the frontend: the decoder's `channel` field routes every
//! request to its pipeline, and the [`Session`](crate::Session) admission
//! loop interleaves admissions and services across channels in
//! deterministic global-time order ([`earliest_ready`]
//! arbitrates by `(next start, channel index)`).
//!
//! Construction fans the per-channel pipelines across worker threads via
//! [`mint_exp::par_map`] (a channel's mitigation backends can carry
//! hundreds of thousands of per-row counters), with the harness's usual
//! guarantee: channel `c` seeds its engine from `derive_seed(seed,
//! 0xC0 + c)` whatever the worker count, so results are bit-identical for
//! any `--jobs` value — and channel 0's substream is exactly the legacy
//! single-channel one, which is what pins the `channels = 1, ranks = 1`
//! `System` byte-for-byte to the pre-DIMM pipeline
//! (`tests/system_identity.rs`).
//!
//! Observers see one merged event stream: events drain per scheduling
//! decision in service order, with each channel's bank indices rebased by
//! [`MemEvent::with_bank_offset`] into the system-global bank space
//! (`channel × banks_per_channel + rank × banks_per_rank + flat_bank`).
//!
//! [`earliest_ready`]: System::earliest_ready

use crate::address::{AddressDecoder, AddressMapping};
use crate::config::{MitigationScheme, SystemConfig};
use crate::controller::SimResult;
use crate::events::MemEvent;
use crate::sched::{Channel, Completion, SchedulePolicy};
use crate::snapshot::{SnapshotReader, SnapshotWriter};
use crate::workload::Request;
use mint_rng::derive_seed;

/// A full DIMM: one [`Channel`] pipeline per channel of the configured
/// topology, plus the routing decoder. See the [module docs](self).
#[derive(Debug)]
pub struct System {
    decoder: AddressDecoder,
    channels: Vec<Channel>,
    /// Bank-index rebase per channel (`channel × banks_per_channel`).
    bank_offset: u32,
    /// Cached per-channel next scheduling start (`u64::MAX` = empty
    /// queue). A push or service marks its channel stale; admissibility
    /// and earliest-ready queries recompute only stale entries, so
    /// multi-channel admission stops re-asking every planner per
    /// decision.
    next_start: Vec<u64>,
    /// Which [`next_start`](Self::next_start) entries need a recompute.
    stale: Vec<bool>,
}

impl System {
    /// Builds one pipeline per channel, fanned across worker threads.
    /// Channel `c`'s engine seeds from `derive_seed(seed, 0xC0 + c)` —
    /// independent per-channel substreams, and channel 0 identical to the
    /// legacy single-channel derivation.
    #[must_use]
    pub fn new(
        cfg: SystemConfig,
        scheme: MitigationScheme,
        policy: SchedulePolicy,
        mapping: AddressMapping,
        seed: u64,
    ) -> Self {
        let ids: Vec<u32> = (0..cfg.channels).collect();
        let channels = mint_exp::par_map(&ids, |_, &c| {
            Channel::new(
                cfg,
                scheme,
                policy,
                mapping,
                derive_seed(seed, 0xC0 + u64::from(c)),
            )
        });
        let count = channels.len();
        Self {
            decoder: AddressDecoder::new(&cfg, mapping),
            channels,
            bank_offset: cfg.banks_per_channel(),
            next_start: vec![u64::MAX; count],
            stale: vec![false; count],
        }
    }

    /// The number of channel pipelines.
    #[must_use]
    pub fn channel_count(&self) -> usize {
        self.channels.len()
    }

    /// One channel's pipeline (index < [`channel_count`](Self::channel_count)).
    #[must_use]
    pub fn channel(&self, ch: usize) -> &Channel {
        &self.channels[ch]
    }

    /// The decoder the front door routes with.
    #[must_use]
    pub fn decoder(&self) -> &AddressDecoder {
        &self.decoder
    }

    /// Which channel services `addr` (the decoder's `channel` field).
    ///
    /// # Panics
    ///
    /// Panics if `addr` is beyond the organisation's capacity (the
    /// decoder rejects out-of-range addresses rather than wrapping).
    #[must_use]
    pub fn route(&self, addr: u64) -> usize {
        self.decoder.decode(addr).channel as usize
    }

    /// The cached next start of channel `ch`, recomputed from the
    /// channel's planner only when a push or service staled it
    /// (`u64::MAX` = empty queue).
    #[inline]
    fn cached_next_start(&mut self, ch: usize) -> u64 {
        if self.stale[ch] {
            self.stale[ch] = false;
            self.next_start[ch] = self.channels[ch].next_start_ps().unwrap_or(u64::MAX);
        }
        self.next_start[ch]
    }

    /// Whether channel `ch` can admit a request issued at `issue_ps`
    /// right now: room in its queue, and no already-queued transaction
    /// would start before the newcomer arrives (each channel's scheduler
    /// must see all arrived traffic before committing a command).
    #[must_use]
    pub fn admissible(&mut self, ch: usize, issue_ps: u64) -> bool {
        self.channels[ch].has_room() && issue_ps <= self.cached_next_start(ch)
    }

    /// [`admissible`](Self::admissible) recomputed straight from the
    /// channel planner — the retained reference rule the admission
    /// oracle diffs the cache against.
    #[must_use]
    pub(crate) fn admissible_uncached(&mut self, ch: usize, issue_ps: u64) -> bool {
        self.channels[ch].has_room()
            && self.channels[ch]
                .next_start_ps()
                .map_or(true, |s| issue_ps <= s)
    }

    /// Enqueues a request on its routed channel.
    ///
    /// # Panics
    ///
    /// Panics if the routed channel's queue is full (callers gate on
    /// [`admissible`](Self::admissible)).
    pub fn push(&mut self, req: Request, core: u32, arrival_ps: u64) {
        let ch = self.route(req.addr);
        self.push_to(ch, req, core, arrival_ps);
    }

    /// [`push`](Self::push) with the route already resolved — the
    /// admission loop decides admissibility per routed channel and then
    /// pushes without decoding the address a second time.
    pub fn push_to(&mut self, ch: usize, req: Request, core: u32, arrival_ps: u64) {
        self.channels[ch].push(req, core, arrival_ps);
        self.stale[ch] = true;
    }

    /// The channel whose next scheduling decision comes first — the
    /// deterministic service order of the admission loop. Ties break to
    /// the lowest channel index; `None` when every queue is empty.
    /// Answered from the readiness cache: only channels a push or
    /// service staled re-ask their planner; the minimum is a scan over a
    /// dense array.
    #[must_use]
    pub fn earliest_ready(&mut self) -> Option<usize> {
        for ch in 0..self.channels.len() {
            self.cached_next_start(ch);
        }
        let mut best = u64::MAX;
        let mut best_ch = None;
        for (ch, &s) in self.next_start.iter().enumerate() {
            if s < best {
                best = s;
                best_ch = Some(ch);
            }
        }
        best_ch
    }

    /// [`earliest_ready`](Self::earliest_ready) recomputed by the
    /// retained linear scan over the channel planners — the reference
    /// rule the admission oracle diffs the cache against.
    #[must_use]
    pub(crate) fn earliest_ready_uncached(&mut self) -> Option<usize> {
        let mut best: Option<(u64, usize)> = None;
        for ch in 0..self.channels.len() {
            if let Some(s) = self.channels[ch].next_start_ps() {
                if best.map_or(true, |(b, _)| s < b) {
                    best = Some((s, ch));
                }
            }
        }
        best.map(|(_, ch)| ch)
    }

    /// Performs one scheduling decision on channel `ch` (see
    /// [`Channel::service_next`]).
    pub fn service_channel(&mut self, ch: usize) -> Option<Completion> {
        self.stale[ch] = true;
        self.channels[ch].service_next()
    }

    /// Queued (not yet serviced) transactions across all channels.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.channels.iter().map(Channel::pending).sum()
    }

    /// Turns on every channel engine's executed-command log.
    pub fn enable_event_log(&mut self) {
        for ch in &mut self.channels {
            ch.enable_event_log();
        }
    }

    /// Turns on scheduler- and engine-side telemetry on every channel.
    pub fn enable_telemetry(&mut self) {
        for ch in &mut self.channels {
            ch.enable_telemetry();
        }
    }

    /// Drains channel `ch`'s executed-command events accumulated since
    /// the last drain, rebased into the system-global bank space.
    pub fn drain_events_global(&mut self, ch: usize) -> impl Iterator<Item = MemEvent> + '_ {
        let offset = self.bank_offset * ch as u32;
        self.channels[ch]
            .drain_events()
            .map(move |e| e.with_bank_offset(offset))
    }

    /// Finalises the run at `end_ps` on every channel (records elapsed
    /// REF events for the whole wall-clock of the run).
    pub fn finish(&mut self, end_ps: u64) {
        for ch in &mut self.channels {
            ch.finish(end_ps);
        }
        // Finalisation advances engine state; drop any cached readiness.
        self.stale.fill(true);
    }

    /// The run statistics summed over all channels.
    #[must_use]
    pub fn result(&self) -> SimResult {
        let mut total = SimResult::default();
        for ch in &self.channels {
            total.absorb(&ch.result());
        }
        total
    }

    /// Serialises every channel pipeline plus the readiness cache.
    pub(crate) fn snapshot_into(&self, w: &mut SnapshotWriter) {
        w.push(self.channels.len() as u64);
        for ch in &self.channels {
            ch.snapshot_into(w);
        }
        for &s in &self.next_start {
            w.push(s);
        }
        for &b in &self.stale {
            w.push_bool(b);
        }
    }

    /// Restores the state captured by [`snapshot_into`](Self::snapshot_into)
    /// into a system freshly built for the same topology.
    pub(crate) fn restore_from(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), String> {
        let count = usize::try_from(r.take()?)
            .map_err(|_| "system: channel count overflows usize".to_string())?;
        if count != self.channels.len() {
            return Err(format!(
                "system: checkpoint has {count} channels, state has {}",
                self.channels.len()
            ));
        }
        for ch in &mut self.channels {
            ch.restore_from(r)?;
        }
        for s in &mut self.next_start {
            *s = r.take()?;
        }
        for b in &mut self.stale {
            *b = r.take_bool()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn system(cfg: SystemConfig) -> System {
        System::new(
            cfg,
            MitigationScheme::Baseline,
            SchedulePolicy::frfcfs(),
            AddressMapping::default(),
            5,
        )
    }

    fn req(sys: &System, system_bank: u32, row: u32, col: u32) -> Request {
        Request {
            addr: sys.decoder().encode_bank_row(system_bank, row, col),
            is_read: true,
            think_time_ps: 0,
        }
    }

    #[test]
    fn topology_builds_one_pipeline_per_channel() {
        let cfg = SystemConfig {
            channels: 4,
            ranks: 2,
            ..SystemConfig::table6()
        };
        let sys = system(cfg);
        assert_eq!(sys.channel_count(), 4);
        assert_eq!(sys.pending(), 0);
    }

    #[test]
    fn requests_route_to_their_decoded_channel() {
        let cfg = SystemConfig {
            channels: 2,
            ..SystemConfig::table6()
        };
        let mut sys = system(cfg);
        let bpc = cfg.banks_per_channel();
        let t0 = cfg.t_rfc_ps;
        // One request per channel, by system-global bank index.
        let r0 = req(&sys, 0, 1, 0);
        let r1 = req(&sys, bpc, 1, 0);
        assert_eq!(sys.route(r0.addr), 0);
        assert_eq!(sys.route(r1.addr), 1);
        sys.push(r0, 0, t0);
        sys.push(r1, 1, t0);
        assert_eq!(sys.channel(0).pending(), 1);
        assert_eq!(sys.channel(1).pending(), 1);
        // Both channels run concurrently: each serves its request at the
        // same local start, undelayed by the other channel.
        let a = sys.earliest_ready().unwrap();
        let ca = sys.service_channel(a).unwrap();
        let b = sys.earliest_ready().unwrap();
        let cb = sys.service_channel(b).unwrap();
        assert_eq!((a, b), (0, 1), "ties break to the lowest channel");
        assert_eq!(ca.start_ps, cb.start_ps, "channels share no command bus");
        assert_eq!(sys.pending(), 0);
    }

    #[test]
    fn channel_seeds_are_independent_and_channel0_is_legacy() {
        // Channel c seeds from derive_seed(seed, 0xC0 + c): channel 0's
        // substream is the legacy single-channel one, and no two channels
        // share a substream.
        let seeds: Vec<u64> = (0..4u64).map(|c| derive_seed(5, 0xC0 + c)).collect();
        assert_eq!(seeds[0], derive_seed(5, 0xC0));
        for (i, a) in seeds.iter().enumerate() {
            for b in &seeds[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn results_sum_over_channels() {
        let cfg = SystemConfig {
            channels: 2,
            ..SystemConfig::table6()
        };
        let mut sys = system(cfg);
        let bpc = cfg.banks_per_channel();
        let t0 = cfg.t_rfc_ps;
        for (i, bank) in [0, bpc, bpc + 4].into_iter().enumerate() {
            let r = req(&sys, bank, 1, 0);
            sys.push(r, i as u32, t0);
        }
        while let Some(ch) = sys.earliest_ready() {
            sys.service_channel(ch);
        }
        let total = sys.result();
        assert_eq!(total.requests, 3);
        assert_eq!(sys.channel(0).result().requests, 1);
        assert_eq!(sys.channel(1).result().requests, 2);
    }

    #[test]
    fn drained_events_carry_system_global_banks() {
        let cfg = SystemConfig {
            channels: 2,
            ..SystemConfig::table6()
        };
        let mut sys = system(cfg);
        sys.enable_event_log();
        let bpc = cfg.banks_per_channel();
        let t0 = cfg.t_rfc_ps;
        let r = req(&sys, bpc + 3, 7, 0);
        sys.push(r, 0, t0);
        let ch = sys.earliest_ready().unwrap();
        assert_eq!(ch, 1);
        sys.service_channel(ch).unwrap();
        let events: Vec<MemEvent> = sys.drain_events_global(ch).collect();
        assert!(events.iter().any(|e| matches!(
            e,
            MemEvent::Act {
                bank,
                row: 7,
                ..
            } if *bank == bpc + 3
        )));
    }

    #[test]
    fn admissibility_mirrors_the_routed_channel() {
        let cfg = SystemConfig {
            channels: 2,
            queue_depth: 1,
            ..SystemConfig::table6()
        };
        let mut sys = system(cfg);
        let bpc = cfg.banks_per_channel();
        let t0 = cfg.t_rfc_ps;
        let r = req(&sys, 0, 1, 0);
        sys.push(r, 0, t0);
        assert!(!sys.admissible(0, t0), "channel 0's queue is full");
        assert!(sys.admissible(1, t0), "channel 1 is untouched");
        let other = req(&sys, bpc, 1, 0);
        sys.push(other, 1, t0);
        assert!(!sys.admissible(1, t0));
    }
}
