//! Versioned checkpoint serialization for pausable simulation sessions.
//!
//! A [`Checkpoint`] is a flat sequence of `u64` words produced by walking
//! every stateful layer of a running session — scheduler slabs, controller
//! bank state, mitigation trackers, timing rings, RNG stream positions and
//! per-core frontends — through a [`SnapshotWriter`]. The byte encoding is
//! an 8-byte magic (`MINTCKPT`), a version word, a length word, and the
//! words in little-endian order, so a checkpoint written by one process can
//! be restored bit-identically in a fresh one (see
//! [`Session::resume`](crate::Session::resume)).
//!
//! The format is intentionally exact rather than canonical: anything whose
//! in-memory order can influence a later decision (the scheduler's active
//! list, PARFM's RNG-indexed buffer, PrIDE's FIFO) is serialized in its
//! current order, so the restored process replays the straight run to the
//! last `f64` bit.

/// Version word embedded in every serialized checkpoint. Bumped whenever
/// the word layout of any layer changes incompatibly.
pub const CHECKPOINT_VERSION: u64 = 1;

/// Magic prefix identifying a serialized checkpoint.
const MAGIC: &[u8; 8] = b"MINTCKPT";

/// An opaque, restorable capture of a paused session.
///
/// Produced by [`Session::run_until`](crate::Session::run_until); consumed
/// by [`Session::resume`](crate::Session::resume). Serialize with
/// [`to_bytes`](Self::to_bytes) to move it across processes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    pub(crate) words: Vec<u64>,
}

impl Checkpoint {
    /// Number of `u64` state words in the checkpoint (excluding framing).
    #[must_use]
    pub fn word_count(&self) -> usize {
        self.words.len()
    }

    /// Serializes the checkpoint: magic, version, word count, then each
    /// word in little-endian order.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + 16 + 8 * self.words.len());
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&CHECKPOINT_VERSION.to_le_bytes());
        out.extend_from_slice(&(self.words.len() as u64).to_le_bytes());
        for w in &self.words {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out
    }

    /// Parses a checkpoint previously produced by [`to_bytes`](Self::to_bytes).
    ///
    /// # Errors
    ///
    /// Returns a description of the first framing problem found: missing or
    /// wrong magic, unsupported version, or a truncated word stream.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, String> {
        let Some((magic, rest)) = bytes.split_first_chunk::<8>() else {
            return Err("checkpoint shorter than its magic".to_string());
        };
        if magic != MAGIC {
            return Err("not a MINT checkpoint (bad magic)".to_string());
        }
        let Some((version, rest)) = rest.split_first_chunk::<8>() else {
            return Err("checkpoint truncated before version".to_string());
        };
        let version = u64::from_le_bytes(*version);
        if version != CHECKPOINT_VERSION {
            return Err(format!(
                "unsupported checkpoint version {version} (expected {CHECKPOINT_VERSION})"
            ));
        }
        let Some((count, rest)) = rest.split_first_chunk::<8>() else {
            return Err("checkpoint truncated before word count".to_string());
        };
        let count = usize::try_from(u64::from_le_bytes(*count))
            .map_err(|_| "checkpoint word count overflows usize".to_string())?;
        if rest.len() != 8 * count {
            return Err(format!(
                "checkpoint body is {} bytes, expected {} for {count} words",
                rest.len(),
                8 * count
            ));
        }
        let words = rest
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("chunks_exact yields 8 bytes")))
            .collect();
        Ok(Self { words })
    }
}

/// Accumulates checkpoint state as a flat word stream.
///
/// Each push helper widens its value to a `u64`; the matching
/// [`SnapshotReader`] take must be called in the same order.
#[derive(Debug, Default)]
pub struct SnapshotWriter {
    words: Vec<u64>,
}

impl SnapshotWriter {
    /// Creates an empty writer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a raw word.
    pub fn push(&mut self, w: u64) {
        self.words.push(w);
    }

    /// Appends a `u32`, widened.
    pub fn push_u32(&mut self, v: u32) {
        self.words.push(u64::from(v));
    }

    /// Appends a bool as 0/1.
    pub fn push_bool(&mut self, b: bool) {
        self.words.push(u64::from(b));
    }

    /// Appends an `f64` by bit pattern (exact, not lossy).
    pub fn push_f64(&mut self, v: f64) {
        self.words.push(v.to_bits());
    }

    /// Appends an optional word as a presence flag plus the value (0 when
    /// absent, to keep the stream length independent of the payload).
    pub fn push_opt(&mut self, v: Option<u64>) {
        self.push_bool(v.is_some());
        self.words.push(v.unwrap_or(0));
    }

    /// Appends a length-prefixed word slice.
    pub fn push_words(&mut self, ws: &[u64]) {
        self.words.push(ws.len() as u64);
        self.words.extend_from_slice(ws);
    }

    /// Consumes the writer into a [`Checkpoint`].
    #[must_use]
    pub fn into_checkpoint(self) -> Checkpoint {
        Checkpoint { words: self.words }
    }
}

/// Cursor over a checkpoint's word stream; the mirror of [`SnapshotWriter`].
///
/// Every take validates bounds and range so a corrupted or mismatched
/// checkpoint surfaces as an `Err` instead of silently wrong state.
#[derive(Debug)]
pub struct SnapshotReader<'a> {
    words: &'a [u64],
    pos: usize,
}

impl<'a> SnapshotReader<'a> {
    /// Creates a reader over a word stream.
    #[must_use]
    pub fn new(words: &'a [u64]) -> Self {
        Self { words, pos: 0 }
    }

    /// Takes the next raw word.
    ///
    /// # Errors
    ///
    /// Errors when the stream is exhausted.
    pub fn take(&mut self) -> Result<u64, String> {
        let w = self
            .words
            .get(self.pos)
            .copied()
            .ok_or_else(|| format!("checkpoint truncated at word {}", self.pos))?;
        self.pos += 1;
        Ok(w)
    }

    /// Takes a word and narrows it to `u32`.
    ///
    /// # Errors
    ///
    /// Errors on exhaustion or if the word exceeds `u32::MAX`.
    pub fn take_u32(&mut self) -> Result<u32, String> {
        let w = self.take()?;
        u32::try_from(w).map_err(|_| format!("checkpoint word {w:#x} exceeds u32"))
    }

    /// Takes a word and interprets it as a bool (must be 0 or 1).
    ///
    /// # Errors
    ///
    /// Errors on exhaustion or a value other than 0/1.
    pub fn take_bool(&mut self) -> Result<bool, String> {
        match self.take()? {
            0 => Ok(false),
            1 => Ok(true),
            w => Err(format!("checkpoint word {w} is not a bool")),
        }
    }

    /// Takes a word as an `f64` bit pattern.
    ///
    /// # Errors
    ///
    /// Errors on exhaustion.
    pub fn take_f64(&mut self) -> Result<f64, String> {
        Ok(f64::from_bits(self.take()?))
    }

    /// Takes an optional word written by [`SnapshotWriter::push_opt`].
    ///
    /// # Errors
    ///
    /// Errors on exhaustion or a malformed presence flag.
    pub fn take_opt(&mut self) -> Result<Option<u64>, String> {
        let present = self.take_bool()?;
        let v = self.take()?;
        Ok(present.then_some(v))
    }

    /// Takes a length-prefixed word slice written by
    /// [`SnapshotWriter::push_words`].
    ///
    /// # Errors
    ///
    /// Errors on exhaustion or if the prefix runs past the stream.
    pub fn take_words(&mut self) -> Result<&'a [u64], String> {
        let len = usize::try_from(self.take()?)
            .map_err(|_| "checkpoint slice length overflows usize".to_string())?;
        let end = self
            .pos
            .checked_add(len)
            .filter(|&e| e <= self.words.len())
            .ok_or_else(|| {
                format!(
                    "checkpoint slice of {len} words truncated at word {}",
                    self.pos
                )
            })?;
        let ws = &self.words[self.pos..end];
        self.pos = end;
        Ok(ws)
    }

    /// Asserts every word has been consumed — catches writer/reader drift.
    ///
    /// # Errors
    ///
    /// Errors when trailing words remain.
    pub fn finish(&self) -> Result<(), String> {
        if self.pos == self.words.len() {
            Ok(())
        } else {
            Err(format!(
                "checkpoint has {} unread trailing words",
                self.words.len() - self.pos
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_round_trip() {
        let mut w = SnapshotWriter::new();
        w.push(7);
        w.push_u32(42);
        w.push_bool(true);
        w.push_f64(0.125);
        w.push_opt(None);
        w.push_opt(Some(9));
        w.push_words(&[1, 2, 3]);
        let ckpt = w.into_checkpoint();
        let back = Checkpoint::from_bytes(&ckpt.to_bytes()).expect("round trip");
        assert_eq!(back, ckpt);

        let mut r = SnapshotReader::new(&back.words);
        assert_eq!(r.take().unwrap(), 7);
        assert_eq!(r.take_u32().unwrap(), 42);
        assert!(r.take_bool().unwrap());
        assert_eq!(r.take_f64().unwrap().to_bits(), 0.125f64.to_bits());
        assert_eq!(r.take_opt().unwrap(), None);
        assert_eq!(r.take_opt().unwrap(), Some(9));
        assert_eq!(r.take_words().unwrap(), &[1, 2, 3]);
        r.finish().expect("fully consumed");
    }

    #[test]
    fn framing_errors_are_described() {
        assert!(Checkpoint::from_bytes(b"short")
            .unwrap_err()
            .contains("magic"));
        assert!(Checkpoint::from_bytes(b"NOTMAGIC\0\0\0\0\0\0\0\0")
            .unwrap_err()
            .contains("bad magic"));
        let mut bad_version = MAGIC.to_vec();
        bad_version.extend_from_slice(&99u64.to_le_bytes());
        bad_version.extend_from_slice(&0u64.to_le_bytes());
        assert!(Checkpoint::from_bytes(&bad_version)
            .unwrap_err()
            .contains("version 99"));
        let mut truncated = MAGIC.to_vec();
        truncated.extend_from_slice(&CHECKPOINT_VERSION.to_le_bytes());
        truncated.extend_from_slice(&4u64.to_le_bytes());
        truncated.extend_from_slice(&1u64.to_le_bytes());
        assert!(Checkpoint::from_bytes(&truncated)
            .unwrap_err()
            .contains("expected 32"));
    }

    #[test]
    fn reader_rejects_malformed_streams() {
        let words = [2u64, 5];
        let mut r = SnapshotReader::new(&words);
        assert!(r.take_bool().unwrap_err().contains("not a bool"));
        let mut r = SnapshotReader::new(&words);
        assert!(r.take_words().unwrap_err().contains("truncated"));
        let overflow = [u64::from(u32::MAX) + 1];
        let mut r = SnapshotReader::new(&overflow);
        assert!(r.take_u32().unwrap_err().contains("exceeds u32"));
        let r = SnapshotReader::new(&words);
        assert!(r.finish().unwrap_err().contains("trailing"));
    }
}
