//! Command-level event hooks: what the channel actually did, as a
//! deterministic event stream observers can ride.
//!
//! The per-bank engine ([`MemoryController`](crate::MemoryController))
//! records one [`MemEvent`] per device command it executes — demand ACTs,
//! precharges, elapsed REF boundaries, RFM/DRFM mitigation commands and
//! every individual victim-refresh activation — into a log that is **off by
//! default** (the perf sweeps pay nothing for it). The
//! [`Channel`](crate::Channel) forwards the gate and the drain, and the
//! runner's [`run_sources_observed`](crate::run_sources_observed) pumps the
//! drained events into a [`ChannelObserver`] after every scheduling
//! decision, in service order — so an observer sees exactly the command
//! sequence the device executed, bit-identically for any worker count.
//!
//! This is the ground-truth tap the `mint-redteam` escape oracle hangs off:
//! an observer that replays the event stream against an exact per-row
//! hammer-count model can state, post-run, whether any row crossed a given
//! Rowhammer threshold — closing the loop between the analytical security
//! bounds and the cycle-level performance pipeline.

/// One device-level command executed by the channel.
///
/// Times are picoseconds on the channel's clock. `bank` is the
/// channel-local bank index (`rank × banks_per_rank + flat_bank`, matching
/// [`DecodedAddr::channel_bank`](crate::DecodedAddr::channel_bank)) as
/// emitted by the engine; when a [`System`](crate::System) forwards events
/// from channel `c` it rebases them with
/// [`with_bank_offset`](MemEvent::with_bank_offset) so observers see
/// system-global bank indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemEvent {
    /// A demand activation: `row` opened in `bank` (a row miss).
    Act {
        /// Channel-local bank index.
        bank: u32,
        /// Activated row.
        row: u32,
        /// When the bank began the activation.
        at_ps: u64,
    },
    /// A precharge closing `bank`'s open row (row conflict, REF boundary,
    /// or a mitigation command behind the ACT).
    Pre {
        /// Channel-local bank index.
        bank: u32,
        /// When the row buffer closed.
        at_ps: u64,
    },
    /// An all-bank REF boundary this bank crossed; `ref_index` counts
    /// boundaries from t = 0 (the boundary at `k·tREFI` has index `k`).
    Ref {
        /// Channel-local bank index.
        bank: u32,
        /// 1-based REF boundary index (`at_ps / tREFI`).
        ref_index: u64,
        /// The boundary time (`ref_index × tREFI`).
        at_ps: u64,
    },
    /// An RFM command blocking `bank` (MINT+RFM threshold crossing).
    Rfm {
        /// Channel-local bank index.
        bank: u32,
        /// When the command was issued.
        at_ps: u64,
    },
    /// A directed-RFM command blocking `bank` (MC-PARA sample or Graphene
    /// threshold crossing).
    Drfm {
        /// Channel-local bank index.
        bank: u32,
        /// When the command was issued.
        at_ps: u64,
    },
    /// One victim-refresh activation performed as part of a mitigation:
    /// `row` was refreshed (clearing its disturbance) — and, being an
    /// activation, it silently hammers *its* neighbours.
    MitigativeRefresh {
        /// Channel-local bank index.
        bank: u32,
        /// The refreshed victim row.
        row: u32,
        /// When the mitigation fired.
        at_ps: u64,
    },
}

impl MemEvent {
    /// The bank the event happened on (channel-local as emitted; global
    /// after [`with_bank_offset`](Self::with_bank_offset)).
    #[must_use]
    pub fn bank(&self) -> u32 {
        match *self {
            MemEvent::Act { bank, .. }
            | MemEvent::Pre { bank, .. }
            | MemEvent::Ref { bank, .. }
            | MemEvent::Rfm { bank, .. }
            | MemEvent::Drfm { bank, .. }
            | MemEvent::MitigativeRefresh { bank, .. } => bank,
        }
    }

    /// The same event with its bank index shifted up by `offset` — how a
    /// multi-channel [`System`](crate::System) rebases a channel-local
    /// event stream into the system-global bank space (offset
    /// `channel × banks_per_channel`; an offset of 0 is the identity, so
    /// single-channel observers are untouched).
    #[must_use]
    pub fn with_bank_offset(self, offset: u32) -> Self {
        let mut out = self;
        match &mut out {
            MemEvent::Act { bank, .. }
            | MemEvent::Pre { bank, .. }
            | MemEvent::Ref { bank, .. }
            | MemEvent::Rfm { bank, .. }
            | MemEvent::Drfm { bank, .. }
            | MemEvent::MitigativeRefresh { bank, .. } => *bank += offset,
        }
        out
    }

    /// The event's timestamp (ps).
    #[must_use]
    pub fn at_ps(&self) -> u64 {
        match *self {
            MemEvent::Act { at_ps, .. }
            | MemEvent::Pre { at_ps, .. }
            | MemEvent::Ref { at_ps, .. }
            | MemEvent::Rfm { at_ps, .. }
            | MemEvent::Drfm { at_ps, .. }
            | MemEvent::MitigativeRefresh { at_ps, .. } => at_ps,
        }
    }

    /// Fixed-width checkpoint encoding: `[tag, bank, aux, at_ps]`, where
    /// `aux` is the row (`Act`/`MitigativeRefresh`), the REF boundary index
    /// (`Ref`), or zero. The inverse is [`decode_words`](Self::decode_words).
    #[must_use]
    pub fn encode_words(&self) -> [u64; 4] {
        match *self {
            MemEvent::Act { bank, row, at_ps } => [0, u64::from(bank), u64::from(row), at_ps],
            MemEvent::Pre { bank, at_ps } => [1, u64::from(bank), 0, at_ps],
            MemEvent::Ref {
                bank,
                ref_index,
                at_ps,
            } => [2, u64::from(bank), ref_index, at_ps],
            MemEvent::Rfm { bank, at_ps } => [3, u64::from(bank), 0, at_ps],
            MemEvent::Drfm { bank, at_ps } => [4, u64::from(bank), 0, at_ps],
            MemEvent::MitigativeRefresh { bank, row, at_ps } => {
                [5, u64::from(bank), u64::from(row), at_ps]
            }
        }
    }

    /// Decodes the `[tag, bank, aux, at_ps]` encoding of
    /// [`encode_words`](Self::encode_words).
    ///
    /// # Errors
    ///
    /// Errors on an unknown tag or a bank/row that no longer fits in `u32`.
    pub fn decode_words(words: [u64; 4]) -> Result<Self, String> {
        let [tag, bank, aux, at_ps] = words;
        let bank = u32::try_from(bank).map_err(|_| format!("event bank {bank} exceeds u32"))?;
        let row = || u32::try_from(aux).map_err(|_| format!("event row {aux} exceeds u32"));
        Ok(match tag {
            0 => MemEvent::Act {
                bank,
                row: row()?,
                at_ps,
            },
            1 => MemEvent::Pre { bank, at_ps },
            2 => MemEvent::Ref {
                bank,
                ref_index: aux,
                at_ps,
            },
            3 => MemEvent::Rfm { bank, at_ps },
            4 => MemEvent::Drfm { bank, at_ps },
            5 => MemEvent::MitigativeRefresh {
                bank,
                row: row()?,
                at_ps,
            },
            other => return Err(format!("unknown event tag {other}")),
        })
    }
}

/// Anything that wants to ride the channel's command stream: security
/// oracles, command-trace dumpers, custom statistics.
///
/// Events arrive in service order (the order the engine executed them),
/// which is deterministic for a given run — observers need no
/// synchronisation and can keep exact state.
pub trait ChannelObserver {
    /// One executed device command.
    fn on_event(&mut self, event: &MemEvent);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_cover_every_variant() {
        let events = [
            MemEvent::Act {
                bank: 1,
                row: 2,
                at_ps: 10,
            },
            MemEvent::Pre { bank: 2, at_ps: 20 },
            MemEvent::Ref {
                bank: 3,
                ref_index: 1,
                at_ps: 30,
            },
            MemEvent::Rfm { bank: 4, at_ps: 40 },
            MemEvent::Drfm { bank: 5, at_ps: 50 },
            MemEvent::MitigativeRefresh {
                bank: 6,
                row: 9,
                at_ps: 60,
            },
        ];
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.bank(), i as u32 + 1);
            assert_eq!(e.at_ps(), (i as u64 + 1) * 10);
        }
    }

    #[test]
    fn bank_offset_shifts_every_variant_and_zero_is_identity() {
        let events = [
            MemEvent::Act {
                bank: 1,
                row: 2,
                at_ps: 10,
            },
            MemEvent::Pre { bank: 2, at_ps: 20 },
            MemEvent::Ref {
                bank: 3,
                ref_index: 1,
                at_ps: 30,
            },
            MemEvent::Rfm { bank: 4, at_ps: 40 },
            MemEvent::Drfm { bank: 5, at_ps: 50 },
            MemEvent::MitigativeRefresh {
                bank: 6,
                row: 9,
                at_ps: 60,
            },
        ];
        for e in events {
            assert_eq!(e.with_bank_offset(0), e);
            let shifted = e.with_bank_offset(64);
            assert_eq!(shifted.bank(), e.bank() + 64);
            assert_eq!(shifted.at_ps(), e.at_ps(), "only the bank moves");
        }
    }

    #[test]
    fn word_codec_round_trips_every_variant() {
        let events = [
            MemEvent::Act {
                bank: 1,
                row: 2,
                at_ps: 10,
            },
            MemEvent::Pre { bank: 2, at_ps: 20 },
            MemEvent::Ref {
                bank: 3,
                ref_index: 7,
                at_ps: 30,
            },
            MemEvent::Rfm { bank: 4, at_ps: 40 },
            MemEvent::Drfm { bank: 5, at_ps: 50 },
            MemEvent::MitigativeRefresh {
                bank: 6,
                row: 9,
                at_ps: 60,
            },
        ];
        for e in events {
            assert_eq!(MemEvent::decode_words(e.encode_words()), Ok(e));
        }
        assert!(MemEvent::decode_words([6, 0, 0, 0])
            .unwrap_err()
            .contains("unknown event tag"));
        assert!(MemEvent::decode_words([0, u64::MAX, 0, 0])
            .unwrap_err()
            .contains("exceeds u32"));
    }
}
