//! End-to-end workload runs: cores + controller → normalized performance.

use crate::config::{MitigationScheme, SystemConfig};
use crate::controller::{MemoryController, SimResult};
use crate::workload::{CoreStream, WorkloadSpec};
use mint_rng::derive_seed;

/// Outcome of running one multi-core workload under one scheme.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NormalizedPerf {
    /// Total simulated time (ps) — lower is faster.
    pub duration_ps: u64,
    /// Controller statistics.
    pub result: SimResult,
    /// Weighted speedup vs. a reference duration (1.0 = baseline); filled
    /// by [`normalize`](NormalizedPerf::normalize).
    pub normalized: f64,
}

impl NormalizedPerf {
    /// Normalizes against the baseline run of the same workload.
    #[must_use]
    pub fn normalize(mut self, baseline: &NormalizedPerf) -> Self {
        self.normalized = baseline.duration_ps as f64 / self.duration_ps as f64;
        self
    }
}

/// Runs a 4-core workload (one [`WorkloadSpec`] per core) for
/// `requests_per_core` LLC misses per core under the given scheme.
///
/// Each core is a blocking-miss model with an MLP overlap factor: after
/// issuing a miss at time `t` that completes at `c`, the core becomes ready
/// for its next miss at `t + think + (c − t)/MLP`. The per-core streams and
/// the controller are seeded deterministically from `seed`.
///
/// # Panics
///
/// Panics if `specs.len() != cfg.cores as usize` or
/// `requests_per_core == 0`.
#[must_use]
pub fn run_workload(
    cfg: &SystemConfig,
    scheme: MitigationScheme,
    specs: &[WorkloadSpec],
    requests_per_core: u32,
    seed: u64,
) -> NormalizedPerf {
    assert_eq!(
        specs.len(),
        cfg.cores as usize,
        "one workload spec per core"
    );
    assert!(requests_per_core > 0, "need at least one request per core");
    let mut controller = MemoryController::new(*cfg, scheme, derive_seed(seed, 0xC0));
    let cycle_ps = cfg.core_cycle_ps();
    let mlp = u64::from(cfg.core_mlp);

    struct CoreCtx {
        stream: CoreStream,
        ready_at: u64,
        remaining: u32,
        finish: u64,
    }
    let mut cores: Vec<CoreCtx> = specs
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            // Compute time between misses: instructions/miss ÷ IPC, in ps.
            let think_ps =
                (spec.instructions_per_miss() / f64::from(cfg.core_ipc) * cycle_ps as f64) as u64;
            CoreCtx {
                stream: CoreStream::new(
                    *spec,
                    cfg.banks,
                    cfg.rows_per_bank,
                    think_ps,
                    derive_seed(seed, i as u64),
                ),
                ready_at: 0,
                remaining: requests_per_core,
                finish: 0,
            }
        })
        .collect();

    // Event loop: always advance the earliest-ready core.
    while let Some(idx) = cores
        .iter()
        .enumerate()
        .filter(|(_, c)| c.remaining > 0)
        .min_by_key(|(_, c)| c.ready_at)
        .map(|(i, _)| i)
    {
        let core = &mut cores[idx];
        let req = core.stream.next_request();
        let issue = core.ready_at + req.think_time_ps;
        let completion = controller.service(req, issue);
        let stall = (completion - issue) / mlp.max(1);
        core.ready_at = issue + stall;
        core.remaining -= 1;
        if core.remaining == 0 {
            core.finish = completion;
        }
    }

    let duration = cores.iter().map(|c| c.finish).max().unwrap_or(0);
    controller.finish(duration);
    NormalizedPerf {
        duration_ps: duration,
        result: controller.result(),
        normalized: 1.0,
    }
}

/// Runs every `(workload, scheme)` pair through the `mint-exp` sweep
/// harness and returns, per workload, the per-scheme results normalized
/// against the **first** scheme in `schemes` (the baseline) for that
/// workload.
///
/// Workload `w` always runs with `seeds[w]` regardless of scheme, so every
/// scheme faces identical traffic and the baseline normalizes to exactly
/// 1.0. Cells are independent seeded runs, so the grid parallelises freely;
/// results are identical for any worker count.
///
/// # Panics
///
/// Panics if `schemes` is empty or `workloads.len() != seeds.len()` (the
/// per-cell panics of [`run_workload`] also apply).
#[must_use]
pub fn run_workload_grid<W>(
    cfg: &SystemConfig,
    schemes: &[MitigationScheme],
    workloads: &[W],
    requests_per_core: u32,
    seeds: &[u64],
) -> Vec<Vec<NormalizedPerf>>
where
    W: AsRef<[WorkloadSpec]> + Sync,
{
    assert!(!schemes.is_empty(), "need at least one scheme");
    assert_eq!(workloads.len(), seeds.len(), "one seed per workload");
    let cells: Vec<(usize, usize)> = (0..workloads.len())
        .flat_map(|w| (0..schemes.len()).map(move |s| (w, s)))
        .collect();
    let flat = mint_exp::par_map(&cells, |_, &(w, s)| {
        run_workload(
            cfg,
            schemes[s],
            workloads[w].as_ref(),
            requests_per_core,
            seeds[w],
        )
    });
    flat.chunks(schemes.len())
        .map(|row| {
            let base = row[0];
            row.iter().map(|cell| cell.normalize(&base)).collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::spec_rate_workloads;

    fn rate4(spec: WorkloadSpec) -> Vec<WorkloadSpec> {
        vec![spec; 4]
    }

    fn run(scheme: MitigationScheme, spec: WorkloadSpec) -> NormalizedPerf {
        run_workload(&SystemConfig::table6(), scheme, &rate4(spec), 30_000, 11)
    }

    fn lbm() -> WorkloadSpec {
        spec_rate_workloads()
            .into_iter()
            .find(|w| w.name == "lbm")
            .unwrap()
    }

    #[test]
    fn mint_has_zero_slowdown() {
        let spec = lbm();
        let base = run(MitigationScheme::Baseline, spec);
        let mint = run(MitigationScheme::Mint, spec).normalize(&base);
        assert!(
            (mint.normalized - 1.0).abs() < 1e-9,
            "MINT normalized perf {}",
            mint.normalized
        );
        assert!(mint.result.mitigative_acts > 0);
    }

    #[test]
    fn rfm16_slowdown_is_small() {
        // With the per-REF RAA decrement, RFM16 only fires on banks that
        // exceed 16 ACTs per tREFI — slowdown stays within a few percent
        // even for the most memory-intensive workload (paper avg: 1.6%).
        let spec = lbm();
        let base = run(MitigationScheme::Baseline, spec);
        let rfm = run(MitigationScheme::MintRfm { rfm_th: 16 }, spec).normalize(&base);
        assert!(rfm.normalized <= 1.0);
        assert!(
            rfm.normalized > 0.90,
            "RFM16 slowdown should be a few percent, got {}",
            rfm.normalized
        );
    }

    #[test]
    fn rfm32_costs_less_than_rfm16() {
        let spec = lbm();
        let base = run(MitigationScheme::Baseline, spec);
        let rfm32 = run(MitigationScheme::MintRfm { rfm_th: 32 }, spec).normalize(&base);
        let rfm16 = run(MitigationScheme::MintRfm { rfm_th: 16 }, spec).normalize(&base);
        assert!(
            rfm32.normalized >= rfm16.normalized,
            "RFM32 {} vs RFM16 {}",
            rfm32.normalized,
            rfm16.normalized
        );
    }

    #[test]
    fn mc_para_is_worse_than_mint_rfm() {
        let spec = lbm();
        let base = run(MitigationScheme::Baseline, spec);
        let rfm16 = run(MitigationScheme::MintRfm { rfm_th: 16 }, spec).normalize(&base);
        let para = run(MitigationScheme::McPara { p: 1.0 / 64.0 }, spec).normalize(&base);
        assert!(
            para.normalized < rfm16.normalized - 0.005,
            "MC-PARA {} should clearly lose to MINT+RFM16 {}",
            para.normalized,
            rfm16.normalized
        );
    }

    #[test]
    fn compute_bound_workload_barely_notices() {
        let povray = spec_rate_workloads()
            .into_iter()
            .find(|w| w.name == "povray")
            .unwrap();
        let base = run(MitigationScheme::Baseline, povray);
        let para = run(MitigationScheme::McPara { p: 1.0 / 64.0 }, povray).normalize(&base);
        assert!(
            para.normalized > 0.97,
            "compute-bound slowdown should be tiny, got {}",
            para.normalized
        );
    }

    #[test]
    fn determinism() {
        let spec = lbm();
        let a = run(MitigationScheme::Mint, spec);
        let b = run(MitigationScheme::Mint, spec);
        assert_eq!(a.duration_ps, b.duration_ps);
        assert_eq!(a.result, b.result);
    }

    #[test]
    fn grid_matches_individual_runs() {
        let cfg = SystemConfig::table6();
        let schemes = [
            MitigationScheme::Baseline,
            MitigationScheme::Mint,
            MitigationScheme::MintRfm { rfm_th: 16 },
        ];
        let workloads: Vec<Vec<WorkloadSpec>> = vec![rate4(lbm())];
        let grid = run_workload_grid(&cfg, &schemes, &workloads, 10_000, &[44]);
        assert_eq!(grid.len(), 1);
        assert_eq!(grid[0].len(), 3);
        assert!(
            (grid[0][0].normalized - 1.0).abs() < 1e-12,
            "baseline is 1.0"
        );
        let base = run_workload(&cfg, schemes[0], &workloads[0], 10_000, 44);
        let rfm = run_workload(&cfg, schemes[2], &workloads[0], 10_000, 44).normalize(&base);
        assert_eq!(grid[0][2].duration_ps, rfm.duration_ps);
        assert_eq!(grid[0][2].normalized.to_bits(), rfm.normalized.to_bits());
    }

    #[test]
    #[should_panic(expected = "one seed per workload")]
    fn grid_seed_mismatch_rejected() {
        let _ = run_workload_grid(
            &SystemConfig::table6(),
            &[MitigationScheme::Baseline],
            &[rate4(lbm())],
            10,
            &[1, 2],
        );
    }

    #[test]
    #[should_panic(expected = "one workload spec per core")]
    fn wrong_core_count_rejected() {
        let _ = run_workload(
            &SystemConfig::table6(),
            MitigationScheme::Baseline,
            &[lbm()],
            10,
            1,
        );
    }
}
