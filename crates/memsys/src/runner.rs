//! End-to-end workload runs: request sources + channel → normalized
//! performance.
//!
//! The runner owns the frontend half of the pipeline: per-core
//! [`RequestSource`]s (synthetic or trace-driven) issue into the bounded
//! transaction queue of a [`Channel`], which schedules them per its
//! [`SchedulePolicy`] under the inter-bank timing constraints. Admission
//! and service interleave deterministically: a request is admitted
//! whenever it arrives no later than the channel's next scheduling
//! decision (so the scheduler always arbitrates over every request that
//! has actually arrived), otherwise the channel serves.

use crate::address::AddressMapping;
use crate::config::{MitigationScheme, SystemConfig};
use crate::controller::SimResult;
use crate::events::ChannelObserver;
use crate::sched::{Channel, SchedulePolicy};
use crate::workload::{CoreStream, Request, RequestSource, TraceEntry, TraceSource, WorkloadSpec};
use mint_rng::derive_seed;

/// Outcome of running one multi-core workload under one scheme.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NormalizedPerf {
    /// Total simulated time (ps) — lower is faster.
    pub duration_ps: u64,
    /// Controller statistics.
    pub result: SimResult,
    /// Weighted speedup vs. a reference duration (1.0 = baseline); filled
    /// by [`normalize`](NormalizedPerf::normalize).
    pub normalized: f64,
}

impl NormalizedPerf {
    /// Normalizes against the baseline run of the same workload.
    #[must_use]
    pub fn normalize(mut self, baseline: &NormalizedPerf) -> Self {
        self.normalized = baseline.duration_ps as f64 / self.duration_ps as f64;
        self
    }
}

/// What one core did over an observed run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreOutcome {
    /// Completion time of the core's last serviced request (0 if it never
    /// issued).
    pub finish_ps: u64,
    /// Requests the channel serviced for this core.
    pub requests: u64,
}

/// Outcome of [`run_sources_observed`]: the aggregate perf plus per-core
/// breakdown (which cores an attacker starved, when each benign stream
/// finished).
#[derive(Debug, Clone, PartialEq)]
pub struct ObservedRun {
    /// The aggregate result (same shape as every other runner entry
    /// point).
    pub perf: NormalizedPerf,
    /// One outcome per request source, in source order.
    pub cores: Vec<CoreOutcome>,
}

/// Compute time between LLC misses for `spec` on a core of `cfg`:
/// instructions-per-miss ÷ IPC, in ps, rounded to nearest (the old
/// truncating cast shaved up to a full cycle off every gap, biasing
/// compute-bound workloads fast).
#[must_use]
pub fn think_time_ps(cfg: &SystemConfig, spec: &WorkloadSpec) -> u64 {
    let exact = spec.instructions_per_miss() / f64::from(cfg.core_ipc) * cfg.core_cycle_ps() as f64;
    exact.round() as u64
}

struct CoreCtx<'a> {
    source: Box<dyn RequestSource + 'a>,
    /// Next request and its issue time, once the core is ready to send it.
    pending: Option<(Request, u64)>,
    /// When the core front-end can work on its next request.
    ready_at: u64,
    /// Requests still allowed (None = until the source runs dry).
    remaining: Option<u32>,
    /// Completion time of the core's last serviced request.
    finish: u64,
    /// Requests the channel serviced for this core.
    serviced: u64,
}

impl CoreCtx<'_> {
    /// Pulls the next request out of the source (respecting the budget)
    /// and stamps its issue time.
    fn fetch(&mut self) {
        debug_assert!(self.pending.is_none());
        match &mut self.remaining {
            Some(0) => return,
            Some(n) => *n -= 1,
            None => {}
        }
        if let Some(req) = self.source.next_request_at(self.ready_at) {
            let issue = self.ready_at + req.think_time_ps;
            self.pending = Some((req, issue));
        }
    }
}

/// Drives `sources` (one per core) through a fresh channel until every
/// source is exhausted or has issued its per-core budget; drained command
/// events go to `observer` (if any) after every scheduling decision.
#[allow(clippy::too_many_arguments)]
fn drive(
    cfg: &SystemConfig,
    scheme: MitigationScheme,
    policy: SchedulePolicy,
    mapping: AddressMapping,
    sources: Vec<Box<dyn RequestSource + '_>>,
    per_core_budget: Option<u32>,
    seed: u64,
    mut observer: Option<&mut dyn ChannelObserver>,
) -> ObservedRun {
    let mut channel = Channel::new(*cfg, scheme, policy, mapping, derive_seed(seed, 0xC0));
    if observer.is_some() {
        channel.enable_event_log();
    }
    let mlp = u64::from(cfg.core_mlp).max(1);
    let mut cores: Vec<CoreCtx> = sources
        .into_iter()
        .map(|source| {
            let mut c = CoreCtx {
                source,
                pending: None,
                ready_at: 0,
                remaining: per_core_budget,
                finish: 0,
                serviced: 0,
            };
            c.fetch();
            c
        })
        .collect();

    loop {
        // The earliest core ready to issue (ties: lowest core index).
        let next_arrival = cores
            .iter()
            .enumerate()
            .filter_map(|(i, c)| c.pending.as_ref().map(|&(_, issue)| (issue, i)))
            .min();
        let next_start = channel.next_start_ps();
        match (next_arrival, next_start) {
            (None, None) => break,
            // Admit when the next request arrives no later than the next
            // scheduling decision — the scheduler must see all arrived
            // traffic before committing a command.
            (Some((issue, i)), start)
                if channel.has_room() && start.map_or(true, |s| issue <= s) =>
            {
                let (req, issue) = cores[i].pending.take().expect("pending checked");
                channel.push(req, i as u32, issue);
            }
            _ => {
                let c = channel.service_next().expect("queue is non-empty");
                if let Some(obs) = observer.as_deref_mut() {
                    for e in channel.drain_events() {
                        obs.on_event(&e);
                    }
                }
                let core = &mut cores[c.core as usize];
                // Blocking-miss core with an MLP overlap factor: the core
                // absorbs 1/MLP of the memory stall.
                let stall = (c.completion_ps - c.arrival_ps) / mlp;
                core.ready_at = c.arrival_ps + stall;
                core.finish = core.finish.max(c.completion_ps);
                core.serviced += 1;
                core.fetch();
            }
        }
    }

    let duration = cores.iter().map(|c| c.finish).max().unwrap_or(0);
    channel.finish(duration);
    ObservedRun {
        perf: NormalizedPerf {
            duration_ps: duration,
            result: channel.result(),
            normalized: 1.0,
        },
        cores: cores
            .iter()
            .map(|c| CoreOutcome {
                finish_ps: c.finish,
                requests: c.serviced,
            })
            .collect(),
    }
}

/// Drives arbitrary [`RequestSource`]s (one per core, any count) through a
/// fresh channel, optionally feeding every executed device command to a
/// [`ChannelObserver`] — the entry point for attacker/victim co-runs and
/// ground-truth security oracles (`mint-redteam`).
///
/// `per_core_budget` caps each source's requests (`None` = run every
/// source dry; at least one source must be finite then). Events reach the
/// observer in service order, so runs are bit-deterministic for a given
/// `(cfg, scheme, policy, mapping, sources, seed)` regardless of how the
/// surrounding sweep is parallelised.
#[allow(clippy::too_many_arguments)]
#[must_use]
pub fn run_sources_observed(
    cfg: &SystemConfig,
    scheme: MitigationScheme,
    policy: SchedulePolicy,
    mapping: AddressMapping,
    sources: Vec<Box<dyn RequestSource + '_>>,
    per_core_budget: Option<u32>,
    seed: u64,
    observer: Option<&mut dyn ChannelObserver>,
) -> ObservedRun {
    drive(
        cfg,
        scheme,
        policy,
        mapping,
        sources,
        per_core_budget,
        seed,
        observer,
    )
}

/// Runs a 4-core workload (one [`WorkloadSpec`] per core) for
/// `requests_per_core` LLC misses per core under the given scheme,
/// scheduling policy and address mapping.
///
/// The per-core streams and the channel are seeded deterministically from
/// `seed`.
///
/// # Panics
///
/// Panics if `specs.len() != cfg.cores as usize` or
/// `requests_per_core == 0`.
#[must_use]
pub fn run_workload_with(
    cfg: &SystemConfig,
    scheme: MitigationScheme,
    policy: SchedulePolicy,
    mapping: AddressMapping,
    specs: &[WorkloadSpec],
    requests_per_core: u32,
    seed: u64,
) -> NormalizedPerf {
    assert_eq!(
        specs.len(),
        cfg.cores as usize,
        "one workload spec per core"
    );
    assert!(requests_per_core > 0, "need at least one request per core");
    let decoder = crate::address::AddressDecoder::new(cfg, mapping);
    let sources: Vec<Box<dyn RequestSource>> = specs
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            Box::new(CoreStream::new(
                *spec,
                decoder,
                think_time_ps(cfg, spec),
                derive_seed(seed, i as u64),
            )) as Box<dyn RequestSource>
        })
        .collect();
    drive(
        cfg,
        scheme,
        policy,
        mapping,
        sources,
        Some(requests_per_core),
        seed,
        None,
    )
    .perf
}

/// [`run_workload_with`] at the production defaults (FR-FCFS, row-
/// interleaved mapping).
///
/// # Panics
///
/// Panics if `specs.len() != cfg.cores as usize` or
/// `requests_per_core == 0`.
#[must_use]
pub fn run_workload(
    cfg: &SystemConfig,
    scheme: MitigationScheme,
    specs: &[WorkloadSpec],
    requests_per_core: u32,
    seed: u64,
) -> NormalizedPerf {
    run_workload_with(
        cfg,
        scheme,
        SchedulePolicy::default(),
        AddressMapping::default(),
        specs,
        requests_per_core,
        seed,
    )
}

/// Replays a parsed trace through the channel: entries are dealt
/// round-robin across the configured cores ([`TraceSource::split`]) and
/// run to exhaustion. Replays are bit-deterministic for a given
/// `(trace, cfg, scheme, policy, mapping, seed)`.
#[must_use]
pub fn run_trace(
    cfg: &SystemConfig,
    scheme: MitigationScheme,
    policy: SchedulePolicy,
    mapping: AddressMapping,
    entries: &[TraceEntry],
    seed: u64,
) -> NormalizedPerf {
    let sources: Vec<Box<dyn RequestSource>> =
        TraceSource::split(entries, cfg.cores, cfg.core_cycle_ps())
            .into_iter()
            .map(|s| Box::new(s) as Box<dyn RequestSource>)
            .collect();
    drive(cfg, scheme, policy, mapping, sources, None, seed, None).perf
}

/// Runs every `(workload, scheme)` pair through the `mint-exp` sweep
/// harness and returns, per workload, the per-scheme results normalized
/// against the **first** scheme in `schemes` (the baseline) for that
/// workload.
///
/// Workload `w` always runs with `seeds[w]` regardless of scheme, so every
/// scheme faces identical traffic and the baseline normalizes to exactly
/// 1.0. Cells are independent seeded runs, so the grid parallelises freely;
/// results are identical for any worker count.
///
/// # Panics
///
/// Panics if `schemes` is empty or `workloads.len() != seeds.len()` (the
/// per-cell panics of [`run_workload_with`] also apply).
#[must_use]
pub fn run_workload_grid_with<W>(
    cfg: &SystemConfig,
    schemes: &[MitigationScheme],
    policy: SchedulePolicy,
    mapping: AddressMapping,
    workloads: &[W],
    requests_per_core: u32,
    seeds: &[u64],
) -> Vec<Vec<NormalizedPerf>>
where
    W: AsRef<[WorkloadSpec]> + Sync,
{
    assert!(!schemes.is_empty(), "need at least one scheme");
    assert_eq!(workloads.len(), seeds.len(), "one seed per workload");
    let cells: Vec<(usize, usize)> = (0..workloads.len())
        .flat_map(|w| (0..schemes.len()).map(move |s| (w, s)))
        .collect();
    let flat = mint_exp::par_map(&cells, |_, &(w, s)| {
        run_workload_with(
            cfg,
            schemes[s],
            policy,
            mapping,
            workloads[w].as_ref(),
            requests_per_core,
            seeds[w],
        )
    });
    flat.chunks(schemes.len())
        .map(|row| {
            let base = row[0];
            row.iter().map(|cell| cell.normalize(&base)).collect()
        })
        .collect()
}

/// [`run_workload_grid_with`] at the production defaults (FR-FCFS,
/// row-interleaved mapping).
///
/// # Panics
///
/// Panics if `schemes` is empty or `workloads.len() != seeds.len()`.
#[must_use]
pub fn run_workload_grid<W>(
    cfg: &SystemConfig,
    schemes: &[MitigationScheme],
    workloads: &[W],
    requests_per_core: u32,
    seeds: &[u64],
) -> Vec<Vec<NormalizedPerf>>
where
    W: AsRef<[WorkloadSpec]> + Sync,
{
    run_workload_grid_with(
        cfg,
        schemes,
        SchedulePolicy::default(),
        AddressMapping::default(),
        workloads,
        requests_per_core,
        seeds,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{parse_trace, spec_rate_workloads};

    fn rate4(spec: WorkloadSpec) -> Vec<WorkloadSpec> {
        vec![spec; 4]
    }

    fn run(scheme: MitigationScheme, spec: WorkloadSpec) -> NormalizedPerf {
        run_workload(&SystemConfig::table6(), scheme, &rate4(spec), 30_000, 11)
    }

    fn lbm() -> WorkloadSpec {
        spec_rate_workloads()
            .into_iter()
            .find(|w| w.name == "lbm")
            .unwrap()
    }

    #[test]
    fn think_time_rounds_to_nearest() {
        let cfg = SystemConfig::table6();
        let mk = |mpki: f64| WorkloadSpec {
            name: "t",
            mpki,
            row_buffer_locality: 0.5,
            read_fraction: 0.5,
        };
        // mcf at Table VI: 1000/22 instr/miss ÷ 3 IPC × 333 ps/cycle
        // = 5045.45… ps → 5045 (truncation agreed here).
        assert_eq!(think_time_ps(&cfg, &mk(22.0)), 5045);
        // povray-ish: 1000/0.3 ÷ 3 × 333 lands at 369_999.999…94 in f64 —
        // the old truncating cast shaved it to 369_999; round-to-nearest
        // restores the exact 370_000.
        assert_eq!(think_time_ps(&cfg, &mk(0.3)), 370_000);
        // 2 instr/miss ÷ 3 × 333 = 221.999…97 in f64: truncation said 221,
        // nearest says 222.
        assert_eq!(think_time_ps(&cfg, &mk(500.0)), 222);
        // The exact .5 boundary (representable: 1/2 instr-per-cycle ratio
        // × odd 333 = 166.5): rounds *up* to 167 per round-half-away-from-
        // zero, where truncation gave 166.
        let ipc2 = SystemConfig { core_ipc: 2, ..cfg };
        assert_eq!(think_time_ps(&ipc2, &mk(1000.0)), 167);
    }

    #[test]
    fn mint_has_zero_slowdown() {
        let spec = lbm();
        let base = run(MitigationScheme::Baseline, spec);
        let mint = run(MitigationScheme::Mint, spec).normalize(&base);
        assert!(
            (mint.normalized - 1.0).abs() < 1e-9,
            "MINT normalized perf {}",
            mint.normalized
        );
        assert!(mint.result.mitigative_acts > 0);
    }

    #[test]
    fn rfm16_slowdown_is_small() {
        // With the per-REF RAA decrement, RFM16 only fires on banks that
        // exceed 16 ACTs per tREFI — slowdown stays within a few percent
        // even for the most memory-intensive workload (paper avg: 1.6%).
        let spec = lbm();
        let base = run(MitigationScheme::Baseline, spec);
        let rfm = run(MitigationScheme::MintRfm { rfm_th: 16 }, spec).normalize(&base);
        assert!(rfm.normalized <= 1.0);
        assert!(
            rfm.normalized > 0.90,
            "RFM16 slowdown should be a few percent, got {}",
            rfm.normalized
        );
    }

    #[test]
    fn rfm32_costs_less_than_rfm16() {
        let spec = lbm();
        let base = run(MitigationScheme::Baseline, spec);
        let rfm32 = run(MitigationScheme::MintRfm { rfm_th: 32 }, spec).normalize(&base);
        let rfm16 = run(MitigationScheme::MintRfm { rfm_th: 16 }, spec).normalize(&base);
        assert!(
            rfm32.normalized >= rfm16.normalized,
            "RFM32 {} vs RFM16 {}",
            rfm32.normalized,
            rfm16.normalized
        );
    }

    #[test]
    fn mc_para_is_worse_than_mint_rfm() {
        let spec = lbm();
        let base = run(MitigationScheme::Baseline, spec);
        let rfm16 = run(MitigationScheme::MintRfm { rfm_th: 16 }, spec).normalize(&base);
        let para = run(MitigationScheme::McPara { p: 1.0 / 64.0 }, spec).normalize(&base);
        assert!(
            para.normalized < rfm16.normalized - 0.005,
            "MC-PARA {} should clearly lose to MINT+RFM16 {}",
            para.normalized,
            rfm16.normalized
        );
    }

    #[test]
    fn compute_bound_workload_barely_notices() {
        let povray = spec_rate_workloads()
            .into_iter()
            .find(|w| w.name == "povray")
            .unwrap();
        let base = run(MitigationScheme::Baseline, povray);
        let para = run(MitigationScheme::McPara { p: 1.0 / 64.0 }, povray).normalize(&base);
        assert!(
            para.normalized > 0.97,
            "compute-bound slowdown should be tiny, got {}",
            para.normalized
        );
    }

    #[test]
    fn frfcfs_beats_fcfs_on_row_hit_rate() {
        // A high-locality workload keeps every core streaming inside one
        // row; whenever two cores collide on a bank, FCFS ping-pongs the
        // row buffer while FR-FCFS batches each stream's hits. The
        // scheduler must turn that into a strictly higher hit rate.
        let cfg = SystemConfig::table6();
        let spec = lbm(); // 0.85 row-buffer locality
        let specs = rate4(spec);
        let fcfs = run_workload_with(
            &cfg,
            MitigationScheme::Baseline,
            SchedulePolicy::Fcfs,
            AddressMapping::default(),
            &specs,
            20_000,
            13,
        );
        let frfcfs = run_workload_with(
            &cfg,
            MitigationScheme::Baseline,
            SchedulePolicy::frfcfs(),
            AddressMapping::default(),
            &specs,
            20_000,
            13,
        );
        assert!(
            frfcfs.result.row_hit_rate() > fcfs.result.row_hit_rate(),
            "FR-FCFS {} must beat FCFS {}",
            frfcfs.result.row_hit_rate(),
            fcfs.result.row_hit_rate()
        );
    }

    #[test]
    fn determinism() {
        let spec = lbm();
        let a = run(MitigationScheme::Mint, spec);
        let b = run(MitigationScheme::Mint, spec);
        assert_eq!(a.duration_ps, b.duration_ps);
        assert_eq!(a.result, b.result);
    }

    #[test]
    fn trace_replay_is_deterministic_and_complete() {
        let text: String = (0..50)
            .map(|i| {
                format!(
                    "{} {} 0x{:x}\n",
                    i % 7,
                    if i % 3 == 0 { 'W' } else { 'R' },
                    i * 64
                )
            })
            .collect();
        let entries = parse_trace(&text).unwrap();
        let cfg = SystemConfig::table6();
        let run = || {
            run_trace(
                &cfg,
                MitigationScheme::Mint,
                SchedulePolicy::frfcfs(),
                AddressMapping::default(),
                &entries,
                3,
            )
        };
        let a = run();
        let b = run();
        assert_eq!(a.duration_ps, b.duration_ps);
        assert_eq!(a.result, b.result);
        assert_eq!(a.result.requests, 50, "every trace entry is serviced");
        assert_eq!(a.result.writes, 17);
    }

    #[test]
    fn grid_matches_individual_runs() {
        let cfg = SystemConfig::table6();
        let schemes = [
            MitigationScheme::Baseline,
            MitigationScheme::Mint,
            MitigationScheme::MintRfm { rfm_th: 16 },
        ];
        let workloads: Vec<Vec<WorkloadSpec>> = vec![rate4(lbm())];
        let grid = run_workload_grid(&cfg, &schemes, &workloads, 10_000, &[44]);
        assert_eq!(grid.len(), 1);
        assert_eq!(grid[0].len(), 3);
        assert!(
            (grid[0][0].normalized - 1.0).abs() < 1e-12,
            "baseline is 1.0"
        );
        let base = run_workload(&cfg, schemes[0], &workloads[0], 10_000, 44);
        let rfm = run_workload(&cfg, schemes[2], &workloads[0], 10_000, 44).normalize(&base);
        assert_eq!(grid[0][2].duration_ps, rfm.duration_ps);
        assert_eq!(grid[0][2].normalized.to_bits(), rfm.normalized.to_bits());
    }

    #[test]
    #[should_panic(expected = "one seed per workload")]
    fn grid_seed_mismatch_rejected() {
        let _ = run_workload_grid(
            &SystemConfig::table6(),
            &[MitigationScheme::Baseline],
            &[rate4(lbm())],
            10,
            &[1, 2],
        );
    }

    #[test]
    #[should_panic(expected = "one workload spec per core")]
    fn wrong_core_count_rejected() {
        let _ = run_workload(
            &SystemConfig::table6(),
            MitigationScheme::Baseline,
            &[lbm()],
            10,
            1,
        );
    }
}
