//! Legacy free-function run surface — thin deprecated shims over the
//! [`Sim`] builder.
//!
//! Every entry point here predates the unified builder in [`sim`](crate::sim):
//! one free function per scenario shape, each threading config/policy/
//! mapping/observer/seed tuples slightly differently and returning a
//! different result shape. They now delegate to [`Sim`] verbatim (the
//! builder reproduces the exact seed derivations, so results are
//! byte-identical — pinned by `tests/sim_builder.rs`) and exist only so
//! out-of-tree callers get a deprecation pointer instead of a break.
//! New code should use [`Sim`] / [`ScenarioGrid`].

use crate::address::AddressMapping;
use crate::config::{MitigationScheme, SystemConfig};
use crate::events::ChannelObserver;
use crate::scenario::ScenarioGrid;
use crate::sched::SchedulePolicy;
use crate::sim::{CoreOutcome, NormalizedPerf, Sim};
use crate::workload::{RequestSource, TraceEntry, WorkloadSpec};

/// Outcome of [`run_sources_observed`]: the aggregate perf plus per-core
/// breakdown — the legacy shape [`RunReport`](crate::RunReport) unifies.
#[derive(Debug, Clone, PartialEq)]
pub struct ObservedRun {
    /// The aggregate result.
    pub perf: NormalizedPerf,
    /// One outcome per request source, in source order.
    pub cores: Vec<CoreOutcome>,
}

/// Drives arbitrary [`RequestSource`]s (one per core, any count) through a
/// fresh channel, optionally feeding every executed device command to a
/// [`ChannelObserver`].
///
/// `per_core_budget` caps each source's requests (`None` = run every
/// source dry; at least one source must be finite then).
#[deprecated(
    since = "0.2.0",
    note = "use Sim::new(cfg).sources(..).observer(..).run()"
)]
#[allow(clippy::too_many_arguments)]
#[must_use]
pub fn run_sources_observed(
    cfg: &SystemConfig,
    scheme: MitigationScheme,
    policy: SchedulePolicy,
    mapping: AddressMapping,
    sources: Vec<Box<dyn RequestSource + '_>>,
    per_core_budget: Option<u32>,
    seed: u64,
    observer: Option<&mut dyn ChannelObserver>,
) -> ObservedRun {
    let mut sim = Sim::new(*cfg)
        .scheme(scheme)
        .policy(policy)
        .mapping(mapping)
        .sources(sources)
        .per_core_budget(per_core_budget)
        .seed(seed);
    if let Some(obs) = observer {
        sim = sim.observer(obs);
    }
    let report = sim.run();
    ObservedRun {
        perf: report.perf,
        cores: report.cores,
    }
}

/// Runs a multi-core workload (one [`WorkloadSpec`] per core) for
/// `requests_per_core` LLC misses per core under the given scheme,
/// scheduling policy and address mapping.
///
/// # Panics
///
/// Panics if `specs.len() != cfg.cores as usize` or
/// `requests_per_core == 0`.
#[deprecated(since = "0.2.0", note = "use Sim::new(cfg).workload(..).run()")]
#[must_use]
pub fn run_workload_with(
    cfg: &SystemConfig,
    scheme: MitigationScheme,
    policy: SchedulePolicy,
    mapping: AddressMapping,
    specs: &[WorkloadSpec],
    requests_per_core: u32,
    seed: u64,
) -> NormalizedPerf {
    Sim::new(*cfg)
        .scheme(scheme)
        .policy(policy)
        .mapping(mapping)
        .workload(specs, requests_per_core)
        .seed(seed)
        .run()
        .perf
}

/// [`run_workload_with`] at the production defaults (FR-FCFS, row-
/// interleaved mapping).
///
/// # Panics
///
/// Panics if `specs.len() != cfg.cores as usize` or
/// `requests_per_core == 0`.
#[deprecated(since = "0.2.0", note = "use Sim::new(cfg).workload(..).run()")]
#[must_use]
pub fn run_workload(
    cfg: &SystemConfig,
    scheme: MitigationScheme,
    specs: &[WorkloadSpec],
    requests_per_core: u32,
    seed: u64,
) -> NormalizedPerf {
    Sim::new(*cfg)
        .scheme(scheme)
        .workload(specs, requests_per_core)
        .seed(seed)
        .run()
        .perf
}

/// Replays a parsed trace through the channel: entries are dealt
/// round-robin across the configured cores and run to exhaustion.
#[deprecated(since = "0.2.0", note = "use Sim::new(cfg).trace(..).run()")]
#[must_use]
pub fn run_trace(
    cfg: &SystemConfig,
    scheme: MitigationScheme,
    policy: SchedulePolicy,
    mapping: AddressMapping,
    entries: &[TraceEntry],
    seed: u64,
) -> NormalizedPerf {
    Sim::new(*cfg)
        .scheme(scheme)
        .policy(policy)
        .mapping(mapping)
        .trace(entries)
        .seed(seed)
        .run()
        .perf
}

/// Runs every `(workload, scheme)` pair and normalizes each workload row
/// against the first scheme.
///
/// # Panics
///
/// Panics if `schemes` is empty or `workloads.len() != seeds.len()`.
#[deprecated(since = "0.2.0", note = "use ScenarioGrid")]
#[must_use]
pub fn run_workload_grid_with<W>(
    cfg: &SystemConfig,
    schemes: &[MitigationScheme],
    policy: SchedulePolicy,
    mapping: AddressMapping,
    workloads: &[W],
    requests_per_core: u32,
    seeds: &[u64],
) -> Vec<Vec<NormalizedPerf>>
where
    W: AsRef<[WorkloadSpec]> + Sync,
{
    ScenarioGrid::new(*cfg)
        .schemes(schemes)
        .policy(policy)
        .mapping(mapping)
        .workloads(workloads)
        .requests_per_core(requests_per_core)
        .seeds(seeds)
        .run()
}

/// [`run_workload_grid_with`] at the production defaults (FR-FCFS,
/// row-interleaved mapping).
///
/// # Panics
///
/// Panics if `schemes` is empty or `workloads.len() != seeds.len()`.
#[deprecated(since = "0.2.0", note = "use ScenarioGrid")]
#[must_use]
pub fn run_workload_grid<W>(
    cfg: &SystemConfig,
    schemes: &[MitigationScheme],
    workloads: &[W],
    requests_per_core: u32,
    seeds: &[u64],
) -> Vec<Vec<NormalizedPerf>>
where
    W: AsRef<[WorkloadSpec]> + Sync,
{
    ScenarioGrid::new(*cfg)
        .schemes(schemes)
        .workloads(workloads)
        .requests_per_core(requests_per_core)
        .seeds(seeds)
        .run()
}
