//! Synthetic SPEC2017-rate-like workloads (DESIGN.md §2 substitution).
//!
//! The paper drives Gem5 with 17 SPEC2017 rate workloads and 17 mixes. We
//! cannot redistribute SPEC traces, so each workload is summarised by the
//! two parameters that determine its memory behaviour in this study — LLC
//! misses per kilo-instruction (MPKI) and row-buffer locality — plus a read
//! fraction for the energy model. The MPKI values follow published SPEC2017
//! memory characterisation studies; what matters for the reproduction is
//! the *spread* (memory-bound lbm/mcf/bwaves vs compute-bound povray/x264),
//! which is what makes the Fig 16/17 averages meaningful.

use mint_rng::{Rng64, SplitMix64};

/// A synthetic workload: the memory-behaviour summary of one SPEC-rate run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadSpec {
    /// Workload name (SPEC2017-style).
    pub name: &'static str,
    /// LLC misses per kilo-instruction.
    pub mpki: f64,
    /// Probability that a request hits the currently open row.
    pub row_buffer_locality: f64,
    /// Fraction of requests that are reads.
    pub read_fraction: f64,
}

impl WorkloadSpec {
    /// Instructions between consecutive LLC misses.
    #[must_use]
    pub fn instructions_per_miss(&self) -> f64 {
        1000.0 / self.mpki
    }
}

/// The 17 SPEC2017 rate workloads (paper §VIII-A).
#[must_use]
pub fn spec_rate_workloads() -> Vec<WorkloadSpec> {
    fn w(name: &'static str, mpki: f64, rbl: f64, rf: f64) -> WorkloadSpec {
        WorkloadSpec {
            name,
            mpki,
            row_buffer_locality: rbl,
            read_fraction: rf,
        }
    }
    vec![
        w("perlbench", 0.8, 0.55, 0.75),
        w("gcc", 4.9, 0.50, 0.70),
        w("bwaves", 18.5, 0.80, 0.80),
        w("mcf", 22.0, 0.25, 0.72),
        w("cactuBSSN", 9.0, 0.65, 0.68),
        w("namd", 1.5, 0.60, 0.78),
        w("parest", 3.2, 0.55, 0.74),
        w("povray", 0.3, 0.60, 0.80),
        w("lbm", 31.0, 0.85, 0.55),
        w("omnetpp", 8.5, 0.30, 0.70),
        w("wrf", 7.0, 0.70, 0.65),
        w("xalancbmk", 6.5, 0.35, 0.76),
        w("x264", 2.0, 0.65, 0.60),
        w("blender", 1.8, 0.60, 0.70),
        w("cam4", 4.5, 0.60, 0.66),
        w("fotonik3d", 15.5, 0.80, 0.77),
        w("roms", 10.2, 0.75, 0.73),
    ]
}

/// The 17 mixed workloads: deterministic 4-way combinations of the rate
/// set, one per mix index (paper §VIII-A evaluates 17 mixes).
#[must_use]
pub fn mixes() -> Vec<[WorkloadSpec; 4]> {
    let base = spec_rate_workloads();
    let n = base.len();
    let mut rng = SplitMix64::new(0x5EC_2017);
    (0..17)
        .map(|_| {
            [
                base[rng.gen_range_u64(n as u64) as usize],
                base[rng.gen_range_u64(n as u64) as usize],
                base[rng.gen_range_u64(n as u64) as usize],
                base[rng.gen_range_u64(n as u64) as usize],
            ]
        })
        .collect()
}

/// One memory request produced by a core stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Bank index.
    pub bank: u32,
    /// Row within the bank.
    pub row: u32,
    /// Whether the request is a read.
    pub is_read: bool,
    /// Core compute time (ps) preceding this request.
    pub think_time_ps: u64,
}

/// Generates the LLC-miss stream of one core running one workload.
///
/// Requests alternate between row-buffer hits (same bank+row as the
/// previous request, with probability `row_buffer_locality`) and fresh
/// rows in random banks. Think time between misses follows the workload's
/// MPKI at the configured core IPC.
#[derive(Debug, Clone)]
pub struct CoreStream {
    spec: WorkloadSpec,
    rng: SplitMix64,
    banks: u32,
    rows: u32,
    think_ps: u64,
    last: Option<(u32, u32)>,
}

impl CoreStream {
    /// Creates a stream for `spec`. `think_ps` is the compute time between
    /// misses (derived from MPKI, IPC and clock by the caller).
    #[must_use]
    pub fn new(spec: WorkloadSpec, banks: u32, rows: u32, think_ps: u64, seed: u64) -> Self {
        assert!(banks > 0 && rows > 0, "need banks and rows");
        Self {
            spec,
            rng: SplitMix64::new(seed),
            banks,
            rows,
            think_ps,
            last: None,
        }
    }

    /// The workload being generated.
    #[must_use]
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// Produces the next request.
    pub fn next_request(&mut self) -> Request {
        let reuse = self
            .last
            .filter(|_| self.rng.gen_bool(self.spec.row_buffer_locality));
        let (bank, row) = reuse.unwrap_or_else(|| {
            let bank = self.rng.gen_range_u32(self.banks);
            let row = self.rng.gen_range_u32(self.rows);
            (bank, row)
        });
        self.last = Some((bank, row));
        Request {
            bank,
            row,
            is_read: self.rng.gen_bool(self.spec.read_fraction),
            think_time_ps: self.think_ps,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seventeen_rate_workloads() {
        let w = spec_rate_workloads();
        assert_eq!(w.len(), 17);
        let names: std::collections::HashSet<_> = w.iter().map(|s| s.name).collect();
        assert_eq!(names.len(), 17, "names must be unique");
    }

    #[test]
    fn mpki_spread_covers_memory_and_compute_bound() {
        let w = spec_rate_workloads();
        let max = w.iter().map(|s| s.mpki).fold(0.0, f64::max);
        let min = w.iter().map(|s| s.mpki).fold(f64::MAX, f64::min);
        assert!(max > 25.0, "need memory-bound workloads, max {max}");
        assert!(min < 1.0, "need compute-bound workloads, min {min}");
    }

    #[test]
    fn seventeen_mixes_deterministic() {
        let a = mixes();
        let b = mixes();
        assert_eq!(a.len(), 17);
        for (x, y) in a.iter().zip(b.iter()) {
            for (p, q) in x.iter().zip(y.iter()) {
                assert_eq!(p.name, q.name);
            }
        }
    }

    #[test]
    fn stream_reuses_rows_per_locality() {
        let spec = WorkloadSpec {
            name: "test",
            mpki: 10.0,
            row_buffer_locality: 0.9,
            read_fraction: 0.7,
        };
        let mut s = CoreStream::new(spec, 32, 1024, 1000, 1);
        let mut hits = 0;
        let mut last = None;
        let n = 20_000;
        for _ in 0..n {
            let r = s.next_request();
            if last == Some((r.bank, r.row)) {
                hits += 1;
            }
            last = Some((r.bank, r.row));
        }
        let rate = f64::from(hits) / f64::from(n);
        assert!((rate - 0.9).abs() < 0.02, "hit rate {rate}");
    }

    #[test]
    fn stream_zero_locality_rarely_repeats() {
        let spec = WorkloadSpec {
            name: "test",
            mpki: 10.0,
            row_buffer_locality: 0.0,
            read_fraction: 0.7,
        };
        let mut s = CoreStream::new(spec, 32, 128 * 1024, 1000, 2);
        let mut last = None;
        let mut repeats = 0;
        for _ in 0..10_000 {
            let r = s.next_request();
            if last == Some((r.bank, r.row)) {
                repeats += 1;
            }
            last = Some((r.bank, r.row));
        }
        assert!(repeats < 10, "{repeats}");
    }

    #[test]
    fn instructions_per_miss() {
        let w = WorkloadSpec {
            name: "t",
            mpki: 20.0,
            row_buffer_locality: 0.5,
            read_fraction: 0.5,
        };
        assert!((w.instructions_per_miss() - 50.0).abs() < 1e-9);
    }
}
