//! Workload frontends: the [`RequestSource`] trait and its two
//! implementations — synthetic SPEC2017-rate-like streams ([`CoreStream`],
//! DESIGN.md §2 substitution) and text-trace replay ([`TraceSource`]).
//!
//! The paper drives Gem5 with 17 SPEC2017 rate workloads and 17 mixes. We
//! cannot redistribute SPEC traces, so each workload is summarised by the
//! two parameters that determine its memory behaviour in this study — LLC
//! misses per kilo-instruction (MPKI) and row-buffer locality — plus a read
//! fraction for the energy model. The MPKI values follow published SPEC2017
//! memory characterisation studies; what matters for the reproduction is
//! the *spread* (memory-bound lbm/mcf/bwaves vs compute-bound povray/x264),
//! which is what makes the Fig 16/17 averages meaningful.
//!
//! For real access patterns, [`TraceSource`] replays plain-text traces
//! (one request per line, see [`parse_trace`]) deterministically
//! interleaved across cores, feeding the same channel pipeline as the
//! synthetic streams.

use crate::address::AddressDecoder;
use mint_rng::{Rng64, SplitMix64};
use std::collections::VecDeque;
use std::fmt;
use std::path::Path;

/// A synthetic workload: the memory-behaviour summary of one SPEC-rate run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadSpec {
    /// Workload name (SPEC2017-style).
    pub name: &'static str,
    /// LLC misses per kilo-instruction.
    pub mpki: f64,
    /// Probability that a request hits the currently open row.
    pub row_buffer_locality: f64,
    /// Fraction of requests that are reads.
    pub read_fraction: f64,
}

impl WorkloadSpec {
    /// Instructions between consecutive LLC misses.
    #[must_use]
    pub fn instructions_per_miss(&self) -> f64 {
        1000.0 / self.mpki
    }

    /// Compute time between LLC misses for this workload on a core of
    /// `cfg`: instructions-per-miss ÷ IPC, in ps, rounded to nearest (a
    /// truncating cast would shave up to a full cycle off every gap,
    /// biasing compute-bound workloads fast).
    #[must_use]
    pub fn think_time_ps(&self, cfg: &crate::config::SystemConfig) -> u64 {
        let exact =
            self.instructions_per_miss() / f64::from(cfg.core_ipc) * cfg.core_cycle_ps() as f64;
        exact.round() as u64
    }
}

/// Looks a workload up by name: the 17 [`spec_rate_workloads`], plus the
/// synthetic [`saturation_spec`] (`saturate`).
#[must_use]
pub fn workload_by_name(name: &str) -> Option<WorkloadSpec> {
    if name == "saturate" {
        return Some(saturation_spec());
    }
    spec_rate_workloads().into_iter().find(|w| w.name == name)
}

/// The synthetic saturation workload (`saturate`): MPKI far beyond any
/// SPEC rate entry, so every core re-arrives the instant it can and the
/// transaction queue stays pinned at its depth. This is the
/// arbitration-dominated stress cell of the throughput trajectory
/// (`examples/scenarios/saturation32.scn`); it is *not* part of the
/// 17-workload evaluation zoo.
#[must_use]
pub fn saturation_spec() -> WorkloadSpec {
    WorkloadSpec {
        name: "saturate",
        mpki: 1000.0,
        row_buffer_locality: 0.6,
        read_fraction: 0.67,
    }
}

/// The 17 SPEC2017 rate workloads (paper §VIII-A).
#[must_use]
pub fn spec_rate_workloads() -> Vec<WorkloadSpec> {
    fn w(name: &'static str, mpki: f64, rbl: f64, rf: f64) -> WorkloadSpec {
        WorkloadSpec {
            name,
            mpki,
            row_buffer_locality: rbl,
            read_fraction: rf,
        }
    }
    vec![
        w("perlbench", 0.8, 0.55, 0.75),
        w("gcc", 4.9, 0.50, 0.70),
        w("bwaves", 18.5, 0.80, 0.80),
        w("mcf", 22.0, 0.25, 0.72),
        w("cactuBSSN", 9.0, 0.65, 0.68),
        w("namd", 1.5, 0.60, 0.78),
        w("parest", 3.2, 0.55, 0.74),
        w("povray", 0.3, 0.60, 0.80),
        w("lbm", 31.0, 0.85, 0.55),
        w("omnetpp", 8.5, 0.30, 0.70),
        w("wrf", 7.0, 0.70, 0.65),
        w("xalancbmk", 6.5, 0.35, 0.76),
        w("x264", 2.0, 0.65, 0.60),
        w("blender", 1.8, 0.60, 0.70),
        w("cam4", 4.5, 0.60, 0.66),
        w("fotonik3d", 15.5, 0.80, 0.77),
        w("roms", 10.2, 0.75, 0.73),
    ]
}

/// The 17 mixed workloads: deterministic 4-way combinations of the rate
/// set, one per mix index (paper §VIII-A evaluates 17 mixes).
#[must_use]
pub fn mixes() -> Vec<[WorkloadSpec; 4]> {
    let base = spec_rate_workloads();
    let n = base.len();
    let mut rng = SplitMix64::new(0x5EC_2017);
    (0..17)
        .map(|_| {
            [
                base[rng.gen_range_u64(n as u64) as usize],
                base[rng.gen_range_u64(n as u64) as usize],
                base[rng.gen_range_u64(n as u64) as usize],
                base[rng.gen_range_u64(n as u64) as usize],
            ]
        })
        .collect()
}

/// One memory request produced by a frontend source: a physical byte
/// address plus the compute gap preceding it. The channel's
/// [`AddressDecoder`] slices the address into
/// bank/row/column coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Physical byte address of the accessed cache line.
    pub addr: u64,
    /// Whether the request is a read.
    pub is_read: bool,
    /// Core compute time (ps) preceding this request.
    pub think_time_ps: u64,
}

/// Anything that can feed one core's LLC-miss stream into the channel:
/// synthetic generators ([`CoreStream`]) and trace replay
/// ([`TraceSource`]) implement this, so the controller pipeline is
/// frontend-agnostic.
pub trait RequestSource {
    /// The next request, or `None` when the stream is exhausted
    /// (synthetic streams never are; the runner bounds them by request
    /// count).
    fn next_request(&mut self) -> Option<Request>;

    /// The next request, told when the issuing core is ready
    /// (`ready_at_ps`). The runner issues the returned request at
    /// `ready_at_ps + think_time_ps`, so a source that wants its request
    /// on the bus at an *absolute* time `T` can override this and return
    /// `think_time_ps = T.saturating_sub(ready_at_ps)` — which is how
    /// `mint-redteam`'s `AttackSource` pins activations to tREFI slots
    /// without drifting on memory stalls. The default ignores the hint
    /// (gap-based sources pace relatively).
    fn next_request_at(&mut self, ready_at_ps: u64) -> Option<Request> {
        let _ = ready_at_ps;
        self.next_request()
    }

    /// Refills `out` with upcoming requests in stream order — at most
    /// `max`, fewer (possibly zero) when the stream runs dry. The
    /// default pulls exactly **one** request via
    /// [`next_request_at`](Self::next_request_at), so sources whose
    /// request content depends on the core's ready time (absolute-slot
    /// pacing like `mint-redteam`'s `AttackSource`) stay exact by
    /// construction: every refill sees the genuine `ready_at_ps`.
    /// Sources whose content is independent of service times (synthetic
    /// streams, traces) override this to amortise the per-request
    /// dispatch; overrides must draw RNG values in exactly the
    /// one-at-a-time order so every stream stays bit-identical.
    fn refill(&mut self, ready_at_ps: u64, max: usize, out: &mut VecDeque<Request>) {
        let _ = max;
        if let Some(req) = self.next_request_at(ready_at_ps) {
            out.push_back(req);
        }
    }

    /// The source's stream position as checkpoint words, or `None` when
    /// the source does not support checkpoint/restore (the default —
    /// [`Session::run_until`](crate::Session::run_until) then refuses to
    /// pause rather than silently losing the stream).
    fn snapshot_state(&self) -> Option<Vec<u64>> {
        None
    }

    /// Restores the position captured by
    /// [`snapshot_state`](Self::snapshot_state) into a freshly built
    /// source of the same stream.
    ///
    /// # Errors
    ///
    /// Errors when the source does not support checkpointing or the words
    /// do not describe its stream.
    fn restore_state(&mut self, state: &[u64]) -> Result<(), String> {
        let _ = state;
        Err("this request source does not support checkpoint/restore".to_string())
    }
}

/// Generates the LLC-miss stream of one core running one workload.
///
/// Requests alternate between row-buffer hits (same bank+row as the
/// previous request with probability `row_buffer_locality`, fresh column)
/// and fresh rows in random banks, encoded to physical addresses with the
/// channel's mapping. Think time between misses follows the workload's
/// MPKI at the configured core IPC.
#[derive(Debug, Clone)]
pub struct CoreStream {
    spec: WorkloadSpec,
    rng: SplitMix64,
    decoder: AddressDecoder,
    banks: u32,
    rows: u32,
    columns: u32,
    think_ps: u64,
    last: Option<(u32, u32)>,
}

impl CoreStream {
    /// Creates a stream for `spec`, encoding addresses with `decoder`.
    /// `think_ps` is the compute time between misses (derived from MPKI,
    /// IPC and clock by the caller).
    #[must_use]
    pub fn new(spec: WorkloadSpec, decoder: AddressDecoder, think_ps: u64, seed: u64) -> Self {
        let org = *decoder.org();
        Self {
            spec,
            rng: SplitMix64::new(seed),
            decoder,
            // System-global bank range: a core's misses spread over every
            // channel and rank of the topology, not just channel 0 / rank
            // 0 (at 1 channel × 1 rank this is the historical range, so
            // the RNG draws — and the streams — are unchanged).
            banks: org.total_banks(),
            rows: org.rows,
            columns: org.columns,
            think_ps,
            last: None,
        }
    }

    /// The workload being generated.
    #[must_use]
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }
}

impl CoreStream {
    /// One stream step — the single place the per-request RNG draw order
    /// lives, shared by [`next_request`](RequestSource::next_request) and
    /// the batch [`refill`](RequestSource::refill) so the two paths are
    /// bit-identical by construction.
    #[inline]
    fn gen_one(&mut self) -> Request {
        let reuse = self
            .last
            .filter(|_| self.rng.gen_bool(self.spec.row_buffer_locality));
        let (bank, row) = reuse.unwrap_or_else(|| {
            let bank = self.rng.gen_range_u32(self.banks);
            let row = self.rng.gen_range_u32(self.rows);
            (bank, row)
        });
        self.last = Some((bank, row));
        let column = self.rng.gen_range_u32(self.columns);
        Request {
            addr: self.decoder.encode_bank_row(bank, row, column),
            is_read: self.rng.gen_bool(self.spec.read_fraction),
            think_time_ps: self.think_ps,
        }
    }
}

impl RequestSource for CoreStream {
    fn next_request(&mut self) -> Option<Request> {
        Some(self.gen_one())
    }

    /// Generates `max` requests in one pass. Request content is
    /// independent of service times (the RNG is private to this core's
    /// stream), so prefilling ahead of the core's clock — even past the
    /// run's request budget — changes nothing about the consumed prefix.
    fn refill(&mut self, _ready_at_ps: u64, max: usize, out: &mut VecDeque<Request>) {
        out.reserve(max);
        for _ in 0..max {
            out.push_back(self.gen_one());
        }
    }

    /// `[rng, last-valid, bank, row]` — the RNG stream position plus the
    /// row-locality memory (spec, decoder and think time are rebuilt from
    /// the run spec).
    fn snapshot_state(&self) -> Option<Vec<u64>> {
        let (valid, bank, row) = match self.last {
            Some((b, r)) => (1, u64::from(b), u64::from(r)),
            None => (0, 0, 0),
        };
        Some(vec![self.rng.state(), valid, bank, row])
    }

    fn restore_state(&mut self, state: &[u64]) -> Result<(), String> {
        let [rng, valid, bank, row] = state else {
            return Err(format!(
                "CoreStream: expected 4 state words, got {}",
                state.len()
            ));
        };
        self.rng = SplitMix64::new(*rng);
        self.last = match valid {
            0 => None,
            1 => {
                let bank = u32::try_from(*bank)
                    .map_err(|_| format!("CoreStream: bank {bank} exceeds u32"))?;
                let row = u32::try_from(*row)
                    .map_err(|_| format!("CoreStream: row {row} exceeds u32"))?;
                Some((bank, row))
            }
            other => return Err(format!("CoreStream: bad last-valid flag {other}")),
        };
        Ok(())
    }
}

/// One parsed trace line: `<gap> <R|W> <addr>` — the number of core clock
/// cycles of compute since the previous request of the trace, the request
/// direction, and the physical byte address (hex with `0x` prefix, or
/// decimal).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEntry {
    /// Core cycles of compute preceding this request.
    pub gap_cycles: u64,
    /// Whether the request is a read.
    pub is_read: bool,
    /// Physical byte address.
    pub addr: u64,
}

/// A malformed trace line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub reason: String,
}

impl fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for TraceParseError {}

/// Parses a plain-text trace: one `<gap> <R|W> <addr>` triple per line.
/// Blank lines and `#` comments — whole-line or trailing (everything from
/// the first `#` to end of line) — are ignored. Addresses accept
/// `0x`-prefixed hex or decimal; `R`/`W` are case-insensitive.
///
/// # Errors
///
/// Returns the first malformed line (1-based, counting blank/comment
/// lines) and why it failed.
///
/// # Examples
///
/// ```
/// use mint_memsys::parse_trace;
/// let t = parse_trace("# warmup\n100 R 0x1F40  # hammer row\n5 W 8000\n").unwrap();
/// assert_eq!(t.len(), 2);
/// assert_eq!(t[0].addr, 0x1F40);
/// assert!(!t[1].is_read);
/// ```
pub fn parse_trace(text: &str) -> Result<Vec<TraceEntry>, TraceParseError> {
    let mut out = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        // Strip a trailing comment first so `10 R 0x40  # note` parses;
        // a whole-line comment reduces to the empty string below.
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let err = |reason: String| TraceParseError {
            line: i + 1,
            reason,
        };
        let mut parts = line.split_whitespace();
        let (Some(gap), Some(rw), Some(addr)) = (parts.next(), parts.next(), parts.next()) else {
            return Err(err(format!("expected `<gap> <R|W> <addr>`, got {line:?}")));
        };
        if parts.next().is_some() {
            return Err(err(format!("trailing fields after the triple: {line:?}")));
        }
        let gap_cycles: u64 = gap
            .parse()
            .map_err(|e| err(format!("bad gap {gap:?}: {e}")))?;
        let is_read = match rw {
            "R" | "r" => true,
            "W" | "w" => false,
            other => return Err(err(format!("bad direction {other:?} (want R or W)"))),
        };
        let addr = match addr.strip_prefix("0x").or_else(|| addr.strip_prefix("0X")) {
            Some(hex) => u64::from_str_radix(hex, 16)
                .map_err(|e| err(format!("bad hex address {addr:?}: {e}")))?,
            None => addr
                .parse()
                .map_err(|e| err(format!("bad address {addr:?}: {e}")))?,
        };
        out.push(TraceEntry {
            gap_cycles,
            is_read,
            addr,
        });
    }
    Ok(out)
}

/// Reads and parses a trace file (plain text; see [`parse_trace`]).
///
/// # Errors
///
/// Returns an I/O error for unreadable files and a boxed
/// [`TraceParseError`] for malformed lines.
pub fn read_trace_file(
    path: impl AsRef<Path>,
) -> Result<Vec<TraceEntry>, Box<dyn std::error::Error>> {
    let text = std::fs::read_to_string(path)?;
    Ok(parse_trace(&text)?)
}

/// Replays a slice of trace entries as one core's request stream; built
/// via [`TraceSource::split`], which deals a shared trace round-robin
/// across cores (entry `i` goes to core `i % cores` — deterministic, so a
/// replay is bit-identical no matter how the surrounding sweep is
/// parallelised).
#[derive(Debug, Clone)]
pub struct TraceSource {
    entries: Vec<TraceEntry>,
    cycle_ps: u64,
    pos: usize,
}

impl TraceSource {
    /// A source replaying `entries` with gaps of `cycle_ps` per cycle.
    #[must_use]
    pub fn new(entries: Vec<TraceEntry>, cycle_ps: u64) -> Self {
        Self {
            entries,
            cycle_ps,
            pos: 0,
        }
    }

    /// Deals `entries` round-robin across `cores` sources (entry `i` →
    /// core `i % cores`), each converting gaps at `cycle_ps`.
    ///
    /// # Panics
    ///
    /// Panics if `cores == 0`.
    #[must_use]
    pub fn split(entries: &[TraceEntry], cores: u32, cycle_ps: u64) -> Vec<TraceSource> {
        assert!(cores > 0, "need at least one core");
        (0..cores as usize)
            .map(|c| {
                TraceSource::new(
                    entries
                        .iter()
                        .skip(c)
                        .step_by(cores as usize)
                        .copied()
                        .collect(),
                    cycle_ps,
                )
            })
            .collect()
    }

    /// Entries remaining to replay.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.entries.len() - self.pos
    }
}

impl RequestSource for TraceSource {
    fn next_request(&mut self) -> Option<Request> {
        let e = self.entries.get(self.pos)?;
        self.pos += 1;
        Some(Request {
            addr: e.addr,
            is_read: e.is_read,
            think_time_ps: e.gap_cycles * self.cycle_ps,
        })
    }

    /// Converts the next `max` parsed entries in one pass (fewer at the
    /// end of the trace).
    fn refill(&mut self, _ready_at_ps: u64, max: usize, out: &mut VecDeque<Request>) {
        let take = max.min(self.remaining());
        out.reserve(take);
        for e in &self.entries[self.pos..self.pos + take] {
            out.push_back(Request {
                addr: e.addr,
                is_read: e.is_read,
                think_time_ps: e.gap_cycles * self.cycle_ps,
            });
        }
        self.pos += take;
    }

    /// `[pos]` — the cursor into the parsed trace (the entries themselves
    /// are rebuilt by re-parsing the trace file named in the run spec).
    fn snapshot_state(&self) -> Option<Vec<u64>> {
        Some(vec![self.pos as u64])
    }

    fn restore_state(&mut self, state: &[u64]) -> Result<(), String> {
        let [pos] = state else {
            return Err(format!(
                "TraceSource: expected 1 state word, got {}",
                state.len()
            ));
        };
        let pos = usize::try_from(*pos)
            .map_err(|_| format!("TraceSource: position {pos} exceeds usize"))?;
        if pos > self.entries.len() {
            return Err(format!(
                "TraceSource: position {pos} past end of {}-entry trace",
                self.entries.len()
            ));
        }
        self.pos = pos;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address::AddressMapping;
    use crate::config::SystemConfig;

    fn decoder() -> AddressDecoder {
        AddressDecoder::new(&SystemConfig::table6(), AddressMapping::default())
    }

    #[test]
    fn seventeen_rate_workloads() {
        let w = spec_rate_workloads();
        assert_eq!(w.len(), 17);
        let names: std::collections::HashSet<_> = w.iter().map(|s| s.name).collect();
        assert_eq!(names.len(), 17, "names must be unique");
    }

    #[test]
    fn mpki_spread_covers_memory_and_compute_bound() {
        let w = spec_rate_workloads();
        let max = w.iter().map(|s| s.mpki).fold(0.0, f64::max);
        let min = w.iter().map(|s| s.mpki).fold(f64::MAX, f64::min);
        assert!(max > 25.0, "need memory-bound workloads, max {max}");
        assert!(min < 1.0, "need compute-bound workloads, min {min}");
    }

    #[test]
    fn seventeen_mixes_deterministic() {
        let a = mixes();
        let b = mixes();
        assert_eq!(a.len(), 17);
        for (x, y) in a.iter().zip(b.iter()) {
            for (p, q) in x.iter().zip(y.iter()) {
                assert_eq!(p.name, q.name);
            }
        }
    }

    #[test]
    fn stream_reuses_rows_per_locality() {
        let spec = WorkloadSpec {
            name: "test",
            mpki: 10.0,
            row_buffer_locality: 0.9,
            read_fraction: 0.7,
        };
        let d = decoder();
        let mut s = CoreStream::new(spec, d, 1000, 1);
        let mut hits = 0;
        let mut last = None;
        let n = 20_000;
        for _ in 0..n {
            let r = s.next_request().unwrap();
            let a = d.decode(r.addr);
            let key = (a.flat_bank(d.org().banks_per_group), a.row);
            if last == Some(key) {
                hits += 1;
            }
            last = Some(key);
        }
        let rate = f64::from(hits) / f64::from(n);
        assert!((rate - 0.9).abs() < 0.02, "hit rate {rate}");
    }

    #[test]
    fn stream_zero_locality_rarely_repeats() {
        let spec = WorkloadSpec {
            name: "test",
            mpki: 10.0,
            row_buffer_locality: 0.0,
            read_fraction: 0.7,
        };
        let d = decoder();
        let mut s = CoreStream::new(spec, d, 1000, 2);
        let mut last = None;
        let mut repeats = 0;
        for _ in 0..10_000 {
            let r = s.next_request().unwrap();
            let a = d.decode(r.addr);
            let key = (a.flat_bank(d.org().banks_per_group), a.row);
            if last == Some(key) {
                repeats += 1;
            }
            last = Some(key);
        }
        assert!(repeats < 10, "{repeats}");
    }

    #[test]
    fn stream_addresses_decode_in_range() {
        let spec = spec_rate_workloads()[0];
        let d = decoder();
        let mut s = CoreStream::new(spec, d, 1000, 3);
        let org = *d.org();
        for _ in 0..1000 {
            let r = s.next_request().unwrap();
            let a = d.decode(r.addr);
            assert!(a.flat_bank(org.banks_per_group) < org.bank_groups * org.banks_per_group);
            assert!(a.row < org.rows);
            assert!(a.column < org.columns);
        }
    }

    #[test]
    fn think_time_rounds_to_nearest() {
        let cfg = SystemConfig::table6();
        let mk = |mpki: f64| WorkloadSpec {
            name: "t",
            mpki,
            row_buffer_locality: 0.5,
            read_fraction: 0.5,
        };
        // mcf at Table VI: 1000/22 instr/miss ÷ 3 IPC × 333 ps/cycle
        // = 5045.45… ps → 5045 (truncation agreed here).
        assert_eq!(mk(22.0).think_time_ps(&cfg), 5045);
        // povray-ish: 1000/0.3 ÷ 3 × 333 lands at 369_999.999…94 in f64 —
        // a truncating cast would shave it to 369_999; round-to-nearest
        // keeps the exact 370_000.
        assert_eq!(mk(0.3).think_time_ps(&cfg), 370_000);
        // 2 instr/miss ÷ 3 × 333 = 221.999…97 in f64: truncation said 221,
        // nearest says 222.
        assert_eq!(mk(500.0).think_time_ps(&cfg), 222);
        // The exact .5 boundary (representable: 1/2 instr-per-cycle ratio
        // × odd 333 = 166.5): rounds *up* to 167 per round-half-away-from-
        // zero, where truncation gave 166.
        let ipc2 = SystemConfig { core_ipc: 2, ..cfg };
        assert_eq!(mk(1000.0).think_time_ps(&ipc2), 167);
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(workload_by_name("mcf").unwrap().name, "mcf");
        assert!(workload_by_name("nosuch").is_none());
    }

    #[test]
    fn instructions_per_miss() {
        let w = WorkloadSpec {
            name: "t",
            mpki: 20.0,
            row_buffer_locality: 0.5,
            read_fraction: 0.5,
        };
        assert!((w.instructions_per_miss() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn trace_parses_comments_blanks_hex_and_decimal() {
        let text = "# header\n\n10 R 0x40\n0 w 128\n   # indented comment\n7 r 0xFF40\n";
        let t = parse_trace(text).unwrap();
        assert_eq!(t.len(), 3);
        let inline =
            parse_trace("10 R 0x40 # hammer the aggressor\n0 w 128# no space needed\n").unwrap();
        assert_eq!(inline.len(), 2);
        assert_eq!(inline[0].addr, 0x40);
        assert_eq!(inline[1].addr, 128);
        assert!(!inline[1].is_read);
        assert_eq!(
            t[0],
            TraceEntry {
                gap_cycles: 10,
                is_read: true,
                addr: 0x40
            }
        );
        assert_eq!(
            t[1],
            TraceEntry {
                gap_cycles: 0,
                is_read: false,
                addr: 128
            }
        );
        assert_eq!(t[2].addr, 0xFF40);
    }

    #[test]
    fn trace_parse_errors_carry_line_numbers() {
        for (text, line, needle) in [
            ("10 R\n", 1, "expected"),
            ("10 R 0x40\nfoo R 0x40\n", 2, "bad gap"),
            ("10 X 0x40\n", 1, "bad direction"),
            ("10 R 0xZZ\n", 1, "bad hex"),
            ("10 R 12 34\n", 1, "trailing"),
            ("10 R nope\n", 1, "bad address"),
            // Comment and blank lines still count towards line numbers,
            // and a trailing comment never hides the malformed triple.
            (
                "# header\n\n10 R 0x40 # fine\nfoo R 0x40 # boom\n",
                4,
                "bad gap",
            ),
            ("10 R # address swallowed by the comment\n", 1, "expected"),
        ] {
            let e = parse_trace(text).unwrap_err();
            assert_eq!(e.line, line, "{text:?}");
            assert!(e.reason.contains(needle), "{text:?} → {}", e.reason);
            assert!(e.to_string().contains("trace line"));
        }
    }

    #[test]
    fn trace_split_interleaves_round_robin() {
        let entries: Vec<TraceEntry> = (0..10)
            .map(|i| TraceEntry {
                gap_cycles: i,
                is_read: true,
                addr: i * 64,
            })
            .collect();
        let mut sources = TraceSource::split(&entries, 4, 333);
        assert_eq!(sources.len(), 4);
        assert_eq!(sources[0].remaining(), 3); // entries 0, 4, 8
        assert_eq!(sources[3].remaining(), 2); // entries 3, 7
        let r = sources[1].next_request().unwrap();
        assert_eq!(r.addr, 64);
        assert_eq!(r.think_time_ps, 333);
        let r = sources[1].next_request().unwrap();
        assert_eq!(r.addr, 5 * 64);
        assert_eq!(sources[1].next_request().unwrap().addr, 9 * 64);
        assert_eq!(sources[1].next_request(), None);
    }
}
