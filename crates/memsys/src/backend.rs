//! The mitigation backend abstraction: how a [`MitigationScheme`] is
//! realised inside the memory system.
//!
//! Every bank of the [`MemoryController`](crate::MemoryController) carries
//! one [`MitigationBackend`], built from the scheme under evaluation by
//! [`MitigationBackend::for_scheme`]. The backend decides *where* the
//! mitigation logic lives and therefore *what it costs*:
//!
//! * [`MitigationBackend::None`] — no mitigation at all (the Baseline).
//! * [`MitigationBackend::InDram`] — a real tracker from `mint-core` /
//!   `mint-trackers` living inside the DRAM device. It observes every
//!   demand ACT and mitigates at REF (and RFM) opportunities, riding the
//!   already-paid tRFC — zero extra bank time, but every victim refresh is
//!   a real activation the energy model must count.
//! * [`MitigationBackend::McSample`] — memory-controller-side PARA: no
//!   tracker state, each ACT is sampled with probability `p` and a sampled
//!   ACT is followed by a blocking DRFM command (tDRFMsb of bank time).
//! * [`MitigationBackend::McTracker`] — a memory-controller-side tracker
//!   (Graphene) that counts ACTs in SRAM and, when a row crosses its
//!   mitigation threshold, issues a DRFM-priced mitigation command to
//!   refresh the row's victims.
//!
//! The split matters because it reproduces the paper's headline argument
//! (§VIII, Fig 16/17, Table IX): in-DRAM trackers pay in SRAM and MinTRH,
//! MC-side trackers pay in bank-blocking commands, and MINT's point is
//! getting the in-DRAM cost down to a single entry.

use crate::config::{MitigationScheme, SystemConfig};
use mint_core::{InDramTracker, Mint, MintConfig};
use mint_dram::SecurityParams;
use mint_rng::Rng64;
use mint_trackers::{
    Graphene, GrapheneConfig, Mithril, MithrilConfig, Parfm, Prct, Pride, ProTrr, ProTrrConfig,
    SimpleTrr,
};

/// Demand-activation slots per tREFI (the paper's MaxACT), from the
/// canonical `mint-dram` DDR5 parameters — not re-hardcoded here, so the
/// security and performance layers cannot drift apart.
#[must_use]
pub fn max_act_per_trefi() -> u64 {
    u64::from(SecurityParams::ddr5_default().max_act)
}

/// tREFI intervals per tREFW (DDR5: 8192), from `mint-dram`.
#[must_use]
pub fn refis_per_refw() -> u64 {
    u64::from(SecurityParams::ddr5_default().refi_per_refw)
}

/// The Rowhammer threshold the MC-side Graphene is sized for — MINT's
/// MinTRH-D from Table III, so the storage comparison is iso-threshold.
pub const GRAPHENE_TRH: u32 = 1400;

/// PrIDE FIFO depth (paper §IX; its sampling probability is 1/MaxACT).
pub const PRIDE_FIFO: usize = 4;

/// Entries of the vendor-TRR-like tracker (the middle of Hassan et al.'s
/// reverse-engineered 1–30 range).
pub const TRR_ENTRIES: usize = 16;

/// Where a scheme's mitigation logic lives and what machinery backs it.
///
/// Built per bank by [`MitigationBackend::for_scheme`]; the controller owns
/// one per [`BankState`](crate::MemoryController) and drives it from
/// `service` / `align_with_refresh`.
pub enum MitigationBackend {
    /// No mitigation hardware (Baseline).
    None,
    /// An in-DRAM tracker mitigating at REF/RFM opportunities inside the
    /// stolen refresh time (MINT, Mithril, ProTRR, TRR, PRCT, PrIDE,
    /// PARFM).
    InDram(Box<dyn InDramTracker + Send>),
    /// MC-side PARA: stateless sampling, each sampled ACT followed by a
    /// blocking DRFM.
    McSample {
        /// Per-activation DRFM probability.
        p: f64,
    },
    /// An MC-side tracker (Graphene) issuing DRFM-priced mitigation
    /// commands on threshold crossings.
    McTracker(Box<dyn InDramTracker + Send>),
}

impl MitigationBackend {
    /// Builds the backend realising `scheme` for one bank of `cfg`.
    ///
    /// Tracker sizings follow the paper: Mithril and ProTRR at their
    /// Table III entry counts, PRCT with one counter per row of the bank,
    /// Graphene sized by [`GrapheneConfig::for_threshold`] for
    /// [`GRAPHENE_TRH`] over one tREFW of activations.
    #[must_use]
    pub fn for_scheme(scheme: MitigationScheme, cfg: &SystemConfig, rng: &mut dyn Rng64) -> Self {
        match scheme {
            MitigationScheme::Baseline => MitigationBackend::None,
            MitigationScheme::Mint => {
                MitigationBackend::InDram(Box::new(Mint::new(MintConfig::ddr5_default(), rng)))
            }
            MitigationScheme::MintRfm { rfm_th } => {
                MitigationBackend::InDram(Box::new(Mint::new(MintConfig::rfm(rfm_th), rng)))
            }
            MitigationScheme::McPara { p } => MitigationBackend::McSample { p },
            MitigationScheme::Graphene => MitigationBackend::McTracker(Box::new(Graphene::new(
                GrapheneConfig::for_threshold(GRAPHENE_TRH, max_act_per_trefi() * refis_per_refw()),
            ))),
            MitigationScheme::Mithril => {
                MitigationBackend::InDram(Box::new(Mithril::new(MithrilConfig::table3())))
            }
            MitigationScheme::ProTrr => {
                // ProTRR tracks *victims*: its insertion reach is the
                // device's blast radius, so the sweepable config knob
                // flows through (not the struct default).
                MitigationBackend::InDram(Box::new(ProTrr::new(ProTrrConfig {
                    blast_radius: cfg.blast_radius,
                    ..ProTrrConfig::default()
                })))
            }
            MitigationScheme::SimpleTrr => {
                MitigationBackend::InDram(Box::new(SimpleTrr::new(TRR_ENTRIES)))
            }
            MitigationScheme::Prct => {
                MitigationBackend::InDram(Box::new(Prct::new(cfg.rows_per_bank)))
            }
            MitigationScheme::Pride => MitigationBackend::InDram(Box::new(Pride::new(
                1.0 / max_act_per_trefi() as f64,
                PRIDE_FIFO,
            ))),
            MitigationScheme::Parfm => {
                MitigationBackend::InDram(Box::new(Parfm::new(max_act_per_trefi() as usize)))
            }
        }
    }

    /// The tracker backing this scheme, if any (for Table-IX-style storage
    /// introspection: [`InDramTracker::entries`] /
    /// [`InDramTracker::storage_bits`]).
    #[must_use]
    pub fn tracker(&self) -> Option<&dyn InDramTracker> {
        match self {
            MitigationBackend::None | MitigationBackend::McSample { .. } => None,
            MitigationBackend::InDram(t) | MitigationBackend::McTracker(t) => Some(t.as_ref()),
        }
    }

    /// Tracking entries currently occupied (telemetry: table occupancy);
    /// 0 for the stateless variants.
    #[must_use]
    pub fn live_entries(&self) -> usize {
        self.tracker().map_or(0, InDramTracker::live_entries)
    }

    /// Observations lost to a full table/FIFO/buffer so far (telemetry:
    /// eviction pressure); 0 for the stateless variants.
    #[must_use]
    pub fn overflow_count(&self) -> u64 {
        self.tracker().map_or(0, InDramTracker::overflow_count)
    }

    /// Short label for debugging/reports: the tracker name, or the
    /// backend kind for stateless variants.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            MitigationBackend::None => "none",
            MitigationBackend::McSample { .. } => "mc-sample",
            MitigationBackend::InDram(t) | MitigationBackend::McTracker(t) => t.name(),
        }
    }

    /// The backend's dynamic state as checkpoint words — empty for the
    /// stateless variants, the tracker's
    /// [`snapshot_state`](InDramTracker::snapshot_state) otherwise.
    #[must_use]
    pub fn snapshot_state(&self) -> Vec<u64> {
        match self {
            MitigationBackend::None | MitigationBackend::McSample { .. } => Vec::new(),
            MitigationBackend::InDram(t) | MitigationBackend::McTracker(t) => t.snapshot_state(),
        }
    }

    /// Restores the state captured by [`snapshot_state`](Self::snapshot_state)
    /// into a freshly built backend of the same scheme.
    ///
    /// # Errors
    ///
    /// Errors when the words do not describe this backend's tracker (wrong
    /// scheme, wrong capacity, or corruption).
    pub fn restore_state(&mut self, state: &[u64]) -> Result<(), String> {
        match self {
            MitigationBackend::None | MitigationBackend::McSample { .. } => {
                if state.is_empty() {
                    Ok(())
                } else {
                    Err(format!(
                        "stateless backend given {} state words",
                        state.len()
                    ))
                }
            }
            MitigationBackend::InDram(t) | MitigationBackend::McTracker(t) => {
                t.restore_state(state)
            }
        }
    }
}

impl std::fmt::Debug for MitigationBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MitigationBackend::None => write!(f, "MitigationBackend::None"),
            MitigationBackend::InDram(t) => write!(f, "MitigationBackend::InDram({})", t.name()),
            MitigationBackend::McSample { p } => {
                write!(f, "MitigationBackend::McSample {{ p: {p} }}")
            }
            MitigationBackend::McTracker(t) => {
                write!(f, "MitigationBackend::McTracker({})", t.name())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mint_rng::Xoshiro256StarStar;

    fn backend(scheme: MitigationScheme) -> MitigationBackend {
        let mut rng = Xoshiro256StarStar::seed_from_u64(1);
        MitigationBackend::for_scheme(scheme, &SystemConfig::table6(), &mut rng)
    }

    #[test]
    fn every_zoo_scheme_builds_a_backend() {
        for scheme in MitigationScheme::zoo() {
            let b = backend(scheme);
            match scheme {
                MitigationScheme::Baseline => assert!(b.tracker().is_none()),
                MitigationScheme::McPara { .. } => assert!(b.tracker().is_none()),
                _ => {
                    let t = b.tracker().expect("tracker-backed scheme");
                    assert!(t.entries() > 0, "{} has entries", t.name());
                    assert!(t.storage_bits() > 0, "{} has storage", t.name());
                }
            }
        }
    }

    #[test]
    fn backend_kinds_match_scheme_families() {
        assert!(matches!(
            backend(MitigationScheme::Baseline),
            MitigationBackend::None
        ));
        assert!(matches!(
            backend(MitigationScheme::Mint),
            MitigationBackend::InDram(_)
        ));
        assert!(matches!(
            backend(MitigationScheme::Graphene),
            MitigationBackend::McTracker(_)
        ));
        assert!(matches!(
            backend(MitigationScheme::McPara { p: 0.1 }),
            MitigationBackend::McSample { .. }
        ));
    }

    #[test]
    fn storage_ordering_matches_table9() {
        // MINT (single entry) must be orders of magnitude below the
        // SRAM-heavy baselines; PRCT is the most expensive of all.
        let mint = backend(MitigationScheme::Mint)
            .tracker()
            .unwrap()
            .storage_bits();
        let graphene = backend(MitigationScheme::Graphene)
            .tracker()
            .unwrap()
            .storage_bits();
        let mithril = backend(MitigationScheme::Mithril)
            .tracker()
            .unwrap()
            .storage_bits();
        let prct = backend(MitigationScheme::Prct)
            .tracker()
            .unwrap()
            .storage_bits();
        assert!(mint < mithril / 10, "MINT {mint} vs Mithril {mithril}");
        assert!(mint < graphene / 10, "MINT {mint} vs Graphene {graphene}");
        assert!(prct > mithril, "PRCT {prct} vs Mithril {mithril}");
    }

    #[test]
    fn debug_and_name_are_informative() {
        assert_eq!(backend(MitigationScheme::Baseline).name(), "none");
        assert_eq!(backend(MitigationScheme::Mithril).name(), "Mithril");
        let dbg = format!("{:?}", backend(MitigationScheme::Graphene));
        assert!(dbg.contains("McTracker"), "{dbg}");
    }
}
