//! Performance and energy substrate — the Gem5 substitute (DESIGN.md §2).
//!
//! The paper evaluates MINT's performance cost in Gem5 with SPEC2017 rate
//! and mixed workloads (Fig 16, Fig 17, Table VIII). All of the *effects*
//! it measures come from one mechanism: mitigation-related commands
//! stealing bank time —
//!
//! * MINT mitigates inside the tRFC of the regular REF → zero slowdown;
//! * MINT+RFM adds an RFM command (tRFC/2 = 205 ns of bank block) every
//!   `RFM_TH` activations per bank;
//! * MC-side PARA issues a blocking DRFM (410 ns) per sampled activation.
//!
//! This crate reproduces exactly those mechanisms in a trace-driven
//! simulator: a 4-core model generating LLC-miss streams parameterised by
//! MPKI and row-buffer locality ([`workload`]), an FR-FCFS-ish memory
//! controller with DDR5 bank timing, REF/RFM/DRFM scheduling
//! ([`controller`]), a per-bank [`MitigationBackend`] carrying any tracker
//! of the `mint-trackers` zoo (so mitigative activations are counted with
//! each scheme's real selection logic — see [`backend`]),
//! and a DRAMPower-style energy model ([`energy`]). Absolute IPC differs
//! from the authors' testbed; the normalized slowdown and energy *shape* is
//! what the Fig 16 / Fig 17 / Table VIII regeneration targets check.

pub mod backend;
pub mod config;
pub mod controller;
pub mod energy;
pub mod runner;
pub mod workload;

pub use backend::MitigationBackend;
pub use config::{MitigationScheme, SystemConfig};
pub use controller::{MemoryController, SimResult};
pub use energy::{EnergyModel, EnergyReport};
pub use runner::{run_workload, run_workload_grid, NormalizedPerf};
pub use workload::{mixes, spec_rate_workloads, CoreStream, WorkloadSpec};
