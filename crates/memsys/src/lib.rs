//! Performance and energy substrate — the Gem5 substitute (DESIGN.md §2).
//!
//! The paper evaluates MINT's performance cost in Gem5 with SPEC2017 rate
//! and mixed workloads (Fig 16, Fig 17, Table VIII). All of the *effects*
//! it measures come from one mechanism: mitigation-related commands
//! stealing bank time —
//!
//! * MINT mitigates inside the tRFC of the regular REF → zero slowdown;
//! * MINT+RFM adds an RFM command (tRFC/2 = 205 ns of bank block) every
//!   `RFM_TH` activations per bank;
//! * MC-side PARA issues a blocking DRFM (410 ns) per sampled activation.
//!
//! This crate reproduces those mechanisms in a command-level single-channel
//! DDR5 pipeline:
//!
//! ```text
//!  RequestSource ──► TransQueue ──► SchedulePolicy ──► TimingState ──► banks + backends
//!  CoreStream /       (bounded,      FCFS / FR-FCFS     tRRD_S/L        row buffer, REF/RFM/
//!  TraceSource        [`sched`])     ([`sched`])        tFAW, tCCD      DRFM, tracker zoo
//!  ([`workload`])                                       ([`timing`])    ([`controller`], [`backend`])
//! ```
//!
//! Frontends implement [`RequestSource`] — a 4-core synthetic model
//! parameterised by MPKI and row-buffer locality ([`workload::CoreStream`])
//! or a plain-text trace replayed deterministically across cores
//! ([`workload::TraceSource`]). Requests carry physical byte addresses,
//! sliced by a configurable [`AddressDecoder`] (three named mappings, see
//! [`address`]). The [`Channel`] schedules the bounded transaction queue
//! with FCFS or FR-FCFS (row-hit-first, oldest-first, starvation-capped)
//! under the DDR5 inter-bank constraints, and executes on per-bank state
//! carrying a real [`MitigationBackend`] for any tracker of the
//! `mint-trackers` zoo. A DRAMPower-style energy model ([`energy`]) prices
//! the result. Absolute IPC differs from the authors' testbed; the
//! normalized slowdown and energy *shape* is what the Fig 16 / Fig 17 /
//! Table VIII regeneration targets check.

pub mod address;
pub mod backend;
pub mod config;
pub mod controller;
pub mod energy;
pub mod events;
pub mod runner;
pub mod sched;
pub mod timing;
pub mod workload;

pub use address::{AddressDecoder, AddressMapping, DecodedAddr, DramOrg};
pub use backend::MitigationBackend;
pub use config::{MitigationScheme, SystemConfig};
pub use controller::{MemoryController, ServiceOutcome, SimResult};
pub use energy::{EnergyModel, EnergyReport};
pub use events::{ChannelObserver, MemEvent};
pub use runner::{
    run_sources_observed, run_trace, run_workload, run_workload_grid, run_workload_grid_with,
    run_workload_with, think_time_ps, CoreOutcome, NormalizedPerf, ObservedRun,
};
pub use sched::{Channel, Completion, SchedulePolicy};
pub use timing::{InterBankTiming, TimingState};
pub use workload::{
    mixes, parse_trace, read_trace_file, spec_rate_workloads, CoreStream, Request, RequestSource,
    TraceEntry, TraceParseError, TraceSource, WorkloadSpec,
};
