//! Performance and energy substrate — the Gem5 substitute (DESIGN.md §2).
//!
//! The paper evaluates MINT's performance cost in Gem5 with SPEC2017 rate
//! and mixed workloads (Fig 16, Fig 17, Table VIII). All of the *effects*
//! it measures come from one mechanism: mitigation-related commands
//! stealing bank time —
//!
//! * MINT mitigates inside the tRFC of the regular REF → zero slowdown;
//! * MINT+RFM adds an RFM command (tRFC/2 = 205 ns of bank block) every
//!   `RFM_TH` activations per bank;
//! * MC-side PARA issues a blocking DRFM (410 ns) per sampled activation.
//!
//! This crate reproduces those mechanisms in a command-level DDR5
//! pipeline scaled out to a full DIMM — a [`System`] of N independently
//! clocked channels × R ranks per channel, each channel its own
//! [`Channel`] command pipeline — and exposes **one run surface** over it:
//! the [`Sim`] builder.
//!
//! ```text
//!  Sim builder ──► Session ─────────────────────────────────► RunReport
//!  .scheme() .policy()   RequestSource ──► TransQueue ──►      perf + per-core
//!  .mapping() .seed()    CoreStream /       SchedulePolicy     outcomes + energy
//!  .workload()/.trace()  TraceSource /      ──► TimingState    + drained events
//!  /.sources()           AttackSource       ──► banks+backends
//!  .observer()           ([`workload`])     ([`sched`], [`timing`],
//!                                            [`controller`], [`backend`])
//! ```
//!
//! Frontends implement [`RequestSource`] — a 4-core synthetic model
//! parameterised by MPKI and row-buffer locality ([`workload::CoreStream`])
//! or a plain-text trace replayed deterministically across cores
//! ([`workload::TraceSource`]); attacker sources plug in through
//! [`Sim::sources`]. Requests carry physical byte addresses, sliced by a
//! configurable [`AddressDecoder`] (three named mappings, see
//! [`address`]). The frontend routes each request to its channel by
//! decoded address; each [`Channel`] schedules its bounded transaction
//! queue with FCFS or FR-FCFS (row-hit-first, oldest-first,
//! starvation-capped) under the DDR5 inter-bank constraints — tRRD/tFAW
//! tracked per rank, the CAS bus shared per channel — and executes on
//! rank-indexed per-bank state carrying a real [`MitigationBackend`] for
//! any tracker of the `mint-trackers` zoo. A DRAMPower-style energy model ([`energy`]) prices
//! every [`RunReport`].
//!
//! Scenarios can also be described *as data*: a [`ScenarioSpec`] is one
//! cell in a small `key = value` text format that deserializes into a
//! builder, and a [`ScenarioGrid`] fans a scheme × workload grid through
//! the `mint-exp` harness, bit-identically for any `--jobs` count (see
//! [`scenario`]).
//!
//! Absolute IPC differs from the authors' testbed; the normalized
//! slowdown and energy *shape* is what the Fig 16 / Fig 17 / Table VIII
//! regeneration targets check.

#![warn(missing_docs)]

pub mod address;
pub mod backend;
pub mod config;
pub mod controller;
pub mod energy;
pub mod events;
pub mod runner;
pub mod scenario;
pub mod sched;
pub mod sim;
pub mod snapshot;
pub mod system;
pub mod telemetry;
pub mod timing;
pub mod workload;

pub use address::{AddressDecoder, AddressMapping, AddressOutOfRange, DecodedAddr, DramOrg};
pub use backend::MitigationBackend;
pub use config::{MitigationScheme, SystemConfig};
pub use controller::{set_reference_refresh_default, MemoryController, ServiceOutcome, SimResult};
pub use energy::{EnergyModel, EnergyReport};
pub use events::{ChannelObserver, MemEvent};
pub use mint_obs::{Log2Histogram, Section, TelemetryReport, TimeSeries, TELEMETRY_VERSION};
#[allow(deprecated)]
pub use runner::{
    run_sources_observed, run_trace, run_workload, run_workload_grid, run_workload_grid_with,
    run_workload_with, ObservedRun,
};
pub use scenario::{
    parse_any, Scenario, ScenarioFrontend, ScenarioGrid, ScenarioParseError, ScenarioSpec,
    SeedAxis, WorkloadCell,
};
pub use sched::{set_reference_planner_default, Channel, Completion, SchedulePolicy};
pub use sim::{
    set_reference_admission_default, set_reference_generation_default, CoreOutcome, NormalizedPerf,
    RunReport, Session, SessionRun, Sim,
};
pub use snapshot::{Checkpoint, SnapshotReader, SnapshotWriter, CHECKPOINT_VERSION};
pub use system::System;
pub use telemetry::{EngineTelemetry, SchedTelemetry, SessionTelemetry};

pub use timing::{InterBankTiming, TimingState};
pub use workload::{
    mixes, parse_trace, read_trace_file, saturation_spec, spec_rate_workloads, workload_by_name,
    CoreStream, Request, RequestSource, TraceEntry, TraceParseError, TraceSource, WorkloadSpec,
};
