//! DRAM energy model (paper Table VIII).

use crate::controller::SimResult;

/// Per-event and static energy constants, DRAMPower-style. Values are
/// representative DDR5 numbers; Table VIII only depends on *ratios*, with
/// the paper reporting the baseline ACT share at 13% of total energy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Energy per activate/precharge pair (pJ).
    pub e_act_pj: f64,
    /// Energy per read burst (pJ).
    pub e_rd_pj: f64,
    /// Energy per write burst (pJ).
    pub e_wr_pj: f64,
    /// Energy per REF command per bank (pJ) — multiplied by
    /// [`SimResult::refs`], which counts exactly one event per
    /// (REF command, bank) pair for every REF whose window started by the
    /// end of the run (see [`MemoryController::finish`]).
    ///
    /// [`MemoryController::finish`]: crate::MemoryController::finish
    pub e_ref_pj: f64,
    /// Background power (mW) — non-IO static power of the device.
    pub p_background_mw: f64,
    /// TRNG power (µW), §VIII-D: 290 µW total.
    pub p_trng_uw: f64,
    /// DMQ power (µW), §VIII-D: 86 µW total.
    pub p_dmq_uw: f64,
}

impl EnergyModel {
    /// Representative DDR5 constants.
    #[must_use]
    pub fn ddr5_default() -> Self {
        Self {
            e_act_pj: 2200.0,
            e_rd_pj: 1100.0,
            e_wr_pj: 1200.0,
            e_ref_pj: 2600.0,
            p_background_mw: 150.0,
            p_trng_uw: 290.0,
            p_dmq_uw: 86.0,
        }
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self::ddr5_default()
    }
}

/// Energy breakdown of one simulation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyReport {
    /// Activation energy (demand + mitigative), joules.
    pub act_j: f64,
    /// Everything else (RD/WR, REF, background, RNG, DMQ), joules.
    pub non_act_j: f64,
}

impl EnergyReport {
    /// Total energy.
    #[must_use]
    pub fn total_j(&self) -> f64 {
        self.act_j + self.non_act_j
    }

    /// Fraction of total energy spent on activations.
    #[must_use]
    pub fn act_share(&self) -> f64 {
        self.act_j / self.total_j()
    }
}

impl EnergyModel {
    /// Computes the energy of a run that lasted `duration_ps`, with
    /// `include_mitigation_hw` adding the TRNG+DMQ static draw (MINT
    /// configurations).
    #[must_use]
    pub fn energy(
        &self,
        result: &SimResult,
        duration_ps: u64,
        include_mitigation_hw: bool,
    ) -> EnergyReport {
        let secs = duration_ps as f64 * 1e-12;
        let acts = (result.demand_acts + result.mitigative_acts) as f64;
        let act_j = acts * self.e_act_pj * 1e-12;
        let rd_wr_j =
            (result.reads as f64 * self.e_rd_pj + result.writes as f64 * self.e_wr_pj) * 1e-12;
        let ref_j = result.refs as f64 * self.e_ref_pj * 1e-12;
        let bg_j = self.p_background_mw * 1e-3 * secs;
        let hw_j = if include_mitigation_hw {
            (self.p_trng_uw + self.p_dmq_uw) * 1e-6 * secs
        } else {
            0.0
        };
        EnergyReport {
            act_j,
            non_act_j: rd_wr_j + ref_j + bg_j + hw_j,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(demand: u64, mitig: u64) -> SimResult {
        SimResult {
            requests: demand * 2,
            row_hits: demand,
            demand_acts: demand,
            mitigative_acts: mitig,
            reads: demand,
            writes: demand / 2,
            refs: 1000,
            ..SimResult::default()
        }
    }

    #[test]
    fn act_energy_scales_with_mitigations() {
        let m = EnergyModel::ddr5_default();
        let base = m.energy(&result(100_000, 0), 1_000_000_000_000, false);
        let mint = m.energy(&result(100_000, 6_000), 1_000_000_000_000, true);
        let act_ratio = mint.act_j / base.act_j;
        assert!((act_ratio - 1.06).abs() < 0.001, "{act_ratio}");
    }

    #[test]
    fn mitigation_hw_power_is_negligible() {
        // §VIII-D: TRNG + DMQ are 4 orders of magnitude below DRAM power.
        let m = EnergyModel::ddr5_default();
        let secs_ps = 1_000_000_000_000u64; // 1 second
        let with_hw = m.energy(&result(1_000_000, 0), secs_ps, true);
        let without = m.energy(&result(1_000_000, 0), secs_ps, false);
        let delta = with_hw.total_j() - without.total_j();
        assert!(delta / without.total_j() < 0.005, "{delta}");
        assert!(delta > 0.0);
    }

    #[test]
    fn act_share_is_a_modest_fraction() {
        // The paper reports ≈13% for its workload mix. At a realistic
        // request rate (2M ACTs over ~40 ms of 4-core execution) our
        // constants land in the same regime.
        let m = EnergyModel::ddr5_default();
        let e = m.energy(&result(2_000_000, 0), 60_000_000_000, false); // 60 ms
        assert!(
            (0.03..0.35).contains(&e.act_share()),
            "act share {}",
            e.act_share()
        );
    }

    #[test]
    fn totals_add_up() {
        let m = EnergyModel::ddr5_default();
        let e = m.energy(&result(1000, 10), 1_000_000, true);
        assert!((e.total_j() - (e.act_j + e.non_act_j)).abs() < 1e-18);
    }
}
