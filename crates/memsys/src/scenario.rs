//! Declarative scenarios: describe [`Sim`] cells and grids as data.
//!
//! The paper's evaluation is a grid of scenarios; bench binaries and
//! sweeps should describe those cells as *data*, not as bespoke argument
//! plumbing. A [`ScenarioSpec`] is one cell — scheme, scheduler, mapping,
//! seed and a frontend — parsed from a small `key = value` text format
//! (same conventions as [`parse_trace`](crate::parse_trace): `#`
//! comments, blank lines ignored, line-numbered errors, no external
//! dependencies). A [`ScenarioGrid`] is a scheme × workload grid that
//! fans its cells through the `mint-exp` harness, normalizing each
//! workload row against the first scheme — bit-identical for any
//! `--jobs` count, and cell-for-cell identical to running each [`Sim`]
//! by hand.
//!
//! ```
//! use mint_memsys::ScenarioSpec;
//!
//! let spec = ScenarioSpec::parse(
//!     "# one zoo cell\n\
//!      scheme = MINT+RFM16\n\
//!      workload = lbm\n\
//!      requests = 500\n\
//!      seed = 11\n",
//! )
//! .unwrap();
//! let report = spec.run().unwrap();
//! assert_eq!(report.perf.result.requests, 4 * 500);
//! ```
//!
//! The grid form adds plural axes (`schemes = …`, `workloads = …`, with
//! `zoo` expanding to the full [`MitigationScheme::zoo`]); see
//! [`ScenarioGrid::parse`]. [`parse_any`] classifies a file as one or the
//! other, which is what the `run_scenario` bench binary feeds on.

use crate::address::AddressMapping;
use crate::config::{MitigationScheme, SystemConfig};
use crate::sim::{NormalizedPerf, RunReport, Sim};
use crate::workload::{mixes, read_trace_file, workload_by_name, WorkloadSpec};
use std::fmt;

/// A malformed scenario line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioParseError {
    /// 1-based line number (0 for file-level errors such as missing
    /// required keys).
    pub line: usize,
    /// What went wrong.
    pub reason: String,
}

impl fmt::Display for ScenarioParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "scenario: {}", self.reason)
        } else {
            write!(f, "scenario line {}: {}", self.line, self.reason)
        }
    }
}

impl std::error::Error for ScenarioParseError {}

/// One workload cell of a scenario, kept in its declarative form so
/// [`ScenarioSpec::to_text`] round-trips exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkloadCell {
    /// A rate run: one named SPEC2017 workload replicated on every core.
    Rate(String),
    /// Mix `n` of the canonical [`mixes`] (1-based, as printed in the
    /// paper's tables).
    Mix(usize),
    /// An explicit per-core list, rendered `a+b+c+d`.
    PerCore(Vec<String>),
}

impl WorkloadCell {
    /// Parses one whitespace-free cell token: a rate workload name
    /// (`lbm`), a mix index (`mix3`), or a `+`-joined per-core list
    /// (`lbm+mcf+gcc+povray`).
    ///
    /// # Errors
    ///
    /// Returns a message (no line number — the caller owns that) for
    /// unknown workload names and out-of-range mix indices.
    pub fn parse(token: &str) -> Result<WorkloadCell, String> {
        if let Some(n) = token.strip_prefix("mix") {
            if let Ok(idx) = n.parse::<usize>() {
                let count = mixes().len();
                if (1..=count).contains(&idx) {
                    return Ok(WorkloadCell::Mix(idx));
                }
                return Err(format!("mix index {idx} out of range 1..={count}"));
            }
        }
        let check = |name: &str| -> Result<(), String> {
            if workload_by_name(name).is_some() {
                Ok(())
            } else {
                Err(format!("unknown workload {name:?}"))
            }
        };
        if token.contains('+') {
            let names: Vec<String> = token.split('+').map(str::to_owned).collect();
            for name in &names {
                check(name)?;
            }
            return Ok(WorkloadCell::PerCore(names));
        }
        check(token)?;
        Ok(WorkloadCell::Rate(token.to_owned()))
    }

    /// The canonical text form (the inverse of [`parse`](Self::parse)).
    #[must_use]
    pub fn to_token(&self) -> String {
        match self {
            WorkloadCell::Rate(name) => name.clone(),
            WorkloadCell::Mix(n) => format!("mix{n}"),
            WorkloadCell::PerCore(names) => names.join("+"),
        }
    }

    /// Resolves the cell into one [`WorkloadSpec`] per core.
    ///
    /// # Panics
    ///
    /// Panics on unknown names or a per-core list whose length differs
    /// from `cores` — [`parse`](Self::parse) validates names, so this
    /// only fires for hand-built cells.
    #[must_use]
    pub fn resolve(&self, cores: u32) -> Vec<WorkloadSpec> {
        let lookup = |name: &str| {
            workload_by_name(name).unwrap_or_else(|| panic!("unknown workload {name:?}"))
        };
        match self {
            WorkloadCell::Rate(name) => vec![lookup(name); cores as usize],
            WorkloadCell::Mix(n) => {
                let mix = mixes()[n - 1];
                assert_eq!(mix.len(), cores as usize, "one workload spec per core");
                mix.to_vec()
            }
            WorkloadCell::PerCore(names) => {
                assert_eq!(names.len(), cores as usize, "one workload spec per core");
                names.iter().map(|n| lookup(n)).collect()
            }
        }
    }
}

/// The frontend half of a [`ScenarioSpec`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScenarioFrontend {
    /// Synthetic per-core streams from a [`WorkloadCell`].
    Workload(WorkloadCell),
    /// A plain-text trace file ([`read_trace_file`]), dealt round-robin
    /// across the cores.
    Trace(String),
}

/// One declarative scenario cell: deserializes into a [`Sim`] builder.
///
/// The text form is `key = value` lines (blank lines and `#` comments —
/// whole-line or trailing — ignored, keys in any order, each at most
/// once):
///
/// | key | value | default |
/// |---|---|---|
/// | `scheme` | a [`MitigationScheme::parse`] label | `Baseline` |
/// | `policy` | a [`SchedulePolicy::parse`] label | FR-FCFS |
/// | `mapping` | an [`AddressMapping::parse`] label | `RoBaRaCoCh` |
/// | `seed` | master seed (u64) | 0 |
/// | `cores` | request-generating cores (nonzero) | target config's |
/// | `channels` | memory channels (nonzero power of two) | target config's |
/// | `ranks` | ranks per channel (nonzero power of two) | target config's |
/// | `workload` | a [`WorkloadCell`] token | — |
/// | `requests` | LLC misses per core (workload frontend) | 10000 |
/// | `trace` | path to a trace file | — |
/// | `telemetry` | `on`/`off` — collect [`RunReport::telemetry`] | `off` |
///
/// Exactly one of `workload` / `trace` must be present.
///
/// [`SchedulePolicy::parse`]: crate::SchedulePolicy::parse
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// The scheme under evaluation.
    pub scheme: MitigationScheme,
    /// Channel arbitration policy.
    pub policy: crate::sched::SchedulePolicy,
    /// Physical-address mapping.
    pub mapping: AddressMapping,
    /// Master seed.
    pub seed: u64,
    /// Core-count override (`None` = the target config's cores). Mix and
    /// per-core workload cells still demand one spec per core, so this
    /// mainly scales *rate* cells (`workload = saturate`, 32 cores).
    pub cores: Option<u32>,
    /// Memory-channel override (`None` = the target config's topology).
    pub channels: Option<u32>,
    /// Ranks-per-channel override (`None` = the target config's topology).
    pub ranks: Option<u32>,
    /// Requests per core (workload frontend; traces run dry).
    pub requests_per_core: u32,
    /// Where requests come from.
    pub frontend: ScenarioFrontend,
    /// Collect the observability report ([`Sim::telemetry`]).
    pub telemetry: bool,
}

/// Default requests per core when a spec omits `requests`.
pub const DEFAULT_REQUESTS_PER_CORE: u32 = 10_000;

impl ScenarioSpec {
    /// Parses the single-cell text form (see the type docs for the keys).
    ///
    /// # Errors
    ///
    /// Returns the first malformed line (1-based, counting blank/comment
    /// lines) and why it failed; missing/conflicting frontend keys report
    /// line 0.
    pub fn parse(text: &str) -> Result<ScenarioSpec, ScenarioParseError> {
        let pairs = parse_kv(text)?;
        let mut spec = ScenarioSpec {
            scheme: MitigationScheme::Baseline,
            policy: crate::sched::SchedulePolicy::default(),
            mapping: AddressMapping::default(),
            seed: 0,
            cores: None,
            channels: None,
            ranks: None,
            requests_per_core: DEFAULT_REQUESTS_PER_CORE,
            frontend: ScenarioFrontend::Trace(String::new()), // placeholder
            telemetry: false,
        };
        let mut frontend = None;
        for Pair { line, key, value } in pairs {
            let err = |reason: String| ScenarioParseError { line, reason };
            match key.as_str() {
                "scheme" => {
                    spec.scheme = MitigationScheme::parse(&value)
                        .ok_or_else(|| err(format!("unknown scheme {value:?}")))?;
                }
                "policy" => {
                    spec.policy = crate::sched::SchedulePolicy::parse(&value)
                        .ok_or_else(|| err(format!("unknown policy {value:?}")))?;
                }
                "mapping" => {
                    spec.mapping = AddressMapping::parse(&value)
                        .ok_or_else(|| err(format!("unknown mapping {value:?}")))?;
                }
                "seed" => {
                    spec.seed = value
                        .parse()
                        .map_err(|e| err(format!("bad seed {value:?}: {e}")))?;
                }
                "requests" => {
                    spec.requests_per_core = parse_requests(&value).map_err(&err)?;
                }
                "cores" => {
                    spec.cores = Some(parse_cores(&value).map_err(&err)?);
                }
                "channels" => {
                    spec.channels = Some(parse_topology("channels", &value).map_err(&err)?);
                }
                "ranks" => {
                    spec.ranks = Some(parse_topology("ranks", &value).map_err(&err)?);
                }
                "workload" => {
                    set_frontend(
                        &mut frontend,
                        ScenarioFrontend::Workload(WorkloadCell::parse(&value).map_err(&err)?),
                        line,
                    )?;
                }
                "trace" => {
                    set_frontend(&mut frontend, ScenarioFrontend::Trace(value), line)?;
                }
                "telemetry" => {
                    spec.telemetry = parse_switch("telemetry", &value).map_err(&err)?;
                }
                other => return Err(err(format!("unknown key {other:?}"))),
            }
        }
        spec.frontend = frontend.ok_or(ScenarioParseError {
            line: 0,
            reason: "missing frontend: need `workload = …` or `trace = …`".to_owned(),
        })?;
        Ok(spec)
    }

    /// Renders the canonical text form; `parse(to_text(s)) == s` for any
    /// valid spec (pinned by test).
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("scheme = {}\n", self.scheme.label()));
        out.push_str(&format!("policy = {}\n", self.policy.label()));
        out.push_str(&format!("mapping = {}\n", self.mapping.label()));
        out.push_str(&format!("seed = {}\n", self.seed));
        if let Some(cores) = self.cores {
            out.push_str(&format!("cores = {cores}\n"));
        }
        if let Some(channels) = self.channels {
            out.push_str(&format!("channels = {channels}\n"));
        }
        if let Some(ranks) = self.ranks {
            out.push_str(&format!("ranks = {ranks}\n"));
        }
        if self.telemetry {
            out.push_str("telemetry = on\n");
        }
        match &self.frontend {
            ScenarioFrontend::Workload(cell) => {
                out.push_str(&format!("workload = {}\n", cell.to_token()));
                out.push_str(&format!("requests = {}\n", self.requests_per_core));
            }
            ScenarioFrontend::Trace(path) => {
                out.push_str(&format!("trace = {path}\n"));
                out.push_str(&format!("requests = {}\n", self.requests_per_core));
            }
        }
        out
    }

    /// Deserializes the spec into a ready-to-run [`Sim`] on `cfg` (with
    /// the spec's `channels`/`ranks` overrides applied, when present).
    ///
    /// # Errors
    ///
    /// Returns I/O and parse errors for a trace frontend whose file is
    /// unreadable or malformed.
    pub fn to_sim(&self, cfg: SystemConfig) -> Result<Sim<'static>, Box<dyn std::error::Error>> {
        let mut cfg = cfg;
        if let Some(cores) = self.cores {
            cfg.cores = cores;
        }
        if let Some(channels) = self.channels {
            cfg.channels = channels;
        }
        if let Some(ranks) = self.ranks {
            cfg.ranks = ranks;
        }
        let mut sim = Sim::new(cfg)
            .scheme(self.scheme)
            .policy(self.policy)
            .mapping(self.mapping)
            .seed(self.seed);
        if self.telemetry {
            sim = sim.telemetry();
        }
        Ok(match &self.frontend {
            ScenarioFrontend::Workload(cell) => {
                sim.workload(&cell.resolve(cfg.cores), self.requests_per_core)
            }
            ScenarioFrontend::Trace(path) => sim.trace(&read_trace_file(path)?),
        })
    }

    /// Builds and runs the scenario on the evaluated Table VI system.
    ///
    /// # Errors
    ///
    /// Propagates [`to_sim`](Self::to_sim) errors.
    pub fn run(&self) -> Result<RunReport, Box<dyn std::error::Error>> {
        Ok(self.to_sim(SystemConfig::table6())?.run())
    }
}

/// A declarative scheme × workload grid, run through the `mint-exp`
/// harness.
///
/// Every `(workload, scheme)` cell is an independent seeded [`Sim`] run
/// (workload `w` always runs with `seeds[w]`, so every scheme faces
/// identical traffic); each workload row is normalized against the
/// **first** scheme. Cells fan out via [`mint_exp::par_map`], so results
/// are bit-identical for any worker count — and cell-for-cell identical
/// to running each builder by hand.
///
/// The text form shares the [`ScenarioSpec`] conventions with plural
/// axes: `schemes = <label>…` (or `zoo`), `workloads = <cell>…`,
/// `requests = N`, `cores = N` / `channels = N` / `ranks = R` topology
/// overrides (cores nonzero, the rest nonzero powers of two), and either
/// `seed_base = N` (workload `w`
/// seeds at `seed_base + w`) or an explicit `seeds = <u64>…` list.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioGrid {
    /// The system under test.
    pub cfg: SystemConfig,
    /// Scheme axis; the first scheme is the normalization baseline.
    pub schemes: Vec<MitigationScheme>,
    /// Channel arbitration policy (shared by every cell).
    pub policy: crate::sched::SchedulePolicy,
    /// Physical-address mapping (shared by every cell).
    pub mapping: AddressMapping,
    /// Workload axis: one spec per core, per workload.
    pub workloads: Vec<Vec<WorkloadSpec>>,
    /// Display labels, parallel to `workloads`.
    pub workload_labels: Vec<String>,
    /// LLC misses per core per cell.
    pub requests_per_core: u32,
    /// The per-workload seed axis (shared across the scheme axis).
    pub seeds: SeedAxis,
    /// Collect per-cell observability reports
    /// ([`run_reports`](Self::run_reports)).
    pub telemetry: bool,
}

/// The per-workload seed axis of a [`ScenarioGrid`]: an explicit list,
/// or a base resolved against the workload axis at run time (so the
/// builder chain is order-insensitive).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SeedAxis {
    /// One explicit seed per workload.
    Explicit(Vec<u64>),
    /// Workload `w` runs with `base + w` (the bench-suite convention).
    Base(u64),
}

impl ScenarioGrid {
    /// An empty grid on `cfg` with the production defaults; chain the
    /// axis setters to populate it.
    #[must_use]
    pub fn new(cfg: SystemConfig) -> Self {
        Self {
            cfg,
            schemes: Vec::new(),
            policy: crate::sched::SchedulePolicy::default(),
            mapping: AddressMapping::default(),
            workloads: Vec::new(),
            workload_labels: Vec::new(),
            requests_per_core: DEFAULT_REQUESTS_PER_CORE,
            seeds: SeedAxis::Base(0),
            telemetry: false,
        }
    }

    /// Sets the scheme axis (first scheme = normalization baseline).
    #[must_use]
    pub fn schemes(mut self, schemes: &[MitigationScheme]) -> Self {
        self.schemes = schemes.to_vec();
        self
    }

    /// Sets the channel arbitration policy for every cell.
    #[must_use]
    pub fn policy(mut self, policy: crate::sched::SchedulePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the physical-address mapping for every cell.
    #[must_use]
    pub fn mapping(mut self, mapping: AddressMapping) -> Self {
        self.mapping = mapping;
        self
    }

    /// Sets the workload axis; labels derive from the spec names
    /// (`lbm`, or `a+b+c+d` for heterogeneous cells).
    #[must_use]
    pub fn workloads<W: AsRef<[WorkloadSpec]>>(mut self, workloads: &[W]) -> Self {
        self.workloads = workloads.iter().map(|w| w.as_ref().to_vec()).collect();
        self.workload_labels = self.workloads.iter().map(|w| cell_label(w)).collect();
        self
    }

    /// Sets the per-core request budget of every cell.
    #[must_use]
    pub fn requests_per_core(mut self, requests: u32) -> Self {
        self.requests_per_core = requests;
        self
    }

    /// Sets explicit per-workload seeds.
    #[must_use]
    pub fn seeds(mut self, seeds: &[u64]) -> Self {
        self.seeds = SeedAxis::Explicit(seeds.to_vec());
        self
    }

    /// Seeds workload `w` at `base + w` (the bench-suite convention);
    /// resolved against the workload axis at run time, so it chains
    /// before or after [`workloads`](Self::workloads).
    #[must_use]
    pub fn seed_base(mut self, base: u64) -> Self {
        self.seeds = SeedAxis::Base(base);
        self
    }

    /// Collects per-cell observability reports when running through
    /// [`run_reports`](Self::run_reports).
    #[must_use]
    pub fn telemetry(mut self) -> Self {
        self.telemetry = true;
        self
    }

    /// Parses the grid text form (see the type docs) onto the evaluated
    /// Table VI system.
    ///
    /// # Errors
    ///
    /// Returns the first malformed line and why it failed; missing
    /// required keys (`schemes`, `workloads`) report line 0.
    pub fn parse(text: &str) -> Result<ScenarioGrid, ScenarioParseError> {
        let pairs = parse_kv(text)?;
        let mut grid = ScenarioGrid::new(SystemConfig::table6());
        let mut had_seed_base = false;
        let mut had_seeds = false;
        let mut cells: Vec<WorkloadCell> = Vec::new();
        for Pair { line, key, value } in pairs {
            let err = |reason: String| ScenarioParseError { line, reason };
            match key.as_str() {
                "schemes" => {
                    if value.eq_ignore_ascii_case("zoo") {
                        grid.schemes = MitigationScheme::zoo();
                    } else {
                        grid.schemes = value
                            .split_whitespace()
                            .map(|s| {
                                MitigationScheme::parse(s)
                                    .ok_or_else(|| err(format!("unknown scheme {s:?}")))
                            })
                            .collect::<Result<_, _>>()?;
                    }
                }
                "workloads" => {
                    cells = value
                        .split_whitespace()
                        .map(|t| WorkloadCell::parse(t).map_err(&err))
                        .collect::<Result<_, _>>()?;
                }
                "policy" => {
                    grid.policy = crate::sched::SchedulePolicy::parse(&value)
                        .ok_or_else(|| err(format!("unknown policy {value:?}")))?;
                }
                "mapping" => {
                    grid.mapping = AddressMapping::parse(&value)
                        .ok_or_else(|| err(format!("unknown mapping {value:?}")))?;
                }
                "requests" => {
                    grid.requests_per_core = parse_requests(&value).map_err(&err)?;
                }
                "cores" => {
                    grid.cfg.cores = parse_cores(&value).map_err(&err)?;
                }
                "channels" => {
                    grid.cfg.channels = parse_topology("channels", &value).map_err(&err)?;
                }
                "ranks" => {
                    grid.cfg.ranks = parse_topology("ranks", &value).map_err(&err)?;
                }
                "seed_base" => {
                    had_seed_base = true;
                    grid.seeds = SeedAxis::Base(
                        value
                            .parse()
                            .map_err(|e| err(format!("bad seed_base {value:?}: {e}")))?,
                    );
                }
                "telemetry" => {
                    grid.telemetry = parse_switch("telemetry", &value).map_err(&err)?;
                }
                "seeds" => {
                    had_seeds = true;
                    grid.seeds = SeedAxis::Explicit(
                        value
                            .split_whitespace()
                            .map(|s| s.parse().map_err(|e| err(format!("bad seed {s:?}: {e}"))))
                            .collect::<Result<_, _>>()?,
                    );
                }
                other => return Err(err(format!("unknown key {other:?}"))),
            }
        }
        let file_err = |reason: &str| ScenarioParseError {
            line: 0,
            reason: reason.to_owned(),
        };
        if grid.schemes.is_empty() {
            return Err(file_err("missing `schemes = …`"));
        }
        if cells.is_empty() {
            return Err(file_err("missing `workloads = …`"));
        }
        if had_seeds && had_seed_base {
            return Err(file_err("give either `seed_base` or `seeds`, not both"));
        }
        grid.workload_labels = cells.iter().map(WorkloadCell::to_token).collect();
        grid.workloads = cells.iter().map(|c| c.resolve(grid.cfg.cores)).collect();
        Ok(grid)
    }

    /// Runs every `(workload, scheme)` cell and returns, per workload,
    /// the per-scheme results normalized against the first scheme.
    ///
    /// # Panics
    ///
    /// Panics if `schemes` is empty or an explicit seed axis has
    /// `workloads.len() != seeds.len()` (the per-cell panics of
    /// [`Sim::build`] also apply).
    #[must_use]
    pub fn run(&self) -> Vec<Vec<NormalizedPerf>> {
        assert!(!self.schemes.is_empty(), "need at least one scheme");
        let seeds: Vec<u64> = match &self.seeds {
            SeedAxis::Explicit(seeds) => {
                assert_eq!(self.workloads.len(), seeds.len(), "one seed per workload");
                seeds.clone()
            }
            SeedAxis::Base(base) => (0..self.workloads.len() as u64).map(|i| base + i).collect(),
        };
        let cells: Vec<(usize, usize)> = (0..self.workloads.len())
            .flat_map(|w| (0..self.schemes.len()).map(move |s| (w, s)))
            .collect();
        let flat = mint_exp::par_map(&cells, |_, &(w, s)| {
            Sim::new(self.cfg)
                .scheme(self.schemes[s])
                .policy(self.policy)
                .mapping(self.mapping)
                .workload(&self.workloads[w], self.requests_per_core)
                .seed(seeds[w])
                .run()
                .perf
        });
        flat.chunks(self.schemes.len())
            .map(|row| {
                let base = row[0];
                row.iter().map(|cell| cell.normalize(&base)).collect()
            })
            .collect()
    }

    /// Runs every `(workload, scheme)` cell like [`run`](Self::run) but
    /// returns the full per-cell [`RunReport`]s (telemetry attached when
    /// the grid's `telemetry` flag is set), indexed `[workload][scheme]`.
    /// Cells fan out through the same deterministic
    /// [`mint_exp::par_map`], so reports are bit-identical for any
    /// worker count.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`run`](Self::run).
    #[must_use]
    pub fn run_reports(&self) -> Vec<Vec<RunReport>> {
        assert!(!self.schemes.is_empty(), "need at least one scheme");
        let seeds: Vec<u64> = match &self.seeds {
            SeedAxis::Explicit(seeds) => {
                assert_eq!(self.workloads.len(), seeds.len(), "one seed per workload");
                seeds.clone()
            }
            SeedAxis::Base(base) => (0..self.workloads.len() as u64).map(|i| base + i).collect(),
        };
        let cells: Vec<(usize, usize)> = (0..self.workloads.len())
            .flat_map(|w| (0..self.schemes.len()).map(move |s| (w, s)))
            .collect();
        let flat = mint_exp::par_map(&cells, |_, &(w, s)| {
            let mut sim = Sim::new(self.cfg)
                .scheme(self.schemes[s])
                .policy(self.policy)
                .mapping(self.mapping)
                .workload(&self.workloads[w], self.requests_per_core)
                .seed(seeds[w]);
            if self.telemetry {
                sim = sim.telemetry();
            }
            sim.run()
        });
        let mut rows: Vec<Vec<RunReport>> = Vec::with_capacity(self.workloads.len());
        let mut flat = flat.into_iter();
        for _ in 0..self.workloads.len() {
            rows.push(flat.by_ref().take(self.schemes.len()).collect());
        }
        rows
    }
}

/// A parsed scenario file: one cell or a grid (see [`parse_any`]).
#[derive(Debug, Clone, PartialEq)]
pub enum Scenario {
    /// A single [`ScenarioSpec`] cell.
    Cell(ScenarioSpec),
    /// A scheme × workload [`ScenarioGrid`].
    Grid(ScenarioGrid),
}

/// Classifies and parses a scenario file: the plural axes (`schemes` /
/// `workloads`) make it a grid, otherwise it is a single cell.
///
/// # Errors
///
/// Propagates the respective parser's line-numbered error.
pub fn parse_any(text: &str) -> Result<Scenario, ScenarioParseError> {
    let is_grid = parse_kv(text)?
        .iter()
        .any(|p| p.key == "schemes" || p.key == "workloads");
    if is_grid {
        ScenarioGrid::parse(text).map(Scenario::Grid)
    } else {
        ScenarioSpec::parse(text).map(Scenario::Cell)
    }
}

/// Display label for a resolved workload cell: the shared name for a
/// rate run, `a+b+c+d` for heterogeneous cells.
fn cell_label(specs: &[WorkloadSpec]) -> String {
    match specs {
        [] => String::new(),
        [first, rest @ ..] if rest.iter().all(|w| w.name == first.name) => first.name.to_owned(),
        _ => specs.iter().map(|w| w.name).collect::<Vec<_>>().join("+"),
    }
}

/// Parses a `requests` value: a positive integer — a zero budget would
/// otherwise surface as a builder panic deep inside [`Sim::build`]
/// instead of a line-numbered parse error.
fn parse_requests(value: &str) -> Result<u32, String> {
    match value.parse::<u32>() {
        Ok(0) => Err(format!("bad requests {value:?}: need at least 1 per core")),
        Ok(r) => Ok(r),
        Err(e) => Err(format!("bad requests {value:?}: {e}")),
    }
}

/// Parses a `cores` value: any nonzero count — cores are request
/// generators, not address bits, so unlike `channels`/`ranks` they need
/// not be a power of two (mixes still demand exactly one spec per core,
/// checked when the workload cell resolves).
fn parse_cores(value: &str) -> Result<u32, String> {
    match value.parse::<u32>() {
        Ok(0) => Err("bad cores 0: need at least one core".to_owned()),
        Ok(n) => Ok(n),
        Err(e) => Err(format!("bad cores {value:?}: {e}")),
    }
}

/// Parses an on/off switch value (`telemetry`).
fn parse_switch(key: &str, value: &str) -> Result<bool, String> {
    match value.to_ascii_lowercase().as_str() {
        "on" | "true" | "1" => Ok(true),
        "off" | "false" | "0" => Ok(false),
        _ => Err(format!("bad {key} {value:?}: expected on or off")),
    }
}

/// Parses a topology axis (`channels` / `ranks`): a nonzero power of two,
/// because the decoder slices the physical address with bit masks — any
/// other count would silently alias banks instead of failing here with a
/// line number.
fn parse_topology(key: &str, value: &str) -> Result<u32, String> {
    match value.parse::<u32>() {
        Ok(n) if n.is_power_of_two() => Ok(n),
        Ok(n) => Err(format!("bad {key} {n}: need a nonzero power of two")),
        Err(e) => Err(format!("bad {key} {value:?}: {e}")),
    }
}

/// One `key = value` line.
struct Pair {
    line: usize,
    key: String,
    value: String,
}

/// Splits the text into `key = value` pairs, ignoring blank lines and
/// `#` comments (whole-line or trailing), rejecting duplicate keys.
fn parse_kv(text: &str) -> Result<Vec<Pair>, ScenarioParseError> {
    let mut out: Vec<Pair> = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let err = |reason: String| ScenarioParseError {
            line: i + 1,
            reason,
        };
        let Some((key, value)) = line.split_once('=') else {
            return Err(err(format!("expected `key = value`, got {line:?}")));
        };
        let key = key.trim().to_ascii_lowercase();
        let value = value.trim().to_owned();
        if value.is_empty() {
            return Err(err(format!("empty value for key {key:?}")));
        }
        if out.iter().any(|p| p.key == key) {
            return Err(err(format!("duplicate key {key:?}")));
        }
        out.push(Pair {
            line: i + 1,
            key,
            value,
        });
    }
    Ok(out)
}

/// Records a frontend key, rejecting a second one.
fn set_frontend(
    slot: &mut Option<ScenarioFrontend>,
    frontend: ScenarioFrontend,
    line: usize,
) -> Result<(), ScenarioParseError> {
    if slot.is_some() {
        return Err(ScenarioParseError {
            line,
            reason: "conflicting frontends: give either `workload` or `trace`, once".to_owned(),
        });
    }
    *slot = Some(frontend);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::SchedulePolicy;

    #[test]
    fn cell_spec_parses_with_defaults() {
        let spec = ScenarioSpec::parse("workload = lbm\n").unwrap();
        assert_eq!(spec.scheme, MitigationScheme::Baseline);
        assert_eq!(spec.policy, SchedulePolicy::frfcfs());
        assert_eq!(spec.mapping, AddressMapping::RoBaRaCoCh);
        assert_eq!(spec.seed, 0);
        assert_eq!(spec.cores, None);
        assert_eq!(spec.channels, None);
        assert_eq!(spec.ranks, None);
        assert_eq!(spec.requests_per_core, DEFAULT_REQUESTS_PER_CORE);
        assert_eq!(
            spec.frontend,
            ScenarioFrontend::Workload(WorkloadCell::Rate("lbm".into()))
        );
    }

    #[test]
    fn cell_spec_round_trips_through_text() {
        for spec in [
            ScenarioSpec {
                scheme: MitigationScheme::MintRfm { rfm_th: 16 },
                policy: SchedulePolicy::Fcfs,
                mapping: AddressMapping::RoCoRaBaCh,
                seed: 99,
                cores: None,
                channels: Some(4),
                ranks: Some(2),
                requests_per_core: 1234,
                frontend: ScenarioFrontend::Workload(WorkloadCell::Mix(3)),
                telemetry: true,
            },
            ScenarioSpec {
                scheme: MitigationScheme::McPara { p: 1.0 / 40.0 },
                policy: SchedulePolicy::FrFcfs { starvation_cap: 7 },
                mapping: AddressMapping::ChRaBaRoCo,
                seed: 0,
                cores: Some(32),
                channels: Some(2),
                ranks: None,
                requests_per_core: 1,
                frontend: ScenarioFrontend::Workload(WorkloadCell::PerCore(vec![
                    "lbm".into(),
                    "mcf".into(),
                    "gcc".into(),
                    "povray".into(),
                ])),
                telemetry: false,
            },
            ScenarioSpec {
                scheme: MitigationScheme::Mint,
                policy: SchedulePolicy::default(),
                mapping: AddressMapping::default(),
                seed: 7,
                cores: None,
                channels: None,
                ranks: None,
                requests_per_core: DEFAULT_REQUESTS_PER_CORE,
                frontend: ScenarioFrontend::Trace("examples/traces/sample100.trace".into()),
                telemetry: false,
            },
        ] {
            let round = ScenarioSpec::parse(&spec.to_text()).unwrap();
            assert_eq!(round, spec, "text form:\n{}", spec.to_text());
        }
    }

    /// Satellite of the serve PR: one exhaustive property test covering
    /// every `ScenarioSpec` key — `scheme`, `policy`, `mapping`, `seed`,
    /// `cores`, `channels`, `ranks`, all three `workload` cell shapes
    /// plus `trace`, and `requests` — through `to_text` → `parse`.
    #[test]
    fn every_spec_key_round_trips_through_text() {
        use crate::workload::{mixes, spec_rate_workloads};
        use mint_exp::prop::{forall, u32_in, u64_in, usize_in};

        let schemes = MitigationScheme::zoo();
        let mappings = AddressMapping::all();
        let mut names: Vec<&'static str> = spec_rate_workloads().iter().map(|w| w.name).collect();
        names.push("saturate");
        let mix_count = mixes().len();

        forall(64, 0x5CE_4A210, |case, rng| {
            let pick_name = |rng: &mut _| names[usize_in(rng, 0, names.len())].to_owned();
            let policy = match usize_in(rng, 0, 3) {
                0 => SchedulePolicy::Fcfs,
                1 => SchedulePolicy::frfcfs(),
                _ => SchedulePolicy::FrFcfs {
                    starvation_cap: u32_in(rng, 0, 64),
                },
            };
            let frontend = match usize_in(rng, 0, 4) {
                0 => ScenarioFrontend::Workload(WorkloadCell::Rate(pick_name(rng))),
                1 => ScenarioFrontend::Workload(WorkloadCell::Mix(usize_in(rng, 1, mix_count + 1))),
                2 => {
                    // A 1-element list has no `+` and canonically
                    // re-parses as a rate cell; per-core means >= 2.
                    let n = usize_in(rng, 2, 6);
                    ScenarioFrontend::Workload(WorkloadCell::PerCore(
                        (0..n).map(|_| pick_name(rng)).collect(),
                    ))
                }
                _ => ScenarioFrontend::Trace(format!("traces/case{case}.trace")),
            };
            let pow2 = |rng: &mut _| 1u32 << usize_in(rng, 0, 4);
            let spec = ScenarioSpec {
                scheme: schemes[usize_in(rng, 0, schemes.len())],
                policy,
                mapping: mappings[usize_in(rng, 0, mappings.len())],
                seed: u64_in(rng, 0, u64::MAX),
                cores: (usize_in(rng, 0, 2) == 1).then(|| u32_in(rng, 1, 64)),
                channels: (usize_in(rng, 0, 2) == 1).then(|| pow2(rng)),
                ranks: (usize_in(rng, 0, 2) == 1).then(|| pow2(rng)),
                requests_per_core: u32_in(rng, 1, 1_000_000),
                frontend,
                telemetry: usize_in(rng, 0, 2) == 1,
            };
            let text = spec.to_text();
            let round =
                ScenarioSpec::parse(&text).unwrap_or_else(|e| panic!("case {case}: {e}\n{text}"));
            assert_eq!(round, spec, "case {case}:\n{text}");
        });
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        for (text, line, needle) in [
            ("workload = lbm\nbogus line\n", 2, "expected `key = value`"),
            ("scheme = nope\nworkload = lbm\n", 1, "unknown scheme"),
            ("workload = lbm\npolicy = lifo\n", 2, "unknown policy"),
            ("mapping = RowMajor\nworkload = lbm\n", 1, "unknown mapping"),
            ("workload = lbm\nseed = -3\n", 2, "bad seed"),
            ("workload = lbm\nrequests = many\n", 2, "bad requests"),
            ("workload = lbm\nrequests = 0\n", 2, "at least 1 per core"),
            ("workload = lbm\ncores = 0\n", 2, "at least one core"),
            ("workload = lbm\ncores = x\n", 2, "bad cores"),
            ("workload = lbm\nchannels = 3\n", 2, "nonzero power of two"),
            ("workload = lbm\nchannels = x\n", 2, "bad channels"),
            ("workload = lbm\nranks = 0\n", 2, "nonzero power of two"),
            ("workload = lbm\nranks = -1\n", 2, "bad ranks"),
            ("workload = nosuch\n", 1, "unknown workload"),
            ("workload = mix99\n", 1, "out of range"),
            ("workload = lbm\nworkload = mcf\n", 2, "duplicate key"),
            ("workload = lbm\ntrace = foo\n", 2, "conflicting frontends"),
            ("workload = lbm\nvolume = 11\n", 2, "unknown key"),
            ("workload =\n", 1, "empty value"),
            // Comment and blank lines still count towards line numbers.
            (
                "# header\n\nworkload = lbm # fine\nseed = x # boom\n",
                4,
                "bad seed",
            ),
        ] {
            let e = ScenarioSpec::parse(text).unwrap_err();
            assert_eq!(e.line, line, "{text:?}");
            assert!(e.reason.contains(needle), "{text:?} → {}", e.reason);
            assert!(e.to_string().contains("scenario line"));
        }
        let e = ScenarioSpec::parse("seed = 4\n").unwrap_err();
        assert_eq!(e.line, 0);
        assert!(e.reason.contains("missing frontend"));
        assert!(e.to_string().starts_with("scenario:"));
    }

    #[test]
    fn grid_parses_axes_and_seeds() {
        let grid = ScenarioGrid::parse(
            "# tiny zoo\n\
             schemes = Baseline MINT mint+rfm16\n\
             workloads = lbm mix2 lbm+mcf+gcc+povray\n\
             requests = 777\n\
             seed_base = 40\n\
             policy = fcfs\n\
             mapping = RoCoRaBaCh\n",
        )
        .unwrap();
        assert_eq!(grid.schemes.len(), 3);
        assert_eq!(grid.schemes[2], MitigationScheme::MintRfm { rfm_th: 16 });
        assert_eq!(grid.workloads.len(), 3);
        assert_eq!(
            grid.workload_labels,
            vec!["lbm", "mix2", "lbm+mcf+gcc+povray"]
        );
        assert_eq!(grid.workloads[0].len(), 4);
        assert_eq!(grid.seeds, SeedAxis::Base(40));
        assert_eq!(grid.requests_per_core, 777);
        assert_eq!(grid.policy, SchedulePolicy::Fcfs);
        assert_eq!(grid.mapping, AddressMapping::RoCoRaBaCh);

        let zoo = ScenarioGrid::parse("schemes = zoo\nworkloads = mcf\n").unwrap();
        assert_eq!(zoo.schemes, MitigationScheme::zoo());
        assert_eq!(zoo.seeds, SeedAxis::Base(0));
    }

    #[test]
    fn topology_keys_set_the_grid_config_and_reject_bad_counts() {
        let grid = ScenarioGrid::parse(
            "schemes = zoo\nworkloads = mcf\ncores = 8\nchannels = 2\nranks = 4\n",
        )
        .unwrap();
        assert_eq!(grid.cfg.cores, 8);
        assert_eq!(grid.cfg.channels, 2);
        assert_eq!(grid.cfg.ranks, 4);
        assert_eq!(
            grid.workloads[0].len(),
            8,
            "rate cells resolve against the overridden core count \
             regardless of key order"
        );
        let dflt = ScenarioGrid::parse("schemes = zoo\nworkloads = mcf\n").unwrap();
        assert_eq!(
            (dflt.cfg.channels, dflt.cfg.ranks),
            (1, 1),
            "topology defaults to the Table VI single-channel DIMM"
        );
        let e = ScenarioGrid::parse("schemes = zoo\nworkloads = mcf\nchannels = 6\n").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.reason.contains("nonzero power of two"), "{}", e.reason);
    }

    #[test]
    fn cell_topology_overrides_apply_to_the_sim_config() {
        let spec = ScenarioSpec::parse("workload = lbm\nchannels = 2\nranks = 2\nrequests = 10\n")
            .unwrap();
        assert_eq!((spec.channels, spec.ranks), (Some(2), Some(2)));
        let report = spec.run().unwrap();
        assert_eq!(
            report.perf.result.requests,
            4 * 10,
            "the overridden sim runs"
        );
    }

    #[test]
    fn cores_override_scales_a_rate_cell() {
        let spec = ScenarioSpec::parse("workload = saturate\ncores = 32\nrequests = 5\n").unwrap();
        assert_eq!(spec.cores, Some(32));
        let report = spec.run().unwrap();
        assert_eq!(report.cores.len(), 32, "one outcome per overridden core");
        assert_eq!(report.perf.result.requests, 32 * 5);
    }

    #[test]
    fn grid_rejects_missing_axes_and_seed_conflicts() {
        assert!(ScenarioGrid::parse("workloads = lbm\n")
            .unwrap_err()
            .reason
            .contains("missing `schemes"));
        assert!(ScenarioGrid::parse("schemes = zoo\n")
            .unwrap_err()
            .reason
            .contains("missing `workloads"));
        assert!(
            ScenarioGrid::parse("schemes = zoo\nworkloads = lbm\nseed_base = 1\nseeds = 2\n")
                .unwrap_err()
                .reason
                .contains("not both")
        );
    }

    #[test]
    fn parse_any_classifies_cell_vs_grid() {
        match parse_any("workload = lbm\n").unwrap() {
            Scenario::Cell(c) => assert_eq!(c.requests_per_core, DEFAULT_REQUESTS_PER_CORE),
            Scenario::Grid(_) => panic!("single cell misclassified"),
        }
        match parse_any("schemes = zoo\nworkloads = lbm\n").unwrap() {
            Scenario::Grid(g) => assert_eq!(g.schemes.len(), MitigationScheme::zoo().len()),
            Scenario::Cell(_) => panic!("grid misclassified"),
        }
    }

    #[test]
    fn grid_run_matches_hand_built_sims() {
        let grid = ScenarioGrid::parse(
            "schemes = Baseline MINT\nworkloads = mcf\nrequests = 1000\nseed_base = 9\n",
        )
        .unwrap();
        let rows = grid.run();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].len(), 2);
        assert!(
            (rows[0][0].normalized - 1.0).abs() < 1e-12,
            "baseline is 1.0"
        );
        let direct = Sim::ddr5()
            .scheme(MitigationScheme::Mint)
            .workload(&grid.workloads[0], 1000)
            .seed(9)
            .run();
        assert_eq!(rows[0][1].duration_ps, direct.perf.duration_ps);
        assert_eq!(rows[0][1].result, direct.perf.result);
    }

    #[test]
    fn grid_seed_base_chains_in_any_order() {
        // seed_base resolves against the workload axis at run time, so
        // calling it before .workloads() must seed identically.
        let schemes = [MitigationScheme::Baseline, MitigationScheme::Mint];
        let cells = [[workload_by_name("mcf").unwrap(); 4]];
        let before = ScenarioGrid::new(SystemConfig::table6())
            .seed_base(9000)
            .schemes(&schemes)
            .workloads(&cells)
            .requests_per_core(800)
            .run();
        let after = ScenarioGrid::new(SystemConfig::table6())
            .schemes(&schemes)
            .workloads(&cells)
            .requests_per_core(800)
            .seed_base(9000)
            .run();
        assert_eq!(before, after);
    }

    #[test]
    #[should_panic(expected = "one seed per workload")]
    fn grid_seed_mismatch_rejected() {
        let mut grid = ScenarioGrid::parse("schemes = zoo\nworkloads = lbm\n").unwrap();
        grid.seeds = SeedAxis::Explicit(vec![1, 2]);
        let _ = grid.run();
    }

    #[test]
    fn scheme_policy_mapping_labels_round_trip() {
        for scheme in MitigationScheme::zoo() {
            assert_eq!(
                MitigationScheme::parse(&scheme.label()),
                Some(scheme),
                "{}",
                scheme.label()
            );
        }
        for policy in [
            SchedulePolicy::Fcfs,
            SchedulePolicy::frfcfs(),
            SchedulePolicy::FrFcfs { starvation_cap: 9 },
        ] {
            assert_eq!(SchedulePolicy::parse(&policy.label()), Some(policy));
        }
        for mapping in AddressMapping::all() {
            assert_eq!(AddressMapping::parse(mapping.label()), Some(mapping));
        }
        assert_eq!(MitigationScheme::parse("bogus"), None);
        assert_eq!(SchedulePolicy::parse("lifo"), None);
        assert_eq!(AddressMapping::parse("RowMajor"), None);
    }
}
