//! The DDR5 memory controller: bank timing, REF/RFM/DRFM scheduling and
//! per-bank MINT trackers.

use crate::config::{MitigationScheme, SystemConfig};
use crate::workload::Request;
use mint_core::{InDramTracker, Mint, MintConfig};
use mint_dram::RowId;
use mint_rng::{Rng64, Xoshiro256StarStar};

/// Aggregate statistics of one simulation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimResult {
    /// Requests serviced.
    pub requests: u64,
    /// Row-buffer hits (CAS only, no ACT).
    pub row_hits: u64,
    /// Demand activations (row misses).
    pub demand_acts: u64,
    /// Mitigative victim-refresh activations performed by the device.
    pub mitigative_acts: u64,
    /// RFM commands issued (MINT+RFM only).
    pub rfm_commands: u64,
    /// DRFM commands issued (MC-PARA only).
    pub drfm_commands: u64,
    /// Reads (for the energy model).
    pub reads: u64,
    /// Writes.
    pub writes: u64,
    /// Total REF windows elapsed (approximate, from final time).
    pub refs: u64,
}

#[derive(Debug)]
struct BankState {
    ready_at_ps: u64,
    open_row: Option<u32>,
    raa: u32,
    /// REF index this bank has processed mitigations up to.
    ref_cursor: u64,
    tracker: Mint,
}

/// A single-channel DDR5 memory controller with per-bank FCFS service.
///
/// Requests are serviced in arrival order per bank; the controller models
/// the three bank-time thieves the paper measures — REF (tRFC every tREFI,
/// all banks), RFM (tRFC/2 per threshold crossing, one bank) and DRFM
/// (tRFC per sampled activation, one bank) — plus row-buffer hit/miss
/// latencies. Each bank carries a real [`Mint`] tracker so mitigative
/// activations are counted with the actual selection logic, not a constant.
#[derive(Debug)]
pub struct MemoryController {
    cfg: SystemConfig,
    scheme: MitigationScheme,
    banks: Vec<BankState>,
    rng: Xoshiro256StarStar,
    result: SimResult,
}

impl MemoryController {
    /// Creates a controller for the given scheme.
    #[must_use]
    pub fn new(cfg: SystemConfig, scheme: MitigationScheme, seed: u64) -> Self {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        let tracker_cfg = match scheme {
            MitigationScheme::MintRfm { rfm_th } => MintConfig::rfm(rfm_th),
            _ => MintConfig::ddr5_default(),
        };
        let banks = (0..cfg.banks)
            .map(|_| BankState {
                ready_at_ps: 0,
                open_row: None,
                raa: 0,
                ref_cursor: 0,
                tracker: Mint::new(tracker_cfg, &mut rng),
            })
            .collect();
        Self {
            cfg,
            scheme,
            banks,
            rng,
            result: SimResult::default(),
        }
    }

    /// The statistics accumulated so far.
    #[must_use]
    pub fn result(&self) -> SimResult {
        self.result
    }

    /// Pushes `start` past any REF window it collides with, and processes
    /// the device's per-REF mitigation for this bank (counting the victim
    /// refreshes the tracker requests).
    fn align_with_refresh(&mut self, bank: usize, mut start: u64) -> u64 {
        let refi = self.cfg.t_refi_ps;
        let rfc = self.cfg.t_rfc_ps;
        // Process REF-boundary mitigations this bank has crossed.
        let current_ref = start / refi;
        while self.banks[bank].ref_cursor < current_ref {
            self.banks[bank].ref_cursor += 1;
            match self.scheme {
                MitigationScheme::Mint | MitigationScheme::MintRfm { .. } => {
                    let d = self.banks[bank].tracker.on_refresh(&mut self.rng);
                    if d.is_some() {
                        self.result.mitigative_acts += 2; // blast radius 1
                    }
                }
                _ => {}
            }
            // DDR5 RFM: each REF decrements the Rolling Accumulated ACT
            // counter by the threshold, so only banks exceeding RFM_TH
            // activations per tREFI ever trigger an RFM command (this is
            // why the paper's RFM overheads are small: "MINT incurs RFM
            // overheads only when ACT count is greater than RFMTH").
            if let MitigationScheme::MintRfm { rfm_th } = self.scheme {
                let b = &mut self.banks[bank];
                b.raa = b.raa.saturating_sub(rfm_th);
            }
        }
        // REF blocks all banks for tRFC at each tREFI boundary.
        let offset = start % refi;
        if offset < rfc {
            start = start - offset + rfc;
        }
        start
    }

    /// Services one request arriving at `arrival_ps`; returns its
    /// completion time.
    pub fn service(&mut self, req: Request, arrival_ps: u64) -> u64 {
        assert!((req.bank as usize) < self.banks.len(), "bank out of range");
        self.result.requests += 1;
        if req.is_read {
            self.result.reads += 1;
        } else {
            self.result.writes += 1;
        }
        let start0 = arrival_ps.max(self.banks[req.bank as usize].ready_at_ps);
        let start = self.align_with_refresh(req.bank as usize, start0);

        let is_hit = self.banks[req.bank as usize].open_row == Some(req.row);
        let (latency, busy) = if is_hit {
            self.result.row_hits += 1;
            (self.cfg.hit_latency_ps(), self.cfg.hit_latency_ps())
        } else {
            self.on_activation(req.bank as usize, req.row);
            (
                self.cfg.miss_latency_ps(),
                self.cfg.t_rc_ps.max(self.cfg.miss_latency_ps()),
            )
        };
        let completion = start + latency;
        let mut ready = start + busy;

        // Post-ACT mitigation traffic.
        if !is_hit {
            match self.scheme {
                MitigationScheme::MintRfm { rfm_th } => {
                    let bank = &mut self.banks[req.bank as usize];
                    bank.raa += 1;
                    if bank.raa >= rfm_th {
                        bank.raa = 0;
                        self.result.rfm_commands += 1;
                        // The RFM gives the device a mitigation opportunity.
                        let d = bank.tracker.on_refresh(&mut self.rng);
                        if d.is_some() {
                            self.result.mitigative_acts += 2;
                        }
                        ready += self.cfg.t_rfm_ps;
                    }
                }
                MitigationScheme::McPara { p } => {
                    if self.rng.gen_bool(p) {
                        self.result.drfm_commands += 1;
                        self.result.mitigative_acts += 2;
                        ready += self.cfg.t_drfm_ps;
                    }
                }
                MitigationScheme::Baseline | MitigationScheme::Mint => {}
            }
        }

        let bank = &mut self.banks[req.bank as usize];
        bank.open_row = Some(req.row);
        bank.ready_at_ps = ready;
        completion
    }

    fn on_activation(&mut self, bank: usize, row: u32) {
        self.result.demand_acts += 1;
        if matches!(
            self.scheme,
            MitigationScheme::Mint | MitigationScheme::MintRfm { .. }
        ) {
            let b = &mut self.banks[bank];
            b.tracker.on_activation(RowId(row), &mut self.rng);
        }
    }

    /// Finalises the run at `end_ps`, recording elapsed REF count.
    pub fn finish(&mut self, end_ps: u64) {
        self.result.refs = end_ps / self.cfg.t_refi_ps * u64::from(self.cfg.banks);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(bank: u32, row: u32) -> Request {
        Request {
            bank,
            row,
            is_read: true,
            think_time_ps: 0,
        }
    }

    fn mc(scheme: MitigationScheme) -> MemoryController {
        MemoryController::new(SystemConfig::table6(), scheme, 7)
    }

    #[test]
    fn row_hit_is_faster_than_miss() {
        let mut m = mc(MitigationScheme::Baseline);
        let t_rfc = SystemConfig::table6().t_rfc_ps;
        // Issue after the initial REF window to avoid alignment noise.
        let c1 = m.service(req(0, 10), t_rfc);
        let c2 = m.service(req(0, 10), c1); // same row: hit
        let c3 = m.service(req(0, 99), c2); // different row: miss
        let miss1 = c1 - t_rfc;
        let hit = c2 - c1;
        assert_eq!(miss1, SystemConfig::table6().miss_latency_ps());
        assert_eq!(hit, SystemConfig::table6().hit_latency_ps());
        assert!(c3 - c2 >= SystemConfig::table6().miss_latency_ps());
        assert_eq!(m.result().row_hits, 1);
        assert_eq!(m.result().demand_acts, 2);
    }

    #[test]
    fn refresh_window_blocks_service() {
        let mut m = mc(MitigationScheme::Baseline);
        // Arrive right at a tREFI boundary: must wait out tRFC.
        let refi = SystemConfig::table6().t_refi_ps;
        let c = m.service(req(0, 1), refi);
        assert!(c >= refi + SystemConfig::table6().t_rfc_ps);
    }

    #[test]
    fn mint_adds_no_bank_time_but_counts_mitigations() {
        let cfg = SystemConfig::table6();
        let mut base = mc(MitigationScheme::Baseline);
        let mut mint = mc(MitigationScheme::Mint);
        let mut t_base = cfg.t_rfc_ps;
        let mut t_mint = cfg.t_rfc_ps;
        for i in 0..2000u32 {
            t_base = base.service(req(i % 4, i), t_base);
            t_mint = mint.service(req(i % 4, i), t_mint);
        }
        assert_eq!(t_base, t_mint, "MINT must not add bank time");
        assert!(mint.result().mitigative_acts > 0);
        assert_eq!(base.result().mitigative_acts, 0);
    }

    #[test]
    fn rfm_blocks_bank_periodically() {
        let cfg = SystemConfig::table6();
        let mut base = mc(MitigationScheme::Baseline);
        let mut rfm = mc(MitigationScheme::MintRfm { rfm_th: 16 });
        let mut t_base = cfg.t_rfc_ps;
        let mut t_rfm = cfg.t_rfc_ps;
        for i in 0..2000u32 {
            t_base = base.service(req(0, i), t_base);
            t_rfm = rfm.service(req(0, i), t_rfm);
        }
        assert!(t_rfm > t_base, "RFM16 must slow a bank-hammering stream");
        // Back-to-back ACTs run at ~81 per tREFI; the REF decrement absorbs
        // 16 of those per interval, so most ACTs still accumulate RAA.
        assert!(
            rfm.result().rfm_commands >= 80,
            "got {}",
            rfm.result().rfm_commands
        );
    }

    #[test]
    fn drfm_blocks_with_probability() {
        let cfg = SystemConfig::table6();
        let mut para = mc(MitigationScheme::McPara { p: 0.25 });
        let mut t = cfg.t_rfc_ps;
        for i in 0..4000u32 {
            t = para.service(req(0, i), t);
        }
        let drfms = para.result().drfm_commands;
        assert!(
            (800..1200).contains(&drfms),
            "expected ≈1000 DRFMs at p=0.25, got {drfms}"
        );
    }

    #[test]
    fn per_bank_queues_are_independent() {
        let cfg = SystemConfig::table6();
        let mut m = mc(MitigationScheme::Baseline);
        let t0 = cfg.t_rfc_ps;
        let c0 = m.service(req(0, 1), t0);
        // A request to another bank at the same instant is not delayed by
        // bank 0's busy time.
        let c1 = m.service(req(1, 1), t0);
        assert_eq!(c0, c1);
    }

    #[test]
    fn determinism() {
        let run = || {
            let mut m = mc(MitigationScheme::McPara { p: 0.1 });
            let mut t = 0;
            for i in 0..1000u32 {
                t = m.service(req(i % 8, i * 7), t);
            }
            (t, m.result())
        };
        assert_eq!(run(), run());
    }
}
