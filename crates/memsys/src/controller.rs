//! The bank/backend engine of the DDR5 channel: per-bank state, REF/RFM/
//! DRFM scheduling and a per-bank mitigation backend (any tracker of the
//! zoo, not just MINT).
//!
//! This is the *execution* layer of the command-level pipeline
//! (`source → queue → scheduler → timing → bank/backend`): given a decoded
//! address and an earliest start time it plays the request against the
//! bank's row buffer, the REF windows and the scheme's mitigation
//! machinery, and reports when the request starts and completes. *When* a
//! request gets here — and in what order relative to other banks — is the
//! [`Channel`](crate::Channel) scheduler's decision; the inter-bank
//! constraints (tRRD/tFAW/tCCD) live in [`timing`](crate::timing) and are
//! layered on by the channel, so direct [`MemoryController::service`]
//! calls (unit tests, single-bank studies) see pure per-bank behaviour.

use crate::address::{AddressDecoder, AddressMapping, DecodedAddr};
use crate::backend::{refis_per_refw, MitigationBackend};
use crate::config::{MitigationScheme, SystemConfig};
use crate::events::MemEvent;
use crate::snapshot::{SnapshotReader, SnapshotWriter};
use crate::telemetry::EngineTelemetry;
use crate::workload::Request;
use mint_core::{InDramTracker, MitigationDecision};
use mint_dram::RowId;
use mint_rng::{Rng64, Xoshiro256StarStar};
use std::sync::atomic::{AtomicBool, Ordering};

/// Process-wide default refresh-alignment mode for newly created engines
/// (see [`set_reference_refresh_default`]).
static REFERENCE_REFRESH_DEFAULT: AtomicBool = AtomicBool::new(false);

/// Makes every subsequently created [`MemoryController`] (and the channel
/// scheduler's REF lookahead) locate tREFI boundaries with the retained
/// division-per-call reference rule instead of the monotone
/// boundary-tracking fast path.
///
/// Like [`set_reference_planner_default`](crate::set_reference_planner_default),
/// this is a differential-testing oracle: both modes are exact and
/// bit-identical — `ci_smoke` re-renders the benchmark artifacts under
/// both and asserts byte equality. Leave it off outside of tests.
pub fn set_reference_refresh_default(on: bool) {
    REFERENCE_REFRESH_DEFAULT.store(on, Ordering::SeqCst);
}

/// Whether newly created engines use the division-per-call reference
/// refresh alignment (crate-internal: the channel scheduler mirrors the
/// mode for its REF-window lookahead).
pub(crate) fn reference_refresh_default() -> bool {
    REFERENCE_REFRESH_DEFAULT.load(Ordering::SeqCst)
}

/// Aggregate statistics of one simulation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimResult {
    /// Requests serviced.
    pub requests: u64,
    /// Row-buffer hits (CAS only, no ACT).
    pub row_hits: u64,
    /// Demand activations (row misses).
    pub demand_acts: u64,
    /// Mitigative victim-refresh activations performed by the device or
    /// the controller — one per victim row actually refreshed, per
    /// [`MitigationDecision::victim_act_count`] (an aggressor mitigation
    /// costs 2 at blast radius 1, a ProTRR-style victim refresh exactly 1).
    pub mitigative_acts: u64,
    /// RFM commands issued (MINT+RFM only).
    pub rfm_commands: u64,
    /// DRFM commands issued (MC-PARA and Graphene).
    pub drfm_commands: u64,
    /// Reads (for the energy model).
    pub reads: u64,
    /// Writes.
    pub writes: u64,
    /// Per-bank REF events elapsed: one per (REF command, bank) pair, for
    /// every REF command whose tRFC window *started* by the end of the run
    /// (including the one at t = 0 — a partial final tREFI still paid for
    /// its REF). This is exactly what [`EnergyModel`](crate::EnergyModel)
    /// multiplies by its per-REF-per-bank energy.
    pub refs: u64,
}

impl SimResult {
    /// Row-buffer hit rate over all serviced requests (0 when idle).
    #[must_use]
    pub fn row_hit_rate(&self) -> f64 {
        if self.requests == 0 {
            return 0.0;
        }
        self.row_hits as f64 / self.requests as f64
    }

    /// Accumulates another controller's statistics into this one — how a
    /// multi-channel [`System`](crate::System) folds per-channel results
    /// into the run total.
    pub fn absorb(&mut self, other: &SimResult) {
        self.requests += other.requests;
        self.row_hits += other.row_hits;
        self.demand_acts += other.demand_acts;
        self.mitigative_acts += other.mitigative_acts;
        self.rfm_commands += other.rfm_commands;
        self.drfm_commands += other.drfm_commands;
        self.reads += other.reads;
        self.writes += other.writes;
        self.refs += other.refs;
    }
}

/// When one serviced request started, finished, and whether it hit the
/// open row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceOutcome {
    /// When the bank actually began the request (≥ the requested earliest
    /// start: pushed past bank busy time and REF windows).
    pub start_ps: u64,
    /// When the data transfer completed.
    pub completion_ps: u64,
    /// Whether the request hit the open row (no ACT needed).
    pub row_hit: bool,
}

/// The *cold* per-bank state: mitigation bookkeeping touched only when a
/// bank is actually serviced. The two *hot* fields the channel scheduler
/// scans every decision — ready time and open row — live in dense
/// struct-of-arrays form on [`MemoryController`] (`bank_ready_ps` /
/// `bank_open_row`) so the FR-FCFS lookahead walks two flat arrays
/// instead of striding through backend-sized structs.
#[derive(Debug)]
struct BankState {
    raa: u32,
    /// REF index this bank has processed mitigations up to.
    ref_cursor: u64,
    backend: MitigationBackend,
}

/// Sentinel for "no row open" in the dense `bank_open_row` array (rows are
/// decoder outputs bounded by `rows_per_bank`, which never reaches it).
pub(crate) const OPEN_NONE: u32 = u32::MAX;

/// Pushes `start` past the all-bank REF window it collides with, without
/// touching any per-bank state — the pure timing rule shared by the bank
/// engine and the channel scheduler's lookahead (REF blocks every bank for
/// tRFC at each tREFI boundary).
#[must_use]
pub fn past_ref_window(cfg: &SystemConfig, start: u64) -> u64 {
    let offset = start % cfg.t_refi_ps;
    if offset < cfg.t_rfc_ps {
        start - offset + cfg.t_rfc_ps
    } else {
        start
    }
}

/// The per-bank execution engine of a single-channel DDR5 memory system.
///
/// The engine models the three bank-time thieves the paper measures — REF
/// (tRFC every tREFI, all banks), RFM (tRFC/2 per threshold crossing, one
/// bank) and DRFM (tRFC per sampled activation, one bank) — plus
/// row-buffer hit/miss latencies. Each bank carries a real
/// [`MitigationBackend`] (MINT or any baseline tracker of the zoo), so
/// mitigative activations are counted with the actual selection logic,
/// not a constant.
#[derive(Debug)]
pub struct MemoryController {
    cfg: SystemConfig,
    scheme: MitigationScheme,
    decoder: AddressDecoder,
    banks: Vec<BankState>,
    /// When each bank finishes its current work (hot, scheduler-scanned).
    bank_ready_ps: Vec<u64>,
    /// Open row per bank, [`OPEN_NONE`] when closed (hot,
    /// scheduler-scanned).
    bank_open_row: Vec<u32>,
    rng: Xoshiro256StarStar,
    result: SimResult,
    /// Executed-command log (service order); only fed when
    /// [`enable_event_log`](Self::enable_event_log) was called.
    events: Vec<MemEvent>,
    log_events: bool,
    /// Engine-side telemetry (per-bank ACT totals, precharges); only fed
    /// when [`enable_telemetry`](Self::enable_telemetry) was called.
    telemetry: Option<Box<EngineTelemetry>>,
    /// Memoised tREFI quotient of the last service: the REF index, the
    /// start of its period and the start of the period after it. Service
    /// times are near-monotone, so the per-service `start / tREFI` is
    /// strength-reduced to compares: in-period calls reuse the quotient,
    /// small forward crossings *step* the boundary pair one period at a
    /// time, and only long jumps (or out-of-order callers) pay a real
    /// division — never a stale quotient, both bounds are checked.
    ref_quot: u64,
    ref_base_ps: u64,
    ref_next_ps: u64,
    /// Locate boundaries with the division-per-call reference rule
    /// instead (differential-testing oracle, see
    /// [`set_reference_refresh_default`]).
    reference_refresh: bool,
}

/// The victims of `decision` that actually exist in a bank of `rows` rows
/// (`victim_rows` clips the row-0 edge itself; the top edge is ours to
/// enforce, like `bank.contains` in the sim engine).
fn in_bank_victims(
    decision: MitigationDecision,
    blast_radius: u32,
    rows: u32,
) -> impl Iterator<Item = RowId> {
    decision
        .victim_rows(blast_radius)
        .into_iter()
        .filter(move |v| v.0 < rows)
}

/// Where the engine drops [`MemEvent`]s for one mitigation site: the
/// shared log plus the gate and the (bank, time) coordinates every event
/// of the site carries.
struct EventSink<'a> {
    events: &'a mut Vec<MemEvent>,
    on: bool,
    bank: u32,
    at_ps: u64,
}

impl EventSink<'_> {
    fn push(&mut self, event: MemEvent) {
        if self.on {
            self.events.push(event);
        }
    }
}

/// Performs a mitigation: charges one mitigative ACT per in-bank victim
/// row and — when a tracker performs it — shows the tracker its own
/// (otherwise silent) victim refreshes, which is what makes PRCT, Mithril
/// and ProTRR immune to transitive attacks (§V-G). Every mitigation site
/// (REF, RFM, in-DRAM proactive, Graphene DRFM, MC-PARA sampling) charges
/// through here, so cost accounting cannot drift between them — and every
/// victim refresh lands in the event log as one
/// [`MemEvent::MitigativeRefresh`].
fn apply_mitigation(
    result: &mut SimResult,
    mut tracker: Option<&mut dyn InDramTracker>,
    decision: MitigationDecision,
    blast_radius: u32,
    rows: u32,
    sink: &mut EventSink<'_>,
) {
    if decision.is_none() {
        return;
    }
    for v in in_bank_victims(decision, blast_radius, rows) {
        result.mitigative_acts += 1;
        sink.push(MemEvent::MitigativeRefresh {
            bank: sink.bank,
            row: v.0,
            at_ps: sink.at_ps,
        });
        if let Some(t) = tracker.as_deref_mut() {
            t.on_mitigative_refresh(v);
        }
    }
}

impl MemoryController {
    /// Creates a controller for the given scheme with the default address
    /// mapping.
    #[must_use]
    pub fn new(cfg: SystemConfig, scheme: MitigationScheme, seed: u64) -> Self {
        Self::with_mapping(cfg, scheme, AddressMapping::default(), seed)
    }

    /// Creates a controller decoding request addresses with `mapping`.
    #[must_use]
    pub fn with_mapping(
        cfg: SystemConfig,
        scheme: MitigationScheme,
        mapping: AddressMapping,
        seed: u64,
    ) -> Self {
        let decoder = AddressDecoder::new(&cfg, mapping);
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        // One bank state per (rank, bank) of the channel, rank-major —
        // indexed by `DecodedAddr::channel_bank`.
        let channel_banks = cfg.banks_per_channel();
        let banks = (0..channel_banks)
            .map(|_| BankState {
                raa: 0,
                ref_cursor: 0,
                backend: MitigationBackend::for_scheme(scheme, &cfg, &mut rng),
            })
            .collect();
        Self {
            cfg,
            scheme,
            decoder,
            banks,
            bank_ready_ps: vec![0; channel_banks as usize],
            bank_open_row: vec![OPEN_NONE; channel_banks as usize],
            rng,
            result: SimResult::default(),
            events: Vec::new(),
            log_events: false,
            telemetry: None,
            ref_quot: 0,
            ref_base_ps: 0,
            ref_next_ps: cfg.t_refi_ps,
            reference_refresh: reference_refresh_default(),
        }
    }

    /// Turns on the executed-command log ([`MemEvent`] per ACT/PRE/REF/
    /// RFM/DRFM/victim-refresh, in service order). Off by default — the
    /// perf sweeps pay nothing for the hook. The buffer is preallocated
    /// here and recycled by [`drain_events`](Self::drain_events) (drain
    /// keeps capacity), so `capture_events` runs don't regrow it every
    /// batch.
    pub fn enable_event_log(&mut self) {
        self.log_events = true;
        if self.events.capacity() == 0 {
            self.events.reserve(4096);
        }
    }

    /// Drains the executed-command log accumulated since the last drain
    /// (empty unless [`enable_event_log`](Self::enable_event_log) was
    /// called).
    pub fn drain_events(&mut self) -> std::vec::Drain<'_, MemEvent> {
        self.events.drain(..)
    }

    /// Turns on engine-side telemetry (per-bank activation totals and
    /// precharge counts). Off by default — every hook site is a branch on
    /// a dead `Option`, so non-telemetry runs pay nothing.
    pub fn enable_telemetry(&mut self) {
        if self.telemetry.is_none() {
            self.telemetry = Some(Box::new(EngineTelemetry::new(self.banks.len())));
        }
    }

    /// The engine's telemetry state, when enabled.
    #[must_use]
    pub fn telemetry(&self) -> Option<&EngineTelemetry> {
        self.telemetry.as_deref()
    }

    /// Number of banks this controller manages (ranks × banks).
    #[must_use]
    pub fn bank_count(&self) -> usize {
        self.banks.len()
    }

    /// The statistics accumulated so far.
    #[must_use]
    pub fn result(&self) -> SimResult {
        self.result
    }

    /// The scheme this controller evaluates.
    #[must_use]
    pub fn scheme(&self) -> MitigationScheme {
        self.scheme
    }

    /// The address decoder in force.
    #[must_use]
    pub fn decoder(&self) -> &AddressDecoder {
        &self.decoder
    }

    /// When `bank` finishes its current work (0 when idle).
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    #[must_use]
    pub fn bank_ready_ps(&self, bank: u32) -> u64 {
        self.bank_ready_ps[bank as usize]
    }

    /// The row currently open in `bank`'s row buffer, if any. This is the
    /// engine's *lazy* view: a REF boundary the bank has not yet crossed in
    /// service order may still close it (the channel scheduler treats the
    /// prediction as a hint; the engine settles hit/miss truthfully).
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    #[must_use]
    pub fn open_row(&self, bank: u32) -> Option<u32> {
        let row = self.bank_open_row[bank as usize];
        (row != OPEN_NONE).then_some(row)
    }

    /// The dense per-bank hot state — `(ready_ps, open_row)` arrays, the
    /// latter with [`OPEN_NONE`] sentinels — scanned by the channel
    /// scheduler's earliest-start lookahead without per-bank accessor
    /// calls.
    pub(crate) fn bank_tables(&self) -> (&[u64], &[u32]) {
        (&self.bank_ready_ps, &self.bank_open_row)
    }

    /// The mitigation backend of one bank (introspection for tests and
    /// Table-IX-style storage reports).
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    #[must_use]
    pub fn backend(&self, bank: usize) -> &MitigationBackend {
        &self.banks[bank].backend
    }

    /// Pushes `start` past any REF window it collides with, and processes
    /// the device's per-REF mitigation for this bank (counting the victim
    /// refreshes the tracker requests).
    ///
    /// An all-bank REF precharges every bank, so each crossed tREFI
    /// boundary also closes this bank's row buffer — post-REF requests to
    /// the previously open row are genuine row misses whose ACTs the
    /// tracker must observe.
    fn align_with_refresh(&mut self, bank: usize, start: u64) -> u64 {
        let refi = self.cfg.t_refi_ps;
        let rows = self.cfg.rows_per_bank;
        let blast = self.cfg.blast_radius;
        let refw = refis_per_refw();
        // Process REF-boundary mitigations this bank has crossed.
        let (current_ref, ref_base) = self.ref_index_at(start);
        if self.banks[bank].ref_cursor < current_ref {
            // REF is an all-bank precharge: the row buffer does not survive.
            if self.bank_open_row[bank] != OPEN_NONE {
                if self.log_events {
                    self.events.push(MemEvent::Pre {
                        bank: bank as u32,
                        at_ps: (self.banks[bank].ref_cursor + 1) * refi,
                    });
                }
                if let Some(t) = &mut self.telemetry {
                    t.precharges += 1;
                }
            }
            self.bank_open_row[bank] = OPEN_NONE;
        }
        while self.banks[bank].ref_cursor < current_ref {
            self.banks[bank].ref_cursor += 1;
            let b = &mut self.banks[bank];
            let mut sink = EventSink {
                events: &mut self.events,
                on: self.log_events,
                bank: bank as u32,
                at_ps: b.ref_cursor * refi,
            };
            sink.push(MemEvent::Ref {
                bank: bank as u32,
                ref_index: b.ref_cursor,
                at_ps: b.ref_cursor * refi,
            });
            match &mut b.backend {
                MitigationBackend::None | MitigationBackend::McSample { .. } => {}
                MitigationBackend::InDram(tracker) => {
                    let d = tracker.on_refresh(&mut self.rng);
                    apply_mitigation(
                        &mut self.result,
                        Some(tracker.as_mut()),
                        d,
                        blast,
                        rows,
                        &mut sink,
                    );
                }
                MitigationBackend::McTracker(tracker) => {
                    // MC-side tables (Graphene) mitigate on threshold
                    // crossings, not at REF — but they reset their table
                    // every tREFW.
                    if b.ref_cursor % refw == 0 {
                        tracker.reset(&mut self.rng);
                    }
                }
            }
            // DDR5 RFM: each REF decrements the Rolling Accumulated ACT
            // counter by the threshold, so only banks exceeding RFM_TH
            // activations per tREFI ever trigger an RFM command (this is
            // why the paper's RFM overheads are small: "MINT incurs RFM
            // overheads only when ACT count is greater than RFMTH").
            if let MitigationScheme::MintRfm { rfm_th } = self.scheme {
                b.raa = b.raa.saturating_sub(rfm_th);
            }
        }
        // past_ref_window, reusing this call's period base instead of
        // dividing a second time.
        let offset = start - ref_base;
        if offset < self.cfg.t_rfc_ps {
            ref_base + self.cfg.t_rfc_ps
        } else {
            start
        }
    }

    /// The tREFI index and period base containing `start`, via the
    /// memoised boundary pair: in-period calls are two compares, small
    /// forward crossings step the pair one period at a time, and only
    /// long jumps (or out-of-order starts) divide. The reference mode
    /// divides every call — same answer, differential oracle.
    #[inline]
    fn ref_index_at(&mut self, start: u64) -> (u64, u64) {
        let refi = self.cfg.t_refi_ps;
        if self.reference_refresh {
            let q = start / refi;
            return (q, q * refi);
        }
        if start < self.ref_base_ps || start >= self.ref_next_ps {
            // Step forward for near crossings (the steady-state case:
            // service times advance by less than a few tREFI per call);
            // rebuild by division for long idle gaps or regressions.
            let mut steps = 4u32;
            loop {
                if start >= self.ref_base_ps && start < self.ref_next_ps {
                    break;
                }
                if start < self.ref_base_ps || steps == 0 {
                    let q = start / refi;
                    self.ref_quot = q;
                    self.ref_base_ps = q * refi;
                    self.ref_next_ps = self.ref_base_ps + refi;
                    break;
                }
                steps -= 1;
                self.ref_quot += 1;
                self.ref_base_ps = self.ref_next_ps;
                self.ref_next_ps += refi;
            }
        }
        (self.ref_quot, self.ref_base_ps)
    }

    /// Services one request arriving at `arrival_ps`; returns its
    /// completion time. Convenience wrapper over
    /// [`service_decoded`](Self::service_decoded) that decodes `req.addr`
    /// with the controller's mapping.
    pub fn service(&mut self, req: Request, arrival_ps: u64) -> u64 {
        let decoded = self.decoder.decode(req.addr);
        self.service_decoded(decoded, req.is_read, arrival_ps)
            .completion_ps
    }

    /// Services one decoded request no earlier than `not_before_ps`;
    /// reports start, completion and hit/miss. Bank state is indexed by
    /// the decoded `(rank, bank_group, bank)` coordinates
    /// ([`DecodedAddr::channel_bank`]); the decoded channel is the
    /// [`System`](crate::System) router's concern, not this controller's.
    ///
    /// # Panics
    ///
    /// Panics if the decoded rank/bank is out of range for the configured
    /// channel.
    pub fn service_decoded(
        &mut self,
        decoded: DecodedAddr,
        is_read: bool,
        not_before_ps: u64,
    ) -> ServiceOutcome {
        let bank_idx = decoded.channel_bank(self.decoder.org()) as usize;
        assert!(bank_idx < self.banks.len(), "bank out of range");
        self.result.requests += 1;
        if is_read {
            self.result.reads += 1;
        } else {
            self.result.writes += 1;
        }
        let row = decoded.row;
        debug_assert!(row != OPEN_NONE, "row collides with the open-row sentinel");
        let start0 = not_before_ps.max(self.bank_ready_ps[bank_idx]);
        let start = self.align_with_refresh(bank_idx, start0);

        let prev_open = self.bank_open_row[bank_idx];
        let is_hit = prev_open == row;
        if !is_hit {
            if self.log_events {
                if prev_open != OPEN_NONE {
                    // Row conflict: the miss precharges the old row first.
                    self.events.push(MemEvent::Pre {
                        bank: bank_idx as u32,
                        at_ps: start,
                    });
                }
                self.events.push(MemEvent::Act {
                    bank: bank_idx as u32,
                    row,
                    at_ps: start,
                });
            }
            if let Some(t) = &mut self.telemetry {
                t.bank_acts[bank_idx] += 1;
                if prev_open != OPEN_NONE {
                    t.precharges += 1;
                }
            }
        }
        let (latency, busy) = if is_hit {
            self.result.row_hits += 1;
            (self.cfg.hit_latency_ps(), self.cfg.hit_latency_ps())
        } else {
            (
                self.cfg.miss_latency_ps(),
                self.cfg.t_rc_ps.max(self.cfg.miss_latency_ps()),
            )
        };
        let completion = start + latency;
        let mut ready = start + busy;

        // A mitigation command (RFM/DRFM) behind the ACT precharges the
        // bank, so the freshly opened row does not survive it.
        let mut row_survives = true;

        if !is_hit {
            self.result.demand_acts += 1;
            let rows = self.cfg.rows_per_bank;
            let blast = self.cfg.blast_radius;
            let b = &mut self.banks[bank_idx];
            let mut sink = EventSink {
                events: &mut self.events,
                on: self.log_events,
                bank: bank_idx as u32,
                at_ps: start,
            };
            match &mut b.backend {
                MitigationBackend::None => {}
                MitigationBackend::InDram(tracker) => {
                    // The device sees every demand ACT. REF-synchronised
                    // trackers return None here; if an RFM-co-designed
                    // tracker volunteers a decision, it rides refresh time
                    // (no extra bank block).
                    if let Some(d) = tracker.on_activation(RowId(row), &mut self.rng) {
                        apply_mitigation(
                            &mut self.result,
                            Some(tracker.as_mut()),
                            d,
                            blast,
                            rows,
                            &mut sink,
                        );
                    }
                }
                MitigationBackend::McSample { p } => {
                    // MC-PARA: sampled ACTs are followed by a blocking DRFM
                    // around the just-activated row; no tracker sees the
                    // victim refreshes (that is PARA's whole design).
                    let p = *p;
                    if self.rng.gen_bool(p) {
                        self.result.drfm_commands += 1;
                        sink.push(MemEvent::Drfm {
                            bank: bank_idx as u32,
                            at_ps: start,
                        });
                        apply_mitigation(
                            &mut self.result,
                            None,
                            MitigationDecision::Aggressor(RowId(row)),
                            blast,
                            rows,
                            &mut sink,
                        );
                        ready += self.cfg.t_drfm_ps;
                        row_survives = false;
                    }
                }
                MitigationBackend::McTracker(tracker) => {
                    // Graphene: the MC-side table counts the ACT; a
                    // threshold crossing issues a DRFM-priced mitigation.
                    if let Some(d) = tracker.on_activation(RowId(row), &mut self.rng) {
                        self.result.drfm_commands += 1;
                        sink.push(MemEvent::Drfm {
                            bank: bank_idx as u32,
                            at_ps: start,
                        });
                        apply_mitigation(
                            &mut self.result,
                            Some(tracker.as_mut()),
                            d,
                            blast,
                            rows,
                            &mut sink,
                        );
                        ready += self.cfg.t_drfm_ps;
                        row_survives = false;
                    }
                }
            }

            // MINT+RFM: the MC counts per-bank activations and issues an
            // RFM (a bank-blocking mitigation opportunity) each threshold
            // crossing.
            if let MitigationScheme::MintRfm { rfm_th } = self.scheme {
                let b = &mut self.banks[bank_idx];
                b.raa += 1;
                if b.raa >= rfm_th {
                    b.raa = 0;
                    self.result.rfm_commands += 1;
                    let mut sink = EventSink {
                        events: &mut self.events,
                        on: self.log_events,
                        bank: bank_idx as u32,
                        at_ps: start,
                    };
                    sink.push(MemEvent::Rfm {
                        bank: bank_idx as u32,
                        at_ps: start,
                    });
                    if let MitigationBackend::InDram(tracker) = &mut b.backend {
                        let d = tracker.on_refresh(&mut self.rng);
                        apply_mitigation(
                            &mut self.result,
                            Some(tracker.as_mut()),
                            d,
                            blast,
                            rows,
                            &mut sink,
                        );
                    }
                    ready += self.cfg.t_rfm_ps;
                    row_survives = false;
                }
            }
        }

        if !row_survives {
            // The mitigation command behind the ACT precharges the bank.
            if self.log_events {
                self.events.push(MemEvent::Pre {
                    bank: bank_idx as u32,
                    at_ps: ready,
                });
            }
            if let Some(t) = &mut self.telemetry {
                t.precharges += 1;
            }
        }
        self.bank_open_row[bank_idx] = if row_survives { row } else { OPEN_NONE };
        self.bank_ready_ps[bank_idx] = ready;
        ServiceOutcome {
            start_ps: start,
            completion_ps: completion,
            row_hit: is_hit,
        }
    }

    /// Serialises the engine's dynamic state: bank slabs (RAA counters,
    /// REF cursors, tracker words), the hot ready/open-row arrays, the RNG
    /// stream position, accumulated statistics, the REF memoisation pair
    /// and any undrained events. Config, scheme, decoder and the
    /// `log_events` / `reference_refresh` knobs are *not* serialised — a
    /// restore target is rebuilt from the same spec and process-wide
    /// defaults.
    pub(crate) fn snapshot_into(&self, w: &mut SnapshotWriter) {
        w.push(self.banks.len() as u64);
        for b in &self.banks {
            w.push_u32(b.raa);
            w.push(b.ref_cursor);
            w.push_words(&b.backend.snapshot_state());
        }
        for &t in &self.bank_ready_ps {
            w.push(t);
        }
        for &row in &self.bank_open_row {
            w.push_u32(row);
        }
        for s in self.rng.state() {
            w.push(s);
        }
        let r = &self.result;
        for c in [
            r.requests,
            r.row_hits,
            r.demand_acts,
            r.mitigative_acts,
            r.rfm_commands,
            r.drfm_commands,
            r.reads,
            r.writes,
            r.refs,
        ] {
            w.push(c);
        }
        w.push(self.ref_quot);
        w.push(self.ref_base_ps);
        w.push(self.ref_next_ps);
        w.push(self.events.len() as u64);
        for e in &self.events {
            for word in e.encode_words() {
                w.push(word);
            }
        }
        // Telemetry words ride behind the stable layout, and only when the
        // layer is enabled — a non-telemetry checkpoint is unchanged.
        if let Some(t) = &self.telemetry {
            t.snapshot_into(w);
        }
    }

    /// Restores the state captured by [`snapshot_into`](Self::snapshot_into)
    /// into an engine freshly built for the same config and scheme.
    pub(crate) fn restore_from(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), String> {
        let banks = usize::try_from(r.take()?)
            .map_err(|_| "engine: bank count overflows usize".to_string())?;
        if banks != self.banks.len() {
            return Err(format!(
                "engine: checkpoint has {banks} banks, state has {}",
                self.banks.len()
            ));
        }
        for b in &mut self.banks {
            b.raa = r.take_u32()?;
            b.ref_cursor = r.take()?;
            b.backend.restore_state(r.take_words()?)?;
        }
        for t in &mut self.bank_ready_ps {
            *t = r.take()?;
        }
        for row in &mut self.bank_open_row {
            *row = r.take_u32()?;
        }
        let state = [r.take()?, r.take()?, r.take()?, r.take()?];
        if state == [0; 4] {
            return Err("engine: all-zero RNG state".to_string());
        }
        self.rng = Xoshiro256StarStar::from_state(state);
        self.result = SimResult {
            requests: r.take()?,
            row_hits: r.take()?,
            demand_acts: r.take()?,
            mitigative_acts: r.take()?,
            rfm_commands: r.take()?,
            drfm_commands: r.take()?,
            reads: r.take()?,
            writes: r.take()?,
            refs: r.take()?,
        };
        self.ref_quot = r.take()?;
        self.ref_base_ps = r.take()?;
        self.ref_next_ps = r.take()?;
        let pending = usize::try_from(r.take()?)
            .map_err(|_| "engine: event count overflows usize".to_string())?;
        self.events.clear();
        for _ in 0..pending {
            let words = [r.take()?, r.take()?, r.take()?, r.take()?];
            self.events.push(MemEvent::decode_words(words)?);
        }
        if let Some(t) = &mut self.telemetry {
            t.restore_from(r)?;
        }
        Ok(())
    }

    /// Finalises the run at `end_ps`, recording elapsed REF events.
    ///
    /// A REF command fires at every tREFI boundary starting at t = 0 (the
    /// controller blocks `[k·tREFI, k·tREFI + tRFC)` for every `k ≥ 0`),
    /// and each all-bank REF refreshes every bank of every rank of the
    /// channel — so the run elapses
    /// `(⌊end/tREFI⌋ + 1) × ranks × banks` per-bank REF events. Rounding
    /// is *up* to the REF whose window has started: a partial final tREFI
    /// has already paid its REF energy, which keeps [`SimResult::refs`]
    /// consistent with the per-REF-per-bank energy the
    /// [`EnergyModel`](crate::EnergyModel) multiplies by.
    pub fn finish(&mut self, end_ps: u64) {
        self.result.refs =
            (end_ps / self.cfg.t_refi_ps + 1) * u64::from(self.cfg.banks_per_channel());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req_in(cfg: &SystemConfig, bank: u32, row: u32) -> Request {
        let d = AddressDecoder::new(cfg, AddressMapping::default());
        Request {
            addr: d.encode_bank_row(bank, row, 0),
            is_read: true,
            think_time_ps: 0,
        }
    }

    fn req(bank: u32, row: u32) -> Request {
        req_in(&SystemConfig::table6(), bank, row)
    }

    fn mc(scheme: MitigationScheme) -> MemoryController {
        MemoryController::new(SystemConfig::table6(), scheme, 7)
    }

    #[test]
    fn row_hit_is_faster_than_miss() {
        let mut m = mc(MitigationScheme::Baseline);
        let t_rfc = SystemConfig::table6().t_rfc_ps;
        // Issue after the initial REF window to avoid alignment noise.
        let c1 = m.service(req(0, 10), t_rfc);
        let c2 = m.service(req(0, 10), c1); // same row: hit
        let c3 = m.service(req(0, 99), c2); // different row: miss
        let miss1 = c1 - t_rfc;
        let hit = c2 - c1;
        assert_eq!(miss1, SystemConfig::table6().miss_latency_ps());
        assert_eq!(hit, SystemConfig::table6().hit_latency_ps());
        assert!(c3 - c2 >= SystemConfig::table6().miss_latency_ps());
        assert_eq!(m.result().row_hits, 1);
        assert_eq!(m.result().demand_acts, 2);
    }

    #[test]
    fn hit_ignores_the_column() {
        // Two different columns of the same row are both row hits — the
        // decoder's column field affects the address, not the row buffer.
        let cfg = SystemConfig::table6();
        let d = AddressDecoder::new(&cfg, AddressMapping::default());
        let mut m = mc(MitigationScheme::Baseline);
        let mk = |col| Request {
            addr: d.encode_bank_row(0, 10, col),
            is_read: true,
            think_time_ps: 0,
        };
        let c1 = m.service(mk(0), cfg.t_rfc_ps);
        let _ = m.service(mk(97), c1);
        assert_eq!(m.result().row_hits, 1);
        assert_eq!(m.result().demand_acts, 1);
    }

    #[test]
    fn refresh_window_blocks_service() {
        let mut m = mc(MitigationScheme::Baseline);
        // Arrive right at a tREFI boundary: must wait out tRFC.
        let refi = SystemConfig::table6().t_refi_ps;
        let c = m.service(req(0, 1), refi);
        assert!(c >= refi + SystemConfig::table6().t_rfc_ps);
    }

    #[test]
    fn past_ref_window_matches_service_alignment() {
        let cfg = SystemConfig::table6();
        assert_eq!(past_ref_window(&cfg, 0), cfg.t_rfc_ps);
        assert_eq!(past_ref_window(&cfg, cfg.t_rfc_ps - 1), cfg.t_rfc_ps);
        assert_eq!(past_ref_window(&cfg, cfg.t_rfc_ps), cfg.t_rfc_ps);
        assert_eq!(
            past_ref_window(&cfg, cfg.t_refi_ps + 5),
            cfg.t_refi_ps + cfg.t_rfc_ps
        );
        let mid = cfg.t_refi_ps / 2;
        assert_eq!(past_ref_window(&cfg, mid), mid);
    }

    #[test]
    fn ref_closes_the_row_buffer() {
        // Regression: an all-bank REF precharges every bank, so a request
        // that crosses a tREFI boundary must re-activate even if it targets
        // the row that was open before the REF.
        let cfg = SystemConfig::table6();
        let mut m = mc(MitigationScheme::Baseline);
        let c1 = m.service(req(0, 10), cfg.t_rfc_ps);
        assert_eq!(m.result().demand_acts, 1);
        // Next request to the same row, but after the next REF boundary.
        let _ = m.service(req(0, 10), cfg.t_refi_ps + cfg.t_rfc_ps);
        assert_eq!(m.result().row_hits, 0, "post-REF access must be a miss");
        assert_eq!(m.result().demand_acts, 2, "its ACT must be visible");
        let _ = c1;
    }

    #[test]
    fn ref_closes_rows_on_every_bank_independently() {
        let cfg = SystemConfig::table6();
        let mut m = mc(MitigationScheme::Baseline);
        let _ = m.service(req(0, 10), cfg.t_rfc_ps);
        let _ = m.service(req(1, 10), cfg.t_rfc_ps);
        // Bank 0 crosses the REF; bank 1 is accessed within the same window
        // and keeps its row open until *it* crosses one.
        let _ = m.service(req(0, 10), cfg.t_refi_ps + cfg.t_rfc_ps);
        let _ = m.service(req(1, 10), cfg.t_rfc_ps + 1_000_000);
        assert_eq!(m.result().row_hits, 1, "bank 1 pre-REF access still hits");
        let _ = m.service(req(1, 10), cfg.t_refi_ps + cfg.t_rfc_ps);
        assert_eq!(m.result().row_hits, 1, "bank 1 post-REF access misses");
    }

    #[test]
    fn rfm_closes_the_row_buffer() {
        // With RFM_TH = 1 every ACT triggers an RFM, which precharges the
        // bank: back-to-back same-row requests can never hit.
        let cfg = SystemConfig::table6();
        let mut m = mc(MitigationScheme::MintRfm { rfm_th: 1 });
        let mut t = cfg.t_rfc_ps;
        for _ in 0..4 {
            t = m.service(req(0, 10), t);
        }
        assert_eq!(m.result().row_hits, 0, "RFM must close the row");
        assert_eq!(m.result().demand_acts, 4);
    }

    #[test]
    fn drfm_closes_the_row_buffer() {
        // MC-PARA with p = 1: every ACT is followed by a DRFM.
        let cfg = SystemConfig::table6();
        let mut m = mc(MitigationScheme::McPara { p: 1.0 });
        let mut t = cfg.t_rfc_ps;
        for _ in 0..4 {
            t = m.service(req(0, 10), t);
        }
        assert_eq!(m.result().row_hits, 0, "DRFM must close the row");
        assert_eq!(m.result().drfm_commands, 4);
    }

    #[test]
    fn mint_adds_no_bank_time_but_counts_mitigations() {
        let cfg = SystemConfig::table6();
        let mut base = mc(MitigationScheme::Baseline);
        let mut mint = mc(MitigationScheme::Mint);
        let mut t_base = cfg.t_rfc_ps;
        let mut t_mint = cfg.t_rfc_ps;
        for i in 0..2000u32 {
            t_base = base.service(req(i % 4, i), t_base);
            t_mint = mint.service(req(i % 4, i), t_mint);
        }
        assert_eq!(t_base, t_mint, "MINT must not add bank time");
        assert!(mint.result().mitigative_acts > 0);
        assert_eq!(base.result().mitigative_acts, 0);
    }

    #[test]
    fn in_dram_zoo_adds_no_bank_time() {
        // Every in-DRAM tracker mitigates inside the REF's tRFC: bank
        // timing must be bit-identical to the baseline.
        let cfg = SystemConfig::table6();
        for scheme in [
            MitigationScheme::Mithril,
            MitigationScheme::ProTrr,
            MitigationScheme::SimpleTrr,
            MitigationScheme::Prct,
            MitigationScheme::Pride,
            MitigationScheme::Parfm,
        ] {
            let mut base = mc(MitigationScheme::Baseline);
            let mut zoo = mc(scheme);
            let mut t_base = cfg.t_rfc_ps;
            let mut t_zoo = cfg.t_rfc_ps;
            for i in 0..2000u32 {
                t_base = base.service(req(i % 4, i), t_base);
                t_zoo = zoo.service(req(i % 4, i), t_zoo);
            }
            assert_eq!(t_base, t_zoo, "{} must not add bank time", scheme.label());
            assert!(
                zoo.result().mitigative_acts > 0,
                "{} should mitigate on this hammer-y stream",
                scheme.label()
            );
        }
    }

    #[test]
    fn protrr_charges_one_act_per_victim_refresh() {
        // ProTRR's REF mitigation is a single-row VictimRefresh; the old
        // constant `+= 2` would double-charge it.
        let cfg = SystemConfig::table6();
        let mut m = mc(MitigationScheme::ProTrr);
        let mut t = cfg.t_rfc_ps;
        // Hammer one row on bank 0 across several tREFI windows.
        for i in 0..2000u32 {
            t = m.service(req(0, 1000 + (i % 2)), t);
        }
        let refs_crossed = t / cfg.t_refi_ps;
        assert!(m.result().mitigative_acts > 0);
        assert!(
            m.result().mitigative_acts <= refs_crossed,
            "one victim ACT per REF opportunity at most: {} acts over {} REFs",
            m.result().mitigative_acts,
            refs_crossed
        );
    }

    #[test]
    fn graphene_issues_drfm_on_threshold_crossings() {
        let cfg = SystemConfig::table6();
        let mut m = mc(MitigationScheme::Graphene);
        let mut t = cfg.t_rfc_ps;
        // Alternate two rows so every ACT misses and the table counts up to
        // the Graphene mitigation threshold (350 for TRH 1400).
        for i in 0..2000u32 {
            t = m.service(req(0, 10 + (i % 2)), t);
        }
        assert!(
            m.result().drfm_commands >= 2,
            "2×1000 ACTs over threshold 350 must trigger DRFMs, got {}",
            m.result().drfm_commands
        );
        assert_eq!(
            m.result().mitigative_acts,
            2 * m.result().drfm_commands,
            "each Graphene DRFM refreshes the aggressor's two victims"
        );
    }

    #[test]
    fn victims_clip_at_both_bank_edges() {
        // An aggressor at the top row of the bank has only one in-bank
        // victim, exactly like row 0 — the phantom outside row must be
        // neither charged as a mitigative ACT nor shown to any tracker.
        let cfg = SystemConfig {
            rows_per_bank: 64,
            ..SystemConfig::table6()
        };
        let top = cfg.rows_per_bank - 1;
        let mut m = MemoryController::new(cfg, MitigationScheme::McPara { p: 1.0 }, 3);
        let _ = m.service(req_in(&cfg, 0, top), cfg.t_rfc_ps);
        assert_eq!(m.result().drfm_commands, 1);
        assert_eq!(
            m.result().mitigative_acts,
            1,
            "top-row aggressor has a single in-bank victim"
        );
        let _ = m.service(req_in(&cfg, 0, 0), cfg.t_rfc_ps * 2);
        assert_eq!(m.result().mitigative_acts, 2, "row 0 likewise");
        let _ = m.service(req_in(&cfg, 0, 30), cfg.t_rfc_ps * 3);
        assert_eq!(m.result().mitigative_acts, 4, "interior rows cost 2");
    }

    #[test]
    fn blast_radius_is_config_driven() {
        // Blast radius 2 charges four victim ACTs per aggressor mitigation
        // on an interior row — the old hardcoded constant only ever
        // charged two.
        let cfg = SystemConfig {
            blast_radius: 2,
            ..SystemConfig::table6()
        };
        let mut m = MemoryController::new(cfg, MitigationScheme::McPara { p: 1.0 }, 3);
        let _ = m.service(req_in(&cfg, 0, 500), cfg.t_rfc_ps);
        assert_eq!(m.result().drfm_commands, 1);
        assert_eq!(
            m.result().mitigative_acts,
            4,
            "blast radius 2 refreshes two victims per side"
        );
    }

    #[test]
    fn rfm_blocks_bank_periodically() {
        let cfg = SystemConfig::table6();
        let mut base = mc(MitigationScheme::Baseline);
        let mut rfm = mc(MitigationScheme::MintRfm { rfm_th: 16 });
        let mut t_base = cfg.t_rfc_ps;
        let mut t_rfm = cfg.t_rfc_ps;
        for i in 0..2000u32 {
            t_base = base.service(req(0, i), t_base);
            t_rfm = rfm.service(req(0, i), t_rfm);
        }
        assert!(t_rfm > t_base, "RFM16 must slow a bank-hammering stream");
        // Back-to-back ACTs run at ~81 per tREFI; the REF decrement absorbs
        // 16 of those per interval, so most ACTs still accumulate RAA.
        assert!(
            rfm.result().rfm_commands >= 80,
            "got {}",
            rfm.result().rfm_commands
        );
    }

    #[test]
    fn drfm_blocks_with_probability() {
        let cfg = SystemConfig::table6();
        let mut para = mc(MitigationScheme::McPara { p: 0.25 });
        let mut t = cfg.t_rfc_ps;
        for i in 0..4000u32 {
            t = para.service(req(0, i), t);
        }
        let drfms = para.result().drfm_commands;
        assert!(
            (800..1200).contains(&drfms),
            "expected ≈1000 DRFMs at p=0.25, got {drfms}"
        );
    }

    #[test]
    fn per_bank_queues_are_independent() {
        let cfg = SystemConfig::table6();
        let mut m = mc(MitigationScheme::Baseline);
        let t0 = cfg.t_rfc_ps;
        let c0 = m.service(req(0, 1), t0);
        // A request to another bank at the same instant is not delayed by
        // bank 0's busy time (the engine models no inter-bank constraints;
        // those are the channel's).
        let c1 = m.service(req(1, 1), t0);
        assert_eq!(c0, c1);
    }

    #[test]
    fn refs_count_started_windows() {
        let cfg = SystemConfig::table6();
        let banks = u64::from(cfg.banks);
        let mut m = mc(MitigationScheme::Baseline);
        m.finish(0);
        assert_eq!(m.result().refs, banks, "the t=0 REF always elapsed");
        m.finish(cfg.t_refi_ps - 1);
        assert_eq!(m.result().refs, banks, "partial window: still one REF");
        m.finish(cfg.t_refi_ps);
        assert_eq!(m.result().refs, 2 * banks);
        m.finish(10 * cfg.t_refi_ps + 1);
        assert_eq!(m.result().refs, 11 * banks);
    }

    #[test]
    fn refs_scale_with_ranks() {
        // Regression: `finish` used to multiply by `cfg.banks` alone,
        // silently under-counting REF energy on multi-rank channels.
        let cfg = SystemConfig {
            ranks: 2,
            ..SystemConfig::table6()
        };
        let mut m = MemoryController::new(cfg, MitigationScheme::Baseline, 7);
        m.finish(0);
        assert_eq!(
            m.result().refs,
            2 * u64::from(cfg.banks),
            "an all-bank REF sweeps every rank"
        );
        m.finish(cfg.t_refi_ps);
        assert_eq!(m.result().refs, 2 * 2 * u64::from(cfg.banks));
    }

    #[test]
    fn ranks_carry_independent_bank_state() {
        // Regression: bank state used to be indexed by the in-rank flat
        // bank only, so the same bank number on two ranks aliased one row
        // buffer. The same (bank_group, bank, row) on rank 0 and rank 1
        // must be two independent row buffers.
        let cfg = SystemConfig {
            ranks: 2,
            ..SystemConfig::table6()
        };
        let mut m = MemoryController::new(cfg, MitigationScheme::Baseline, 7);
        let at = |rank| DecodedAddr {
            channel: 0,
            rank,
            bank_group: 2,
            bank: 1,
            row: 42,
            column: 0,
        };
        let t0 = cfg.t_rfc_ps;
        let o0 = m.service_decoded(at(0), true, t0);
        assert!(!o0.row_hit);
        // Same coordinates on rank 1: its own bank, so this is a miss —
        // and it is not delayed by rank 0's busy bank either.
        let o1 = m.service_decoded(at(1), true, t0);
        assert!(!o1.row_hit, "rank 1 must not see rank 0's open row");
        assert_eq!(o0.start_ps, o1.start_ps, "independent bank ready times");
        // Re-touching rank 0's row is a genuine hit.
        let o2 = m.service_decoded(at(0), true, o0.completion_ps);
        assert!(o2.row_hit);
        assert_eq!(m.result().row_hits, 1);
        assert_eq!(m.result().demand_acts, 2);
    }

    #[test]
    fn event_log_is_off_by_default_and_complete_when_on() {
        let cfg = SystemConfig::table6();
        let mut silent = mc(MitigationScheme::Mint);
        let _ = silent.service(req(0, 10), cfg.t_rfc_ps);
        assert_eq!(silent.drain_events().count(), 0, "log off by default");

        let mut m = mc(MitigationScheme::Mint);
        m.enable_event_log();
        // One miss per tREFI across several boundaries: every demand ACT
        // and every crossed REF must appear, in service order.
        let mut t = cfg.t_rfc_ps;
        let mut acts = 0u64;
        let mut refs = 0u64;
        for i in 0..40u32 {
            t = m.service(req(0, i), t);
            for e in m.drain_events() {
                match e {
                    MemEvent::Act { bank, row, .. } => {
                        assert_eq!(bank, 0);
                        assert_eq!(row, i);
                        acts += 1;
                    }
                    MemEvent::Ref { bank, .. } => {
                        assert_eq!(bank, 0);
                        refs += 1;
                    }
                    MemEvent::Pre { .. } | MemEvent::MitigativeRefresh { .. } => {}
                    other => panic!("unexpected event {other:?} under MINT"),
                }
            }
        }
        assert_eq!(acts, 40, "one ACT event per demand miss");
        assert_eq!(refs, t / cfg.t_refi_ps, "one REF event per crossed tREFI");
    }

    #[test]
    fn mitigation_events_name_every_victim() {
        // MC-PARA at p = 1: every ACT gets a DRFM whose two victim
        // refreshes are logged, followed by the mitigation's precharge.
        let cfg = SystemConfig::table6();
        let mut m = mc(MitigationScheme::McPara { p: 1.0 });
        m.enable_event_log();
        let _ = m.service(req(0, 500), cfg.t_rfc_ps);
        let events: Vec<MemEvent> = m.drain_events().collect();
        assert!(matches!(events[0], MemEvent::Act { row: 500, .. }));
        assert!(matches!(events[1], MemEvent::Drfm { bank: 0, .. }));
        assert!(matches!(
            events[2],
            MemEvent::MitigativeRefresh { row: 499, .. }
        ));
        assert!(matches!(
            events[3],
            MemEvent::MitigativeRefresh { row: 501, .. }
        ));
        assert!(matches!(events[4], MemEvent::Pre { .. }));
        assert_eq!(events.len(), 5);
    }

    #[test]
    fn rfm_events_are_logged() {
        let cfg = SystemConfig::table6();
        let mut m = mc(MitigationScheme::MintRfm { rfm_th: 1 });
        m.enable_event_log();
        let t = m.service(req(0, 10), cfg.t_rfc_ps);
        let _ = m.service(req(0, 11), t);
        let events: Vec<MemEvent> = m.drain_events().collect();
        assert!(
            events
                .iter()
                .any(|e| matches!(e, MemEvent::Rfm { bank: 0, .. })),
            "RFM_TH = 1 must log an RFM command: {events:?}"
        );
        assert!(
            events.iter().any(|e| matches!(e, MemEvent::Pre { .. })),
            "the RFM precharges the bank"
        );
    }

    #[test]
    fn determinism() {
        let run = || {
            let mut m = mc(MitigationScheme::McPara { p: 0.1 });
            let mut t = 0;
            for i in 0..1000u32 {
                t = m.service(req(i % 8, i * 7), t);
            }
            (t, m.result())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn zoo_determinism() {
        for scheme in MitigationScheme::zoo() {
            let run = || {
                let mut m = mc(scheme);
                let mut t = 0;
                for i in 0..500u32 {
                    t = m.service(req(i % 8, i * 3 % 64), t);
                }
                (t, m.result())
            };
            assert_eq!(run(), run(), "{} must be deterministic", scheme.label());
        }
    }
}
