//! SplitMix64: the canonical seeding generator.

use crate::Rng64;

/// SplitMix64 generator (Steele, Lea & Flood 2014).
///
/// Primarily used to expand a single `u64` seed into the 256-bit state of
/// [`Xoshiro256StarStar`](crate::Xoshiro256StarStar), and for cheap
/// fire-and-forget draws such as [`derive_seed`](crate::derive_seed).
///
/// # Examples
///
/// ```
/// use mint_rng::{Rng64, SplitMix64};
/// let mut s = SplitMix64::new(0);
/// assert_ne!(s.next_u64(), s.next_u64());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed. Any seed (including 0) is valid.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// The raw state word at the current stream position. Because
    /// [`new`](Self::new) stores its seed verbatim, `new(s.state())`
    /// continues the stream bit-identically — the checkpoint/restore
    /// contract.
    #[must_use]
    pub fn state(&self) -> u64 {
        self.state
    }
}

impl Default for SplitMix64 {
    fn default() -> Self {
        Self::new(0)
    }
}

impl Rng64 for SplitMix64 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference values from the public-domain C implementation
    /// (seed = 1234567).
    #[test]
    fn matches_reference_vector() {
        let mut s = SplitMix64::new(1234567);
        let expected = [
            6_457_827_717_110_365_317u64,
            3_203_168_211_198_807_973,
            9_817_491_932_198_370_423,
            4_593_380_528_125_082_431,
            16_408_922_859_458_223_821,
        ];
        for &e in &expected {
            assert_eq!(s.next_u64(), e);
        }
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut s = SplitMix64::new(0);
        let a = s.next_u64();
        let b = s.next_u64();
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = SplitMix64::new(77);
        let mut b = SplitMix64::new(77);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
