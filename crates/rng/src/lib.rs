//! Deterministic pseudo-random number generation for the MINT reproduction.
//!
//! The MINT hardware design consults a small in-DRAM true-random-number
//! generator (TRNG) once per refresh interval to draw the Selected Activation
//! Number (SAN). The paper's threat model assumes the attacker *cannot*
//! observe the outcome of that generator, so for the purposes of security
//! analysis and simulation any uniform generator is a faithful stand-in.
//!
//! We provide our own small, dependency-free generators instead of pulling in
//! the `rand` ecosystem because the experiments in this repository must be
//! bit-for-bit reproducible across runs and platforms: every Monte-Carlo
//! trial, every attack schedule and every workload trace is derived from an
//! explicit seed.
//!
//! Two generators are provided:
//!
//! * [`SplitMix64`] — a tiny, fast generator used for seeding and for
//!   cheap one-off draws.
//! * [`Xoshiro256StarStar`] — the main workhorse; 256-bit state, passes
//!   BigCrush, supports `jump()` for independent substreams.
//!
//! Both implement the [`Rng64`] trait, which also supplies unbiased bounded
//! draws (Lemire rejection), floating-point draws and Bernoulli trials.
//!
//! # Examples
//!
//! ```
//! use mint_rng::{Rng64, Xoshiro256StarStar};
//!
//! let mut rng = Xoshiro256StarStar::seed_from_u64(42);
//! let san = rng.gen_range_u32(74); // URAND over 0..=73, slot 0 = transitive
//! assert!(san < 74);
//! ```

mod splitmix;
mod xoshiro;

pub use splitmix::SplitMix64;
pub use xoshiro::Xoshiro256StarStar;

/// A deterministic source of 64-bit random words.
///
/// All simulation components in this repository take an `impl Rng64` (or a
/// concrete [`Xoshiro256StarStar`]) so that experiments are reproducible from
/// a single seed.
pub trait Rng64 {
    /// Returns the next 64 random bits from the stream.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of [`next_u64`]).
    ///
    /// [`next_u64`]: Rng64::next_u64
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Draws a uniformly distributed integer in `0..bound`.
    ///
    /// Uses Lemire's multiply-shift method with rejection, so the result is
    /// exactly uniform (no modulo bias).
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[inline]
    fn gen_range_u32(&mut self, bound: u32) -> u32 {
        assert!(bound > 0, "gen_range_u32 bound must be non-zero");
        // Lemire: https://arxiv.org/abs/1805.10941
        let mut x = self.next_u32();
        let mut m = (x as u64) * (bound as u64);
        let mut l = m as u32;
        if l < bound {
            let t = bound.wrapping_neg() % bound;
            while l < t {
                x = self.next_u32();
                m = (x as u64) * (bound as u64);
                l = m as u32;
            }
        }
        (m >> 32) as u32
    }

    /// Draws a uniformly distributed integer in `0..bound` (64-bit version).
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[inline]
    fn gen_range_u64(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range_u64 bound must be non-zero");
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut l = m as u64;
        if l < bound {
            let t = bound.wrapping_neg() % bound;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Draws a uniformly distributed integer in the inclusive range `lo..=hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    #[inline]
    fn gen_range_inclusive_u32(&mut self, lo: u32, hi: u32) -> u32 {
        assert!(lo <= hi, "gen_range_inclusive_u32 requires lo <= hi");
        let span = (hi - lo) as u64 + 1;
        lo + self.gen_range_u64(span) as u32
    }

    /// Draws a float uniformly from `[0, 1)` with 53 bits of precision.
    #[inline]
    fn gen_f64(&mut self) -> f64 {
        // 53 high bits scaled by 2^-53.
        (self.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) as f64))
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.gen_f64() < p
    }

    /// Fills `out` with the next `out.len()` words of the stream, in
    /// order — the batch form of [`next_u64`](Rng64::next_u64). The
    /// draws are exactly the ones sequential calls would produce (pinned
    /// by test), so batching callers (prefilled request rings, bulk
    /// Monte-Carlo draws) stay bit-identical to one-at-a-time callers.
    fn fill_u64s(&mut self, out: &mut [u64]) {
        for slot in out {
            *slot = self.next_u64();
        }
    }

    /// Fisher–Yates shuffles a slice in place.
    ///
    /// Not available on `dyn Rng64` (generic method); shuffle before erasing
    /// the type, or use a concrete generator.
    fn shuffle<T>(&mut self, slice: &mut [T])
    where
        Self: Sized,
    {
        let n = slice.len();
        if n < 2 {
            return;
        }
        for i in (1..n).rev() {
            let j = self.gen_range_u64(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }
}

/// Derives a child seed from `(root, stream)`.
///
/// This is how experiments fan out into independent deterministic substreams
/// (one per Monte-Carlo trial, per bank, per workload, ...). The mixing is
/// one SplitMix64 step over the XOR of the inputs with distinct large odd
/// constants, which is enough to decorrelate adjacent stream indices.
///
/// # Examples
///
/// ```
/// use mint_rng::derive_seed;
/// let a = derive_seed(7, 0);
/// let b = derive_seed(7, 1);
/// assert_ne!(a, b);
/// ```
#[must_use]
pub fn derive_seed(root: u64, stream: u64) -> u64 {
    let mut s = SplitMix64::new(root ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    s.next_u64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_draw_is_in_range() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(1);
        for bound in [1u32, 2, 3, 73, 74, 1000, u32::MAX] {
            for _ in 0..100 {
                assert!(rng.gen_range_u32(bound) < bound);
            }
        }
    }

    #[test]
    fn inclusive_range_hits_endpoints() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(2);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..10_000 {
            let v = rng.gen_range_inclusive_u32(0, 73);
            assert!(v <= 73);
            seen_lo |= v == 0;
            seen_hi |= v == 73;
        }
        assert!(
            seen_lo && seen_hi,
            "both endpoints should appear in 10k draws"
        );
    }

    #[test]
    fn uniformity_chi_square_74_slots() {
        // MINT draws URAND(0,73): check the 74-bucket histogram is flat.
        let mut rng = Xoshiro256StarStar::seed_from_u64(3);
        let n = 740_000u64;
        let mut counts = [0u64; 74];
        for _ in 0..n {
            counts[rng.gen_range_u32(74) as usize] += 1;
        }
        let expected = n as f64 / 74.0;
        let chi2: f64 = counts
            .iter()
            .map(|&c| {
                let d = c as f64 - expected;
                d * d / expected
            })
            .sum();
        // 73 degrees of freedom; 99.9th percentile is ~112. Generous margin.
        assert!(chi2 < 130.0, "chi-square too large: {chi2}");
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(4);
        for _ in 0..10_000 {
            let x = rng.gen_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(5);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(-1.0));
        assert!(rng.gen_bool(2.0));
    }

    #[test]
    fn gen_bool_rate_matches_p() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(6);
        let p = 1.0 / 73.0;
        let n = 1_000_000;
        let hits = (0..n).filter(|_| rng.gen_bool(p)).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - p).abs() < 5e-4, "rate {rate} vs p {p}");
    }

    #[test]
    fn derive_seed_distinct_streams() {
        let mut seen = std::collections::HashSet::new();
        for stream in 0..1000 {
            assert!(seen.insert(derive_seed(99, stream)));
        }
    }

    #[test]
    fn fill_u64s_matches_sequential_draws() {
        // The batch API must be a pure transcription of the sequential
        // stream, for both generators (batching callers depend on this
        // for bit-identical results).
        let mut batch = Xoshiro256StarStar::seed_from_u64(11);
        let mut seq = Xoshiro256StarStar::seed_from_u64(11);
        let mut buf = [0u64; 37];
        batch.fill_u64s(&mut buf);
        for (i, &b) in buf.iter().enumerate() {
            assert_eq!(b, seq.next_u64(), "xoshiro word {i}");
        }
        let mut batch = SplitMix64::new(23);
        let mut seq = SplitMix64::new(23);
        let mut buf = [0u64; 37];
        batch.fill_u64s(&mut buf);
        for (i, &b) in buf.iter().enumerate() {
            assert_eq!(b, seq.next_u64(), "splitmix word {i}");
        }
        // And the two generators continue identically afterwards.
        assert_eq!(batch.next_u64(), seq.next_u64());
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(7);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn shuffle_handles_degenerate_sizes() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(8);
        let mut empty: [u32; 0] = [];
        rng.shuffle(&mut empty);
        let mut one = [42u32];
        rng.shuffle(&mut one);
        assert_eq!(one, [42]);
    }
}
