//! xoshiro256**: the main simulation generator.

use crate::{Rng64, SplitMix64};

/// xoshiro256** 1.0 (Blackman & Vigna 2018).
///
/// 256 bits of state, period 2^256 − 1, passes BigCrush. This is the
/// generator used by every stochastic component in the repository: the MINT
/// SAN draw, PARA sampling, attack schedules, Monte-Carlo trials and workload
/// generation.
///
/// Use [`jump`](Self::jump) to obtain 2^128 non-overlapping substreams from a
/// single seed when parallelising.
///
/// # Examples
///
/// ```
/// use mint_rng::{Rng64, Xoshiro256StarStar};
/// let mut rng = Xoshiro256StarStar::seed_from_u64(2024);
/// let p = 1.0 / 73.0;
/// let sampled = rng.gen_bool(p);
/// let _ = sampled;
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    /// Creates a generator by expanding `seed` through [`SplitMix64`], as
    /// recommended by the xoshiro authors.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        // SplitMix64 output is never all-zero across four consecutive draws,
        // but guard anyway: the all-zero state is the one invalid state.
        if s == [0, 0, 0, 0] {
            return Self {
                s: [0xDEAD_BEEF, 1, 2, 3],
            };
        }
        Self { s }
    }

    /// Creates a generator from raw state words.
    ///
    /// # Panics
    ///
    /// Panics if all four words are zero (the single invalid state).
    #[must_use]
    pub fn from_state(s: [u64; 4]) -> Self {
        assert!(s != [0, 0, 0, 0], "xoshiro256** state must be non-zero");
        Self { s }
    }

    /// Advances the stream by 2^128 steps, yielding a statistically
    /// independent substream. Call `jump` `k` times (or clone-and-jump) to
    /// partition one seed into `k` parallel streams.
    pub fn jump(&mut self) {
        const JUMP: [u64; 4] = [
            0x180E_C6D3_3CFD_0ABA,
            0xD5A6_1266_F0C9_392C,
            0xA958_2618_E03F_C9AA,
            0x39AB_DC45_29B1_661C,
        ];
        let mut acc = [0u64; 4];
        for &j in &JUMP {
            for b in 0..64 {
                if (j >> b) & 1 == 1 {
                    for (a, s) in acc.iter_mut().zip(self.s.iter()) {
                        *a ^= s;
                    }
                }
                let _ = self.next_u64();
            }
        }
        self.s = acc;
    }

    /// Returns a jumped copy, leaving `self` positioned after the jump as
    /// well, so repeated calls hand out disjoint substreams.
    #[must_use]
    pub fn fork(&mut self) -> Self {
        let child = self.clone();
        self.jump();
        child
    }

    /// The raw state words at the current stream position — the exact
    /// inverse of [`from_state`](Self::from_state), so checkpoint/restore
    /// can pin a stream mid-flight:
    /// `from_state(rng.state())` continues bit-identically.
    #[must_use]
    pub fn state(&self) -> [u64; 4] {
        self.s
    }
}

impl Rng64 for Xoshiro256StarStar {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference values for state {1, 2, 3, 4}, hand-derived from the
    /// algorithm definition (Blackman & Vigna):
    ///
    /// * out₁ = rotl(2·5, 7)·9 = 1280·9 = 11520; state → (7, 0, 262146, 6≪45)
    /// * out₂ = rotl(0·5, 7)·9 = 0;  state → (211106232532999, 262149,
    ///   262149, rotl(6≪45, 45) = 402653184)
    /// * out₃ = rotl(262149·5, 7)·9 = (1310745≪7)·9 = 1509978240
    #[test]
    fn matches_reference_vector() {
        let mut rng = Xoshiro256StarStar::from_state([1, 2, 3, 4]);
        let expected = [11_520u64, 0, 1_509_978_240];
        for &e in &expected {
            assert_eq!(rng.next_u64(), e);
        }
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_state_rejected() {
        let _ = Xoshiro256StarStar::from_state([0, 0, 0, 0]);
    }

    #[test]
    fn determinism_from_seed() {
        let mut a = Xoshiro256StarStar::seed_from_u64(5);
        let mut b = Xoshiro256StarStar::seed_from_u64(5);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn forked_streams_differ() {
        let mut root = Xoshiro256StarStar::seed_from_u64(9);
        let mut a = root.fork();
        let mut b = root.fork();
        let a_head: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let b_head: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(a_head, b_head);
    }

    #[test]
    fn jump_changes_state() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(10);
        let before = rng.clone();
        rng.jump();
        assert_ne!(rng, before);
    }
}
