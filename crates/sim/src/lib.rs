//! Monte-Carlo Rowhammer attack simulator.
//!
//! This crate binds the three substrates together and runs attacks end to
//! end:
//!
//! * a tracker ([`InDramTracker`](mint_core::InDramTracker) — MINT or any
//!   baseline from `mint-trackers`),
//! * an attack ([`AccessPattern`](mint_attacks::AccessPattern)),
//! * and the bank hammer model ([`Bank`](mint_dram::Bank)) with a refresh
//!   schedule ([`RefreshPolicy`](mint_dram::RefreshPolicy)).
//!
//! The engine faithfully reproduces the information asymmetry at the heart
//! of the paper: the tracker sees *demand* activations only; the victim
//! refreshes it triggers are applied to the bank (hammering their own
//! neighbours — the transitive channel) and are reported back to the
//! tracker only through
//! [`on_mitigative_refresh`](mint_core::InDramTracker::on_mitigative_refresh),
//! which per-row counting trackers use and probabilistic trackers cannot.
//!
//! Two kinds of experiments are supported:
//!
//! * **Bound runs** ([`Engine::run`] with `trh: None`) — measure the maximum
//!   unmitigated hammer count an attack achieves (e.g. the deterministic
//!   478K of §VI-B).
//! * **Failure-rate runs** ([`estimate_failure_prob`]) — Monte-Carlo
//!   estimates of the per-tREFW failure probability at a small threshold,
//!   cross-validating the Sariou–Wolman analytical model. Trials fan out
//!   through the `mint-exp` harness ([`MonteCarlo`] is the [`Experiment`]
//!   impl), run on all cores, and are bit-identical to a 1-thread run.
//!
//! [`Experiment`]: mint_exp::Experiment

mod engine;

pub use engine::{estimate_failure_prob, Engine, MonteCarlo, SimConfig, SimReport};
