//! The simulation engine.

use mint_attacks::AccessPattern;
use mint_core::{InDramTracker, MitigationDecision};
use mint_dram::{Bank, BankConfig, FailureRecord, RefreshPolicy};
use mint_exp::{Experiment, Harness, Tally};
use mint_rng::Rng64;

/// Configuration of a simulation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Demand activation slots per tREFI (MaxACT, 73).
    pub max_act: u32,
    /// tREFI intervals per tREFW (8192).
    pub refi_per_refw: u32,
    /// Rows in the simulated bank (shrink for speed; patterns must fit).
    pub bank_rows: u32,
    /// Blast radius of mitigations.
    pub blast_radius: u32,
    /// Rowhammer threshold for failure detection (`None` = bound run).
    pub trh: Option<u32>,
    /// REF scheduling.
    pub refresh_policy: RefreshPolicy,
    /// Number of tREFW windows to simulate.
    pub refw_windows: u32,
}

impl SimConfig {
    /// The paper's default device with a full-size bank and timely refresh.
    #[must_use]
    pub fn ddr5_default() -> Self {
        Self {
            max_act: 73,
            refi_per_refw: 8192,
            bank_rows: 128 * 1024,
            blast_radius: 1,
            trh: None,
            refresh_policy: RefreshPolicy::Timely,
            refw_windows: 1,
        }
    }

    /// A reduced bank (64K rows) — identical dynamics for attacks that touch
    /// a few hundred rows, much cheaper to allocate per Monte-Carlo trial.
    #[must_use]
    pub fn small() -> Self {
        Self {
            bank_rows: 64 * 1024,
            ..Self::ddr5_default()
        }
    }

    /// Sets the failure threshold.
    #[must_use]
    pub fn with_trh(mut self, trh: u32) -> Self {
        self.trh = Some(trh);
        self
    }

    /// Sets the refresh policy.
    #[must_use]
    pub fn with_policy(mut self, policy: RefreshPolicy) -> Self {
        self.refresh_policy = policy;
        self
    }

    /// Sets the number of tREFW windows.
    #[must_use]
    pub fn with_windows(mut self, windows: u32) -> Self {
        self.refw_windows = windows;
        self
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        Self::ddr5_default()
    }
}

/// The outcome of a simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Rowhammer failures (rows that crossed the threshold), if `trh` set.
    pub failures: Vec<FailureRecord>,
    /// Largest unmitigated hammer count any row reached.
    pub max_hammers: u32,
    /// Demand activations issued by the pattern.
    pub demand_acts: u64,
    /// Aggressor/transitive/victim mitigations applied.
    pub mitigations: u64,
    /// Mitigation opportunities that carried no decision.
    pub empty_mitigations: u64,
    /// REF commands executed.
    pub refs: u64,
}

impl SimReport {
    /// Whether any row crossed the threshold.
    #[must_use]
    pub fn failed(&self) -> bool {
        !self.failures.is_empty()
    }
}

/// Drives one tracker against one pattern on one bank.
#[derive(Debug)]
pub struct Engine {
    config: SimConfig,
    bank: Bank,
}

impl Engine {
    /// Creates an engine (allocates the bank).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (zero rows/slots/windows).
    #[must_use]
    pub fn new(config: SimConfig) -> Self {
        assert!(config.max_act > 0, "need at least one slot per tREFI");
        assert!(config.refi_per_refw > 0, "need at least one tREFI");
        assert!(config.refw_windows > 0, "need at least one tREFW");
        let bank = Bank::new(BankConfig {
            rows: config.bank_rows,
            blast_radius: config.blast_radius,
            trh: config.trh,
        });
        Self { config, bank }
    }

    /// The bank (for post-run inspection).
    #[must_use]
    pub fn bank(&self) -> &Bank {
        &self.bank
    }

    /// Applies a mitigation decision to the bank and notifies the tracker
    /// of every silent victim refresh it causes.
    ///
    /// The victim set (and hence the mitigation cost) comes from
    /// [`MitigationDecision::victim_rows`] — the same helper the memory
    /// system charges mitigative ACTs with, so the security and performance
    /// layers can never disagree on what a decision does.
    fn apply(
        &mut self,
        decision: MitigationDecision,
        tracker: &mut dyn InDramTracker,
        report: &mut SimReport,
    ) {
        if decision.is_none() {
            report.empty_mitigations += 1;
            return;
        }
        report.mitigations += 1;
        for v in decision.victim_rows(self.config.blast_radius) {
            if self.bank.contains(v) {
                self.bank.victim_refresh(v);
                tracker.on_mitigative_refresh(v);
            }
        }
    }

    /// Runs the configured number of tREFW windows.
    ///
    /// The bank state persists across windows (hammer counts are cleared
    /// row-by-row by the auto-refresh sweep, exactly as in hardware).
    pub fn run(
        &mut self,
        tracker: &mut dyn InDramTracker,
        pattern: &mut dyn AccessPattern,
        rng: &mut dyn Rng64,
    ) -> SimReport {
        let mut report = SimReport {
            failures: Vec::new(),
            max_hammers: 0,
            demand_acts: 0,
            mitigations: 0,
            empty_mitigations: 0,
            refs: 0,
        };
        let total_refis =
            u64::from(self.config.refi_per_refw) * u64::from(self.config.refw_windows);
        // Auto-refresh pacing: `bank_rows` rows must be swept per
        // `refi_per_refw` tREFI; accumulate credit to handle non-divisible
        // configurations exactly.
        let mut auto_credit: u64 = 0;
        let mut acts: u64 = 0;
        for refi in 0..total_refis {
            for slot in 0..self.config.max_act {
                if let Some(row) = pattern.next_act(refi, slot) {
                    self.bank.set_time(acts);
                    self.bank.demand_activate(row);
                    report.demand_acts += 1;
                    acts += 1;
                    if let Some(d) = tracker.on_activation(row, rng) {
                        self.apply(d, tracker, &mut report);
                    }
                } else {
                    // Idle slot: invisible to the tracker, but time passes.
                    acts += 1;
                }
            }
            for _ in 0..self.config.refresh_policy.refs_due(refi) {
                report.refs += 1;
                let d = tracker.on_refresh(rng);
                self.apply(d, tracker, &mut report);
                // One REF's share of the background sweep.
                auto_credit += u64::from(self.config.bank_rows);
                while auto_credit >= u64::from(self.config.refi_per_refw) {
                    self.bank.auto_refresh_step(1);
                    auto_credit -= u64::from(self.config.refi_per_refw);
                }
            }
        }
        report.failures = self.bank.failures().to_vec();
        report.max_hammers = self.bank.max_hammers_ever();
        report
    }
}

/// A Monte-Carlo simulation as a `mint-exp` [`Experiment`]: each trial
/// builds a fresh tracker and pattern from the shared factories, runs one
/// engine over `config` and yields the [`SimReport`].
///
/// Trial `i` draws from the substream `derive_seed(master_seed, i)` — the
/// factories receive that trial's RNG, so a trial's entire history replays
/// from its index regardless of which worker thread executes it.
pub struct MonteCarlo<'a> {
    /// Per-trial simulation configuration.
    pub config: SimConfig,
    /// Builds the tracker under test (seeded from the trial's RNG).
    pub make_tracker: &'a (dyn Fn(&mut dyn Rng64) -> Box<dyn InDramTracker> + Sync),
    /// Builds the attack pattern.
    pub make_pattern: &'a (dyn Fn() -> Box<dyn AccessPattern> + Sync),
}

impl Experiment for MonteCarlo<'_> {
    type Outcome = SimReport;

    fn trial(&self, _trial_idx: u64, rng: &mut dyn Rng64) -> SimReport {
        let mut tracker = (self.make_tracker)(rng);
        let mut pattern = (self.make_pattern)();
        Engine::new(self.config).run(tracker.as_mut(), pattern.as_mut(), rng)
    }
}

/// Monte-Carlo estimate of the per-tREFW failure probability: runs `trials`
/// independent single-tREFW simulations through the `mint-exp` harness (in
/// parallel; bit-identical to a 1-thread run) and returns the number that
/// failed.
///
/// `make_tracker` and `make_pattern` construct fresh instances per trial;
/// trial `i` uses the deterministic sub-seed `derive_seed(seed, i)`.
///
/// # Panics
///
/// Panics if `trials == 0`.
pub fn estimate_failure_prob(
    config: SimConfig,
    trials: u32,
    seed: u64,
    make_tracker: &(dyn Fn(&mut dyn Rng64) -> Box<dyn InDramTracker> + Sync),
    make_pattern: &(dyn Fn() -> Box<dyn AccessPattern> + Sync),
) -> (u32, u32) {
    assert!(trials > 0, "need at least one trial");
    let experiment = MonteCarlo {
        config,
        make_tracker,
        make_pattern,
    };
    let tally =
        Harness::new(u64::from(trials), seed).run(&experiment, || Tally::new(SimReport::failed));
    (u32::try_from(tally.hits).expect("hits <= trials"), trials)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mint_attacks::{
        AdaptiveAttack, DoubleSided, HalfDouble, ManySided, Pattern1, PostponementDecoy,
        SingleSided,
    };
    use mint_core::{Dmq, Mint, MintConfig};
    use mint_dram::RowId;
    use mint_rng::Xoshiro256StarStar;
    use mint_trackers::{Prct, SimpleTrr};

    fn rng(seed: u64) -> Xoshiro256StarStar {
        Xoshiro256StarStar::seed_from_u64(seed)
    }

    fn mint(r: &mut dyn Rng64) -> Mint {
        Mint::new(MintConfig::ddr5_default(), r)
    }

    #[test]
    fn single_sided_attack_is_bounded_by_mint() {
        // §V-C: the classic single-sided attack gets at most ~MaxACT hammers
        // between mitigations; the all-time max stays a small multiple of
        // MaxACT (transitive windows can skip one direct mitigation).
        let mut r = rng(1);
        let mut t = mint(&mut r);
        let mut p = SingleSided::new(RowId(1000));
        let cfg = SimConfig::small();
        let report = Engine::new(cfg).run(&mut t, &mut p, &mut r);
        assert_eq!(report.demand_acts, 73 * 8192);
        // Direct victims are refreshed every tREFI (guaranteed selection);
        // the residual exposure is the distance-2 transitive channel, bounded
        // by the SAN=0 slot's geometric refresh (~74·ln 8192 ≈ 700 typical).
        assert!(
            report.max_hammers < 2500,
            "single-sided must be tightly bounded, got {}",
            report.max_hammers
        );
    }

    #[test]
    fn double_sided_attack_is_bounded_by_mint() {
        let mut r = rng(2);
        let mut t = mint(&mut r);
        let mut p = DoubleSided::new(RowId(1000));
        let report = Engine::new(SimConfig::small()).run(&mut t, &mut p, &mut r);
        assert!(
            report.max_hammers < 2500,
            "double-sided bounded, got {}",
            report.max_hammers
        );
    }

    #[test]
    fn postponement_without_dmq_collapses_mint() {
        // §VI-B: deterministic ≈478K unmitigated activations per tREFW.
        let mut r = rng(3);
        let mut t = mint(&mut r);
        let mut p = PostponementDecoy::new(RowId(1000), RowId(5000), 73, 5);
        let cfg = SimConfig::small().with_policy(RefreshPolicy::ddr5_max_postpone());
        let report = Engine::new(cfg).run(&mut t, &mut p, &mut r);
        assert!(
            report.max_hammers > 300_000,
            "attack should reach hundreds of thousands of hammers, got {}",
            report.max_hammers
        );
    }

    #[test]
    fn dmq_restores_mint_under_postponement() {
        let mut r = rng(4);
        let inner = mint(&mut r);
        let mut t = Dmq::new(inner, 73);
        let mut p = PostponementDecoy::new(RowId(1000), RowId(5000), 73, 5);
        let cfg = SimConfig::small().with_policy(RefreshPolicy::ddr5_max_postpone());
        let report = Engine::new(cfg).run(&mut t, &mut p, &mut r);
        assert!(
            report.max_hammers < 3000,
            "DMQ must bound the postponement attack, got {}",
            report.max_hammers
        );
    }

    #[test]
    fn half_double_defeats_mint_without_transitive_slot() {
        let mut r = rng(5);
        let cfg_t = MintConfig::ddr5_default().without_transitive();
        let mut t = Mint::new(cfg_t, &mut r);
        let mut p = HalfDouble::new(RowId(1000));
        let report = Engine::new(SimConfig::small()).run(&mut t, &mut p, &mut r);
        // Rows 998/1002 take one silent hammer per mitigation: ~8192/tREFW.
        assert!(
            report.max_hammers > 6000,
            "transitive channel should accumulate thousands, got {}",
            report.max_hammers
        );
    }

    #[test]
    fn transitive_slot_bounds_half_double() {
        let mut r = rng(6);
        let mut t = mint(&mut r); // transitive slot enabled
        let mut p = HalfDouble::new(RowId(1000));
        let report = Engine::new(SimConfig::small()).run(&mut t, &mut p, &mut r);
        assert!(
            report.max_hammers < 2500,
            "SAN=0 transitive mitigation must bound Half-Double, got {}",
            report.max_hammers
        );
    }

    #[test]
    fn prct_is_immune_to_half_double() {
        let mut r = rng(7);
        let mut t = Prct::new(64 * 1024);
        let mut p = HalfDouble::new(RowId(1000));
        let report = Engine::new(SimConfig::small()).run(&mut t, &mut p, &mut r);
        assert!(
            report.max_hammers < 2000,
            "PRCT counts silent refreshes, got {}",
            report.max_hammers
        );
    }

    #[test]
    fn trr_is_broken_by_many_sided_attack_but_mint_is_not() {
        let cfg = SimConfig::small();
        // 40 aggressors vs a 16-entry TRR.
        let mut r1 = rng(8);
        let mut trr = SimpleTrr::new(16);
        let mut p1 = ManySided::new(RowId(1000), 40);
        let trr_report = Engine::new(cfg).run(&mut trr, &mut p1, &mut r1);

        let mut r2 = rng(9);
        let mut m = mint(&mut r2);
        let mut p2 = ManySided::new(RowId(1000), 40);
        let mint_report = Engine::new(cfg).run(&mut m, &mut p2, &mut r2);

        assert!(
            trr_report.max_hammers > 3 * mint_report.max_hammers,
            "TRR {} should be far worse than MINT {}",
            trr_report.max_hammers,
            mint_report.max_hammers
        );
    }

    #[test]
    fn ada_attack_runs_against_dmq() {
        let mut r = rng(10);
        let inner = mint(&mut r);
        let mut t = Dmq::new(inner, 73);
        let mut p = AdaptiveAttack::paper_default(RowId(1000), 1400);
        let cfg = SimConfig::small().with_policy(RefreshPolicy::ddr5_max_postpone());
        let report = Engine::new(cfg).run(&mut t, &mut p, &mut r);
        // The morph can add at most flood (365) + pattern-2 accumulation;
        // max hammers stays in the low thousands (vs 478K without DMQ).
        assert!(
            report.max_hammers < 6000,
            "ADA against DMQ bounded, got {}",
            report.max_hammers
        );
    }

    #[test]
    fn determinism_same_seed_same_report() {
        let cfg = SimConfig::small().with_trh(800);
        let run = |seed: u64| {
            let mut r = rng(seed);
            let mut t = mint(&mut r);
            let mut p = Pattern1::new(RowId(1000));
            Engine::new(cfg).run(&mut t, &mut p, &mut r)
        };
        let a = run(42);
        let b = run(42);
        assert_eq!(a, b);
        assert_eq!(a.demand_acts, 8192);
    }

    #[test]
    fn monte_carlo_matches_sariou_wolman_model() {
        // Pattern-1 with a deliberately low threshold so failures are
        // frequent enough to measure: T = 600, p = 1/74.
        // Analytic: P ≈ 2.6e-2 per tREFW (computed via mint-analysis in the
        // integration tests; here we just check the band).
        let trh = 600;
        let cfg = SimConfig {
            bank_rows: 4096,
            ..SimConfig::small()
        }
        .with_trh(trh);
        let (fails, trials) = estimate_failure_prob(
            cfg,
            600,
            777,
            &|r| Box::new(Mint::new(MintConfig::ddr5_default(), r)),
            &|| Box::new(Pattern1::new(RowId(2000))),
        );
        let rate = f64::from(fails) / f64::from(trials);
        assert!(
            (0.005..0.08).contains(&rate),
            "empirical rate {rate} should be a few percent ({fails}/{trials})"
        );
    }

    #[test]
    fn failure_records_point_at_pattern_victims() {
        let mut r = rng(11);
        let cfg_t = MintConfig::ddr5_default().without_transitive();
        let mut t = Mint::new(cfg_t, &mut r);
        let mut p = HalfDouble::new(RowId(1000));
        let cfg = SimConfig::small().with_trh(4000);
        let mut engine = Engine::new(cfg);
        let report = engine.run(&mut t, &mut p, &mut r);
        assert!(report.failed());
        let targets = p.target_victims();
        for f in &report.failures {
            assert!(
                targets.contains(&f.row),
                "failure at {:?} not among targets {targets:?}",
                f.row
            );
        }
    }

    #[test]
    fn refs_counted_per_policy() {
        let mut r = rng(12);
        let mut t = mint(&mut r);
        let mut p = SingleSided::new(RowId(100));
        let cfg = SimConfig {
            refi_per_refw: 100,
            refw_windows: 1,
            bank_rows: 4096,
            ..SimConfig::small()
        };
        let report = Engine::new(cfg).run(&mut t, &mut p, &mut r);
        assert_eq!(report.refs, 100);

        let mut r = rng(13);
        let mut t = mint(&mut r);
        let mut p = SingleSided::new(RowId(100));
        let cfg = cfg.with_policy(RefreshPolicy::ddr5_max_postpone());
        let report = Engine::new(cfg).run(&mut t, &mut p, &mut r);
        assert_eq!(report.refs, 100); // batches of 5, same total
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn zero_trials_rejected() {
        let _ = estimate_failure_prob(
            SimConfig::small(),
            0,
            1,
            &|r| Box::new(Mint::new(MintConfig::ddr5_default(), r)),
            &|| Box::new(Pattern1::new(RowId(1))),
        );
    }
}
