//! Minimal hand-rolled JSON: string escaping for the artifact emitters
//! and a small recursive-descent parser for the scenario-service wire
//! envelopes.
//!
//! The workspace deliberately carries no serde: every artifact
//! (`BENCH_*.json`, `FIG*_data.json`, `SCENARIO_report.json`) is emitted
//! with plain `format!` so its byte layout is pinned by tests. The
//! streaming scenario service (`mint-serve`) needs the other direction
//! too — its submit/cancel envelopes arrive as JSON lines — so this
//! module centralises both halves: [`escape`]/[`quote`] for writers and
//! [`Json::parse`] for readers.
//!
//! The parser covers the full JSON grammar (objects, arrays, strings
//! with `\uXXXX` escapes incl. surrogate pairs, numbers, literals) but
//! keeps the representation deliberately small: numbers are `f64`, and
//! object members stay in document order in a `Vec` (duplicate keys:
//! first wins on [`Json::get`]).

/// Escapes `s` for placement inside a JSON string literal (without the
/// surrounding quotes).
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// [`escape`]d and quoted: the complete JSON string literal for `s`.
#[must_use]
pub fn quote(s: &str) -> String {
    format!("\"{}\"", escape(s))
}

/// A parsed JSON value. Numbers are `f64` (exact for the integer range
/// the wire envelopes use, |n| ≤ 2⁵³); object members keep document
/// order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, members in document order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses `text` as one JSON document (trailing whitespace allowed,
    /// trailing content not).
    ///
    /// # Errors
    ///
    /// Returns a message naming the byte offset and what went wrong.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing content at byte {}", p.pos));
        }
        Ok(value)
    }

    /// Member `key` of an object (first match; `None` for non-objects).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as an exact unsigned integer (rejects fractions,
    /// negatives and anything above 2⁵³, where `f64` stops being exact).
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        let max_exact = 9_007_199_254_740_992.0; // 2^53
        if n.fract() == 0.0 && (0.0..=max_exact).contains(&n) {
            Some(n as u64)
        } else {
            None
        }
    }

    /// The boolean, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Recursive-descent state over the raw bytes.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("expected '{word}' at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b) => Err(format!("unexpected byte 0x{b:02x} at byte {}", self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            members.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: a second \uXXXX must follow.
                                if self.peek() != Some(b'\\') {
                                    return Err(format!("lone surrogate at byte {}", self.pos));
                                }
                                self.pos += 1;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(format!("bad low surrogate at byte {}", self.pos));
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| {
                                format!("invalid \\u escape ending at byte {}", self.pos)
                            })?);
                            continue;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one full UTF-8 scalar (the input is a &str,
                    // so a char boundary always exists here).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).expect("input was a &str");
                    let c = s.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        let hex = self
            .bytes
            .get(self.pos..end)
            .and_then(|b| std::str::from_utf8(b).ok())
            .ok_or_else(|| format!("truncated \\u escape at byte {}", self.pos))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| format!("bad \\u escape '{hex}'"))?;
        self.pos = end;
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number '{text}' at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_round_trips_through_parse() {
        let nasty = "a\"b\\c\nd\te\u{7}f — ünïcode 🦀";
        let parsed = Json::parse(&quote(nasty)).unwrap();
        assert_eq!(parsed.as_str(), Some(nasty));
    }

    #[test]
    fn parses_the_service_envelope_shape() {
        let line = r#"{"v": 1, "id": 42, "op": "submit", "spec": "scheme = mint\nworkload = mcf"}"#;
        let v = Json::parse(line).unwrap();
        assert_eq!(v.get("v").and_then(Json::as_u64), Some(1));
        assert_eq!(v.get("id").and_then(Json::as_u64), Some(42));
        assert_eq!(v.get("op").and_then(Json::as_str), Some("submit"));
        assert_eq!(
            v.get("spec").and_then(Json::as_str),
            Some("scheme = mint\nworkload = mcf")
        );
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn parses_nested_values_and_numbers() {
        let v = Json::parse(r#"{"a": [1, -2.5, 1e3], "b": {"c": true, "d": null}}"#).unwrap();
        let Some(Json::Arr(items)) = v.get("a") else {
            panic!("a is an array");
        };
        assert_eq!(items[0].as_u64(), Some(1));
        assert_eq!(items[1].as_f64(), Some(-2.5));
        assert_eq!(items[2].as_f64(), Some(1000.0));
        assert_eq!(
            v.get("b").and_then(|b| b.get("c")).and_then(Json::as_bool),
            Some(true)
        );
        assert_eq!(v.get("b").and_then(|b| b.get("d")), Some(&Json::Null));
        assert_eq!(items[1].as_u64(), None, "fractions are not u64s");
    }

    #[test]
    fn surrogate_pairs_decode() {
        let v = Json::parse(r#""🦀""#).unwrap();
        assert_eq!(v.as_str(), Some("🦀"));
        assert!(Json::parse(r#""\ud83e""#).is_err(), "lone surrogate");
    }

    #[test]
    fn malformed_documents_are_described() {
        for (doc, needle) in [
            ("{\"a\": 1,}", "expected"),
            ("[1 2]", "expected"),
            ("{\"a\" 1}", "expected"),
            ("\"unterminated", "unterminated"),
            ("nul", "null"),
            ("1.2.3", "bad number"),
            ("{} trailing", "trailing"),
            ("", "end of input"),
        ] {
            let err = Json::parse(doc).unwrap_err();
            assert!(err.contains(needle), "{doc}: {err}");
        }
    }
}
