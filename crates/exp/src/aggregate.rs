//! Composable streaming aggregators: memory stays O(1) in the trial count.
//!
//! Aggregators consume outcomes one at a time ([`Aggregator::push`]) and
//! combine partial results ([`Aggregator::merge`]) when the harness folds
//! chunk aggregates together. Projections are plain `fn` pointers so every
//! aggregator is `Send` and trivially cheap to construct per chunk.
//!
//! Tuples of aggregators are aggregators, so experiments compose their
//! statistics without custom types:
//!
//! ```
//! use mint_exp::aggregate::{Aggregator, MeanVar, MinMax, Tally};
//!
//! let mut agg = (
//!     Tally::new(|x: &f64| *x < 0.0),
//!     MeanVar::new(|x: &f64| *x),
//!     MinMax::new(|x: &f64| *x),
//! );
//! for (i, x) in [1.0f64, -2.0, 3.5].into_iter().enumerate() {
//!     agg.push(i as u64, &x);
//! }
//! assert_eq!(agg.0.hits, 1);
//! assert!((agg.1.mean - 2.5 / 3.0).abs() < 1e-12);
//! assert_eq!(agg.2.max, 3.5);
//! ```

/// A streaming reduction over trial outcomes.
///
/// `merge` consumes a sibling aggregate built over a *later* contiguous
/// range of trials; the harness guarantees merges happen in ascending trial
/// order, so order-sensitive statistics (floating-point sums) stay
/// deterministic for any worker count.
pub trait Aggregator<O>: Send {
    /// Folds one outcome in.
    fn push(&mut self, trial_idx: u64, outcome: &O);

    /// Folds a sibling aggregate (covering the trials right after this
    /// one's) in.
    fn merge(&mut self, other: Self)
    where
        Self: Sized;
}

/// Counts trials.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrialCount {
    /// Trials observed.
    pub trials: u64,
}

impl TrialCount {
    /// A zero count.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl<O> Aggregator<O> for TrialCount {
    fn push(&mut self, _trial_idx: u64, _outcome: &O) {
        self.trials += 1;
    }

    fn merge(&mut self, other: Self) {
        self.trials += other.trials;
    }
}

/// Counts outcomes satisfying a predicate (failure/survival tallies).
///
/// ```
/// use mint_exp::aggregate::{Aggregator, Tally};
/// let mut t = Tally::new(|failed: &bool| *failed);
/// t.push(0, &true);
/// t.push(1, &false);
/// assert_eq!((t.hits, t.total), (1, 2));
/// assert_eq!(t.rate(), 0.5);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Tally<O> {
    predicate: fn(&O) -> bool,
    /// Outcomes satisfying the predicate.
    pub hits: u64,
    /// All outcomes observed.
    pub total: u64,
}

impl<O> Tally<O> {
    /// A tally of outcomes satisfying `predicate`.
    #[must_use]
    pub fn new(predicate: fn(&O) -> bool) -> Self {
        Self {
            predicate,
            hits: 0,
            total: 0,
        }
    }

    /// `hits / total` (0 when empty).
    #[must_use]
    pub fn rate(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.hits as f64 / self.total as f64
        }
    }
}

impl<O> Aggregator<O> for Tally<O> {
    fn push(&mut self, _trial_idx: u64, outcome: &O) {
        self.total += 1;
        if (self.predicate)(outcome) {
            self.hits += 1;
        }
    }

    fn merge(&mut self, other: Self) {
        self.hits += other.hits;
        self.total += other.total;
    }
}

/// Streaming mean and variance of a projection, via Welford's algorithm
/// (single-pass) and the Chan et al. pairwise formula (merge).
#[derive(Debug, Clone, Copy)]
pub struct MeanVar<O> {
    projection: fn(&O) -> f64,
    /// Samples observed.
    pub count: u64,
    /// Running mean (0 when empty).
    pub mean: f64,
    m2: f64,
}

impl<O> MeanVar<O> {
    /// Mean/variance of `projection` over the outcomes.
    #[must_use]
    pub fn new(projection: fn(&O) -> f64) -> Self {
        Self {
            projection,
            count: 0,
            mean: 0.0,
            m2: 0.0,
        }
    }

    /// Unbiased sample variance (NaN below two samples).
    #[must_use]
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            f64::NAN
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation (NaN below two samples).
    #[must_use]
    pub fn stddev(&self) -> f64 {
        self.sample_variance().sqrt()
    }
}

impl<O> Aggregator<O> for MeanVar<O> {
    fn push(&mut self, _trial_idx: u64, outcome: &O) {
        let x = (self.projection)(outcome);
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    fn merge(&mut self, other: Self) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            self.count = other.count;
            self.mean = other.mean;
            self.m2 = other.m2;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.mean += delta * (other.count as f64 / total as f64);
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64 * other.count as f64 / total as f64);
        self.count = total;
    }
}

/// Minimum and maximum of a projection.
#[derive(Debug, Clone, Copy)]
pub struct MinMax<O> {
    projection: fn(&O) -> f64,
    /// Samples observed.
    pub count: u64,
    /// Smallest projection seen (`+inf` when empty).
    pub min: f64,
    /// Largest projection seen (`-inf` when empty).
    pub max: f64,
}

impl<O> MinMax<O> {
    /// Min/max of `projection` over the outcomes.
    #[must_use]
    pub fn new(projection: fn(&O) -> f64) -> Self {
        Self {
            projection,
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

impl<O> Aggregator<O> for MinMax<O> {
    fn push(&mut self, _trial_idx: u64, outcome: &O) {
        let x = (self.projection)(outcome);
        self.count += 1;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    fn merge(&mut self, other: Self) {
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Fixed-bin histogram of a projection over `[lo, hi)`; samples outside the
/// range land in `underflow`/`overflow`, NaN projections in `nan`.
#[derive(Debug, Clone)]
pub struct Histogram<O> {
    projection: fn(&O) -> f64,
    lo: f64,
    width: f64,
    /// Per-bin sample counts.
    pub bins: Vec<u64>,
    /// Samples below `lo`.
    pub underflow: u64,
    /// Samples at or above `hi`.
    pub overflow: u64,
    /// Samples whose projection was NaN (they belong to no bin).
    pub nan: u64,
}

impl<O> Histogram<O> {
    /// A histogram of `projection` with `bins` equal-width bins over
    /// `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `hi <= lo`.
    #[must_use]
    pub fn new(projection: fn(&O) -> f64, lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(hi > lo, "histogram range must be non-empty");
        Self {
            projection,
            lo,
            width: (hi - lo) / bins as f64,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
            nan: 0,
        }
    }

    /// The inclusive-lo, exclusive-hi edges of bin `i`.
    #[must_use]
    pub fn bin_edges(&self, i: usize) -> (f64, f64) {
        let lo = self.lo + self.width * i as f64;
        (lo, lo + self.width)
    }

    /// Total samples observed, including under/overflow and NaN.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.bins.iter().sum::<u64>() + self.underflow + self.overflow + self.nan
    }
}

impl<O> Aggregator<O> for Histogram<O> {
    fn push(&mut self, _trial_idx: u64, outcome: &O) {
        let x = (self.projection)(outcome);
        if x.is_nan() {
            // `(NaN / width) as usize` would saturate to bin 0 — count it
            // apart instead of fabricating a sample at the low edge.
            self.nan += 1;
            return;
        }
        if x < self.lo {
            self.underflow += 1;
            return;
        }
        let idx = ((x - self.lo) / self.width) as usize;
        if idx < self.bins.len() {
            self.bins[idx] += 1;
        } else {
            self.overflow += 1;
        }
    }

    fn merge(&mut self, other: Self) {
        assert_eq!(
            self.bins.len(),
            other.bins.len(),
            "cannot merge differently-shaped histograms"
        );
        for (b, o) in self.bins.iter_mut().zip(other.bins) {
            *b += o;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
        self.nan += other.nan;
    }
}

macro_rules! tuple_aggregator {
    ($($name:ident . $idx:tt),+) => {
        impl<O, $($name: Aggregator<O>),+> Aggregator<O> for ($($name,)+) {
            fn push(&mut self, trial_idx: u64, outcome: &O) {
                $(self.$idx.push(trial_idx, outcome);)+
            }

            fn merge(&mut self, other: Self) {
                $(self.$idx.merge(other.$idx);)+
            }
        }
    };
}

tuple_aggregator!(A.0);
tuple_aggregator!(A.0, B.1);
tuple_aggregator!(A.0, B.1, C.2);
tuple_aggregator!(A.0, B.1, C.2, D.3);
tuple_aggregator!(A.0, B.1, C.2, D.3, E.4);
tuple_aggregator!(A.0, B.1, C.2, D.3, E.4, F.5);

#[cfg(test)]
mod tests {
    use super::*;

    fn id(x: &f64) -> f64 {
        *x
    }

    #[test]
    fn welford_matches_two_pass() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64 * 0.37).sin()).collect();
        let mut mv = MeanVar::new(id);
        for (i, x) in xs.iter().enumerate() {
            mv.push(i as u64, x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((mv.mean - mean).abs() < 1e-12);
        assert!((mv.sample_variance() - var).abs() < 1e-12);
    }

    #[test]
    fn meanvar_merge_matches_streaming_statistically() {
        let xs: Vec<f64> = (0..64).map(|i| f64::from(i) * 1.5 - 10.0).collect();
        let mut whole = MeanVar::new(id);
        let mut left = MeanVar::new(id);
        let mut right = MeanVar::new(id);
        for (i, x) in xs.iter().enumerate() {
            whole.push(i as u64, x);
            if i < 20 {
                left.push(i as u64, x);
            } else {
                right.push(i as u64, x);
            }
        }
        left.merge(right);
        assert_eq!(left.count, whole.count);
        assert!((left.mean - whole.mean).abs() < 1e-12);
        assert!((left.sample_variance() - whole.sample_variance()).abs() < 1e-9);
    }

    #[test]
    fn meanvar_merge_handles_empty_sides() {
        let mut a = MeanVar::new(id);
        let mut b = MeanVar::new(id);
        b.push(0, &4.0);
        a.merge(b); // empty ← non-empty
        assert_eq!(a.count, 1);
        assert_eq!(a.mean, 4.0);
        a.merge(MeanVar::new(id)); // non-empty ← empty
        assert_eq!(a.count, 1);
    }

    #[test]
    fn minmax_tracks_extremes() {
        let mut mm = MinMax::new(id);
        for (i, x) in [3.0f64, -1.0, 7.5, 2.0].iter().enumerate() {
            mm.push(i as u64, x);
        }
        assert_eq!((mm.min, mm.max, mm.count), (-1.0, 7.5, 4));
    }

    #[test]
    fn histogram_bins_and_edges() {
        let mut h = Histogram::new(id, 0.0, 10.0, 10);
        for x in [-0.5, 0.0, 0.99, 5.5, 9.999, 10.0, 42.0] {
            h.push(0, &x);
        }
        assert_eq!(h.underflow, 1);
        assert_eq!(h.overflow, 2);
        assert_eq!(h.bins[0], 2);
        assert_eq!(h.bins[5], 1);
        assert_eq!(h.bins[9], 1);
        assert_eq!(h.total(), 7);
        assert_eq!(h.bin_edges(5), (5.0, 6.0));
    }

    #[test]
    fn histogram_nan_is_counted_apart() {
        let mut h = Histogram::new(id, 0.0, 10.0, 10);
        h.push(0, &f64::NAN);
        h.push(1, &0.5);
        assert_eq!(h.nan, 1);
        assert_eq!(h.bins[0], 1, "NaN must not land in the first bin");
        assert_eq!(h.total(), 2);
        let mut other = Histogram::new(id, 0.0, 10.0, 10);
        other.push(2, &f64::NAN);
        h.merge(other);
        assert_eq!(h.nan, 2);
    }

    #[test]
    fn tally_rate_empty_is_zero() {
        let t: Tally<f64> = Tally::new(|x| *x > 0.0);
        assert_eq!(t.rate(), 0.0);
    }

    #[test]
    #[should_panic(expected = "differently-shaped")]
    fn histogram_shape_mismatch_rejected() {
        let mut a: Histogram<f64> = Histogram::new(id, 0.0, 1.0, 4);
        let b: Histogram<f64> = Histogram::new(id, 0.0, 1.0, 8);
        a.merge(b);
    }
}
