//! One place deciding how many worker threads experiments use.
//!
//! Resolution order (first match wins):
//!
//! 1. an explicit `Option<usize>` at the call site
//!    ([`Harness::jobs`](crate::Harness::jobs), [`par_map_jobs`](crate::par_map_jobs));
//! 2. the process-wide override set by [`set_jobs`] (the binaries' `--jobs N`
//!    flag via [`init_jobs_from_args`]);
//! 3. the `MINT_JOBS` environment variable;
//! 4. `std::thread::available_parallelism()`.
//!
//! Worker count never affects results — only wall-clock time — so pinning
//! `--jobs 1` is a way to measure, not to reproduce.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Once;

/// 0 = unset; any positive value overrides the environment.
static GLOBAL_JOBS: AtomicUsize = AtomicUsize::new(0);

/// Warns about a bad `MINT_JOBS` value at most once per process.
static BAD_ENV_WARNING: Once = Once::new();

/// Sets (or, with 0, clears) the process-wide worker-count override.
pub fn set_jobs(jobs: usize) {
    GLOBAL_JOBS.store(jobs, Ordering::SeqCst);
}

/// Resolves the effective worker count for one run (always ≥ 1).
#[must_use]
pub fn resolve_jobs(explicit: Option<usize>) -> usize {
    if let Some(jobs) = explicit {
        return jobs.max(1);
    }
    let global = GLOBAL_JOBS.load(Ordering::SeqCst);
    if global > 0 {
        return global;
    }
    if let Ok(value) = std::env::var("MINT_JOBS") {
        match value.trim().parse::<usize>() {
            Ok(jobs) if jobs > 0 => return jobs,
            // resolve_jobs is called from library code mid-run, so a bad
            // env value cannot be a hard error like --jobs; warn once and
            // fall back rather than silently ignoring the override.
            _ => BAD_ENV_WARNING.call_once(|| {
                eprintln!(
                    "warning: ignoring invalid MINT_JOBS value {value:?} \
                     (need a positive integer); using default parallelism"
                );
            }),
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Parses `--jobs N` / `--jobs=N` / `-j N` from the process arguments,
/// installs it via [`set_jobs`], and returns the effective worker count.
///
/// Call this first thing in experiment binaries; an unparsable value exits
/// with status 2 (a silently ignored override would be worse than an error).
pub fn init_jobs_from_args() -> usize {
    let args: Vec<String> = std::env::args().skip(1).collect();
    init_jobs_from_list(&args)
}

/// [`init_jobs_from_args`] over an explicit argument list (what
/// [`cli::parse`](crate::cli::parse) delegates to).
pub(crate) fn init_jobs_from_list(args: &[String]) -> usize {
    if let Some(jobs) = parse_jobs_args(args) {
        set_jobs(jobs);
    }
    resolve_jobs(None)
}

/// Extracts the jobs override from an argument list (None = not given).
fn parse_jobs_args(args: &[String]) -> Option<usize> {
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let value = if let Some(v) = arg.strip_prefix("--jobs=") {
            v.to_owned()
        } else if arg == "--jobs" || arg == "-j" {
            match iter.next() {
                Some(v) => v.clone(),
                None => die(&format!("{arg} requires a value")),
            }
        } else {
            continue;
        };
        match value.trim().parse::<usize>() {
            Ok(jobs) if jobs > 0 => return Some(jobs),
            _ => die(&format!(
                "invalid jobs value {value:?} (need a positive integer)"
            )),
        }
    }
    None
}

fn die(message: &str) -> ! {
    eprintln!("error: {message}");
    std::process::exit(2);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn parses_all_spellings() {
        assert_eq!(parse_jobs_args(&strings(&["--jobs", "4"])), Some(4));
        assert_eq!(parse_jobs_args(&strings(&["--jobs=7"])), Some(7));
        assert_eq!(parse_jobs_args(&strings(&["-j", "2"])), Some(2));
        assert_eq!(parse_jobs_args(&strings(&["unrelated"])), None);
        assert_eq!(parse_jobs_args(&[]), None);
    }

    #[test]
    fn explicit_beats_everything() {
        assert_eq!(resolve_jobs(Some(3)), 3);
        assert_eq!(resolve_jobs(Some(0)), 1, "explicit 0 clamps to 1");
    }

    #[test]
    fn default_is_positive() {
        assert!(resolve_jobs(None) >= 1);
    }
}
