//! Order-preserving parallel map for deterministic sweep points.

use crate::jobs::resolve_jobs;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Maps `f` over `items` in parallel, returning results in item order.
///
/// The worker count comes from [`resolve_jobs`](crate::resolve_jobs)`(None)`.
/// Output depends only on `items` and `f` — items are claimed dynamically
/// for load balance, but each result lands in its input's slot, so any
/// worker count produces the identical `Vec`.
///
/// ```
/// let squares = mint_exp::par_map(&[1u32, 2, 3, 4], |_i, x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_jobs(None, items, f)
}

/// [`par_map`] with an explicit worker count (`None` = resolve as usual).
pub fn par_map_jobs<T, R, F>(jobs: Option<usize>, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    let jobs = resolve_jobs(jobs).min(n.max(1));
    if jobs <= 1 {
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| f(i, item))
            .collect();
    }
    let claim = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = claim.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let result = f(i, &items[i]);
                *slots[i].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every slot filled by a worker")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_for_any_job_count() {
        let items: Vec<u64> = (0..257).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        for jobs in [1usize, 2, 5, 16] {
            let got = par_map_jobs(Some(jobs), &items, |_i, x| x * 3 + 1);
            assert_eq!(got, expect, "jobs = {jobs}");
        }
    }

    #[test]
    fn passes_the_index() {
        let got = par_map_jobs(Some(4), &["a", "b", "c"], |i, s| format!("{i}{s}"));
        assert_eq!(got, vec!["0a", "1b", "2c"]);
    }

    #[test]
    fn empty_input_is_fine() {
        let got: Vec<u32> = par_map(&[] as &[u32], |_i, x| *x);
        assert!(got.is_empty());
    }
}
