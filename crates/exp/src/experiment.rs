//! The [`Experiment`] trait and the parallel trial [`Harness`].

use crate::aggregate::Aggregator;
use crate::jobs::resolve_jobs;
use mint_rng::{derive_seed, Rng64, Xoshiro256StarStar};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A trial-indexed deterministic computation.
///
/// Trial `i` receives an RNG seeded with `derive_seed(master_seed, i)` — the
/// seed depends on the trial index only, never on which worker thread runs
/// it, preserving the replay-from-seed contract stated in
/// `mint_core::InDramTracker`.
pub trait Experiment: Sync {
    /// What one trial produces (kept small: aggregation is streaming).
    type Outcome: Send;

    /// Runs trial `trial_idx` on its private deterministic RNG stream.
    fn trial(&self, trial_idx: u64, rng: &mut dyn Rng64) -> Self::Outcome;
}

/// Every `Fn(u64, &mut dyn Rng64) -> O` closure is an experiment, so ad-hoc
/// sweeps don't need a named type.
impl<O: Send, F: Fn(u64, &mut dyn Rng64) -> O + Sync> Experiment for F {
    type Outcome = O;

    fn trial(&self, trial_idx: u64, rng: &mut dyn Rng64) -> O {
        self(trial_idx, rng)
    }
}

/// Runs the trials of an [`Experiment`] across worker threads and reduces
/// their outcomes through an [`Aggregator`].
///
/// # Determinism
///
/// Trials are grouped into fixed-size chunks whose boundaries depend only on
/// `trials` and `chunk_size` — not on the worker count. Each chunk is
/// aggregated into a fresh aggregator and the chunk aggregates are merged in
/// ascending chunk order. A 1-job run takes exactly the same chunk/merge
/// path, so for any job count the result is **bit-identical** (including
/// floating-point aggregates, whose rounding is order-sensitive).
///
/// # Examples
///
/// ```
/// use mint_exp::{Harness, Tally};
/// use mint_rng::Rng64;
///
/// // Closures are experiments too: tally how often a fair coin lands heads.
/// let coin = |_idx: u64, rng: &mut dyn Rng64| rng.gen_bool(0.5);
/// let t = Harness::new(4096, 7).run(&coin, || Tally::new(|h: &bool| *h));
/// assert_eq!(t.total, 4096);
/// assert!((t.rate() - 0.5).abs() < 0.05);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Harness {
    trials: u64,
    master_seed: u64,
    jobs: Option<usize>,
    chunk_size: u64,
}

/// Default trials per chunk: large enough to amortise the merge lock, small
/// enough to load-balance short runs.
const DEFAULT_CHUNK: u64 = 16;

impl Harness {
    /// A harness for `trials` trials fanned out from `master_seed`.
    ///
    /// Worker count defaults to [`resolve_jobs`]`(None)` (the `--jobs` /
    /// `MINT_JOBS` override, else `available_parallelism`).
    #[must_use]
    pub fn new(trials: u64, master_seed: u64) -> Self {
        Self {
            trials,
            master_seed,
            jobs: None,
            chunk_size: DEFAULT_CHUNK,
        }
    }

    /// Pins the worker count (1 forces sequential execution).
    ///
    /// # Panics
    ///
    /// Panics if `jobs == 0`.
    #[must_use]
    pub fn jobs(mut self, jobs: usize) -> Self {
        assert!(jobs > 0, "need at least one worker");
        self.jobs = Some(jobs);
        self
    }

    /// Overrides the trials-per-chunk granularity.
    ///
    /// Results for the same `(trials, master_seed, chunk_size)` are
    /// identical across job counts; changing `chunk_size` may change
    /// floating-point aggregates in the last few bits (different merge
    /// boundaries), never counts or tallies.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_size == 0`.
    #[must_use]
    pub fn chunk_size(mut self, chunk_size: u64) -> Self {
        assert!(chunk_size > 0, "chunk size must be non-zero");
        self.chunk_size = chunk_size;
        self
    }

    /// The number of trials this harness will run.
    #[must_use]
    pub fn trials(&self) -> u64 {
        self.trials
    }

    /// Runs all trials and returns the merged aggregate.
    ///
    /// `make_aggregator` constructs one fresh aggregator per chunk (plus the
    /// root accumulator), so it must return a pristine zero state each call.
    pub fn run<E, A>(&self, experiment: &E, make_aggregator: impl Fn() -> A + Sync) -> A
    where
        E: Experiment,
        A: Aggregator<E::Outcome>,
    {
        let mut acc = make_aggregator();
        if self.trials == 0 {
            return acc;
        }
        let n_chunks = self.trials.div_ceil(self.chunk_size);
        let jobs = resolve_jobs(self.jobs).min(usize::try_from(n_chunks).unwrap_or(usize::MAX));
        if jobs <= 1 {
            for chunk in 0..n_chunks {
                acc.merge(self.run_chunk(experiment, &make_aggregator, chunk));
            }
            return acc;
        }

        struct MergeState<A> {
            next: u64,
            pending: BTreeMap<u64, A>,
            acc: Option<A>,
        }
        let claim = AtomicU64::new(0);
        let state = Mutex::new(MergeState {
            next: 0,
            pending: BTreeMap::new(),
            acc: Some(acc),
        });
        std::thread::scope(|scope| {
            for _ in 0..jobs {
                scope.spawn(|| loop {
                    let chunk = claim.fetch_add(1, Ordering::Relaxed);
                    if chunk >= n_chunks {
                        break;
                    }
                    let part = self.run_chunk(experiment, &make_aggregator, chunk);
                    let mut st = state.lock().expect("merge state poisoned");
                    st.pending.insert(chunk, part);
                    // Fold every contiguously-completed chunk, in order.
                    loop {
                        let next = st.next;
                        let Some(ready) = st.pending.remove(&next) else {
                            break;
                        };
                        st.acc
                            .as_mut()
                            .expect("accumulator present until scope ends")
                            .merge(ready);
                        st.next += 1;
                    }
                });
            }
        });
        state
            .into_inner()
            .expect("merge state poisoned")
            .acc
            .take()
            .expect("all chunks merged")
    }

    /// Runs one chunk sequentially into a fresh aggregator.
    fn run_chunk<E, A>(&self, experiment: &E, make_aggregator: &impl Fn() -> A, chunk: u64) -> A
    where
        E: Experiment,
        A: Aggregator<E::Outcome>,
    {
        let mut agg = make_aggregator();
        let lo = chunk * self.chunk_size;
        let hi = (lo + self.chunk_size).min(self.trials);
        for trial in lo..hi {
            let mut rng = Xoshiro256StarStar::seed_from_u64(derive_seed(self.master_seed, trial));
            let outcome = experiment.trial(trial, &mut rng);
            agg.push(trial, &outcome);
        }
        agg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::{Histogram, MeanVar, MinMax, Tally, TrialCount};

    /// A trial whose outcome depends on both the index and the RNG stream,
    /// with an index-dependent number of draws (so any cross-trial stream
    /// leakage would corrupt results).
    struct Toy;

    impl Experiment for Toy {
        type Outcome = f64;

        fn trial(&self, trial_idx: u64, rng: &mut dyn Rng64) -> f64 {
            let mut x = 0.0;
            for _ in 0..=(trial_idx % 5) {
                x += rng.gen_f64();
            }
            x
        }
    }

    type FullAgg = (
        TrialCount,
        Tally<f64>,
        MeanVar<f64>,
        MinMax<f64>,
        Histogram<f64>,
    );

    fn full_agg() -> FullAgg {
        (
            TrialCount::new(),
            Tally::new(|x: &f64| *x > 1.0),
            MeanVar::new(|x: &f64| *x),
            MinMax::new(|x: &f64| *x),
            Histogram::new(|x: &f64| *x, 0.0, 5.0, 25),
        )
    }

    fn assert_bit_identical(a: &FullAgg, b: &FullAgg) {
        assert_eq!(a.0, b.0);
        assert_eq!((a.1.hits, a.1.total), (b.1.hits, b.1.total));
        assert_eq!(a.2.count, b.2.count);
        assert_eq!(a.2.mean.to_bits(), b.2.mean.to_bits());
        assert_eq!(
            a.2.sample_variance().to_bits(),
            b.2.sample_variance().to_bits()
        );
        assert_eq!(a.3.min.to_bits(), b.3.min.to_bits());
        assert_eq!(a.3.max.to_bits(), b.3.max.to_bits());
        assert_eq!(a.4.bins, b.4.bins);
    }

    #[test]
    fn parallel_is_bit_identical_to_sequential() {
        for trials in [1u64, 15, 16, 17, 160, 1000] {
            let seq = Harness::new(trials, 99).jobs(1).run(&Toy, full_agg);
            for jobs in [2usize, 3, 8] {
                let par = Harness::new(trials, 99).jobs(jobs).run(&Toy, full_agg);
                assert_bit_identical(&seq, &par);
            }
        }
    }

    #[test]
    fn zero_trials_returns_pristine_aggregate() {
        let a = Harness::new(0, 1).run(&Toy, full_agg);
        assert_eq!(a.0.trials, 0);
        assert_eq!(a.2.count, 0);
    }

    #[test]
    fn chunk_size_does_not_change_counts() {
        let a = Harness::new(333, 5).chunk_size(1).run(&Toy, full_agg);
        let b = Harness::new(333, 5).chunk_size(1000).run(&Toy, full_agg);
        assert_eq!(a.0.trials, b.0.trials);
        assert_eq!(a.1.hits, b.1.hits);
        assert_eq!(a.4.bins, b.4.bins);
    }

    #[test]
    fn closure_experiments_work() {
        let exp = |idx: u64, _rng: &mut dyn Rng64| idx;
        let n = Harness::new(100, 0).run(&exp, || Tally::new(|i: &u64| *i % 2 == 0));
        assert_eq!(n.hits, 50);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_jobs_rejected() {
        let _ = Harness::new(1, 1).jobs(0);
    }

    #[test]
    #[should_panic(expected = "chunk size must be non-zero")]
    fn zero_chunk_rejected() {
        let _ = Harness::new(1, 1).chunk_size(0);
    }
}
