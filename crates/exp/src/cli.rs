//! Shared command-line handling for experiment binaries.
//!
//! Every `mint-bench` binary used to open with its own copy of
//! `init_jobs_from_args()` and hand-rolled output-path plumbing. [`parse`]
//! replaces that: it installs the `--jobs N` override (via
//! [`set_jobs`](crate::set_jobs), same resolution order as before), picks
//! up an optional `--out PATH`, and returns the remaining free arguments
//! (e.g. a trace or scenario file) — so every binary gets `--jobs` and
//! `--out` for free:
//!
//! ```text
//! some_bin [-- --jobs N] [--out PATH] [FILE…]
//! ```
//!
//! Unparsable values exit with status 2 (a silently ignored override
//! would be worse than an error), matching the long-standing `--jobs`
//! contract.

use crate::jobs;

/// Parsed common arguments of one experiment binary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cli {
    /// Effective worker count (the `--jobs` override is already
    /// installed process-wide).
    pub jobs: usize,
    /// `--out PATH`, if given: where the binary should write its
    /// machine-readable artifact.
    pub out: Option<String>,
    /// Free (positional) arguments, in order.
    pub free: Vec<String>,
}

impl Cli {
    /// The artifact path: `--out` if given, else `default`.
    #[must_use]
    pub fn out_path<'a>(&'a self, default: &'a str) -> &'a str {
        self.out.as_deref().unwrap_or(default)
    }

    /// Writes a machine-readable artifact to [`out_path`](Cli::out_path)
    /// and logs the destination. The artifact is the binary's contract:
    /// failing to produce it exits non-zero (CI consumes it).
    pub fn write_artifact(&self, default: &str, content: &str) {
        let path = self.out_path(default);
        match std::fs::write(path, content) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => {
                eprintln!("could not write {path}: {e}");
                std::process::exit(1);
            }
        }
    }

    /// Writes a secondary artifact (same contract as
    /// [`write_artifact`](Cli::write_artifact)) that always lands at
    /// `path`: `--out` redirects only the binary's primary artifact, so
    /// a binary emitting several files never clobbers one with another.
    pub fn write_aux_artifact(&self, path: &str, content: &str) {
        match std::fs::write(path, content) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => {
                eprintln!("could not write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}

/// Parses the process arguments: installs the `--jobs` override and
/// returns the [`Cli`]. Call this first thing in experiment binaries —
/// also worthwhile for binaries that only want the `--jobs` side effect.
pub fn parse() -> Cli {
    let args: Vec<String> = std::env::args().skip(1).collect();
    parse_from(&args)
}

/// [`parse`] over an explicit argument list (testable core).
pub fn parse_from(args: &[String]) -> Cli {
    let mut out = None;
    let mut free = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if let Some(v) = arg.strip_prefix("--out=") {
            out = Some(v.to_owned());
        } else if arg == "--out" || arg == "-o" {
            match iter.next() {
                Some(v) => out = Some(v.clone()),
                None => die(&format!("{arg} requires a value")),
            }
        } else if arg == "--jobs" || arg == "-j" {
            // Value consumed (and validated) by the jobs parser below.
            if iter.next().is_none() {
                die(&format!("{arg} requires a value"));
            }
        } else if arg.starts_with("--jobs=") {
            // Validated by the jobs parser below; nothing to consume.
        } else {
            free.push(arg.clone());
        }
    }
    let jobs = jobs::init_jobs_from_list(args);
    Cli { jobs, out, free }
}

fn die(message: &str) -> ! {
    eprintln!("error: {message}");
    std::process::exit(2);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn parses_out_jobs_and_free_args() {
        let cli = parse_from(&strings(&[
            "--jobs",
            "2",
            "my.scn",
            "--out",
            "report.json",
            "extra",
        ]));
        assert_eq!(cli.out.as_deref(), Some("report.json"));
        assert_eq!(cli.free, vec!["my.scn", "extra"]);
        assert_eq!(cli.out_path("default.json"), "report.json");
        crate::set_jobs(0); // restore default resolution for other tests
    }

    #[test]
    fn equals_spelling_and_defaults() {
        let cli = parse_from(&strings(&["--out=x.json"]));
        assert_eq!(cli.out.as_deref(), Some("x.json"));
        assert!(cli.free.is_empty());
        let bare = parse_from(&[]);
        assert_eq!(bare.out, None);
        assert_eq!(bare.out_path("fallback"), "fallback");
        assert!(bare.jobs >= 1);
    }
}
