//! # mint-exp — the unified parallel experiment harness
//!
//! Every result in the MINT paper — survival probabilities (Figs 3/5/6),
//! attack sweeps (Figs 10/11/21) and the performance tables — is produced by
//! repeating seeded, deterministic computations: Monte-Carlo trials over the
//! simulator, sweep points over the analytical solver, or
//! (workload, scheme) grid cells over the memory-system model. This crate
//! owns that orchestration end to end so `mint-sim`, `mint-bench` and
//! `mint-memsys` share one engine instead of three hand-rolled loops:
//!
//! * [`Experiment`] — a trial-indexed computation; trial `i` always draws
//!   from the substream `derive_seed(master_seed, i)`, so results are a
//!   function of the master seed alone, never of scheduling.
//! * [`Harness`] — multi-threaded trial execution over `std::thread::scope`
//!   (no external dependencies). Chunks of trials are claimed atomically and
//!   their partial aggregates merged **in chunk order**, so an N-thread run
//!   is bit-identical to the same run forced to 1 thread.
//! * [`aggregate`] — composable streaming aggregators ([`TrialCount`],
//!   [`Tally`], Welford [`MeanVar`], [`MinMax`], [`Histogram`], and tuples
//!   thereof) keeping memory O(1) in the trial count.
//! * [`par_map`] — an order-preserving parallel map for deterministic sweep
//!   points (figure series, ablation grids, workload x scheme grids).
//! * [`jobs`] — one place deciding worker counts: explicit override >
//!   [`set_jobs`] (the binaries' `--jobs N`) > `MINT_JOBS` env >
//!   `available_parallelism`.
//! * [`cli`] — the experiment binaries' shared argument handling: every
//!   binary gets `--jobs N` and `--out PATH` (plus free arguments such as
//!   scenario files) from one [`cli::parse`] call.
//! * [`prop`] — a tiny deterministic property-testing driver used by the
//!   repository's invariant tests.
//! * [`stopwatch`] — a dependency-free micro-benchmark timer used by the
//!   `mint-bench` bench targets.
//!
//! # Examples
//!
//! A Monte-Carlo experiment with composed streaming aggregates; the
//! parallel run is bit-identical to the sequential one:
//!
//! ```
//! use mint_exp::{Experiment, Harness, MeanVar, Tally, TrialCount};
//! use mint_rng::Rng64;
//!
//! /// Estimates P[U < 1/73] by Monte-Carlo (the MINT SAN hit rate).
//! struct SanHit;
//!
//! impl Experiment for SanHit {
//!     type Outcome = f64;
//!     fn trial(&self, _idx: u64, rng: &mut dyn Rng64) -> f64 {
//!         rng.gen_f64()
//!     }
//! }
//!
//! let agg = || {
//!     (
//!         TrialCount::new(),
//!         Tally::new(|u: &f64| *u < 1.0 / 73.0),
//!         MeanVar::new(|u: &f64| *u),
//!     )
//! };
//! let par = Harness::new(10_000, 42).run(&SanHit, agg);
//! let seq = Harness::new(10_000, 42).jobs(1).run(&SanHit, agg);
//! assert_eq!(par.0.trials, 10_000);
//! assert!((par.1.rate() - 1.0 / 73.0).abs() < 5e-3);
//! assert_eq!(par.2.mean.to_bits(), seq.2.mean.to_bits()); // bit-identical
//! ```

pub mod aggregate;
pub mod cli;
mod experiment;
pub mod jobs;
pub mod json;
pub mod prop;
pub mod stopwatch;
mod sweep;

pub use aggregate::{Aggregator, Histogram, MeanVar, MinMax, Tally, TrialCount};
pub use experiment::{Experiment, Harness};
pub use jobs::{init_jobs_from_args, resolve_jobs, set_jobs};
pub use sweep::{par_map, par_map_jobs};
