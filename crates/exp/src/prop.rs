//! A tiny deterministic property-testing driver.
//!
//! The repository's invariant tests exercise each property over many
//! generated cases. Instead of an external framework, cases are generated
//! from the same deterministic RNG substrate as every experiment: case `i`
//! of a suite draws from the substream `derive_seed(suite_seed, i)`, so a
//! failing case prints an index that replays exactly.
//!
//! ```
//! use mint_exp::prop::{forall, u32_in, vec_u32};
//!
//! forall(16, 0xCAFE, |case, rng| {
//!     let xs = vec_u32(rng, 1, 10, 0, 100);
//!     let bound = u32_in(rng, 100, 200);
//!     assert!(xs.iter().all(|&x| x < bound), "case {case}: {xs:?}");
//! });
//! ```

use mint_rng::{derive_seed, Rng64, Xoshiro256StarStar};

/// Runs `body` for `cases` deterministic cases derived from `suite_seed`.
///
/// The body receives the case index (for failure messages) and that case's
/// private RNG. Assert inside the body; a panic fails the enclosing test.
pub fn forall(cases: u64, suite_seed: u64, mut body: impl FnMut(u64, &mut Xoshiro256StarStar)) {
    for case in 0..cases {
        let mut rng = Xoshiro256StarStar::seed_from_u64(derive_seed(suite_seed, case));
        body(case, &mut rng);
    }
}

/// Uniform draw from the half-open range `lo..hi`.
///
/// # Panics
///
/// Panics if `lo >= hi`.
#[must_use]
pub fn u32_in(rng: &mut impl Rng64, lo: u32, hi: u32) -> u32 {
    assert!(lo < hi, "empty range {lo}..{hi}");
    lo + rng.gen_range_u32(hi - lo)
}

/// Uniform draw from the half-open range `lo..hi`.
///
/// # Panics
///
/// Panics if `lo >= hi`.
#[must_use]
pub fn u64_in(rng: &mut impl Rng64, lo: u64, hi: u64) -> u64 {
    assert!(lo < hi, "empty range {lo}..{hi}");
    lo + rng.gen_range_u64(hi - lo)
}

/// Uniform draw from the half-open range `lo..hi`.
///
/// # Panics
///
/// Panics if `lo >= hi`.
#[must_use]
pub fn usize_in(rng: &mut impl Rng64, lo: usize, hi: usize) -> usize {
    assert!(lo < hi, "empty range {lo}..{hi}");
    lo + rng.gen_range_u64((hi - lo) as u64) as usize
}

/// Uniform draw from `[lo, hi)`.
///
/// # Panics
///
/// Panics if the range is empty or not finite.
#[must_use]
pub fn f64_in(rng: &mut impl Rng64, lo: f64, hi: f64) -> f64 {
    assert!(
        lo < hi && lo.is_finite() && hi.is_finite(),
        "bad range {lo}..{hi}"
    );
    lo + rng.gen_f64() * (hi - lo)
}

/// A vector with length drawn from `len_lo..len_hi` and elements drawn
/// from `val_lo..val_hi`.
///
/// # Panics
///
/// Panics if either range is empty.
#[must_use]
pub fn vec_u32(
    rng: &mut impl Rng64,
    len_lo: usize,
    len_hi: usize,
    val_lo: u32,
    val_hi: u32,
) -> Vec<u32> {
    let len = usize_in(rng, len_lo, len_hi);
    (0..len).map(|_| u32_in(rng, val_lo, val_hi)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forall_is_deterministic() {
        let collect = |seed| {
            let mut out = Vec::new();
            forall(8, seed, |case, rng| out.push((case, rng.next_u64())));
            out
        };
        assert_eq!(collect(1), collect(1));
        assert_ne!(collect(1), collect(2));
    }

    #[test]
    fn draws_respect_ranges() {
        forall(32, 99, |_case, rng| {
            assert!((5..17).contains(&u32_in(rng, 5, 17)));
            assert!((5..17).contains(&u64_in(rng, 5, 17)));
            assert!((5..17).contains(&usize_in(rng, 5, 17)));
            let x = f64_in(rng, -1.0, 1.0);
            assert!((-1.0..1.0).contains(&x));
            let v = vec_u32(rng, 2, 6, 10, 20);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| (10..20).contains(&x)));
        });
    }

    #[test]
    fn singleton_length_range_is_fixed() {
        forall(4, 7, |_case, rng| {
            assert_eq!(vec_u32(rng, 73, 74, 0, 5).len(), 73);
        });
    }
}
