//! Dependency-free micro-benchmark timing for the `mint-bench` bench
//! targets (`cargo bench` runs them; `harness = false`).
//!
//! Not a statistics suite: one warm-up call, then the iteration count is
//! doubled until the measured batch exceeds the target wall time, and the
//! per-iteration mean is reported. Good enough to spot order-of-magnitude
//! regressions in the simulator hot paths without external dependencies.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Minimum measured batch duration before a result is reported.
const TARGET: Duration = Duration::from_millis(200);

/// Iteration cap for very slow benchmarks.
const MAX_ITERS: u64 = 1 << 24;

/// One timed batch: how many iterations ran and how long they took.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Measurement {
    /// Iterations in the measured batch.
    pub iters: u64,
    /// Wall time of the whole batch.
    pub elapsed: Duration,
}

impl Measurement {
    /// Mean nanoseconds per iteration.
    #[must_use]
    pub fn ns_per_iter(&self) -> f64 {
        self.elapsed.as_nanos() as f64 / self.iters.max(1) as f64
    }
}

/// Times `f` until the measured batch lasts at least `target` (one
/// warm-up call first, then the iteration count is scaled up from the
/// observed rate). `Duration::ZERO` times exactly one post-warm-up call —
/// the mode throughput cells use, where a single call is already
/// milliseconds of simulated work and the caller takes a min over
/// repetitions instead.
pub fn measure(target: Duration, mut f: impl FnMut()) -> Measurement {
    f(); // warm-up (page in code and data)
    let mut iters: u64 = 1;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        let elapsed = start.elapsed();
        if elapsed >= target || iters >= MAX_ITERS {
            return Measurement { iters, elapsed };
        }
        // Aim straight for the target from the observed rate (at least
        // doubling to converge when early measurements are noisy).
        let scaled = if elapsed.is_zero() {
            iters.saturating_mul(16)
        } else {
            (iters as f64 * target.as_secs_f64() / elapsed.as_secs_f64()).ceil() as u64
        };
        iters = scaled.max(iters.saturating_mul(2)).min(MAX_ITERS);
    }
}

/// Prints `group/name  <mean> ns/iter (<iters> iters)` lines to stdout.
pub struct Runner {
    group: String,
}

impl Runner {
    /// A runner labelling every result with `group`.
    #[must_use]
    pub fn new(group: &str) -> Self {
        println!("benchmark group: {group}");
        Self {
            group: group.to_owned(),
        }
    }

    /// Times `f`, printing the per-iteration mean.
    pub fn bench(&mut self, name: &str, f: impl FnMut()) {
        let m = measure(TARGET, f);
        println!(
            "{}/{name}  {} ns/iter ({} iters, {:.3} s)",
            self.group,
            m.elapsed.as_nanos() / u128::from(m.iters),
            m.iters,
            m.elapsed.as_secs_f64(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_reports_and_terminates() {
        let mut calls = 0u64;
        let mut runner = Runner::new("test");
        runner.bench("busy", || {
            calls += 1;
            std::hint::spin_loop();
            black_box(());
        });
        assert!(calls > 1, "benchmark body should run many iterations");
    }

    #[test]
    fn zero_target_times_one_call_after_warmup() {
        let mut calls = 0u64;
        let m = measure(Duration::ZERO, || calls += 1);
        assert_eq!(m.iters, 1, "a zero target reports the first batch");
        assert_eq!(calls, 2, "warm-up call plus one measured call");
        assert!(m.ns_per_iter() >= 0.0);
    }
}
