//! Dependency-free micro-benchmark timing for the `mint-bench` bench
//! targets (`cargo bench` runs them; `harness = false`).
//!
//! Not a statistics suite: one warm-up call, then the iteration count is
//! doubled until the measured batch exceeds the target wall time, and the
//! per-iteration mean is reported. Good enough to spot order-of-magnitude
//! regressions in the simulator hot paths without external dependencies.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Minimum measured batch duration before a result is reported.
const TARGET: Duration = Duration::from_millis(200);

/// Iteration cap for very slow benchmarks.
const MAX_ITERS: u64 = 1 << 24;

/// Prints `group/name  <mean> ns/iter (<iters> iters)` lines to stdout.
pub struct Runner {
    group: String,
}

impl Runner {
    /// A runner labelling every result with `group`.
    #[must_use]
    pub fn new(group: &str) -> Self {
        println!("benchmark group: {group}");
        Self {
            group: group.to_owned(),
        }
    }

    /// Times `f`, printing the per-iteration mean.
    pub fn bench(&mut self, name: &str, mut f: impl FnMut()) {
        f(); // warm-up (page in code and data)
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                f();
            }
            let elapsed = start.elapsed();
            if elapsed >= TARGET || iters >= MAX_ITERS {
                let per_iter = elapsed.as_nanos() / u128::from(iters);
                println!(
                    "{}/{name}  {per_iter} ns/iter ({iters} iters, {:.3} s)",
                    self.group,
                    elapsed.as_secs_f64(),
                );
                return;
            }
            // Aim straight for the target from the observed rate (at least
            // doubling to converge when early measurements are noisy).
            let scaled = if elapsed.is_zero() {
                iters.saturating_mul(16)
            } else {
                (iters as f64 * TARGET.as_secs_f64() / elapsed.as_secs_f64()).ceil() as u64
            };
            iters = scaled.max(iters.saturating_mul(2)).min(MAX_ITERS);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_reports_and_terminates() {
        let mut calls = 0u64;
        let mut runner = Runner::new("test");
        runner.bench("busy", || {
            calls += 1;
            std::hint::spin_loop();
            black_box(());
        });
        assert!(calls > 1, "benchmark body should run many iterations");
    }
}
