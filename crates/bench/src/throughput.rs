//! Raw simulator speed: wall-clock throughput of the command scheduler.
//!
//! Every other experiment in this crate measures *simulated* performance;
//! this one measures the simulator itself — how many scheduling decisions,
//! serviced requests and DRAM commands per second of host time the
//! [`Sim`] pipeline sustains, cell by cell across three axes:
//!
//! * **scheme** — the full tracker zoo on a realistic mcf stream, since
//!   backend per-ACT cost rides the same hot path;
//! * **policy** — FCFS vs FR-FCFS arbitration on a saturated stream;
//! * **depth** — a saturated stream at 4/16/32 cores, growing the live
//!   transaction-queue population the planner must arbitrate over (one
//!   outstanding request per core, so live depth tracks the core count);
//! * **channels** — a saturated stream over a 1/2/4-channel
//!   [`System`](mint_memsys::System) topology, exercising the frontend
//!   routing and per-channel pipelines of the DIMM scale-out;
//! * **sat32** — the checked-in `examples/scenarios/saturation32.scn`
//!   cell: 32 cores on one FR-FCFS channel, so nearly every decision is
//!   a deep-queue arbitration pass (the cell where shared per-request
//!   cost — admission, generation, refresh alignment — dominates).
//!
//! Each cell is timed three ways — the optimized defaults, the retained
//! scratch planner ([`set_reference_planner_default`]), and the retained
//! *shared-path* references (sorted-vec admission, unbatched generation
//! and division-based refresh alignment, the three knobs this sweep's
//! `shared_speedup` isolates) — taking the minimum over alternating
//! repetitions so load spikes on the host cannot bias one side, and
//! asserting along the way that all three modes produced bit-identical
//! [`SimResult`]s. Each record also carries a per-stage attribution
//! estimate — `gen`/`plan`/`engine` ns per request, where generation and
//! the bare engine are timed standalone and plan is the (clamped)
//! residual — so a trajectory diff shows *which* stage a shave moved.
//! The machine-readable `BENCH_throughput.json` is the tracked
//! trajectory artifact (`figx_throughput`), schema-checked by
//! [`check_throughput_schema`] before every write. Unlike
//! `BENCH_perf.json`/`BENCH_security.json`, its numbers are wall-clock
//! and therefore machine-dependent: compare runs from the same host, and
//! prefer the speedup ratios, which divide the host speed out.
//! `repro_all` — whose output is byte-compared across runs — gets the
//! deterministic [`volume_table`] rendering instead.

use std::time::Duration;

use mint_analysis::textable::TexTable;
use mint_memsys::{
    set_reference_admission_default, set_reference_generation_default,
    set_reference_planner_default, set_reference_refresh_default, workload_by_name, AddressDecoder,
    AddressMapping, CoreStream, MemoryController, MitigationScheme, Request, RequestSource,
    ScenarioFrontend, ScenarioSpec, SchedulePolicy, Sim, SimResult, SystemConfig, WorkloadSpec,
};
use mint_rng::derive_seed;

/// Alternating repetitions per cell (min taken). A cell is a
/// multi-millisecond batch of simulated work, so even a dozen reps stay
/// cheap — and the shared-path ratio compares sums of small per-request
/// shaves, which the historical two reps could not resolve above host
/// jitter.
pub const DEFAULT_REPS: u32 = 12;

/// Repetitions in `--quick` (CI) mode: fewer than the full sweep, but
/// still enough for stable minima on the ratio columns.
pub const QUICK_REPS: u32 = 8;

/// A synthetic stream that keeps every core's outstanding request slot
/// full (MPKI high enough that think time rounds to zero), so the channel
/// queue holds one live transaction per core at every decision. This is
/// the suite's `saturate` workload ([`mint_memsys::saturation_spec`]),
/// re-exported under the bench's historical name.
#[must_use]
pub fn saturated_spec() -> WorkloadSpec {
    mint_memsys::saturation_spec()
}

/// The checked-in 32-core saturation scenario ([`saturation32_cell`]).
pub const SATURATION32_SCN: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../examples/scenarios/saturation32.scn"
);

/// Loads `examples/scenarios/saturation32.scn` as the sweep's
/// arbitration-dominated cell (CI times exactly what users can run by
/// hand with `run_scenario`). `quick` quarters the request budget.
///
/// # Panics
///
/// Panics if the checked-in scenario file is missing, malformed, or no
/// longer the 32-core rate cell this sweep expects.
#[must_use]
pub fn saturation32_cell(quick: bool) -> ThroughputCell {
    let text = std::fs::read_to_string(SATURATION32_SCN)
        .unwrap_or_else(|e| panic!("read {SATURATION32_SCN}: {e}"));
    let spec = ScenarioSpec::parse(&text).unwrap_or_else(|e| panic!("{SATURATION32_SCN}: {e}"));
    let cores = spec.cores.expect("saturation32.scn pins a core count");
    let ScenarioFrontend::Workload(cell) = &spec.frontend else {
        panic!("saturation32.scn is a workload cell");
    };
    let workload = cell.resolve(cores)[0];
    ThroughputCell {
        label: format!("sat32/x{cores}"),
        scheme: spec.scheme,
        policy: spec.policy,
        cores,
        channels: spec.channels.unwrap_or(1),
        requests_per_core: if quick {
            spec.requests_per_core / 4
        } else {
            spec.requests_per_core
        },
        spec: workload,
    }
}

/// One measured configuration: a full [`Sim`] run timed wall-clock.
#[derive(Debug, Clone)]
pub struct ThroughputCell {
    /// Axis-qualified label (e.g. `"zoo/MINT"`, `"depth/x32"`).
    pub label: String,
    /// Mitigation scheme under measurement.
    pub scheme: MitigationScheme,
    /// Arbitration policy under measurement.
    pub policy: SchedulePolicy,
    /// Core count (every core runs `spec`; live queue depth ≤ cores).
    pub cores: u32,
    /// Memory channels of the simulated topology.
    pub channels: u32,
    /// Requests per core per timed run.
    pub requests_per_core: u32,
    /// The per-core synthetic stream.
    pub spec: WorkloadSpec,
}

/// The measured outcome of one cell.
#[derive(Debug, Clone)]
pub struct ThroughputRecord {
    /// Cell label (see [`ThroughputCell::label`]).
    pub label: String,
    /// Scheme label.
    pub scheme: String,
    /// Policy label.
    pub policy: String,
    /// Core count of the run.
    pub cores: u32,
    /// Memory channels of the run.
    pub channels: u32,
    /// Transaction-queue bound of the run (per channel).
    pub queue_depth: u32,
    /// Requests serviced per timed run.
    pub requests: u64,
    /// DRAM commands executed per timed run (ACTs, CAS bursts, RFM and
    /// DRFM — the command stream the scheduler actually planned).
    pub commands: u64,
    /// Best host-side ns per scheduling decision, optimized defaults.
    pub ns_per_decision: f64,
    /// Best host-side ns per scheduling decision, scratch planner
    /// reference.
    pub reference_ns_per_decision: f64,
    /// Best host-side ns per scheduling decision with the shared-path
    /// references selected (sorted-vec admission, unbatched generation,
    /// division-based refresh alignment; planner stays optimized).
    pub shared_reference_ns_per_decision: f64,
    /// Standalone generation cost: ns per request to draw the cell's
    /// per-core synthetic streams, nothing else.
    pub gen_ns_per_req: f64,
    /// Standalone engine cost: ns per request to service the same
    /// stream closed-loop on a bare [`MemoryController`] (no queue, no
    /// arbitration).
    pub engine_ns_per_req: f64,
    /// Best host-side ns per scheduling decision with the observability
    /// subsystem *enabled* (`Sim::telemetry`): counters, histograms and
    /// the sim-time sampler all recording. The optimized column is the
    /// disabled path — dead-`Option` branches only — so the
    /// [`obs_overhead`](Self::obs_overhead) ratio bounds what telemetry
    /// costs when it is on, and trajectory diffs of `ns_per_decision`
    /// on the mcf zoo cell guard the ≤2% disabled-path budget.
    pub telemetry_ns_per_decision: f64,
    /// Serviced requests per host second (optimized defaults).
    pub requests_per_sec: f64,
    /// Executed DRAM commands per host second (optimized defaults).
    pub commands_per_sec: f64,
}

impl ThroughputRecord {
    /// Reference-over-incremental time ratio (> 1 means the incremental
    /// planner is faster).
    #[must_use]
    pub fn planner_speedup(&self) -> f64 {
        self.reference_ns_per_decision / self.ns_per_decision
    }

    /// Shared-path-reference-over-optimized time ratio (> 1 means the
    /// heap admission + batched generation + refresh strength reduction
    /// are a net win on this cell).
    #[must_use]
    pub fn shared_speedup(&self) -> f64 {
        self.shared_reference_ns_per_decision / self.ns_per_decision
    }

    /// Telemetry-on-over-off time ratio (1.0 = recording is free on this
    /// cell; 1.02 = enabling the obs subsystem costs 2%). The
    /// telemetry-off run *is* the disabled path, so this column also
    /// upper-bounds what the dead hooks could possibly cost.
    #[must_use]
    pub fn obs_overhead(&self) -> f64 {
        self.telemetry_ns_per_decision / self.ns_per_decision
    }

    /// Arbitration-and-bookkeeping residual: whatever of the end-to-end
    /// per-request cost the standalone generation and engine benches do
    /// not account for (clamped at zero — the stages are measured in
    /// separate cache regimes, so tiny negative residuals can occur on
    /// engine-dominated cells).
    #[must_use]
    pub fn plan_ns_per_req(&self) -> f64 {
        (self.ns_per_decision - self.gen_ns_per_req - self.engine_ns_per_req).max(0.0)
    }
}

/// The measured cell set. `quick` trims it for CI: fewer schemes, fewer
/// requests, and the 32-core depth point dropped.
#[must_use]
pub fn cells(quick: bool) -> Vec<ThroughputCell> {
    let mcf = workload_by_name("mcf").expect("mcf in the suite");
    let sat = saturated_spec();
    let zoo: Vec<MitigationScheme> = if quick {
        vec![
            MitigationScheme::Baseline,
            MitigationScheme::Mint,
            MitigationScheme::MintRfm { rfm_th: 16 },
        ]
    } else {
        MitigationScheme::zoo()
    };
    let zoo_rpc = if quick { 4_000 } else { 40_000 };
    let sat_rpc = if quick { 2_000 } else { 10_000 };
    let mut out = Vec::new();
    for scheme in zoo {
        out.push(ThroughputCell {
            label: format!("zoo/{}", scheme.label()),
            scheme,
            policy: SchedulePolicy::frfcfs(),
            cores: 4,
            channels: 1,
            requests_per_core: zoo_rpc,
            spec: mcf,
        });
    }
    for policy in [SchedulePolicy::Fcfs, SchedulePolicy::frfcfs()] {
        out.push(ThroughputCell {
            label: format!("policy/{}", policy.label()),
            scheme: MitigationScheme::Baseline,
            policy,
            cores: 4,
            requests_per_core: sat_rpc,
            channels: 1,
            spec: sat,
        });
    }
    let depths: &[u32] = if quick { &[4, 16] } else { &[4, 16, 32] };
    for &cores in depths {
        out.push(ThroughputCell {
            label: format!("depth/x{cores}"),
            scheme: MitigationScheme::Baseline,
            policy: SchedulePolicy::frfcfs(),
            cores,
            channels: 1,
            requests_per_core: sat_rpc,
            spec: sat,
        });
    }
    let channel_counts: &[u32] = if quick { &[1, 2] } else { &[1, 2, 4] };
    for &channels in channel_counts {
        out.push(ThroughputCell {
            label: format!("channels/x{channels}"),
            scheme: MitigationScheme::Baseline,
            policy: SchedulePolicy::frfcfs(),
            cores: 4,
            channels,
            requests_per_core: sat_rpc,
            spec: sat,
        });
    }
    out.push(saturation32_cell(quick));
    out
}

/// Which retained reference implementations a timed run selects.
#[derive(Clone, Copy, PartialEq, Eq)]
enum RunMode {
    /// All optimized defaults.
    Optimized,
    /// The scratch planner reference; shared paths stay optimized.
    ReferencePlanner,
    /// The shared-path references — sorted-vec admission, unbatched
    /// generation, division-based refresh alignment; the planner stays
    /// optimized so the ratio isolates the shared per-request costs.
    ReferenceShared,
    /// Optimized defaults with the observability subsystem enabled —
    /// every scheduler/engine/tracker/session hook recording.
    Telemetry,
}

/// One timed run of `cell` under `mode`. Restores the optimized defaults
/// before returning.
fn timed_run(cell: &ThroughputCell, mode: RunMode) -> (Duration, SimResult) {
    set_reference_planner_default(mode == RunMode::ReferencePlanner);
    let shared = mode == RunMode::ReferenceShared;
    set_reference_admission_default(shared);
    set_reference_generation_default(shared);
    set_reference_refresh_default(shared);
    let cfg = SystemConfig {
        cores: cell.cores,
        channels: cell.channels,
        ..SystemConfig::table6()
    };
    let specs = vec![cell.spec; cell.cores as usize];
    let mut result = None;
    let m = mint_exp::stopwatch::measure(Duration::ZERO, || {
        let mut sim = Sim::new(cfg)
            .scheme(cell.scheme)
            .policy(cell.policy)
            .workload(&specs, cell.requests_per_core)
            .seed(1);
        if mode == RunMode::Telemetry {
            sim = sim.telemetry();
        }
        let report = sim.run();
        result = Some(report.perf.result);
    });
    set_reference_planner_default(false);
    set_reference_admission_default(false);
    set_reference_generation_default(false);
    set_reference_refresh_default(false);
    (m.elapsed, result.expect("measure ran the body"))
}

/// Times the cell's generation and bare-engine stages standalone: the
/// same per-core streams the [`Sim`] builds (seeded the same way), drawn
/// dry into a request buffer, then serviced closed-loop on a bare
/// [`MemoryController`]. Both run on a single-channel config — the
/// router split is arbitration work and belongs to the plan residual.
/// Returns best `(gen, engine)` ns per request over `reps` repetitions.
fn stage_ns_per_req(cell: &ThroughputCell, reps: u32) -> (f64, f64) {
    let cfg = SystemConfig {
        cores: cell.cores,
        ..SystemConfig::table6()
    };
    let total = u64::from(cell.cores) * u64::from(cell.requests_per_core);
    let mut gen = Duration::MAX;
    let mut engine = Duration::MAX;
    for _ in 0..reps.max(1) {
        let mut streams: Vec<CoreStream> = (0..cell.cores)
            .map(|i| {
                CoreStream::new(
                    cell.spec,
                    AddressDecoder::new(&cfg, AddressMapping::default()),
                    cell.spec.think_time_ps(&cfg),
                    derive_seed(1, u64::from(i)),
                )
            })
            .collect();
        let mut reqs: Vec<Request> = Vec::with_capacity(total as usize);
        let m = mint_exp::stopwatch::measure(Duration::ZERO, || {
            for _ in 0..cell.requests_per_core {
                for s in &mut streams {
                    reqs.push(s.next_request().expect("synthetic streams never run dry"));
                }
            }
        });
        gen = gen.min(m.elapsed);
        let mut ctrl = MemoryController::new(cfg, cell.scheme, 1);
        let m = mint_exp::stopwatch::measure(Duration::ZERO, || {
            let mut clock = 0u64;
            for &req in &reqs {
                clock = ctrl.service(req, clock);
            }
        });
        engine = engine.min(m.elapsed);
    }
    (
        gen.as_nanos() as f64 / total.max(1) as f64,
        engine.as_nanos() as f64 / total.max(1) as f64,
    )
}

/// Times one cell under all three run modes (optimized, scratch-planner
/// reference, shared-path reference), `reps` alternating
/// repetitions each, plus the standalone stage benches, and reports the
/// minima.
///
/// # Panics
///
/// Panics if any mode disagrees on a [`SimResult`] — the throughput
/// sweep doubles as a coarse end-to-end oracle over the planner *and*
/// the shared-path references.
#[must_use]
pub fn measure_cell(cell: &ThroughputCell, reps: u32) -> ThroughputRecord {
    let mut inc = Duration::MAX;
    let mut refp = Duration::MAX;
    let mut shared = Duration::MAX;
    let mut telem = Duration::MAX;
    let mut result = None;
    for _ in 0..reps.max(1) {
        let (d, r) = timed_run(cell, RunMode::Optimized);
        inc = inc.min(d);
        let (dr, rr) = timed_run(cell, RunMode::ReferencePlanner);
        refp = refp.min(dr);
        assert_eq!(
            r, rr,
            "{}: reference and incremental planners diverged",
            cell.label
        );
        let (ds, rs) = timed_run(cell, RunMode::ReferenceShared);
        shared = shared.min(ds);
        assert_eq!(
            r, rs,
            "{}: shared-path references and optimized defaults diverged",
            cell.label
        );
        let (dt, rt) = timed_run(cell, RunMode::Telemetry);
        telem = telem.min(dt);
        assert_eq!(
            r, rt,
            "{}: telemetry-on run diverged from the disabled path",
            cell.label
        );
        result = Some(r);
    }
    let (gen_ns, engine_ns) = stage_ns_per_req(cell, reps);
    let r = result.expect("at least one repetition ran");
    let requests = r.requests;
    let commands =
        r.demand_acts + r.mitigative_acts + r.requests + r.rfm_commands + r.drfm_commands;
    let secs = inc.as_secs_f64();
    ThroughputRecord {
        label: cell.label.clone(),
        scheme: cell.scheme.label(),
        policy: cell.policy.label(),
        cores: cell.cores,
        channels: cell.channels,
        queue_depth: SystemConfig::table6().queue_depth,
        requests,
        commands,
        ns_per_decision: inc.as_nanos() as f64 / requests.max(1) as f64,
        reference_ns_per_decision: refp.as_nanos() as f64 / requests.max(1) as f64,
        shared_reference_ns_per_decision: shared.as_nanos() as f64 / requests.max(1) as f64,
        gen_ns_per_req: gen_ns,
        engine_ns_per_req: engine_ns,
        telemetry_ns_per_decision: telem.as_nanos() as f64 / requests.max(1) as f64,
        requests_per_sec: requests as f64 / secs,
        commands_per_sec: commands as f64 / secs,
    }
}

/// Measures every cell in order (serially — timing cells must not contend
/// with each other, so this sweep ignores the `--jobs` fan-out).
#[must_use]
pub fn measure_cells(cells: &[ThroughputCell], reps: u32) -> Vec<ThroughputRecord> {
    cells.iter().map(|c| measure_cell(c, reps)).collect()
}

/// Renders the records as the human-readable table.
#[must_use]
pub fn throughput_table(records: &[ThroughputRecord]) -> String {
    let mut tab = TexTable::new(vec![
        "Cell",
        "Policy",
        "Cores",
        "Ch",
        "ns/decision",
        "ref ns/decision",
        "Speedup",
        "Shared",
        "Obs",
        "gen/plan/eng ns",
        "Mreq/s",
        "Mcmd/s",
    ]);
    for r in records {
        tab.row(vec![
            r.label.clone(),
            r.policy.clone(),
            r.cores.to_string(),
            r.channels.to_string(),
            format!("{:.1}", r.ns_per_decision),
            format!("{:.1}", r.reference_ns_per_decision),
            format!("{:.2}x", r.planner_speedup()),
            format!("{:.2}x", r.shared_speedup()),
            format!("{:.3}x", r.obs_overhead()),
            format!(
                "{:.1}/{:.1}/{:.1}",
                r.gen_ns_per_req,
                r.plan_ns_per_req(),
                r.engine_ns_per_req
            ),
            format!("{:.2}", r.requests_per_sec / 1e6),
            format!("{:.2}", r.commands_per_sec / 1e6),
        ]);
    }
    crate::titled(
        "Fig X: simulator command throughput (host wall-clock; optimized vs retained references)",
        &tab.to_text(),
    )
}

/// Renders the records as the machine-readable `BENCH_throughput.json`
/// payload. Hand-rendered JSON — the workspace is dependency-free by
/// design. Cell order follows the sweep order ([`cells`]), pinned by test
/// so trajectory diffs stay clean.
#[must_use]
pub fn throughput_json(records: &[ThroughputRecord], reps: u32) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"source\": \"figx_throughput\",\n");
    out.push_str("  \"unit_note\": \"host wall-clock; min over alternating reps\",\n");
    out.push_str(&format!("  \"reps\": {reps},\n"));
    out.push_str("  \"cells\": [\n");
    let rows: Vec<String> = records
        .iter()
        .map(|r| {
            format!(
                "    {{\"cell\": \"{}\", \"scheme\": \"{}\", \"policy\": \"{}\", \
                 \"cores\": {}, \"channels\": {}, \"queue_depth\": {}, \"requests\": {}, \
                 \"commands\": {}, \
                 \"ns_per_decision\": {:.1}, \"reference_ns_per_decision\": {:.1}, \
                 \"shared_reference_ns_per_decision\": {:.1}, \
                 \"planner_speedup\": {:.3}, \"shared_speedup\": {:.3}, \
                 \"gen_ns_per_req\": {:.1}, \"plan_ns_per_req\": {:.1}, \
                 \"engine_ns_per_req\": {:.1}, \"telemetry_ns_per_decision\": {:.1}, \
                 \"obs_overhead\": {:.3}, \"requests_per_sec\": {:.0}, \
                 \"commands_per_sec\": {:.0}}}",
                r.label,
                r.scheme,
                r.policy,
                r.cores,
                r.channels,
                r.queue_depth,
                r.requests,
                r.commands,
                r.ns_per_decision,
                r.reference_ns_per_decision,
                r.shared_reference_ns_per_decision,
                r.planner_speedup(),
                r.shared_speedup(),
                r.gen_ns_per_req,
                r.plan_ns_per_req(),
                r.engine_ns_per_req,
                r.telemetry_ns_per_decision,
                r.obs_overhead(),
                r.requests_per_sec,
                r.commands_per_sec,
            )
        })
        .collect();
    out.push_str(&rows.join(",\n"));
    out.push_str("\n  ]\n}\n");
    out
}

/// The top-level keys every `BENCH_throughput.json` must carry.
pub const REQUIRED_TOP_KEYS: &[&str] = &["source", "unit_note", "reps", "cells"];

/// The per-cell keys every `BENCH_throughput.json` cell must carry,
/// including the per-stage attribution and shared-path columns.
/// `telemetry_ns_per_decision`/`obs_overhead` are deliberately *not*
/// required: the committed trajectory predates them, and the schema must
/// keep accepting it.
pub const REQUIRED_CELL_KEYS: &[&str] = &[
    "cell",
    "scheme",
    "policy",
    "cores",
    "channels",
    "queue_depth",
    "requests",
    "commands",
    "ns_per_decision",
    "reference_ns_per_decision",
    "shared_reference_ns_per_decision",
    "planner_speedup",
    "shared_speedup",
    "gen_ns_per_req",
    "plan_ns_per_req",
    "engine_ns_per_req",
    "requests_per_sec",
    "commands_per_sec",
];

/// Validates a `BENCH_throughput.json` payload against the trajectory
/// schema: balanced structure, no non-finite numbers, every
/// [`REQUIRED_TOP_KEYS`] entry present, and every [`REQUIRED_CELL_KEYS`]
/// entry present on *every* cell. Key matching is on the rendered
/// `"key": ` needle (this workspace carries no JSON parser by design),
/// which is exact for the hand-rendered payload this crate writes.
///
/// # Errors
///
/// Returns what is missing or malformed; `figx_throughput` refuses to
/// write (and CI refuses to pass) a payload that fails this check.
pub fn check_throughput_schema(json: &str) -> Result<(), String> {
    if json.matches('{').count() != json.matches('}').count()
        || json.matches('[').count() != json.matches(']').count()
    {
        return Err("unbalanced braces/brackets".to_owned());
    }
    for bad in ["NaN", "inf"] {
        if json.contains(bad) {
            return Err(format!("non-finite number ({bad}) in payload"));
        }
    }
    for key in REQUIRED_TOP_KEYS {
        if !json.contains(&format!("\"{key}\": ")) {
            return Err(format!("missing top-level key {key:?}"));
        }
    }
    let cells = json.matches("\"cell\": ").count();
    if cells == 0 {
        return Err("no cells in payload".to_owned());
    }
    for key in REQUIRED_CELL_KEYS {
        let n = json.matches(&format!("\"{key}\": ")).count();
        if n != cells {
            return Err(format!(
                "cell key {key:?} appears {n} times for {cells} cells"
            ));
        }
    }
    Ok(())
}

/// Renders only the records' *deterministic* columns: the simulated
/// command volume each cell schedules, not how fast the host scheduled
/// it. This is the [`throughput`] (`repro_all`) rendering — `repro_all`
/// output is byte-compared across runs and worker counts, so wall-clock
/// digits must not appear in it. The timed table and the
/// `BENCH_throughput.json` trajectory come from `figx_throughput`.
#[must_use]
pub fn volume_table(records: &[ThroughputRecord]) -> String {
    let mut tab = TexTable::new(vec![
        "Cell", "Scheme", "Policy", "Cores", "Ch", "Requests", "Commands", "Cmd/req",
    ]);
    for r in records {
        tab.row(vec![
            r.label.clone(),
            r.scheme.clone(),
            r.policy.clone(),
            r.cores.to_string(),
            r.channels.to_string(),
            r.requests.to_string(),
            r.commands.to_string(),
            format!("{:.3}", r.commands as f64 / r.requests.max(1) as f64),
        ]);
    }
    crate::titled(
        "Fig X: scheduler cell set, command volume (wall-clock trajectory: figx_throughput -> BENCH_throughput.json)",
        &tab.to_text(),
    )
}

/// The `repro_all` entry: the quick cell set, one repetition per planner.
/// Still times every cell under both planners (so the per-cell
/// planner-equality assert runs), but renders the deterministic volume
/// columns only — see [`volume_table`].
#[must_use]
pub fn throughput() -> String {
    volume_table(&measure_cells(&cells(true), 1))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cell() -> ThroughputCell {
        ThroughputCell {
            label: "test/tiny".into(),
            scheme: MitigationScheme::Mint,
            policy: SchedulePolicy::frfcfs(),
            cores: 4,
            channels: 1,
            requests_per_core: 500,
            spec: saturated_spec(),
        }
    }

    #[test]
    fn cell_measures_and_planners_agree() {
        let r = measure_cell(&tiny_cell(), 1);
        assert_eq!(r.requests, 4 * 500, "every request serviced");
        assert!(r.commands >= r.requests, "every request costs >= 1 command");
        assert!(r.ns_per_decision > 0.0 && r.reference_ns_per_decision > 0.0);
        assert!(r.shared_reference_ns_per_decision > 0.0);
        assert!(r.requests_per_sec > 0.0 && r.commands_per_sec > 0.0);
        assert!(r.planner_speedup() > 0.0 && r.shared_speedup() > 0.0);
        assert!(r.gen_ns_per_req > 0.0 && r.engine_ns_per_req > 0.0);
        assert!(r.plan_ns_per_req() >= 0.0, "plan residual is clamped");
        assert!(r.telemetry_ns_per_decision > 0.0 && r.obs_overhead() > 0.0);
    }

    #[test]
    fn sat32_cell_loads_the_checked_in_scenario() {
        let full = saturation32_cell(false);
        assert_eq!(full.cores, 32);
        assert_eq!(full.channels, 1);
        assert_eq!(full.policy, SchedulePolicy::frfcfs());
        assert_eq!(full.scheme, MitigationScheme::Baseline);
        assert_eq!(full.spec, saturated_spec());
        assert!(full.label.starts_with("sat32/"));
        let quick = saturation32_cell(true);
        assert_eq!(
            quick.requests_per_core * 4,
            full.requests_per_core,
            "quick mode quarters the scenario's request budget"
        );
    }

    #[test]
    fn quick_cells_are_a_strict_subset_axis_wise() {
        let quick = cells(true);
        let full = cells(false);
        assert!(quick.len() < full.len());
        for prefix in ["zoo/", "policy/", "depth/", "channels/", "sat32/"] {
            assert!(
                quick.iter().any(|c| c.label.starts_with(prefix)),
                "quick mode keeps the {prefix} axis"
            );
        }
        let full_labels: Vec<&str> = full.iter().map(|c| c.label.as_str()).collect();
        for c in &quick {
            assert!(full_labels.contains(&c.label.as_str()));
        }
    }

    #[test]
    fn channel_cells_run_the_multi_channel_system() {
        let cell = ThroughputCell {
            channels: 2,
            label: "channels/x2".into(),
            ..tiny_cell()
        };
        let r = measure_cell(&cell, 1);
        assert_eq!(r.channels, 2);
        assert_eq!(
            r.requests,
            4 * 500,
            "every request serviced across channels"
        );
        assert!(r.commands >= r.requests);
    }

    #[test]
    fn json_is_well_formed_and_ordered() {
        let r = measure_cell(&tiny_cell(), 1);
        let json = throughput_json(std::slice::from_ref(&r), 1);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
        assert!(!json.contains("NaN") && !json.contains("inf"));
        assert!(json.contains("\"cell\": \"test/tiny\""));
        assert!(json.contains("\"channels\": 1"));
        assert!(json.contains("\"ns_per_decision\": "));
        assert!(json.contains("\"planner_speedup\": "));
        assert!(json.contains("\"shared_speedup\": "));
        assert!(json.contains("\"gen_ns_per_req\": "));
        assert!(json.contains("\"plan_ns_per_req\": "));
        assert!(json.contains("\"engine_ns_per_req\": "));
        assert!(json.contains("\"telemetry_ns_per_decision\": "));
        assert!(json.contains("\"obs_overhead\": "));
        check_throughput_schema(&json).expect("rendered payload passes its own schema");
        // The committed trajectory predates the obs columns; the schema
        // must keep accepting payloads without them.
        let legacy = json
            .lines()
            .map(|l| {
                if let Some(at) = l.find(", \"telemetry_ns_per_decision\"") {
                    let rest = l[at + 2..].find("\"requests_per_sec\"").expect("tail");
                    format!("{}{}", &l[..at + 2], &l[at + 2 + rest..])
                } else {
                    l.to_owned()
                }
            })
            .collect::<Vec<_>>()
            .join("\n");
        assert!(!legacy.contains("obs_overhead"), "stripped for the check");
        check_throughput_schema(&legacy).expect("pre-obs payloads still pass");
        let table = throughput_table(std::slice::from_ref(&r));
        assert!(table.contains("test/tiny") && table.contains("Speedup"));
        assert!(table.contains("Shared") && table.contains("gen/plan/eng"));
        assert!(table.contains("Obs"));
    }

    #[test]
    fn schema_check_rejects_malformed_payloads() {
        let r = measure_cell(&tiny_cell(), 1);
        let json = throughput_json(&[r.clone(), r], 1);
        check_throughput_schema(&json).unwrap();
        // A dropped column fails with the key named.
        let e = check_throughput_schema(&json.replacen("\"gen_ns_per_req\": ", "\"g\": ", 1))
            .unwrap_err();
        assert!(e.contains("gen_ns_per_req"), "{e}");
        // A column present on only *some* cells fails too.
        let e = check_throughput_schema(&json.replacen("\"shared_speedup\": ", "\"s\": ", 1))
            .unwrap_err();
        assert!(
            e.contains("shared_speedup") && e.contains("1 times for 2 cells"),
            "{e}"
        );
        assert!(check_throughput_schema("{\"cells\": []}").is_err());
        assert!(check_throughput_schema("{").is_err());
        let e = check_throughput_schema(&json.replacen("\"reps\": ", "\"r\": ", 1)).unwrap_err();
        assert!(e.contains("reps"), "{e}");
    }

    #[test]
    fn volume_table_is_deterministic_across_measurements() {
        // The repro_all rendering must not leak wall-clock digits: two
        // independent measurements of the same cell render identically.
        let a = volume_table(&[measure_cell(&tiny_cell(), 1)]);
        let b = volume_table(&[measure_cell(&tiny_cell(), 1)]);
        assert_eq!(a, b, "volume table must be byte-stable run to run");
        assert!(!a.contains("ns/decision") && !a.contains("Speedup"));
    }
}
