//! Raw simulator speed: wall-clock throughput of the command scheduler.
//!
//! Every other experiment in this crate measures *simulated* performance;
//! this one measures the simulator itself — how many scheduling decisions,
//! serviced requests and DRAM commands per second of host time the
//! [`Sim`] pipeline sustains, cell by cell across three axes:
//!
//! * **scheme** — the full tracker zoo on a realistic mcf stream, since
//!   backend per-ACT cost rides the same hot path;
//! * **policy** — FCFS vs FR-FCFS arbitration on a saturated stream;
//! * **depth** — a saturated stream at 4/16/32 cores, growing the live
//!   transaction-queue population the planner must arbitrate over (one
//!   outstanding request per core, so live depth tracks the core count);
//! * **channels** — a saturated stream over a 1/2/4-channel
//!   [`System`](mint_memsys::System) topology, exercising the frontend
//!   routing and per-channel pipelines of the DIMM scale-out.
//!
//! Each cell is timed under **both** planners — the incremental default
//! and the retained scratch reference ([`set_reference_planner_default`])
//! — taking the minimum over alternating repetitions so load spikes on
//! the host cannot bias one side, and asserting along the way that the
//! two planners produced bit-identical [`SimResult`]s. The machine-
//! readable `BENCH_throughput.json` is the tracked trajectory artifact
//! (`figx_throughput`). Unlike `BENCH_perf.json`/`BENCH_security.json`,
//! its numbers are wall-clock and therefore machine-dependent: compare
//! runs from the same host, and prefer the planner-speedup ratios, which
//! divide the host speed out. `repro_all` — whose output is byte-compared
//! across runs — gets the deterministic [`volume_table`] rendering
//! instead.

use std::time::Duration;

use mint_analysis::textable::TexTable;
use mint_memsys::{
    set_reference_planner_default, workload_by_name, MitigationScheme, SchedulePolicy, Sim,
    SimResult, SystemConfig, WorkloadSpec,
};

/// Alternating repetitions per cell (min taken); single-digit because a
/// cell is already a multi-millisecond batch of simulated work.
pub const DEFAULT_REPS: u32 = 3;

/// A synthetic stream that keeps every core's outstanding request slot
/// full (MPKI high enough that think time rounds to zero), so the channel
/// queue holds one live transaction per core at every decision.
#[must_use]
pub fn saturated_spec() -> WorkloadSpec {
    WorkloadSpec {
        name: "saturate",
        mpki: 1000.0,
        row_buffer_locality: 0.6,
        read_fraction: 0.67,
    }
}

/// One measured configuration: a full [`Sim`] run timed wall-clock.
#[derive(Debug, Clone)]
pub struct ThroughputCell {
    /// Axis-qualified label (e.g. `"zoo/MINT"`, `"depth/x32"`).
    pub label: String,
    /// Mitigation scheme under measurement.
    pub scheme: MitigationScheme,
    /// Arbitration policy under measurement.
    pub policy: SchedulePolicy,
    /// Core count (every core runs `spec`; live queue depth ≤ cores).
    pub cores: u32,
    /// Memory channels of the simulated topology.
    pub channels: u32,
    /// Requests per core per timed run.
    pub requests_per_core: u32,
    /// The per-core synthetic stream.
    pub spec: WorkloadSpec,
}

/// The measured outcome of one cell.
#[derive(Debug, Clone)]
pub struct ThroughputRecord {
    /// Cell label (see [`ThroughputCell::label`]).
    pub label: String,
    /// Scheme label.
    pub scheme: String,
    /// Policy label.
    pub policy: String,
    /// Core count of the run.
    pub cores: u32,
    /// Memory channels of the run.
    pub channels: u32,
    /// Transaction-queue bound of the run (per channel).
    pub queue_depth: u32,
    /// Requests serviced per timed run.
    pub requests: u64,
    /// DRAM commands executed per timed run (ACTs, CAS bursts, RFM and
    /// DRFM — the command stream the scheduler actually planned).
    pub commands: u64,
    /// Best host-side ns per scheduling decision, incremental planner.
    pub ns_per_decision: f64,
    /// Best host-side ns per scheduling decision, scratch reference.
    pub reference_ns_per_decision: f64,
    /// Serviced requests per host second (incremental planner).
    pub requests_per_sec: f64,
    /// Executed DRAM commands per host second (incremental planner).
    pub commands_per_sec: f64,
}

impl ThroughputRecord {
    /// Reference-over-incremental time ratio (> 1 means the incremental
    /// planner is faster).
    #[must_use]
    pub fn planner_speedup(&self) -> f64 {
        self.reference_ns_per_decision / self.ns_per_decision
    }
}

/// The measured cell set. `quick` trims it for CI: fewer schemes, fewer
/// requests, and the 32-core depth point dropped.
#[must_use]
pub fn cells(quick: bool) -> Vec<ThroughputCell> {
    let mcf = workload_by_name("mcf").expect("mcf in the suite");
    let sat = saturated_spec();
    let zoo: Vec<MitigationScheme> = if quick {
        vec![
            MitigationScheme::Baseline,
            MitigationScheme::Mint,
            MitigationScheme::MintRfm { rfm_th: 16 },
        ]
    } else {
        MitigationScheme::zoo()
    };
    let zoo_rpc = if quick { 4_000 } else { 40_000 };
    let sat_rpc = if quick { 2_000 } else { 10_000 };
    let mut out = Vec::new();
    for scheme in zoo {
        out.push(ThroughputCell {
            label: format!("zoo/{}", scheme.label()),
            scheme,
            policy: SchedulePolicy::frfcfs(),
            cores: 4,
            channels: 1,
            requests_per_core: zoo_rpc,
            spec: mcf,
        });
    }
    for policy in [SchedulePolicy::Fcfs, SchedulePolicy::frfcfs()] {
        out.push(ThroughputCell {
            label: format!("policy/{}", policy.label()),
            scheme: MitigationScheme::Baseline,
            policy,
            cores: 4,
            requests_per_core: sat_rpc,
            channels: 1,
            spec: sat,
        });
    }
    let depths: &[u32] = if quick { &[4, 16] } else { &[4, 16, 32] };
    for &cores in depths {
        out.push(ThroughputCell {
            label: format!("depth/x{cores}"),
            scheme: MitigationScheme::Baseline,
            policy: SchedulePolicy::frfcfs(),
            cores,
            channels: 1,
            requests_per_core: sat_rpc,
            spec: sat,
        });
    }
    let channel_counts: &[u32] = if quick { &[1, 2] } else { &[1, 2, 4] };
    for &channels in channel_counts {
        out.push(ThroughputCell {
            label: format!("channels/x{channels}"),
            scheme: MitigationScheme::Baseline,
            policy: SchedulePolicy::frfcfs(),
            cores: 4,
            channels,
            requests_per_core: sat_rpc,
            spec: sat,
        });
    }
    out
}

/// One timed run of `cell` under the selected planner. Restores the
/// incremental default before returning.
fn timed_run(cell: &ThroughputCell, reference: bool) -> (Duration, SimResult) {
    set_reference_planner_default(reference);
    let cfg = SystemConfig {
        cores: cell.cores,
        channels: cell.channels,
        ..SystemConfig::table6()
    };
    let specs = vec![cell.spec; cell.cores as usize];
    let mut result = None;
    let m = mint_exp::stopwatch::measure(Duration::ZERO, || {
        let report = Sim::new(cfg)
            .scheme(cell.scheme)
            .policy(cell.policy)
            .workload(&specs, cell.requests_per_core)
            .seed(1)
            .run();
        result = Some(report.perf.result);
    });
    set_reference_planner_default(false);
    (m.elapsed, result.expect("measure ran the body"))
}

/// Times one cell under both planners, `reps` alternating repetitions
/// each, and reports the minima.
///
/// # Panics
///
/// Panics if the two planners disagree on any [`SimResult`] — the
/// throughput sweep doubles as a coarse end-to-end oracle.
#[must_use]
pub fn measure_cell(cell: &ThroughputCell, reps: u32) -> ThroughputRecord {
    let mut inc = Duration::MAX;
    let mut refp = Duration::MAX;
    let mut result = None;
    for _ in 0..reps.max(1) {
        let (d, r) = timed_run(cell, false);
        inc = inc.min(d);
        let (dr, rr) = timed_run(cell, true);
        refp = refp.min(dr);
        assert_eq!(
            r, rr,
            "{}: reference and incremental planners diverged",
            cell.label
        );
        result = Some(r);
    }
    let r = result.expect("at least one repetition ran");
    let requests = r.requests;
    let commands =
        r.demand_acts + r.mitigative_acts + r.requests + r.rfm_commands + r.drfm_commands;
    let secs = inc.as_secs_f64();
    ThroughputRecord {
        label: cell.label.clone(),
        scheme: cell.scheme.label(),
        policy: cell.policy.label(),
        cores: cell.cores,
        channels: cell.channels,
        queue_depth: SystemConfig::table6().queue_depth,
        requests,
        commands,
        ns_per_decision: inc.as_nanos() as f64 / requests.max(1) as f64,
        reference_ns_per_decision: refp.as_nanos() as f64 / requests.max(1) as f64,
        requests_per_sec: requests as f64 / secs,
        commands_per_sec: commands as f64 / secs,
    }
}

/// Measures every cell in order (serially — timing cells must not contend
/// with each other, so this sweep ignores the `--jobs` fan-out).
#[must_use]
pub fn measure_cells(cells: &[ThroughputCell], reps: u32) -> Vec<ThroughputRecord> {
    cells.iter().map(|c| measure_cell(c, reps)).collect()
}

/// Renders the records as the human-readable table.
#[must_use]
pub fn throughput_table(records: &[ThroughputRecord]) -> String {
    let mut tab = TexTable::new(vec![
        "Cell",
        "Policy",
        "Cores",
        "Ch",
        "ns/decision",
        "ref ns/decision",
        "Speedup",
        "Mreq/s",
        "Mcmd/s",
    ]);
    for r in records {
        tab.row(vec![
            r.label.clone(),
            r.policy.clone(),
            r.cores.to_string(),
            r.channels.to_string(),
            format!("{:.1}", r.ns_per_decision),
            format!("{:.1}", r.reference_ns_per_decision),
            format!("{:.2}x", r.planner_speedup()),
            format!("{:.2}", r.requests_per_sec / 1e6),
            format!("{:.2}", r.commands_per_sec / 1e6),
        ]);
    }
    crate::titled(
        "Fig X: simulator command throughput (host wall-clock; incremental vs scratch planner)",
        &tab.to_text(),
    )
}

/// Renders the records as the machine-readable `BENCH_throughput.json`
/// payload. Hand-rendered JSON — the workspace is dependency-free by
/// design. Cell order follows the sweep order ([`cells`]), pinned by test
/// so trajectory diffs stay clean.
#[must_use]
pub fn throughput_json(records: &[ThroughputRecord], reps: u32) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"source\": \"figx_throughput\",\n");
    out.push_str("  \"unit_note\": \"host wall-clock; min over alternating reps\",\n");
    out.push_str(&format!("  \"reps\": {reps},\n"));
    out.push_str("  \"cells\": [\n");
    let rows: Vec<String> = records
        .iter()
        .map(|r| {
            format!(
                "    {{\"cell\": \"{}\", \"scheme\": \"{}\", \"policy\": \"{}\", \
                 \"cores\": {}, \"channels\": {}, \"queue_depth\": {}, \"requests\": {}, \
                 \"commands\": {}, \
                 \"ns_per_decision\": {:.1}, \"reference_ns_per_decision\": {:.1}, \
                 \"planner_speedup\": {:.3}, \"requests_per_sec\": {:.0}, \
                 \"commands_per_sec\": {:.0}}}",
                r.label,
                r.scheme,
                r.policy,
                r.cores,
                r.channels,
                r.queue_depth,
                r.requests,
                r.commands,
                r.ns_per_decision,
                r.reference_ns_per_decision,
                r.planner_speedup(),
                r.requests_per_sec,
                r.commands_per_sec,
            )
        })
        .collect();
    out.push_str(&rows.join(",\n"));
    out.push_str("\n  ]\n}\n");
    out
}

/// Renders only the records' *deterministic* columns: the simulated
/// command volume each cell schedules, not how fast the host scheduled
/// it. This is the [`throughput`] (`repro_all`) rendering — `repro_all`
/// output is byte-compared across runs and worker counts, so wall-clock
/// digits must not appear in it. The timed table and the
/// `BENCH_throughput.json` trajectory come from `figx_throughput`.
#[must_use]
pub fn volume_table(records: &[ThroughputRecord]) -> String {
    let mut tab = TexTable::new(vec![
        "Cell", "Scheme", "Policy", "Cores", "Ch", "Requests", "Commands", "Cmd/req",
    ]);
    for r in records {
        tab.row(vec![
            r.label.clone(),
            r.scheme.clone(),
            r.policy.clone(),
            r.cores.to_string(),
            r.channels.to_string(),
            r.requests.to_string(),
            r.commands.to_string(),
            format!("{:.3}", r.commands as f64 / r.requests.max(1) as f64),
        ]);
    }
    crate::titled(
        "Fig X: scheduler cell set, command volume (wall-clock trajectory: figx_throughput -> BENCH_throughput.json)",
        &tab.to_text(),
    )
}

/// The `repro_all` entry: the quick cell set, one repetition per planner.
/// Still times every cell under both planners (so the per-cell
/// planner-equality assert runs), but renders the deterministic volume
/// columns only — see [`volume_table`].
#[must_use]
pub fn throughput() -> String {
    volume_table(&measure_cells(&cells(true), 1))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cell() -> ThroughputCell {
        ThroughputCell {
            label: "test/tiny".into(),
            scheme: MitigationScheme::Mint,
            policy: SchedulePolicy::frfcfs(),
            cores: 4,
            channels: 1,
            requests_per_core: 500,
            spec: saturated_spec(),
        }
    }

    #[test]
    fn cell_measures_and_planners_agree() {
        let r = measure_cell(&tiny_cell(), 1);
        assert_eq!(r.requests, 4 * 500, "every request serviced");
        assert!(r.commands >= r.requests, "every request costs >= 1 command");
        assert!(r.ns_per_decision > 0.0 && r.reference_ns_per_decision > 0.0);
        assert!(r.requests_per_sec > 0.0 && r.commands_per_sec > 0.0);
        assert!(r.planner_speedup() > 0.0);
    }

    #[test]
    fn quick_cells_are_a_strict_subset_axis_wise() {
        let quick = cells(true);
        let full = cells(false);
        assert!(quick.len() < full.len());
        for prefix in ["zoo/", "policy/", "depth/", "channels/"] {
            assert!(
                quick.iter().any(|c| c.label.starts_with(prefix)),
                "quick mode keeps the {prefix} axis"
            );
        }
        let full_labels: Vec<&str> = full.iter().map(|c| c.label.as_str()).collect();
        for c in &quick {
            assert!(full_labels.contains(&c.label.as_str()));
        }
    }

    #[test]
    fn channel_cells_run_the_multi_channel_system() {
        let cell = ThroughputCell {
            channels: 2,
            label: "channels/x2".into(),
            ..tiny_cell()
        };
        let r = measure_cell(&cell, 1);
        assert_eq!(r.channels, 2);
        assert_eq!(
            r.requests,
            4 * 500,
            "every request serviced across channels"
        );
        assert!(r.commands >= r.requests);
    }

    #[test]
    fn json_is_well_formed_and_ordered() {
        let r = measure_cell(&tiny_cell(), 1);
        let json = throughput_json(std::slice::from_ref(&r), 1);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
        assert!(!json.contains("NaN") && !json.contains("inf"));
        assert!(json.contains("\"cell\": \"test/tiny\""));
        assert!(json.contains("\"channels\": 1"));
        assert!(json.contains("\"ns_per_decision\": "));
        assert!(json.contains("\"planner_speedup\": "));
        let table = throughput_table(std::slice::from_ref(&r));
        assert!(table.contains("test/tiny") && table.contains("Speedup"));
    }

    #[test]
    fn volume_table_is_deterministic_across_measurements() {
        // The repro_all rendering must not leak wall-clock digits: two
        // independent measurements of the same cell render identically.
        let a = volume_table(&[measure_cell(&tiny_cell(), 1)]);
        let b = volume_table(&[measure_cell(&tiny_cell(), 1)]);
        assert_eq!(a, b, "volume table must be byte-stable run to run");
        assert!(!a.contains("ns/decision") && !a.contains("Speedup"));
    }
}
