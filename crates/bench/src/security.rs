//! Security experiments: Figs 3/5/6/10/11/18/21 and Tables III/IV/V/VII/IX.
//!
//! Every figure sweep fans its points out through
//! [`mint_exp::par_map`], which preserves point order, so the rendered
//! tables are byte-identical for any worker count.

use crate::{default_solver, fmt_trh, titled};
use mint_analysis::ada::AdaConfig;
use mint_analysis::textable::TexTable;
use mint_analysis::{comparison, maxact, para, patterns, postponement, rfm, storage, ttf};
use mint_exp::par_map;

/// Fig 3: survival probability vs position (InDRAM-PARA with overwrite).
#[must_use]
pub fn fig3() -> String {
    let p = 1.0 / 73.0;
    let positions: Vec<u32> = (1..=73).collect();
    let mut tab = TexTable::new(vec!["Position", "SurvivalProb"]);
    for (k, s) in positions.iter().zip(par_map(&positions, |_, &k| {
        para::survival_probability(p, 73, k)
    })) {
        tab.row(vec![k.to_string(), format!("{s:.4}")]);
    }
    titled(
        "Fig 3: InDRAM-PARA survival probability by position (2.7x penalty at k=1)",
        &tab.to_text(),
    )
}

/// Fig 5: sampling probability vs position (no-overwrite variant),
/// normalised to p.
#[must_use]
pub fn fig5() -> String {
    let p = 1.0 / 73.0;
    let positions: Vec<u32> = (1..=73).collect();
    let mut tab = TexTable::new(vec!["Position", "SamplingProb(x 1/73)"]);
    for (k, s) in positions.iter().zip(par_map(&positions, |_, &k| {
        para::sampling_probability_no_overwrite(p, 73, k) / p
    })) {
        tab.row(vec![k.to_string(), format!("{s:.4}")]);
    }
    titled(
        "Fig 5: InDRAM-PARA (No-Overwrite) sampling probability by position",
        &tab.to_text(),
    )
}

/// Fig 6: relative mitigation probability of both variants vs the ideal.
#[must_use]
pub fn fig6() -> String {
    let p = 1.0 / 73.0;
    let positions: Vec<u32> = (1..=73).collect();
    let rows = par_map(&positions, |_, &k| {
        (
            para::relative_mitigation(p, 73, k, false),
            para::relative_mitigation(p, 73, k, true),
        )
    });
    let mut tab = TexTable::new(vec!["Position", "Ideal", "Overwrite", "No-Overwrite"]);
    for (k, (with_ow, no_ow)) in positions.iter().zip(rows) {
        tab.row(vec![
            k.to_string(),
            "1.0000".into(),
            format!("{with_ow:.4}"),
            format!("{no_ow:.4}"),
        ]);
    }
    titled(
        "Fig 6: relative mitigation probability (normalised to p = 1/73)",
        &tab.to_text(),
    )
}

/// Fig 10: MinTRH of pattern-2 vs number of attack rows.
#[must_use]
pub fn fig10() -> String {
    let solver = default_solver();
    let ks: Vec<u32> = (1..=146).collect();
    let trhs = par_map(&ks, |_, &k| patterns::pattern2_min_trh(&solver, k, 73, 73));
    let mut tab = TexTable::new(vec!["k (attack rows)", "MinTRH"]);
    for (k, t) in ks.iter().zip(trhs) {
        tab.row(vec![k.to_string(), t.to_string()]);
    }
    titled(
        "Fig 10: pattern-2 MinTRH vs k (paper: 2461 at k=1, peak 2763 at k=73)",
        &tab.to_text(),
    )
}

/// Fig 11: MinTRH of pattern-3 vs copies per row.
#[must_use]
pub fn fig11() -> String {
    let solver = default_solver();
    let copies: Vec<u32> = (1..=73).collect();
    let trhs = par_map(&copies, |_, &c| {
        patterns::pattern3_min_trh(&solver, c, 73, 73)
    });
    let mut tab = TexTable::new(vec!["c (copies/row)", "MinTRH"]);
    for (c, t) in copies.iter().zip(trhs) {
        tab.row(vec![c.to_string(), t.to_string()]);
    }
    titled(
        "Fig 11: pattern-3 MinTRH vs copies (collapses for 4+ copies)",
        &tab.to_text(),
    )
}

/// Table III: tracker comparison.
#[must_use]
pub fn table3() -> String {
    let solver = default_solver();
    let mut tab = TexTable::new(vec![
        "Design",
        "Type (Centric)",
        "MinTRH-D",
        "Entries (Per-Bank)",
        "Transitive Attacks",
    ]);
    for row in comparison::table3(&solver) {
        tab.row(vec![
            row.design.into(),
            row.centricity.label().into(),
            fmt_trh(row.min_trh_d),
            if row.entries >= 1024 {
                format!("{}K", row.entries / 1024)
            } else {
                row.entries.to_string()
            },
            if row.transitive_vulnerable {
                "Vulnerable".into()
            } else {
                "Immune".into()
            },
        ]);
    }
    titled(
        "Table III: comparison of in-DRAM trackers (paper: 623/1400/4096/3732/1400)",
        &tab.to_text(),
    )
}

/// Table IV: refresh postponement with and without DMQ.
#[must_use]
pub fn table4() -> String {
    let solver = default_solver();
    let mut tab = TexTable::new(vec![
        "Design",
        "Entries",
        "MinTRH-D (NoPostpone)",
        "MinTRH-D (No DMQ)",
        "MinTRH-D (with DMQ)",
    ]);
    for row in postponement::table4(&solver) {
        let dmq = if row.with_dmq_adaptive != row.with_dmq {
            format!("{}/{}*", row.with_dmq, row.with_dmq_adaptive)
        } else {
            fmt_trh(row.with_dmq)
        };
        tab.row(vec![
            row.design.into(),
            if row.entries >= 1024 {
                format!("{}K", row.entries / 1024)
            } else {
                row.entries.to_string()
            },
            fmt_trh(row.no_postpone),
            fmt_trh(row.postponed_no_dmq),
            dmq,
        ]);
    }
    titled(
        "Table IV: refresh postponement and DMQ (*: adaptive attack; paper MINT: 1400/478K/1404-1482)",
        &tab.to_text(),
    )
}

/// Table V: MINT+RFM scaling.
#[must_use]
pub fn table5() -> String {
    let solver = default_solver();
    let mut tab = TexTable::new(vec!["Scheme", "Relative Mitigation Rate", "MinTRH-D"]);
    for row in rfm::table5(&solver) {
        tab.row(vec![
            row.scheme.into(),
            row.rate.into(),
            fmt_trh(row.min_trh_d),
        ]);
    }
    titled(
        "Table V: MinTRH-D of MINT and MINT+RFM (paper: 2.70K/1.48K/689/356)",
        &tab.to_text(),
    )
}

/// Table VII: target-TTF sensitivity.
#[must_use]
pub fn table7() -> String {
    let mut tab = TexTable::new(vec![
        "Target-TTF (Bank)",
        "MTTF (System)",
        "MinTRH-D MINT",
        "(+RFM32)",
        "(+RFM16)",
    ]);
    for row in ttf::table7(0.032) {
        tab.row(vec![
            format!("{:.0}K years", row.target_years / 1000.0),
            format!("{:.0} years", row.system_years),
            fmt_trh(row.mint),
            fmt_trh(row.rfm32),
            fmt_trh(row.rfm16),
        ]);
    }
    titled(
        "Table VII: MinTRH-D vs Target-TTF (paper 10K-row: 1.48K/689/356)",
        &tab.to_text(),
    )
}

/// Table IX: per-bank SRAM overhead.
#[must_use]
pub fn table9() -> String {
    let mut tab = TexTable::new(vec!["Name", "Device TRH-D=3K", "Device TRH-D=300"]);
    for row in storage::table9(598_016) {
        let fmt = |b: u64| {
            if b >= 1024 {
                format!("{:.1} KB", b as f64 / 1024.0)
            } else {
                format!("{b} bytes")
            }
        };
        tab.row(vec![
            row.name.into(),
            fmt(row.bytes_at_3k),
            fmt(row.bytes_at_300),
        ]);
    }
    titled(
        "Table IX: per-bank SRAM overhead (paper: Graphene 56.5KB/565KB vs MINT+DMQ 15 bytes)",
        &tab.to_text(),
    )
}

/// Fig 18: MaxACT sensitivity (Appendix A).
#[must_use]
pub fn fig18() -> String {
    let solver = default_solver();
    let max_acts: Vec<u32> = (65..=80).collect();
    let points = par_map(&max_acts, |_, &m| maxact::fig18_point(&solver, m));
    let mut tab = TexTable::new(vec![
        "MaxACT",
        "MINT MinTRH-D",
        "InDRAM-PARA MinTRH-D",
        "Ratio",
    ]);
    for p in points {
        tab.row(vec![
            p.max_act.to_string(),
            p.mint_d.to_string(),
            p.para_d.to_string(),
            format!("{:.2}x", f64::from(p.para_d) / f64::from(p.mint_d)),
        ]);
    }
    titled(
        "Fig 18: MinTRH-D vs MaxACT (paper: ~2.7x gap across the DDR5 range)",
        &tab.to_text(),
    )
}

/// Fig 21: ADA morphing-point sweep (Appendix B).
#[must_use]
pub fn fig21() -> String {
    let solver = default_solver();
    let cfg = AdaConfig::mint_default();
    let mps: Vec<u32> = (500..=8000).step_by(250).collect();
    let rows = par_map(&mps, |_, &mp| cfg.fig21_point(&solver, mp));
    let mut tab = TexTable::new(vec!["MP (tREFI)", "MinTRH (single)", "MinTRH-D (double)"]);
    for (mp, single, double) in rows {
        tab.row(vec![mp.to_string(), single.to_string(), double.to_string()]);
    }
    titled(
        "Fig 21: MINT+DMQ under ADA vs morphing point (paper: peak 2899 single / 1482 double)",
        &tab.to_text(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_has_73_rows_and_penalty() {
        let s = fig3();
        assert_eq!(s.lines().count(), 73 + 3);
        assert!(s.contains("0.37"), "first-position survival ≈ 0.372");
    }

    #[test]
    fn fig6_has_four_columns() {
        let s = fig6();
        assert!(s.contains("No-Overwrite"));
    }

    #[test]
    fn fig10_fanout_matches_series_helper() {
        // The par_map fan-out must reproduce mint-analysis's own series.
        let solver = default_solver();
        let ks: Vec<u32> = (1..=146).collect();
        let fanned: Vec<(u32, u32)> = ks
            .iter()
            .map(|&k| (k, patterns::pattern2_min_trh(&solver, k, 73, 73)))
            .collect();
        assert_eq!(fanned, patterns::fig10_series(&solver, 146, 73, 73));
    }

    #[test]
    fn fig21_fanout_matches_series_helper() {
        let solver = default_solver();
        let cfg = AdaConfig::mint_default();
        let mps: Vec<u32> = (500..=8000).step_by(250).collect();
        let fanned: Vec<(u32, u32, u32)> =
            mps.iter().map(|&mp| cfg.fig21_point(&solver, mp)).collect();
        assert_eq!(fanned, cfg.fig21_series(&solver, &mps));
    }

    #[test]
    fn table3_contains_all_designs() {
        let s = table3();
        for d in ["PRCT", "Mithril", "PARFM", "InDRAM-PARA", "MINT"] {
            assert!(s.contains(d), "missing {d}");
        }
    }

    #[test]
    fn table4_contains_478k() {
        let s = table4();
        assert!(s.contains("478K"));
    }

    #[test]
    fn table9_contains_mint_dmq() {
        let s = table9();
        assert!(s.contains("MINT+DMQ"));
        assert!(s.contains("bytes"));
    }
}
