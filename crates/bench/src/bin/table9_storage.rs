//! Regenerates paper Table IX (SRAM overhead).
fn main() {
    mint_exp::init_jobs_from_args();
    println!("{}", mint_bench::security::table9());
}
