//! Regenerates paper Table IX (SRAM overhead).
fn main() {
    mint_exp::cli::parse();
    println!("{}", mint_bench::security::table9());
}
