//! Regenerates paper Table IX (SRAM overhead).
fn main() {
    println!("{}", mint_bench::security::table9());
}
