//! Regenerates paper Fig 3 (InDRAM-PARA survival probability).
fn main() {
    mint_exp::cli::parse();
    println!("{}", mint_bench::security::fig3());
}
