//! Regenerates paper Fig 3 (InDRAM-PARA survival probability).
fn main() {
    mint_exp::init_jobs_from_args();
    println!("{}", mint_bench::security::fig3());
}
