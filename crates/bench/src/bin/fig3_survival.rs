//! Regenerates paper Fig 3 (InDRAM-PARA survival probability).
fn main() {
    println!("{}", mint_bench::security::fig3());
}
