//! Regenerates paper Fig 10 (pattern-2 sweep).
fn main() {
    mint_exp::cli::parse();
    println!("{}", mint_bench::security::fig10());
}
