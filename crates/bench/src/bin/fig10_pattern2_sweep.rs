//! Regenerates paper Fig 10 (pattern-2 sweep).
fn main() {
    println!("{}", mint_bench::security::fig10());
}
