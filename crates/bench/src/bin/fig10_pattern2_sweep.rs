//! Regenerates paper Fig 10 (pattern-2 sweep).
fn main() {
    mint_exp::init_jobs_from_args();
    println!("{}", mint_bench::security::fig10());
}
