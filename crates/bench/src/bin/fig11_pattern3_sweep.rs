//! Regenerates paper Fig 11 (pattern-3 sweep).
fn main() {
    mint_exp::init_jobs_from_args();
    println!("{}", mint_bench::security::fig11());
}
