//! Regenerates paper Fig 11 (pattern-3 sweep).
fn main() {
    println!("{}", mint_bench::security::fig11());
}
