//! Regenerates paper Fig 11 (pattern-3 sweep).
fn main() {
    mint_exp::cli::parse();
    println!("{}", mint_bench::security::fig11());
}
