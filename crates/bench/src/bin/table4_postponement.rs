//! Regenerates paper Table IV (refresh postponement and DMQ).
fn main() {
    mint_exp::init_jobs_from_args();
    println!("{}", mint_bench::security::table4());
}
