//! Regenerates paper Table IV (refresh postponement and DMQ).
fn main() {
    mint_exp::cli::parse();
    println!("{}", mint_bench::security::table4());
}
