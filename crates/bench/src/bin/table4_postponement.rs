//! Regenerates paper Table IV (refresh postponement and DMQ).
fn main() {
    println!("{}", mint_bench::security::table4());
}
