//! Regenerates paper Table III (tracker comparison).
fn main() {
    mint_exp::init_jobs_from_args();
    println!("{}", mint_bench::security::table3());
}
