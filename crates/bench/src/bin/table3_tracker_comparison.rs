//! Regenerates paper Table III (tracker comparison).
fn main() {
    mint_exp::cli::parse();
    println!("{}", mint_bench::security::table3());
}
