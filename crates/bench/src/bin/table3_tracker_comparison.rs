//! Regenerates paper Table III (tracker comparison).
fn main() {
    println!("{}", mint_bench::security::table3());
}
