//! Regenerates paper Table VI (system configuration).
fn main() {
    mint_exp::cli::parse();
    println!("{}", mint_bench::params::table6());
}
