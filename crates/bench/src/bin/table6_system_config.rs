//! Regenerates paper Table VI (system configuration).
fn main() {
    mint_exp::init_jobs_from_args();
    println!("{}", mint_bench::params::table6());
}
