//! Regenerates paper Table VI (system configuration).
fn main() {
    println!("{}", mint_bench::params::table6());
}
