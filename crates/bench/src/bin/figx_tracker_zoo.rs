//! Regenerates the tracker-zoo comparison (Table-IX-style storage vs
//! performance across every `MitigationScheme` in the memory system).
fn main() {
    mint_exp::init_jobs_from_args();
    println!("{}", mint_bench::perf::tracker_zoo());
}
