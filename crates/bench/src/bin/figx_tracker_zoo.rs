//! Regenerates the tracker-zoo comparison (Table-IX-style storage vs
//! performance across every `MitigationScheme` in the memory system) and
//! writes the machine-readable `BENCH_perf.json` (per-scheme slowdown and
//! row-hit rate) next to it for CI and downstream tooling.

use mint_bench::perf::{perf_json, tracker_zoo_table, zoo_perf_summaries, REQUESTS_PER_CORE};

fn main() {
    mint_exp::init_jobs_from_args();
    let summaries = zoo_perf_summaries(REQUESTS_PER_CORE);
    println!("{}", tracker_zoo_table(&summaries));
    let json = perf_json(&summaries, REQUESTS_PER_CORE);
    let path = "BENCH_perf.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => {
            // The machine-readable artifact is this binary's contract:
            // failing to produce it must fail the run (CI consumes it).
            eprintln!("could not write {path}: {e}");
            std::process::exit(1);
        }
    }
}
