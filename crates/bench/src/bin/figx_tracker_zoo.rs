//! Regenerates the tracker-zoo comparison (Table-IX-style storage vs
//! performance across every `MitigationScheme` in the memory system) and
//! writes the machine-readable `BENCH_perf.json` (per-scheme slowdown and
//! row-hit rate) next to it for CI and downstream tooling.
//!
//! ```bash
//! cargo run --release -p mint-bench --bin figx_tracker_zoo [-- --jobs N] [--out PATH]
//! ```

use mint_bench::perf::{perf_json, tracker_zoo_table, zoo_perf_summaries, REQUESTS_PER_CORE};

fn main() {
    let cli = mint_exp::cli::parse();
    let summaries = zoo_perf_summaries(REQUESTS_PER_CORE);
    println!("{}", tracker_zoo_table(&summaries));
    cli.write_artifact("BENCH_perf.json", &perf_json(&summaries, REQUESTS_PER_CORE));
}
