//! CI smoke: one tiny workload-grid cell through **both** schedulers plus
//! a small red-team scheme × pattern grid, diffing determinism at jobs
//! 1 vs 4.
//!
//! ```bash
//! cargo run --release -p mint-bench --bin ci_smoke
//! ```
//!
//! Exits non-zero (panics) if any `(policy, jobs)` combination produces a
//! result that is not bit-identical to the single-threaded run — the
//! contract the whole `mint-exp` fan-out rests on, checked here in
//! seconds instead of the full test suite's minutes.

use mint_bench::redteam::patterns;
use mint_memsys::{
    run_workload_grid_with, spec_rate_workloads, AddressMapping, MitigationScheme, NormalizedPerf,
    SchedulePolicy, SystemConfig,
};
use mint_redteam::{redteam_sweep, RedteamConfig, RedteamReport};

fn tiny_grid(policy: SchedulePolicy) -> Vec<Vec<NormalizedPerf>> {
    let cfg = SystemConfig::table6();
    let mcf = spec_rate_workloads()
        .into_iter()
        .find(|w| w.name == "mcf")
        .expect("mcf in the suite");
    run_workload_grid_with(
        &cfg,
        &[
            MitigationScheme::Baseline,
            MitigationScheme::Mint,
            MitigationScheme::MintRfm { rfm_th: 16 },
        ],
        policy,
        AddressMapping::default(),
        &[[mcf; 4]],
        2_000,
        &[77],
    )
}

/// A small scheme × pattern red-team grid (quick config, one scheme per
/// backend family).
fn tiny_redteam() -> RedteamReport {
    let rc = RedteamConfig::quick();
    redteam_sweep(
        &rc,
        &[
            MitigationScheme::Baseline,
            MitigationScheme::Mint,
            MitigationScheme::McPara { p: 1.0 / 40.0 },
        ],
        &patterns(&rc),
    )
}

fn main() {
    for policy in [SchedulePolicy::Fcfs, SchedulePolicy::frfcfs()] {
        mint_exp::set_jobs(1);
        let one = tiny_grid(policy);
        mint_exp::set_jobs(4);
        let four = tiny_grid(policy);
        mint_exp::set_jobs(0); // restore default resolution
        assert_eq!(one.len(), four.len());
        for (ra, rb) in one.iter().zip(&four) {
            for (ca, cb) in ra.iter().zip(rb) {
                assert_eq!(
                    ca.duration_ps,
                    cb.duration_ps,
                    "{}: duration differs between jobs 1 and 4",
                    policy.label()
                );
                assert_eq!(
                    ca.result,
                    cb.result,
                    "{}: SimResult differs between jobs 1 and 4",
                    policy.label()
                );
                assert_eq!(
                    ca.normalized.to_bits(),
                    cb.normalized.to_bits(),
                    "{}: normalized perf differs bitwise between jobs 1 and 4",
                    policy.label()
                );
            }
        }
        let mint = &one[0][1];
        println!(
            "{}: jobs 1 == jobs 4 ({} requests, MINT normalized {:.6}, row-hit rate {:.4})",
            policy.label(),
            mint.result.requests,
            mint.normalized,
            mint.result.row_hit_rate(),
        );
    }
    mint_exp::set_jobs(1);
    let one = tiny_redteam();
    mint_exp::set_jobs(4);
    let four = tiny_redteam();
    mint_exp::set_jobs(0);
    assert_eq!(
        one, four,
        "redteam scheme x pattern grid differs between jobs 1 and 4"
    );
    let worst = one
        .cells
        .iter()
        .max_by_key(|c| c.summary.max_hammers)
        .expect("non-empty grid");
    println!(
        "redteam: jobs 1 == jobs 4 ({} cells, worst {} on {} reaching {} hammers)",
        one.cells.len(),
        worst.scheme_label,
        worst.pattern,
        worst.summary.max_hammers,
    );
    println!("ci_smoke OK: schedulers and redteam grid bit-identical at jobs 1 vs 4");
}
