//! CI smoke: one tiny workload grid through **both** schedulers, the
//! same grid scaled to a 2-channel × 2-rank DIMM, a small red-team
//! scheme × pattern grid, the checked-in `ScenarioSpec` grid file, and
//! that same grid again with telemetry on (the obs dump byte-diffed,
//! the perf outcomes pinned to the telemetry-off grid) — each diffed
//! for determinism at jobs 1 vs 4 — plus the
//! reduced `BENCH_perf.json` / quick `BENCH_security.json` payloads
//! diffed byte-for-byte against every retained reference
//! implementation: the scratch planner, the sorted-vec admission loop,
//! the unbatched stream generation and the division-based refresh
//! alignment, plus a quick sat32 throughput cell through its schema
//! check. Two more legs cover the serving layer: the checked-in specs
//! piped through the resident scenario service (streamed JSON-lines
//! byte-identical at 1 vs 4 workers and vs batch) and a midpoint
//! checkpoint/restore whose resumed report must match the straight run
//! byte-for-byte.
//!
//! ```bash
//! cargo run --release -p mint-bench --bin ci_smoke
//! ```
//!
//! Exits non-zero (panics) if any combination produces a result that is
//! not bit-identical to the single-threaded run — the contract the whole
//! `mint-exp` fan-out rests on, checked here in seconds instead of the
//! full test suite's minutes.

use mint_bench::perf::{perf_json, zoo_perf_summaries};
use mint_bench::redteam::{patterns, redteam_report, security_json};
use mint_bench::throughput::{
    check_throughput_schema, measure_cell, saturation32_cell, throughput_json,
};
use mint_memsys::{
    parse_any, set_reference_admission_default, set_reference_generation_default,
    set_reference_planner_default, set_reference_refresh_default, workload_by_name, Checkpoint,
    MitigationScheme, NormalizedPerf, Scenario, ScenarioGrid, SchedulePolicy, SessionRun,
    SystemConfig,
};
use mint_redteam::{redteam_sweep, RedteamConfig, RedteamReport};
use mint_serve::{wire, Service};

/// The checked-in spec-driven grid (CI runs exactly what users run).
const SCENARIO_FILE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../examples/scenarios/zoo_small.scn"
);

/// The checked-in multi-channel grid, reused as the service's second job.
const MULTICHANNEL_FILE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../examples/scenarios/dimm_multichannel.scn"
);

fn tiny_grid(policy: SchedulePolicy) -> Vec<Vec<NormalizedPerf>> {
    let mcf = workload_by_name("mcf").expect("mcf in the suite");
    ScenarioGrid::new(SystemConfig::table6())
        .schemes(&[
            MitigationScheme::Baseline,
            MitigationScheme::Mint,
            MitigationScheme::MintRfm { rfm_th: 16 },
        ])
        .policy(policy)
        .workloads(&[[mcf; 4]])
        .requests_per_core(2_000)
        .seeds(&[77])
        .run()
}

/// The same tiny grid scaled out to a 2-channel × 2-rank DIMM: the
/// multi-channel [`System`](mint_memsys::System) admission loop and the
/// per-channel pipeline fan-out must be just as worker-count-invariant
/// as the single-channel path.
fn tiny_multichannel_grid() -> Vec<Vec<NormalizedPerf>> {
    let mcf = workload_by_name("mcf").expect("mcf in the suite");
    let cfg = SystemConfig {
        channels: 2,
        ranks: 2,
        ..SystemConfig::table6()
    };
    ScenarioGrid::new(cfg)
        .schemes(&[MitigationScheme::Baseline, MitigationScheme::Mint])
        .workloads(&[[mcf; 4]])
        .requests_per_core(2_000)
        .seeds(&[77])
        .run()
}

/// A small scheme × pattern red-team grid (quick config, one scheme per
/// backend family).
fn tiny_redteam() -> RedteamReport {
    let rc = RedteamConfig::quick();
    redteam_sweep(
        &rc,
        &[
            MitigationScheme::Baseline,
            MitigationScheme::Mint,
            MitigationScheme::McPara { p: 1.0 / 40.0 },
        ],
        &patterns(&rc),
    )
}

/// The spec-driven grid: parsed from the shipped `.scn` file, exactly as
/// `run_scenario` would run it.
fn scenario_grid() -> Vec<Vec<NormalizedPerf>> {
    let text = std::fs::read_to_string(SCENARIO_FILE)
        .unwrap_or_else(|e| panic!("cannot read {SCENARIO_FILE}: {e}"));
    match parse_any(&text).unwrap_or_else(|e| panic!("{SCENARIO_FILE}: {e}")) {
        Scenario::Grid(grid) => grid.run(),
        Scenario::Cell(_) => panic!("{SCENARIO_FILE} must be a grid"),
    }
}

fn assert_grids_identical(one: &[Vec<NormalizedPerf>], four: &[Vec<NormalizedPerf>], what: &str) {
    assert_eq!(one.len(), four.len());
    for (ra, rb) in one.iter().zip(four) {
        for (ca, cb) in ra.iter().zip(rb) {
            assert_eq!(
                ca.duration_ps, cb.duration_ps,
                "{what}: duration differs between jobs 1 and 4"
            );
            assert_eq!(
                ca.result, cb.result,
                "{what}: SimResult differs between jobs 1 and 4"
            );
            assert_eq!(
                ca.normalized.to_bits(),
                cb.normalized.to_bits(),
                "{what}: normalized perf differs bitwise between jobs 1 and 4"
            );
        }
    }
}

/// One pass of the resident scenario service over `input`, with the
/// worker pool sized by the ambient `set_jobs` setting (so
/// [`at_jobs_1_and_4`] exercises 1 vs 4 workers).
fn serve_stream(input: &str) -> String {
    let mut out = Vec::new();
    Service::new()
        .serve(std::io::Cursor::new(input.to_string()), &mut out)
        .expect("in-memory serve");
    String::from_utf8(out).expect("utf8 serve output")
}

/// Runs `make` at jobs 1 and jobs 4 and hands both results back.
fn at_jobs_1_and_4<T>(make: impl Fn() -> T) -> (T, T) {
    mint_exp::set_jobs(1);
    let one = make();
    mint_exp::set_jobs(4);
    let four = make();
    mint_exp::set_jobs(0); // restore default resolution
    (one, four)
}

fn main() {
    for policy in [SchedulePolicy::Fcfs, SchedulePolicy::frfcfs()] {
        let (one, four) = at_jobs_1_and_4(|| tiny_grid(policy));
        assert_grids_identical(&one, &four, &policy.label());
        let mint = &one[0][1];
        println!(
            "{}: jobs 1 == jobs 4 ({} requests, MINT normalized {:.6}, row-hit rate {:.4})",
            policy.label(),
            mint.result.requests,
            mint.normalized,
            mint.result.row_hit_rate(),
        );
    }

    let (one, four) = at_jobs_1_and_4(tiny_multichannel_grid);
    assert_grids_identical(&one, &four, "2ch x 2rk system");
    println!(
        "system: jobs 1 == jobs 4 on a 2-channel x 2-rank DIMM ({} requests)",
        one[0][0].result.requests,
    );

    let (one, four) = at_jobs_1_and_4(tiny_redteam);
    assert_eq!(
        one, four,
        "redteam scheme x pattern grid differs between jobs 1 and 4"
    );
    let worst = one
        .cells
        .iter()
        .max_by_key(|c| c.summary.max_hammers)
        .expect("non-empty grid");
    println!(
        "redteam: jobs 1 == jobs 4 ({} cells, worst {} on {} reaching {} hammers)",
        one.cells.len(),
        worst.scheme_label,
        worst.pattern,
        worst.summary.max_hammers,
    );

    let (one, four) = at_jobs_1_and_4(scenario_grid);
    assert_grids_identical(&one, &four, "zoo_small.scn");
    println!(
        "scenario: jobs 1 == jobs 4 ({} x {} spec-driven cells from zoo_small.scn)",
        one.len(),
        one[0].len(),
    );

    // Telemetry leg: the same checked-in grid with the observability
    // subsystem on. The per-cell telemetry dumps must be byte-identical
    // at jobs 1 vs 4, and the perf outcomes must match the telemetry-off
    // grid bit for bit — the obs hooks read the simulator, never drive it.
    let telemetry_dump = || {
        let text = std::fs::read_to_string(SCENARIO_FILE)
            .unwrap_or_else(|e| panic!("cannot read {SCENARIO_FILE}: {e}"));
        let Scenario::Grid(mut grid) =
            parse_any(&text).unwrap_or_else(|e| panic!("{SCENARIO_FILE}: {e}"))
        else {
            panic!("{SCENARIO_FILE} must be a grid");
        };
        grid.telemetry = true;
        let reports = grid.run_reports();
        let mut dump = String::new();
        let mut rows = Vec::new();
        for row in &reports {
            let base = row[0].perf;
            rows.push(
                row.iter()
                    .map(|r| r.perf.normalize(&base))
                    .collect::<Vec<NormalizedPerf>>(),
            );
            for r in row {
                dump.push_str(&r.telemetry.as_ref().expect("telemetry enabled").to_json());
            }
        }
        (dump, rows)
    };
    let (tele_one, tele_four) = at_jobs_1_and_4(telemetry_dump);
    assert_eq!(
        tele_one.0, tele_four.0,
        "telemetry dump differs between jobs 1 and 4"
    );
    assert_grids_identical(&tele_one.1, &one, "telemetry-on vs telemetry-off grid");
    assert!(
        tele_one.0.contains("\"decisions\"") && tele_one.0.contains("\"mitigations\""),
        "telemetry dump must carry scheduler and tracker counters"
    );
    println!(
        "telemetry: jobs 1 == jobs 4 dump ({} bytes), perf bit-identical to the off grid",
        tele_one.0.len(),
    );

    // Serve leg: the two checked-in grid specs through the resident
    // scenario service. The streamed JSON-lines must be byte-identical
    // at 1 vs 4 workers AND to the batch runner's reports rendered by
    // the same wire formatter.
    let zoo = std::fs::read_to_string(SCENARIO_FILE)
        .unwrap_or_else(|e| panic!("cannot read {SCENARIO_FILE}: {e}"));
    let multi = std::fs::read_to_string(MULTICHANNEL_FILE)
        .unwrap_or_else(|e| panic!("cannot read {MULTICHANNEL_FILE}: {e}"));
    let input = [
        wire::Envelope::Submit {
            id: 1,
            spec: zoo.clone(),
            seed_base: None,
            timeout_ms: None,
        }
        .to_line(),
        wire::Envelope::Submit {
            id: 2,
            spec: multi.clone(),
            seed_base: None,
            timeout_ms: None,
        }
        .to_line(),
        wire::Envelope::Shutdown.to_line(),
    ]
    .join("\n");
    let (one, four) = at_jobs_1_and_4(|| serve_stream(&input));
    assert_eq!(one, four, "serve stream differs between 1 and 4 workers");
    let mut expected = String::new();
    for (id, text) in [(1u64, &zoo), (2, &multi)] {
        match parse_any(text).expect("checked-in spec") {
            Scenario::Grid(grid) => {
                expected.push_str(&wire::ok_grid_line(id, &grid, &grid.run()));
            }
            Scenario::Cell(cell) => {
                let report = cell.run().expect("checked-in cell");
                expected.push_str(&wire::ok_cell_line(id, &cell.scheme.label(), &report));
            }
        }
        expected.push('\n');
    }
    assert_eq!(
        one, expected,
        "serve stream differs from the batch-rendered reports"
    );
    println!("serve: 2 spec jobs streamed byte-identical at 1 vs 4 workers and vs batch");

    // Checkpoint leg: run a cell straight, then split it at the midpoint
    // through the serialized on-disk checkpoint format and resume in a
    // fresh session — the final report rendering must not differ by a
    // byte (and the full RunReport must compare equal).
    let cell_text = "scheme = mint\nworkload = mcf\nrequests = 2000\nseed = 77\n";
    let Scenario::Cell(cell) = parse_any(cell_text).expect("cell spec") else {
        panic!("checkpoint leg needs a cell");
    };
    let straight = cell.run().expect("straight run");
    let total = straight.perf.result.requests;
    let paused = cell
        .to_sim(SystemConfig::table6())
        .expect("sim")
        .build()
        .run_until(total / 2)
        .expect("pause at the midpoint");
    let SessionRun::Paused(checkpoint) = paused else {
        panic!("a midpoint stop must pause, not finish");
    };
    let bytes = checkpoint.to_bytes();
    let restored = Checkpoint::from_bytes(&bytes).expect("decode checkpoint bytes");
    let resumed = cell
        .to_sim(SystemConfig::table6())
        .expect("sim")
        .build()
        .resume(&restored)
        .expect("resume from the midpoint");
    assert_eq!(
        wire::ok_cell_line(0, &cell.scheme.label(), &resumed),
        wire::ok_cell_line(0, &cell.scheme.label(), &straight),
        "resumed report rendering differs from the straight run"
    );
    assert_eq!(
        resumed, straight,
        "full RunReport differs after checkpoint/restore"
    );
    println!(
        "checkpoint: midpoint split at request {} resumed byte-identical ({}-byte checkpoint)",
        total / 2,
        bytes.len(),
    );

    // Planner oracle at artifact granularity: the exact JSON payloads of
    // BENCH_perf.json (reduced request budget) and BENCH_security.json
    // (quick red-team config) must be byte-identical whether the channel
    // plans incrementally (default) or with the scratch reference.
    let payloads = || {
        let perf = perf_json(&zoo_perf_summaries(2_000), 2_000);
        let rc = RedteamConfig::quick();
        let security = security_json(&redteam_report(&rc), &rc);
        (perf, security)
    };
    let optimized = payloads();
    // Each retained reference implementation gets its own leg, so a
    // divergence names the subsystem that caused it.
    type Knob = fn(bool);
    let legs: &[(&str, Knob)] = &[
        ("scratch planner", set_reference_planner_default),
        ("sorted-vec admission", set_reference_admission_default),
        ("unbatched generation", set_reference_generation_default),
        ("division-based refresh", set_reference_refresh_default),
    ];
    for (what, set) in legs {
        set(true);
        let reference = payloads();
        set(false);
        assert_eq!(
            optimized.0, reference.0,
            "BENCH_perf.json differs between optimized and {what} reference"
        );
        assert_eq!(
            optimized.1, reference.1,
            "BENCH_security.json differs between optimized and {what} reference"
        );
        println!("oracle[{what}]: BENCH_perf + BENCH_security byte-identical vs reference");
    }

    // The throughput trajectory's arbitration-dominated cell: one quick
    // sat32 measurement (whose internal asserts re-check all three run
    // modes agree on the SimResult) rendered and schema-checked exactly
    // as figx_throughput writes it.
    let sat32 = measure_cell(&saturation32_cell(true), 1);
    let json = throughput_json(std::slice::from_ref(&sat32), 1);
    check_throughput_schema(&json).expect("sat32 throughput payload passes the schema");
    println!(
        "throughput: sat32 cell OK ({} requests, schema-checked payload)",
        sat32.requests
    );

    println!(
        "ci_smoke OK: schedulers, redteam grid, scenario file, telemetry dump, serve stream, \
         checkpoint restore and every retained reference bit-identical"
    );
}
