//! Regenerates paper Table V (MINT+RFM scaling).
fn main() {
    println!("{}", mint_bench::security::table5());
}
