//! Regenerates paper Table V (MINT+RFM scaling).
fn main() {
    mint_exp::cli::parse();
    println!("{}", mint_bench::security::table5());
}
