//! Regenerates paper Table V (MINT+RFM scaling).
fn main() {
    mint_exp::init_jobs_from_args();
    println!("{}", mint_bench::security::table5());
}
