//! Regenerates paper Table VII (target-TTF sensitivity).
fn main() {
    println!("{}", mint_bench::security::table7());
}
