//! Regenerates paper Table VII (target-TTF sensitivity).
fn main() {
    mint_exp::cli::parse();
    println!("{}", mint_bench::security::table7());
}
