//! Regenerates paper Table VII (target-TTF sensitivity).
fn main() {
    mint_exp::init_jobs_from_args();
    println!("{}", mint_bench::security::table7());
}
