//! Regenerates paper Fig 5 (no-overwrite sampling probability).
fn main() {
    mint_exp::init_jobs_from_args();
    println!("{}", mint_bench::security::fig5());
}
