//! Regenerates paper Fig 5 (no-overwrite sampling probability).
fn main() {
    mint_exp::cli::parse();
    println!("{}", mint_bench::security::fig5());
}
