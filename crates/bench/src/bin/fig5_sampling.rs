//! Regenerates paper Fig 5 (no-overwrite sampling probability).
fn main() {
    println!("{}", mint_bench::security::fig5());
}
