//! Regenerates paper Fig 18 (MaxACT sensitivity).
fn main() {
    println!("{}", mint_bench::security::fig18());
}
