//! Regenerates paper Fig 18 (MaxACT sensitivity).
fn main() {
    mint_exp::init_jobs_from_args();
    println!("{}", mint_bench::security::fig18());
}
