//! Regenerates paper Fig 18 (MaxACT sensitivity).
fn main() {
    mint_exp::cli::parse();
    println!("{}", mint_bench::security::fig18());
}
