//! Regenerates paper Table I (DRAM parameters).
fn main() {
    mint_exp::cli::parse();
    println!("{}", mint_bench::params::table1());
}
