//! Regenerates paper Table I (DRAM parameters).
fn main() {
    println!("{}", mint_bench::params::table1());
}
