//! Regenerates paper Table I (DRAM parameters).
fn main() {
    mint_exp::init_jobs_from_args();
    println!("{}", mint_bench::params::table1());
}
