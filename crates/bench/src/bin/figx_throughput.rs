//! Measures the simulator's own command throughput — host-side ns per
//! scheduling decision, requests/sec and DRAM commands/sec across the
//! scheme × policy × queue-depth × channels × sat32 cell set, each cell
//! timed under the optimized defaults, the scratch planner reference and
//! the shared-path references (admission/generation/refresh) — and
//! writes the tracked `BENCH_throughput.json` trajectory artifact next
//! to the table, schema-checking it first.
//!
//! ```bash
//! cargo run --release -p mint-bench --bin figx_throughput [-- --quick] [--out PATH]
//! cargo run --release -p mint-bench --bin figx_throughput -- --check BENCH_throughput.json
//! ```
//!
//! `--quick` trims the cell set and repetition count for CI. `--check
//! FILE` validates an existing artifact against the schema instead of
//! measuring (exit 1 on failure) — CI runs this against the artifact it
//! just wrote so a truncated or malformed trajectory cannot ship. The
//! cells run serially even under `--jobs N` (timing must not contend),
//! but the flag is accepted so the shared CLI contract holds.

use std::process::ExitCode;

use mint_bench::throughput::{
    cells, check_throughput_schema, measure_cells, throughput_json, throughput_table, DEFAULT_REPS,
    QUICK_REPS,
};

fn main() -> ExitCode {
    let cli = mint_exp::cli::parse();
    if let Some(pos) = cli.free.iter().position(|a| a == "--check") {
        let Some(path) = cli.free.get(pos + 1) else {
            eprintln!("figx_throughput: --check needs a FILE argument");
            return ExitCode::FAILURE;
        };
        let payload = match std::fs::read_to_string(path) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("figx_throughput: read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        return match check_throughput_schema(&payload) {
            Ok(()) => {
                println!("{path}: schema OK");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("figx_throughput: {path}: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let quick = cli.free.iter().any(|a| a == "--quick");
    let reps = if quick { QUICK_REPS } else { DEFAULT_REPS };
    let records = measure_cells(&cells(quick), reps);
    println!("{}", throughput_table(&records));
    let json = throughput_json(&records, reps);
    check_throughput_schema(&json).expect("freshly rendered payload passes the schema");
    cli.write_artifact("BENCH_throughput.json", &json);
    ExitCode::SUCCESS
}
