//! Measures the simulator's own command throughput — host-side ns per
//! scheduling decision, requests/sec and DRAM commands/sec across the
//! scheme × policy × queue-depth cell set, each cell timed under both the
//! incremental planner and the scratch reference — and writes the tracked
//! `BENCH_throughput.json` trajectory artifact next to the table.
//!
//! ```bash
//! cargo run --release -p mint-bench --bin figx_throughput [-- --quick] [--out PATH]
//! ```
//!
//! `--quick` trims the cell set and repetition count for CI. The cells
//! run serially even under `--jobs N` (timing must not contend), but the
//! flag is accepted so the shared CLI contract holds.

use mint_bench::throughput::{
    cells, measure_cells, throughput_json, throughput_table, DEFAULT_REPS,
};

fn main() {
    let cli = mint_exp::cli::parse();
    let quick = cli.free.iter().any(|a| a == "--quick");
    let reps = if quick { 2 } else { DEFAULT_REPS };
    let records = measure_cells(&cells(quick), reps);
    println!("{}", throughput_table(&records));
    cli.write_artifact("BENCH_throughput.json", &throughput_json(&records, reps));
}
