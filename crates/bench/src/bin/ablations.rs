//! Runs the four ablation studies (DESIGN.md §7): DMQ depth, the
//! transitive slot (and blast-radius-2 non-fix), Mithril entry count and
//! the PrIDE FIFO.

fn main() {
    mint_exp::cli::parse();
    println!("{}\n", mint_bench::ablation::dmq_depth());
    println!("{}\n", mint_bench::ablation::transitive_slot());
    println!("{}\n", mint_bench::ablation::mithril_entries());
    println!("{}\n", mint_bench::ablation::pride_fifo());
}
