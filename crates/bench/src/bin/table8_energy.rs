//! Regenerates paper Table VIII (energy overheads).
fn main() {
    mint_exp::cli::parse();
    println!("{}", mint_bench::perf::table8());
}
