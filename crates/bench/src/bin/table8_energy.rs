//! Regenerates paper Table VIII (energy overheads).
fn main() {
    mint_exp::init_jobs_from_args();
    println!("{}", mint_bench::perf::table8());
}
