//! Regenerates paper Table VIII (energy overheads).
fn main() {
    println!("{}", mint_bench::perf::table8());
}
