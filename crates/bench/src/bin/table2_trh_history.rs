//! Regenerates paper Table II (TRH over time).
fn main() {
    println!("{}", mint_bench::params::table2());
}
