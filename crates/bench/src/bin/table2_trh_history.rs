//! Regenerates paper Table II (TRH over time).
fn main() {
    mint_exp::init_jobs_from_args();
    println!("{}", mint_bench::params::table2());
}
