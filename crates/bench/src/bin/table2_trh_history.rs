//! Regenerates paper Table II (TRH over time).
fn main() {
    mint_exp::cli::parse();
    println!("{}", mint_bench::params::table2());
}
