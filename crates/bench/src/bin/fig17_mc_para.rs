//! Regenerates paper Fig 17 (MINT vs MC-PARA).
fn main() {
    mint_exp::init_jobs_from_args();
    println!("{}", mint_bench::perf::fig17());
}
