//! Regenerates paper Fig 17 (MINT vs MC-PARA).
fn main() {
    mint_exp::cli::parse();
    println!("{}", mint_bench::perf::fig17());
}
