//! Regenerates paper Fig 17 (MINT vs MC-PARA).
fn main() {
    println!("{}", mint_bench::perf::fig17());
}
