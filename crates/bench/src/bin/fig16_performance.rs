//! Regenerates paper Fig 16 (normalized performance).
fn main() {
    mint_exp::cli::parse();
    println!("{}", mint_bench::perf::fig16());
}
