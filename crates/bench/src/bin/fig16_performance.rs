//! Regenerates paper Fig 16 (normalized performance).
fn main() {
    mint_exp::init_jobs_from_args();
    println!("{}", mint_bench::perf::fig16());
}
