//! Regenerates paper Fig 16 (normalized performance).
fn main() {
    println!("{}", mint_bench::perf::fig16());
}
