//! Mounts the red-team campaign on the command-level channel: every zoo
//! scheme × every canonical worst-case pattern, judged by the
//! ground-truth oracle against the TRH grid, plus per-scheme benign-core
//! slowdown while core 0 hammers. Writes the machine-readable
//! `BENCH_security.json` next to the human tables, and the oracle's
//! traffic accounting as `BENCH_security_telemetry.json` (one obs
//! section per scheme × pattern cell).
//!
//! ```bash
//! cargo run --release -p mint-bench --bin figx_redteam [-- --jobs N] [--out PATH]
//! ```

use mint_bench::redteam::{oracle_telemetry, redteam_report, redteam_table, security_json};
use mint_redteam::RedteamConfig;

fn main() {
    let cli = mint_exp::cli::parse();
    let rc = RedteamConfig::default_sweep();
    let report = redteam_report(&rc);
    println!("{}", redteam_table(&report));
    let escapes = rc
        .trh_grid
        .iter()
        .filter(|&&t| report.any_escape_at(t))
        .count();
    let holds = rc
        .trh_grid
        .iter()
        .filter(|&&t| report.any_positive_margin_at(t))
        .count();
    println!(
        "redteam: {} cells, escapes at {escapes}/{} thresholds, positive margins at {holds}/{}",
        report.cells.len(),
        rc.trh_grid.len(),
        rc.trh_grid.len(),
    );
    cli.write_artifact("BENCH_security.json", &security_json(&report, &rc));
    cli.write_aux_artifact(
        "BENCH_security_telemetry.json",
        &oracle_telemetry(&report).to_json(),
    );
}
