//! Regenerates paper Fig 21 (adaptive-attack morphing sweep).
fn main() {
    mint_exp::cli::parse();
    println!("{}", mint_bench::security::fig21());
}
