//! Regenerates paper Fig 21 (adaptive-attack morphing sweep).
fn main() {
    println!("{}", mint_bench::security::fig21());
}
