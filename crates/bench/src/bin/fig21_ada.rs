//! Regenerates paper Fig 21 (adaptive-attack morphing sweep).
fn main() {
    mint_exp::init_jobs_from_args();
    println!("{}", mint_bench::security::fig21());
}
