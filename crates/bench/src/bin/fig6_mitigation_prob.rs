//! Regenerates paper Fig 6 (relative mitigation probability).
fn main() {
    mint_exp::cli::parse();
    println!("{}", mint_bench::security::fig6());
}
