//! Regenerates paper Fig 6 (relative mitigation probability).
fn main() {
    mint_exp::init_jobs_from_args();
    println!("{}", mint_bench::security::fig6());
}
