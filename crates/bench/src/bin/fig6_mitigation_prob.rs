//! Regenerates paper Fig 6 (relative mitigation probability).
fn main() {
    println!("{}", mint_bench::security::fig6());
}
