//! Regenerates every table and figure of the paper in one run.
//!
//! ```bash
//! cargo run --release -p mint-bench --bin repro_all > results.txt
//! ```
//!
//! Each experiment fans its sweep points / Monte-Carlo trials out through
//! the `mint-exp` harness. Worker count defaults to
//! `available_parallelism`; pin it with `--jobs N` (also `-j N`) or the
//! `MINT_JOBS` environment variable — results are identical either way:
//!
//! ```bash
//! cargo run --release -p mint-bench --bin repro_all -- --jobs 2
//! MINT_JOBS=1 cargo run --release -p mint-bench --bin repro_all
//! ```

fn main() {
    mint_exp::cli::parse();
    type Render = fn() -> String;
    let experiments: Vec<(&str, Render)> = vec![
        ("table1", mint_bench::params::table1 as Render),
        ("table2", mint_bench::params::table2),
        ("fig3", mint_bench::security::fig3),
        ("fig5", mint_bench::security::fig5),
        ("fig6", mint_bench::security::fig6),
        ("fig10", mint_bench::security::fig10),
        ("fig11", mint_bench::security::fig11),
        ("table3", mint_bench::security::table3),
        ("table4", mint_bench::security::table4),
        ("table5", mint_bench::security::table5),
        ("table6", mint_bench::params::table6),
        ("fig16", mint_bench::perf::fig16),
        ("table7", mint_bench::security::table7),
        ("table8", mint_bench::perf::table8),
        ("fig17", mint_bench::perf::fig17),
        ("table9", mint_bench::security::table9),
        ("tracker_zoo", mint_bench::perf::tracker_zoo),
        ("throughput", mint_bench::throughput::throughput),
        ("redteam", mint_bench::redteam::redteam),
        ("fig18", mint_bench::security::fig18),
        ("fig21", mint_bench::security::fig21),
    ];
    let count = experiments.len();
    for (name, run) in experiments {
        eprintln!("[repro_all] running {name} ...");
        println!("{}\n", run());
    }
    eprintln!("[repro_all] done: {count} experiments regenerated");
}
