//! Runs a declarative scenario file end-to-end: a single `ScenarioSpec`
//! cell or a `schemes × workloads` `ScenarioGrid`, straight through the
//! `Sim` builder (grids fan out via the `mint-exp` harness, bit-identical
//! for any `--jobs` count).
//!
//! ```bash
//! cargo run --release -p mint-bench --bin run_scenario -- examples/scenarios/zoo_small.scn
//! cargo run --release -p mint-bench --bin run_scenario -- cell.scn --jobs 2 --out report.json
//! ```
//!
//! The file format is documented on `mint_memsys::ScenarioSpec` /
//! `ScenarioGrid` (and in the README); `examples/scenarios/` ships
//! ready-to-run samples. A machine-readable JSON report is written next
//! to the printed table (`SCENARIO_report.json`, redirect with `--out`).
//!
//! With `--serve` the binary becomes a resident scenario service
//! instead: JSON-lines envelopes stream in on stdin (or a unix socket
//! given with `--socket PATH`) and one result line streams out per job,
//! in submission order — see the `mint-serve` crate and the README's
//! "Scenario service" section for the wire format.
//!
//! ```bash
//! cargo run --release -p mint-bench --bin run_scenario -- --serve < jobs.jsonl
//! cargo run --release -p mint-bench --bin run_scenario -- --serve --socket /tmp/mint.sock
//! ```

use mint_analysis::textable::TexTable;
use mint_memsys::{parse_any, RunReport, Scenario, ScenarioGrid};
use mint_serve::Service;

fn main() {
    let cli = mint_exp::cli::parse();
    // `--serve` / `--socket` are free arguments as far as the shared
    // cli parser is concerned; the `--jobs` override is already
    // installed process-wide, so Service::new() sizes its pool from it.
    if cli.free.iter().any(|arg| arg == "--serve") {
        serve(&cli);
        return;
    }
    let telemetry_flag = cli.free.iter().any(|arg| arg == "--telemetry");
    let Some(path) = cli.free.iter().find(|arg| !arg.starts_with("--")) else {
        eprintln!(
            "usage: run_scenario <FILE.scn> [--jobs N] [--out PATH] [--telemetry]\n       \
             run_scenario --serve [--socket PATH] [--jobs N]"
        );
        std::process::exit(2);
    };
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(2);
    });
    let scenario = parse_any(&text).unwrap_or_else(|e| {
        eprintln!("{path}: {e}");
        std::process::exit(2);
    });
    let json = match scenario {
        Scenario::Cell(mut spec) => {
            spec.telemetry |= telemetry_flag;
            let report = spec.run().unwrap_or_else(|e| {
                eprintln!("{path}: {e}");
                std::process::exit(2);
            });
            print_cell(&spec.scheme.label(), &report);
            if let Some(t) = &report.telemetry {
                cli.write_aux_artifact("SCENARIO_telemetry.json", &t.to_json());
                cli.write_aux_artifact("SCENARIO_telemetry.csv", &t.to_csv());
            }
            cell_json(&spec.scheme.label(), &report)
        }
        Scenario::Grid(mut grid) => {
            grid.telemetry |= telemetry_flag;
            // The telemetry path runs the same deterministic grid and
            // derives the identical normalized rows from the full
            // reports, so `SCENARIO_report.json` stays byte-for-byte
            // what the non-telemetry path writes.
            let rows = if grid.telemetry {
                let reports = grid.run_reports();
                cli.write_aux_artifact(
                    "SCENARIO_telemetry.json",
                    &grid_telemetry_json(&grid, &reports),
                );
                cli.write_aux_artifact(
                    "SCENARIO_telemetry.csv",
                    &grid_telemetry_csv(&grid, &reports),
                );
                normalize_rows(&reports)
            } else {
                grid.run()
            };
            print_grid(&grid, &rows);
            grid_json(&grid, &rows)
        }
    };
    cli.write_artifact("SCENARIO_report.json", &json);
}

/// The per-workload normalization `ScenarioGrid::run` applies, derived
/// from full reports instead of bare perf cells.
fn normalize_rows(reports: &[Vec<RunReport>]) -> Vec<Vec<mint_memsys::NormalizedPerf>> {
    reports
        .iter()
        .map(|row| {
            let base = row[0].perf;
            row.iter().map(|r| r.perf.normalize(&base)).collect()
        })
        .collect()
}

/// One JSON object per grid cell, each embedding its telemetry report.
fn grid_telemetry_json(grid: &ScenarioGrid, reports: &[Vec<RunReport>]) -> String {
    let mut out = String::from("{\n  \"source\": \"run_scenario\",\n  \"cells\": [\n");
    let mut cells = Vec::new();
    for (label, row) in grid.workload_labels.iter().zip(reports) {
        for (scheme, report) in grid.schemes.iter().zip(row) {
            let telemetry = report
                .telemetry
                .as_ref()
                .map_or_else(|| "null".to_owned(), mint_memsys::TelemetryReport::to_json);
            cells.push(format!(
                "    {{\"workload\": \"{}\", \"scheme\": \"{}\", \"telemetry\": {}}}",
                label,
                scheme.label(),
                telemetry.trim_end(),
            ));
        }
    }
    out.push_str(&cells.join(",\n"));
    out.push_str("\n  ]\n}\n");
    out
}

/// The per-cell CSV rows, prefixed with `workload,scheme` columns.
fn grid_telemetry_csv(grid: &ScenarioGrid, reports: &[Vec<RunReport>]) -> String {
    let mut out = String::from("workload,scheme,section,kind,metric,field,value\n");
    for (label, row) in grid.workload_labels.iter().zip(reports) {
        for (scheme, report) in grid.schemes.iter().zip(row) {
            let Some(t) = &report.telemetry else { continue };
            for line in t.to_csv().lines().skip(1) {
                out.push_str(&format!("{label},{},{line}\n", scheme.label()));
            }
        }
    }
    out
}

fn serve(cli: &mint_exp::cli::Cli) {
    let service = Service::new();
    let socket = cli.free.iter().position(|arg| arg == "--socket").map(|i| {
        cli.free.get(i + 1).cloned().unwrap_or_else(|| {
            eprintln!("error: --socket requires a path");
            std::process::exit(2);
        })
    });
    let served = match socket {
        Some(path) => service.serve_unix(std::path::Path::new(&path)),
        None => {
            let stdin = std::io::stdin();
            // StdoutLock is not Send; Stdout itself is, and only the
            // emitter thread ever writes.
            service.serve(stdin.lock(), std::io::stdout()).map(|_| ())
        }
    };
    if let Err(e) = served {
        eprintln!("serve: {e}");
        std::process::exit(1);
    }
}

fn print_cell(scheme: &str, report: &RunReport) {
    let mut tab = TexTable::new(vec![
        "Scheme",
        "Duration (ms)",
        "Requests",
        "Row-hit rate",
        "Mitig ACTs",
        "RFM/DRFM",
        "Energy (mJ)",
    ]);
    let r = &report.perf.result;
    tab.row(vec![
        scheme.to_owned(),
        format!("{:.3}", report.perf.duration_ps as f64 / 1e9),
        r.requests.to_string(),
        format!("{:.4}", r.row_hit_rate()),
        r.mitigative_acts.to_string(),
        format!("{}/{}", r.rfm_commands, r.drfm_commands),
        format!("{:.3}", report.energy.total_j() * 1e3),
    ]);
    println!("{}", tab.to_text());
    for (i, c) in report.cores.iter().enumerate() {
        println!(
            "  core {i}: {} requests, finished at {:.3} ms",
            c.requests,
            c.finish_ps as f64 / 1e9
        );
    }
}

fn print_grid(grid: &ScenarioGrid, rows: &[Vec<mint_memsys::NormalizedPerf>]) {
    let mut header = vec!["Workload".to_owned()];
    header.extend(grid.schemes.iter().map(|s| s.label()));
    let mut tab = TexTable::new(header);
    for (label, row) in grid.workload_labels.iter().zip(rows) {
        let mut cells = vec![label.clone()];
        cells.extend(row.iter().map(|c| format!("{:.4}", c.normalized)));
        tab.row(cells);
    }
    println!(
        "scenario grid: {} workloads x {} schemes at {} requests/core (normalized to {})",
        grid.workloads.len(),
        grid.schemes.len(),
        grid.requests_per_core,
        grid.schemes[0].label(),
    );
    println!("{}", tab.to_text());
}

fn cell_json(scheme: &str, report: &RunReport) -> String {
    let r = &report.perf.result;
    format!(
        "{{\n  \"source\": \"run_scenario\",\n  \"scheme\": \"{}\",\n  \
         \"duration_ps\": {},\n  \"requests\": {},\n  \"row_hit_rate\": {:.6},\n  \
         \"mitigative_acts\": {},\n  \"energy_j\": {:.9}\n}}\n",
        scheme,
        report.perf.duration_ps,
        r.requests,
        r.row_hit_rate(),
        r.mitigative_acts,
        report.energy.total_j(),
    )
}

fn grid_json(grid: &ScenarioGrid, rows: &[Vec<mint_memsys::NormalizedPerf>]) -> String {
    let mut out = String::from("{\n  \"source\": \"run_scenario\",\n");
    out.push_str(&format!(
        "  \"requests_per_core\": {},\n",
        grid.requests_per_core
    ));
    out.push_str(&format!(
        "  \"schemes\": [{}],\n",
        grid.schemes
            .iter()
            .map(|s| format!("\"{}\"", s.label()))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    out.push_str("  \"rows\": [\n");
    let rendered: Vec<String> = grid
        .workload_labels
        .iter()
        .zip(rows)
        .map(|(label, row)| {
            format!(
                "    {{\"workload\": \"{}\", \"normalized\": [{}], \"duration_ps\": [{}]}}",
                label,
                row.iter()
                    .map(|c| format!("{:.6}", c.normalized))
                    .collect::<Vec<_>>()
                    .join(", "),
                row.iter()
                    .map(|c| c.duration_ps.to_string())
                    .collect::<Vec<_>>()
                    .join(", "),
            )
        })
        .collect();
    out.push_str(&rendered.join(",\n"));
    out.push_str("\n  ]\n}\n");
    out
}
