//! Tables I, II and VI: configuration and literature constants.

use crate::titled;
use mint_analysis::reference;
use mint_analysis::textable::TexTable;
use mint_dram::DdrTimings;
use mint_memsys::SystemConfig;

/// Table I: DRAM parameters from the DDR5 datasheet.
#[must_use]
pub fn table1() -> String {
    let t = DdrTimings::ddr5_5200b();
    let mut tab = TexTable::new(vec!["Parameter", "Explanation", "Value"]);
    tab.row(vec![
        "tREFW".into(),
        "Refresh Window".into(),
        format!("{} ms", t.t_refw_ns / 1e6),
    ]);
    tab.row(vec![
        "tREFI".into(),
        "Time interval between REF Commands".into(),
        format!("{} ns", t.t_refi_ns),
    ]);
    tab.row(vec![
        "tRFC".into(),
        "Execution Time for REF Command".into(),
        format!("{} ns", t.t_rfc_ns),
    ]);
    tab.row(vec![
        "tRC".into(),
        "Time between successive ACTs to a bank".into(),
        format!("{} ns", t.t_rc_ns),
    ]);
    tab.row(vec![
        "MaxACT".into(),
        "M = (tREFI - tRFC) / tRC".into(),
        t.max_act().to_string(),
    ]);
    titled(
        "Table I: DRAM parameters (DDR5-5200B, 32 Gb)",
        &tab.to_text(),
    )
}

/// Table II: the Rowhammer threshold across DRAM generations.
#[must_use]
pub fn table2() -> String {
    let mut tab = TexTable::new(vec!["DRAM Generation", "TRH-S (Single)", "TRH-D (Double)"]);
    for row in reference::table2() {
        tab.row(vec![
            row.generation.into(),
            row.trh_s.unwrap_or("-").into(),
            row.trh_d.unwrap_or("-").into(),
        ]);
    }
    titled(
        "Table II: Rowhammer threshold over time (literature)",
        &tab.to_text(),
    )
}

/// Table VI: the evaluated system configuration.
#[must_use]
pub fn table6() -> String {
    let c = SystemConfig::table6();
    let mut tab = TexTable::new(vec!["Component", "Configuration"]);
    tab.row(vec![
        "Out-of-Order Cores".into(),
        format!("{} cores, {} GHz, 8-wide, 192-ROB", c.cores, c.core_ghz),
    ]);
    tab.row(vec![
        "Last Level Cache (Shared)".into(),
        "4MB, 16-Way, 64B lines".into(),
    ]);
    tab.row(vec!["Memory specs".into(), "32 GB, DDR5".into()]);
    tab.row(vec![
        "tRCD-tCL-tRP-tRC".into(),
        format!(
            "{}-{}-{}-{} ns",
            c.t_rcd_ps / 1000,
            c.t_cl_ps / 1000,
            c.t_rp_ps / 1000,
            c.t_rc_ps / 1000
        ),
    ]);
    tab.row(vec![
        "Banks x Ranks x Channels".into(),
        format!("{} x 1 x 1", c.banks),
    ]);
    tab.row(vec![
        "Rows".into(),
        format!("{}K rows, 8KB row buffer", c.rows_per_bank / 1024),
    ]);
    titled("Table VI: baseline system configuration", &tab.to_text())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_reports_73() {
        let t = table1();
        assert!(t.contains("MaxACT"));
        assert!(t.contains("73"));
        assert!(t.contains("3900 ns"));
    }

    #[test]
    fn table2_has_four_generations() {
        let t = table2();
        for gen in ["DDR3-old", "DDR3-new", "DDR4", "LPDDR4"] {
            assert!(t.contains(gen), "missing {gen}");
        }
    }

    #[test]
    fn table6_matches_paper() {
        let t = table6();
        assert!(t.contains("4 cores, 3 GHz"));
        assert!(t.contains("16-16-16-48 ns"));
        assert!(t.contains("32 x 1 x 1"));
        assert!(t.contains("128K rows"));
    }
}
