//! Performance/energy experiments: Fig 16, Fig 17 and Table VIII.
//!
//! Every (workload, scheme) cell is an independent seeded run, so the full
//! grids fan out through [`mint_memsys::ScenarioGrid`] (which rides the
//! `mint-exp` sweep harness). Rows are assembled and averaged in workload
//! order, so the rendered tables are byte-identical for any worker count.

use crate::titled;
use mint_analysis::textable::TexTable;
use mint_memsys::{
    mixes, spec_rate_workloads, EnergyModel, MitigationBackend, MitigationScheme, ScenarioGrid,
    SystemConfig, WorkloadSpec,
};
use mint_rng::Xoshiro256StarStar;

/// Requests per core per run — enough for stable averages, small enough
/// that the full 34-workload × 4-scheme sweep runs in seconds.
pub const REQUESTS_PER_CORE: u32 = 40_000;

/// MC-PARA sampling probability tuned for a MinTRH similar to MINT's
/// (≈1.5K → p ≈ 1/40; see DESIGN.md).
pub const MC_PARA_P: f64 = 1.0 / 40.0;

fn schemes_fig16() -> Vec<MitigationScheme> {
    vec![
        MitigationScheme::Baseline,
        MitigationScheme::Mint,
        MitigationScheme::MintRfm { rfm_th: 32 },
        MitigationScheme::MintRfm { rfm_th: 16 },
    ]
}

fn workload_suite() -> Vec<(String, [WorkloadSpec; 4])> {
    let mut suite: Vec<(String, [WorkloadSpec; 4])> = spec_rate_workloads()
        .into_iter()
        .map(|w| (format!("{}_r", w.name), [w; 4]))
        .collect();
    for (i, m) in mixes().into_iter().enumerate() {
        suite.push((format!("mix{}", i + 1), m));
    }
    suite
}

/// Runs the whole suite under `schemes` with per-workload seeds
/// `seed_base + index`; returns one normalized row per workload.
fn run_suite(
    suite: &[(String, [WorkloadSpec; 4])],
    schemes: &[MitigationScheme],
    seed_base: u64,
) -> Vec<Vec<mint_memsys::NormalizedPerf>> {
    let specs: Vec<[WorkloadSpec; 4]> = suite.iter().map(|(_, s)| *s).collect();
    ScenarioGrid::new(SystemConfig::table6())
        .schemes(schemes)
        .workloads(&specs)
        .requests_per_core(REQUESTS_PER_CORE)
        .seed_base(seed_base)
        .run()
}

/// Fig 16: normalized performance of MINT, MINT+RFM32 and MINT+RFM16 over
/// the 17 rate + 17 mixed workloads.
#[must_use]
pub fn fig16() -> String {
    let suite = workload_suite();
    let grid = run_suite(&suite, &schemes_fig16(), 1000);
    let mut tab = TexTable::new(vec!["Workload", "MINT", "MINT+RFM32", "MINT+RFM16"]);
    let mut sums = [0.0f64; 3];
    for ((name, _), row) in suite.iter().zip(&grid) {
        let vals = [row[1].normalized, row[2].normalized, row[3].normalized];
        for (s, v) in sums.iter_mut().zip(vals) {
            *s += v;
        }
        tab.row(vec![
            name.clone(),
            format!("{:.4}", vals[0]),
            format!("{:.4}", vals[1]),
            format!("{:.4}", vals[2]),
        ]);
    }
    let n = suite.len() as f64;
    tab.row(vec![
        "GMEAN/AVG".into(),
        format!("{:.4}", sums[0] / n),
        format!("{:.4}", sums[1] / n),
        format!("{:.4}", sums[2] / n),
    ]);
    titled(
        "Fig 16: normalized performance (paper: MINT 1.000, RFM32 ~0.998, RFM16 ~0.984)",
        &tab.to_text(),
    )
}

/// Fig 17: MINT (with RFM16 for equal threshold) vs blocking MC-PARA.
#[must_use]
pub fn fig17() -> String {
    let schemes = vec![
        MitigationScheme::Baseline,
        MitigationScheme::Mint,
        MitigationScheme::McPara { p: MC_PARA_P },
    ];
    let suite = workload_suite();
    let grid = run_suite(&suite, &schemes, 2000);
    let mut tab = TexTable::new(vec!["Workload", "MINT", "MC-PARA"]);
    let mut sums = [0.0f64; 2];
    for ((name, _), row) in suite.iter().zip(&grid) {
        let vals = [row[1].normalized, row[2].normalized];
        for (s, v) in sums.iter_mut().zip(vals) {
            *s += v;
        }
        tab.row(vec![
            name.clone(),
            format!("{:.4}", vals[0]),
            format!("{:.4}", vals[1]),
        ]);
    }
    let n = suite.len() as f64;
    tab.row(vec![
        "AVG".into(),
        format!("{:.4}", sums[0] / n),
        format!("{:.4}", sums[1] / n),
    ]);
    titled(
        "Fig 17: MINT vs MC-PARA with blocking DRFM (paper: MC-PARA 2-9% slowdown)",
        &tab.to_text(),
    )
}

/// Table VIII: memory energy overheads, averaged over the rate workloads.
#[must_use]
pub fn table8() -> String {
    let model = EnergyModel::ddr5_default();
    let schemes = schemes_fig16();
    let suite: Vec<(String, [WorkloadSpec; 4])> = spec_rate_workloads()
        .into_iter()
        .map(|w| (w.name.to_owned(), [w; 4]))
        .collect();
    let grid = run_suite(&suite, &schemes, 3000);
    let mut act = [0.0f64; 4];
    let mut non_act = [0.0f64; 4];
    let mut total = [0.0f64; 4];
    for row in &grid {
        let base = &row[0];
        let base_e = model.energy(&base.result, base.duration_ps, false);
        for (j, (&scheme, cell)) in schemes.iter().zip(row).enumerate() {
            let with_hw = !matches!(scheme, MitigationScheme::Baseline);
            let e = model.energy(&cell.result, cell.duration_ps, with_hw);
            act[j] += e.act_j / base_e.act_j;
            non_act[j] += e.non_act_j / base_e.non_act_j;
            total[j] += e.total_j() / base_e.total_j();
        }
    }
    let n = grid.len() as f64;
    let mut tab = TexTable::new(vec!["Config", "ACT Energy", "Non-ACT Energy", "Total"]);
    let names = ["Base (No Mitig)", "MINT", "MINT+RFM32", "MINT+RFM16"];
    for j in 0..4 {
        tab.row(vec![
            names[j].into(),
            format!("{:.2}x", act[j] / n),
            format!("{:.2}x", non_act[j] / n),
            format!("{:.2}x", total[j] / n),
        ]);
    }
    titled(
        "Table VIII: memory energy overheads (paper: MINT 1.06x/1.00x/1.01x)",
        &tab.to_text(),
    )
}

/// The workload subset the zoo summary averages over: a memory-intensity
/// spread — two memory-bound, one average, one compute-bound — enough for
/// a meaningful average at zoo scale.
pub const ZOO_WORKLOADS: [&str; 4] = ["lbm", "mcf", "gcc", "povray"];

/// Per-scheme aggregate of the tracker-zoo sweep: storage next to
/// normalized performance, row-hit rate and mitigation traffic. One record
/// per [`MitigationScheme::zoo`] entry, consumed by both the human table
/// ([`tracker_zoo`]) and the machine-readable `BENCH_perf.json`
/// ([`perf_json`]).
#[derive(Debug, Clone, PartialEq)]
pub struct SchemePerfSummary {
    /// Scheme label (e.g. `"MINT+RFM16"`).
    pub label: String,
    /// Tracker entries per bank (0 for stateless schemes).
    pub entries_per_bank: u64,
    /// Tracker SRAM bits per bank (0 for stateless schemes).
    pub sram_bits_per_bank: u64,
    /// Normalized performance averaged over the workload subset
    /// (1.0 = baseline).
    pub normalized_perf: f64,
    /// Row-buffer hit rate over all serviced requests of the subset.
    pub row_hit_rate: f64,
    /// Mitigative ACTs per 1000 demand ACTs.
    pub mitig_acts_per_1k_demand: f64,
    /// RFM + DRFM commands issued across the subset.
    pub rfm_drfm_commands: u64,
}

/// Runs the full zoo over [`ZOO_WORKLOADS`] at `requests_per_core` and
/// aggregates one [`SchemePerfSummary`] per scheme.
#[must_use]
pub fn zoo_perf_summaries(requests_per_core: u32) -> Vec<SchemePerfSummary> {
    let cfg = SystemConfig::table6();
    let schemes = MitigationScheme::zoo();
    let rate = spec_rate_workloads();
    let suite: Vec<[WorkloadSpec; 4]> = ZOO_WORKLOADS
        .iter()
        .map(|n| {
            let w = rate
                .iter()
                .find(|w| w.name == *n)
                .copied()
                .expect("known workload");
            [w; 4]
        })
        .collect();
    let grid = ScenarioGrid::new(cfg)
        .schemes(&schemes)
        .workloads(&suite)
        .requests_per_core(requests_per_core)
        .seed_base(9000)
        .run();

    let mut probe_rng = Xoshiro256StarStar::seed_from_u64(0);
    schemes
        .iter()
        .enumerate()
        .map(|(s, &scheme)| {
            let backend = MitigationBackend::for_scheme(scheme, &cfg, &mut probe_rng);
            let (entries, bits) = backend
                .tracker()
                .map_or((0, 0), |t| (t.entries() as u64, t.storage_bits()));
            let mut perf = 0.0;
            let mut mitig = 0u64;
            let mut demand = 0u64;
            let mut hits = 0u64;
            let mut requests = 0u64;
            let mut cmds = 0u64;
            for row in &grid {
                perf += row[s].normalized;
                mitig += row[s].result.mitigative_acts;
                demand += row[s].result.demand_acts;
                hits += row[s].result.row_hits;
                requests += row[s].result.requests;
                cmds += row[s].result.rfm_commands + row[s].result.drfm_commands;
            }
            SchemePerfSummary {
                label: scheme.label(),
                entries_per_bank: entries,
                sram_bits_per_bank: bits,
                normalized_perf: perf / grid.len() as f64,
                row_hit_rate: hits as f64 / requests.max(1) as f64,
                mitig_acts_per_1k_demand: 1000.0 * mitig as f64 / demand.max(1) as f64,
                rfm_drfm_commands: cmds,
            }
        })
        .collect()
}

/// Renders zoo summaries as the machine-readable `BENCH_perf.json`
/// payload: per-scheme slowdown and row-hit rate (plus the storage and
/// traffic columns), with enough run metadata to interpret the numbers.
/// Records are emitted in the order the summaries were built — for
/// [`zoo_perf_summaries`] that is exactly [`MitigationScheme::zoo`]
/// order, pinned by test so `BENCH_perf.json` diffs stay clean across
/// refactors (a map-keyed rewrite would scramble them).
/// Hand-rendered JSON — the workspace is dependency-free by design.
#[must_use]
pub fn perf_json(summaries: &[SchemePerfSummary], requests_per_core: u32) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"source\": \"figx_tracker_zoo\",\n");
    out.push_str(&format!("  \"requests_per_core\": {requests_per_core},\n"));
    out.push_str(&format!(
        "  \"workloads\": [{}],\n",
        ZOO_WORKLOADS
            .iter()
            .map(|w| format!("\"{w}\""))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    out.push_str("  \"schemes\": [\n");
    let rows: Vec<String> = summaries
        .iter()
        .map(|s| {
            format!(
                "    {{\"scheme\": \"{}\", \"normalized_perf\": {:.6}, \
                 \"slowdown_pct\": {:.4}, \"row_hit_rate\": {:.6}, \
                 \"entries_per_bank\": {}, \"sram_bits_per_bank\": {}, \
                 \"mitig_acts_per_1k_demand\": {:.4}, \"rfm_drfm_commands\": {}}}",
                s.label,
                s.normalized_perf,
                (1.0 - s.normalized_perf) * 100.0,
                s.row_hit_rate,
                s.entries_per_bank,
                s.sram_bits_per_bank,
                s.mitig_acts_per_1k_demand,
                s.rfm_drfm_commands,
            )
        })
        .collect();
    out.push_str(&rows.join(",\n"));
    out.push_str("\n  ]\n}\n");
    out
}

/// Tracker zoo (Table-IX-style): every `MitigationScheme` backed by a
/// `mint_trackers` implementation runs the same workload subset through the
/// memory system; the table reports per-bank storage (entries and SRAM
/// bits) next to normalized performance and the mitigation traffic that
/// produced it.
///
/// The paper's argument in one table: the SRAM-heavy baselines (Graphene,
/// Mithril, ProTRR, PRCT) buy their security with thousands-to-128K
/// entries, MC-PARA buys it with blocking DRFM bank time, and MINT matches
/// them with a single entry and no slowdown.
#[must_use]
pub fn tracker_zoo() -> String {
    tracker_zoo_table(&zoo_perf_summaries(REQUESTS_PER_CORE))
}

/// Renders precomputed zoo summaries as the human-readable table (see
/// [`tracker_zoo`]; split out so `figx_tracker_zoo` can render the table
/// and `BENCH_perf.json` from one sweep).
#[must_use]
pub fn tracker_zoo_table(summaries: &[SchemePerfSummary]) -> String {
    let mut tab = TexTable::new(vec![
        "Scheme",
        "Entries/bank",
        "SRAM bits/bank",
        "Norm. perf",
        "Row-hit rate",
        "Mitig ACTs/1K demand",
        "RFM/DRFM cmds",
    ]);
    for s in summaries {
        tab.row(vec![
            s.label.clone(),
            if s.entries_per_bank == 0 {
                "-".into()
            } else {
                s.entries_per_bank.to_string()
            },
            if s.sram_bits_per_bank == 0 {
                "-".into()
            } else {
                s.sram_bits_per_bank.to_string()
            },
            format!("{:.4}", s.normalized_perf),
            format!("{:.4}", s.row_hit_rate),
            format!("{:.2}", s.mitig_acts_per_1k_demand),
            s.rfm_drfm_commands.to_string(),
        ]);
    }
    titled(
        "Tracker zoo: storage vs performance across the full baseline set \
         (paper Table IX: MINT 15 B vs KB-scale SRAM trackers; in-DRAM schemes 1.000 perf)",
        &tab.to_text(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mint_memsys::{workload_by_name, NormalizedPerf, Sim};

    /// One reduced-size smoke run shared by the tests (the full suite runs
    /// in the binaries).
    fn quick(scheme: MitigationScheme, seed: u64) -> NormalizedPerf {
        let mcf = workload_by_name("mcf").unwrap();
        Sim::ddr5()
            .scheme(scheme)
            .workload(&[mcf; 4], 10_000)
            .seed(seed)
            .run()
            .perf
    }

    #[test]
    fn fig16_shape_on_mcf() {
        let base = quick(MitigationScheme::Baseline, 5);
        let mint = quick(MitigationScheme::Mint, 5).normalize(&base);
        let rfm16 = quick(MitigationScheme::MintRfm { rfm_th: 16 }, 5).normalize(&base);
        assert!((mint.normalized - 1.0).abs() < 1e-9, "{}", mint.normalized);
        assert!(rfm16.normalized <= 1.0);
        assert!(rfm16.normalized > 0.90, "{}", rfm16.normalized);
    }

    #[test]
    fn fig17_shape_on_mcf() {
        // mcf is the worst case: low locality → mostly misses → many DRFM
        // samples, and the shared transaction queue propagates each DRFM
        // stall across cores (the pre-pipeline scalar model kept stalls
        // per-bank, which understated exactly this effect).
        let base = quick(MitigationScheme::Baseline, 6);
        let para = quick(MitigationScheme::McPara { p: MC_PARA_P }, 6).normalize(&base);
        assert!(
            (0.70..0.999).contains(&para.normalized),
            "MC-PARA should cost percents-to-tens-of-percents: {}",
            para.normalized
        );
    }

    #[test]
    fn mitigative_acts_present_for_mint() {
        let mint = quick(MitigationScheme::Mint, 7);
        assert!(mint.result.mitigative_acts > 0);
        let ratio = 1.0 + mint.result.mitigative_acts as f64 / mint.result.demand_acts as f64;
        assert!((1.0..1.6).contains(&ratio), "ACT ratio {ratio}");
    }

    #[test]
    fn perf_json_is_well_formed_and_complete() {
        // A small sweep: the JSON must carry one record per zoo scheme
        // with the slowdown/row-hit fields, balanced braces and no NaNs.
        let summaries = zoo_perf_summaries(2_000);
        assert_eq!(summaries.len(), MitigationScheme::zoo().len());
        let json = perf_json(&summaries, 2_000);
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "balanced braces"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
        assert!(json.contains("\"requests_per_core\": 2000"));
        assert!(!json.contains("NaN") && !json.contains("inf"));
        for scheme in MitigationScheme::zoo() {
            assert!(
                json.contains(&format!("\"scheme\": \"{}\"", scheme.label())),
                "{} missing",
                scheme.label()
            );
        }
        for field in [
            "normalized_perf",
            "slowdown_pct",
            "row_hit_rate",
            "sram_bits_per_bank",
        ] {
            assert_eq!(
                json.matches(field).count(),
                summaries.len(),
                "{field} once per scheme"
            );
        }
        // Baseline leads the zoo and normalizes to exactly 1.0; every
        // in-DRAM scheme matches its timeline.
        assert!((summaries[0].normalized_perf - 1.0).abs() < 1e-12);
        assert!(summaries[0].row_hit_rate > 0.0);
        // The table renderer consumes the same records.
        let table = tracker_zoo_table(&summaries);
        assert!(table.contains("Row-hit rate"));
        assert!(table.contains("MINT+RFM16"));
    }

    #[test]
    fn perf_json_schemes_follow_zoo_order() {
        // The machine-readable artifact must list schemes in the stable
        // `MitigationScheme::zoo()` order — not in the order of some
        // intermediate map — so BENCH_perf.json diffs are clean.
        let summaries = zoo_perf_summaries(1_000);
        let zoo = MitigationScheme::zoo();
        assert_eq!(
            summaries
                .iter()
                .map(|s| s.label.clone())
                .collect::<Vec<_>>(),
            zoo.iter().map(MitigationScheme::label).collect::<Vec<_>>(),
            "summaries must come out in zoo order"
        );
        let json = perf_json(&summaries, 1_000);
        let mut pos = 0;
        for scheme in &zoo {
            let needle = format!("\"scheme\": \"{}\"", scheme.label());
            let at = json[pos..]
                .find(&needle)
                .unwrap_or_else(|| panic!("{} missing or out of zoo order", scheme.label()));
            pos += at + needle.len();
        }
    }

    #[test]
    fn suite_grid_matches_direct_runs() {
        // One workload through the grid == the same runs done by hand.
        let schemes = vec![MitigationScheme::Baseline, MitigationScheme::Mint];
        let grid = {
            let mcf = workload_by_name("mcf").unwrap();
            let specs: Vec<[WorkloadSpec; 4]> = vec![[mcf; 4]];
            ScenarioGrid::new(SystemConfig::table6())
                .schemes(&schemes)
                .workloads(&specs)
                .requests_per_core(10_000)
                .seeds(&[9])
                .run()
        };
        let base = quick(schemes[0], 9);
        let mint = quick(schemes[1], 9).normalize(&base);
        assert_eq!(grid[0][1].duration_ps, mint.duration_ps);
        assert_eq!(grid[0][1].normalized.to_bits(), mint.normalized.to_bits());
    }
}
