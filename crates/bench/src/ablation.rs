//! Ablation studies for the design choices DESIGN.md §7 calls out:
//! DMQ depth, the transitive slot, blast-radius-2 as a (non-)fix for
//! Half-Double, Mithril entry count, and the PrIDE FIFO.

use crate::titled;
use mint_analysis::textable::TexTable;
use mint_attacks::{HalfDouble, PostponementDecoy};
use mint_core::{Dmq, InDramTracker, Mint, MintConfig};
use mint_dram::{RefreshPolicy, RowId};
use mint_exp::par_map;
use mint_rng::Xoshiro256StarStar;
use mint_sim::{Engine, SimConfig};
use mint_trackers::{Mithril, MithrilConfig, Pride};

/// DMQ depth ablation: the §VI-B decoy attack under maximum postponement
/// against MINT+DMQ with FIFO depths 1..=4. DDR5 postpones up to four REFs,
/// so shallower FIFOs drop pseudo-mitigations (overflow) and leak
/// unmitigated activations.
#[must_use]
pub fn dmq_depth() -> String {
    let mut tab = TexTable::new(vec![
        "DMQ depth",
        "Max unmitigated hammers",
        "Overflow drops",
    ]);
    let depths: Vec<usize> = (1..=4).collect();
    for cells in par_map(&depths, |_, &depth| {
        let mut rng = Xoshiro256StarStar::seed_from_u64(7000 + depth as u64);
        let inner = Mint::new(MintConfig::ddr5_default(), &mut rng);
        let mut tracker = Dmq::with_depth(inner, 73, depth);
        let mut attack = PostponementDecoy::new(RowId(10_000), RowId(50_000), 73, 5);
        let cfg = SimConfig::small().with_policy(RefreshPolicy::ddr5_max_postpone());
        let report = Engine::new(cfg).run(&mut tracker, &mut attack, &mut rng);
        vec![
            depth.to_string(),
            report.max_hammers.to_string(),
            tracker.overflow_drops().to_string(),
        ]
    }) {
        tab.row(cells);
    }
    titled(
        "Ablation: DMQ depth under max postponement (DDR5 needs 4)",
        &tab.to_text(),
    )
}

/// Transitive-slot ablation: Half-Double against MINT with and without the
/// SAN = 0 slot, and with a blast-radius-2 device instead — reproducing the
/// §V-E claim that refreshing two rows on either side does *not* mitigate
/// transitive attacks (the third row fails instead).
#[must_use]
pub fn transitive_slot() -> String {
    let mut tab = TexTable::new(vec!["Configuration", "Max unmitigated hammers"]);
    let run = |cfg_t: MintConfig, blast: u32, seed: u64| -> u32 {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        let mut tracker = Mint::new(cfg_t, &mut rng);
        let mut attack = HalfDouble::new(RowId(10_000));
        let cfg = SimConfig {
            blast_radius: blast,
            ..SimConfig::small()
        };
        Engine::new(cfg)
            .run(&mut tracker, &mut attack, &mut rng)
            .max_hammers
    };
    let configs: Vec<(&str, MintConfig, u32, u64)> = vec![
        (
            "MINT, transitive slot (paper design)",
            MintConfig::ddr5_default(),
            1,
            1,
        ),
        (
            "MINT, no transitive slot",
            MintConfig::ddr5_default().without_transitive(),
            1,
            2,
        ),
        (
            "MINT, no transitive slot, blast radius 2",
            MintConfig::ddr5_default().without_transitive(),
            2,
            3,
        ),
    ];
    for cells in par_map(&configs, |_, &(label, cfg_t, blast, seed)| {
        vec![label.into(), run(cfg_t, blast, seed).to_string()]
    }) {
        tab.row(cells);
    }
    titled(
        "Ablation: Half-Double vs the transitive slot (blast-2 does not fix it, SS V-E)",
        &tab.to_text(),
    )
}

/// Mithril entry-count stress: our behavioural Counter-based-Summary
/// implementation against a rotating multi-row attack sized to its table.
/// More entries → tighter bound (the Table III trade-off, measured).
#[must_use]
pub fn mithril_entries() -> String {
    let mut tab = TexTable::new(vec!["Entries", "Attack rows", "Max unmitigated hammers"]);
    let entry_counts = [32usize, 64, 128, 256, 677];
    for cells in par_map(&entry_counts, |_, &entries| {
        let attack_rows = (entries * 2) as u32; // overflow the table 2:1
        let mut rng = Xoshiro256StarStar::seed_from_u64(8000 + entries as u64);
        let mut tracker = Mithril::new(MithrilConfig { entries });
        let mut attack = mint_attacks::ManySided::new(RowId(10_000), attack_rows);
        let report = Engine::new(SimConfig::small()).run(&mut tracker, &mut attack, &mut rng);
        vec![
            entries.to_string(),
            attack_rows.to_string(),
            report.max_hammers.to_string(),
        ]
    }) {
        tab.row(cells);
    }
    titled(
        "Ablation: Mithril counter-based summary vs entry count (2:1 row overflow)",
        &tab.to_text(),
    )
}

/// PrIDE FIFO-depth ablation (§IX): sample-loss rate vs FIFO depth under
/// fully loaded windows. Paper: ~10% loss with the 4-entry FIFO (its
/// single-register figure of 63% counts overwrite losses of the PARA
/// register, i.e. `1 − E[survival] ≈ 0.37` survive; our drop-on-full
/// accounting measures the complementary 37% at depth 1 — the depth-4
/// point, which is PrIDE's actual design, matches).
#[must_use]
pub fn pride_fifo() -> String {
    let mut tab = TexTable::new(vec!["FIFO depth", "Loss rate", "Paper"]);
    let points = [
        (1usize, "63% (overwrite acct.)"),
        (2, "-"),
        (4, "~10%"),
        (8, "-"),
    ];
    for cells in par_map(&points, |_, &(depth, paper)| {
        let mut rng = Xoshiro256StarStar::seed_from_u64(9000 + depth as u64);
        let mut pride = Pride::new(1.0 / 73.0, depth);
        let mut sampled = 0u64;
        for _ in 0..50_000 {
            for k in 0..73u32 {
                let before = pride.queued();
                pride.on_activation(RowId(1000 + k), &mut rng);
                if pride.queued() > before {
                    sampled += 1;
                }
            }
            let _ = pride.on_refresh(&mut rng);
        }
        let total = sampled + pride.lost();
        let loss = pride.lost() as f64 / total as f64;
        vec![
            depth.to_string(),
            format!("{:.1}%", loss * 100.0),
            paper.into(),
        ]
    }) {
        tab.row(cells);
    }
    titled(
        "Ablation: PrIDE FIFO depth vs sample-loss rate (SS IX)",
        &tab.to_text(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dmq_depth_monotone() {
        let s = dmq_depth();
        // Extract the hammer column and check depth 4 ≤ depth 1.
        let vals: Vec<u64> = s
            .lines()
            .skip(3)
            .filter_map(|l| {
                let mut it = l.split_whitespace();
                let _depth = it.next()?;
                it.next()?.parse().ok()
            })
            .collect();
        assert_eq!(vals.len(), 4);
        assert!(
            vals[3] <= vals[0],
            "deeper FIFO must not be worse: {vals:?}"
        );
    }

    #[test]
    fn transitive_ablation_shows_blast2_fails() {
        let s = transitive_slot();
        let vals: Vec<u32> = s
            .lines()
            .filter_map(|l| l.split_whitespace().last()?.parse().ok())
            .collect();
        assert_eq!(vals.len(), 3);
        // Paper design bounded; both ablations leak thousands.
        assert!(vals[0] < 2500, "{vals:?}");
        assert!(vals[1] > 5000, "{vals:?}");
        assert!(vals[2] > 5000, "blast-2 must NOT fix half-double: {vals:?}");
    }

    #[test]
    fn pride_loss_shrinks_with_depth() {
        let s = pride_fifo();
        let rates: Vec<f64> = s
            .lines()
            .filter_map(|l| {
                let c: Vec<&str> = l.split_whitespace().collect();
                if c.len() >= 2 && c[1].ends_with('%') {
                    c[1].trim_end_matches('%').parse().ok()
                } else {
                    None
                }
            })
            .collect();
        assert_eq!(rates.len(), 4);
        assert!(rates[0] > 30.0, "depth-1 drop-on-full loss ≈37%: {rates:?}");
        assert!(rates[2] < 15.0, "depth-4 loss ≈10%: {rates:?}");
        assert!(rates.windows(2).all(|w| w[0] >= w[1] - 0.5), "{rates:?}");
    }
}
