//! Experiment-regeneration harness: one function per table and figure of
//! the MINT paper, each with a thin binary wrapper in `src/bin/` and all of
//! them runnable at once via `repro_all`.
//!
//! Every function returns the rendered table/series as a `String` (the
//! binaries print it), so the regeneration logic is unit-testable and the
//! EXPERIMENTS.md record can be regenerated mechanically:
//!
//! ```bash
//! cargo run --release -p mint-bench --bin repro_all
//! cargo run --release -p mint-bench --bin table3_tracker_comparison
//! ```
//!
//! Sweeps and Monte-Carlo batches fan out through the `mint-exp` harness
//! (order-preserving, so rendered tables are byte-identical for any worker
//! count); every binary accepts `--jobs N` / `MINT_JOBS` to pin
//! parallelism.
//!
//! Micro-benchmarks for the simulator itself (tracker per-ACT cost,
//! Sariou–Wolman solver, Monte-Carlo engine, memory controller) live in
//! `benches/`, on the dependency-free `mint_exp::stopwatch` timer.

pub mod ablation;
pub mod params;
pub mod perf;
pub mod redteam;
pub mod security;
pub mod throughput;

use mint_analysis::{MinTrhSolver, TargetMttf};

/// The solver every security experiment shares: 10,000-year target,
/// 32 ms tREFW.
#[must_use]
pub fn default_solver() -> MinTrhSolver {
    MinTrhSolver::new(TargetMttf::paper_default(), 0.032)
}

/// Formats a threshold the way the paper does: raw below 10K (`"2763"`),
/// one rounded decimal in the 10K–100K band with a round number of K
/// shown bare (`"21.3K"`, `"10K"`), and whole rounded K at or above 100K
/// (`"478K"`).
#[must_use]
pub fn fmt_trh(v: u32) -> String {
    if v < 10_000 {
        v.to_string()
    } else if v < 100_000 {
        let tenths_of_k = (v + 50) / 100;
        if tenths_of_k % 10 == 0 {
            format!("{}K", tenths_of_k / 10)
        } else {
            format!("{}.{}K", tenths_of_k / 10, tenths_of_k % 10)
        }
    } else {
        format!("{}K", (v + 500) / 1000)
    }
}

/// Renders a titled experiment block.
#[must_use]
pub fn titled(title: &str, body: &str) -> String {
    format!("== {title} ==\n{body}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_trh_bands() {
        assert_eq!(fmt_trh(356), "356");
        assert_eq!(fmt_trh(2763), "2763");
        assert_eq!(fmt_trh(21_300), "21.3K");
        assert_eq!(fmt_trh(478_296), "478K");
    }

    #[test]
    fn fmt_trh_1k_to_10k_stays_raw() {
        // The doc comment promises raw rendering all the way up to 10K.
        assert_eq!(fmt_trh(999), "999");
        assert_eq!(fmt_trh(1000), "1000");
        assert_eq!(fmt_trh(1001), "1001");
        assert_eq!(fmt_trh(9999), "9999");
    }

    #[test]
    fn fmt_trh_10k_boundary() {
        assert_eq!(fmt_trh(10_000), "10K", "round K values drop the decimal");
        assert_eq!(fmt_trh(10_050), "10.1K", "rounded to one decimal");
        assert_eq!(fmt_trh(10_049), "10K", "rounds down to a whole K");
    }

    #[test]
    fn fmt_trh_100k_boundary_is_consistent() {
        // Approaching 100K from below must agree with the >= 100K band:
        // 99_950 rounds to 100.0K, which renders "100K", not "100.0K".
        assert_eq!(fmt_trh(99_949), "99.9K");
        assert_eq!(fmt_trh(99_950), "100K");
        assert_eq!(fmt_trh(100_000), "100K");
        assert_eq!(fmt_trh(100_499), "100K");
        assert_eq!(fmt_trh(100_500), "101K", ">= 100K rounds, not truncates");
        assert_eq!(fmt_trh(478_500), "479K");
    }

    #[test]
    fn titled_includes_both() {
        let s = titled("T", "body");
        assert!(s.contains("== T ==") && s.contains("body"));
    }
}
