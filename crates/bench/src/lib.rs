//! Experiment-regeneration harness: one function per table and figure of
//! the MINT paper, each with a thin binary wrapper in `src/bin/` and all of
//! them runnable at once via `repro_all`.
//!
//! Every function returns the rendered table/series as a `String` (the
//! binaries print it), so the regeneration logic is unit-testable and the
//! EXPERIMENTS.md record can be regenerated mechanically:
//!
//! ```bash
//! cargo run --release -p mint-bench --bin repro_all
//! cargo run --release -p mint-bench --bin table3_tracker_comparison
//! ```
//!
//! Criterion micro-benchmarks for the simulator itself (tracker per-ACT
//! cost, Sariou–Wolman solver, Monte-Carlo engine, memory controller) live
//! in `benches/`.

pub mod ablation;
pub mod params;
pub mod perf;
pub mod security;

use mint_analysis::{MinTrhSolver, TargetMttf};

/// The solver every security experiment shares: 10,000-year target,
/// 32 ms tREFW.
#[must_use]
pub fn default_solver() -> MinTrhSolver {
    MinTrhSolver::new(TargetMttf::paper_default(), 0.032)
}

/// Formats a threshold the way the paper does: raw below 10K, `x.xK`
/// above 1000 when round, `xK` for large counts.
#[must_use]
pub fn fmt_trh(v: u32) -> String {
    if v >= 100_000 {
        format!("{}K", v / 1000)
    } else if v >= 10_000 {
        format!("{:.1}K", v as f64 / 1000.0)
    } else {
        v.to_string()
    }
}

/// Renders a titled experiment block.
#[must_use]
pub fn titled(title: &str, body: &str) -> String {
    format!("== {title} ==\n{body}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_trh_bands() {
        assert_eq!(fmt_trh(356), "356");
        assert_eq!(fmt_trh(2763), "2763");
        assert_eq!(fmt_trh(21_300), "21.3K");
        assert_eq!(fmt_trh(478_296), "478K");
    }

    #[test]
    fn titled_includes_both() {
        let s = titled("T", "body");
        assert!(s.contains("== T ==") && s.contains("body"));
    }
}
