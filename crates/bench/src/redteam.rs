//! Red-team experiments: the scheme × pattern escape grid and
//! performance-under-attack, end-to-end through the command-level channel.
//!
//! This is the cycle-level counterpart of the analytical security tables:
//! every zoo scheme faces the paper's worst-case direct patterns mounted
//! by `mint_redteam::AttackSource`, the `GroundTruthOracle` judges the
//! attained hammer counts against a TRH grid, and a per-scheme co-run
//! (core 0 hammering, the other cores running a benign workload) measures
//! how much each scheme's mitigation machinery costs the *victims* — the
//! DAPPER-style resilience axis. Rendered as a human table
//! ([`redteam_table`]) and the machine-readable `BENCH_security.json`
//! ([`security_json`]), both in [`MitigationScheme::zoo`] order so bench
//! diffs stay clean.

use crate::titled;
use mint_analysis::textable::TexTable;
use mint_attacks::{redteam_patterns, PatternSpec};
use mint_memsys::backend::max_act_per_trefi;
use mint_memsys::{MitigationScheme, TelemetryReport};
use mint_redteam::{redteam_sweep, RedteamConfig, RedteamReport};

/// The canonical pattern grid for a config: the §V-D direct patterns from
/// [`mint_attacks::redteam_patterns`], based at the config's base row.
#[must_use]
pub fn patterns(rc: &RedteamConfig) -> Vec<PatternSpec> {
    redteam_patterns(
        rc.base_row,
        u32::try_from(max_act_per_trefi()).expect("MaxACT fits u32"),
    )
}

/// Runs the full campaign for `rc`: every zoo scheme × every canonical
/// pattern, plus per-scheme benign slowdown (zoo order throughout).
#[must_use]
pub fn redteam_report(rc: &RedteamConfig) -> RedteamReport {
    redteam_sweep(rc, &MitigationScheme::zoo(), &patterns(rc))
}

/// Renders the campaign as the human-readable tables (escape grid +
/// benign slowdown).
#[must_use]
pub fn redteam_table(report: &RedteamReport) -> String {
    let mut header = vec!["Scheme".to_owned(), "Pattern".to_owned()];
    header.push("ACTs".into());
    header.push("MaxHammer".into());
    for trh in &report.trh_grid {
        header.push(format!("Margin@{trh}"));
    }
    header.push("VictimRefs".into());
    header.push("RFM/DRFM".into());
    let mut tab = TexTable::new(header);
    for c in &report.cells {
        let mut row = vec![
            c.scheme_label.clone(),
            c.pattern.to_owned(),
            c.summary.demand_acts.to_string(),
            c.summary.max_hammers.to_string(),
        ];
        for v in &c.verdicts {
            row.push(if v.escaped {
                format!("{} (ESCAPE x{})", v.margin_acts, v.escape_rows.len())
            } else {
                format!("{}", v.margin_acts)
            });
        }
        row.push(c.summary.victim_refreshes.to_string());
        row.push(format!(
            "{}/{}",
            c.summary.rfm_commands, c.summary.drfm_commands
        ));
        tab.row(row);
    }
    let escape_grid = titled(
        "Red-team escape grid: ground-truth max hammer counts vs TRH \
         (negative margin = the oracle saw rows cross the threshold)",
        &tab.to_text(),
    );

    let mut slow = TexTable::new(vec![
        "Scheme",
        "Benign finish (ms)",
        "Slowdown under attack",
    ]);
    for s in &report.slowdowns {
        slow.row(vec![
            s.scheme_label.clone(),
            format!("{:.3}", s.benign_finish_ps as f64 / 1e9),
            format!("{:.4}x", s.slowdown),
        ]);
    }
    let slowdown = titled(
        "Performance under attack: benign-core slowdown while core 0 hammers \
         (1.0x = mitigation machinery costs the victims nothing)",
        &slow.to_text(),
    );
    format!("{escape_grid}\n\n{slowdown}")
}

/// Renders the campaign as the machine-readable `BENCH_security.json`
/// payload: scheme-major in zoo order, one record per pattern cell with
/// its per-TRH verdicts, plus the per-scheme benign slowdown.
/// Hand-rendered JSON — the workspace is dependency-free by design.
#[must_use]
pub fn security_json(report: &RedteamReport, rc: &RedteamConfig) -> String {
    let first_trh = report.trh_grid.first().copied().unwrap_or(0);
    let mut out = String::from("{\n");
    out.push_str("  \"source\": \"figx_redteam\",\n");
    out.push_str(&format!("  \"attack_refis\": {},\n", rc.attack_refis));
    out.push_str(&format!("  \"corun_refis\": {},\n", rc.corun_refis));
    out.push_str(&format!("  \"target_bank\": {},\n", rc.target_bank));
    out.push_str(&format!(
        "  \"trh_grid\": [{}],\n",
        report
            .trh_grid
            .iter()
            .map(u32::to_string)
            .collect::<Vec<_>>()
            .join(", ")
    ));
    out.push_str(&format!(
        "  \"any_escape\": {},\n",
        report.trh_grid.iter().any(|&t| report.any_escape_at(t))
    ));
    out.push_str(&format!(
        "  \"any_positive_margin\": {},\n",
        report
            .trh_grid
            .iter()
            .any(|&t| report.any_positive_margin_at(t))
    ));
    out.push_str(&format!(
        "  \"any_escape_at_device_trh\": {},\n",
        report.any_escape_at(first_trh)
    ));
    out.push_str("  \"schemes\": [\n");
    let mut scheme_rows = Vec::new();
    for s in &report.slowdowns {
        let mut rec = format!("    {{\"scheme\": \"{}\", \"cells\": [\n", s.scheme_label);
        let cells: Vec<String> = report
            .cells
            .iter()
            .filter(|c| c.scheme_label == s.scheme_label)
            .map(|c| {
                let verdicts: Vec<String> = c
                    .verdicts
                    .iter()
                    .map(|v| {
                        format!(
                            "{{\"trh\": {}, \"escaped\": {}, \"margin_acts\": {}, \
                             \"escape_rows\": {}, \"near_miss_rows\": {}}}",
                            v.trh,
                            v.escaped,
                            v.margin_acts,
                            v.escape_rows.len(),
                            v.near_miss_rows.len(),
                        )
                    })
                    .collect();
                format!(
                    "      {{\"pattern\": \"{}\", \"max_hammers\": {}, \"hottest_row\": {}, \
                     \"demand_acts\": {}, \"victim_refreshes\": {}, \"rfm_commands\": {}, \
                     \"drfm_commands\": {}, \"verdicts\": [{}]}}",
                    c.pattern,
                    c.summary.max_hammers,
                    c.summary.hottest_row,
                    c.summary.demand_acts,
                    c.summary.victim_refreshes,
                    c.summary.rfm_commands,
                    c.summary.drfm_commands,
                    verdicts.join(", "),
                )
            })
            .collect();
        rec.push_str(&cells.join(",\n"));
        // `mitigation_induced_slowdown` is the benign-core cost the
        // scheme's machinery adds under attack, as a fraction over the
        // baseline co-run (0 = free, 0.05 = victims run 5% longer) —
        // the DAPPER-style perf-attack axis in one number.
        rec.push_str(&format!(
            "\n    ], \"benign_slowdown_under_attack\": {:.6}, \"benign_finish_ps\": {}, \
             \"mitigation_induced_slowdown\": {:.6}}}",
            s.slowdown,
            s.benign_finish_ps,
            s.slowdown - 1.0,
        ));
        scheme_rows.push(rec);
    }
    out.push_str(&scheme_rows.join(",\n"));
    out.push_str("\n  ]\n}\n");
    out
}

/// The campaign's ground-truth traffic accounting as one obs
/// [`TelemetryReport`]: a `{scheme}/{pattern}` section per security cell
/// built from the oracle's [`OracleSummary::to_section`] ledger — the
/// red-team edge of the observability stack, rendered to JSON/CSV/
/// Prometheus by the same `mint-obs` machinery as the simulator's own
/// telemetry.
///
/// [`OracleSummary::to_section`]: mint_redteam::OracleSummary::to_section
#[must_use]
pub fn oracle_telemetry(report: &RedteamReport) -> TelemetryReport {
    let mut out = TelemetryReport::new();
    for c in &report.cells {
        out.push(
            c.summary
                .to_section(&format!("{}/{}", c.scheme_label, c.pattern)),
        );
    }
    out
}

/// The `repro_all` entry: full campaign at bench scale, rendered tables.
#[must_use]
pub fn redteam() -> String {
    redteam_table(&redteam_report(&RedteamConfig::default_sweep()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_report() -> (RedteamReport, RedteamConfig) {
        let rc = RedteamConfig::quick();
        // A scheme subset keeps the test in seconds while covering every
        // backend family: none, in-DRAM, MC-sampling, MC-tracker, RFM.
        let schemes = [
            MitigationScheme::Baseline,
            MitigationScheme::Mint,
            MitigationScheme::MintRfm { rfm_th: 16 },
            MitigationScheme::McPara { p: 1.0 / 40.0 },
            MitigationScheme::Prct,
        ];
        let report = redteam_sweep(&rc, &schemes, &patterns(&rc));
        (report, rc)
    }

    #[test]
    fn grid_has_escapes_and_positive_margins() {
        let (report, rc) = quick_report();
        let low = rc.trh_grid[0];
        assert!(
            report.any_escape_at(low),
            "the unmitigated baseline must escape TRH {low}"
        );
        assert!(
            report.any_positive_margin_at(low),
            "some scheme must hold TRH {low}"
        );
        // Baseline specifically escapes; PRCT specifically holds.
        let base_p3 = report
            .cells
            .iter()
            .find(|c| c.scheme_label == "Baseline" && c.pattern == "pattern-3")
            .unwrap();
        assert!(base_p3.verdicts[0].escaped);
        let prct_p3 = report
            .cells
            .iter()
            .find(|c| c.scheme_label == "PRCT" && c.pattern == "pattern-3")
            .unwrap();
        assert!(prct_p3.verdicts[0].margin_acts > 0);
    }

    #[test]
    fn json_is_well_formed_and_in_zoo_order() {
        let (report, rc) = quick_report();
        let json = security_json(&report, &rc);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
        assert!(!json.contains("NaN") && !json.contains("inf"));
        assert!(json.contains("\"any_escape\": true"));
        assert!(json.contains("\"any_positive_margin\": true"));
        // Scheme records appear in the order the sweep ran them (zoo
        // order when called through `redteam_report`).
        let labels = ["Baseline", "MINT", "MINT+RFM16", "MC-PARA(1/40)", "PRCT"];
        let mut pos = 0;
        for l in labels {
            let needle = format!("\"scheme\": \"{l}\"");
            let at = json[pos..].find(&needle).unwrap_or_else(|| {
                panic!("{l} missing or out of order");
            });
            pos += at + needle.len();
        }
        // One cell per pattern per scheme, each with the full TRH grid.
        assert_eq!(
            json.matches("\"pattern\": ").count(),
            labels.len() * patterns(&rc).len()
        );
        assert_eq!(
            json.matches("\"trh\": ").count(),
            labels.len() * patterns(&rc).len() * rc.trh_grid.len()
        );
        // Every scheme carries its slowdown and the derived
        // mitigation-induced column.
        assert_eq!(
            json.matches("benign_slowdown_under_attack").count(),
            labels.len()
        );
        assert_eq!(
            json.matches("mitigation_induced_slowdown").count(),
            labels.len()
        );
        assert!(
            json.contains("\"mitigation_induced_slowdown\": 0.000000"),
            "the baseline induces nothing by construction"
        );
    }

    #[test]
    fn oracle_telemetry_carries_one_section_per_cell() {
        let (report, rc) = quick_report();
        let t = oracle_telemetry(&report);
        assert_eq!(t.sections.len(), report.cells.len());
        // The unmitigated pattern-1 cell: one demand ACT per tREFI,
        // nothing mitigative.
        assert_eq!(
            t.counter("Baseline/pattern-1", "demand_acts"),
            Some(rc.attack_refis)
        );
        assert_eq!(t.counter("Baseline/pattern-1", "victim_refreshes"), Some(0));
        // MINT mitigates; its ledger shows the victim refreshes.
        assert!(t.counter("MINT/pattern-2", "victim_refreshes").unwrap() > 0);
        // And the rendered forms carry the sections through.
        assert!(t.to_json().contains("\"Baseline/pattern-1\""));
        assert!(t
            .to_prometheus()
            .contains("mint_Baseline_pattern_1_demand_acts"));
    }

    #[test]
    fn table_renders_escapes_and_slowdowns() {
        let (report, _) = quick_report();
        let table = redteam_table(&report);
        assert!(table.contains("ESCAPE"), "baseline escapes must be marked");
        assert!(table.contains("Slowdown under attack"));
        assert!(table.contains("pattern-2-multi"));
    }

    #[test]
    fn drfm_heavy_schemes_slow_benign_cores_under_attack() {
        // The attacker triggers MC-PARA DRFM storms in the shared
        // channel; the benign cores must finish no earlier than under
        // the baseline (and the baseline normalizes to exactly 1).
        let (report, _) = quick_report();
        assert!((report.slowdowns[0].slowdown - 1.0).abs() < 1e-12);
        let para = report
            .slowdowns
            .iter()
            .find(|s| s.scheme_label.starts_with("MC-PARA"))
            .unwrap();
        assert!(
            para.slowdown >= 1.0,
            "MC-PARA under attack cannot speed victims up: {}",
            para.slowdown
        );
    }
}
