//! Pins the batch-mode CLI contract of `run_scenario`: a malformed
//! scenario file reports a line-numbered `ScenarioParseError` on stderr
//! and exits non-zero (nothing is printed to stdout and no artifact is
//! written).

use std::process::Command;

fn bad_scn(name: &str, text: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("mint-{name}-{}.scn", std::process::id()));
    std::fs::write(&path, text).expect("write temp scenario");
    path
}

#[test]
fn malformed_scenario_files_exit_nonzero_with_a_line_number() {
    let path = bad_scn(
        "bad-requests",
        "scheme = mint\nworkload = mcf\nrequests = a_lot\n",
    );
    let out = Command::new(env!("CARGO_BIN_EXE_run_scenario"))
        .arg(&path)
        .output()
        .expect("spawn run_scenario");
    std::fs::remove_file(&path).ok();
    assert_eq!(out.status.code(), Some(2), "malformed specs exit 2");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("scenario line 3") && stderr.contains("bad requests"),
        "stderr names the offending line: {stderr}"
    );
    assert!(
        out.stdout.is_empty(),
        "no table or artifact note on stdout: {}",
        String::from_utf8_lossy(&out.stdout)
    );
}

#[test]
fn unknown_schemes_are_reported_with_their_line() {
    let path = bad_scn("bad-scheme", "workload = lbm\nscheme = mnit\n");
    let out = Command::new(env!("CARGO_BIN_EXE_run_scenario"))
        .arg(&path)
        .output()
        .expect("spawn run_scenario");
    std::fs::remove_file(&path).ok();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("scenario line 2") && stderr.contains("unknown scheme"),
        "stderr: {stderr}"
    );
}

#[test]
fn missing_arguments_print_usage_and_exit_2() {
    let out = Command::new(env!("CARGO_BIN_EXE_run_scenario"))
        .output()
        .expect("spawn run_scenario");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("usage:") && stderr.contains("--serve"),
        "{stderr}"
    );
}
