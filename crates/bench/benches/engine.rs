//! Micro-benchmarks for the Monte-Carlo engine: full-tREFW attack runs.
//! Timed with the dependency-free `mint_exp::stopwatch`.

use mint_attacks::{Pattern2, SingleSided};
use mint_core::{Mint, MintConfig};
use mint_dram::RowId;
use mint_exp::stopwatch::{black_box, Runner};
use mint_rng::Xoshiro256StarStar;
use mint_sim::{Engine, SimConfig};

fn main() {
    let mut runner = Runner::new("sim_engine");

    runner.bench("mint_single_sided_one_refw", || {
        let mut rng = Xoshiro256StarStar::seed_from_u64(1);
        let mut t = Mint::new(MintConfig::ddr5_default(), &mut rng);
        let mut p = SingleSided::new(RowId(1000));
        let mut e = Engine::new(SimConfig::small());
        black_box(e.run(&mut t, &mut p, &mut rng));
    });

    runner.bench("mint_pattern2_one_refw", || {
        let mut rng = Xoshiro256StarStar::seed_from_u64(2);
        let mut t = Mint::new(MintConfig::ddr5_default(), &mut rng);
        let mut p = Pattern2::new(RowId(1000), 73, 73);
        let mut e = Engine::new(SimConfig::small());
        black_box(e.run(&mut t, &mut p, &mut rng));
    });
}
