//! Criterion benchmarks for the Monte-Carlo engine: full-tREFW attack runs.

use criterion::{criterion_group, criterion_main, Criterion};
use mint_attacks::{Pattern2, SingleSided};
use mint_core::{Mint, MintConfig};
use mint_dram::RowId;
use mint_rng::Xoshiro256StarStar;
use mint_sim::{Engine, SimConfig};
use std::hint::black_box;

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_engine");
    group.sample_size(10);

    group.bench_function("mint_single_sided_one_refw", |b| {
        b.iter(|| {
            let mut rng = Xoshiro256StarStar::seed_from_u64(1);
            let mut t = Mint::new(MintConfig::ddr5_default(), &mut rng);
            let mut p = SingleSided::new(RowId(1000));
            let mut e = Engine::new(SimConfig::small());
            black_box(e.run(&mut t, &mut p, &mut rng))
        })
    });

    group.bench_function("mint_pattern2_one_refw", |b| {
        b.iter(|| {
            let mut rng = Xoshiro256StarStar::seed_from_u64(2);
            let mut t = Mint::new(MintConfig::ddr5_default(), &mut rng);
            let mut p = Pattern2::new(RowId(1000), 73, 73);
            let mut e = Engine::new(SimConfig::small());
            black_box(e.run(&mut t, &mut p, &mut rng))
        })
    });

    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
