//! Criterion micro-benchmarks: per-tREFI cost of every tracker
//! (73 activations + one refresh decision).

use criterion::{criterion_group, criterion_main, Criterion};
use mint_core::{Dmq, InDramTracker, Mint, MintConfig, MintRfm};
use mint_dram::RowId;
use mint_rng::Xoshiro256StarStar;
use mint_trackers::{
    InDramPara, InDramParaNoOverwrite, Mithril, MithrilConfig, Parfm, Prct, Pride, ProTrr,
    ProTrrConfig, SimpleTrr,
};
use std::hint::black_box;

fn one_trefi(tracker: &mut dyn InDramTracker, rng: &mut Xoshiro256StarStar) {
    for k in 0..73u32 {
        let _ = tracker.on_activation(RowId(1000 + k), rng);
    }
    black_box(tracker.on_refresh(rng));
}

fn bench_trackers(c: &mut Criterion) {
    let mut group = c.benchmark_group("tracker_per_trefi");
    let mut rng = Xoshiro256StarStar::seed_from_u64(1);

    let mut mint = Mint::new(MintConfig::ddr5_default(), &mut rng);
    group.bench_function("MINT", |b| b.iter(|| one_trefi(&mut mint, &mut rng)));

    let mut dmq = Dmq::new(Mint::new(MintConfig::ddr5_default(), &mut rng), 73);
    group.bench_function("MINT+DMQ", |b| b.iter(|| one_trefi(&mut dmq, &mut rng)));

    let mut rfm = MintRfm::new(16, &mut rng);
    group.bench_function("MINT+RFM16", |b| b.iter(|| one_trefi(&mut rfm, &mut rng)));

    let mut para = InDramPara::new(1.0 / 73.0);
    group.bench_function("InDRAM-PARA", |b| b.iter(|| one_trefi(&mut para, &mut rng)));

    let mut para_no = InDramParaNoOverwrite::new(1.0 / 73.0);
    group.bench_function("InDRAM-PARA-NoOverwrite", |b| {
        b.iter(|| one_trefi(&mut para_no, &mut rng))
    });

    let mut parfm = Parfm::new(73);
    group.bench_function("PARFM", |b| b.iter(|| one_trefi(&mut parfm, &mut rng)));

    let mut prct = Prct::new(128 * 1024);
    group.bench_function("PRCT", |b| b.iter(|| one_trefi(&mut prct, &mut rng)));

    let mut mithril = Mithril::new(MithrilConfig::table3());
    group.bench_function("Mithril-677", |b| b.iter(|| one_trefi(&mut mithril, &mut rng)));

    let mut protrr = ProTrr::new(ProTrrConfig::default());
    group.bench_function("ProTRR-677", |b| b.iter(|| one_trefi(&mut protrr, &mut rng)));

    let mut trr = SimpleTrr::new(16);
    group.bench_function("TRR-16", |b| b.iter(|| one_trefi(&mut trr, &mut rng)));

    let mut pride = Pride::new(1.0 / 73.0, 4);
    group.bench_function("PrIDE", |b| b.iter(|| one_trefi(&mut pride, &mut rng)));

    group.finish();
}

criterion_group!(benches, bench_trackers);
criterion_main!(benches);
