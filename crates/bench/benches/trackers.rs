//! Micro-benchmarks: per-tREFI cost of every tracker (73 activations +
//! one refresh decision). Timed with the dependency-free
//! `mint_exp::stopwatch`.

use mint_core::{Dmq, InDramTracker, Mint, MintConfig, MintRfm};
use mint_dram::RowId;
use mint_exp::stopwatch::{black_box, Runner};
use mint_rng::Xoshiro256StarStar;
use mint_trackers::{
    InDramPara, InDramParaNoOverwrite, Mithril, MithrilConfig, Parfm, Prct, Pride, ProTrr,
    ProTrrConfig, SimpleTrr,
};

fn one_trefi(tracker: &mut dyn InDramTracker, rng: &mut Xoshiro256StarStar) {
    for k in 0..73u32 {
        let _ = tracker.on_activation(RowId(1000 + k), rng);
    }
    black_box(tracker.on_refresh(rng));
}

fn main() {
    let mut runner = Runner::new("tracker_per_trefi");
    let mut rng = Xoshiro256StarStar::seed_from_u64(1);

    let mut mint = Mint::new(MintConfig::ddr5_default(), &mut rng);
    let mut dmq = Dmq::new(Mint::new(MintConfig::ddr5_default(), &mut rng), 73);
    let mut rfm = MintRfm::new(16, &mut rng);
    let mut para = InDramPara::new(1.0 / 73.0);
    let mut para_no = InDramParaNoOverwrite::new(1.0 / 73.0);
    let mut parfm = Parfm::new(73);
    let mut prct = Prct::new(128 * 1024);
    let mut mithril = Mithril::new(MithrilConfig::table3());
    let mut protrr = ProTrr::new(ProTrrConfig::default());
    let mut trr = SimpleTrr::new(16);
    let mut pride = Pride::new(1.0 / 73.0, 4);

    let mut cases: Vec<(&str, &mut dyn InDramTracker)> = vec![
        ("MINT", &mut mint),
        ("MINT+DMQ", &mut dmq),
        ("MINT+RFM16", &mut rfm),
        ("InDRAM-PARA", &mut para),
        ("InDRAM-PARA-NoOverwrite", &mut para_no),
        ("PARFM", &mut parfm),
        ("PRCT", &mut prct),
        ("Mithril-677", &mut mithril),
        ("ProTRR-677", &mut protrr),
        ("TRR-16", &mut trr),
        ("PrIDE", &mut pride),
    ];
    for (name, tracker) in &mut cases {
        runner.bench(name, || one_trefi(&mut **tracker, &mut rng));
    }
}
