//! Micro-benchmarks for the analytical models: the Sariou–Wolman
//! recurrence, the MinTRH binary search, the feinting simulation and the
//! ADA sweep. Timed with the dependency-free `mint_exp::stopwatch`.

use mint_analysis::ada::AdaConfig;
use mint_analysis::feint::feinting_attack;
use mint_analysis::patterns::pattern2_min_trh;
use mint_analysis::{MinTrhSolver, SwModel, TargetMttf};
use mint_exp::stopwatch::{black_box, Runner};

fn solver() -> MinTrhSolver {
    MinTrhSolver::new(TargetMttf::paper_default(), 0.032)
}

fn main() {
    let mut runner = Runner::new("analysis");

    let m = SwModel {
        p_mitigation: 1.0 / 74.0,
        threshold_events: 2800,
        events_per_refw: 8192,
        refi_per_event: 1.0,
        row_multiplier: 73.0,
    };
    runner.bench("sw_failure_prob_T2800", || {
        black_box(m.failure_prob_refw());
    });

    let s = solver();
    runner.bench("pattern2_min_trh_k73", || {
        black_box(pattern2_min_trh(&s, 73, 73, 74));
    });

    runner.bench("feinting_attack_8192", || {
        black_box(feinting_attack(8192, 73, 8192));
    });

    let cfg = AdaConfig::mint_default();
    runner.bench("ada_min_trh_at_mp", || {
        black_box(cfg.min_trh_at_mp(&s, 2600, true));
    });
}
