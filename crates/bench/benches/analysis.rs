//! Criterion benchmarks for the analytical models: the Sariou–Wolman
//! recurrence, the MinTRH binary search, the feinting simulation and the
//! ADA sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use mint_analysis::ada::AdaConfig;
use mint_analysis::feint::feinting_attack;
use mint_analysis::patterns::pattern2_min_trh;
use mint_analysis::{MinTrhSolver, SwModel, TargetMttf};
use std::hint::black_box;

fn solver() -> MinTrhSolver {
    MinTrhSolver::new(TargetMttf::paper_default(), 0.032)
}

fn bench_analysis(c: &mut Criterion) {
    let mut group = c.benchmark_group("analysis");

    group.bench_function("sw_failure_prob_T2800", |b| {
        let m = SwModel {
            p_mitigation: 1.0 / 74.0,
            threshold_events: 2800,
            events_per_refw: 8192,
            refi_per_event: 1.0,
            row_multiplier: 73.0,
        };
        b.iter(|| black_box(m.failure_prob_refw()))
    });

    group.bench_function("pattern2_min_trh_k73", |b| {
        let s = solver();
        b.iter(|| black_box(pattern2_min_trh(&s, 73, 73, 74)))
    });

    group.bench_function("feinting_attack_8192", |b| {
        b.iter(|| black_box(feinting_attack(8192, 73, 8192)))
    });

    group.bench_function("ada_min_trh_at_mp", |b| {
        let s = solver();
        let cfg = AdaConfig::mint_default();
        b.iter(|| black_box(cfg.min_trh_at_mp(&s, 2600, true)))
    });

    group.finish();
}

criterion_group!(benches, bench_analysis);
criterion_main!(benches);
