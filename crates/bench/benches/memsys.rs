//! Micro-benchmarks for the memory-system simulator.
//! Timed with the dependency-free `mint_exp::stopwatch`.

use mint_exp::stopwatch::{black_box, Runner};
use mint_memsys::{run_workload, spec_rate_workloads, MitigationScheme, SystemConfig};

fn main() {
    let mut runner = Runner::new("memsys");
    let cfg = SystemConfig::table6();
    let mcf = spec_rate_workloads()
        .into_iter()
        .find(|w| w.name == "mcf")
        .unwrap();

    runner.bench("mcf_rate_baseline_40k", || {
        black_box(run_workload(
            &cfg,
            MitigationScheme::Baseline,
            &[mcf; 4],
            40_000,
            1,
        ));
    });

    runner.bench("mcf_rate_rfm16_40k", || {
        black_box(run_workload(
            &cfg,
            MitigationScheme::MintRfm { rfm_th: 16 },
            &[mcf; 4],
            40_000,
            1,
        ));
    });
}
