//! Criterion benchmarks for the memory-system simulator.

use criterion::{criterion_group, criterion_main, Criterion};
use mint_memsys::{run_workload, spec_rate_workloads, MitigationScheme, SystemConfig};
use std::hint::black_box;

fn bench_memsys(c: &mut Criterion) {
    let mut group = c.benchmark_group("memsys");
    group.sample_size(10);
    let cfg = SystemConfig::table6();
    let mcf = spec_rate_workloads()
        .into_iter()
        .find(|w| w.name == "mcf")
        .unwrap();

    group.bench_function("mcf_rate_baseline_40k", |b| {
        b.iter(|| {
            black_box(run_workload(
                &cfg,
                MitigationScheme::Baseline,
                &[mcf; 4],
                40_000,
                1,
            ))
        })
    });

    group.bench_function("mcf_rate_rfm16_40k", |b| {
        b.iter(|| {
            black_box(run_workload(
                &cfg,
                MitigationScheme::MintRfm { rfm_th: 16 },
                &[mcf; 4],
                40_000,
                1,
            ))
        })
    });

    group.finish();
}

criterion_group!(benches, bench_memsys);
criterion_main!(benches);
