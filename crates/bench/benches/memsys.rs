//! Micro-benchmarks for the memory-system simulator.
//! Timed with the dependency-free `mint_exp::stopwatch`.

use mint_exp::stopwatch::{black_box, Runner};
use mint_memsys::{workload_by_name, MitigationScheme, Sim};

fn main() {
    let mut runner = Runner::new("memsys");
    let mcf = workload_by_name("mcf").unwrap();

    runner.bench("mcf_rate_baseline_40k", || {
        black_box(Sim::ddr5().workload(&[mcf; 4], 40_000).seed(1).run());
    });

    runner.bench("mcf_rate_rfm16_40k", || {
        black_box(
            Sim::ddr5()
                .scheme(MitigationScheme::MintRfm { rfm_th: 16 })
                .workload(&[mcf; 4], 40_000)
                .seed(1)
                .run(),
        );
    });
}
