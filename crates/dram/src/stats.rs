//! Aggregate event counters for a bank.

/// Counts of the disturbance-relevant events a [`Bank`](crate::Bank) has
/// processed. All counters are cumulative since construction or the last
/// [`reset`](crate::Bank::reset).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BankStats {
    /// Demand (attacker/workload-visible) activations.
    pub demand_acts: u64,
    /// Silent activations: victim refreshes and other invisible ACTs.
    pub silent_acts: u64,
    /// Individual victim-row refreshes performed by mitigations.
    pub victim_refreshes: u64,
    /// Rows cleared by the background auto-refresh sweep.
    pub auto_refreshes: u64,
    /// Aggressor mitigations applied (each refreshes `2×blast_radius` rows).
    pub mitigations: u64,
    /// Transitive mitigations applied (paper §V-E).
    pub transitive_mitigations: u64,
}

impl BankStats {
    /// Total activations of any kind (demand + silent).
    #[must_use]
    pub fn total_acts(&self) -> u64 {
        self.demand_acts + self.silent_acts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_add_up() {
        let s = BankStats {
            demand_acts: 10,
            silent_acts: 4,
            ..BankStats::default()
        };
        assert_eq!(s.total_acts(), 14);
    }

    #[test]
    fn default_is_zeroed() {
        let s = BankStats::default();
        assert_eq!(s.total_acts(), 0);
        assert_eq!(s.mitigations, 0);
    }
}
