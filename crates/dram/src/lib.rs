//! DDR5 device model for Rowhammer security simulation.
//!
//! This crate is the substrate beneath every security experiment in the MINT
//! reproduction. It models exactly the part of a DRAM device that matters to
//! the paper's analysis:
//!
//! * **Timing parameters** ([`DdrTimings`], paper Table I) and the derived
//!   security parameters ([`SecurityParams`]) — most importantly `MaxACT`,
//!   the number of activations that fit in one tREFI (73 for DDR5-5200B).
//! * **Per-row hammer accounting** ([`Bank`]) — every activation of a row
//!   adds one *hammer* to each neighbour within the blast radius; refreshing
//!   a row clears its hammer count; a row whose count reaches the Rowhammer
//!   threshold (TRH) without an intervening refresh is a *failure*.
//! * **Victim refreshes are themselves activations** — a mitigation that
//!   refreshes the victims of an aggressor silently activates those victim
//!   rows, hammering *their* neighbours. This is what enables transitive
//!   (Half-Double) attacks, and the model captures it faithfully.
//! * **The refresh engine** ([`RefreshSchedule`]) — timely refresh (one REF
//!   per tREFI) or DDR5 refresh postponement (up to four postponed REFs,
//!   batches of five).
//!
//! The model is deliberately *event-counted*, not cycle-accurate: MINT's
//! security argument is combinatorial over (ACT, REF) sequences, so counting
//! slots within tREFI intervals exercises the same logic a cycle-accurate
//! model would, at a fraction of the cost. Cycle-level performance modelling
//! lives in the separate `mint-memsys` crate.
//!
//! # Examples
//!
//! ```
//! use mint_dram::{Bank, BankConfig, RowId};
//!
//! let mut bank = Bank::new(BankConfig { rows: 1024, blast_radius: 1, trh: Some(100) });
//! for _ in 0..99 {
//!     bank.demand_activate(RowId(10));
//! }
//! assert_eq!(bank.hammers(RowId(11)), 99);
//! bank.victim_refresh(RowId(11)); // mitigation clears the victim
//! assert_eq!(bank.hammers(RowId(11)), 0);
//! assert!(bank.failures().is_empty());
//! ```

mod bank;
mod params;
mod refresh;
mod row;
mod stats;

pub use bank::{Bank, BankConfig, FailureRecord};
pub use params::{
    DdrTimings, MitigationRate, SecurityParams, DDR5_REFI_PER_REFW, DDR5_ROWS_PER_BANK,
};
pub use refresh::{RefreshEvent, RefreshPolicy, RefreshSchedule, MAX_POSTPONED_REFS};
pub use row::RowId;
pub use stats::BankStats;
