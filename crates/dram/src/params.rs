//! DDR5 timing parameters (paper Table I) and derived security parameters.

use std::fmt;

/// Number of tREFI intervals per tREFW refresh window.
///
/// The paper (and the DDR5 standard's 8192-cycle refresh) uses 8192
/// throughout: all rows are refreshed once per tREFW, spread over 8192 REF
/// commands.
pub const DDR5_REFI_PER_REFW: u32 = 8192;

/// Rows per bank in the evaluated 32 Gb configuration (paper Table VI).
pub const DDR5_ROWS_PER_BANK: u32 = 128 * 1024;

/// Raw DDR5 timing parameters, as in paper Table I (DDR5-5200B, 32 Gb).
///
/// # Examples
///
/// ```
/// use mint_dram::DdrTimings;
/// let t = DdrTimings::ddr5_5200b();
/// assert_eq!(t.max_act(), 73);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DdrTimings {
    /// Refresh window: every row refreshed once per this period (ns).
    pub t_refw_ns: f64,
    /// Interval between REF commands (ns).
    pub t_refi_ns: f64,
    /// Execution time of one REF command (ns).
    pub t_rfc_ns: f64,
    /// Minimum time between successive ACTs to the same bank (ns).
    pub t_rc_ns: f64,
    /// Minimum time between ACTs to *different bank groups* (ns).
    pub t_rrd_s_ns: f64,
    /// Minimum time between ACTs within the *same bank group* (ns).
    pub t_rrd_l_ns: f64,
    /// Four-activate window: at most 4 ACTs per rank within this span (ns).
    pub t_faw_ns: f64,
    /// Minimum CAS-to-CAS spacing across bank groups (ns).
    pub t_ccd_s_ns: f64,
    /// Minimum CAS-to-CAS spacing within a bank group (ns).
    pub t_ccd_l_ns: f64,
}

impl DdrTimings {
    /// The paper's default: DDR5-5200B speed bin with 32 Gb devices
    /// (Table I: tREFW 32 ms, tREFI 3900 ns, tRFC 410 ns, tRC 48 ns).
    ///
    /// The inter-bank constraints follow the DDR5-5200 speed bin at
    /// tCK ≈ 0.3846 ns (tRRD_S 8 nCK ≈ 3.1 ns, tRRD_L/tCCD_L 5 ns,
    /// tCCD_S 8 nCK); the paper's Table I omits them because the security
    /// analysis only needs MaxACT, but the command-level memory system
    /// consumes them. tFAW is deliberately 13.3 ns (≈ 34.6 nCK), slightly
    /// above the JEDEC minimum of 32 nCK = exactly 4 × tRRD_S: at the
    /// minimum the rolling four-activate window would never bind (four
    /// tRRD_S-spaced ACTs already span it), so the value is inflated just
    /// past 4 × tRRD_S to keep the constraint — and its tests — live.
    /// `inter_bank_timings_are_consistent` pins this ordering.
    #[must_use]
    pub fn ddr5_5200b() -> Self {
        Self {
            t_refw_ns: 32.0e6,
            t_refi_ns: 3900.0,
            t_rfc_ns: 410.0,
            t_rc_ns: 48.0,
            t_rrd_s_ns: 3.1,
            t_rrd_l_ns: 5.0,
            t_faw_ns: 13.3,
            t_ccd_s_ns: 3.1,
            t_ccd_l_ns: 5.0,
        }
    }

    /// Maximum demand activations per tREFI:
    /// `MaxACT = (tREFI − tRFC) / tRC`, rounded to the nearest integer
    /// (the paper reports 73 for the default parameters; the raw quotient is
    /// 72.7).
    ///
    /// # Panics
    ///
    /// Panics if the timings are degenerate (`tREFI <= tRFC` or
    /// `tRC <= 0`).
    #[must_use]
    pub fn max_act(&self) -> u32 {
        assert!(
            self.t_refi_ns > self.t_rfc_ns && self.t_rc_ns > 0.0,
            "degenerate DDR timings: tREFI must exceed tRFC and tRC must be positive"
        );
        ((self.t_refi_ns - self.t_rfc_ns) / self.t_rc_ns).round() as u32
    }

    /// Number of tREFI intervals in one tREFW window (the paper's 8192).
    #[must_use]
    pub fn refi_per_refw(&self) -> u32 {
        DDR5_REFI_PER_REFW
    }

    /// tREFW expressed in seconds.
    #[must_use]
    pub fn t_refw_secs(&self) -> f64 {
        self.t_refw_ns * 1e-9
    }
}

impl Default for DdrTimings {
    fn default() -> Self {
        Self::ddr5_5200b()
    }
}

/// How often the in-DRAM mitigation engine gets to act.
///
/// The paper's default is one mitigation per tREFI (§II-E); Table V also
/// evaluates one per two tREFI and RFM-boosted rates where a mitigation
/// opportunity arises every `N` activations (RFM32, RFM16).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MitigationRate {
    /// One mitigation at every REF (1× in Table V).
    #[default]
    OnePerRefi,
    /// One mitigation every two REFs (0.5× in Table V).
    OnePerTwoRefi,
    /// RFM co-design: a mitigation opportunity every `rfm_th` activations
    /// (≈`MaxACT / rfm_th`× in Table V; 32 → ≈2×, 16 → ≈4×).
    PerActivations(u32),
}

impl MitigationRate {
    /// The number of activation slots in one *mitigation window* — the
    /// interval between two consecutive mitigation opportunities. MINT draws
    /// its SAN uniformly over these slots (plus the transitive slot 0).
    ///
    /// For [`OnePerRefi`](Self::OnePerRefi) this is `MaxACT` (73);
    /// for [`OnePerTwoRefi`](Self::OnePerTwoRefi) it is `2 × MaxACT` (146);
    /// for RFM it is the RFM threshold itself.
    #[must_use]
    pub fn window_slots(&self, max_act: u32) -> u32 {
        match *self {
            MitigationRate::OnePerRefi => max_act,
            MitigationRate::OnePerTwoRefi => 2 * max_act,
            MitigationRate::PerActivations(n) => n,
        }
    }

    /// Human-readable rate relative to the 1× baseline, e.g. `"1x"`, `"0.5x"`.
    #[must_use]
    pub fn label(&self, max_act: u32) -> String {
        match *self {
            MitigationRate::OnePerRefi => "1x (one per tREFI)".to_owned(),
            MitigationRate::OnePerTwoRefi => "0.5x (one per two tREFI)".to_owned(),
            MitigationRate::PerActivations(n) => {
                format!("{:.0}x (RFM{})", max_act as f64 / n as f64, n)
            }
        }
    }
}

/// The parameters the security analysis actually consumes, decoupled from raw
/// nanosecond timings so that sweeps (e.g. Appendix A's MaxACT sweep) are
/// expressed directly.
///
/// # Examples
///
/// ```
/// use mint_dram::SecurityParams;
/// let p = SecurityParams::ddr5_default();
/// assert_eq!(p.max_act, 73);
/// assert_eq!(p.refi_per_refw, 8192);
/// assert_eq!(p.acts_per_refw(), 73 * 8192);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SecurityParams {
    /// Maximum demand ACTs per tREFI (`M` in the paper; 73 by default).
    pub max_act: u32,
    /// tREFI intervals per tREFW window (8192).
    pub refi_per_refw: u32,
    /// Rows per bank (128K in Table VI).
    pub rows_per_bank: u32,
    /// Blast radius: victims refreshed on either side of an aggressor (1).
    pub blast_radius: u32,
    /// Mitigation opportunity rate.
    pub rate: MitigationRate,
    /// tREFW in seconds (needed to convert failure probability to MTTF).
    pub t_refw_secs: f64,
}

impl SecurityParams {
    /// The paper's default configuration (Table I + §II-E defaults).
    #[must_use]
    pub fn ddr5_default() -> Self {
        let t = DdrTimings::ddr5_5200b();
        Self {
            max_act: t.max_act(),
            refi_per_refw: t.refi_per_refw(),
            rows_per_bank: DDR5_ROWS_PER_BANK,
            blast_radius: 1,
            rate: MitigationRate::OnePerRefi,
            t_refw_secs: t.t_refw_secs(),
        }
    }

    /// Builds security parameters from raw timings, with the remaining
    /// fields at the paper defaults.
    #[must_use]
    pub fn from_timings(t: &DdrTimings) -> Self {
        Self {
            max_act: t.max_act(),
            refi_per_refw: t.refi_per_refw(),
            rows_per_bank: DDR5_ROWS_PER_BANK,
            blast_radius: 1,
            rate: MitigationRate::OnePerRefi,
            t_refw_secs: t.t_refw_secs(),
        }
    }

    /// Returns a copy with a different `MaxACT` (Appendix A sweep).
    #[must_use]
    pub fn with_max_act(mut self, max_act: u32) -> Self {
        self.max_act = max_act;
        self
    }

    /// Returns a copy with a different mitigation rate (Table V sweep).
    #[must_use]
    pub fn with_rate(mut self, rate: MitigationRate) -> Self {
        self.rate = rate;
        self
    }

    /// Total demand activation slots in one tREFW window.
    #[must_use]
    pub fn acts_per_refw(&self) -> u64 {
        u64::from(self.max_act) * u64::from(self.refi_per_refw)
    }

    /// Slots per mitigation window at the configured rate.
    #[must_use]
    pub fn window_slots(&self) -> u32 {
        self.rate.window_slots(self.max_act)
    }

    /// Rows auto-refreshed per tREFI (`rows_per_bank / refi_per_refw`,
    /// minimum 1).
    #[must_use]
    pub fn auto_rows_per_refi(&self) -> u32 {
        (self.rows_per_bank / self.refi_per_refw).max(1)
    }

    /// tREFW windows per year, for MTTF conversion.
    #[must_use]
    pub fn refw_per_year(&self) -> f64 {
        const SECS_PER_YEAR: f64 = 365.25 * 24.0 * 3600.0;
        SECS_PER_YEAR / self.t_refw_secs
    }
}

impl Default for SecurityParams {
    fn default() -> Self {
        Self::ddr5_default()
    }
}

impl fmt::Display for SecurityParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SecurityParams {{ MaxACT={}, tREFI/tREFW={}, rows={}, blast={}, rate={} }}",
            self.max_act,
            self.refi_per_refw,
            self.rows_per_bank,
            self.blast_radius,
            self.rate.label(self.max_act)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_max_act_is_73() {
        assert_eq!(DdrTimings::ddr5_5200b().max_act(), 73);
    }

    #[test]
    fn inter_bank_timings_are_consistent() {
        // The command-level memory system relies on these orderings:
        // same-group ACT spacing is the stricter RRD, the FAW window binds
        // tighter than four back-to-back short RRDs (so it is not dead
        // code), and every inter-bank constraint is far below tRC.
        let t = DdrTimings::ddr5_5200b();
        assert!(t.t_rrd_l_ns >= t.t_rrd_s_ns);
        assert!(t.t_ccd_l_ns >= t.t_ccd_s_ns);
        assert!(t.t_faw_ns > 4.0 * t.t_rrd_s_ns);
        assert!(t.t_faw_ns < t.t_rc_ns);
    }

    #[test]
    fn max_act_full_ddr5_range() {
        // Appendix A: across all 44 DDR5 speed bins MaxACT spans ~67..78.
        let fast = DdrTimings {
            t_refi_ns: 3900.0,
            t_rfc_ns: 350.0,
            t_rc_ns: 46.0,
            ..DdrTimings::ddr5_5200b()
        };
        let slow = DdrTimings {
            t_refi_ns: 3900.0,
            t_rfc_ns: 410.0,
            t_rc_ns: 52.0,
            ..DdrTimings::ddr5_5200b()
        };
        assert!(fast.max_act() >= 75);
        assert!(slow.max_act() <= 68);
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn degenerate_timings_panic() {
        let t = DdrTimings {
            t_refi_ns: 100.0,
            t_rfc_ns: 200.0,
            ..DdrTimings::ddr5_5200b()
        };
        let _ = t.max_act();
    }

    #[test]
    fn mitigation_rate_window_slots() {
        assert_eq!(MitigationRate::OnePerRefi.window_slots(73), 73);
        assert_eq!(MitigationRate::OnePerTwoRefi.window_slots(73), 146);
        assert_eq!(MitigationRate::PerActivations(32).window_slots(73), 32);
        assert_eq!(MitigationRate::PerActivations(16).window_slots(73), 16);
    }

    #[test]
    fn rate_labels() {
        assert!(MitigationRate::OnePerRefi.label(73).starts_with("1x"));
        assert!(MitigationRate::OnePerTwoRefi.label(73).starts_with("0.5x"));
        assert!(MitigationRate::PerActivations(32)
            .label(73)
            .contains("RFM32"));
    }

    #[test]
    fn default_params_consistent() {
        let p = SecurityParams::ddr5_default();
        assert_eq!(p.acts_per_refw(), 598_016);
        assert_eq!(p.auto_rows_per_refi(), 16);
        assert_eq!(p.window_slots(), 73);
        // ~985 million tREFW windows per year at 32 ms.
        let per_year = p.refw_per_year();
        assert!((9.8e8..9.95e8).contains(&per_year), "{per_year}");
    }

    #[test]
    fn with_builders() {
        let p = SecurityParams::ddr5_default()
            .with_max_act(80)
            .with_rate(MitigationRate::PerActivations(16));
        assert_eq!(p.max_act, 80);
        assert_eq!(p.window_slots(), 16);
    }

    #[test]
    fn display_nonempty() {
        let s = SecurityParams::ddr5_default().to_string();
        assert!(s.contains("MaxACT=73"));
    }
}
