//! Row identifiers and neighbourhood arithmetic.

use std::fmt;

/// Identifies a DRAM row within a bank.
///
/// The paper notes that DRAM vendors use proprietary internal row mappings;
/// the security analysis is mapping-agnostic, so we use logical row numbers
/// throughout (see DESIGN.md §2). The public field keeps construction
/// ergonomic in tests and attack generators: `RowId(42)`.
///
/// # Examples
///
/// ```
/// use mint_dram::RowId;
/// let r = RowId(100);
/// assert_eq!(r.offset(2), Some(RowId(102)));
/// assert_eq!(r.offset(-2), Some(RowId(98)));
/// assert_eq!(RowId(1).offset(-2), None); // falls off the edge of the bank
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct RowId(pub u32);

impl RowId {
    /// Returns the row `delta` positions away, or `None` if that would fall
    /// outside the non-negative row space. Callers that also know the bank
    /// size should additionally bound-check against it (see
    /// [`Bank::contains`](crate::Bank::contains)).
    #[must_use]
    pub fn offset(self, delta: i64) -> Option<RowId> {
        let v = i64::from(self.0) + delta;
        if (0..=i64::from(u32::MAX)).contains(&v) {
            Some(RowId(v as u32))
        } else {
            None
        }
    }

    /// Iterates over the rows within `radius` of `self` on both sides,
    /// excluding `self`, clipped at the low edge of the row space.
    ///
    /// For `radius = 1` this yields the classic victim pair `r−1, r+1`.
    pub fn neighbours(self, radius: u32) -> impl Iterator<Item = RowId> {
        let radius = i64::from(radius);
        (-radius..=radius)
            .filter(|&d| d != 0)
            .filter_map(move |d| self.offset(d))
    }

    /// The value as a `usize` index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for RowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "row#{}", self.0)
    }
}

impl From<u32> for RowId {
    fn from(v: u32) -> Self {
        RowId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn neighbours_radius_one() {
        let n: Vec<RowId> = RowId(10).neighbours(1).collect();
        assert_eq!(n, vec![RowId(9), RowId(11)]);
    }

    #[test]
    fn neighbours_radius_two() {
        let n: Vec<RowId> = RowId(10).neighbours(2).collect();
        assert_eq!(n, vec![RowId(8), RowId(9), RowId(11), RowId(12)]);
    }

    #[test]
    fn neighbours_clip_at_zero() {
        let n: Vec<RowId> = RowId(0).neighbours(1).collect();
        assert_eq!(n, vec![RowId(1)]);
        let n: Vec<RowId> = RowId(1).neighbours(2).collect();
        assert_eq!(n, vec![RowId(0), RowId(2), RowId(3)]);
    }

    #[test]
    fn neighbours_radius_zero_is_empty() {
        assert_eq!(RowId(5).neighbours(0).count(), 0);
    }

    #[test]
    fn offset_edges() {
        assert_eq!(RowId(u32::MAX).offset(1), None);
        assert_eq!(RowId(0).offset(-1), None);
        assert_eq!(RowId(0).offset(0), Some(RowId(0)));
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(RowId(3).to_string(), "row#3");
    }
}
