//! Per-row hammer accounting for one DRAM bank.

use crate::stats::BankStats;
use crate::RowId;

/// Configuration for a [`Bank`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BankConfig {
    /// Number of rows in the bank.
    pub rows: u32,
    /// Victim rows refreshed on either side of a mitigated aggressor.
    pub blast_radius: u32,
    /// Rowhammer threshold: if a row accumulates this many hammers without a
    /// refresh, a [`FailureRecord`] is logged. `None` disables checking
    /// (useful when only maxima are of interest).
    pub trh: Option<u32>,
}

impl Default for BankConfig {
    fn default() -> Self {
        Self {
            rows: crate::DDR5_ROWS_PER_BANK,
            blast_radius: 1,
            trh: None,
        }
    }
}

/// A Rowhammer failure: a row reached the threshold without a refresh.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailureRecord {
    /// The victim row that accumulated `hammers` disturbances.
    pub row: RowId,
    /// Hammer count at the moment the threshold was crossed.
    pub hammers: u32,
    /// Simulation timestamp (whatever unit the driver uses; the security
    /// simulator passes the global ACT index).
    pub at: u64,
}

/// A single DRAM bank modelled at the granularity the Rowhammer analysis
/// needs: a hammer counter per row.
///
/// Semantics (see DESIGN.md §4):
///
/// * [`demand_activate`](Self::demand_activate) — a normal ACT: each row
///   within the blast radius gains one hammer.
/// * [`victim_refresh`](Self::victim_refresh) — refreshing a row clears its
///   hammer counter **and silently activates it**, hammering *its*
///   neighbours. This is the mechanism behind Half-Double/transitive attacks.
/// * [`auto_refresh_step`](Self::auto_refresh_step) — the background refresh
///   sweep; clears counters without the activation side-effect (the per-row
///   rate of one activation per 32 ms is negligible and conventionally
///   ignored, matching the Sariou–Wolman model's treatment).
///
/// The bank records the first time each row crosses the configured TRH in
/// [`failures`](Self::failures) and tracks the all-time maximum hammer count
/// for bound-style experiments.
#[derive(Debug, Clone)]
pub struct Bank {
    config: BankConfig,
    hammers: Vec<u32>,
    /// Rows that already failed (so each row is reported at most once).
    failed: Vec<bool>,
    failures: Vec<FailureRecord>,
    auto_ptr: u32,
    max_hammers_ever: u32,
    now: u64,
    stats: BankStats,
}

impl Bank {
    /// Creates a bank with all hammer counters at zero.
    ///
    /// # Panics
    ///
    /// Panics if `config.rows == 0`.
    #[must_use]
    pub fn new(config: BankConfig) -> Self {
        assert!(config.rows > 0, "bank must have at least one row");
        Self {
            hammers: vec![0; config.rows as usize],
            failed: vec![false; config.rows as usize],
            failures: Vec::new(),
            auto_ptr: 0,
            max_hammers_ever: 0,
            now: 0,
            stats: BankStats::default(),
            config,
        }
    }

    /// The bank configuration.
    #[must_use]
    pub fn config(&self) -> &BankConfig {
        &self.config
    }

    /// Whether `row` is a valid row of this bank.
    #[must_use]
    pub fn contains(&self, row: RowId) -> bool {
        row.0 < self.config.rows
    }

    /// Current hammer count of `row` (0 for out-of-range rows).
    #[must_use]
    pub fn hammers(&self, row: RowId) -> u32 {
        self.hammers.get(row.index()).copied().unwrap_or(0)
    }

    /// Largest hammer count any row ever reached.
    #[must_use]
    pub fn max_hammers_ever(&self) -> u32 {
        self.max_hammers_ever
    }

    /// All threshold crossings recorded so far (each row at most once).
    #[must_use]
    pub fn failures(&self) -> &[FailureRecord] {
        &self.failures
    }

    /// Aggregate event counters.
    #[must_use]
    pub fn stats(&self) -> &BankStats {
        &self.stats
    }

    /// Advances the bank's notion of time (used only to timestamp failures).
    pub fn set_time(&mut self, now: u64) {
        self.now = now;
    }

    /// A demand activation of `row`: restores `row`'s own charge (an
    /// activation rewrites the row's cells, clearing its accumulated
    /// disturbance) and hammers every neighbour within the blast radius.
    ///
    /// # Panics
    ///
    /// Panics if `row` is outside the bank.
    pub fn demand_activate(&mut self, row: RowId) {
        assert!(self.contains(row), "{row} out of range");
        self.stats.demand_acts += 1;
        self.hammers[row.index()] = 0; // self-restore
        self.hammer_neighbours(row);
    }

    /// A *silent* activation: identical disturbance effect to a demand ACT,
    /// but accounted separately. Victim refreshes use this internally; it is
    /// public so attack code can model other silent-activation channels.
    ///
    /// # Panics
    ///
    /// Panics if `row` is outside the bank.
    pub fn silent_activate(&mut self, row: RowId) {
        assert!(self.contains(row), "{row} out of range");
        self.stats.silent_acts += 1;
        self.hammers[row.index()] = 0; // self-restore
        self.hammer_neighbours(row);
    }

    /// Refreshes a single row as part of a mitigation: clears its hammer
    /// counter, then silently activates it (disturbing *its* neighbours).
    /// Out-of-range rows are ignored (mitigating row 0 has only one victim).
    pub fn victim_refresh(&mut self, row: RowId) {
        if !self.contains(row) {
            return;
        }
        self.stats.victim_refreshes += 1;
        self.hammers[row.index()] = 0;
        self.stats.silent_acts += 1;
        self.hammer_neighbours(row);
    }

    /// Applies a full aggressor mitigation: refreshes every row within
    /// `blast_radius` of `aggressor` on both sides.
    pub fn mitigate_aggressor(&mut self, aggressor: RowId) {
        self.stats.mitigations += 1;
        let radius = self.config.blast_radius;
        for victim in aggressor.neighbours(radius) {
            self.victim_refresh(victim);
        }
    }

    /// Applies a *transitive* mitigation at `distance` (paper §V-E): for
    /// distance 1 this refreshes the victims-of-victims (e.g. rows `r±2` for
    /// blast radius 1) rather than the direct victims.
    pub fn mitigate_transitive(&mut self, aggressor: RowId, distance: u32) {
        self.stats.transitive_mitigations += 1;
        let reach = i64::from(self.config.blast_radius) + i64::from(distance);
        for side in [-1i64, 1] {
            if let Some(victim) = aggressor.offset(side * reach) {
                self.victim_refresh(victim);
            }
        }
    }

    /// One tREFI's worth of the background auto-refresh sweep: clears the
    /// hammer counters of the next `rows_per_step` rows (wrapping).
    pub fn auto_refresh_step(&mut self, rows_per_step: u32) {
        for _ in 0..rows_per_step {
            let r = self.auto_ptr as usize;
            self.hammers[r] = 0;
            self.stats.auto_refreshes += 1;
            self.auto_ptr = (self.auto_ptr + 1) % self.config.rows;
        }
    }

    /// Clears all hammer state, failures and statistics (a fresh tREFW-style
    /// reset for reuse across Monte-Carlo trials).
    pub fn reset(&mut self) {
        self.hammers.fill(0);
        self.failed.fill(false);
        self.failures.clear();
        self.auto_ptr = 0;
        self.max_hammers_ever = 0;
        self.now = 0;
        self.stats = BankStats::default();
    }

    fn hammer_neighbours(&mut self, row: RowId) {
        let radius = self.config.blast_radius;
        let rows = self.config.rows;
        for victim in row.neighbours(radius) {
            if victim.0 >= rows {
                continue;
            }
            let h = &mut self.hammers[victim.index()];
            *h += 1;
            if *h > self.max_hammers_ever {
                self.max_hammers_ever = *h;
            }
            if let Some(trh) = self.config.trh {
                if *h >= trh && !self.failed[victim.index()] {
                    self.failed[victim.index()] = true;
                    self.failures.push(FailureRecord {
                        row: victim,
                        hammers: *h,
                        at: self.now,
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_bank(trh: Option<u32>) -> Bank {
        Bank::new(BankConfig {
            rows: 64,
            blast_radius: 1,
            trh,
        })
    }

    #[test]
    fn demand_act_hammers_both_neighbours() {
        let mut b = small_bank(None);
        b.demand_activate(RowId(10));
        assert_eq!(b.hammers(RowId(9)), 1);
        assert_eq!(b.hammers(RowId(11)), 1);
        assert_eq!(b.hammers(RowId(10)), 0);
    }

    #[test]
    fn edge_row_has_single_victim() {
        let mut b = small_bank(None);
        b.demand_activate(RowId(0));
        assert_eq!(b.hammers(RowId(1)), 1);
        b.demand_activate(RowId(63));
        assert_eq!(b.hammers(RowId(62)), 1);
        // Nothing beyond the top edge was touched (would have panicked on
        // index otherwise), and stats counted both.
        assert_eq!(b.stats().demand_acts, 2);
    }

    #[test]
    fn double_sided_accumulates_on_shared_victim() {
        let mut b = small_bank(None);
        for _ in 0..50 {
            b.demand_activate(RowId(20));
            b.demand_activate(RowId(22));
        }
        assert_eq!(b.hammers(RowId(21)), 100);
        assert_eq!(b.hammers(RowId(19)), 50);
        assert_eq!(b.hammers(RowId(23)), 50);
    }

    #[test]
    fn victim_refresh_clears_and_silently_hammers() {
        let mut b = small_bank(None);
        for _ in 0..5 {
            b.demand_activate(RowId(30)); // hammers 29 and 31
        }
        b.victim_refresh(RowId(31));
        assert_eq!(b.hammers(RowId(31)), 0);
        // The refresh of 31 is an activation of 31: rows 30 and 32 got hit.
        assert_eq!(b.hammers(RowId(30)), 1);
        assert_eq!(b.hammers(RowId(32)), 1);
        assert_eq!(b.stats().victim_refreshes, 1);
    }

    #[test]
    fn mitigate_aggressor_refreshes_blast_radius() {
        let mut b = small_bank(None);
        for _ in 0..9 {
            b.demand_activate(RowId(40));
        }
        assert_eq!(b.hammers(RowId(39)), 9);
        b.mitigate_aggressor(RowId(40));
        assert_eq!(b.hammers(RowId(39)), 0);
        assert_eq!(b.hammers(RowId(41)), 0);
        // Refreshes of 39 and 41 each hammered row 40 once, and rows 38/42.
        assert_eq!(b.hammers(RowId(40)), 2);
        assert_eq!(b.hammers(RowId(38)), 1);
        assert_eq!(b.hammers(RowId(42)), 1);
    }

    #[test]
    fn transitive_attack_mechanism_is_modelled() {
        // Paper Fig 12(a): hammering C and mitigating it each time silently
        // hammers A and E via the victim refreshes of B and D.
        let mut b = small_bank(None);
        let c = RowId(10);
        for _ in 0..100 {
            b.demand_activate(c);
            b.mitigate_aggressor(c); // refreshes B(9) and D(11)
        }
        // A (row 8) was hammered once per mitigation by B's refresh.
        assert_eq!(b.hammers(RowId(8)), 100);
        assert_eq!(b.hammers(RowId(12)), 100);
        // B and D never accumulate: refreshed every round, then re-hammered
        // once by the *other* victim's refresh... (C's refreshes of B and D
        // happen in order: B first, clearing B, then D; D's refresh hammers
        // C and E only, so B keeps just the hammer from C's next ACT.)
        assert!(b.hammers(RowId(9)) <= 2);
    }

    #[test]
    fn transitive_mitigation_reaches_distance_two() {
        let mut b = small_bank(None);
        for _ in 0..7 {
            b.demand_activate(RowId(20));
            b.mitigate_aggressor(RowId(20));
        }
        assert_eq!(b.hammers(RowId(18)), 7);
        b.mitigate_transitive(RowId(20), 1);
        assert_eq!(b.hammers(RowId(18)), 0);
        assert_eq!(b.hammers(RowId(22)), 0);
        assert_eq!(b.stats().transitive_mitigations, 1);
    }

    #[test]
    fn failure_recorded_once_at_threshold() {
        let mut b = small_bank(Some(10));
        for i in 0..25u64 {
            b.set_time(i);
            b.demand_activate(RowId(5));
        }
        let fails = b.failures();
        // Rows 4 and 6 each crossed at hammer 10 (time index 9).
        assert_eq!(fails.len(), 2);
        assert!(fails.iter().all(|f| f.hammers == 10 && f.at == 9));
        assert_eq!(b.max_hammers_ever(), 25);
    }

    #[test]
    fn auto_refresh_sweep_wraps_and_clears() {
        let mut b = small_bank(None);
        for r in 0..64u32 {
            if r != 5 {
                // hammer every row a bit via its neighbour
            }
        }
        for _ in 0..10 {
            b.demand_activate(RowId(33));
        }
        // Sweep the whole bank in 4 steps of 16.
        for _ in 0..4 {
            b.auto_refresh_step(16);
        }
        assert_eq!(b.hammers(RowId(32)), 0);
        assert_eq!(b.hammers(RowId(34)), 0);
        assert_eq!(b.stats().auto_refreshes, 64);
        // Pointer wrapped; another step refreshes row 0 again without panic.
        b.auto_refresh_step(16);
        assert_eq!(b.stats().auto_refreshes, 80);
    }

    #[test]
    fn reset_restores_pristine_state() {
        let mut b = small_bank(Some(3));
        for _ in 0..5 {
            b.demand_activate(RowId(7));
        }
        assert!(!b.failures().is_empty());
        b.reset();
        assert!(b.failures().is_empty());
        assert_eq!(b.max_hammers_ever(), 0);
        assert_eq!(b.hammers(RowId(6)), 0);
        assert_eq!(b.stats().demand_acts, 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn demand_activate_out_of_range_panics() {
        let mut b = small_bank(None);
        b.demand_activate(RowId(64));
    }

    #[test]
    fn blast_radius_two() {
        let mut b = Bank::new(BankConfig {
            rows: 64,
            blast_radius: 2,
            trh: None,
        });
        b.demand_activate(RowId(10));
        for r in [8u32, 9, 11, 12] {
            assert_eq!(b.hammers(RowId(r)), 1, "row {r}");
        }
        assert_eq!(b.hammers(RowId(7)), 0);
        assert_eq!(b.hammers(RowId(13)), 0);
    }
}
