//! REF scheduling: timely refresh and DDR5 refresh postponement (paper §VI).

/// DDR5 allows at most this many REF commands to be postponed (§VI).
pub const MAX_POSTPONED_REFS: u32 = 4;

/// How the memory controller schedules REF commands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RefreshPolicy {
    /// One REF at the end of every tREFI (the paper's default until §VI).
    #[default]
    Timely,
    /// Maximum postponement: REFs are delayed as long as the standard allows
    /// and issued in a batch of `1 + postponed` at every `(postponed + 1)`-th
    /// boundary (paper Fig 14: batches of 5 with up to 365 ACTs between).
    ///
    /// `postponed` must be in `1..=MAX_POSTPONED_REFS`.
    MaxPostpone {
        /// Number of postponed REFs per batch (4 for the DDR5 maximum).
        postponed: u32,
    },
}

impl RefreshPolicy {
    /// The DDR5 worst case: 4 postponed REFs, batches of 5.
    #[must_use]
    pub fn ddr5_max_postpone() -> Self {
        RefreshPolicy::MaxPostpone {
            postponed: MAX_POSTPONED_REFS,
        }
    }

    /// Number of REF commands due at the end of tREFI interval `refi_index`
    /// (0-based). Under [`Timely`](Self::Timely) this is always 1; under
    /// maximum postponement it is 0 except at every `(postponed+1)`-th
    /// boundary where the whole batch is issued.
    ///
    /// # Panics
    ///
    /// Panics if `postponed` is 0 or exceeds [`MAX_POSTPONED_REFS`].
    #[must_use]
    pub fn refs_due(&self, refi_index: u64) -> u32 {
        match *self {
            RefreshPolicy::Timely => 1,
            RefreshPolicy::MaxPostpone { postponed } => {
                assert!(
                    (1..=MAX_POSTPONED_REFS).contains(&postponed),
                    "postponed REFs must be 1..={MAX_POSTPONED_REFS}"
                );
                let batch = u64::from(postponed) + 1;
                if (refi_index + 1) % batch == 0 {
                    postponed + 1
                } else {
                    0
                }
            }
        }
    }

    /// Maximum demand activations the device may observe between two
    /// consecutive REF *opportunities* under this policy.
    #[must_use]
    pub fn max_acts_between_refs(&self, max_act: u32) -> u32 {
        match *self {
            RefreshPolicy::Timely => max_act,
            RefreshPolicy::MaxPostpone { postponed } => (postponed + 1) * max_act,
        }
    }
}

/// A refresh event produced by [`RefreshSchedule`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RefreshEvent {
    /// The tREFI interval index after which these REFs occur.
    pub refi_index: u64,
    /// How many REF commands are issued back-to-back (0 if postponed).
    pub refs: u32,
}

/// Iterator over the REF events of a run of `n_refi` tREFI intervals.
///
/// # Examples
///
/// ```
/// use mint_dram::{RefreshPolicy, RefreshSchedule};
///
/// // Timely: a REF after every tREFI.
/// let evs: Vec<_> = RefreshSchedule::new(RefreshPolicy::Timely, 3).collect();
/// assert!(evs.iter().all(|e| e.refs == 1));
///
/// // Max postponement: batches of five.
/// let evs: Vec<_> =
///     RefreshSchedule::new(RefreshPolicy::ddr5_max_postpone(), 10).collect();
/// let total: u32 = evs.iter().map(|e| e.refs).sum();
/// assert_eq!(total, 10); // no REF is lost, only delayed
/// assert_eq!(evs[4].refs, 5);
/// ```
#[derive(Debug, Clone)]
pub struct RefreshSchedule {
    policy: RefreshPolicy,
    next: u64,
    n_refi: u64,
}

impl RefreshSchedule {
    /// Creates a schedule covering `n_refi` tREFI intervals.
    #[must_use]
    pub fn new(policy: RefreshPolicy, n_refi: u64) -> Self {
        Self {
            policy,
            next: 0,
            n_refi,
        }
    }
}

impl Iterator for RefreshSchedule {
    type Item = RefreshEvent;

    fn next(&mut self) -> Option<RefreshEvent> {
        if self.next >= self.n_refi {
            return None;
        }
        let idx = self.next;
        self.next += 1;
        Some(RefreshEvent {
            refi_index: idx,
            refs: self.policy.refs_due(idx),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timely_one_ref_per_refi() {
        let p = RefreshPolicy::Timely;
        for i in 0..100 {
            assert_eq!(p.refs_due(i), 1);
        }
        assert_eq!(p.max_acts_between_refs(73), 73);
    }

    #[test]
    fn max_postpone_batches_of_five() {
        let p = RefreshPolicy::ddr5_max_postpone();
        let due: Vec<u32> = (0..10).map(|i| p.refs_due(i)).collect();
        assert_eq!(due, vec![0, 0, 0, 0, 5, 0, 0, 0, 0, 5]);
        assert_eq!(p.max_acts_between_refs(73), 365);
    }

    #[test]
    fn partial_postponement() {
        let p = RefreshPolicy::MaxPostpone { postponed: 2 };
        let due: Vec<u32> = (0..6).map(|i| p.refs_due(i)).collect();
        assert_eq!(due, vec![0, 0, 3, 0, 0, 3]);
        assert_eq!(p.max_acts_between_refs(73), 219);
    }

    #[test]
    #[should_panic(expected = "postponed REFs")]
    fn zero_postponed_rejected() {
        let _ = RefreshPolicy::MaxPostpone { postponed: 0 }.refs_due(0);
    }

    #[test]
    #[should_panic(expected = "postponed REFs")]
    fn excess_postponed_rejected() {
        let _ = RefreshPolicy::MaxPostpone { postponed: 5 }.refs_due(0);
    }

    #[test]
    fn schedule_conserves_total_refs() {
        for policy in [
            RefreshPolicy::Timely,
            RefreshPolicy::ddr5_max_postpone(),
            RefreshPolicy::MaxPostpone { postponed: 1 },
        ] {
            let n = 8192;
            let total: u64 = RefreshSchedule::new(policy, n)
                .map(|e| u64::from(e.refs))
                .sum();
            // With postponement the tail of the window may still hold back
            // fewer than `postponed` REFs.
            let slack = match policy {
                RefreshPolicy::Timely => 0,
                RefreshPolicy::MaxPostpone { postponed } => u64::from(postponed),
            };
            assert!(n - total <= slack, "{policy:?}: total {total}");
        }
    }

    #[test]
    fn schedule_len_matches_n_refi() {
        let evs: Vec<_> = RefreshSchedule::new(RefreshPolicy::Timely, 5).collect();
        assert_eq!(evs.len(), 5);
        assert_eq!(evs[4].refi_index, 4);
    }
}
