//! InDRAM-PARA: the paper's present-centric strawman (§III).

use mint_core::{InDramTracker, MitigationDecision};
use mint_dram::RowId;
use mint_rng::Rng64;

/// InDRAM-PARA with overwrite (paper §III-A, Fig 2).
///
/// Each activation is sampled with probability `p` (1/73 by default); a
/// sampled row is stored in the single Sampled Address Register and
/// mitigated at the next REF — *if it survives*: any later sample overwrites
/// it. Survival probability therefore decays with how early in the tREFI the
/// row was sampled (`(1−p)^(M−K)`, Fig 3), giving the first position a 2.7×
/// lower mitigation probability than the last. Attackers synchronise to that
/// position (SMASH/Blacksmith-style), which is why the design tolerates a
/// 2.7× higher threshold than MINT.
///
/// # Examples
///
/// ```
/// use mint_core::InDramTracker;
/// use mint_dram::RowId;
/// use mint_rng::Xoshiro256StarStar;
/// use mint_trackers::InDramPara;
///
/// let mut rng = Xoshiro256StarStar::seed_from_u64(1);
/// let mut para = InDramPara::new(1.0 / 73.0);
/// for _ in 0..73 {
///     para.on_activation(RowId(4), &mut rng);
/// }
/// // Even a full window misses selection 37% of the time (§III-D).
/// let _maybe = para.on_refresh(&mut rng);
/// ```
#[derive(Debug, Clone)]
pub struct InDramPara {
    p: f64,
    sar: Option<RowId>,
}

impl InDramPara {
    /// Creates the tracker with sampling probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < p <= 1`.
    #[must_use]
    pub fn new(p: f64) -> Self {
        assert!(
            p > 0.0 && p <= 1.0,
            "sampling probability must be in (0, 1]"
        );
        Self { p, sar: None }
    }

    /// The sampling probability.
    #[must_use]
    pub fn probability(&self) -> f64 {
        self.p
    }

    /// The currently sampled row, if any.
    #[must_use]
    pub fn sar(&self) -> Option<RowId> {
        self.sar
    }
}

impl InDramTracker for InDramPara {
    fn on_activation(&mut self, row: RowId, rng: &mut dyn Rng64) -> Option<MitigationDecision> {
        if rng.gen_bool(self.p) {
            self.sar = Some(row); // overwrite: earlier samples are lost
        }
        None
    }

    fn on_refresh(&mut self, _rng: &mut dyn Rng64) -> MitigationDecision {
        match self.sar.take() {
            Some(row) => MitigationDecision::Aggressor(row),
            None => MitigationDecision::None,
        }
    }

    fn name(&self) -> &'static str {
        "InDRAM-PARA"
    }

    fn live_entries(&self) -> usize {
        usize::from(self.sar().is_some())
    }

    fn entries(&self) -> usize {
        1
    }

    /// SAR (18 bits) + valid bit.
    fn storage_bits(&self) -> u64 {
        19
    }

    fn reset(&mut self, _rng: &mut dyn Rng64) {
        self.sar = None;
    }

    /// `[sar_valid, sar_row]`.
    fn snapshot_state(&self) -> Vec<u64> {
        snapshot_sar(self.sar)
    }

    fn restore_state(&mut self, state: &[u64]) -> Result<(), String> {
        self.sar = restore_sar(state, self.name())?;
        Ok(())
    }
}

/// InDRAM-PARA without overwrite (paper §III-B, Fig 4).
///
/// Once a row is sampled the register locks for the rest of the window, so
/// survival is guaranteed — but the *sampling* probability of later
/// positions collapses (`p(1−p)^K`, Fig 5), leaving exactly the same 2.7×
/// worst-position penalty as the overwriting variant (Fig 6).
#[derive(Debug, Clone)]
pub struct InDramParaNoOverwrite {
    p: f64,
    sar: Option<RowId>,
}

impl InDramParaNoOverwrite {
    /// Creates the tracker with sampling probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < p <= 1`.
    #[must_use]
    pub fn new(p: f64) -> Self {
        assert!(
            p > 0.0 && p <= 1.0,
            "sampling probability must be in (0, 1]"
        );
        Self { p, sar: None }
    }

    /// The currently sampled row, if any.
    #[must_use]
    pub fn sar(&self) -> Option<RowId> {
        self.sar
    }
}

impl InDramTracker for InDramParaNoOverwrite {
    fn on_activation(&mut self, row: RowId, rng: &mut dyn Rng64) -> Option<MitigationDecision> {
        if self.sar.is_none() && rng.gen_bool(self.p) {
            self.sar = Some(row);
        }
        None
    }

    fn on_refresh(&mut self, _rng: &mut dyn Rng64) -> MitigationDecision {
        match self.sar.take() {
            Some(row) => MitigationDecision::Aggressor(row),
            None => MitigationDecision::None,
        }
    }

    fn name(&self) -> &'static str {
        "InDRAM-PARA (No-Overwrite)"
    }

    fn live_entries(&self) -> usize {
        usize::from(self.sar().is_some())
    }

    fn entries(&self) -> usize {
        1
    }

    fn storage_bits(&self) -> u64 {
        19
    }

    fn reset(&mut self, _rng: &mut dyn Rng64) {
        self.sar = None;
    }

    /// `[sar_valid, sar_row]`.
    fn snapshot_state(&self) -> Vec<u64> {
        snapshot_sar(self.sar)
    }

    fn restore_state(&mut self, state: &[u64]) -> Result<(), String> {
        self.sar = restore_sar(state, self.name())?;
        Ok(())
    }
}

/// The shared `[valid, row]` encoding of both variants' single register.
fn snapshot_sar(sar: Option<RowId>) -> Vec<u64> {
    vec![u64::from(sar.is_some()), u64::from(sar.map_or(0, |r| r.0))]
}

fn restore_sar(state: &[u64], name: &str) -> Result<Option<RowId>, String> {
    let [valid, row] = state else {
        return Err(format!(
            "{name}: expected 2 state words, got {}",
            state.len()
        ));
    };
    match valid {
        0 => Ok(None),
        1 => u32::try_from(*row)
            .map(|r| Some(RowId(r)))
            .map_err(|_| format!("{name}: SAR row {row} exceeds u32")),
        v => Err(format!("{name}: SAR valid bit {v} not 0/1")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mint_rng::Xoshiro256StarStar;

    const P: f64 = 1.0 / 73.0;

    fn rng(seed: u64) -> Xoshiro256StarStar {
        Xoshiro256StarStar::seed_from_u64(seed)
    }

    /// Drives one full window with the attack row at `position` (1-based)
    /// and decoys elsewhere; returns whether the attack row was mitigated.
    fn window_hit<T: InDramTracker>(
        t: &mut T,
        r: &mut Xoshiro256StarStar,
        position: u32,
        attack: RowId,
    ) -> bool {
        for k in 1..=73 {
            let row = if k == position {
                attack
            } else {
                RowId(50_000 + k)
            };
            t.on_activation(row, r);
        }
        t.on_refresh(r).mitigates(attack)
    }

    #[test]
    fn overwrite_survival_decays_for_early_positions() {
        // Fig 3: position 1 mitigation prob ≈ p·(1−p)^72 ≈ p·0.372;
        // position 73 ≈ p.
        let mut r = rng(1);
        let trials = 200_000;
        let mut first = 0u32;
        let mut last = 0u32;
        let mut para = InDramPara::new(P);
        for _ in 0..trials {
            if window_hit(&mut para, &mut r, 1, RowId(7)) {
                first += 1;
            }
        }
        for _ in 0..trials {
            if window_hit(&mut para, &mut r, 73, RowId(7)) {
                last += 1;
            }
        }
        let p_first = f64::from(first) / f64::from(trials);
        let p_last = f64::from(last) / f64::from(trials);
        let expect_first = P * (1.0 - P).powi(72);
        assert!(
            (p_first - expect_first).abs() < 1.5e-3,
            "{p_first} vs {expect_first}"
        );
        assert!((p_last - P).abs() < 1.5e-3, "{p_last} vs {P}");
        let ratio = p_last / p_first;
        assert!(
            (2.2..3.4).contains(&ratio),
            "expected ≈2.7x penalty, got {ratio}"
        );
    }

    #[test]
    fn no_overwrite_sampling_decays_for_late_positions() {
        // Fig 5: position 73 sampling prob ≈ p·(1−p)^72.
        let mut r = rng(2);
        let trials = 200_000;
        let mut first = 0u32;
        let mut last = 0u32;
        let mut para = InDramParaNoOverwrite::new(P);
        for _ in 0..trials {
            if window_hit(&mut para, &mut r, 1, RowId(7)) {
                first += 1;
            }
        }
        for _ in 0..trials {
            if window_hit(&mut para, &mut r, 73, RowId(7)) {
                last += 1;
            }
        }
        let p_first = f64::from(first) / f64::from(trials);
        let p_last = f64::from(last) / f64::from(trials);
        assert!((p_first - P).abs() < 1.5e-3);
        let ratio = p_first / p_last;
        assert!(
            (2.2..3.4).contains(&ratio),
            "expected ≈2.7x penalty, got {ratio}"
        );
    }

    #[test]
    fn non_selection_rate_is_37_percent() {
        // §III-D Eq 4: a fully used window selects nothing w.p. (1−p)^73.
        let mut r = rng(3);
        let mut para = InDramPara::new(P);
        let trials = 100_000;
        let mut nones = 0;
        for _ in 0..trials {
            for k in 0..73 {
                para.on_activation(RowId(k), &mut r);
            }
            if para.on_refresh(&mut r).is_none() {
                nones += 1;
            }
        }
        let rate = f64::from(nones) / f64::from(trials);
        let expect = (1.0 - P).powi(73);
        assert!((rate - expect).abs() < 5e-3, "{rate} vs {expect}");
    }

    #[test]
    fn refresh_clears_register() {
        let mut r = rng(4);
        let mut para = InDramPara::new(1.0); // always sample
        para.on_activation(RowId(3), &mut r);
        assert!(para.on_refresh(&mut r).mitigates(RowId(3)));
        assert!(para.on_refresh(&mut r).is_none());
    }

    #[test]
    fn no_overwrite_locks_first_sample() {
        let mut r = rng(5);
        let mut para = InDramParaNoOverwrite::new(1.0);
        para.on_activation(RowId(1), &mut r);
        para.on_activation(RowId(2), &mut r);
        assert_eq!(para.sar(), Some(RowId(1)));
    }

    #[test]
    fn overwrite_replaces_sample() {
        let mut r = rng(6);
        let mut para = InDramPara::new(1.0);
        para.on_activation(RowId(1), &mut r);
        para.on_activation(RowId(2), &mut r);
        assert_eq!(para.sar(), Some(RowId(2)));
    }

    #[test]
    #[should_panic(expected = "sampling probability")]
    fn invalid_probability_rejected() {
        let _ = InDramPara::new(0.0);
    }

    #[test]
    fn metadata() {
        let para = InDramPara::new(P);
        assert_eq!(para.entries(), 1);
        assert_eq!(para.storage_bits(), 19);
        assert_eq!(para.name(), "InDRAM-PARA");
        let now = InDramParaNoOverwrite::new(P);
        assert!(now.name().contains("No-Overwrite"));
    }

    #[test]
    fn reset_clears_state() {
        let mut r = rng(7);
        let mut para = InDramPara::new(1.0);
        para.on_activation(RowId(9), &mut r);
        para.reset(&mut r);
        assert_eq!(para.sar(), None);
    }
}
