//! Canonical word encoding shared by the hash-table trackers' checkpoint
//! state (Graphene, Mithril, ProTRR, PRCT).
//!
//! A `HashMap<RowId, u64>` iterates in a per-process random order, so the
//! snapshot sorts entries by row id: two processes holding the same logical
//! table emit identical words. That canonicalization is sound because every
//! table tracker breaks selection ties with a total `(count, row)` order —
//! no decision depends on map iteration order.

use mint_dram::RowId;
use std::collections::HashMap;

/// `[len, row₀, count₀, row₁, count₁, …]`, sorted by row id.
pub(crate) fn snapshot_table(table: &HashMap<RowId, u64>) -> Vec<u64> {
    let mut pairs: Vec<(RowId, u64)> = table.iter().map(|(r, c)| (*r, *c)).collect();
    pairs.sort_unstable_by_key(|(r, _)| r.0);
    let mut words = Vec::with_capacity(1 + 2 * pairs.len());
    words.push(pairs.len() as u64);
    for (row, count) in pairs {
        words.push(u64::from(row.0));
        words.push(count);
    }
    words
}

/// Rebuilds a table from [`snapshot_table`]'s words, enforcing `capacity`.
pub(crate) fn restore_table(
    state: &[u64],
    name: &str,
    capacity: usize,
    table: &mut HashMap<RowId, u64>,
) -> Result<(), String> {
    let (&len, rest) = state
        .split_first()
        .ok_or_else(|| format!("{name}: empty table state"))?;
    let len = usize::try_from(len).map_err(|_| format!("{name}: table length overflow"))?;
    if len > capacity {
        return Err(format!("{name}: {len} entries exceed capacity {capacity}"));
    }
    if rest.len() != 2 * len {
        return Err(format!(
            "{name}: expected {} table words, got {}",
            2 * len,
            rest.len()
        ));
    }
    table.clear();
    for pair in rest.chunks_exact(2) {
        let row = u32::try_from(pair[0])
            .map_err(|_| format!("{name}: table row {} exceeds u32", pair[0]))?;
        if table.insert(RowId(row), pair[1]).is_some() {
            return Err(format!("{name}: duplicate table row {row}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_is_canonical() {
        let mut a = HashMap::new();
        for (r, c) in [(9u32, 4u64), (1, 7), (5, 2)] {
            a.insert(RowId(r), c);
        }
        let words = snapshot_table(&a);
        // Sorted by row regardless of insertion/iteration order.
        assert_eq!(words, vec![3, 1, 7, 5, 2, 9, 4]);
        let mut b = HashMap::new();
        restore_table(&words, "test", 8, &mut b).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn corruption_is_rejected() {
        let mut t = HashMap::new();
        assert!(restore_table(&[], "test", 4, &mut t).is_err());
        assert!(restore_table(&[2, 1, 1], "test", 4, &mut t).is_err());
        assert!(restore_table(&[9, 0, 0], "test", 4, &mut t).is_err());
        assert!(restore_table(&[2, 1, 1, 1, 2], "test", 4, &mut t).is_err());
    }
}
