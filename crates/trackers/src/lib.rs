//! Baseline in-DRAM Rowhammer trackers (paper §V-G comparison set and §IX
//! related work).
//!
//! Every tracker here implements
//! [`InDramTracker`](mint_core::InDramTracker), so the Monte-Carlo engine in
//! `mint-sim`, the tracker-generic memory controller in `mint-memsys`
//! (every scheme of `MitigationScheme::zoo()` is backed by a tracker from
//! this crate via its `MitigationBackend`) and the benchmarks in
//! `mint-bench` can drive MINT and its baselines interchangeably. The set matches the paper's Table III plus the
//! related-work designs it quantifies:
//!
//! | Tracker | Type (paper taxonomy) | Entries | Transitive attacks |
//! |---|---|---|---|
//! | [`InDramPara`] | present-centric, overwrite (§III-A) | 1 | immune* |
//! | [`InDramParaNoOverwrite`] | present-centric, no-overwrite (§III-B) | 1 | immune* |
//! | [`Parfm`] | past-centric, buffered random (§V-G) | 73 | vulnerable |
//! | [`Prct`] | past-centric, per-row counters (§II-H) | 128K | immune |
//! | [`Mithril`] | past-centric, counter-based summary (§II-G) | ~677 | immune |
//! | [`ProTrr`] | past-centric, Misra-Gries victims (§II-G) | ~hundreds | immune |
//! | [`SimpleTrr`] | vendor-TRR-like, few entries (§II-F) | 1–30 | broken anyway |
//! | [`Pride`] | present-centric + 4-FIFO (§IX) | 4 | immune* |
//! | [`Graphene`] | MC-side Misra-Gries (Table IX) | thousands | n/a |
//!
//! \*immune because their direct-attack MinTRH already exceeds what a
//! transitive attack can deliver (§V-G).

mod graphene;
mod mithril;
mod para;
mod parfm;
mod prct;
mod pride;
mod protrr;
mod table_words;
mod trr;

pub use graphene::{Graphene, GrapheneConfig};
pub use mithril::{Mithril, MithrilConfig};
pub use para::{InDramPara, InDramParaNoOverwrite};
pub use parfm::Parfm;
pub use prct::Prct;
pub use pride::Pride;
pub use protrr::{ProTrr, ProTrrConfig};
pub use trr::SimpleTrr;
