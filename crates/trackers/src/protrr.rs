//! ProTRR-style Misra-Gries victim tracking (paper §II-G).

use mint_core::{InDramTracker, MitigationDecision};
use mint_dram::RowId;
use mint_rng::Rng64;
use std::collections::HashMap;

/// Configuration of a [`ProTrr`] tracker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProTrrConfig {
    /// Misra-Gries table entries per bank.
    pub entries: usize,
    /// Victims inserted per activation on each side (the blast radius of
    /// the device; 1 by default).
    pub blast_radius: u32,
}

impl Default for ProTrrConfig {
    fn default() -> Self {
        Self {
            entries: 677,
            blast_radius: 1,
        }
    }
}

/// ProTRR (S&P 2022), as characterised in MINT §II-G: principled in-DRAM
/// victim tracking with a Misra-Gries frequent-items table.
///
/// Every activation of row `r` inserts `r`'s potential victims (`r ± 1` for
/// blast radius 1) into the table. Insertion follows Misra-Gries: tracked
/// victims increment; if the table is full, **all** counters decrement
/// instead (zero-count entries are evicted). At each REF the victim with the
/// highest count is refreshed directly
/// ([`MitigationDecision::VictimRefresh`]) and removed from the table.
///
/// Tracking victims (not aggressors) means a double-sided pair contributes
/// 2× to the shared victim's count — ProTRR does not suffer the
/// counter-doubling weakness of aggressor-counting schemes (§V-F).
///
/// # Examples
///
/// ```
/// use mint_core::{InDramTracker, MitigationDecision};
/// use mint_dram::RowId;
/// use mint_rng::Xoshiro256StarStar;
/// use mint_trackers::{ProTrr, ProTrrConfig};
///
/// let mut rng = Xoshiro256StarStar::seed_from_u64(5);
/// let mut t = ProTrr::new(ProTrrConfig::default());
/// // Double-sided attack on victim row 21.
/// for _ in 0..8 {
///     t.on_activation(RowId(20), &mut rng);
///     t.on_activation(RowId(22), &mut rng);
/// }
/// assert_eq!(
///     t.on_refresh(&mut rng),
///     MitigationDecision::VictimRefresh(RowId(21))
/// );
/// ```
#[derive(Debug, Clone)]
pub struct ProTrr {
    config: ProTrrConfig,
    table: HashMap<RowId, u64>,
}

impl ProTrr {
    /// Creates a ProTRR tracker.
    ///
    /// # Panics
    ///
    /// Panics if `config.entries == 0`.
    #[must_use]
    pub fn new(config: ProTrrConfig) -> Self {
        assert!(config.entries > 0, "ProTRR needs at least one entry");
        Self {
            config,
            table: HashMap::with_capacity(config.entries),
        }
    }

    /// Tracked count for a victim row.
    #[must_use]
    pub fn count(&self, victim: RowId) -> Option<u64> {
        self.table.get(&victim).copied()
    }

    /// Number of occupied entries.
    #[must_use]
    pub fn occupied(&self) -> usize {
        self.table.len()
    }

    fn insert_victim(&mut self, victim: RowId) {
        if let Some(c) = self.table.get_mut(&victim) {
            *c += 1;
            return;
        }
        if self.table.len() < self.config.entries {
            self.table.insert(victim, 1);
            return;
        }
        // Misra-Gries: decrement everyone, evict zeros.
        self.table.retain(|_, c| {
            *c -= 1;
            *c > 0
        });
    }
}

impl InDramTracker for ProTrr {
    fn on_activation(&mut self, row: RowId, _rng: &mut dyn Rng64) -> Option<MitigationDecision> {
        for victim in row.neighbours(self.config.blast_radius) {
            self.insert_victim(victim);
        }
        None
    }

    fn on_mitigative_refresh(&mut self, row: RowId) {
        // A victim refresh activates `row`, endangering *its* neighbours.
        for victim in row.neighbours(self.config.blast_radius) {
            self.insert_victim(victim);
        }
    }

    fn on_refresh(&mut self, _rng: &mut dyn Rng64) -> MitigationDecision {
        let Some((&victim, _)) = self
            .table
            .iter()
            .max_by(|a, b| a.1.cmp(b.1).then_with(|| b.0.cmp(a.0)))
        else {
            return MitigationDecision::None;
        };
        self.table.remove(&victim);
        MitigationDecision::VictimRefresh(victim)
    }

    fn name(&self) -> &'static str {
        "ProTRR"
    }

    fn live_entries(&self) -> usize {
        self.table.len()
    }

    fn entries(&self) -> usize {
        self.config.entries
    }

    /// 18-bit row address + 16-bit counter per entry.
    fn storage_bits(&self) -> u64 {
        self.config.entries as u64 * 34
    }

    fn reset(&mut self, _rng: &mut dyn Rng64) {
        self.table.clear();
    }

    fn snapshot_state(&self) -> Vec<u64> {
        crate::table_words::snapshot_table(&self.table)
    }

    fn restore_state(&mut self, state: &[u64]) -> Result<(), String> {
        crate::table_words::restore_table(state, self.name(), self.config.entries, &mut self.table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mint_rng::Xoshiro256StarStar;

    fn rng(seed: u64) -> Xoshiro256StarStar {
        Xoshiro256StarStar::seed_from_u64(seed)
    }

    fn tracker(entries: usize) -> ProTrr {
        ProTrr::new(ProTrrConfig {
            entries,
            blast_radius: 1,
        })
    }

    #[test]
    fn victims_counted_double_for_double_sided() {
        let mut r = rng(1);
        let mut t = tracker(16);
        for _ in 0..5 {
            t.on_activation(RowId(10), &mut r);
            t.on_activation(RowId(12), &mut r);
        }
        // Shared victim 11 got 2 per round; outer victims 9/13 got 1.
        assert_eq!(t.count(RowId(11)), Some(10));
        assert_eq!(t.count(RowId(9)), Some(5));
        assert_eq!(t.count(RowId(13)), Some(5));
    }

    #[test]
    fn refresh_targets_hottest_victim_directly() {
        let mut r = rng(2);
        let mut t = tracker(16);
        for _ in 0..3 {
            t.on_activation(RowId(10), &mut r);
            t.on_activation(RowId(12), &mut r);
        }
        assert_eq!(
            t.on_refresh(&mut r),
            MitigationDecision::VictimRefresh(RowId(11))
        );
        // Removed from the table after mitigation.
        assert_eq!(t.count(RowId(11)), None);
    }

    #[test]
    fn misra_gries_decrement_on_full_table() {
        let mut r = rng(3);
        let mut t = tracker(2);
        t.on_activation(RowId(10), &mut r); // victims 9, 11 fill the table
        assert_eq!(t.occupied(), 2);
        // New victim pair arrives. Victim 99 hits a full table: everyone
        // decrements to zero and evicts. Victim 101 then finds free space.
        t.on_activation(RowId(100), &mut r);
        assert_eq!(t.occupied(), 1);
        assert_eq!(t.count(RowId(101)), Some(1));
        assert_eq!(t.count(RowId(9)), None);
        assert_eq!(t.count(RowId(11)), None);
    }

    #[test]
    fn mitigative_refresh_counts_next_tier_victims() {
        let _r = rng(4);
        let mut t = tracker(16);
        // Refreshing row 20 endangers 19 and 21.
        t.on_mitigative_refresh(RowId(20));
        assert_eq!(t.count(RowId(19)), Some(1));
        assert_eq!(t.count(RowId(21)), Some(1));
    }

    #[test]
    fn empty_table_no_decision() {
        let mut r = rng(5);
        let mut t = tracker(4);
        assert!(t.on_refresh(&mut r).is_none());
    }

    #[test]
    fn metadata() {
        let t = tracker(677);
        assert_eq!(t.entries(), 677);
        assert_eq!(t.storage_bits(), 677 * 34);
        assert_eq!(t.name(), "ProTRR");
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_entries_rejected() {
        let _ = tracker(0);
    }

    #[test]
    fn reset_clears_table() {
        let mut r = rng(6);
        let mut t = tracker(4);
        t.on_activation(RowId(1), &mut r);
        t.reset(&mut r);
        assert_eq!(t.occupied(), 0);
    }
}
