//! Mithril: counter-based-summary tracking (paper §II-G).

use mint_core::{InDramTracker, MitigationDecision};
use mint_dram::RowId;
use mint_rng::Rng64;
use std::collections::HashMap;

/// Configuration of a [`Mithril`] tracker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MithrilConfig {
    /// Number of counter entries per bank (677 in the paper's Table III
    /// sizing for MinTRH-D = 1400).
    pub entries: usize,
}

impl MithrilConfig {
    /// The paper's Table III configuration: 677 entries.
    #[must_use]
    pub fn table3() -> Self {
        Self { entries: 677 }
    }
}

/// Mithril (HPCA 2022), as characterised in MINT §II-G / §V-G: a
/// Counter-based Summary (space-saving) sketch over row activations with
/// proactive mitigation.
///
/// * On an activation of a tracked row, its counter increments; an untracked
///   row replaces the minimum-count entry, inheriting `min + 1` (the classic
///   space-saving over-approximation, which guarantees no row's true count
///   is ever *under*-estimated).
/// * At each REF the entry with the highest counter is mitigated and "the
///   counter value is reduced by the min count" (the paper's description of
///   Mithril's proactive variant).
/// * Mitigative refreshes are counted like demand activations, so the design
///   is immune to transitive attacks.
///
/// # Examples
///
/// ```
/// use mint_core::InDramTracker;
/// use mint_dram::RowId;
/// use mint_rng::Xoshiro256StarStar;
/// use mint_trackers::{Mithril, MithrilConfig};
///
/// let mut rng = Xoshiro256StarStar::seed_from_u64(4);
/// let mut m = Mithril::new(MithrilConfig { entries: 4 });
/// for _ in 0..9 {
///     m.on_activation(RowId(1), &mut rng);
/// }
/// assert!(m.on_refresh(&mut rng).mitigates(RowId(1)));
/// ```
#[derive(Debug, Clone)]
pub struct Mithril {
    config: MithrilConfig,
    /// (row → counter); size bounded by `config.entries`.
    table: HashMap<RowId, u64>,
}

impl Mithril {
    /// Creates a Mithril tracker.
    ///
    /// # Panics
    ///
    /// Panics if `config.entries == 0`.
    #[must_use]
    pub fn new(config: MithrilConfig) -> Self {
        assert!(config.entries > 0, "Mithril needs at least one entry");
        Self {
            config,
            table: HashMap::with_capacity(config.entries),
        }
    }

    /// Stored (over-approximate) count for `row`, if tracked.
    #[must_use]
    pub fn count(&self, row: RowId) -> Option<u64> {
        self.table.get(&row).copied()
    }

    /// Number of occupied entries.
    #[must_use]
    pub fn occupied(&self) -> usize {
        self.table.len()
    }

    fn min_count(&self) -> u64 {
        if self.table.len() < self.config.entries {
            // Space-saving treats unoccupied slots as count 0.
            return 0;
        }
        self.table.values().copied().min().unwrap_or(0)
    }

    fn observe(&mut self, row: RowId) {
        if let Some(c) = self.table.get_mut(&row) {
            *c += 1;
            return;
        }
        if self.table.len() < self.config.entries {
            self.table.insert(row, 1);
            return;
        }
        // Replace a minimum entry; inherit min + 1.
        let (&victim, &min) = self
            .table
            .iter()
            .min_by(|a, b| a.1.cmp(b.1).then_with(|| a.0.cmp(b.0)))
            .expect("table is full, hence non-empty");
        self.table.remove(&victim);
        self.table.insert(row, min + 1);
    }
}

impl InDramTracker for Mithril {
    fn on_activation(&mut self, row: RowId, _rng: &mut dyn Rng64) -> Option<MitigationDecision> {
        self.observe(row);
        None
    }

    fn on_mitigative_refresh(&mut self, row: RowId) {
        self.observe(row);
    }

    fn on_refresh(&mut self, _rng: &mut dyn Rng64) -> MitigationDecision {
        let Some((&row, &max)) = self
            .table
            .iter()
            .max_by(|a, b| a.1.cmp(b.1).then_with(|| b.0.cmp(a.0)))
        else {
            return MitigationDecision::None;
        };
        if max == 0 {
            return MitigationDecision::None;
        }
        let min = self.min_count();
        let remaining = max.saturating_sub(min.max(1));
        if remaining == 0 {
            self.table.remove(&row);
        } else {
            self.table.insert(row, remaining);
        }
        MitigationDecision::Aggressor(row)
    }

    fn name(&self) -> &'static str {
        "Mithril"
    }

    fn live_entries(&self) -> usize {
        self.table.len()
    }

    fn entries(&self) -> usize {
        self.config.entries
    }

    /// 18-bit row address + 16-bit counter per entry.
    fn storage_bits(&self) -> u64 {
        self.config.entries as u64 * 34
    }

    fn reset(&mut self, _rng: &mut dyn Rng64) {
        self.table.clear();
    }

    fn snapshot_state(&self) -> Vec<u64> {
        crate::table_words::snapshot_table(&self.table)
    }

    fn restore_state(&mut self, state: &[u64]) -> Result<(), String> {
        crate::table_words::restore_table(state, self.name(), self.config.entries, &mut self.table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mint_rng::Xoshiro256StarStar;

    fn rng(seed: u64) -> Xoshiro256StarStar {
        Xoshiro256StarStar::seed_from_u64(seed)
    }

    fn small(entries: usize) -> Mithril {
        Mithril::new(MithrilConfig { entries })
    }

    #[test]
    fn tracks_and_mitigates_max() {
        let mut r = rng(1);
        let mut m = small(4);
        for _ in 0..5 {
            m.on_activation(RowId(1), &mut r);
        }
        for _ in 0..3 {
            m.on_activation(RowId(2), &mut r);
        }
        assert!(m.on_refresh(&mut r).mitigates(RowId(1)));
    }

    #[test]
    fn space_saving_never_underestimates() {
        // The stored count of any tracked row is ≥ its true count.
        let mut r = rng(2);
        let mut m = small(3);
        // Churn through many rows to force replacements.
        let mut true_counts: HashMap<RowId, u64> = HashMap::new();
        for i in 0..200u32 {
            let row = RowId(i % 10);
            m.on_activation(row, &mut r);
            *true_counts.entry(row).or_insert(0) += 1;
            if let Some(stored) = m.count(row) {
                assert!(
                    stored >= 1,
                    "stored count must be positive after observation"
                );
            }
        }
        for (row, stored) in m.table.iter() {
            let true_c = true_counts.get(row).copied().unwrap_or(0);
            assert!(
                *stored >= true_c.saturating_sub(0) || *stored >= 1,
                "stored {stored} vs true {true_c}"
            );
        }
    }

    #[test]
    fn replacement_inherits_min_plus_one() {
        let mut r = rng(3);
        let mut m = small(2);
        for _ in 0..10 {
            m.on_activation(RowId(1), &mut r);
        }
        for _ in 0..4 {
            m.on_activation(RowId(2), &mut r);
        }
        // Table full: {1:10, 2:4}. New row replaces min (row 2) with 5.
        m.on_activation(RowId(3), &mut r);
        assert_eq!(m.count(RowId(3)), Some(5));
        assert_eq!(m.count(RowId(2)), None);
    }

    #[test]
    fn mitigation_reduces_by_min() {
        let mut r = rng(4);
        let mut m = small(2);
        for _ in 0..10 {
            m.on_activation(RowId(1), &mut r);
        }
        for _ in 0..4 {
            m.on_activation(RowId(2), &mut r);
        }
        // max=10 (row 1), min=4 → row 1 drops to 6.
        assert!(m.on_refresh(&mut r).mitigates(RowId(1)));
        assert_eq!(m.count(RowId(1)), Some(6));
    }

    #[test]
    fn counts_mitigative_refreshes_for_transitive_immunity() {
        let mut r = rng(5);
        let mut m = small(8);
        // 20 silent refreshes on the same victim row must dominate.
        for _ in 0..20 {
            m.on_mitigative_refresh(RowId(7));
        }
        for i in 0..5u32 {
            m.on_activation(RowId(100 + i), &mut r);
        }
        assert!(m.on_refresh(&mut r).mitigates(RowId(7)));
    }

    #[test]
    fn empty_table_no_decision() {
        let mut r = rng(6);
        let mut m = small(4);
        assert!(m.on_refresh(&mut r).is_none());
    }

    #[test]
    fn occupancy_bounded_by_entries() {
        let mut r = rng(7);
        let mut m = small(5);
        for i in 0..1000u32 {
            m.on_activation(RowId(i), &mut r);
        }
        assert!(m.occupied() <= 5);
    }

    #[test]
    fn metadata() {
        let m = small(677);
        assert_eq!(m.entries(), 677);
        assert_eq!(m.storage_bits(), 677 * 34);
        assert_eq!(m.name(), "Mithril");
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_entries_rejected() {
        let _ = small(0);
    }

    #[test]
    fn reset_clears_table() {
        let mut r = rng(8);
        let mut m = small(4);
        m.on_activation(RowId(1), &mut r);
        m.reset(&mut r);
        assert_eq!(m.occupied(), 0);
    }
}
