//! A vendor-TRR-like low-cost tracker (paper §II-F): few entries, easily
//! defeated by many-aggressor patterns.

use mint_core::{InDramTracker, MitigationDecision};
use mint_dram::RowId;
use mint_rng::Rng64;

/// A DDR4-TRR-style tracker: a small table (1–30 entries, per Hassan et
/// al.'s reverse engineering) of recently-hot aggressor rows with saturating
/// counters; at REF the hottest entry is mitigated and evicted.
///
/// Unlike [`Mithril`](crate::Mithril)'s space-saving sketch, a new row that
/// misses a full table simply evicts the *coldest* entry and starts from
/// count 1 — losing all history. That is exactly the weakness
/// TRRespass-style many-aggressor patterns exploit: with more aggressor rows
/// than table entries, every aggressor keeps getting evicted before
/// accumulating a meaningful count, and mitigation effectively targets
/// decoys (`mint-sim` demonstrates this; the gauntlet example prints it).
///
/// # Examples
///
/// ```
/// use mint_core::InDramTracker;
/// use mint_dram::RowId;
/// use mint_rng::Xoshiro256StarStar;
/// use mint_trackers::SimpleTrr;
///
/// let mut rng = Xoshiro256StarStar::seed_from_u64(6);
/// let mut trr = SimpleTrr::new(16);
/// for _ in 0..50 {
///     trr.on_activation(RowId(3), &mut rng);
/// }
/// assert!(trr.on_refresh(&mut rng).mitigates(RowId(3)));
/// ```
#[derive(Debug, Clone)]
pub struct SimpleTrr {
    capacity: usize,
    /// (row, count) pairs; linear scans are fine at ≤30 entries.
    table: Vec<(RowId, u64)>,
}

impl SimpleTrr {
    /// Creates a TRR-like tracker with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "TRR needs at least one entry");
        Self {
            capacity,
            table: Vec::with_capacity(capacity),
        }
    }

    /// Tracked count for `row`.
    #[must_use]
    pub fn count(&self, row: RowId) -> Option<u64> {
        self.table.iter().find(|(r, _)| *r == row).map(|(_, c)| *c)
    }

    /// Number of occupied entries.
    #[must_use]
    pub fn occupied(&self) -> usize {
        self.table.len()
    }
}

impl InDramTracker for SimpleTrr {
    fn on_activation(&mut self, row: RowId, _rng: &mut dyn Rng64) -> Option<MitigationDecision> {
        if let Some(entry) = self.table.iter_mut().find(|(r, _)| *r == row) {
            entry.1 += 1;
            return None;
        }
        if self.table.len() < self.capacity {
            self.table.push((row, 1));
            return None;
        }
        // Evict the coldest entry; the newcomer starts over at 1.
        let coldest = self
            .table
            .iter()
            .enumerate()
            .min_by_key(|(_, (r, c))| (*c, r.0))
            .map(|(i, _)| i)
            .expect("table is full, hence non-empty");
        self.table[coldest] = (row, 1);
        None
    }

    fn on_refresh(&mut self, _rng: &mut dyn Rng64) -> MitigationDecision {
        let Some(hottest) = self
            .table
            .iter()
            .enumerate()
            .max_by_key(|(_, (r, c))| (*c, u32::MAX - r.0))
            .map(|(i, _)| i)
        else {
            return MitigationDecision::None;
        };
        let (row, _) = self.table.swap_remove(hottest);
        MitigationDecision::Aggressor(row)
    }

    fn name(&self) -> &'static str {
        "TRR"
    }

    fn live_entries(&self) -> usize {
        self.table.len()
    }

    fn entries(&self) -> usize {
        self.capacity
    }

    /// 18-bit row + 10-bit saturating counter per entry.
    fn storage_bits(&self) -> u64 {
        self.capacity as u64 * 28
    }

    fn reset(&mut self, _rng: &mut dyn Rng64) {
        self.table.clear();
    }

    /// `[len, row₀, count₀, …]` in table order (the vector order never
    /// influences decisions — eviction and mitigation both use total
    /// `(count, row)` orders — but preserving it keeps the restored state
    /// literally identical).
    fn snapshot_state(&self) -> Vec<u64> {
        let mut words = vec![self.table.len() as u64];
        for (row, count) in &self.table {
            words.push(u64::from(row.0));
            words.push(*count);
        }
        words
    }

    fn restore_state(&mut self, state: &[u64]) -> Result<(), String> {
        let (&len, rest) = state
            .split_first()
            .ok_or_else(|| "TRR: truncated state".to_string())?;
        let len = usize::try_from(len).map_err(|_| "TRR: table length overflow".to_string())?;
        if len > self.capacity {
            return Err(format!(
                "TRR: {len} entries exceed capacity {}",
                self.capacity
            ));
        }
        if rest.len() != 2 * len {
            return Err(format!(
                "TRR: expected {} table words, got {}",
                2 * len,
                rest.len()
            ));
        }
        self.table.clear();
        for pair in rest.chunks_exact(2) {
            let row =
                u32::try_from(pair[0]).map_err(|_| format!("TRR: row {} exceeds u32", pair[0]))?;
            self.table.push((RowId(row), pair[1]));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mint_rng::Xoshiro256StarStar;

    fn rng(seed: u64) -> Xoshiro256StarStar {
        Xoshiro256StarStar::seed_from_u64(seed)
    }

    #[test]
    fn tracks_single_aggressor_fine() {
        let mut r = rng(1);
        let mut trr = SimpleTrr::new(4);
        for _ in 0..10 {
            trr.on_activation(RowId(5), &mut r);
        }
        assert!(trr.on_refresh(&mut r).mitigates(RowId(5)));
    }

    #[test]
    fn many_aggressors_exceed_capacity() {
        // TRRespass shape: with more aggressors than entries, at least
        // (aggressors − capacity) rows are untracked at any moment, so a
        // majority of attack activations land on rows with no history.
        let mut r = rng(2);
        let mut trr = SimpleTrr::new(4);
        let mut untracked_hits = 0u32;
        let mut total = 0u32;
        for _round in 0..100u32 {
            for agg in 0..8u32 {
                if trr.count(RowId(agg)).is_none() {
                    untracked_hits += 1;
                }
                trr.on_activation(RowId(agg), &mut r);
                total += 1;
            }
            assert!(trr.occupied() <= 4);
        }
        assert!(
            untracked_hits * 2 >= total,
            "at least half the attack ACTs must hit untracked rows \
             ({untracked_hits}/{total})"
        );
    }

    #[test]
    fn eviction_picks_coldest() {
        let mut r = rng(3);
        let mut trr = SimpleTrr::new(2);
        for _ in 0..5 {
            trr.on_activation(RowId(1), &mut r);
        }
        trr.on_activation(RowId(2), &mut r);
        trr.on_activation(RowId(3), &mut r); // evicts row 2 (count 1)
        assert_eq!(trr.count(RowId(1)), Some(5));
        assert_eq!(trr.count(RowId(2)), None);
        assert_eq!(trr.count(RowId(3)), Some(1));
    }

    #[test]
    fn refresh_evicts_the_mitigated_row() {
        let mut r = rng(4);
        let mut trr = SimpleTrr::new(4);
        trr.on_activation(RowId(1), &mut r);
        let _ = trr.on_refresh(&mut r);
        assert_eq!(trr.occupied(), 0);
    }

    #[test]
    fn empty_no_decision_and_metadata() {
        let mut r = rng(5);
        let mut trr = SimpleTrr::new(16);
        assert!(trr.on_refresh(&mut r).is_none());
        assert_eq!(trr.entries(), 16);
        assert_eq!(trr.name(), "TRR");
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_rejected() {
        let _ = SimpleTrr::new(0);
    }
}
