//! Graphene: the memory-controller-side Misra-Gries tracker used in the
//! paper's storage comparison (Table IX).

use mint_core::{InDramTracker, MitigationDecision};
use mint_dram::RowId;
use mint_rng::Rng64;
use std::collections::HashMap;

/// Configuration of a [`Graphene`] tracker.
///
/// Graphene (MICRO 2020) sizes its Misra-Gries table against the worst case:
/// to guarantee that any row reaching the mitigation threshold `T_mit` is
/// tracked, a table observing `W` activations per reset window needs
/// `entries ≥ W / T_mit` counters. Graphene mitigates at `T_mit = TRH / 4`
/// (a quarter of the threshold, since an aggressor may be hammered from both
/// sides and be in flight), which is the sizing reproduced here for
/// Table IX.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GrapheneConfig {
    /// Misra-Gries entries.
    pub entries: usize,
    /// Counter value at which a tracked row is (proactively) mitigated.
    pub mitigation_threshold: u64,
}

impl GrapheneConfig {
    /// Sizes Graphene for a double-sided Rowhammer threshold `trh_d`,
    /// observing `acts_per_window` activations between table resets
    /// (one tREFW: 598 016 for the paper's DDR5 configuration).
    ///
    /// # Panics
    ///
    /// Panics if `trh_d < 4`.
    #[must_use]
    pub fn for_threshold(trh_d: u32, acts_per_window: u64) -> Self {
        assert!(trh_d >= 4, "threshold too small to size Graphene");
        let t_mit = u64::from(trh_d) / 4;
        let entries = acts_per_window.div_ceil(t_mit) as usize;
        Self {
            entries,
            mitigation_threshold: t_mit,
        }
    }

    /// SRAM bytes: 18-bit row address plus a counter wide enough for the
    /// mitigation threshold, per entry.
    #[must_use]
    pub fn storage_bytes(&self) -> u64 {
        let counter_bits = 64 - self.mitigation_threshold.leading_zeros() as u64;
        (self.entries as u64 * (18 + counter_bits)).div_ceil(8)
    }
}

/// Graphene, included for the Table IX storage comparison and as an extra
/// baseline: a Misra-Gries aggressor table that *proactively* mitigates any
/// row whose counter reaches the mitigation threshold (returning the
/// decision straight from [`on_activation`](InDramTracker::on_activation),
/// as the MC-side original does with its own refresh commands).
///
/// # Examples
///
/// ```
/// use mint_core::InDramTracker;
/// use mint_dram::RowId;
/// use mint_rng::Xoshiro256StarStar;
/// use mint_trackers::{Graphene, GrapheneConfig};
///
/// let mut rng = Xoshiro256StarStar::seed_from_u64(8);
/// let mut g = Graphene::new(GrapheneConfig { entries: 8, mitigation_threshold: 5 });
/// let mut mitigated = false;
/// for _ in 0..5 {
///     mitigated |= g.on_activation(RowId(3), &mut rng).is_some();
/// }
/// assert!(mitigated); // fires exactly at the threshold
/// ```
#[derive(Debug, Clone)]
pub struct Graphene {
    config: GrapheneConfig,
    table: HashMap<RowId, u64>,
}

impl Graphene {
    /// Creates a Graphene tracker.
    ///
    /// # Panics
    ///
    /// Panics if `entries == 0` or `mitigation_threshold == 0`.
    #[must_use]
    pub fn new(config: GrapheneConfig) -> Self {
        assert!(config.entries > 0, "Graphene needs at least one entry");
        assert!(
            config.mitigation_threshold > 0,
            "mitigation threshold must be non-zero"
        );
        Self {
            config,
            table: HashMap::with_capacity(config.entries),
        }
    }

    /// The configuration (including derived storage size).
    #[must_use]
    pub fn config(&self) -> &GrapheneConfig {
        &self.config
    }

    /// Tracked count for `row`.
    #[must_use]
    pub fn count(&self, row: RowId) -> Option<u64> {
        self.table.get(&row).copied()
    }

    /// Resets the table (Graphene does this every reset window).
    pub fn reset_window(&mut self) {
        self.table.clear();
    }
}

impl InDramTracker for Graphene {
    fn on_activation(&mut self, row: RowId, _rng: &mut dyn Rng64) -> Option<MitigationDecision> {
        if let Some(c) = self.table.get_mut(&row) {
            *c += 1;
            if *c >= self.config.mitigation_threshold {
                self.table.remove(&row);
                return Some(MitigationDecision::Aggressor(row));
            }
            return None;
        }
        if self.table.len() < self.config.entries {
            self.table.insert(row, 1);
            return None;
        }
        // Misra-Gries spill: decrement all, evict zeros.
        self.table.retain(|_, c| {
            *c -= 1;
            *c > 0
        });
        None
    }

    fn on_refresh(&mut self, _rng: &mut dyn Rng64) -> MitigationDecision {
        // Graphene mitigates proactively on threshold crossings, not at REF.
        MitigationDecision::None
    }

    fn name(&self) -> &'static str {
        "Graphene"
    }

    fn live_entries(&self) -> usize {
        self.table.len()
    }

    fn entries(&self) -> usize {
        self.config.entries
    }

    fn storage_bits(&self) -> u64 {
        self.config.storage_bytes() * 8
    }

    fn reset(&mut self, _rng: &mut dyn Rng64) {
        self.table.clear();
    }

    fn snapshot_state(&self) -> Vec<u64> {
        crate::table_words::snapshot_table(&self.table)
    }

    fn restore_state(&mut self, state: &[u64]) -> Result<(), String> {
        crate::table_words::restore_table(state, self.name(), self.config.entries, &mut self.table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mint_rng::Xoshiro256StarStar;

    fn rng(seed: u64) -> Xoshiro256StarStar {
        Xoshiro256StarStar::seed_from_u64(seed)
    }

    #[test]
    fn sizing_scales_inversely_with_threshold() {
        let w = 598_016;
        let at_3k = GrapheneConfig::for_threshold(3000, w);
        let at_300 = GrapheneConfig::for_threshold(300, w);
        assert!(at_300.entries >= 9 * at_3k.entries);
        assert!(at_300.storage_bytes() > at_3k.storage_bytes());
        // Paper Table IX reports tens/hundreds of KB; our analytic sizing is
        // leaner but must still be orders of magnitude above MINT's 15 B.
        assert!(at_3k.storage_bytes() > 2_000);
        assert!(at_300.storage_bytes() > 20_000);
    }

    #[test]
    fn proactive_mitigation_at_threshold() {
        let mut r = rng(1);
        let mut g = Graphene::new(GrapheneConfig {
            entries: 4,
            mitigation_threshold: 3,
        });
        assert!(g.on_activation(RowId(1), &mut r).is_none());
        assert!(g.on_activation(RowId(1), &mut r).is_none());
        let d = g.on_activation(RowId(1), &mut r);
        assert_eq!(d, Some(MitigationDecision::Aggressor(RowId(1))));
        // Counter cleared afterwards.
        assert_eq!(g.count(RowId(1)), None);
    }

    #[test]
    fn guarantee_no_row_exceeds_threshold_plus_spill() {
        // Misra-Gries property: with entries = W / T, no row can reach its
        // true count T without being tracked; hence no row crosses
        // 2T unmitigated even under churn.
        let mut r = rng(2);
        let t = 10u64;
        let w = 400u64;
        let entries = (w / t) as usize;
        let mut g = Graphene::new(GrapheneConfig {
            entries,
            mitigation_threshold: t,
        });
        let mut unmitigated: HashMap<RowId, u64> = HashMap::new();
        let mut worst = 0u64;
        for i in 0..w {
            // Adversarial churn: 50 rows round-robin + one hot row.
            let row = if i % 3 == 0 {
                RowId(999)
            } else {
                RowId((i % 50) as u32)
            };
            let c = unmitigated.entry(row).or_insert(0);
            *c += 1;
            if g.on_activation(row, &mut r).is_some() {
                *c = 0;
            }
            worst = worst.max(*unmitigated.get(&row).unwrap());
        }
        assert!(worst <= 2 * t, "worst unmitigated count {worst} > 2T");
    }

    #[test]
    fn refresh_is_a_no_op() {
        let mut r = rng(3);
        let mut g = Graphene::new(GrapheneConfig {
            entries: 4,
            mitigation_threshold: 100,
        });
        g.on_activation(RowId(1), &mut r);
        assert!(g.on_refresh(&mut r).is_none());
        assert_eq!(g.count(RowId(1)), Some(1));
    }

    #[test]
    #[should_panic(expected = "threshold too small")]
    fn tiny_threshold_rejected() {
        let _ = GrapheneConfig::for_threshold(3, 1000);
    }

    #[test]
    fn reset_window_clears() {
        let mut r = rng(4);
        let mut g = Graphene::new(GrapheneConfig {
            entries: 4,
            mitigation_threshold: 100,
        });
        g.on_activation(RowId(1), &mut r);
        g.reset_window();
        assert_eq!(g.count(RowId(1)), None);
    }
}
