//! PARFM: buffer every activation, mitigate one at random (paper §V-G).

use mint_core::{InDramTracker, MitigationDecision};
use mint_dram::RowId;
use mint_rng::Rng64;

/// PARFM (from the Mithril paper, as characterised in MINT §V-G): a
/// past-centric probabilistic tracker that buffers *all* activations of the
/// tREFI window — up to `MaxACT` = 73 entries — and at REF mitigates one
/// buffered entry chosen uniformly at random, then clears the buffer.
///
/// Selection probability per activation is exactly `1/M` like MINT's, but
/// the cost is 73 entries instead of 1, and — crucially — PARFM only sees
/// demand activations, so it is **vulnerable to transitive attacks** (its
/// Table III MinTRH-D of 4096 comes from the 8192 silent victim refreshes a
/// single-sided attack can aim at a victim-of-victim per tREFW).
///
/// # Examples
///
/// ```
/// use mint_core::InDramTracker;
/// use mint_dram::RowId;
/// use mint_rng::Xoshiro256StarStar;
/// use mint_trackers::Parfm;
///
/// let mut rng = Xoshiro256StarStar::seed_from_u64(2);
/// let mut parfm = Parfm::new(73);
/// for _ in 0..73 {
///     parfm.on_activation(RowId(11), &mut rng);
/// }
/// // The buffer holds only row 11, so mitigation is guaranteed.
/// assert!(parfm.on_refresh(&mut rng).mitigates(RowId(11)));
/// ```
#[derive(Debug, Clone)]
pub struct Parfm {
    capacity: usize,
    buffer: Vec<RowId>,
    /// Activations that arrived with a full buffer (possible only under
    /// refresh postponement, where they become invisible — §VI-B).
    overflow: u64,
}

impl Parfm {
    /// Creates a PARFM tracker able to buffer `capacity` activations
    /// (`MaxACT` in the paper).
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "PARFM capacity must be non-zero");
        Self {
            capacity,
            buffer: Vec::with_capacity(capacity),
            overflow: 0,
        }
    }

    /// Number of buffered activations.
    #[must_use]
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }

    /// Activations lost to a full buffer (§VI-B postponement weakness).
    #[must_use]
    pub fn overflowed(&self) -> u64 {
        self.overflow
    }
}

impl InDramTracker for Parfm {
    fn on_activation(&mut self, row: RowId, _rng: &mut dyn Rng64) -> Option<MitigationDecision> {
        if self.buffer.len() < self.capacity {
            self.buffer.push(row);
        } else {
            self.overflow += 1;
        }
        None
    }

    fn on_refresh(&mut self, rng: &mut dyn Rng64) -> MitigationDecision {
        if self.buffer.is_empty() {
            return MitigationDecision::None;
        }
        let idx = rng.gen_range_u64(self.buffer.len() as u64) as usize;
        let row = self.buffer[idx];
        self.buffer.clear();
        MitigationDecision::Aggressor(row)
    }

    fn name(&self) -> &'static str {
        "PARFM"
    }

    fn live_entries(&self) -> usize {
        self.buffer.len()
    }

    fn overflow_count(&self) -> u64 {
        self.overflow
    }

    fn entries(&self) -> usize {
        self.capacity
    }

    /// 18 bits of row address per buffered entry.
    fn storage_bits(&self) -> u64 {
        self.capacity as u64 * 18
    }

    fn reset(&mut self, _rng: &mut dyn Rng64) {
        self.buffer.clear();
        self.overflow = 0;
    }

    /// `[overflow, len, rows…]` in buffer order (order matters: mitigation
    /// indexes the buffer with an RNG draw).
    fn snapshot_state(&self) -> Vec<u64> {
        let mut words = vec![self.overflow, self.buffer.len() as u64];
        words.extend(self.buffer.iter().map(|r| u64::from(r.0)));
        words
    }

    fn restore_state(&mut self, state: &[u64]) -> Result<(), String> {
        let [overflow, len, rows @ ..] = state else {
            return Err("PARFM: truncated state".to_string());
        };
        let len = usize::try_from(*len).map_err(|_| "PARFM: buffer length overflow".to_string())?;
        if len > self.capacity {
            return Err(format!(
                "PARFM: {len} buffered exceeds capacity {}",
                self.capacity
            ));
        }
        if rows.len() != len {
            return Err(format!("PARFM: expected {len} rows, got {}", rows.len()));
        }
        self.overflow = *overflow;
        self.buffer.clear();
        for &w in rows {
            let row = u32::try_from(w).map_err(|_| format!("PARFM: row {w} exceeds u32"))?;
            self.buffer.push(RowId(row));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mint_rng::Xoshiro256StarStar;

    fn rng(seed: u64) -> Xoshiro256StarStar {
        Xoshiro256StarStar::seed_from_u64(seed)
    }

    #[test]
    fn selection_probability_proportional_to_copies() {
        // A row with c of the 73 buffer slots is selected w.p. c/73.
        let mut r = rng(1);
        let mut parfm = Parfm::new(73);
        let trials = 100_000;
        let copies = 5u32;
        let mut hits = 0;
        for _ in 0..trials {
            for i in 0..73u32 {
                let row = if i < copies { RowId(9) } else { RowId(100 + i) };
                parfm.on_activation(row, &mut r);
            }
            if parfm.on_refresh(&mut r).mitigates(RowId(9)) {
                hits += 1;
            }
        }
        let rate = f64::from(hits) / f64::from(trials);
        let expect = f64::from(copies) / 73.0;
        assert!((rate - expect).abs() < 3e-3, "{rate} vs {expect}");
    }

    #[test]
    fn empty_window_selects_nothing() {
        let mut r = rng(2);
        let mut parfm = Parfm::new(73);
        assert!(parfm.on_refresh(&mut r).is_none());
    }

    #[test]
    fn partial_window_always_selects_something() {
        // Unlike InDRAM-PARA, PARFM never wastes a REF if anything ran.
        let mut r = rng(3);
        let mut parfm = Parfm::new(73);
        for _ in 0..1000 {
            parfm.on_activation(RowId(1), &mut r);
            assert!(parfm.on_refresh(&mut r).mitigates(RowId(1)));
        }
    }

    #[test]
    fn postponement_overflow_makes_acts_invisible() {
        // §VI-B: with REFs postponed, everything past MaxACT is lost.
        let mut r = rng(4);
        let mut parfm = Parfm::new(73);
        for i in 0..73u32 {
            parfm.on_activation(RowId(1000 + i), &mut r); // decoys fill buffer
        }
        for _ in 0..292 {
            parfm.on_activation(RowId(666), &mut r); // attack row invisible
        }
        assert_eq!(parfm.overflowed(), 292);
        assert!(!parfm.on_refresh(&mut r).mitigates(RowId(666)));
    }

    #[test]
    fn refresh_clears_buffer() {
        let mut r = rng(5);
        let mut parfm = Parfm::new(73);
        for _ in 0..73 {
            parfm.on_activation(RowId(2), &mut r);
        }
        let _ = parfm.on_refresh(&mut r);
        assert_eq!(parfm.buffered(), 0);
    }

    #[test]
    fn metadata() {
        let parfm = Parfm::new(73);
        assert_eq!(parfm.entries(), 73);
        assert_eq!(parfm.storage_bits(), 73 * 18);
        assert_eq!(parfm.name(), "PARFM");
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_rejected() {
        let _ = Parfm::new(0);
    }
}
