//! PrIDE: PARA sampling into a small FIFO (paper §IX related work).

use mint_core::{InDramTracker, MitigationDecision};
use mint_dram::RowId;
use mint_rng::Rng64;
use std::collections::VecDeque;

/// PrIDE (ISCA 2024), as characterised in MINT §IX: each activation is
/// sampled with probability `p` (1/73); sampled rows enter a small FIFO
/// (4 entries) instead of a single register, and each REF mitigates the
/// FIFO head.
///
/// The FIFO reduces InDRAM-PARA's *loss* (a sampled row being dropped)
/// from 63% to about 10%, but introduces *tardiness*: a sampled row can
/// wait several tREFI behind earlier samples before being mitigated. MINT
/// has zero loss and zero tardiness by construction, which is why PrIDE's
/// MinTRH-D (1750) sits 25% above MINT's (paper §IX).
///
/// # Examples
///
/// ```
/// use mint_core::InDramTracker;
/// use mint_dram::RowId;
/// use mint_rng::Xoshiro256StarStar;
/// use mint_trackers::Pride;
///
/// let mut rng = Xoshiro256StarStar::seed_from_u64(7);
/// let mut pride = Pride::new(1.0 / 73.0, 4);
/// for _ in 0..73 {
///     pride.on_activation(RowId(8), &mut rng);
/// }
/// let _maybe = pride.on_refresh(&mut rng); // head of FIFO, if anything sampled
/// ```
#[derive(Debug, Clone)]
pub struct Pride {
    p: f64,
    capacity: usize,
    fifo: VecDeque<RowId>,
    /// Samples dropped because the FIFO was full (PrIDE's ~10% loss).
    lost: u64,
}

impl Pride {
    /// Creates a PrIDE tracker with sampling probability `p` and FIFO depth
    /// `capacity` (4 in the paper).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < p <= 1` and `capacity > 0`.
    #[must_use]
    pub fn new(p: f64, capacity: usize) -> Self {
        assert!(
            p > 0.0 && p <= 1.0,
            "sampling probability must be in (0, 1]"
        );
        assert!(capacity > 0, "PrIDE FIFO needs at least one entry");
        Self {
            p,
            capacity,
            fifo: VecDeque::with_capacity(capacity),
            lost: 0,
        }
    }

    /// Samples currently waiting for mitigation.
    #[must_use]
    pub fn queued(&self) -> usize {
        self.fifo.len()
    }

    /// Samples dropped to a full FIFO so far.
    #[must_use]
    pub fn lost(&self) -> u64 {
        self.lost
    }
}

impl InDramTracker for Pride {
    fn on_activation(&mut self, row: RowId, rng: &mut dyn Rng64) -> Option<MitigationDecision> {
        if rng.gen_bool(self.p) {
            if self.fifo.len() < self.capacity {
                self.fifo.push_back(row);
            } else {
                self.lost += 1;
            }
        }
        None
    }

    fn on_refresh(&mut self, _rng: &mut dyn Rng64) -> MitigationDecision {
        match self.fifo.pop_front() {
            Some(row) => MitigationDecision::Aggressor(row),
            None => MitigationDecision::None,
        }
    }

    fn name(&self) -> &'static str {
        "PrIDE"
    }

    fn live_entries(&self) -> usize {
        self.fifo.len()
    }

    fn overflow_count(&self) -> u64 {
        self.lost
    }

    fn entries(&self) -> usize {
        self.capacity
    }

    /// 18-bit row per FIFO slot.
    fn storage_bits(&self) -> u64 {
        self.capacity as u64 * 18
    }

    fn reset(&mut self, _rng: &mut dyn Rng64) {
        self.fifo.clear();
        self.lost = 0;
    }

    /// `[lost, len, rows…]` in FIFO order (head first).
    fn snapshot_state(&self) -> Vec<u64> {
        let mut words = vec![self.lost, self.fifo.len() as u64];
        words.extend(self.fifo.iter().map(|r| u64::from(r.0)));
        words
    }

    fn restore_state(&mut self, state: &[u64]) -> Result<(), String> {
        let [lost, len, rows @ ..] = state else {
            return Err("PrIDE: truncated state".to_string());
        };
        let len = usize::try_from(*len).map_err(|_| "PrIDE: FIFO length overflow".to_string())?;
        if len > self.capacity {
            return Err(format!(
                "PrIDE: {len} queued exceeds capacity {}",
                self.capacity
            ));
        }
        if rows.len() != len {
            return Err(format!("PrIDE: expected {len} rows, got {}", rows.len()));
        }
        self.lost = *lost;
        self.fifo.clear();
        for &w in rows {
            let row = u32::try_from(w).map_err(|_| format!("PrIDE: row {w} exceeds u32"))?;
            self.fifo.push_back(RowId(row));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mint_rng::Xoshiro256StarStar;

    fn rng(seed: u64) -> Xoshiro256StarStar {
        Xoshiro256StarStar::seed_from_u64(seed)
    }

    #[test]
    fn loss_rate_far_below_single_register() {
        // Fully-loaded windows, steady state: measure dropped samples.
        let mut r = rng(1);
        let mut pride = Pride::new(1.0 / 73.0, 4);
        let mut samples = 0u64;
        for _ in 0..20_000 {
            for k in 0..73u32 {
                let before = pride.queued();
                pride.on_activation(RowId(k), &mut r);
                if pride.queued() > before {
                    samples += 1;
                }
            }
            let _ = pride.on_refresh(&mut r);
        }
        let total_sampled = samples + pride.lost();
        let loss = pride.lost() as f64 / total_sampled as f64;
        // Paper: ~10% loss with a 4-entry FIFO (vs 63% for 1 register).
        assert!(loss < 0.2, "loss {loss} too high");
    }

    #[test]
    fn fifo_order_is_preserved() {
        let mut r = rng(2);
        let mut pride = Pride::new(1.0, 4); // sample everything
        pride.on_activation(RowId(1), &mut r);
        pride.on_activation(RowId(2), &mut r);
        pride.on_activation(RowId(3), &mut r);
        assert!(pride.on_refresh(&mut r).mitigates(RowId(1)));
        assert!(pride.on_refresh(&mut r).mitigates(RowId(2)));
        assert!(pride.on_refresh(&mut r).mitigates(RowId(3)));
        assert!(pride.on_refresh(&mut r).is_none());
    }

    #[test]
    fn full_fifo_drops_new_samples() {
        let mut r = rng(3);
        let mut pride = Pride::new(1.0, 2);
        for i in 0..5u32 {
            pride.on_activation(RowId(i), &mut r);
        }
        assert_eq!(pride.queued(), 2);
        assert_eq!(pride.lost(), 3);
    }

    #[test]
    fn tardiness_exists() {
        // A sample behind 3 others waits 3 REFs: that is PrIDE's tardiness.
        let mut r = rng(4);
        let mut pride = Pride::new(1.0, 4);
        for i in 0..4u32 {
            pride.on_activation(RowId(i), &mut r);
        }
        let mut waited = 0;
        loop {
            let d = pride.on_refresh(&mut r);
            if d.mitigates(RowId(3)) {
                break;
            }
            waited += 1;
        }
        assert_eq!(waited, 3);
    }

    #[test]
    fn metadata() {
        let pride = Pride::new(1.0 / 73.0, 4);
        assert_eq!(pride.entries(), 4);
        assert_eq!(pride.storage_bits(), 72);
        assert_eq!(pride.name(), "PrIDE");
    }

    #[test]
    #[should_panic(expected = "FIFO needs")]
    fn zero_capacity_rejected() {
        let _ = Pride::new(0.5, 0);
    }

    #[test]
    fn reset_clears_everything() {
        let mut r = rng(5);
        let mut pride = Pride::new(1.0, 4);
        pride.on_activation(RowId(1), &mut r);
        pride.reset(&mut r);
        assert_eq!(pride.queued(), 0);
        assert_eq!(pride.lost(), 0);
    }
}
