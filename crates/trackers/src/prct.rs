//! PRCT: the idealized Per-Row Counter-Table (paper §II-H).

use mint_core::{InDramTracker, MitigationDecision};
use mint_dram::RowId;
use mint_rng::Rng64;
use std::collections::HashMap;

/// The idealized Per-Row Counter-Table: one activation counter per DRAM row,
/// held in SRAM (impractically large — 128K entries per bank — but the
/// paper's yardstick for how good *any* in-DRAM tracker could be at a given
/// mitigation rate).
///
/// Behaviour (paper §II-H and §V-G):
///
/// * every activation — demand **or mitigative refresh** — increments the
///   activated row's counter (counting silent refreshes is what makes PRCT
///   immune to transitive attacks);
/// * at each REF the row with the highest non-zero counter is mitigated and
///   its counter cleared (the paper's PRCT "always picks a row to be
///   mitigated as long as there is at least one activation").
///
/// Its MinTRH is set purely by the mitigation rate: the ProTRR Feinting
/// attack pushes two final rows to ~623 activations each, so MinTRH-D = 623
/// (Table III).
///
/// The implementation stores only the non-zero counters in a hash map; the
/// reported [`entries`](InDramTracker::entries)/storage reflect the modelled
/// hardware (one counter per row).
///
/// # Examples
///
/// ```
/// use mint_core::InDramTracker;
/// use mint_dram::RowId;
/// use mint_rng::Xoshiro256StarStar;
/// use mint_trackers::Prct;
///
/// let mut rng = Xoshiro256StarStar::seed_from_u64(3);
/// let mut prct = Prct::new(1024);
/// prct.on_activation(RowId(5), &mut rng);
/// prct.on_activation(RowId(5), &mut rng);
/// prct.on_activation(RowId(9), &mut rng);
/// assert!(prct.on_refresh(&mut rng).mitigates(RowId(5)));
/// ```
#[derive(Debug, Clone)]
pub struct Prct {
    rows: u32,
    counters: HashMap<RowId, u64>,
}

impl Prct {
    /// Creates a PRCT for a bank of `rows` rows.
    ///
    /// # Panics
    ///
    /// Panics if `rows == 0`.
    #[must_use]
    pub fn new(rows: u32) -> Self {
        assert!(rows > 0, "PRCT needs at least one row");
        Self {
            rows,
            counters: HashMap::new(),
        }
    }

    /// Current counter value for `row`.
    #[must_use]
    pub fn count(&self, row: RowId) -> u64 {
        self.counters.get(&row).copied().unwrap_or(0)
    }

    /// Number of rows with a non-zero counter.
    #[must_use]
    pub fn active_rows(&self) -> usize {
        self.counters.len()
    }

    fn bump(&mut self, row: RowId) {
        *self.counters.entry(row).or_insert(0) += 1;
    }

    /// The row with the maximum counter (ties broken towards the smaller
    /// row id for determinism).
    fn argmax(&self) -> Option<RowId> {
        self.counters
            .iter()
            .max_by(|a, b| a.1.cmp(b.1).then_with(|| b.0.cmp(a.0)))
            .map(|(row, _)| *row)
    }
}

impl InDramTracker for Prct {
    fn on_activation(&mut self, row: RowId, _rng: &mut dyn Rng64) -> Option<MitigationDecision> {
        self.bump(row);
        None
    }

    fn on_mitigative_refresh(&mut self, row: RowId) {
        // A victim refresh is an activation of the victim row; counting it
        // is what defeats Half-Double (paper §V-G "PRCT ... immune").
        self.bump(row);
    }

    fn on_refresh(&mut self, _rng: &mut dyn Rng64) -> MitigationDecision {
        match self.argmax() {
            Some(row) => {
                self.counters.remove(&row);
                MitigationDecision::Aggressor(row)
            }
            None => MitigationDecision::None,
        }
    }

    fn name(&self) -> &'static str {
        "PRCT"
    }

    fn live_entries(&self) -> usize {
        self.counters.len()
    }

    fn entries(&self) -> usize {
        self.rows as usize
    }

    /// One 16-bit counter per row (idealized hardware).
    fn storage_bits(&self) -> u64 {
        u64::from(self.rows) * 16
    }

    fn reset(&mut self, _rng: &mut dyn Rng64) {
        self.counters.clear();
    }

    fn snapshot_state(&self) -> Vec<u64> {
        crate::table_words::snapshot_table(&self.counters)
    }

    fn restore_state(&mut self, state: &[u64]) -> Result<(), String> {
        crate::table_words::restore_table(
            state,
            self.name(),
            self.rows as usize,
            &mut self.counters,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mint_rng::Xoshiro256StarStar;

    fn rng(seed: u64) -> Xoshiro256StarStar {
        Xoshiro256StarStar::seed_from_u64(seed)
    }

    #[test]
    fn mitigates_hottest_row() {
        let mut r = rng(1);
        let mut prct = Prct::new(128);
        for _ in 0..10 {
            prct.on_activation(RowId(3), &mut r);
        }
        for _ in 0..7 {
            prct.on_activation(RowId(4), &mut r);
        }
        assert!(prct.on_refresh(&mut r).mitigates(RowId(3)));
        // Counter cleared: next REF picks the runner-up.
        assert!(prct.on_refresh(&mut r).mitigates(RowId(4)));
        assert!(prct.on_refresh(&mut r).is_none());
    }

    #[test]
    fn counts_mitigative_refreshes() {
        let mut r = rng(2);
        let mut prct = Prct::new(128);
        // Transitive attack shape: victim refreshes hammer row 9 silently.
        for _ in 0..5 {
            prct.on_mitigative_refresh(RowId(9));
        }
        prct.on_activation(RowId(50), &mut r);
        // Row 9's silent count (5) beats row 50's demand count (1).
        assert!(prct.on_refresh(&mut r).mitigates(RowId(9)));
    }

    #[test]
    fn deterministic_tie_break() {
        let mut r = rng(3);
        let mut prct = Prct::new(128);
        prct.on_activation(RowId(20), &mut r);
        prct.on_activation(RowId(10), &mut r);
        assert!(prct.on_refresh(&mut r).mitigates(RowId(10)));
    }

    #[test]
    fn always_mitigates_when_any_activation_exists() {
        let mut r = rng(4);
        let mut prct = Prct::new(128);
        prct.on_activation(RowId(1), &mut r);
        assert!(prct.on_refresh(&mut r).is_some());
    }

    #[test]
    fn entries_and_storage_model_full_table() {
        let prct = Prct::new(128 * 1024);
        assert_eq!(prct.entries(), 128 * 1024);
        assert_eq!(prct.storage_bits(), 128 * 1024 * 16);
        assert_eq!(prct.name(), "PRCT");
    }

    #[test]
    fn reset_clears_counters() {
        let mut r = rng(5);
        let mut prct = Prct::new(128);
        prct.on_activation(RowId(2), &mut r);
        prct.reset(&mut r);
        assert_eq!(prct.active_rows(), 0);
        assert!(prct.on_refresh(&mut r).is_none());
    }

    #[test]
    #[should_panic(expected = "at least one row")]
    fn zero_rows_rejected() {
        let _ = Prct::new(0);
    }
}
