//! `mint-obs`: the deterministic observability substrate — monotonic
//! counters, log₂-bucketed histograms, and a sim-time periodic sampler
//! producing time series.
//!
//! Every primitive here is a plain value type over `u64`s: recording is
//! a handful of integer ops, state is cloneable and bit-comparable, and
//! nothing reads a wall clock. The simulator samples on **simulated
//! picoseconds** exclusively, so enabling telemetry cannot perturb a
//! run — the one layer allowed to feed wall-clock values in is the
//! resident service (`mint-serve`), and it does so through the same
//! types with millisecond values.
//!
//! The output side is the versioned [`TelemetryReport`]: a flat list of
//! named [`Section`]s, each holding counters, gauges, histograms and
//! series, rendered to JSON ([`TelemetryReport::to_json`]), CSV
//! ([`TelemetryReport::to_csv`]) or Prometheus-style text exposition
//! ([`TelemetryReport::to_prometheus`]) with pinned byte layouts — the
//! same artifact discipline as the `BENCH_*.json` emitters.
//!
//! For checkpoint/restore the stateful primitives serialize to plain
//! `u64` word vectors ([`Log2Histogram::encode_words`],
//! [`TimeSeries::encode_words`]) so a host snapshot format can embed
//! them without this crate learning about it.

#![warn(missing_docs)]

/// Version stamped on every [`TelemetryReport`] (and its renderings).
pub const TELEMETRY_VERSION: u64 = 1;

/// A monotonic event counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// A fresh zero counter.
    #[must_use]
    pub fn new() -> Self {
        Self(0)
    }

    /// Counts one event.
    #[inline]
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Counts `n` events.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// The running total.
    #[must_use]
    pub fn get(self) -> u64 {
        self.0
    }

    /// Restores a total (checkpoint restore).
    pub fn set(&mut self, total: u64) {
        self.0 = total;
    }
}

/// The log₂ bucket index of `v`: 0 for 0, otherwise the bit length
/// (bucket `i ≥ 1` holds values in `[2^(i-1), 2^i)`).
#[must_use]
pub fn log2_bucket(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// A log₂-bucketed histogram of `u64` samples.
///
/// Bucket 0 counts zeros; bucket `i ≥ 1` counts values in
/// `[2^(i-1), 2^i)`. The bucket vector grows lazily to the highest
/// observed bucket, so an idle histogram is a few words. Count, sum,
/// min and max are tracked exactly alongside the buckets.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Log2Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Log2Histogram {
    /// A fresh empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        let b = log2_bucket(v);
        if self.buckets.len() <= b {
            self.buckets.resize(b + 1, 0);
        }
        self.buckets[b] += 1;
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded samples.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample (0 when empty).
    #[must_use]
    pub fn min(&self) -> u64 {
        self.min
    }

    /// Largest recorded sample (0 when empty).
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded samples (0.0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The bucket counts, lowest bucket first (empty when no samples).
    #[must_use]
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// The inclusive upper bound of bucket `i` (`0`, then `2^i - 1`).
    #[must_use]
    pub fn bucket_bound(i: usize) -> u64 {
        if i == 0 {
            0
        } else if i >= 64 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    /// Serializes the histogram to plain words for a host snapshot
    /// format: `[count, sum, min, max, n, bucket_0 .. bucket_{n-1}]`.
    #[must_use]
    pub fn encode_words(&self) -> Vec<u64> {
        let mut w = Vec::with_capacity(5 + self.buckets.len());
        w.extend([
            self.count,
            self.sum,
            self.min,
            self.max,
            self.buckets.len() as u64,
        ]);
        w.extend_from_slice(&self.buckets);
        w
    }

    /// Rebuilds a histogram from [`encode_words`](Self::encode_words)
    /// output.
    ///
    /// # Errors
    ///
    /// Returns a message for a truncated or length-inconsistent word
    /// vector.
    pub fn decode_words(words: &[u64]) -> Result<Self, String> {
        if words.len() < 5 {
            return Err(format!("histogram: {} words, need at least 5", words.len()));
        }
        let n = words[4] as usize;
        if words.len() != 5 + n {
            return Err(format!(
                "histogram: {} words for {} buckets",
                words.len(),
                n
            ));
        }
        Ok(Self {
            count: words[0],
            sum: words[1],
            min: words[2],
            max: words[3],
            buckets: words[5..].to_vec(),
        })
    }
}

/// A periodic sampler producing a time series: one `(t, value)` point
/// per elapsed period.
///
/// [`observe`](Self::observe) is driven with a monotonically
/// non-decreasing clock (simulated picoseconds in the simulator;
/// wall-clock milliseconds in the service layer) and records the
/// current value at every period boundary the clock has crossed —
/// a pure function of the observation stream, so two identical runs
/// produce identical series.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimeSeries {
    period: u64,
    next: u64,
    points: Vec<(u64, u64)>,
}

impl TimeSeries {
    /// A series sampling every `period` clock units (first point at
    /// `t = period`; `period = 0` is clamped to 1).
    #[must_use]
    pub fn new(period: u64) -> Self {
        let period = period.max(1);
        Self {
            period,
            next: period,
            points: Vec::new(),
        }
    }

    /// Records `value` for every period boundary crossed up to `now`.
    #[inline]
    pub fn observe(&mut self, now: u64, value: u64) {
        while self.next <= now {
            self.points.push((self.next, value));
            self.next += self.period;
        }
    }

    /// The sampling period.
    #[must_use]
    pub fn period(&self) -> u64 {
        self.period
    }

    /// The sampled `(t, value)` points, in time order.
    #[must_use]
    pub fn points(&self) -> &[(u64, u64)] {
        &self.points
    }

    /// Serializes the series to plain words:
    /// `[period, next, n, t_0, v_0 .. t_{n-1}, v_{n-1}]`.
    #[must_use]
    pub fn encode_words(&self) -> Vec<u64> {
        let mut w = Vec::with_capacity(3 + 2 * self.points.len());
        w.extend([self.period, self.next, self.points.len() as u64]);
        for &(t, v) in &self.points {
            w.extend([t, v]);
        }
        w
    }

    /// Rebuilds a series from [`encode_words`](Self::encode_words)
    /// output.
    ///
    /// # Errors
    ///
    /// Returns a message for a truncated or length-inconsistent word
    /// vector.
    pub fn decode_words(words: &[u64]) -> Result<Self, String> {
        if words.len() < 3 {
            return Err(format!("series: {} words, need at least 3", words.len()));
        }
        let n = words[2] as usize;
        if words.len() != 3 + 2 * n {
            return Err(format!("series: {} words for {} points", words.len(), n));
        }
        Ok(Self {
            period: words[0].max(1),
            next: words[1],
            points: words[3..].chunks(2).map(|p| (p[0], p[1])).collect(),
        })
    }
}

/// One named group of metrics in a [`TelemetryReport`] — typically one
/// layer of the stack (`session`, `channel0/sched`, `channel0/engine`,
/// `channel0/tracker`, `serve`, …).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Section {
    /// Section name; `/` separates layers, and is rendered as `_` in
    /// Prometheus exposition.
    pub name: String,
    /// Monotonic totals, in insertion order.
    pub counters: Vec<(String, u64)>,
    /// Point-in-time floating readings (rates, occupancies).
    pub gauges: Vec<(String, f64)>,
    /// Distributions.
    pub histograms: Vec<(String, Log2Histogram)>,
    /// Periodically sampled series.
    pub series: Vec<(String, TimeSeries)>,
}

impl Section {
    /// An empty section named `name`.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            ..Self::default()
        }
    }

    /// Appends a counter reading.
    pub fn counter(&mut self, name: impl Into<String>, total: u64) {
        self.counters.push((name.into(), total));
    }

    /// Appends a gauge reading.
    pub fn gauge(&mut self, name: impl Into<String>, value: f64) {
        self.gauges.push((name.into(), value));
    }

    /// Appends a histogram.
    pub fn histogram(&mut self, name: impl Into<String>, h: Log2Histogram) {
        self.histograms.push((name.into(), h));
    }

    /// Appends a time series.
    pub fn time_series(&mut self, name: impl Into<String>, s: TimeSeries) {
        self.series.push((name.into(), s));
    }
}

/// The versioned output of one observed run: every section a layer
/// contributed, in stack order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TelemetryReport {
    /// Report sections, in the order the layers were drained.
    pub sections: Vec<Section>,
}

impl TelemetryReport {
    /// An empty report.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a section (empty sections are kept — an idle layer is a
    /// reading too).
    pub fn push(&mut self, section: Section) {
        self.sections.push(section);
    }

    /// Looks a section up by name.
    #[must_use]
    pub fn section(&self, name: &str) -> Option<&Section> {
        self.sections.iter().find(|s| s.name == name)
    }

    /// A counter total by `section` and `name`.
    #[must_use]
    pub fn counter(&self, section: &str, name: &str) -> Option<u64> {
        self.section(section)?
            .counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Renders the pinned JSON form: one object with the version and
    /// every section, counters/gauges/histograms/series keyed by name,
    /// gauges at `{:.6}`.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\n  \"telemetry_version\": {TELEMETRY_VERSION},\n  \"sections\": [\n"
        ));
        for (i, s) in self.sections.iter().enumerate() {
            out.push_str(&format!("    {{\n      \"name\": \"{}\",\n", s.name));
            let counters = s
                .counters
                .iter()
                .map(|(n, v)| format!("\"{n}\": {v}"))
                .collect::<Vec<_>>()
                .join(", ");
            out.push_str(&format!("      \"counters\": {{{counters}}},\n"));
            let gauges = s
                .gauges
                .iter()
                .map(|(n, v)| format!("\"{n}\": {v:.6}"))
                .collect::<Vec<_>>()
                .join(", ");
            out.push_str(&format!("      \"gauges\": {{{gauges}}},\n"));
            let hists = s
                .histograms
                .iter()
                .map(|(n, h)| {
                    format!(
                        "\"{n}\": {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \
                         \"buckets\": [{}]}}",
                        h.count(),
                        h.sum(),
                        h.min(),
                        h.max(),
                        h.buckets()
                            .iter()
                            .map(u64::to_string)
                            .collect::<Vec<_>>()
                            .join(",")
                    )
                })
                .collect::<Vec<_>>()
                .join(", ");
            out.push_str(&format!("      \"histograms\": {{{hists}}},\n"));
            let series = s
                .series
                .iter()
                .map(|(n, ts)| {
                    format!(
                        "\"{n}\": {{\"period\": {}, \"points\": [{}]}}",
                        ts.period(),
                        ts.points()
                            .iter()
                            .map(|(t, v)| format!("[{t},{v}]"))
                            .collect::<Vec<_>>()
                            .join(",")
                    )
                })
                .collect::<Vec<_>>()
                .join(", ");
            out.push_str(&format!("      \"series\": {{{series}}}\n"));
            out.push_str(if i + 1 == self.sections.len() {
                "    }\n"
            } else {
                "    },\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Renders the flat CSV form: one row per reading,
    /// `section,kind,metric,field,value`.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from("section,kind,metric,field,value\n");
        for s in &self.sections {
            for (n, v) in &s.counters {
                out.push_str(&format!("{},counter,{n},total,{v}\n", s.name));
            }
            for (n, v) in &s.gauges {
                out.push_str(&format!("{},gauge,{n},value,{v:.6}\n", s.name));
            }
            for (n, h) in &s.histograms {
                out.push_str(&format!("{},histogram,{n},count,{}\n", s.name, h.count()));
                out.push_str(&format!("{},histogram,{n},sum,{}\n", s.name, h.sum()));
                out.push_str(&format!("{},histogram,{n},min,{}\n", s.name, h.min()));
                out.push_str(&format!("{},histogram,{n},max,{}\n", s.name, h.max()));
                for (i, b) in h.buckets().iter().enumerate() {
                    out.push_str(&format!(
                        "{},histogram,{n},le_{},{b}\n",
                        s.name,
                        Log2Histogram::bucket_bound(i)
                    ));
                }
            }
            for (n, ts) in &s.series {
                for (t, v) in ts.points() {
                    out.push_str(&format!("{},series,{n},{t},{v}\n", s.name));
                }
            }
        }
        out
    }

    /// Renders Prometheus-style text exposition: `mint_<section>_<name>`
    /// lines with `# TYPE` headers, histograms as cumulative
    /// `_bucket{le="…"}` plus `_sum`/`_count`.
    #[must_use]
    pub fn to_prometheus(&self) -> String {
        fn sanitize(s: &str) -> String {
            s.chars()
                .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
                .collect()
        }
        let mut out = String::new();
        for s in &self.sections {
            let prefix = format!("mint_{}", sanitize(&s.name));
            for (n, v) in &s.counters {
                let m = format!("{prefix}_{}", sanitize(n));
                out.push_str(&format!("# TYPE {m} counter\n{m} {v}\n"));
            }
            for (n, v) in &s.gauges {
                let m = format!("{prefix}_{}", sanitize(n));
                out.push_str(&format!("# TYPE {m} gauge\n{m} {v:.6}\n"));
            }
            for (n, h) in &s.histograms {
                let m = format!("{prefix}_{}", sanitize(n));
                out.push_str(&format!("# TYPE {m} histogram\n"));
                let mut cum = 0u64;
                for (i, b) in h.buckets().iter().enumerate() {
                    cum += b;
                    out.push_str(&format!(
                        "{m}_bucket{{le=\"{}\"}} {cum}\n",
                        Log2Histogram::bucket_bound(i)
                    ));
                }
                out.push_str(&format!("{m}_bucket{{le=\"+Inf\"}} {}\n", h.count()));
                out.push_str(&format!("{m}_sum {}\n{m}_count {}\n", h.sum(), h.count()));
            }
            for (n, ts) in &s.series {
                let m = format!("{prefix}_{}", sanitize(n));
                if let Some(&(t, v)) = ts.points().last() {
                    out.push_str(&format!("# TYPE {m} gauge\n{m}{{t=\"{t}\"}} {v}\n"));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_count() {
        let mut c = Counter::new();
        c.incr();
        c.add(41);
        assert_eq!(c.get(), 42);
        c.set(7);
        assert_eq!(c.get(), 7);
    }

    #[test]
    fn log2_buckets_partition_the_u64_range() {
        assert_eq!(log2_bucket(0), 0);
        assert_eq!(log2_bucket(1), 1);
        assert_eq!(log2_bucket(2), 2);
        assert_eq!(log2_bucket(3), 2);
        assert_eq!(log2_bucket(4), 3);
        assert_eq!(log2_bucket(u64::MAX), 64);
        // Bucket i's inclusive bound really is the largest member.
        for i in 1..64 {
            assert_eq!(log2_bucket(Log2Histogram::bucket_bound(i)), i);
            assert_eq!(log2_bucket(Log2Histogram::bucket_bound(i) + 1), i + 1);
        }
    }

    #[test]
    fn histogram_tracks_exact_moments() {
        let mut h = Log2Histogram::new();
        for v in [0, 1, 5, 5, 100, 7] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 118);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 100);
        assert!((h.mean() - 118.0 / 6.0).abs() < 1e-12);
        assert_eq!(h.buckets().iter().sum::<u64>(), 6);
        assert_eq!(h.buckets()[0], 1, "one zero");
        assert_eq!(h.buckets()[3], 3, "5, 5 and 7 in [4,8)");
    }

    #[test]
    fn histogram_words_round_trip() {
        let mut h = Log2Histogram::new();
        for v in [3, 9, 0, 77, 1 << 40] {
            h.record(v);
        }
        let words = h.encode_words();
        assert_eq!(Log2Histogram::decode_words(&words).unwrap(), h);
        assert!(Log2Histogram::decode_words(&words[..3]).is_err());
        assert!(Log2Histogram::decode_words(&words[..words.len() - 1]).is_err());
        let empty = Log2Histogram::new();
        assert_eq!(
            Log2Histogram::decode_words(&empty.encode_words()).unwrap(),
            empty
        );
    }

    #[test]
    fn series_samples_every_period_deterministically() {
        let mut ts = TimeSeries::new(10);
        ts.observe(5, 1); // before the first boundary: nothing
        assert!(ts.points().is_empty());
        ts.observe(10, 2);
        ts.observe(37, 3); // crosses 20 and 30
        assert_eq!(ts.points(), &[(10, 2), (20, 3), (30, 3)]);
        // Identical observation streams produce identical series.
        let mut other = TimeSeries::new(10);
        other.observe(5, 1);
        other.observe(10, 2);
        other.observe(37, 3);
        assert_eq!(other, ts);
    }

    #[test]
    fn series_words_round_trip() {
        let mut ts = TimeSeries::new(7);
        ts.observe(30, 9);
        let words = ts.encode_words();
        assert_eq!(TimeSeries::decode_words(&words).unwrap(), ts);
        assert!(TimeSeries::decode_words(&words[..2]).is_err());
        assert!(TimeSeries::decode_words(&words[..words.len() - 1]).is_err());
    }

    #[test]
    fn report_lookup_and_renderings_are_deterministic() {
        let mut report = TelemetryReport::new();
        let mut s = Section::new("channel0/sched");
        s.counter("decisions", 12);
        s.gauge("utilization", 0.5);
        let mut h = Log2Histogram::new();
        h.record(3);
        h.record(8);
        s.histogram("queue_depth", h);
        let mut ts = TimeSeries::new(100);
        ts.observe(250, 4);
        s.time_series("serviced", ts);
        report.push(s);

        assert_eq!(report.counter("channel0/sched", "decisions"), Some(12));
        assert_eq!(report.counter("channel0/sched", "nope"), None);
        assert_eq!(report.counter("nope", "decisions"), None);

        let json = report.to_json();
        assert!(json.contains("\"telemetry_version\": 1"));
        assert!(json.contains("\"decisions\": 12"));
        assert!(json.contains("\"queue_depth\""));
        assert_eq!(json, report.clone().to_json(), "rendering is pure");

        let csv = report.to_csv();
        assert!(csv.starts_with("section,kind,metric,field,value\n"));
        assert!(csv.contains("channel0/sched,counter,decisions,total,12\n"));
        assert!(csv.contains("channel0/sched,series,serviced,100,4\n"));

        let prom = report.to_prometheus();
        assert!(prom.contains("# TYPE mint_channel0_sched_decisions counter"));
        assert!(prom.contains("mint_channel0_sched_decisions 12"));
        assert!(prom.contains("mint_channel0_sched_queue_depth_bucket{le=\"+Inf\"} 2"));
        assert!(prom.contains("mint_channel0_sched_queue_depth_sum 11"));
    }

    #[test]
    fn empty_report_renders() {
        let report = TelemetryReport::new();
        assert!(report.to_json().contains("\"sections\": [\n  ]"));
        assert_eq!(report.to_csv(), "section,kind,metric,field,value\n");
        assert_eq!(report.to_prometheus(), "");
    }
}
