//! # mint-redteam — adversarial frontend + ground-truth escape oracle
//!
//! The analytical layer (`mint-analysis`) and the slot-indexed Monte-Carlo
//! engine (`mint-sim`) argue about tracker security in *slot space*: an
//! abstract stream of `(tREFI, slot)` activations. The command-level DDR5
//! channel (`mint-memsys`) measures *performance* under benign MPKI
//! workloads. This crate closes the gap between them — it mounts real
//! attacks on the real pipeline and measures both axes at once:
//!
//! * [`AttackSource`] compiles any `mint_attacks::AccessPattern` into
//!   physical byte addresses (via the bijective
//!   [`AddressDecoder`](mint_memsys::AddressDecoder) encode path) and
//!   paces them so the pattern lands its intended ≤ MaxACT activations
//!   per tREFI in a chosen bank. It is an ordinary
//!   [`RequestSource`](mint_memsys::RequestSource), so it composes with
//!   benign `CoreStream`/`TraceSource` cores for attacker+victim co-runs.
//! * [`GroundTruthOracle`] rides the channel's executed-command event
//!   stream ([`ChannelObserver`](mint_memsys::ChannelObserver)) and keeps
//!   *exact* per-row disturbance counts — self-restore on activation,
//!   blast-radius neighbour hammering (including the silent hammering a
//!   victim refresh itself causes), and the rolling tREFW auto-refresh
//!   sweep. Its [`SecurityVerdict`] states, post-run, the maximum hammer
//!   count any row attained, the margin to a given Rowhammer threshold,
//!   and which rows escaped or came close.
//! * [`redteam_sweep`] fans a scheme × pattern grid out through the
//!   `mint-exp` harness (bit-identical for any `--jobs` count) and adds
//!   per-scheme benign-core slowdown under attack — the
//!   performance-under-attack axis that DRFM-heavy schemes lose on.
//!
//! ```text
//! AccessPattern ──► AttackSource ──► Channel (scheme backend) ──► banks
//!   (slot space)     (addresses,          │ MemEvent stream
//!                     tREFI pacing)       ▼
//!                                   GroundTruthOracle ──► SecurityVerdict
//! ```

pub mod oracle;
pub mod source;
pub mod sweep;

pub use oracle::{GroundTruthOracle, OracleSummary, SecurityVerdict};
pub use source::AttackSource;
pub use sweep::{
    redteam_sweep, run_attack, run_corun, RedteamConfig, RedteamReport, SecurityCell, SlowdownCell,
};
