//! The ground-truth escape oracle: exact per-row disturbance accounting
//! over the channel's executed-command event stream.

use mint_memsys::backend::refis_per_refw;
use mint_memsys::{ChannelObserver, MemEvent, Section, SystemConfig};
use std::collections::HashMap;

/// Rows within this fraction of the threshold (but below it) count as
/// near misses in a [`SecurityVerdict`].
const NEAR_MISS_NUM: u64 = 9;
const NEAR_MISS_DEN: u64 = 10;

/// An observer that replays one bank's command stream against the same
/// per-row disturbance model as `mint_dram::Bank`:
///
/// * a demand ACT restores the activated row (self-refresh) and hammers
///   every neighbour within the blast radius;
/// * a victim refresh clears the refreshed row **and silently hammers its
///   neighbours** (it is an activation — the transitive channel of §V-E);
/// * each REF advances the rolling background auto-refresh sweep, which
///   clears `rows / refis_per_refw` counters per tREFI in row order — the
///   rolling-tREFW guarantee that every row is reset at least once per
///   retention window.
///
/// Because events arrive in service order the oracle needs no
/// synchronisation and its verdict is bit-deterministic. It tracks the
/// all-time maximum per row, so one run answers *every* threshold
/// question afterwards ([`OracleSummary::verdict`]).
#[derive(Debug)]
pub struct GroundTruthOracle {
    bank: u32,
    rows: u32,
    blast_radius: u32,
    refis_per_refw: u64,
    /// Current unmitigated disturbance per row (absent = 0).
    hammers: HashMap<u32, u32>,
    /// All-time maximum disturbance each row ever reached.
    row_max: HashMap<u32, u32>,
    sweep_ptr: u32,
    sweep_credit: u64,
    demand_acts: u64,
    victim_refreshes: u64,
    refs: u64,
    rfm_commands: u64,
    drfm_commands: u64,
}

impl GroundTruthOracle {
    /// An oracle watching system-global bank `bank` of `cfg` (the bank
    /// index space of the [`System`](mint_memsys::System)-rebased event
    /// stream: `channel × banks_per_channel + rank × banks + flat_bank`).
    ///
    /// # Panics
    ///
    /// Panics if `bank` is beyond the topology's total bank count.
    #[must_use]
    pub fn new(cfg: &SystemConfig, bank: u32) -> Self {
        assert!(bank < cfg.total_banks(), "bank {bank} out of range");
        Self {
            bank,
            rows: cfg.rows_per_bank,
            blast_radius: cfg.blast_radius,
            refis_per_refw: refis_per_refw(),
            hammers: HashMap::new(),
            row_max: HashMap::new(),
            sweep_ptr: 0,
            sweep_credit: 0,
            demand_acts: 0,
            victim_refreshes: 0,
            refs: 0,
            rfm_commands: 0,
            drfm_commands: 0,
        }
    }

    /// The watched system-global bank.
    #[must_use]
    pub fn bank(&self) -> u32 {
        self.bank
    }

    /// Current unmitigated disturbance of `row`.
    #[must_use]
    pub fn hammers(&self, row: u32) -> u32 {
        self.hammers.get(&row).copied().unwrap_or(0)
    }

    /// One activation of `row` (demand or silent): self-restore plus one
    /// disturbance on every in-bank neighbour within the blast radius.
    fn activate(&mut self, row: u32) {
        self.hammers.remove(&row);
        let radius = i64::from(self.blast_radius);
        for d in 1..=radius {
            for side in [-d, d] {
                let Some(victim) = row.checked_add_signed(side as i32) else {
                    continue;
                };
                if victim >= self.rows {
                    continue;
                }
                let h = self.hammers.entry(victim).or_insert(0);
                *h += 1;
                let m = self.row_max.entry(victim).or_insert(0);
                if *h > *m {
                    *m = *h;
                }
            }
        }
    }

    /// One REF's worth of the background sweep: `rows / refis_per_refw`
    /// counters cleared in row order, with exact credit accounting for
    /// non-divisible organisations (mirrors `mint_sim`'s engine).
    fn sweep(&mut self) {
        self.sweep_credit += u64::from(self.rows);
        while self.sweep_credit >= self.refis_per_refw {
            self.hammers.remove(&self.sweep_ptr);
            self.sweep_ptr = (self.sweep_ptr + 1) % self.rows;
            self.sweep_credit -= self.refis_per_refw;
        }
    }

    /// The oracle's traffic accounting as an obs [`Section`] (named
    /// `oracle/bank{bank}`), for embedding in a `TelemetryReport` next
    /// to the simulator's own scheduler/engine/tracker sections.
    #[must_use]
    pub fn telemetry_section(&self) -> Section {
        self.summary()
            .to_section(&format!("oracle/bank{}", self.bank))
    }

    /// The distilled result: per-row maxima plus traffic counters.
    #[must_use]
    pub fn summary(&self) -> OracleSummary {
        let mut rows: Vec<(u32, u32)> = self.row_max.iter().map(|(&r, &m)| (r, m)).collect();
        rows.sort_unstable();
        let (hottest_row, max_hammers) =
            rows.iter()
                .fold((0, 0), |acc, &(r, m)| if m > acc.1 { (r, m) } else { acc });
        OracleSummary {
            max_hammers,
            hottest_row,
            row_maxima: rows,
            demand_acts: self.demand_acts,
            victim_refreshes: self.victim_refreshes,
            refs: self.refs,
            rfm_commands: self.rfm_commands,
            drfm_commands: self.drfm_commands,
        }
    }
}

impl ChannelObserver for GroundTruthOracle {
    fn on_event(&mut self, event: &MemEvent) {
        if event.bank() != self.bank {
            return;
        }
        match *event {
            MemEvent::Act { row, .. } => {
                self.demand_acts += 1;
                self.activate(row);
            }
            MemEvent::MitigativeRefresh { row, .. } => {
                self.victim_refreshes += 1;
                self.activate(row);
            }
            MemEvent::Ref { .. } => {
                self.refs += 1;
                self.sweep();
            }
            MemEvent::Rfm { .. } => self.rfm_commands += 1,
            MemEvent::Drfm { .. } => self.drfm_commands += 1,
            MemEvent::Pre { .. } => {}
        }
    }
}

/// What the oracle saw, distilled: the all-time per-row maxima and the
/// mitigation traffic that shaped them. Threshold questions are answered
/// after the fact via [`verdict`](Self::verdict), so one run covers a
/// whole TRH grid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OracleSummary {
    /// Largest unmitigated disturbance any row ever reached.
    pub max_hammers: u32,
    /// The row that reached it (lowest such row on ties).
    pub hottest_row: u32,
    /// All-time maximum per row, sorted by row (rows never disturbed are
    /// absent).
    pub row_maxima: Vec<(u32, u32)>,
    /// Demand activations the oracle observed on the bank.
    pub demand_acts: u64,
    /// Victim-refresh activations (mitigations) observed.
    pub victim_refreshes: u64,
    /// REF boundaries the bank crossed.
    pub refs: u64,
    /// RFM commands on the bank.
    pub rfm_commands: u64,
    /// DRFM commands on the bank.
    pub drfm_commands: u64,
}

impl OracleSummary {
    /// The traffic ledger as an obs [`Section`] named `name`: the five
    /// command counters plus the attained hammer maximum — the
    /// ground-truth side of the observability stack (groundwork for the
    /// DAPPER-style perf-attack axis).
    #[must_use]
    pub fn to_section(&self, name: &str) -> Section {
        let mut sec = Section::new(name);
        sec.counter("demand_acts", self.demand_acts);
        sec.counter("victim_refreshes", self.victim_refreshes);
        sec.counter("refs", self.refs);
        sec.counter("rfm_commands", self.rfm_commands);
        sec.counter("drfm_commands", self.drfm_commands);
        sec.counter("max_hammers", u64::from(self.max_hammers));
        sec.gauge("hottest_row", f64::from(self.hottest_row));
        sec
    }

    /// Judges the run against a Rowhammer threshold.
    #[must_use]
    pub fn verdict(&self, trh: u32) -> SecurityVerdict {
        let near = u32::try_from(u64::from(trh) * NEAR_MISS_NUM / NEAR_MISS_DEN).unwrap_or(trh);
        let escape_rows: Vec<u32> = self
            .row_maxima
            .iter()
            .filter(|&&(_, m)| m >= trh)
            .map(|&(r, _)| r)
            .collect();
        let near_miss_rows: Vec<u32> = self
            .row_maxima
            .iter()
            .filter(|&&(_, m)| m >= near && m < trh)
            .map(|&(r, _)| r)
            .collect();
        SecurityVerdict {
            trh,
            max_hammers: self.max_hammers,
            hottest_row: self.hottest_row,
            margin_acts: i64::from(trh) - i64::from(self.max_hammers),
            escaped: !escape_rows.is_empty(),
            escape_rows,
            near_miss_rows,
            demand_acts: self.demand_acts,
            victim_refreshes: self.victim_refreshes,
            refs: self.refs,
            rfm_commands: self.rfm_commands,
            drfm_commands: self.drfm_commands,
        }
    }
}

/// The oracle's judgement of one run against one Rowhammer threshold:
/// did the tracker hold the line, and by how much?
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SecurityVerdict {
    /// The Rowhammer threshold judged against.
    pub trh: u32,
    /// Largest unmitigated disturbance any row attained.
    pub max_hammers: u32,
    /// The row that attained it.
    pub hottest_row: u32,
    /// `trh − max_hammers`: positive = the tracker held with this much
    /// headroom, negative/zero = at least one row flipped.
    pub margin_acts: i64,
    /// Whether any row reached the threshold.
    pub escaped: bool,
    /// Rows whose all-time maximum reached the threshold (sorted).
    pub escape_rows: Vec<u32>,
    /// Rows that reached ≥ 90% of the threshold without crossing it
    /// (sorted).
    pub near_miss_rows: Vec<u32>,
    /// Demand activations observed on the attacked bank.
    pub demand_acts: u64,
    /// Victim-refresh activations (mitigations) the scheme performed.
    pub victim_refreshes: u64,
    /// REF boundaries the bank crossed during the run.
    pub refs: u64,
    /// RFM commands issued on the bank.
    pub rfm_commands: u64,
    /// DRFM commands issued on the bank.
    pub drfm_commands: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oracle() -> GroundTruthOracle {
        GroundTruthOracle::new(&SystemConfig::table6(), 3)
    }

    fn act(bank: u32, row: u32) -> MemEvent {
        MemEvent::Act {
            bank,
            row,
            at_ps: 0,
        }
    }

    #[test]
    fn acts_hammer_neighbours_and_self_restore() {
        let mut o = oracle();
        for _ in 0..5 {
            o.on_event(&act(3, 100));
        }
        assert_eq!(o.hammers(99), 5);
        assert_eq!(o.hammers(101), 5);
        assert_eq!(o.hammers(100), 0, "the aggressor self-restores");
        // Activating a neighbour restores it and hammers the aggressor.
        o.on_event(&act(3, 99));
        assert_eq!(o.hammers(99), 0);
        assert_eq!(o.hammers(100), 1);
        // All-time maxima survive the restore.
        let s = o.summary();
        assert_eq!(s.max_hammers, 5);
        assert!(s.row_maxima.contains(&(99, 5)));
    }

    #[test]
    fn other_banks_are_invisible() {
        let mut o = oracle();
        o.on_event(&act(2, 100));
        o.on_event(&MemEvent::Ref {
            bank: 0,
            ref_index: 1,
            at_ps: 0,
        });
        assert_eq!(o.summary().max_hammers, 0);
        assert_eq!(o.summary().refs, 0);
    }

    #[test]
    fn victim_refresh_clears_but_silently_hammers() {
        let mut o = oracle();
        for _ in 0..7 {
            o.on_event(&act(3, 100));
        }
        o.on_event(&MemEvent::MitigativeRefresh {
            bank: 3,
            row: 101,
            at_ps: 0,
        });
        assert_eq!(o.hammers(101), 0, "refreshed victim cleared");
        assert_eq!(o.hammers(100), 1, "…but its refresh hammers row 100");
        assert_eq!(o.hammers(102), 1);
        assert_eq!(o.summary().victim_refreshes, 1);
    }

    #[test]
    fn sweep_clears_rows_in_order_over_a_trefw() {
        let cfg = SystemConfig::table6();
        let mut o = oracle();
        o.on_event(&act(3, 1));
        assert_eq!(o.hammers(0), 1);
        // rows / refis_per_refw = 16 rows per REF: the first REF clears
        // rows 0..16, including both victims.
        o.on_event(&MemEvent::Ref {
            bank: 3,
            ref_index: 1,
            at_ps: cfg.t_refi_ps,
        });
        assert_eq!(o.hammers(0), 0);
        assert_eq!(o.hammers(2), 0);
        assert_eq!(o.summary().refs, 1);
        // Maxima are all-time: still recorded.
        assert_eq!(o.summary().max_hammers, 1);
    }

    #[test]
    fn edge_rows_clip() {
        let mut o = oracle();
        o.on_event(&act(3, 0));
        let s = o.summary();
        assert_eq!(s.row_maxima, vec![(1, 1)], "row −1 does not exist");
    }

    #[test]
    fn verdict_classifies_escapes_and_near_misses() {
        let mut o = oracle();
        for _ in 0..100 {
            o.on_event(&act(3, 100)); // rows 99/101 reach 100
        }
        for _ in 0..95 {
            o.on_event(&act(3, 200)); // rows 199/201 reach 95
        }
        for _ in 0..10 {
            o.on_event(&act(3, 300));
        }
        let s = o.summary();
        let v = s.verdict(100);
        assert!(v.escaped);
        assert_eq!(v.escape_rows, vec![99, 101]);
        assert_eq!(v.near_miss_rows, vec![199, 201], "95 ≥ 90% of 100");
        assert_eq!(v.margin_acts, 0);
        assert_eq!(v.max_hammers, 100);
        let v = s.verdict(200);
        assert!(!v.escaped);
        assert!(v.escape_rows.is_empty());
        assert_eq!(v.margin_acts, 100);
        assert!(v.near_miss_rows.is_empty(), "95 < 90% of 200");
        assert_eq!(v.demand_acts, 205);
    }

    #[test]
    fn watches_banks_on_any_rank_or_channel() {
        // Regression: the range assert used to read `cfg.banks` (one
        // rank of one channel), rejecting every bank beyond rank 0 of
        // channel 0 even on multi-rank/multi-channel topologies.
        let cfg = SystemConfig {
            channels: 2,
            ranks: 2,
            ..SystemConfig::table6()
        };
        let bank = cfg.banks_per_channel() + cfg.banks + 3; // channel 1, rank 1
        let mut o = GroundTruthOracle::new(&cfg, bank);
        o.on_event(&act(bank, 100));
        o.on_event(&act(3, 100)); // channel 0's bank 3: a different bank
        assert_eq!(o.summary().demand_acts, 1);
        assert_eq!(o.hammers(101), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bank_beyond_the_topology_rejected() {
        let cfg = SystemConfig::table6();
        let _ = GroundTruthOracle::new(&cfg, cfg.total_banks());
    }

    #[test]
    fn telemetry_section_mirrors_the_summary() {
        let mut o = oracle();
        for _ in 0..4 {
            o.on_event(&act(3, 50));
        }
        o.on_event(&MemEvent::MitigativeRefresh {
            bank: 3,
            row: 51,
            at_ps: 0,
        });
        o.on_event(&MemEvent::Rfm { bank: 3, at_ps: 0 });
        let sec = o.telemetry_section();
        assert_eq!(sec.name, "oracle/bank3");
        let counter = |name: &str| {
            sec.counters
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
        };
        assert_eq!(counter("demand_acts"), Some(4));
        assert_eq!(counter("victim_refreshes"), Some(1));
        assert_eq!(counter("rfm_commands"), Some(1));
        assert_eq!(counter("max_hammers"), Some(4));
        // And the same ledger embeds in a TelemetryReport.
        let mut report = mint_memsys::TelemetryReport::new();
        report.push(o.telemetry_section());
        assert_eq!(report.counter("oracle/bank3", "demand_acts"), Some(4));
    }

    #[test]
    fn counts_rfm_and_drfm_commands() {
        let mut o = oracle();
        o.on_event(&MemEvent::Rfm { bank: 3, at_ps: 0 });
        o.on_event(&MemEvent::Drfm { bank: 3, at_ps: 0 });
        o.on_event(&MemEvent::Drfm { bank: 1, at_ps: 0 });
        let s = o.summary();
        assert_eq!(s.rfm_commands, 1);
        assert_eq!(s.drfm_commands, 1);
    }
}
