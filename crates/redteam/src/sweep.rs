//! Scheme × pattern security sweeps and performance-under-attack co-runs,
//! fanned out through the `mint-exp` harness (bit-identical for any
//! worker count).

use crate::oracle::{GroundTruthOracle, OracleSummary, SecurityVerdict};
use crate::source::AttackSource;
use mint_attacks::PatternSpec;
use mint_dram::RowId;
use mint_memsys::{
    workload_by_name, AddressDecoder, AddressMapping, CoreStream, MitigationScheme, RequestSource,
    RunReport, SchedulePolicy, Sim, SystemConfig,
};
use mint_rng::derive_seed;

/// Everything one red-team campaign needs: the system under test, where
/// and how long to attack, the threshold grid to judge against, and the
/// benign co-run load.
#[derive(Debug, Clone)]
pub struct RedteamConfig {
    /// The system under test.
    pub cfg: SystemConfig,
    /// Address mapping for both attacker and benign cores.
    pub mapping: AddressMapping,
    /// Channel arbitration policy.
    pub policy: SchedulePolicy,
    /// The system-global bank the attacker hammers (any channel/rank of
    /// the topology).
    pub target_bank: u32,
    /// First attack row (patterns spread upward from here).
    pub base_row: RowId,
    /// Attack duration of the security cells, in tREFI.
    pub attack_refis: u64,
    /// Attack duration of the slowdown co-runs, in tREFI (shorter: the
    /// benign cores must cover the whole window with real traffic).
    pub corun_refis: u64,
    /// Rowhammer thresholds every cell is judged against.
    pub trh_grid: Vec<u32>,
    /// Benign workload name (from `spec_rate_workloads`) for co-runs.
    pub benign_workload: &'static str,
    /// Requests per benign core in co-runs.
    pub benign_requests_per_core: u32,
    /// Master seed; every cell derives its own substream.
    pub seed: u64,
}

impl RedteamConfig {
    /// The bench-scale default: 2048 tREFI of attack (a quarter tREFW —
    /// enough for an unmitigated pattern to blow through the device-scale
    /// thresholds), judged at the paper's device threshold (1400, MINT's
    /// Table III MinTRH-D) and a high-headroom 4800.
    #[must_use]
    pub fn default_sweep() -> Self {
        Self {
            cfg: SystemConfig::table6(),
            mapping: AddressMapping::default(),
            policy: SchedulePolicy::default(),
            target_bank: 5,
            base_row: RowId(4000),
            attack_refis: 2048,
            corun_refis: 256,
            trh_grid: vec![1400, 4800],
            benign_workload: "mcf",
            benign_requests_per_core: 60_000,
            seed: 0xBAD_5EED,
        }
    }

    /// A seconds-scale variant for tests and CI smoke: short windows,
    /// small benign load, same structure.
    #[must_use]
    pub fn quick() -> Self {
        Self {
            attack_refis: 256,
            corun_refis: 64,
            benign_requests_per_core: 4_000,
            trh_grid: vec![200, 1400],
            ..Self::default_sweep()
        }
    }

    fn benign_spec(&self) -> mint_memsys::WorkloadSpec {
        workload_by_name(self.benign_workload)
            .unwrap_or_else(|| panic!("unknown benign workload {:?}", self.benign_workload))
    }
}

/// One security cell: one scheme facing one pattern, judged against the
/// whole threshold grid.
#[derive(Debug, Clone, PartialEq)]
pub struct SecurityCell {
    /// The scheme under attack.
    pub scheme: MitigationScheme,
    /// Its display label.
    pub scheme_label: String,
    /// The mounted pattern's name.
    pub pattern: &'static str,
    /// What the oracle saw.
    pub summary: OracleSummary,
    /// One verdict per entry of the config's `trh_grid` (same order).
    pub verdicts: Vec<SecurityVerdict>,
    /// Wall-clock of the attack run (ps).
    pub duration_ps: u64,
}

/// One slowdown cell: how much one scheme's mitigation machinery slows
/// the *benign* cores while core 0 hammers.
#[derive(Debug, Clone, PartialEq)]
pub struct SlowdownCell {
    /// The scheme under attack.
    pub scheme_label: String,
    /// Latest benign-core finish time (ps).
    pub benign_finish_ps: u64,
    /// Requests the benign cores completed.
    pub benign_requests: u64,
    /// `benign_finish / baseline benign_finish` for identical traffic:
    /// 1.0 = the scheme costs the victims nothing under attack, higher =
    /// the mitigation machinery steals their bank time.
    pub slowdown: f64,
}

/// The full campaign result: every security cell (scheme-major, pattern
/// order preserved) plus one slowdown cell per scheme.
#[derive(Debug, Clone, PartialEq)]
pub struct RedteamReport {
    /// The thresholds every cell was judged against.
    pub trh_grid: Vec<u32>,
    /// Scheme × pattern grid, scheme-major.
    pub cells: Vec<SecurityCell>,
    /// Per-scheme benign-core slowdown under the worst-case pattern.
    pub slowdowns: Vec<SlowdownCell>,
}

impl RedteamReport {
    /// Whether any (scheme, pattern) cell escaped at `trh`.
    #[must_use]
    pub fn any_escape_at(&self, trh: u32) -> bool {
        self.cells
            .iter()
            .any(|c| c.verdicts.iter().any(|v| v.trh == trh && v.escaped))
    }

    /// Whether any cell held `trh` with positive margin.
    #[must_use]
    pub fn any_positive_margin_at(&self, trh: u32) -> bool {
        self.cells
            .iter()
            .any(|c| c.verdicts.iter().any(|v| v.trh == trh && v.margin_acts > 0))
    }
}

/// Mounts `pattern` on `scheme` for `refis` tREFI (attacker only) and
/// returns the oracle's summary plus the unified run report.
#[must_use]
pub fn run_attack(
    rc: &RedteamConfig,
    scheme: MitigationScheme,
    pattern: &PatternSpec,
    seed: u64,
) -> (OracleSummary, RunReport) {
    let source = AttackSource::new(
        &rc.cfg,
        rc.mapping,
        rc.target_bank,
        pattern.build(),
        pattern.name(),
        rc.attack_refis,
    );
    let mut oracle = GroundTruthOracle::new(&rc.cfg, rc.target_bank);
    let run = Sim::new(rc.cfg)
        .scheme(scheme)
        .policy(rc.policy)
        .mapping(rc.mapping)
        .sources(vec![Box::new(source) as Box<dyn RequestSource>])
        .seed(seed)
        .observer(&mut oracle)
        .run();
    (oracle.summary(), run)
}

/// Caps an inner source at a request budget — so co-runs can bound the
/// benign cores without also truncating the attacker (which is already
/// bounded by its tREFI limit).
struct Limited<S> {
    inner: S,
    remaining: u32,
}

impl<S: RequestSource> RequestSource for Limited<S> {
    fn next_request(&mut self) -> Option<mint_memsys::Request> {
        self.next_request_at(0)
    }

    fn next_request_at(&mut self, ready_at_ps: u64) -> Option<mint_memsys::Request> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        self.inner.next_request_at(ready_at_ps)
    }
}

/// Builds and drives the attacker+victim co-run (attacker on core 0 for
/// `corun_refis`, `cores − 1` benign streams capped at
/// `benign_requests_per_core` each), feeding events to `observer` if any.
fn corun_observed(
    rc: &RedteamConfig,
    scheme: MitigationScheme,
    pattern: &PatternSpec,
    seed: u64,
    observer: Option<&mut dyn mint_memsys::ChannelObserver>,
) -> RunReport {
    let spec = rc.benign_spec();
    let decoder = AddressDecoder::new(&rc.cfg, rc.mapping);
    let think = spec.think_time_ps(&rc.cfg);
    let mut sources: Vec<Box<dyn RequestSource>> = vec![Box::new(AttackSource::new(
        &rc.cfg,
        rc.mapping,
        rc.target_bank,
        pattern.build(),
        pattern.name(),
        rc.corun_refis,
    ))];
    for core in 1..rc.cfg.cores {
        sources.push(Box::new(Limited {
            inner: CoreStream::new(spec, decoder, think, derive_seed(seed, u64::from(core))),
            remaining: rc.benign_requests_per_core,
        }));
    }
    let mut sim = Sim::new(rc.cfg)
        .scheme(scheme)
        .policy(rc.policy)
        .mapping(rc.mapping)
        .sources(sources)
        .seed(seed);
    if let Some(obs) = observer {
        sim = sim.observer(obs);
    }
    sim.run()
}

/// Attacker on core 0, benign cores on the rest: returns the oracle's
/// summary and the run report (per-core outcomes included, so callers
/// can read off the benign finish times). The attacker runs its full
/// `corun_refis`; only the benign cores are capped at
/// `benign_requests_per_core`.
#[must_use]
pub fn run_corun(
    rc: &RedteamConfig,
    scheme: MitigationScheme,
    pattern: &PatternSpec,
    seed: u64,
) -> (OracleSummary, RunReport) {
    let mut oracle = GroundTruthOracle::new(&rc.cfg, rc.target_bank);
    let run = corun_observed(rc, scheme, pattern, seed, Some(&mut oracle));
    (oracle.summary(), run)
}

/// Latest finish over the benign (non-attacker) cores of a co-run.
fn benign_finish(run: &RunReport) -> (u64, u64) {
    run.cores
        .iter()
        .skip(1)
        .fold((0, 0), |(finish, requests), c| {
            (finish.max(c.finish_ps), requests + c.requests)
        })
}

/// Runs the full campaign: every `(scheme, pattern)` security cell plus a
/// per-scheme benign-slowdown co-run under `patterns[slowdown_pattern]`
/// (the worst-case pattern-2 in the canonical grid), all fanned out
/// through [`mint_exp::par_map`] — results are bit-identical for any
/// `--jobs` count.
///
/// The first scheme is the slowdown normalisation baseline (pass the zoo
/// and that is `Baseline`).
///
/// # Panics
///
/// Panics if `schemes` or `patterns` is empty.
#[must_use]
pub fn redteam_sweep(
    rc: &RedteamConfig,
    schemes: &[MitigationScheme],
    patterns: &[PatternSpec],
) -> RedteamReport {
    assert!(!schemes.is_empty(), "need at least one scheme");
    assert!(!patterns.is_empty(), "need at least one pattern");
    let grid: Vec<(usize, usize)> = (0..schemes.len())
        .flat_map(|s| (0..patterns.len()).map(move |p| (s, p)))
        .collect();
    let cells: Vec<SecurityCell> = mint_exp::par_map(&grid, |i, &(s, p)| {
        let (summary, run) =
            run_attack(rc, schemes[s], &patterns[p], derive_seed(rc.seed, i as u64));
        SecurityCell {
            scheme: schemes[s],
            scheme_label: schemes[s].label(),
            pattern: patterns[p].name(),
            verdicts: rc.trh_grid.iter().map(|&t| summary.verdict(t)).collect(),
            summary,
            duration_ps: run.perf.duration_ps,
        }
    });

    // Slowdown co-runs: the *same* seed for every scheme, so every scheme
    // faces identical benign traffic and the finish-time ratio isolates
    // the mitigation machinery's cost. No oracle rides these runs — the
    // security question is answered by the attack cells above, and the
    // event log would tax the largest runs of the campaign for nothing.
    let slowdown_pattern = patterns.len().min(2) - 1;
    let corun_seed = derive_seed(rc.seed, 0xC00F);
    let scheme_idx: Vec<usize> = (0..schemes.len()).collect();
    let runs = mint_exp::par_map(&scheme_idx, |_, &s| {
        corun_observed(
            rc,
            schemes[s],
            &patterns[slowdown_pattern],
            corun_seed,
            None,
        )
    });
    let base = benign_finish(&runs[0]).0.max(1);
    let slowdowns: Vec<SlowdownCell> = schemes
        .iter()
        .zip(&runs)
        .map(|(scheme, run)| {
            let (finish, requests) = benign_finish(run);
            SlowdownCell {
                scheme_label: scheme.label(),
                benign_finish_ps: finish,
                benign_requests: requests,
                slowdown: finish as f64 / base as f64,
            }
        })
        .collect();

    RedteamReport {
        trh_grid: rc.trh_grid.clone(),
        cells,
        slowdowns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mint_attacks::redteam_patterns;
    use mint_memsys::backend::max_act_per_trefi;

    fn quick() -> RedteamConfig {
        RedteamConfig::quick()
    }

    fn patterns(rc: &RedteamConfig) -> Vec<PatternSpec> {
        redteam_patterns(rc.base_row, max_act_per_trefi() as u32)
    }

    #[test]
    fn baseline_escapes_where_prct_holds() {
        let rc = quick();
        let specs = patterns(&rc);
        let p3 = specs.iter().find(|p| p.name() == "pattern-3").unwrap();
        let (base, _) = run_attack(&rc, MitigationScheme::Baseline, p3, 7);
        let (prct, _) = run_attack(&rc, MitigationScheme::Prct, p3, 7);
        // Unmitigated pattern-3 piles 3 ACTs per tREFI on each victim;
        // over 256 tREFI that is ~768 hammers (minus one sweep reset).
        let v = base.verdict(200);
        assert!(
            v.escaped,
            "baseline must escape TRH 200: {:?}",
            base.max_hammers
        );
        assert!(!v.escape_rows.is_empty());
        // PRCT mitigates one row per REF out of 24 aggressors: far lower.
        assert!(
            prct.max_hammers < base.max_hammers / 2,
            "PRCT {} vs baseline {}",
            prct.max_hammers,
            base.max_hammers
        );
    }

    #[test]
    fn attack_lands_intended_activation_counts() {
        // Pattern-1 over N tREFI must produce exactly N demand ACTs on
        // the attacked bank (one per tREFI, none merged into row hits —
        // the REF closes the row buffer between activations).
        let rc = quick();
        let specs = patterns(&rc);
        let p1 = specs.iter().find(|p| p.name() == "pattern-1").unwrap();
        let (summary, run) = run_attack(&rc, MitigationScheme::Baseline, p1, 3);
        assert_eq!(summary.demand_acts, rc.attack_refis);
        assert_eq!(run.perf.result.requests, rc.attack_refis);
        assert_eq!(run.cores.len(), 1);
        assert_eq!(run.cores[0].requests, rc.attack_refis);
        // The victims accumulated close to one hammer per tREFI (the
        // sweep reset them at most once in a quarter-tREFW window).
        assert!(
            summary.max_hammers >= (rc.attack_refis as u32) * 3 / 4,
            "got {}",
            summary.max_hammers
        );
    }

    #[test]
    fn full_window_pattern_stays_within_max_act_per_trefi() {
        let rc = quick();
        let specs = patterns(&rc);
        let p2 = specs.iter().find(|p| p.name() == "pattern-2").unwrap();
        let (summary, run) = run_attack(&rc, MitigationScheme::Baseline, p2, 5);
        let max_act = max_act_per_trefi();
        // ≤ MaxACT per tREFI on average — and the run cannot have taken
        // fewer tREFI than intended.
        let refis_elapsed = run.perf.duration_ps / rc.cfg.t_refi_ps + 1;
        assert!(
            summary.demand_acts <= refis_elapsed * max_act,
            "{} ACTs over {} tREFI exceeds MaxACT = {}",
            summary.demand_acts,
            refis_elapsed,
            max_act
        );
        assert_eq!(summary.demand_acts, rc.attack_refis * max_act);
    }

    #[test]
    fn attack_on_a_far_channel_reaches_its_bank() {
        // The same campaign mounted on channel 1 / rank 1 of a 2×2
        // topology: routing, the rank-aware pipeline, and the
        // system-global event rebase all have to line up for the oracle
        // to see the attack at all.
        let mut rc = quick();
        rc.cfg = SystemConfig {
            channels: 2,
            ranks: 2,
            ..rc.cfg
        };
        rc.target_bank = rc.cfg.banks_per_channel() + rc.cfg.banks + 5;
        let specs = patterns(&rc);
        let p1 = specs.iter().find(|p| p.name() == "pattern-1").unwrap();
        let (summary, run) = run_attack(&rc, MitigationScheme::Baseline, p1, 3);
        assert_eq!(summary.demand_acts, rc.attack_refis);
        assert_eq!(run.perf.result.requests, rc.attack_refis);
        assert!(summary.max_hammers >= (rc.attack_refis as u32) * 3 / 4);
    }

    #[test]
    fn corun_reports_benign_cores() {
        let rc = quick();
        let specs = patterns(&rc);
        let (_, run) = run_corun(&rc, MitigationScheme::Baseline, &specs[1], 11);
        assert_eq!(run.cores.len(), rc.cfg.cores as usize);
        let (finish, requests) = benign_finish(&run);
        assert!(finish > 0);
        assert_eq!(
            requests,
            u64::from(rc.benign_requests_per_core) * u64::from(rc.cfg.cores - 1),
            "each benign core is capped at exactly its budget"
        );
        // The benign budget must not truncate the attacker: pattern-2
        // fills every slot, so core 0 lands MaxACT × corun_refis ACTs.
        assert_eq!(
            run.cores[0].requests,
            rc.corun_refis * max_act_per_trefi(),
            "attacker runs its full tREFI window regardless of the benign cap"
        );
    }

    #[test]
    fn sweep_is_deterministic_across_job_counts() {
        let rc = quick();
        let schemes = [
            MitigationScheme::Baseline,
            MitigationScheme::Mint,
            MitigationScheme::McPara { p: 1.0 / 40.0 },
        ];
        mint_exp::set_jobs(1);
        let one = redteam_sweep(&rc, &schemes, &patterns(&rc));
        mint_exp::set_jobs(4);
        let four = redteam_sweep(&rc, &schemes, &patterns(&rc));
        mint_exp::set_jobs(0);
        assert_eq!(one, four, "jobs 1 vs 4 must be bit-identical");
        assert_eq!(one.cells.len(), schemes.len() * 4);
        assert_eq!(one.slowdowns.len(), schemes.len());
        assert!((one.slowdowns[0].slowdown - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one scheme")]
    fn empty_schemes_rejected() {
        let rc = quick();
        let _ = redteam_sweep(&rc, &[], &patterns(&rc));
    }
}
